// Package repro is a from-scratch Go reproduction of "REPUTE: An OpenCL
// based Read Mapping Tool for Embedded Genomics" (DATE 2020).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); executables are under cmd/ and runnable examples under
// examples/. This root package only hosts the module-level benchmark
// harness (bench_test.go), which regenerates every table and figure of
// the paper's evaluation as Go benchmarks.
package repro
