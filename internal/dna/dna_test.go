package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		ascii byte
		code  byte
	}{{'A', A}, {'C', C}, {'G', G}, {'T', T}, {'a', A}, {'c', C}, {'g', G}, {'t', T}} {
		got, ok := CodeOf(tc.ascii)
		if !ok || got != tc.code {
			t.Errorf("CodeOf(%q) = %d,%v want %d,true", tc.ascii, got, ok, tc.code)
		}
	}
	for _, bad := range []byte{'N', 'n', 'X', '-', 0, ' '} {
		if _, ok := CodeOf(bad); ok {
			t.Errorf("CodeOf(%q) accepted invalid base", bad)
		}
	}
}

func TestASCIIOf(t *testing.T) {
	want := "ACGT"
	for c := byte(0); c < Alphabet; c++ {
		if ASCIIOf(c) != want[c] {
			t.Errorf("ASCIIOf(%d) = %c want %c", c, ASCIIOf(c), want[c])
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	s := "ACGTTGCAacgt"
	codes, err := Encode([]byte(s))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got, want := Decode(codes), "ACGTTGCAACGT"; got != want {
		t.Errorf("Decode(Encode(%q)) = %q want %q", s, got, want)
	}
}

func TestEncodeInvalid(t *testing.T) {
	if _, err := Encode([]byte("ACGNT")); err == nil {
		t.Error("Encode accepted N")
	}
}

func TestComplement(t *testing.T) {
	pairs := [][2]byte{{A, T}, {C, G}, {G, C}, {T, A}}
	for _, p := range pairs {
		if Complement(p[0]) != p[1] {
			t.Errorf("Complement(%d) = %d want %d", p[0], Complement(p[0]), p[1])
		}
	}
}

func TestReverseComplement(t *testing.T) {
	in := MustEncode("AACGT")
	want := "ACGTT"
	if got := Decode(ReverseComplement(in)); got != want {
		t.Errorf("ReverseComplement(AACGT) = %q want %q", got, want)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b & 3
		}
		rc := ReverseComplement(codes)
		rcrc := ReverseComplement(rc)
		if len(rcrc) != len(codes) {
			return false
		}
		for i := range codes {
			if codes[i] != rcrc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementInto(t *testing.T) {
	src := MustEncode("ACGTA")
	dst := make([]byte, len(src))
	ReverseComplementInto(dst, src)
	if got := Decode(dst); got != "TACGT" {
		t.Errorf("ReverseComplementInto = %q want TACGT", got)
	}
	// Must agree with the allocating variant on random input.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(4))
		}
		d := make([]byte, n)
		ReverseComplementInto(d, s)
		want := ReverseComplement(s)
		for i := range d {
			if d[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestReverseComplementIntoLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	ReverseComplementInto(make([]byte, 2), make([]byte, 3))
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b & 3
		}
		p := Pack(codes)
		if p.Len() != len(codes) {
			return false
		}
		got := p.Unpack()
		for i := range codes {
			if got[i] != codes[i] || p.At(i) != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedSlice(t *testing.T) {
	codes := MustEncode("ACGTACGTACGT")
	p := Pack(codes)
	if got := Decode(p.Slice(2, 7)); got != "GTACG" {
		t.Errorf("Slice(2,7) = %q want GTACG", got)
	}
	if got := Decode(p.Slice(0, 0)); got != "" {
		t.Errorf("Slice(0,0) = %q want empty", got)
	}
	buf := make([]byte, 12)
	if got := Decode(p.SliceInto(buf, 4, 9)); got != "ACGTA" {
		t.Errorf("SliceInto(4,9) = %q want ACGTA", got)
	}
}

func TestPackedSliceOutOfRange(t *testing.T) {
	p := Pack(MustEncode("ACGT"))
	for _, rng := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", rng[0], rng[1])
				}
			}()
			p.Slice(rng[0], rng[1])
		}()
	}
}

func TestGCContent(t *testing.T) {
	if gc := GCContent(nil); gc != 0 {
		t.Errorf("GCContent(nil) = %v want 0", gc)
	}
	if gc := GCContent(MustEncode("GCGC")); gc != 1 {
		t.Errorf("GCContent(GCGC) = %v want 1", gc)
	}
	if gc := GCContent(MustEncode("ATGC")); gc != 0.5 {
		t.Errorf("GCContent(ATGC) = %v want 0.5", gc)
	}
}

func BenchmarkPackedAt(b *testing.B) {
	codes := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(7))
	for i := range codes {
		codes[i] = byte(rng.Intn(4))
	}
	p := Pack(codes)
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink += p.At(i & (1<<16 - 1))
	}
	_ = sink
}
