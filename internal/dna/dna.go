// Package dna provides base encodings and compact sequence types shared by
// every substrate in the mapper: 2-bit base codes, packed sequences with
// random access, reverse complements and ASCII conversion.
//
// Throughout the repository a "code" is a byte in 0..3 encoding A, C, G, T.
// Unpacked sequences ([]byte of codes) are used on hot paths that need
// byte-at-a-time access; PackedSeq stores four bases per byte for large,
// long-lived data such as the reference text inside the FM-index.
package dna

import "fmt"

// Base codes. The ordering is lexicographic so that suffix arrays and
// FM-index C arrays built over codes order the same way as over ASCII.
const (
	A byte = 0
	C byte = 1
	G byte = 2
	T byte = 3
)

// Alphabet is the number of distinct base codes.
const Alphabet = 4

// codeToASCII maps a base code to its upper-case ASCII letter.
var codeToASCII = [Alphabet]byte{'A', 'C', 'G', 'T'}

// asciiToCode maps ASCII to a base code; 0xFF marks invalid characters.
var asciiToCode = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xFF
	}
	t['A'], t['a'] = A, A
	t['C'], t['c'] = C, C
	t['G'], t['g'] = G, G
	t['T'], t['t'] = T, T
	return t
}()

// CodeOf returns the base code for an ASCII base letter. The second result
// is false for characters outside ACGTacgt (including N).
func CodeOf(ascii byte) (byte, bool) {
	c := asciiToCode[ascii]
	return c, c != 0xFF
}

// ASCIIOf returns the upper-case ASCII letter for a base code.
// It panics if code is not in 0..3.
func ASCIIOf(code byte) byte {
	return codeToASCII[code]
}

// Complement returns the complement of a base code (A<->T, C<->G).
func Complement(code byte) byte { return 3 - code }

// Encode converts an ASCII base string to a fresh slice of base codes.
// Characters outside ACGTacgt are reported as an error with their position.
func Encode(s []byte) ([]byte, error) {
	out := make([]byte, len(s))
	for i, b := range s {
		c, ok := CodeOf(b)
		if !ok {
			return nil, fmt.Errorf("dna: invalid base %q at position %d", b, i)
		}
		out[i] = c
	}
	return out, nil
}

// MustEncode is Encode for known-clean inputs, mainly tests and examples.
func MustEncode(s string) []byte {
	out, err := Encode([]byte(s))
	if err != nil {
		panic(err)
	}
	return out
}

// Decode converts base codes back to an ASCII string.
func Decode(codes []byte) string {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = ASCIIOf(c)
	}
	return string(out)
}

// ReverseComplement returns the reverse complement of a code sequence as a
// fresh slice.
func ReverseComplement(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[len(codes)-1-i] = Complement(c)
	}
	return out
}

// ReverseComplementInto writes the reverse complement of src into dst,
// which must have the same length as src. dst and src may not overlap
// unless they are identical slices of even armless use; callers on hot
// paths reuse dst across reads.
func ReverseComplementInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic("dna: ReverseComplementInto length mismatch")
	}
	n := len(src)
	for i := 0; i < n/2; i++ {
		a, b := src[i], src[n-1-i]
		dst[i], dst[n-1-i] = Complement(b), Complement(a)
	}
	if n%2 == 1 {
		dst[n/2] = Complement(src[n/2])
	}
}

// PackedSeq is an immutable 2-bit packed DNA sequence: four bases per byte,
// little-endian within the byte (base i occupies bits 2*(i%4)..2*(i%4)+1).
type PackedSeq struct {
	data []byte
	n    int
}

// Pack builds a PackedSeq from a slice of base codes.
func Pack(codes []byte) PackedSeq {
	data := make([]byte, (len(codes)+3)/4)
	for i, c := range codes {
		data[i>>2] |= c << uint((i&3)*2)
	}
	return PackedSeq{data: data, n: len(codes)}
}

// FromPacked wraps already-packed bytes (as returned by Bytes) holding n
// bases. It panics if data is too short for n bases.
func FromPacked(data []byte, n int) PackedSeq {
	if len(data) < (n+3)/4 {
		panic(fmt.Sprintf("dna: FromPacked: %d bytes cannot hold %d bases", len(data), n))
	}
	return PackedSeq{data: data, n: n}
}

// Len returns the number of bases.
func (p PackedSeq) Len() int { return p.n }

// At returns the base code at position i.
func (p PackedSeq) At(i int) byte {
	return (p.data[i>>2] >> uint((i&3)*2)) & 3
}

// Bytes returns the underlying packed bytes (shared, not copied).
// The final byte's unused high bits are zero.
func (p PackedSeq) Bytes() []byte { return p.data }

// Unpack expands the packed sequence back to a fresh slice of base codes.
func (p PackedSeq) Unpack() []byte {
	out := make([]byte, p.n)
	for i := range out {
		out[i] = p.At(i)
	}
	return out
}

// Slice unpacks the half-open range [lo, hi) into a fresh code slice.
func (p PackedSeq) Slice(lo, hi int) []byte {
	if lo < 0 || hi > p.n || lo > hi {
		panic(fmt.Sprintf("dna: Slice[%d:%d) out of range 0..%d", lo, hi, p.n))
	}
	out := make([]byte, hi-lo)
	for i := range out {
		out[i] = p.At(lo + i)
	}
	return out
}

// SliceInto unpacks [lo, hi) into dst (which must be at least hi-lo long)
// and returns the filled prefix. It avoids allocation on verification hot
// paths.
func (p PackedSeq) SliceInto(dst []byte, lo, hi int) []byte {
	if lo < 0 || hi > p.n || lo > hi {
		panic(fmt.Sprintf("dna: SliceInto[%d:%d) out of range 0..%d", lo, hi, p.n))
	}
	dst = dst[:hi-lo]
	for i := range dst {
		dst[i] = p.At(lo + i)
	}
	return dst
}

// GCContent reports the fraction of G or C bases, 0 for empty input.
func GCContent(codes []byte) float64 {
	if len(codes) == 0 {
		return 0
	}
	gc := 0
	for _, c := range codes {
		if c == C || c == G {
			gc++
		}
	}
	return float64(gc) / float64(len(codes))
}
