// Package analysistest runs an analyzer over testdata packages and
// checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest: a comment
//
//	// want "regexp"
//
// on a line asserts that the analyzer reports a diagnostic on that line
// matching the regexp; several quoted regexps assert several
// diagnostics. Every diagnostic must be wanted and every want must be
// matched.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted regexps of a want comment; both "..." and
// backquoted forms are accepted, as in upstream analysistest.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, and reports mismatches on t. The testdata directory must
// live inside the module so that testdata sources may import real
// module packages (the kernel contract types in internal/cl).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkgpath := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
		pkg, err := loader.LoadDir(dir, pkgpath)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", pkgpath, err)
			continue
		}
		checkPackage(t, a, pkg)
	}
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package) {
	t.Helper()

	// Collect want expectations, keyed by file:line of the comment.
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos)
				for _, q := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, q, err)
						continue
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, raw, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{rx: rx, raw: raw})
				}
			}
		}
	}

	diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Errorf("analysistest: %s: %v", pkg.Path, err)
		return
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := posKey(pos)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.raw)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
