package analysis

// Directive comments shared across analyzer suites. pipevet (and any
// future suite) reads three source-level annotations through this
// parser, so every analyzer agrees on syntax and placement rules:
//
//	//repute:hotpath
//	    on a function declaration's doc comment — marks the function a
//	    hot-path root for allocation analysis (hotalloc follows its
//	    same-package transitive callees).
//
//	// ... guarded by <path> ...
//	    in a struct field's doc or trailing comment — declares that the
//	    field may only be accessed while the named mutex is held. The
//	    path is resolved against sibling fields ("mu", "ctx.mu").
//
//	//pipevet:allow <analyzer> -- <reason>
//	    on the offending line, or the line directly above — suppresses
//	    one analyzer's diagnostics on that line. The reason is
//	    mandatory: an allow without one is itself reported by the named
//	    analyzer and is NOT honored, so suppressions always carry their
//	    justification in the source.
//
//	//pipevet:pipeline-package
//	    anywhere in a package — opts the package into the pipeline
//	    scope used by pipedeterminism (testdata and future packages
//	    outside the built-in internal/ set).

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

var (
	allowRe = regexp.MustCompile(`^//\s*pipevet:allow\s+([a-z][a-z0-9_,]*)\s*(?:--\s*(.*))?$`)
	guardRe = regexp.MustCompile(`guarded by\s+([A-Za-z_][A-Za-z0-9_.]*)`)
)

// GuardAnnotation is one parsed "guarded by" field annotation, before
// path validation (lockguard resolves and validates the path).
type GuardAnnotation struct {
	// Struct is the struct type declaring the field.
	Struct *ast.StructType
	// Name is the annotated field's name identifier.
	Name *ast.Ident
	// Obj is the field's object.
	Obj *types.Var
	// Path is the dot-split guard path ("ctx.mu" -> ["ctx", "mu"]).
	Path []string
	// Pos locates the annotation comment for diagnostics.
	Pos token.Pos
}

type allowKey struct {
	analyzer string
	file     string
	line     int
}

// Directives is the parsed directive set of one package.
type Directives struct {
	fset    *token.FileSet
	allows  map[allowKey]bool
	missing map[string][]token.Pos // analyzer -> unjustified allow positions
	guards  []GuardAnnotation
	marker  bool
}

// NewDirectives parses every directive comment in the pass's files.
func NewDirectives(pass *Pass) *Directives {
	d := &Directives{
		fset:    pass.Fset,
		allows:  map[allowKey]bool{},
		missing: map[string][]token.Pos{},
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(c)
			}
		}
		d.collectGuards(pass, f)
	}
	return d
}

func (d *Directives) parseComment(c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if text == "//pipevet:pipeline-package" {
		d.marker = true
		return
	}
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		return
	}
	reason := strings.TrimSpace(m[2])
	pos := d.fset.Position(c.Pos())
	for _, analyzer := range strings.Split(m[1], ",") {
		if reason == "" {
			d.missing[analyzer] = append(d.missing[analyzer], c.Pos())
			continue
		}
		d.allows[allowKey{analyzer, pos.Filename, pos.Line}] = true
	}
}

// collectGuards scans f's struct types for "guarded by" annotations on
// field doc or trailing comments.
func (d *Directives) collectGuards(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			path, pos := guardOf(field)
			if path == nil {
				continue
			}
			for _, name := range field.Names {
				obj, _ := pass.TypesInfo.Defs[name].(*types.Var)
				if obj == nil {
					continue
				}
				d.guards = append(d.guards, GuardAnnotation{
					Struct: st, Name: name, Obj: obj, Path: path, Pos: pos,
				})
			}
		}
		return true
	})
}

// guardOf extracts a field's guard path from its comments, if any.
func guardOf(field *ast.Field) ([]string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardRe.FindStringSubmatch(c.Text); m != nil {
				// A sentence-final period is prose, not path.
				path := strings.TrimRight(m[1], ".")
				return strings.Split(path, "."), c.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// Allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed by a justified //pipevet:allow on the same line or the
// line directly above.
func (d *Directives) Allowed(analyzer string, pos token.Pos) bool {
	p := d.fset.Position(pos)
	return d.allows[allowKey{analyzer, p.Filename, p.Line}] ||
		d.allows[allowKey{analyzer, p.Filename, p.Line - 1}]
}

// ReportUnjustified reports every //pipevet:allow naming the analyzer
// that carries no "-- <reason>" justification. Unjustified allows are
// not honored, so the diagnostic they meant to suppress also fires.
func (d *Directives) ReportUnjustified(pass *Pass, analyzer string) {
	for _, pos := range d.missing[analyzer] {
		pass.Reportf(pos, "//pipevet:allow %s without a justification; "+
			"write //pipevet:allow %s -- <reason> (the suppression is not honored)",
			analyzer, analyzer)
	}
}

// GuardAnnotations returns the parsed "guarded by" field annotations.
func (d *Directives) GuardAnnotations() []GuardAnnotation { return d.guards }

// PipelinePackage reports whether the package carries the
// //pipevet:pipeline-package scope marker.
func (d *Directives) PipelinePackage() bool { return d.marker }

// HotpathRoot reports whether fd's doc comment carries the
// //repute:hotpath directive.
func HotpathRoot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//repute:hotpath" {
			return true
		}
	}
	return false
}
