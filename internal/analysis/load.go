package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/cl"), or the caller's
	// label for out-of-module directories (analyzer testdata).
	Path string
	Dir  string
	Fset *token.FileSet
	// Files is the syntax under analysis: the package's build-selected
	// GoFiles, plus in-package _test.go files when the loader's
	// IncludeTests is set.
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of one module entirely from
// source: module-internal imports resolve against the module tree and
// everything else falls back to the standard library's source importer.
// No go command and no network are required, which keeps the linter
// usable in the same hermetic environments the simulation targets.
//
// A Loader caches type-checked imports, so loading many packages (or
// many analyzer testdata directories) shares one pass over the
// dependency graph. A Loader is not safe for concurrent use.
type Loader struct {
	// IncludeTests adds in-package _test.go files to loaded targets.
	// External test packages (package foo_test) are not loaded.
	IncludeTests bool

	Fset    *token.FileSet
	modDir  string
	modPath string
	cache   map[string]*types.Package
	std     types.ImporterFrom
}

// NewLoader finds the enclosing module of dir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modDir:  modDir,
		modPath: modPath,
		cache:   map[string]*types.Package{},
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}, nil
}

// findModule walks up from dir to the first go.mod and parses the
// module path from its module directive.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if p, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(p), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// ModuleDir returns the root directory of the loaded module.
func (l *Loader) ModuleDir() string { return l.modDir }

// Load resolves patterns — "./..." trees, "./pkg" directories or
// module-rooted import paths — and returns the matching packages,
// type-checked and sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			dirs[d] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := l.LoadDir(dir, l.importPath(dir))
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns one pattern into candidate package directories.
func (l *Loader) expand(pat string) ([]string, error) {
	root := pat
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		root, recursive = rest, true
		if root == "." || root == "" {
			root = l.modDir
		}
	}
	if strings.HasPrefix(root, l.modPath) {
		// Import-path form: map onto the module tree.
		rel := strings.TrimPrefix(strings.TrimPrefix(root, l.modPath), "/")
		root = filepath.Join(l.modDir, filepath.FromSlash(rel))
	} else if !filepath.IsAbs(root) {
		abs, err := filepath.Abs(root)
		if err != nil {
			return nil, err
		}
		root = abs
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		// Standard go-tool pruning: testdata, hidden and underscore
		// directories never match "..." patterns.
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// importPath maps a module-internal directory to its import path; for
// directories outside the module it falls back to the directory name.
func (l *Loader) importPath(dir string) string {
	if rel, err := filepath.Rel(l.modDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return filepath.Base(dir)
}

// LoadDir loads the single package in dir under the given import path.
// Unlike the import cache it honours IncludeTests, so analyzer targets
// may include their in-package tests without polluting what importers
// of the same package see.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string{}, bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked from the module tree (and cached); everything else goes
// to the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if rel, ok := l.moduleRelative(path); ok {
		dir := filepath.Join(l.modDir, filepath.FromSlash(rel))
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			return nil, err
		}
		files, err := l.parseFiles(dir, bp.GoFiles)
		if err != nil {
			return nil, err
		}
		conf := types.Config{
			Importer: l,
			Sizes:    types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
		}
		pkg, err := conf.Check(path, l.Fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// moduleRelative reports whether path names a package of the loaded
// module and returns its directory relative to the module root.
func (l *Loader) moduleRelative(path string) (string, bool) {
	if path == l.modPath {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return rel, true
	}
	return "", false
}
