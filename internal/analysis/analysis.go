// Package analysis is a minimal, dependency-free port of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check, a Pass hands it one type-checked package, and diagnostics are
// positions plus messages. This repository is a stdlib-only module, so
// rather than vendoring x/tools the few dozen lines of driver contract
// are reimplemented here; analyzers written against this package keep
// the upstream shape (Name/Doc/Run(*Pass)) and could be ported to the
// real framework mechanically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and opt-out comments.
	// It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer run with a single type-checked package and
// a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by Run
}

// Run applies every analyzer to every package and returns the combined
// diagnostics in file/position order. Analyzer errors (not diagnostics)
// abort the run.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				d.Analyzer = name
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if len(pkgs) > 0 {
		sortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
