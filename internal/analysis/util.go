package analysis

// Shared AST/type utilities used by every analyzer suite. These grew up
// inside clvet (PR 2) and moved here when pipevet needed the same
// primitives; they are deliberately tiny and positional — the framework
// has no Fact or Inspector machinery, so analyzers lean on parent
// stacks and direct type lookups instead.

import (
	"go/ast"
	"go/types"
)

// WalkParents traverses root, handing each visited node its ancestor
// stack (nearest last) — the parent context the stdlib Inspect lacks.
func WalkParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// CalleeFunc resolves a call's target to a declared function or method;
// nil for builtins, function-typed variables and conversion calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsMapType reports whether expr has a map type.
func IsMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// FuncDecls maps this package's function and method objects to their
// declarations — the node set a package-local call graph walks.
func FuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// BaseIdent unwraps an expression to the identifier at the root of its
// access chain: parentheses, selectors, indexing, slicing, dereference
// and address-of are stripped. nil when the chain is not ident-rooted
// (a call result, a literal, ...).
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ObjectOf resolves an identifier to its object, checking uses first and
// definitions second (short variable declarations define on first use).
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
