// Testdata for the lockguard analyzer over the device-health shapes of
// internal/cl and internal/serve: a miniature circuit breaker plus a
// partition allocator whose shared fields carry "guarded by" contracts.
// The buggy variants are the exact shortcuts a hot scheduling path
// invites — peeking at breaker state without the lock, flipping a busy
// flag after the release.
package breakerguard

import "sync"

type breakerState int

const (
	stateClosed breakerState = iota
	stateHalfOpen
	stateOpen
)

// breaker mirrors the three-state device circuit breaker: every
// mutable field shares one mutex.
type breaker struct {
	mu       sync.Mutex
	state    breakerState // guarded by mu
	score    float64      // guarded by mu; decayed failure score
	skips    int          // guarded by mu; pass-overs while open
	trips    int64        // guarded by mu; transitions into Open
	readmits int64        // guarded by mu; half-open canaries that closed it
}

// recordFailure is the well-behaved transition path.
func (b *breaker) recordFailure() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.score++
	if b.score >= 3 {
		b.state = stateOpen
		b.trips++
	}
	return b.state
}

// peekState is the tempting lock-free read a scheduler loop wants; the
// breaker state races with the worker flipping it.
func (b *breaker) peekState() breakerState {
	return b.state // want `field state is guarded by mu, which is not held here`
}

// decayAfterUnlock keeps mutating past the critical section.
func (b *breaker) decayAfterUnlock() {
	b.mu.Lock()
	b.score *= 0.5
	b.mu.Unlock()
	b.skips++ // want `field skips is guarded by mu, which is not held here`
}

// wrongBreaker holds its own lock while readmitting a peer.
func (b *breaker) wrongBreaker(peer *breaker) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateClosed
	peer.readmits++ // want `field readmits is guarded by mu, which is not held here; lock peer\.mu first`
}

// allocator mirrors the serve partition allocator: the busy set is the
// shared truth every dispatcher decision reads.
type allocator struct {
	mu   sync.Mutex
	busy []bool // guarded by mu
}

// acquire scans and claims under the lock.
func (a *allocator) acquire() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, taken := range a.busy {
		if !taken {
			a.busy[i] = true
			return i
		}
	}
	return -1
}

// release forgets the lock entirely — the classic partition double-grant.
func (a *allocator) release(i int) {
	a.busy[i] = false // want `field busy is guarded by mu, which is not held here`
}

// construct documents the single-owner escape hatch.
func construct(n int) *allocator {
	a := &allocator{}
	//pipevet:allow lockguard -- a is not shared until returned
	a.busy = make([]bool, n)
	return a
}
