// Testdata for the hotalloc analyzer against the pre-alignment filter
// hot path: Prepare/Accept run once per candidate window, so every mask
// and register must live in receiver-owned scratch — a fresh slice per
// call would dominate the filter's own cost.
package prefilterhot

import "fmt"

type filterState struct {
	peq [4][]uint64
	acc []uint64
	m   []uint64
}

// Accept is the per-candidate hot-path root.
//
//repute:hotpath
func (st *filterState) Accept(window []byte, wp int) bool {
	// Receiver-owned growth is the sanctioned idiom.
	if cap(st.acc) < wp {
		st.acc = make([]uint64, wp)
		st.m = make([]uint64, wp)
	}
	st.acc = st.acc[:wp]
	st.m = st.m[:wp]

	shifted := make([]uint64, wp) // want `hot path allocates with make outside caller-owned scratch`
	for w := 0; w < wp; w++ {
		st.m[w] = st.peq[0][w] & shifted[w]
		st.acc[w] |= st.m[w]
	}
	var ones []int
	for w := 0; w < wp; w++ {
		if st.acc[w] != 0 {
			ones = append(ones, w) // want `hot path appends outside caller-owned scratch`
		}
	}
	return len(ones) > 0
}

// Prepare reaches the same rules transitively through debugLabel.
//
//repute:hotpath
func (st *filterState) Prepare(pattern []byte) string {
	for c := range st.peq {
		st.peq[c] = st.peq[c][:0]
	}
	return debugLabel(len(pattern))
}

func debugLabel(n int) string {
	return fmt.Sprintf("n=%d", n) // want `hot path calls fmt\.Sprintf`
}
