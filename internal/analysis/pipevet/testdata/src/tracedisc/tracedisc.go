// Testdata for the tracedisc analyzer: span Begin/End pairing on all
// paths, and metric-name conventions at registry call sites.
package tracedisc

import (
	"errors"

	"repro/internal/trace"
)

// deferredEnd is the idiomatic pairing: clean.
func deferredEnd(r *trace.Recorder, t float64) {
	id := r.Begin("device0", "enqueue", t)
	defer r.End(id, t+1)
	work()
}

// deferredClosure ends inside a deferred closure: clean.
func deferredClosure(r *trace.Recorder, t float64) {
	id := r.Begin("device0", "enqueue", t)
	defer func() {
		r.End(id, t+1)
	}()
	work()
}

// inlineSingle ends before the only return: clean.
func inlineSingle(r *trace.Recorder, t float64) {
	id := r.Begin("device0", "enqueue", t)
	work()
	r.End(id, t+1)
}

// discarded can never be ended.
func discarded(r *trace.Recorder, t float64) {
	r.Begin("device0", "enqueue", t) // want `span id returned by Begin is discarded`
}

// neverEnded opens a span and forgets it.
func neverEnded(r *trace.Recorder, t float64) trace.SpanID {
	id := r.Begin("device0", "enqueue", t) // want `span begun here is never Ended`
	work()
	return id
}

// earlyReturn leaves the span open on the error path.
func earlyReturn(r *trace.Recorder, t float64) error {
	id := r.Begin("device0", "enqueue", t) // want `span begun here is not Ended before every return`
	if err := mayFail(); err != nil {
		return err
	}
	r.End(id, t+1)
	return nil
}

// allowedBegin defers ending to a helper the analyzer cannot see.
func allowedBegin(r *trace.Recorder, t float64) trace.SpanID {
	//pipevet:allow tracedisc -- span handed to the caller, ended there
	return r.Begin("device0", "enqueue", t)
}

// metrics exercises the naming conventions.
func metrics(reg *trace.Registry, lane string) {
	reg.Counter("reads_total").Add(1)
	reg.Counter("enqueues_total/" + lane).Add(1)
	reg.Gauge("queue_depth").Set(3)
	reg.Histogram("enqueue_seconds", []float64{0.1, 1}).Observe(0.2)

	reg.Counter("reads").Add(1)              // want `counter "reads" must name its family with a _total suffix`
	reg.Gauge("depth_total").Set(1)          // want `gauge "depth_total" must not use the _total suffix`
	reg.Counter("Reads_total").Add(1)        // want `family segment "Reads_total" is not snake_case`
	reg.Counter("reads_total/Lane-0").Add(1) // want `segment "Lane-0" is not snake_case`
}

func work() {}

func mayFail() error { return errors.New("x") }
