// Testdata for the lockguard analyzer: fields annotated "guarded by
// <mu>" may only be accessed while the named mutex is held.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type registry struct {
	mu     sync.RWMutex
	counts map[string]int // guarded by mu
	name   string         // immutable after construction, unguarded
}

type wrapper struct {
	ctx *counter
	v   int // guarded by ctx.mu
}

type broken struct {
	n int // guarded by missing: want `guard path "missing" of field n does not resolve`
}

type notAMutex struct {
	lk int
	n  int // guarded by lk: want `guard path "lk" of field n does not resolve`
}

// newCounter constructs via composite literal: no selector, no report.
func newCounter() *counter {
	return &counter{n: 1}
}

// locked accesses under an explicit Lock/Unlock pair.
func (c *counter) locked() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

// deferred keeps the lock held to function exit.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// unlocked reads the guarded field with no lock held.
func (c *counter) unlocked() int {
	return c.n // want `field n is guarded by mu, which is not held here`
}

// afterUnlock accesses again after releasing.
func (c *counter) afterUnlock() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + c.n // want `field n is guarded by mu, which is not held here`
}

// rlocked holds the read side of an RWMutex.
func (r *registry) rlocked(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counts[k]
}

// wrongBase holds a different instance's mutex: the textual lock
// expression does not match the access base.
func transfer(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	b.n-- // want `field n is guarded by mu, which is not held here; lock b\.mu first`
}

// hop resolves a multi-segment guard path through a sibling pointer.
func (w *wrapper) hop() int {
	w.ctx.mu.Lock()
	defer w.ctx.mu.Unlock()
	return w.v
}

// hopUnlocked misses the multi-segment lock.
func (w *wrapper) hopUnlocked() int {
	return w.v // want `field v is guarded by ctx\.mu, which is not held here; lock w\.ctx\.mu first`
}

// singleOwner documents a construction-phase access.
func singleOwner(c *counter) {
	//pipevet:allow lockguard -- c is not shared until returned
	c.n = 0
}
