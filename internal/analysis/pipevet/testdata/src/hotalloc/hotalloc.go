// Testdata for the hotalloc analyzer: //repute:hotpath functions and
// their same-package transitive callees must not allocate outside
// caller-owned scratch.
package hotalloc

import (
	"fmt"
	"sort"
)

type mapper struct {
	buf   []byte
	cands []int
}

type pair struct{ a, b int }

type parseError struct{ msg string }

func (e *parseError) Error() string { return e.msg }

// Verify is a hot-path root.
//
//repute:hotpath
func (m *mapper) Verify(reads [][]byte, out []int) []int {
	// Receiver- and parameter-owned growth is the sanctioned idiom.
	m.buf = make([]byte, 64)
	m.cands = append(m.cands[:0], len(reads))
	out = append(out, len(m.buf))

	// Locals aliased from owned storage stay owned.
	scratch := m.buf
	scratch = append(scratch, 0)

	tmp := make([]int, 4) // want `hot path allocates with make outside caller-owned scratch`
	tmp = append(tmp, 1)  // want `hot path appends outside caller-owned scratch`
	_ = tmp

	seen := map[int]bool{} // want `hot path allocates a map literal`
	_ = seen

	p := &pair{a: 1} // want `hot path allocates a pointer composite literal`
	_ = p

	msg := fmt.Sprintf("%d", len(out)) // want `hot path calls fmt\.Sprintf`
	_ = msg

	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] }) // want `sort\.Slice boxes its argument`

	return helper(out)
}

// helper is not annotated but is reachable from Verify, so the same
// rules apply transitively.
func helper(out []int) []int {
	extra := make([]int, 1) // want `hot path allocates with make outside caller-owned scratch`
	return append(out, extra...)
}

// loops exercises the per-iteration escapes.
//
//repute:hotpath
func loops(reads [][]byte) int {
	total := 0
	for i := 0; i < len(reads); i++ {
		f := func() int { return i } // want `hot path allocates a closure per loop iteration`
		total += f()
	}
	for _, g := range reads {
		item := pair{a: len(g)}
		total += consume(&item) // want `address of loop-local item escapes through this call`
	}
	var hoisted pair
	for _, g := range reads {
		hoisted = pair{a: len(g)}
		total += consume(&hoisted)
	}
	return total
}

func consume(p *pair) int { return p.a }

// failure paths are exempt: errors are not hot.
//
//repute:hotpath
func validate(reads [][]byte) error {
	for i, g := range reads {
		if len(g) == 0 {
			return &parseError{msg: fmt.Sprintf("read %d empty", i)}
		}
	}
	return nil
}

// amortised documents a per-batch allocation with a justified allow.
//
//repute:hotpath
func amortised(reads [][]byte) []int {
	//pipevet:allow hotalloc -- output slice retained by the caller, one per batch
	res := make([]int, 0, len(reads))
	for _, g := range reads {
		res = append(res, len(g)) // want `hot path appends outside caller-owned scratch`
	}
	return res
}

// cold is not reachable from any hot root and may allocate freely.
func cold() map[string][]int {
	m := map[string][]int{}
	m["x"] = append(m["x"], 1)
	return m
}
