// Testdata for the pipedeterminism analyzer: pipeline packages must
// not let wall clocks, global math/rand, or map iteration order reach
// outputs or serialized state.
//
//pipevet:pipeline-package
package pipedeterminism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// clocks exercises the wall-clock rules.
func clocks() time.Duration {
	t0 := time.Now()             // want `wall-clock call time\.Now`
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
	return time.Since(t0)        // want `wall-clock call time\.Since`
}

// allowedClock carries a justified suppression and is clean.
func allowedClock() time.Time {
	//pipevet:allow pipedeterminism -- ingest heartbeat uses host time by design
	return time.Now()
}

// unjustifiedAllow is not honored: both the directive and the call fire.
func unjustifiedAllow() time.Time {
	/* want `without a justification` */ //pipevet:allow pipedeterminism
	return time.Now()                    // want `wall-clock call time\.Now`
}

// randomness: package-level math/rand shares ambient global state;
// methods on a seeded *rand.Rand are deterministic.
func randomness() int {
	n := rand.Intn(10) // want `global math/rand call rand\.Intn`
	rng := rand.New(rand.NewSource(42))
	return n + rng.Intn(10)
}

// duration arithmetic on time values is fine; only the listed
// package-level functions are clock reads.
func durationMath(d time.Duration) float64 {
	return d.Seconds()
}

// collectUnsorted lets map order determine element order.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order determines the element order of keys`
	}
	return keys
}

// collectSorted is the collect-then-sort idiom and is clean.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// innerScratch appends to a slice declared inside the range body.
func innerScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// emit writes in map order.
func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order reaches an output`
	}
}

// send leaks map order through a channel.
func send(ch chan string, m map[string]bool) {
	for k := range m {
		ch <- k // want `map iteration order reaches a channel send`
	}
}

// floatSums: scalar float accumulation in map order is order-sensitive;
// integer tallies and per-key writes are exempt.
func floatSums(m map[string]float64) (float64, int) {
	var sum float64
	var n int
	out := map[string]float64{}
	for k, v := range m {
		sum += v // want `float accumulation in map-iteration order`
		n++
		out[k] += v
	}
	return sum, n
}

// allowedRange suppresses the whole range statement.
func allowedRange(m map[string]int) []string {
	var keys []string
	//pipevet:allow pipedeterminism -- debug dump, order-insensitive consumer
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
