// Testdata for the errwrap analyzer, which applies only inside package
// cl: every function-local error construction must stay reachable by
// errors.Is classification.
package cl

import (
	"errors"
	"fmt"
)

// ErrThrottle is a package-level sentinel: this is how sentinels are
// born, and it is legal.
var ErrThrottle = errors.New("cl: throttled")

// Error is a stand-in for the typed cl error.
type Error struct {
	Code int
	Op   string
}

func (e *Error) Error() string { return fmt.Sprintf("cl: %s: code %d", e.Op, e.Code) }

// typed returns the typed error: clean.
func typed(op string) error {
	return &Error{Code: -5, Op: op}
}

// wrapped keeps the chain alive with %w: clean.
func wrapped(op string) error {
	return fmt.Errorf("cl: %s: %w", op, ErrThrottle)
}

// bare escapes untyped.
func bare(op string) error {
	return fmt.Errorf("cl: %s failed", op) // want `bare fmt\.Errorf escapes internal/cl untyped`
}

// dynamic cannot be checked for %w.
func dynamic(format string, op string) error {
	return fmt.Errorf(format, op) // want `fmt\.Errorf with a non-constant format`
}

// localNew mints an unclassifiable error inside a function.
func localNew() error {
	return errors.New("cl: oops") // want `errors\.New inside a function escapes internal/cl untyped`
}

// allowedBare documents a deliberate exception.
func allowedBare() error {
	//pipevet:allow errwrap -- parse-time config error, never reaches recovery
	return fmt.Errorf("cl: bad config")
}
