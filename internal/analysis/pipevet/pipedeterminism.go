package pipevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// PipeDeterminism enforces the pipeline-wide determinism contract: the
// guarantees the reproduction is built on — serial and parallel runs
// bit-identical in simulated time/energy, kill-and-resume byte-identical
// in output — hold only while nothing between a record and its mapping
// depends on wall clocks, ambient randomness or map iteration order.
//
// Three sources of nondeterminism are flagged in pipeline packages
// (non-test files of core, cl, checkpoint, fastx, trace, index, sam, or
// any package marked //pipevet:pipeline-package):
//
//   - wall-clock calls (time.Now, Since, Until, Sleep, After, Tick,
//     NewTimer, NewTicker): simulated time comes from the cost model;
//     code that genuinely needs the host clock takes an injected clock
//     and the call site carries a justified //pipevet:allow.
//   - global math/rand (package-level functions of math/rand and
//     math/rand/v2): randomness must come from a seeded *rand.Rand
//     threaded through the pipeline (fastx.Codec is the model).
//   - map ranges whose body feeds an output: appending to a slice
//     declared outside the range (unless the slice is sorted later in
//     the same function), writing/printing/encoding inside the body,
//     sending on a channel, or compound-assigning floats to a target
//     not indexed by the range key (float addition is order-sensitive;
//     integer tallies and per-key writes are order-free and exempt).
var PipeDeterminism = &analysis.Analyzer{
	Name: "pipedeterminism",
	Doc: "check that pipeline packages avoid wall clocks, global math/rand and " +
		"map-iteration order reaching outputs or serialized state",
	Run: runPipeDeterminism,
}

// forbiddenTimeFuncs are the package-level time functions that leak the
// host clock or host scheduling into pipeline state.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func runPipeDeterminism(pass *analysis.Pass) error {
	dirs := analysis.NewDirectives(pass)
	if !isPipelinePackage(pass, dirs) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		analysis.WalkParents(f, func(n ast.Node, parents []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, dirs, n)
			case *ast.RangeStmt:
				if analysis.IsMapType(pass.TypesInfo, n.X) {
					checkMapRange(pass, dirs, n, parents)
				}
			}
		})
	}
	dirs.ReportUnjustified(pass, "pipedeterminism")
	return nil
}

func checkNondetCall(pass *analysis.Pass, dirs *analysis.Directives, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] && (sig == nil || sig.Recv() == nil) {
			if !dirs.Allowed("pipedeterminism", call.Pos()) {
				pass.Reportf(call.Pos(),
					"wall-clock call time.%s in a pipeline package: simulated time comes "+
						"from the cost model; inject a clock (and //pipevet:allow the site) "+
						"if host time is genuinely needed", fn.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		// Methods on an explicitly seeded *rand.Rand are deterministic,
		// and so are the constructors (New, NewSource, NewPCG, ...) that
		// build one; only the remaining package-level functions share
		// ambient global state.
		if sig != nil && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			if !dirs.Allowed("pipedeterminism", call.Pos()) {
				pass.Reportf(call.Pos(),
					"global math/rand call rand.%s in a pipeline package: draw from a "+
						"seeded *rand.Rand threaded through the pipeline instead "+
						"(fastx.Codec is the model)", fn.Name())
			}
		}
	}
}

// checkMapRange flags map-range bodies that let iteration order reach
// an output or serialized state.
func checkMapRange(pass *analysis.Pass, dirs *analysis.Directives,
	rng *ast.RangeStmt, parents []ast.Node) {

	if dirs.Allowed("pipedeterminism", rng.Pos()) {
		return
	}
	keyObj := rangeKeyObj(pass, rng)
	encFunc := enclosingFunc(parents)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, dirs, rng, encFunc, keyObj, n)
		case *ast.SendStmt:
			report(pass, dirs, n.Pos(),
				"map iteration order reaches a channel send; iterate sorted keys instead")
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil && isWriterCall(fn.Name()) {
				report(pass, dirs, n.Pos(),
					"map iteration order reaches an output (%s call inside a map range); "+
						"iterate sorted keys instead", fn.Name())
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, dirs *analysis.Directives,
	rng *ast.RangeStmt, encFunc ast.Node, keyObj types.Object, as *ast.AssignStmt) {

	// x = append(x, ...) growing a slice declared outside the range: the
	// element order is the map's iteration order. Exempt when the slice
	// is sorted later in the same function (the collect-then-sort idiom).
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				target, _ := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if target == nil {
					report(pass, dirs, as.Pos(),
						"map iteration order determines append order into shared state; "+
							"iterate sorted keys instead")
					continue
				}
				obj := analysis.ObjectOf(pass.TypesInfo, target)
				if obj == nil || declaredInside(obj, rng) {
					continue
				}
				if sortedAfter(pass, encFunc, rng, obj) {
					continue
				}
				report(pass, dirs, as.Pos(),
					"map iteration order determines the element order of %s; sort it "+
						"afterwards or iterate sorted keys", target.Name)
			}
		}
	}

	// Float compound assignment accumulates in iteration order; float
	// addition is not associative, so the sum depends on the schedule.
	// Per-key writes (m[k] += v with k the range key) touch disjoint
	// slots and are exempt.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
		as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
		for _, lhs := range as.Lhs {
			t := pass.TypesInfo.TypeOf(lhs)
			if t == nil || !isFloat(t) {
				continue
			}
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyObj != nil {
				if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok &&
					analysis.ObjectOf(pass.TypesInfo, id) == keyObj {
					continue
				}
			}
			report(pass, dirs, as.Pos(),
				"float accumulation in map-iteration order is order-sensitive; "+
					"accumulate over sorted keys or per key")
		}
	}
}

func report(pass *analysis.Pass, dirs *analysis.Directives,
	pos token.Pos, format string, args ...any) {
	if !dirs.Allowed("pipedeterminism", pos) {
		pass.Reportf(pos, format, args...)
	}
}

// rangeKeyObj returns the object of the range statement's key ident.
func rangeKeyObj(pass *analysis.Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	return analysis.ObjectOf(pass.TypesInfo, id)
}

// enclosingFunc returns the innermost function node on the parent stack.
func enclosingFunc(parents []ast.Node) ast.Node {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return parents[i]
		}
	}
	return nil
}

// declaredInside reports whether obj is declared within n's range.
func declaredInside(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// sortedAfter reports whether a sort.* / slices.Sort* call with obj as
// its first argument appears after the range statement in the same
// enclosing function — the canonical collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, encFunc ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	if encFunc == nil {
		return false
	}
	found := false
	ast.Inspect(encFunc, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok &&
			analysis.ObjectOf(pass.TypesInfo, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isWriterCall reports whether a callee name is output-shaped.
func isWriterCall(name string) bool {
	for _, prefix := range []string{"Fprint", "Print", "Write", "Encode"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
