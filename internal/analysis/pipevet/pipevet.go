// Package pipevet statically enforces whole-pipeline discipline — the
// invariants the reproduction's guarantees rest on but that no
// fixed-seed test reliably exercises. clvet (PR 2) gates the kernel
// contract inside cl.Kernel bodies; pipevet extends the same treatment
// to the host layers the kernels run in:
//
//   - pipedeterminism: pipeline packages (core, cl, checkpoint, fastx,
//     trace, index, sam) must not read wall clocks, draw from the global
//     math/rand source, or let map iteration order reach outputs or
//     serialized state — the serial/parallel and kill-and-resume
//     bit-identity guarantees depend on it.
//   - lockguard: struct fields annotated "guarded by <mu>" may only be
//     accessed while the named mutex is held (the Buffer.Free race
//     fixed by hand in PR 2, as a compile-time class of bug).
//   - errwrap: every error constructed in internal/cl must be a typed
//     *cl.Error / Code sentinel, or wrap one with %w — a bare
//     fmt.Errorf starves the fault-recovery classification
//     (IsTransient / IsAllocFailure / IsDeviceLost).
//   - tracedisc: every trace span Begin is Ended on all paths
//     (including error returns), and metric names at registry call
//     sites follow the conventions (snake_case segments, counters end
//     in _total).
//   - hotalloc: functions annotated //repute:hotpath — and everything
//     they transitively call in the same package — must not allocate
//     outside caller-owned scratch; error-path constructions are
//     exempt, and amortised allocations carry a justified
//     //pipevet:allow.
//
// Suppressions use //pipevet:allow <analyzer> -- <reason> on the
// offending line or the line above; the reason is mandatory
// (internal/analysis/directives.go). DESIGN.md §13 documents each
// analyzer's contract.
package pipevet

import (
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Analyzers returns the full pipevet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		PipeDeterminism,
		LockGuard,
		ErrWrap,
		TraceDisc,
		HotAlloc,
	}
}

// pipelineDirs are the internal packages under the determinism
// contract: everything between reading a record and writing a mapping,
// plus the state that round-trips through checkpoints and traces.
var pipelineDirs = map[string]bool{
	"core": true, "cl": true, "checkpoint": true, "fastx": true,
	"trace": true, "index": true, "sam": true,
}

// isPipelinePackage reports whether the pass's package is in
// pipedeterminism scope: one of the named internal packages, or any
// package carrying the //pipevet:pipeline-package marker.
func isPipelinePackage(pass *analysis.Pass, dirs *analysis.Directives) bool {
	path := pass.Pkg.Path()
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	if pipelineDirs[base] && strings.Contains(path, "internal/") {
		return true
	}
	return dirs.PipelinePackage()
}

// isTestFile reports whether the AST file is an in-package _test.go
// file. pipevet checks production discipline; tests may fake clocks,
// leave spans open around failure assertions and allocate freely, so
// every analyzer in the suite skips them.
func isTestFile(pass *analysis.Pass, f interface{ Pos() token.Pos }) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
