package pipevet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// TraceDisc enforces trace discipline at the two places it decays:
//
// Span pairing. trace.Tracer.Begin opens a span whose duration only
// exists once End is called; a Begin that misses End on some path —
// typically an early error return added after the span was — leaves the
// recorder with an open span, fails Recorder.Validate, and exports a
// broken timeline. For every Begin whose result is bound to an
// identifier, the analyzer accepts a deferred End of that id (closures
// included) as covering all paths; otherwise it requires an inline End
// before every return of the enclosing function that follows the Begin
// in source order, and at least one End overall. A Begin whose SpanID
// is discarded can never be ended and is always flagged.
//
// Metric names. Registry call sites (Counter/Gauge/Histogram) are where
// the metric namespace is minted, so conventions are checked there:
// names are snake_case segments separated by "/" (dynamic suffixes like
// per-lane names concatenate after a literal prefix ending in "/"),
// counters end their family segment in _total, gauges and histograms
// must not. Constant-foldable names are checked exactly; a literal
// prefix of a concatenation is checked as a prefix.
var TraceDisc = &analysis.Analyzer{
	Name: "tracedisc",
	Doc: "check trace span Begin/End pairing on all paths and metric-name " +
		"conventions (snake_case, _total counters) at registry call sites",
	Run: runTraceDisc,
}

func runTraceDisc(pass *analysis.Pass) error {
	dirs := analysis.NewDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpanPairing(pass, dirs, fd)
			}
		}
		analysis.WalkParents(f, func(n ast.Node, parents []ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				checkMetricName(pass, dirs, call)
			}
		})
	}
	dirs.ReportUnjustified(pass, "tracedisc")
	return nil
}

// isTracePackage reports whether pkg is the tracing package.
func isTracePackage(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "repro/internal/trace" ||
		strings.HasSuffix(pkg.Path(), "/internal/trace"))
}

// traceMethodCall resolves call to a method of the trace package with
// the given name (interface or concrete receiver).
func traceMethodCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != name || !isTracePackage(fn.Pkg()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// beginSite is one Begin call in a function.
type beginSite struct {
	call *ast.CallExpr
	id   types.Object // nil when the result is discarded
}

// endSite is one End call in a function.
type endSite struct {
	pos      token.Pos
	id       types.Object
	deferred bool
}

// checkSpanPairing analyzes one function declaration. The scope is the
// whole declaration including nested closures — a deferred closure
// calling End is the idiomatic pairing — but return statements inside
// closures belong to the closure, not the function, and are ignored.
func checkSpanPairing(pass *analysis.Pass, dirs *analysis.Directives, fd *ast.FuncDecl) {
	var (
		begins  []beginSite
		ends    []endSite
		returns []token.Pos
	)
	analysis.WalkParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if traceMethodCall(pass, n, "Begin") {
				begins = append(begins, beginSite{call: n, id: beginTarget(pass, n, parents)})
			}
			if traceMethodCall(pass, n, "End") && len(n.Args) > 0 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil {
						ends = append(ends, endSite{
							pos: n.Pos(), id: obj, deferred: underDefer(parents),
						})
					}
				}
			}
		case *ast.ReturnStmt:
			if sameScope(parents) {
				returns = append(returns, n.Pos())
			}
		}
	})

	for _, b := range begins {
		if dirs.Allowed("tracedisc", b.call.Pos()) {
			continue
		}
		if b.id == nil {
			pass.Reportf(b.call.Pos(),
				"span id returned by Begin is discarded; the span can never be "+
					"Ended — bind the id and defer End")
			continue
		}
		var deferredEnd bool
		var inline []token.Pos
		for _, e := range ends {
			if e.id != b.id {
				continue
			}
			if e.deferred {
				deferredEnd = true
			} else {
				inline = append(inline, e.pos)
			}
		}
		if deferredEnd {
			continue
		}
		if len(inline) == 0 {
			pass.Reportf(b.call.Pos(),
				"span begun here is never Ended; defer End(id, ...) so error paths "+
					"close it too")
			continue
		}
		for _, ret := range returns {
			if ret < b.call.End() {
				continue
			}
			covered := false
			for _, e := range inline {
				if e > b.call.Pos() && e < ret {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(b.call.Pos(),
					"span begun here is not Ended before every return (a return at %s "+
						"leaves it open); defer End(id, ...) to cover all paths",
					pass.Fset.Position(ret))
				break
			}
		}
	}
}

// beginTarget returns the object the Begin call's result is bound to,
// or nil when it is discarded.
func beginTarget(pass *analysis.Pass, call *ast.CallExpr, parents []ast.Node) types.Object {
	if len(parents) == 0 {
		return nil
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) == call && i < len(p.Lhs) {
				if id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident); ok {
					return analysis.ObjectOf(pass.TypesInfo, id)
				}
			}
		}
	case *ast.ValueSpec:
		for i, v := range p.Values {
			if ast.Unparen(v) == call && i < len(p.Names) {
				return analysis.ObjectOf(pass.TypesInfo, p.Names[i])
			}
		}
	}
	return nil
}

// sameScope reports whether a node belongs to the declaration the walk
// is rooted at, with no closure in between — the walk starts at the
// declaration's body, so an empty-of-FuncLit ancestor stack means the
// node's returns are the declaration's own.
func sameScope(parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		if _, ok := parents[i].(*ast.FuncLit); ok {
			return false
		}
	}
	return true
}

// metricSegRe is one snake_case metric path segment.
var metricSegRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// checkMetricName validates the name argument of Registry metric
// constructors.
func checkMetricName(pass *analysis.Pass, dirs *analysis.Directives, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !isTracePackage(fn.Pkg()) {
		return
	}
	kind := fn.Name()
	if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || len(call.Args) == 0 {
		return
	}
	if rt := sig.Recv().Type(); !isNamedType(rt, "Registry") {
		return
	}
	name, exact := literalMetricName(pass, call.Args[0])
	if name == "" || dirs.Allowed("tracedisc", call.Pos()) {
		return
	}

	family, rest, _ := strings.Cut(name, "/")
	if !metricSegRe.MatchString(family) {
		pass.Reportf(call.Pos(),
			"metric name %q: family segment %q is not snake_case ([a-z][a-z0-9_]*)",
			name, family)
		return
	}
	if exact && rest != "" {
		for _, seg := range strings.Split(rest, "/") {
			if !metricSegRe.MatchString(seg) {
				pass.Reportf(call.Pos(),
					"metric name %q: segment %q is not snake_case", name, seg)
				return
			}
		}
	}
	totalFamily := strings.HasSuffix(family, "_total")
	if kind == "Counter" && !totalFamily {
		pass.Reportf(call.Pos(),
			"counter %q must name its family with a _total suffix", name)
	}
	if kind != "Counter" && totalFamily {
		pass.Reportf(call.Pos(),
			"%s %q must not use the _total suffix (reserved for counters)",
			strings.ToLower(kind), name)
	}
}

// isNamedType reports whether t (possibly behind a pointer) is the
// named type with the given name.
func isNamedType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

// literalMetricName extracts the compile-time-known part of a metric
// name expression: a constant-foldable string is exact; a constant
// prefix of a concatenation (name + lane) is checked as the family,
// with its trailing "/" stripped. Fully dynamic names return "".
func literalMetricName(pass *analysis.Pass, arg ast.Expr) (name string, exact bool) {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil &&
		tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	e := ast.Unparen(arg)
	for {
		bin, ok := e.(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			return "", false
		}
		if tv, ok := pass.TypesInfo.Types[bin.X]; ok && tv.Value != nil &&
			tv.Value.Kind() == constant.String {
			return strings.TrimSuffix(constant.StringVal(tv.Value), "/"), false
		}
		e = ast.Unparen(bin.X)
	}
}
