package pipevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// LockGuard enforces "guarded by" field annotations: a struct field
// whose doc or trailing comment says "guarded by <path>" may only be
// read or written while the named mutex is held. The guard path is
// resolved against sibling fields — "mu" names a mutex in the same
// struct, "ctx.mu" a mutex one field-hop away — and must end at a
// sync.Mutex or sync.RWMutex; annotations that do not resolve are
// themselves reported.
//
// The check is a source-order sweep per function: a <base>.<path>.Lock()
// or RLock() call marks the rendered lock expression held, a plain
// Unlock()/RUnlock() releases it, and a deferred unlock keeps it held to
// the end of the function. Each access to an annotated field requires
// the matching lock expression — the access base plus the guard path,
// compared textually — to be held at that point in source order.
// Branch-sensitive flows (conditionally acquired locks, goroutine
// handoffs) are beyond the sweep; a justified //pipevet:allow documents
// those sites.
//
// Constructors are naturally exempt: composite literals name fields
// without selector syntax, and a value not yet shared needs no lock.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "check that fields annotated \"guarded by <mu>\" are only accessed " +
		"with the named mutex held",
	Run: runLockGuard,
}

// fieldGuard is one validated annotation: the field object and the
// dot-joined guard path.
type fieldGuard struct {
	path []string
}

func runLockGuard(pass *analysis.Pass) error {
	dirs := analysis.NewDirectives(pass)
	guards := map[*types.Var]fieldGuard{}
	for _, ann := range dirs.GuardAnnotations() {
		if !validGuardPath(pass, ann) {
			pass.Reportf(ann.Pos,
				"guard path %q of field %s does not resolve to a sync.Mutex/RWMutex "+
					"reachable from sibling fields", strings.Join(ann.Path, "."), ann.Name.Name)
			continue
		}
		guards[ann.Obj] = fieldGuard{path: ann.Path}
	}
	if len(guards) > 0 {
		for _, f := range pass.Files {
			if isTestFile(pass, f) {
				continue
			}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkGuardedAccesses(pass, dirs, guards, fd)
				}
			}
		}
	}
	dirs.ReportUnjustified(pass, "lockguard")
	return nil
}

// validGuardPath resolves ann.Path against the annotated field's struct
// and checks the final type is a sync mutex.
func validGuardPath(pass *analysis.Pass, ann analysis.GuardAnnotation) bool {
	t := pass.TypesInfo.TypeOf(ann.Struct)
	for _, seg := range ann.Path {
		st, ok := deref(t).Underlying().(*types.Struct)
		if !ok {
			return false
		}
		var next types.Type
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == seg {
				next = st.Field(i).Type()
				break
			}
		}
		if next == nil {
			return false
		}
		t = next
	}
	return isMutexType(t)
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lgEvent is one lock-relevant happening in a function, ordered by
// source position.
type lgEvent struct {
	pos      token.Pos
	kind     int // 0 = lock, 1 = unlock, 2 = guarded access
	key      string
	deferred bool
	field    string // access events: field name for the message
	guard    string // access events: required lock expression
}

// checkGuardedAccesses sweeps one function in source order.
func checkGuardedAccesses(pass *analysis.Pass, dirs *analysis.Directives,
	guards map[*types.Var]fieldGuard, fd *ast.FuncDecl) {

	var events []lgEvent
	analysis.WalkParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			var kind int
			switch sel.Sel.Name {
			case "Lock", "RLock":
				kind = 0
			case "Unlock", "RUnlock":
				kind = 1
			default:
				return
			}
			if t := pass.TypesInfo.TypeOf(sel.X); t == nil || !isMutexType(t) {
				return
			}
			events = append(events, lgEvent{
				pos: n.Pos(), kind: kind,
				key:      types.ExprString(sel.X),
				deferred: underDefer(parents),
			})
		case *ast.SelectorExpr:
			fv, ok := pass.TypesInfo.Uses[n.Sel].(*types.Var)
			if !ok {
				return
			}
			g, ok := guards[fv]
			if !ok {
				return
			}
			events = append(events, lgEvent{
				pos: n.Pos(), kind: 2,
				key:   types.ExprString(n.X) + "." + strings.Join(g.path, "."),
				field: n.Sel.Name,
				guard: strings.Join(g.path, "."),
			})
		}
	})
	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.key] = true
		case 1:
			// A deferred unlock releases at function exit, after every
			// later access in source order — the lock stays held for the
			// sweep's purposes.
			if !ev.deferred {
				held[ev.key] = false
			}
		case 2:
			if !held[ev.key] && !dirs.Allowed("lockguard", ev.pos) {
				pass.Reportf(ev.pos,
					"field %s is guarded by %s, which is not held here; lock %s first "+
						"(or //pipevet:allow lockguard -- <reason> for single-owner phases)",
					ev.field, ev.guard, ev.key)
			}
		}
	}
}

// underDefer reports whether the node's ancestors include a defer
// statement (directly deferred calls and calls inside deferred
// closures both run at function exit).
func underDefer(parents []ast.Node) bool {
	for _, p := range parents {
		if _, ok := p.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}
