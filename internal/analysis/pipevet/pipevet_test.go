package pipevet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pipevet"
)

func TestPipeDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", pipevet.PipeDeterminism, "pipedeterminism")
}

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", pipevet.LockGuard, "lockguard")
}

func TestLockGuardBreaker(t *testing.T) {
	analysistest.Run(t, "testdata", pipevet.LockGuard, "breakerguard")
}

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, "testdata", pipevet.ErrWrap, "errwrap")
}

func TestTraceDisc(t *testing.T) {
	analysistest.Run(t, "testdata", pipevet.TraceDisc, "tracedisc")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", pipevet.HotAlloc, "hotalloc")
}

func TestHotAllocPrefilter(t *testing.T) {
	analysistest.Run(t, "testdata", pipevet.HotAlloc, "prefilterhot")
}

func TestAnalyzersListsAllFive(t *testing.T) {
	want := map[string]bool{
		"pipedeterminism": true, "lockguard": true, "errwrap": true,
		"tracedisc": true, "hotalloc": true,
	}
	got := pipevet.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("missing analyzer %q", name)
	}
}
