package pipevet

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// ErrWrap closes the fault-classification loophole: internal/core's
// recovery policies dispatch on errors.Is against the cl status-code
// sentinels (IsTransient retries in place, IsAllocFailure halves the
// batch, IsDeviceLost fails the span over), so an error born in
// internal/cl as a bare fmt.Errorf or errors.New is invisible to every
// one of them — the pipeline would treat an injected CL_OUT_OF_RESOURCES
// dressed in fmt.Errorf clothing as an unclassifiable fatal error.
//
// Inside package cl, every function-local error construction must be
// typed: a *cl.Error / *cl.AllocError composite, a Code sentinel, or a
// fmt.Errorf that wraps one with %w (package-level errors.New is how
// sentinels are born and stays legal). The check is syntactic; it does
// not prove the %w operand is itself typed, but a wrapped chain keeps
// errors.Is reachable, which is the property recovery needs.
var ErrWrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "check that every error constructed in internal/cl is a typed *Error/Code " +
		"sentinel or wraps one with %w, keeping errors.Is classification alive",
	Run: runErrWrap,
}

func runErrWrap(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "cl" {
		return nil
	}
	dirs := analysis.NewDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		analysis.WalkParents(f, func(n ast.Node, parents []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			switch {
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				if dirs.Allowed("errwrap", call.Pos()) {
					return
				}
				switch wrapVerb(call) {
				case wrapYes:
				case wrapNo:
					pass.Reportf(call.Pos(),
						"bare fmt.Errorf escapes internal/cl untyped: recovery classifies "+
							"faults with errors.Is (IsTransient/IsAllocFailure/IsDeviceLost); "+
							"return a *Error/Code sentinel or wrap one with %%w")
				case wrapUnknown:
					pass.Reportf(call.Pos(),
						"fmt.Errorf with a non-constant format cannot be checked for %%w; "+
							"use a constant format wrapping a typed cl error")
				}
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				if enclosingFunc(parents) == nil {
					return // package-level sentinel declaration
				}
				if !dirs.Allowed("errwrap", call.Pos()) {
					pass.Reportf(call.Pos(),
						"errors.New inside a function escapes internal/cl untyped; declare "+
							"a package-level sentinel or return a *Error with a Code")
				}
			}
		})
	}
	dirs.ReportUnjustified(pass, "errwrap")
	return nil
}

const (
	wrapYes = iota
	wrapNo
	wrapUnknown
)

// wrapVerb classifies a fmt.Errorf call by its format string.
func wrapVerb(call *ast.CallExpr) int {
	if len(call.Args) == 0 {
		return wrapUnknown
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return wrapUnknown
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return wrapUnknown
	}
	if strings.Contains(format, "%w") {
		return wrapYes
	}
	return wrapNo
}
