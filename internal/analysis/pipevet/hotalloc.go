package pipevet

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// HotAlloc is the static half of the ROADMAP's allocation-discipline
// pass: functions annotated //repute:hotpath — the per-item and
// per-record loops where GC pressure compounds at service QPS — and
// everything they transitively call in the same package must not
// allocate outside caller-owned scratch.
//
// Owned scratch generalises clvet's NewState rule to host code: an
// allocation is fine when its result lands in storage rooted at the
// receiver or a parameter (vs.window = make(...), s.buf = append(s.buf,
// chunk...)), including locals aliased from them (dedup := ms[:1];
// dedup = append(dedup, m) compacts in place within the caller's
// capacity). Everything else is flagged:
//
//   - make / new / append into locals or discarded
//   - map literals and &T{} pointer literals (value composites are
//     assumed stack-allocated and left to escape analysis)
//   - fmt calls, which allocate and reflect on every invocation
//   - sort.Slice / sort.SliceStable / sort.Sort / sort.Stable, which box
//     their arguments per call — slices.SortFunc sorts without boxing
//   - closures created inside loops (one allocation per iteration)
//   - taking the address of a loop-local variable as a call argument,
//     the classic per-item escape (hoist the variable out of the loop)
//
// Error construction is exempt everywhere: expressions whose type —
// or whose enclosing composite's type — implements error are failure
// paths, and failure paths are not hot. Amortised allocations that are
// genuinely per-batch, not per-item, carry a justified //pipevet:allow
// hotalloc; the runtime half of the contract is the AllocsPerRun test
// over the enqueue path (internal/cl/alloc_test.go).
//
// The closure is package-local: a hot function calling into another
// package is trusted at the boundary — annotate the callee in its own
// package to extend coverage.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "check that //repute:hotpath functions and their same-package callees " +
		"do not allocate outside caller-owned scratch",
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	dirs := analysis.NewDirectives(pass)
	cg := analysis.NewCallGraph(pass)
	var roots []*types.Func
	for fn, fd := range cg.Decls() {
		if analysis.HotpathRoot(fd) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		dirs.ReportUnjustified(pass, "hotalloc")
		return nil
	}
	for fn := range cg.Reachable(roots...) {
		fd := cg.DeclOf(fn)
		if fd == nil || fd.Body == nil || isTestFile(pass, fd) {
			continue
		}
		checkHotFunc(pass, dirs, fd)
	}
	dirs.ReportUnjustified(pass, "hotalloc")
	return nil
}

func checkHotFunc(pass *analysis.Pass, dirs *analysis.Directives, fd *ast.FuncDecl) {
	owned := ownedObjects(pass, fd)

	// ownedTarget reports whether an assignment target is rooted at the
	// receiver, a parameter, or an alias of one.
	ownedTarget := func(e ast.Expr) bool {
		id := analysis.BaseIdent(ast.Unparen(e))
		if id == nil {
			return false
		}
		obj := analysis.ObjectOf(pass.TypesInfo, id)
		return obj != nil && owned[obj]
	}

	// ownedAssigned reports whether the expression is the right-hand
	// side of an assignment into owned storage.
	ownedAssigned := func(n ast.Node, parents []ast.Node) bool {
		if len(parents) == 0 {
			return false
		}
		as, ok := parents[len(parents)-1].(*ast.AssignStmt)
		if !ok {
			return false
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) == n && i < len(as.Lhs) {
				return ownedTarget(as.Lhs[i])
			}
		}
		return false
	}

	report := func(pos interface{ Pos() token.Pos }, format string, args ...any) {
		if !dirs.Allowed("hotalloc", pos.Pos()) {
			pass.Reportf(pos.Pos(), format, args...)
		}
	}

	analysis.WalkParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n, parents, ownedTarget, ownedAssigned, report)
		case *ast.CompositeLit:
			if analysis.IsMapType(pass.TypesInfo, n) &&
				!inErrorConstruction(pass, n, parents) && !ownedAssigned(n, parents) {
				report(n, "hot path allocates a map literal; use caller-owned scratch")
			}
		case *ast.UnaryExpr:
			checkHotUnary(pass, n, parents, ownedAssigned, report)
		case *ast.FuncLit:
			if loopDepth(parents) > 0 {
				report(n, "hot path allocates a closure per loop iteration; hoist the "+
					"function value out of the loop")
			}
		}
	})
}

type reportFunc func(pos interface{ Pos() token.Pos }, format string, args ...any)

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, parents []ast.Node,
	ownedTarget func(ast.Expr) bool, ownedAssigned func(ast.Node, []ast.Node) bool,
	report reportFunc) {

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				if !ownedAssigned(call, parents) && !inErrorConstruction(pass, call, parents) {
					report(call, "hot path allocates with %s outside caller-owned scratch; "+
						"reuse a receiver- or parameter-owned buffer", b.Name())
				}
			case "append":
				// append grows its first argument's backing array; the
				// allocation is owned when that argument is (the
				// strconv.AppendInt shape: return append(dst, ...)).
				if len(call.Args) > 0 && !ownedTarget(call.Args[0]) &&
					!inErrorConstruction(pass, call, parents) {
					report(call, "hot path appends outside caller-owned scratch; grow a "+
						"receiver- or parameter-owned slice instead")
				}
			}
			return
		}
	}

	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if !inErrorConstruction(pass, call, parents) {
			report(call, "hot path calls fmt.%s, which allocates on every call; "+
				"format off the hot path", fn.Name())
		}
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable":
			report(call, "sort.%s boxes its argument and allocates per call on a hot "+
				"path; use slices.SortFunc", fn.Name())
		}
	}
}

func checkHotUnary(pass *analysis.Pass, n *ast.UnaryExpr, parents []ast.Node,
	ownedAssigned func(ast.Node, []ast.Node) bool, report reportFunc) {

	if n.Op.String() != "&" {
		return
	}
	switch x := ast.Unparen(n.X).(type) {
	case *ast.CompositeLit:
		if !inErrorConstruction(pass, n, parents) && !ownedAssigned(n, parents) {
			report(n, "hot path allocates a pointer composite literal; reuse "+
				"caller-owned storage")
		}
	case *ast.Ident:
		// &loopLocal passed as a call argument: the address escapes
		// through the call, so the compiler heap-allocates a fresh
		// variable every iteration.
		if len(parents) == 0 {
			return
		}
		if _, ok := parents[len(parents)-1].(*ast.CallExpr); !ok {
			return
		}
		obj := analysis.ObjectOf(pass.TypesInfo, x)
		if obj == nil {
			return
		}
		if loop := innermostLoop(parents); loop != nil &&
			loop.Pos() <= obj.Pos() && obj.Pos() < loop.End() {
			report(n, "address of loop-local %s escapes through this call, "+
				"heap-allocating per iteration; declare it before the loop", x.Name)
		}
	}
}

// ownedObjects seeds the owned set with the receiver and parameters,
// then adds locals aliased from them through ident-rooted expressions
// (slices, type assertions, field chains) in a source-order pass.
func ownedObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	addField := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			src := analysis.BaseIdent(ast.Unparen(rhs))
			if src == nil {
				continue
			}
			srcObj := analysis.ObjectOf(pass.TypesInfo, src)
			if srcObj == nil || !owned[srcObj] {
				continue
			}
			if obj := analysis.ObjectOf(pass.TypesInfo, lhs); obj != nil {
				owned[obj] = true
			}
		}
		return true
	})
	return owned
}

// inErrorConstruction reports whether the node builds (part of) an
// error value: its own type implements error, or an enclosing
// expression's does. Failure paths allocate; they are not hot.
func inErrorConstruction(pass *analysis.Pass, n ast.Node, parents []ast.Node) bool {
	if e, ok := n.(ast.Expr); ok && typeIsError(pass.TypesInfo.TypeOf(e)) {
		return true
	}
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.KeyValueExpr, *ast.ParenExpr:
			continue
		case ast.Expr:
			if typeIsError(pass.TypesInfo.TypeOf(p)) {
				return true
			}
		default:
			return false
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// typeIsError reports whether t (or *t) implements error.
func typeIsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// loopDepth counts loop statements between the node and its nearest
// enclosing function node — a closure resets the count, because the
// allocation happens per invocation of the closure, not per iteration
// of a loop outside it.
func loopDepth(parents []ast.Node) int {
	depth := 0
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		case *ast.FuncLit, *ast.FuncDecl:
			return depth
		}
	}
	return depth
}

// innermostLoop returns the nearest enclosing loop within the same
// function scope, or nil.
func innermostLoop(parents []ast.Node) ast.Node {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return parents[i]
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}
