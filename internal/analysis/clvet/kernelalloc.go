package clvet

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// KernelAlloc enforces the OpenCL 1.2 "no dynamic allocation in
// kernels" rule the paper designs around: outputs live in fixed slots
// prepared by the host, and the only sanctioned growth is amortised
// kernel-state scratch (st.buf = make(...) / st.buf = append(st.buf,
// ...) where st comes from the body's state parameter). Maps are
// forbidden entirely — creation and writes — and fmt calls, which
// allocate on every invocation, are flagged.
//
// The check is syntactic over the body literal: helpers the body calls
// are the author's responsibility (their costs are already folded into
// the cost model the same way).
var KernelAlloc = &analysis.Analyzer{
	Name: "kernelalloc",
	Doc: "check that simulated-OpenCL kernel bodies do not allocate dynamically: " +
		"make/new/append only into NewState-owned scratch, no maps, no fmt",
	Run: runKernelAlloc,
}

func runKernelAlloc(pass *analysis.Pass) error {
	for _, site := range kernelSites(pass) {
		if site.body != nil {
			checkAlloc(pass, site)
		}
	}
	return nil
}

func checkAlloc(pass *analysis.Pass, site kernelSite) {
	body := site.body
	aliases := stateAliases(pass, site)

	// isStateTarget reports whether e writes into kernel state: its base
	// identifier is the state parameter or a local bound to it.
	isStateTarget := func(e ast.Expr) bool {
		base, _ := writeTarget(e)
		if base == nil {
			return false
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil {
			obj = pass.TypesInfo.Defs[base]
		}
		return obj != nil && aliases[obj]
	}

	// stateAssigned reports whether call is the right-hand side of an
	// assignment whose matching left-hand side is kernel state.
	stateAssigned := func(call *ast.CallExpr, parents []ast.Node) bool {
		if len(parents) == 0 {
			return false
		}
		as, ok := parents[len(parents)-1].(*ast.AssignStmt)
		if !ok {
			return false
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) == call && i < len(as.Lhs) {
				return isStateTarget(as.Lhs[i])
			}
		}
		return false
	}

	walkWithParents(body.Body, func(n ast.Node, parents []ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(pass, ix.X) {
					pass.Reportf(n.Pos(),
						"kernel body writes a map; OpenCL kernels have no maps — "+
							"use fixed slots or kernel-state slices")
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapType(pass, ix.X) {
				pass.Reportf(n.Pos(), "kernel body writes a map; OpenCL kernels have no maps — "+
					"use fixed slots or kernel-state slices")
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "kernel body allocates a map literal; "+
						"OpenCL kernels have no maps")
				}
			}
		case *ast.CallExpr:
			checkAllocCall(pass, n, parents, stateAssigned)
		}
	})
}

// checkAllocCall flags allocation-shaped calls inside a kernel body.
func checkAllocCall(pass *analysis.Pass, call *ast.CallExpr,
	parents []ast.Node, stateAssigned func(*ast.CallExpr, []ast.Node) bool) {

	// Builtins: make / new / append / delete / clear.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				t := pass.TypesInfo.TypeOf(call)
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(call.Pos(), "kernel body allocates a map; OpenCL kernels have no maps")
				case *types.Chan:
					pass.Reportf(call.Pos(), "kernel body allocates a channel; kernels cannot synchronise")
				default:
					if !stateAssigned(call, parents) {
						pass.Reportf(call.Pos(),
							"kernel body allocates with make outside kernel state; "+
								"grow a NewState-owned buffer instead")
					}
				}
			case "new":
				if !stateAssigned(call, parents) {
					pass.Reportf(call.Pos(),
						"kernel body allocates with new outside kernel state; "+
							"move the value into cl.Kernel.NewState")
				}
			case "append":
				if !stateAssigned(call, parents) {
					pass.Reportf(call.Pos(),
						"kernel body appends outside kernel state; outputs are fixed slots "+
							"and scratch belongs in cl.Kernel.NewState")
				}
			case "delete":
				pass.Reportf(call.Pos(), "kernel body writes a map; OpenCL kernels have no maps — "+
					"use fixed slots or kernel-state slices")
			case "clear":
				if len(call.Args) == 1 && isMapType(pass, call.Args[0]) {
					pass.Reportf(call.Pos(), "kernel body writes a map; OpenCL kernels have no maps — "+
						"use fixed slots or kernel-state slices")
				}
			}
			return
		}
	}

	// fmt.* allocates (and reflects) on every call.
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"kernel body calls fmt.%s, which allocates on every work item; "+
				"format on the host instead", fn.Name())
	}
}

// stateAliases collects the body's state parameter plus locals bound to
// it via type assertion (st := state.(*kernelState)) or plain copy.
func stateAliases(pass *analysis.Pass, site kernelSite) map[types.Object]bool {
	aliases := map[types.Object]bool{}
	if site.state != nil {
		aliases[site.state] = true
	}
	ast.Inspect(site.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			src := ast.Unparen(rhs)
			if ta, ok := src.(*ast.TypeAssertExpr); ok {
				src = ast.Unparen(ta.X)
			}
			srcID, ok := src.(*ast.Ident)
			if !ok {
				continue
			}
			srcObj := pass.TypesInfo.Uses[srcID]
			if srcObj == nil || !aliases[srcObj] {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				aliases[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				aliases[obj] = true
			}
		}
		return true
	})
	return aliases
}

// isMapType, calleeFunc and walkWithParents delegate to the shared
// framework utilities (they started life here and moved up when pipevet
// needed them too).

func isMapType(pass *analysis.Pass, e ast.Expr) bool {
	return analysis.IsMapType(pass.TypesInfo, e)
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	return analysis.CalleeFunc(pass.TypesInfo, call)
}

func walkWithParents(n ast.Node, visit func(ast.Node, []ast.Node)) {
	analysis.WalkParents(n, visit)
}
