// Package clvet statically enforces the simulated-OpenCL kernel
// contract of internal/cl. The paper's design leans on OpenCL 1.2
// kernel restrictions — no dynamic allocation inside kernels, private
// scratch per work item, work items writing only their own output slot
// — and PR 1 turned them into a social contract on cl.Kernel
// (NewState-owned scratch, wi.Global-indexed outputs). The analyzers
// here turn that contract into a compile gate:
//
//   - kernelcapture: a kernel body must not mutate variables captured
//     from its enclosing scope; captured slices may only be written at
//     index wi.Global (disjoint output slots).
//   - kernelalloc: no make/new/append outside kernel-state scratch, no
//     maps, no fmt calls inside a body — the OpenCL 1.2 "fixed output
//     slots" rule.
//   - kerneldeterminism: no wall clocks, randomness, map iteration,
//     channel operations or goroutines inside bodies or NewState; the
//     serial/parallel bit-identity tests depend on this.
//   - costcharge: a body whose (package-local) call graph never reaches
//     (*cl.WorkItem).Charge is a hole in the performance model, unless
//     annotated //clvet:stateless.
//
// Kernel bodies are found wherever they flow into the runtime: cl.Kernel
// composite literals, assignments to a Kernel's Body/NewState fields,
// and calls passing a func(*cl.WorkItem, any) argument (the
// mapper.RunOnDevice path). A body bound to a local variable first
// (body := func(...)...) is traced through the binding.
package clvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzers returns the full clvet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		KernelCapture,
		KernelAlloc,
		KernelDeterminism,
		CostCharge,
	}
}

// kernelSite is one place a kernel is constructed: the syntax that binds
// a body (and possibly a NewState) to the cl runtime.
type kernelSite struct {
	// node is the construction site — composite literal, field
	// assignment or call — used for positions and opt-out comments.
	node ast.Node
	// body is the resolved body function literal; nil when the body
	// expression could not be traced to a literal in this package.
	body *ast.FuncLit
	// bodyExpr is the expression supplying the body at the site.
	bodyExpr ast.Expr
	// newState is the resolved NewState literal, when present.
	newState *ast.FuncLit
	// wi and state are the body's two parameter objects (nil for _).
	wi, state *types.Var
}

// isClPackage reports whether pkg is the simulated OpenCL runtime.
func isClPackage(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "repro/internal/cl" ||
		strings.HasSuffix(pkg.Path(), "/internal/cl"))
}

// isClNamed reports whether t is the named type name from internal/cl,
// unwrapping one level of pointer.
func isClNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == name && isClPackage(n.Obj().Pkg())
}

// isBodyFuncType reports whether t is func(*cl.WorkItem, any).
func isBodyFuncType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() != 0 || sig.Params().Len() != 2 || sig.Variadic() {
		return false
	}
	if !isClNamed(sig.Params().At(0).Type(), "WorkItem") {
		return false
	}
	iface, ok := sig.Params().At(1).Type().Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// isNewStateFuncType reports whether t is func() any.
func isNewStateFuncType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	iface, ok := sig.Results().At(0).Type().Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// kernelSites finds every kernel construction in the package.
func kernelSites(pass *analysis.Pass) []kernelSite {
	var sites []kernelSite
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if t := pass.TypesInfo.TypeOf(n); t != nil && isClNamed(t, "Kernel") {
					sites = append(sites, siteFromLiteral(pass, n))
				}
			case *ast.AssignStmt:
				sites = append(sites, sitesFromAssign(pass, n)...)
			case *ast.CallExpr:
				if s, ok := siteFromCall(pass, n); ok {
					sites = append(sites, s)
				}
			}
			return true
		})
	}
	for i := range sites {
		resolveSite(pass, &sites[i])
	}
	return sites
}

// siteFromLiteral extracts Body/NewState from a cl.Kernel{...} literal.
func siteFromLiteral(pass *analysis.Pass, lit *ast.CompositeLit) kernelSite {
	s := kernelSite{node: lit}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Body":
			s.bodyExpr = kv.Value
		case "NewState":
			if fl := resolveFuncLit(pass, kv.Value); fl != nil {
				s.newState = fl
			}
		}
	}
	return s
}

// sitesFromAssign extracts k.Body = ... / k.NewState = ... assignments.
func sitesFromAssign(pass *analysis.Pass, as *ast.AssignStmt) []kernelSite {
	var sites []kernelSite
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || i >= len(as.Rhs) {
			continue
		}
		recv := pass.TypesInfo.TypeOf(sel.X)
		if recv == nil || !isClNamed(recv, "Kernel") {
			continue
		}
		switch sel.Sel.Name {
		case "Body":
			sites = append(sites, kernelSite{node: as, bodyExpr: as.Rhs[i]})
		case "NewState":
			s := kernelSite{node: as}
			if fl := resolveFuncLit(pass, as.Rhs[i]); fl != nil {
				s.newState = fl
				sites = append(sites, s)
			}
		}
	}
	return sites
}

// siteFromCall recognises helper calls that accept a kernel body — any
// parameter of type func(*cl.WorkItem, any), like mapper.RunOnDevice —
// and pairs it with a func() any parameter named "newState" if present.
func siteFromCall(pass *analysis.Pass, call *ast.CallExpr) (kernelSite, bool) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Variadic() {
		return kernelSite{}, false
	}
	s := kernelSite{node: call}
	found := false
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		p := sig.Params().At(i)
		switch {
		case isBodyFuncType(p.Type()):
			s.bodyExpr = call.Args[i]
			found = true
		case p.Name() == "newState" && isNewStateFuncType(p.Type()):
			if fl := resolveFuncLit(pass, call.Args[i]); fl != nil {
				s.newState = fl
			}
		}
	}
	return s, found
}

// resolveSite traces the body expression to its literal and records the
// parameter objects.
func resolveSite(pass *analysis.Pass, s *kernelSite) {
	if s.bodyExpr == nil {
		return
	}
	s.body = resolveFuncLit(pass, s.bodyExpr)
	if s.body == nil {
		return
	}
	params := s.body.Type.Params.List
	var names []*ast.Ident
	for _, field := range params {
		names = append(names, field.Names...)
	}
	if len(names) == 2 {
		if v, ok := pass.TypesInfo.Defs[names[0]].(*types.Var); ok {
			s.wi = v
		}
		if v, ok := pass.TypesInfo.Defs[names[1]].(*types.Var); ok {
			s.state = v
		}
	}
}

// resolveFuncLit unwraps expr to a function literal, following one
// level of local-variable indirection (body := func(...){...}; use of
// body later), which is how every mapper builds its kernel.
func resolveFuncLit(pass *analysis.Pass, expr ast.Expr) *ast.FuncLit {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return e
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return nil
		}
		return funcLitBoundTo(pass, obj)
	}
	return nil
}

// funcLitBoundTo finds a function literal assigned to obj anywhere in
// the package syntax.
func funcLitBoundTo(pass *analysis.Pass, obj types.Object) *ast.FuncLit {
	var found *ast.FuncLit
	for _, f := range pass.Files {
		if found != nil {
			break
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					def := pass.TypesInfo.Defs[id]
					use := pass.TypesInfo.Uses[id]
					if def != obj && use != obj {
						continue
					}
					if fl, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						found = fl
						return false
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if pass.TypesInfo.Defs[id] != obj || i >= len(n.Values) {
						continue
					}
					if fl, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						found = fl
						return false
					}
				}
			}
			return true
		})
	}
	return found
}

// declaredWithin reports whether obj is declared inside the node's
// source range — the locality test separating a body's own variables
// (and parameters) from captured ones.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// hasOptOut reports whether a //clvet:<name> comment opts the site out:
// the marker must sit on, or on the line directly above, the kernel
// construction site or its body literal.
func hasOptOut(pass *analysis.Pass, s kernelSite, name string) bool {
	marker := "clvet:" + name
	lines := map[int]bool{}
	note := func(n ast.Node) {
		if n == nil {
			return
		}
		l := pass.Fset.Position(n.Pos()).Line
		lines[l] = true
		lines[l-1] = true
	}
	note(s.node)
	if s.body != nil {
		note(s.body)
	}
	for _, f := range pass.Files {
		if s.node.Pos() < f.Pos() || s.node.Pos() >= f.End() {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, marker) {
					continue
				}
				if lines[pass.Fset.Position(c.Pos()).Line] {
					return true
				}
			}
		}
	}
	return false
}
