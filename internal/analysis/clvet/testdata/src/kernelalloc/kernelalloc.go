// Testdata for the kernelalloc analyzer: OpenCL 1.2 kernels cannot
// allocate; the only sanctioned growth is amortised kernel-state
// scratch, outputs are fixed slots, and maps do not exist.
package kernelalloc

import (
	"fmt"

	"repro/internal/cl"
)

type state struct {
	buf   []byte
	cands []int
}

// good grows only NewState-owned scratch, the amortised-reuse idiom the
// real kernels use.
func good(reads [][]byte) *cl.Kernel {
	return &cl.Kernel{
		Name:     "good",
		NewState: func() any { return &state{} },
		Body: func(wi *cl.WorkItem, s any) {
			st := s.(*state)
			if cap(st.buf) < len(reads[wi.Global]) {
				st.buf = make([]byte, len(reads[wi.Global]))
			}
			st.buf = st.buf[:len(reads[wi.Global])]
			st.cands = append(st.cands[:0], wi.Global)
			wi.Charge(cl.Cost{Items: 1, Bytes: int64(len(st.buf))})
		},
	}
}

// bad allocates per work item in every way the analyzer forbids.
func bad(out [][]int) *cl.Kernel {
	return &cl.Kernel{
		Name: "bad",
		Body: func(wi *cl.WorkItem, _ any) {
			tmp := make([]int, 4)       // want `allocates with make outside kernel state`
			tmp = append(tmp, 1)        // want `appends outside kernel state`
			p := new(int)               // want `allocates with new outside kernel state`
			seen := map[int]bool{}      // want `allocates a map literal`
			seen[wi.Global] = true      // want `kernel body writes a map`
			delete(seen, 0)             // want `kernel body writes a map`
			counts := make(map[int]int) // want `kernel body allocates a map`
			_ = counts
			ch := make(chan int, 1) // want `allocates a channel`
			_ = ch
			msg := fmt.Sprintf("%d", wi.Global) // want `calls fmt\.Sprintf`
			_ = msg
			_ = p
			out[wi.Global] = tmp
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}
