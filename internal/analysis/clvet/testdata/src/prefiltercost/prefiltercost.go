// Testdata for the costcharge analyzer against pre-alignment filter
// kernels: filtering work (FilterWords) must be charged like any other
// kernel work — a filter that rejects candidates without charging makes
// the filtration stage free on the simulated clock, silently inflating
// every speedup it reports.
package prefiltercost

import "repro/internal/cl"

// charged bills its filter words per item: ok.
func charged(cands [][]int, candOut [][]int) *cl.Kernel {
	return &cl.Kernel{
		Name: "charged-prefilter",
		Body: func(wi *cl.WorkItem, _ any) {
			kept, words := 0, int64(0)
			for _, c := range cands[wi.Global] {
				words += 3
				if c%2 == 0 {
					candOut[wi.Global] = candOut[wi.Global][:kept+1]
					candOut[wi.Global][kept] = c
					kept++
				}
			}
			wi.Charge(cl.Cost{Items: 1, FilterWords: words,
				Filtered: int64(len(cands[wi.Global]) - kept)})
		},
	}
}

// free filters without ever reaching Charge: flagged.
func free(cands [][]int, candOut [][]int) *cl.Kernel {
	return &cl.Kernel{
		Name: "free-prefilter",
		Body: func(wi *cl.WorkItem, _ any) { // want `never reaches \(\*cl\.WorkItem\)\.Charge`
			kept := 0
			for _, c := range cands[wi.Global] {
				if c%2 == 0 {
					candOut[wi.Global] = candOut[wi.Global][:kept+1]
					candOut[wi.Global][kept] = c
					kept++
				}
			}
		},
	}
}
