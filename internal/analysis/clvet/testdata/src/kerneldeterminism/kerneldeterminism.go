// Testdata for the kerneldeterminism analyzer: a kernel's behaviour
// may depend only on its inputs and wi.Global — never on host clocks,
// randomness, map iteration order, channels or extra goroutines.
package kerneldeterminism

import (
	"math/rand"
	"time"

	"repro/internal/cl"
)

// good derives everything, including pseudo-randomness, from wi.Global.
func good(out []int64) *cl.Kernel {
	return &cl.Kernel{
		Name:     "good",
		NewState: func() any { return new(int) },
		Body: func(wi *cl.WorkItem, s any) {
			h := int64(wi.Global) * 0x9e3779b9
			out[wi.Global] = h ^ (h >> 16)
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}

// bad leaks host scheduling and entropy into kernel results.
func bad(out []int64, counts map[string]int, ch chan int) *cl.Kernel {
	return &cl.Kernel{
		Name: "bad",
		NewState: func() any {
			return rand.Int() // want `kernel NewState calls rand\.Int`
		},
		Body: func(wi *cl.WorkItem, _ any) {
			out[wi.Global] = time.Now().UnixNano() // want `kernel body calls time\.Now`
			out[wi.Global] += rand.Int63()         // want `kernel body calls rand\.Int63`
			for k := range counts {                // want `kernel body iterates a map`
				_ = k
			}
			go func() { // want `kernel body starts a goroutine`
				ch <- wi.Global // want `kernel body sends on a channel`
			}()
			out[wi.Global] += int64(<-ch) // want `kernel body receives from a channel`
			time.Sleep(time.Millisecond)  // want `kernel body calls time\.Sleep`
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}
