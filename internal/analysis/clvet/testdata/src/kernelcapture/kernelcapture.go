// Testdata for the kernelcapture analyzer: kernel bodies may read what
// they capture and write captured slices only at wi.Global; every other
// mutation of enclosing state must go through cl.Kernel.NewState.
package kernelcapture

import "repro/internal/cl"

type state struct {
	scratch []int
}

// good follows the contract: shared inputs are read, mutable scratch
// lives in the kernel state, and the only captured write is the work
// item's own output slot (including writes deeper inside that slot).
func good(reads [][]byte, out [][]int) *cl.Kernel {
	return &cl.Kernel{
		Name:     "good",
		NewState: func() any { return &state{} },
		Body: func(wi *cl.WorkItem, s any) {
			st := s.(*state)
			st.scratch = st.scratch[:0]
			local := len(reads[wi.Global])
			local++
			out[wi.Global] = st.scratch[:0]
			out[wi.Global] = append(out[wi.Global][:0], local)
			out[wi.Global][0] = local
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}

// bad mutates captured variables: a shared counter, a foreign output
// slot, and a captured scratch slice grown in place.
func bad(out []int, shared []int) *cl.Kernel {
	total := 0
	return &cl.Kernel{
		Name: "bad",
		Body: func(wi *cl.WorkItem, _ any) {
			total++             // want `kernel body writes captured variable total`
			out[0] = total      // want `writes captured out at an index other than wi\.Global`
			shared = shared[:0] // want `kernel body writes captured variable shared`
			out[wi.Global] = total
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}

// escape leaks the address of a captured variable into a callee, where
// the analyzer can no longer see the mutation.
func escape(out []int) *cl.Kernel {
	var hidden cl.Cost
	return &cl.Kernel{
		Name: "escape",
		Body: func(wi *cl.WorkItem, _ any) {
			bump(&hidden) // want `takes the address of captured variable hidden`
			out[wi.Global] = int(hidden.Items)
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}

func bump(c *cl.Cost) { c.Items++ }

// assigned binds the body through a Kernel field assignment rather than
// a composite literal; the analyzer must still find it.
func assigned(out []int) *cl.Kernel {
	var k cl.Kernel
	total := 0
	k.Body = func(wi *cl.WorkItem, _ any) {
		total += wi.Global // want `kernel body writes captured variable total`
		out[wi.Global] = total
		wi.Charge(cl.Cost{Items: 1})
	}
	return &k
}

// enqueue mimics mapper.RunOnDevice: any parameter of the kernel body
// type marks its argument as a kernel body.
func enqueue(n int, newState func() any, body func(*cl.WorkItem, any)) {
	_ = n
	_ = newState
	_ = body
}

// viaCall binds the body to a local first and hands it to a runner; the
// analyzer traces the binding.
func viaCall(out []int) {
	sum := 0
	body := func(wi *cl.WorkItem, _ any) {
		sum += wi.Global // want `kernel body writes captured variable sum`
		out[wi.Global] = sum
		wi.Charge(cl.Cost{Items: 1})
	}
	enqueue(len(out), nil, body)
}
