// Testdata for the kernelcapture analyzer against pre-alignment filter
// kernels: the prefilter stage's only sanctioned captured write is its
// own candidate slot candOut[wi.Global]; rejection tallies and shared
// cursors must live in kernel state or the per-item Cost, never in
// captured variables.
package prefiltercapture

import "repro/internal/cl"

type filterState struct {
	acc  []uint64
	keep []int
}

// good is the sanctioned shape: scratch masks in state, survivors
// written only to the item's own slot, tallies charged as cost.
func good(cands [][]int, candOut [][]int) *cl.Kernel {
	return &cl.Kernel{
		Name:     "good-prefilter",
		NewState: func() any { return &filterState{} },
		Body: func(wi *cl.WorkItem, s any) {
			st := s.(*filterState)
			st.acc = st.acc[:0]
			st.keep = st.keep[:0]
			rejected := int64(0)
			for _, c := range cands[wi.Global] {
				if c%2 == 0 {
					st.keep = append(st.keep, c)
				} else {
					rejected++
				}
			}
			slot := candOut[wi.Global][:0]
			slot = append(slot, st.keep...)
			candOut[wi.Global] = slot
			wi.Charge(cl.Cost{Items: 1, Filtered: rejected})
		},
	}
}

// bad keeps a shared rejection tally in a captured counter and compacts
// survivors through a shared cursor into foreign slots.
func bad(cands [][]int, candOut [][]int) *cl.Kernel {
	totalRejected := 0
	next := 0
	return &cl.Kernel{
		Name: "bad-prefilter",
		Body: func(wi *cl.WorkItem, _ any) {
			for _, c := range cands[wi.Global] {
				if c%2 != 0 {
					totalRejected++ // want `kernel body writes captured variable totalRejected`
					continue
				}
				candOut[next] = append(candOut[next], c) // want `writes captured candOut at an index other than wi\.Global`
				next++                                   // want `kernel body writes captured variable next`
			}
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}

// escape hides the tally mutation behind a pointer, which the analyzer
// still refuses at the point the address escapes.
func escape(cands [][]int, candOut [][]int) *cl.Kernel {
	var rejected int64
	return &cl.Kernel{
		Name: "escape-prefilter",
		Body: func(wi *cl.WorkItem, _ any) {
			tally(&rejected, cands[wi.Global]) // want `takes the address of captured variable rejected`
			candOut[wi.Global] = candOut[wi.Global][:0]
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}

func tally(dst *int64, cands []int) {
	for _, c := range cands {
		if c%2 != 0 {
			*dst++
		}
	}
}
