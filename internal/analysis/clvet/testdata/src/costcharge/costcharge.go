// Testdata for the costcharge analyzer: every kernel body must reach
// (*cl.WorkItem).Charge — directly or through same-package helpers — or
// carry an explicit //clvet:stateless opt-out; otherwise its work is
// invisible to the simulated clock.
package costcharge

import "repro/internal/cl"

// chargeHelper charges on the kernel's behalf one call away.
func chargeHelper(wi *cl.WorkItem, n int) {
	wi.Charge(cl.Cost{DPCells: int64(n)})
}

// deepHelper reaches Charge two hops down the package call graph.
func deepHelper(wi *cl.WorkItem) {
	chargeHelper(wi, 2)
}

// direct charges inline: ok.
func direct(out []int) *cl.Kernel {
	return &cl.Kernel{
		Name: "direct",
		Body: func(wi *cl.WorkItem, _ any) {
			out[wi.Global] = 1
			wi.Charge(cl.Cost{Items: 1})
		},
	}
}

// transitive charges through the package call graph: ok.
func transitive(out []int) *cl.Kernel {
	return &cl.Kernel{
		Name: "transitive",
		Body: func(wi *cl.WorkItem, _ any) {
			out[wi.Global] = 2
			deepHelper(wi)
		},
	}
}

// optout declares itself cost-free: ok because of the annotation.
func optout(out []int) *cl.Kernel {
	//clvet:stateless
	return &cl.Kernel{
		Name: "optout",
		Body: func(wi *cl.WorkItem, _ any) {
			out[wi.Global] = 3
		},
	}
}

// missing does real work the cost model never sees: flagged.
func missing(out []int) *cl.Kernel {
	return &cl.Kernel{
		Name: "missing",
		Body: func(wi *cl.WorkItem, _ any) { // want `never reaches \(\*cl\.WorkItem\)\.Charge`
			out[wi.Global] = 4
		},
	}
}

// wrap mimics core.instrumentKernel: the wrapper body delegates every
// work item to the inner, already-vetted kernel body and only observes
// afterwards. Delegation to a body-typed value counts as reaching
// Charge, so the wrapper is ok.
func wrap(k *cl.Kernel, observe func(int64)) *cl.Kernel {
	inner := k.Body
	out := *k
	out.Body = func(wi *cl.WorkItem, state any) {
		inner(wi, state)
		observe(wi.Cost().Items)
	}
	return &out
}

// enqueue mimics mapper.RunOnDevice's shape.
func enqueue(n int, newState func() any, body func(*cl.WorkItem, any)) {
	_ = n
	_ = newState
	_ = body
}

// viaCall hands an uncharging body to a runner through a local binding:
// still flagged.
func viaCall(out []int) {
	body := func(wi *cl.WorkItem, _ any) { // want `never reaches \(\*cl\.WorkItem\)\.Charge`
		out[wi.Global] = 5
	}
	enqueue(len(out), nil, body)
}
