// Testdata for the kernelalloc analyzer against pre-alignment filter
// kernels: the filter's bit masks, window registers and survivor lists
// are amortised kernel-state scratch; a kernel that builds them fresh
// per work item allocates on-device, which OpenCL 1.2 forbids.
package prefilteralloc

import "repro/internal/cl"

type filterState struct {
	peq  []uint64
	acc  []uint64
	win  []byte
	keep []int
}

// good reuses state-owned masks and window scratch, growing them only
// when a longer read arrives — the amortised idiom of the real kernel.
func good(reads [][]byte, candOut [][]int) *cl.Kernel {
	return &cl.Kernel{
		Name:     "good-prefilter",
		NewState: func() any { return &filterState{} },
		Body: func(wi *cl.WorkItem, s any) {
			st := s.(*filterState)
			words := (len(reads[wi.Global]) + 63) / 64
			if cap(st.peq) < words {
				st.peq = make([]uint64, words)
				st.acc = make([]uint64, words)
			}
			st.peq = st.peq[:words]
			st.acc = st.acc[:words]
			st.win = append(st.win[:0], reads[wi.Global]...)
			st.keep = st.keep[:0]
			candOut[wi.Global] = candOut[wi.Global][:0]
			wi.Charge(cl.Cost{Items: 1, FilterWords: int64(words)})
		},
	}
}

// bad rebuilds every mask and the survivor list per work item.
func bad(reads [][]byte, candOut [][]int) *cl.Kernel {
	return &cl.Kernel{
		Name: "bad-prefilter",
		Body: func(wi *cl.WorkItem, _ any) {
			words := (len(reads[wi.Global]) + 63) / 64
			peq := make([]uint64, words) // want `allocates with make outside kernel state`
			acc := make([]uint64, words) // want `allocates with make outside kernel state`
			var keep []int
			keep = append(keep, wi.Global) // want `appends outside kernel state`
			seen := map[int]bool{}         // want `allocates a map literal`
			_ = seen
			_ = peq
			_ = acc
			candOut[wi.Global] = keep
			wi.Charge(cl.Cost{Items: 1, FilterWords: int64(words)})
		},
	}
}
