package clvet

import (
	"go/ast"

	"repro/internal/analysis"
)

// KernelDeterminism keeps kernel bodies and NewState constructors
// schedule-independent: the serial/parallel bit-identity tests (and the
// whole simulated cost model) require that a kernel's behaviour depend
// only on its inputs and wi.Global — never on wall clocks, randomness,
// map iteration order, channel scheduling or extra goroutines.
var KernelDeterminism = &analysis.Analyzer{
	Name: "kerneldeterminism",
	Doc: "check that kernel bodies and NewState are deterministic: no time.Now, " +
		"math/rand, map iteration, channel ops or go statements",
	Run: runKernelDeterminism,
}

// timeDenylist names the time package functions that leak host timing
// into a kernel. (time.After/Tick also create channels, doubly banned.)
var timeDenylist = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runKernelDeterminism(pass *analysis.Pass) error {
	for _, site := range kernelSites(pass) {
		if site.body != nil {
			checkDeterminism(pass, site.body, "body")
		}
		if site.newState != nil {
			checkDeterminism(pass, site.newState, "NewState")
		}
	}
	return nil
}

func checkDeterminism(pass *analysis.Pass, fn *ast.FuncLit, what string) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"kernel %s starts a goroutine; work items are the only parallelism a kernel has", what)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"kernel %s sends on a channel; kernels must not synchronise with the host", what)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(),
					"kernel %s receives from a channel; kernels must not synchronise with the host", what)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(),
				"kernel %s uses select; kernels must not synchronise with the host", what)
		case *ast.RangeStmt:
			if isMapType(pass, n.X) {
				pass.Reportf(n.Pos(),
					"kernel %s iterates a map; iteration order is nondeterministic across runs", what)
			}
		case *ast.CallExpr:
			checkDeterminismCall(pass, n, what)
		}
		return true
	})
}

func checkDeterminismCall(pass *analysis.Pass, call *ast.CallExpr, what string) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(),
			"kernel %s calls %s.%s; kernels must be deterministic — derive any "+
				"pseudo-randomness from wi.Global", what, fn.Pkg().Name(), fn.Name())
	case "time":
		if timeDenylist[fn.Name()] {
			pass.Reportf(call.Pos(),
				"kernel %s calls time.%s; simulated time comes from the cost model, "+
					"not the host clock", what, fn.Name())
		}
	}
}
