package clvet

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// CostCharge closes the performance-model loophole: a kernel body that
// never reaches (*cl.WorkItem).Charge does real work that the simulated
// clock never sees, silently skewing every cross-device comparison the
// reproduction exists to make. The reachability search covers the body
// literal and every same-package function or method it calls
// (transitively); a genuinely cost-free kernel opts out with a
// //clvet:stateless comment on the construction site.
var CostCharge = &analysis.Analyzer{
	Name: "costcharge",
	Doc: "check that every kernel body charges simulated cost via (*cl.WorkItem).Charge " +
		"or is annotated //clvet:stateless",
	Run: runCostCharge,
}

func runCostCharge(pass *analysis.Pass) error {
	decls := packageFuncDecls(pass)
	for _, site := range kernelSites(pass) {
		if site.body == nil {
			continue
		}
		if hasOptOut(pass, site, "stateless") {
			continue
		}
		if !reachesCharge(pass, site.body.Body, decls, map[*types.Func]bool{}) {
			pass.Reportf(site.body.Pos(),
				"kernel body never reaches (*cl.WorkItem).Charge: its work is invisible "+
					"to the cost model; charge the operations performed or annotate the "+
					"kernel //clvet:stateless")
		}
	}
	return nil
}

// packageFuncDecls maps this package's function and method objects to
// their declarations, the reachable part of the call graph.
func packageFuncDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	return analysis.FuncDecls(pass)
}

// reachesCharge walks one function body looking for a Charge call,
// descending into same-package callees.
func reachesCharge(pass *analysis.Pass, body ast.Node,
	decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool) bool {

	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isChargeCall(pass, call) {
			found = true
			return false
		}
		// Delegation to another kernel body (a func(*cl.WorkItem, any)
		// value, as trace-instrumentation wrappers do) counts as reaching
		// Charge: the delegate is itself a kernel site, vetted — including
		// for this check — wherever it is constructed.
		if t := pass.TypesInfo.TypeOf(call.Fun); t != nil && isBodyFuncType(t) {
			found = true
			return false
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() != pass.Pkg || visited[fn] {
			return true
		}
		visited[fn] = true
		if decl := decls[fn]; decl != nil && decl.Body != nil {
			if reachesCharge(pass, decl.Body, decls, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isChargeCall reports whether call invokes the Charge method of the
// simulated runtime's WorkItem.
func isChargeCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Charge" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && isClNamed(recv.Type(), "WorkItem") && isClPackage(fn.Pkg())
}
