package clvet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clvet"
)

func TestKernelCapture(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelCapture, "kernelcapture")
}

func TestKernelAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelAlloc, "kernelalloc")
}

func TestKernelDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelDeterminism, "kerneldeterminism")
}

func TestCostCharge(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.CostCharge, "costcharge")
}
