package clvet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clvet"
)

func TestKernelCapture(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelCapture, "kernelcapture")
}

func TestKernelCapturePrefilter(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelCapture, "prefiltercapture")
}

func TestKernelAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelAlloc, "kernelalloc")
}

func TestKernelAllocPrefilter(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelAlloc, "prefilteralloc")
}

func TestKernelDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.KernelDeterminism, "kerneldeterminism")
}

func TestCostCharge(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.CostCharge, "costcharge")
}

func TestCostChargePrefilter(t *testing.T) {
	analysistest.Run(t, "testdata", clvet.CostCharge, "prefiltercost")
}
