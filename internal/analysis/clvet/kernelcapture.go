package clvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// KernelCapture enforces the shared-capture half of the kernel
// contract: a body may read what it captures (immutable inputs) and
// write captured slices only at index wi.Global (its own output slot);
// every other mutation of enclosing-scope state must move into the
// value returned by cl.Kernel.NewState, because the work-group
// scheduler runs bodies on several host workers at once.
var KernelCapture = &analysis.Analyzer{
	Name: "kernelcapture",
	Doc: "check that simulated-OpenCL kernel bodies do not mutate captured variables; " +
		"mutable scratch belongs in cl.Kernel.NewState and outputs in wi.Global-indexed slots",
	Run: runKernelCapture,
}

func runKernelCapture(pass *analysis.Pass) error {
	for _, site := range kernelSites(pass) {
		if site.body != nil {
			checkCapture(pass, site)
		}
	}
	return nil
}

func checkCapture(pass *analysis.Pass, site kernelSite) {
	body := site.body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, site, n.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, site, n.Pos(), n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				checkWrite(pass, site, n.Pos(), n.Key)
				checkWrite(pass, site, n.Pos(), n.Value)
			}
		case *ast.UnaryExpr:
			// Handing out &captured lets a callee mutate shared state
			// behind the analyzer's back; forbid it outright.
			if n.Op == token.AND {
				if base, _ := writeTarget(n.X); base != nil {
					if obj := capturedObject(pass, site, base); obj != nil {
						pass.Reportf(n.Pos(),
							"kernel body takes the address of captured variable %s; "+
								"per-worker scratch must come from cl.Kernel.NewState", obj.Name())
					}
				}
			}
		}
		return true
	})
}

// checkWrite validates one assignment target inside a kernel body.
func checkWrite(pass *analysis.Pass, site kernelSite, pos token.Pos, lhs ast.Expr) {
	if lhs == nil {
		return
	}
	base, firstIndex := writeTarget(lhs)
	if base == nil {
		return
	}
	obj := capturedObject(pass, site, base)
	if obj == nil {
		return
	}
	if firstIndex == nil {
		pass.Reportf(pos,
			"kernel body writes captured variable %s; move mutable scratch into the "+
				"state built by cl.Kernel.NewState", obj.Name())
		return
	}
	if !isWiGlobal(pass, site, firstIndex) {
		pass.Reportf(pos,
			"kernel body writes captured %s at an index other than wi.Global; "+
				"work items may only write their own output slot", obj.Name())
	}
}

// capturedObject resolves base to its variable and returns it when the
// variable is declared outside the kernel body (a capture). Parameters
// and body-locals — including locals of nested literals — return nil.
func capturedObject(pass *analysis.Pass, site kernelSite, base *ast.Ident) types.Object {
	if base.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil {
		obj = pass.TypesInfo.Defs[base]
	}
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	if declaredWithin(obj, site.body) {
		return nil
	}
	return obj
}

// writeTarget walks a write target down to its base identifier and the
// first index applied to that base. For res.Mappings[wi.Global][0] the
// base is res and the first index wi.Global: writes deeper inside a
// work item's own slot stay legal.
func writeTarget(e ast.Expr) (base *ast.Ident, firstIndex ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		return e, nil
	case *ast.ParenExpr:
		return writeTarget(e.X)
	case *ast.SelectorExpr:
		return writeTarget(e.X)
	case *ast.StarExpr:
		return writeTarget(e.X)
	case *ast.IndexExpr:
		base, idx := writeTarget(e.X)
		if idx == nil {
			idx = e.Index
		}
		return base, idx
	}
	return nil, nil
}

// isWiGlobal reports whether e is exactly wi.Global for the body's
// *cl.WorkItem parameter.
func isWiGlobal(pass *analysis.Pass, site kernelSite, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Global" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || site.wi == nil {
		return false
	}
	return pass.TypesInfo.Uses[id] == site.wi
}
