package analysis

// A package-local call graph built from source, generalising the
// reachability walk clvet's costcharge introduced: nodes are this
// package's declared functions and methods, edges are direct calls
// resolved through the type checker. Calls into other packages are not
// followed — interprocedural checks that need a property to hold across
// a package boundary annotate the callee in its own package (hotalloc
// documents exactly this contract). Calls through function values and
// interface methods resolve to nil and contribute no edge; analyzers
// that care about indirect flow handle it at the call site.

import (
	"go/ast"
	"go/types"
)

// CallGraph is the package-local static call graph of one pass.
type CallGraph struct {
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func][]*types.Func
}

// NewCallGraph builds the call graph for the pass's package. Calls made
// inside function literals are attributed to the enclosing declaration,
// matching how the work is actually reached at run time.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		decls:   FuncDecls(pass),
		callees: map[*types.Func][]*types.Func{},
	}
	for fn, fd := range g.decls {
		if fd.Body == nil {
			continue
		}
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg || seen[callee] {
				return true
			}
			seen[callee] = true
			g.callees[fn] = append(g.callees[fn], callee)
			return true
		})
	}
	return g
}

// Decls returns the function-object → declaration map.
func (g *CallGraph) Decls() map[*types.Func]*ast.FuncDecl { return g.decls }

// DeclOf returns fn's declaration, or nil when fn is not declared in
// this package.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Callees returns fn's direct same-package callees.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// Reachable returns the transitive same-package closure of roots,
// including the roots themselves.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if fn == nil || reached[fn] {
			continue
		}
		reached[fn] = true
		work = append(work, g.callees[fn]...)
	}
	return reached
}
