package serve

// Service lifecycle suite: submit→poll→fetch byte-identity against an
// independently produced SAM baseline, admission control under
// saturation, graceful drain + restart resume (bit-identical, including
// with a per-job fault plan armed), failure isolation across jobs, and
// the typed error surface. Everything runs through httptest against the
// real handler stack — the same mux `repute serve` mounts.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/index"
	"repro/internal/mapper"
	"repro/internal/sam"
	"repro/internal/seed"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// fixture bundles one reference world shared by a test: the index
// artifact, the FASTQ upload body, and the expected SAM.
type fixture struct {
	file  *index.File
	fastq []byte
	names []string
	reads [][]byte
}

func newFixture(t *testing.T, refLen, nReads int) *fixture {
	t.Helper()
	ref := simulate.Reference(simulate.Chr21Like(refLen, 11))
	set, err := simulate.Reads(ref, nReads, simulate.ERR012100, 12)
	if err != nil {
		t.Fatal(err)
	}
	g, err := genome.New([]string{"chr21s"}, [][]byte{ref})
	if err != nil {
		t.Fatal(err)
	}
	f, err := index.Build(g, 1, 0, fmindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{file: f, reads: set.Reads}
	var fq bytes.Buffer
	for i, r := range set.Reads {
		name := fmt.Sprintf("r%d", i)
		fx.names = append(fx.names, name)
		seq := make([]byte, len(r))
		for j, c := range r {
			seq[j] = "ACGT"[c]
		}
		fmt.Fprintf(&fq, "@%s\n%s\n+\n%s\n", name, seq, strings.Repeat("I", len(seq)))
	}
	fx.fastq = fq.Bytes()
	return fx
}

// baselineSAM produces the expected output through an independent path:
// one in-memory Map over the whole read set, written with the same SAM
// machinery `repute map` uses. Mappings are per-read, so the streamed,
// batched service output must match byte for byte.
func (fx *fixture) baselineSAM(t *testing.T, cigar bool, maxErrors, maxLoc int) []byte {
	t.Helper()
	g, err := genome.FromContigs(fx.file.Meta.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewFromIndex(fx.file.Indexes[0], []*cl.Device{cl.SystemOneCPU()},
		core.Config{Name: "REPUTE", Selector: seed.REPUTE{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(fx.reads, mapper.Options{MaxErrors: maxErrors, MaxLocations: maxLoc})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	refs := make([]sam.RefSeq, len(g.Contigs()))
	for i, c := range g.Contigs() {
		refs[i] = sam.RefSeq{Name: c.Name, Length: c.Length}
	}
	sw, err := sam.NewMultiWriter(&buf, refs)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range fx.names {
		if _, err := WriteReadAlignments(sw, g, p, name, fx.reads[i], res.Mappings[i], cigar, maxErrors); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newServer starts a Server over a fresh single-CPU pool plus an
// httptest front end; mutate cfg defaults through mod.
func newServer(t *testing.T, fx *fixture, spool string, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Index:   fx.file,
		Devices: []*cl.Device{cl.SystemOneCPU()},
		Spool:   spool,
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit uploads a FASTQ as a multipart job, returning the response.
func submit(t *testing.T, url string, fastq []byte, query string, headers map[string]string) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fw, err := mw.CreateFormFile("reads", "reads.fq")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(fastq); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/jobs"+query, &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeJob reads a Job JSON body.
func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// awaitState polls a job until it reaches one of the wanted states.
func awaitState(t *testing.T, url, id string, want ...JobState) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeJob(t, resp)
		for _, w := range want {
			if j.State == w {
				return j
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (error %+v), want one of %v", id, j.State, j.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchSAM downloads a finished job's SAM bytes.
func fetchSAM(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/sam")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET sam: %d: %s", resp.StatusCode, b)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServeLifecycle is the happy path: submit → poll → fetch, with the
// SAM byte-identical to an in-memory mapping of the same reads, plus
// the observability endpoints.
func TestServeLifecycle(t *testing.T) {
	fx := newFixture(t, 40_000, 40)
	s, ts := newServer(t, fx, t.TempDir(), nil)
	defer s.Drain()

	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusOK {
		t.Fatalf("readyz = %d, want ready", got)
	}

	resp := submit(t, ts.URL, fx.fastq, "?batch=7", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	j := decodeJob(t, resp)
	if j.ID == "" || j.State != StateQueued {
		t.Fatalf("admitted job = %+v", j)
	}

	done := awaitState(t, ts.URL, j.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("job failed: %+v", done.Error)
	}
	if done.Reads != len(fx.reads) {
		t.Errorf("job mapped %d reads, want %d", done.Reads, len(fx.reads))
	}

	got := fetchSAM(t, ts.URL, j.ID)
	want := fx.baselineSAM(t, false, 5, 100)
	if !bytes.Equal(got, want) {
		t.Errorf("service SAM differs from in-memory baseline (%d vs %d bytes)", len(got), len(want))
	}

	// Metrics: completed counter and sim-seconds histogram present,
	// deterministic JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap trace.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["serve_jobs_admitted_total"] != 1 || snap.Counters["serve_jobs_completed_total"] != 1 {
		t.Errorf("metrics counters = %v", snap.Counters)
	}
	if snap.Histograms["serve_job_sim_seconds"].Count != 1 {
		t.Errorf("sim-seconds histogram = %+v", snap.Histograms["serve_job_sim_seconds"])
	}

	// Trace export: a non-empty Chrome trace for the job, 404 for ghosts.
	resp, err = http.Get(ts.URL + "/trace/" + j.ID)
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(tb, []byte("traceEvents")) {
		t.Errorf("trace export = %d, %d bytes", resp.StatusCode, len(tb))
	}
	if got := getStatus(t, ts.URL+"/trace/job-999999"); got != http.StatusNotFound {
		t.Errorf("trace for unknown job = %d, want 404", got)
	}
	if got := getStatus(t, ts.URL+"/jobs/job-999999"); got != http.StatusNotFound {
		t.Errorf("status for unknown job = %d, want 404", got)
	}
}

// TestServeAdmissionControl saturates the queue and asserts the 429 +
// Retry-After contract and the readiness flip, for both the depth bound
// and the in-flight byte budget.
func TestServeAdmissionControl(t *testing.T) {
	fx := newFixture(t, 30_000, 24)
	s, ts := newServer(t, fx, t.TempDir(), func(c *Config) {
		c.MaxQueue = 1
		c.StepDelay = 30 * time.Millisecond
	})
	defer s.Drain()

	// First job occupies the runner (StepDelay stretches it), second
	// fills the queue; the third must bounce.
	a := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=4", nil))
	awaitState(t, ts.URL, a.ID, StateRunning, StateDone)
	b := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=4", nil))

	resp := submit(t, ts.URL, fx.fastq, "?batch=4", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz while saturated = %d, want 503", got)
	}

	// The backlog still completes: bounded queue, not dropped work.
	awaitState(t, ts.URL, a.ID, StateDone)
	awaitState(t, ts.URL, b.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap trace.Snapshot
	json.NewDecoder(resp.Body).Decode(&snap) //nolint:errcheck
	resp.Body.Close()
	if snap.Counters["serve_jobs_rejected_total/overload"] == 0 {
		t.Errorf("overload rejections not counted: %v", snap.Counters)
	}

	// Byte budget: a server whose in-flight budget is smaller than one
	// upload rejects immediately even with an empty queue.
	s2, ts2 := newServer(t, fx, t.TempDir(), func(c *Config) {
		c.MaxInflightBytes = int64(len(fx.fastq) / 2)
	})
	defer s2.Drain()
	resp = submit(t, ts2.URL, fx.fastq, "", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("byte-budget submit = %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeDrainResume is the graceful-drain contract end to end:
// SIGTERM's Drain interrupts a mid-flight job at a batch boundary with
// a durable checkpoint, readiness flips, admission answers 503, and a
// new server over the same spool resumes and finishes the job with SAM
// byte-identical to an uninterrupted baseline.
func TestServeDrainResume(t *testing.T) {
	fx := newFixture(t, 40_000, 40)
	spool := t.TempDir()
	s, ts := newServer(t, fx, spool, func(c *Config) {
		c.StepDelay = 25 * time.Millisecond
	})

	j := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=5", nil))

	// Let it make some progress first so the resume is a true mid-job
	// continuation, not a from-scratch rerun.
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, _ := s.store.get(j.ID)
		if cur.Reads > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}

	unfinished := s.Drain()
	if len(unfinished) != 1 || unfinished[0].ID != j.ID {
		t.Fatalf("drain reported %+v, want the in-flight job", unfinished)
	}
	if st := unfinished[0].State; st != StateInterrupted {
		t.Fatalf("drained job state = %q, want interrupted", st)
	}
	if !unfinished[0].Resumable {
		t.Error("drained job not marked resumable")
	}
	if unfinished[0].Reads >= len(fx.reads) {
		t.Fatalf("job finished (%d reads) before drain; widen StepDelay", unfinished[0].Reads)
	}
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", got)
	}
	resp := submit(t, ts.URL, fx.fastq, "", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	ts.Close()

	// Restart over the same spool: the job re-queues and completes.
	s2, ts2 := newServer(t, fx, spool, nil)
	defer s2.Drain()
	done := awaitState(t, ts2.URL, j.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("resumed job failed: %+v", done.Error)
	}
	got := fetchSAM(t, ts2.URL, j.ID)
	want := fx.baselineSAM(t, false, 5, 100)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed SAM differs from uninterrupted baseline (%d vs %d bytes)", len(got), len(want))
	}

	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap trace.Snapshot
	json.NewDecoder(resp.Body).Decode(&snap) //nolint:errcheck
	resp.Body.Close()
	if snap.Counters["serve_jobs_resumed_total"] == 0 {
		t.Errorf("resume not counted: %v", snap.Counters)
	}
}

// TestServeChaosRecoversBitIdentical arms a per-job fault plan via the
// X-Repute-Faults header — transient OOM, allocation failure, thermal
// throttling — and asserts the round engine recovers the job to SAM
// byte-identical with the clean baseline, with the chaos visible in the
// job's folded metrics and scoped to that one job.
func TestServeChaosRecoversBitIdentical(t *testing.T) {
	fx := newFixture(t, 40_000, 40)
	s, ts := newServer(t, fx, t.TempDir(), nil)
	defer s.Drain()

	hdr := map[string]string{"X-Repute-Faults": "enq2=oor,alloc3=alloc,throttle1-2=0.5"}
	j := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=7", hdr))
	done := awaitState(t, ts.URL, j.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("chaos job failed: %+v", done.Error)
	}
	if !bytes.Equal(fetchSAM(t, ts.URL, j.ID), fx.baselineSAM(t, false, 5, 100)) {
		t.Error("chaos-run SAM differs from clean baseline")
	}

	// A clean job right after must see zero injected faults: the plan
	// died with the job that carried it.
	for _, d := range s.devices {
		if d.FaultsInstalled() {
			t.Fatal("fault plan still armed after job completion")
		}
	}
	clean := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=7", nil))
	cleanDone := awaitState(t, ts.URL, clean.ID, StateDone, StateFailed)
	if cleanDone.State != StateDone {
		t.Fatalf("clean follow-up job failed: %+v", cleanDone.Error)
	}

	// A malformed plan is rejected at admission, typed 400.
	resp := submit(t, ts.URL, fx.fastq, "", map[string]string{"X-Repute-Faults": "enq0=banana"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad fault plan = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeRetryBudgetAndIsolation exhausts a job's retry budget with a
// persistent injected device loss (single-device pool, so no failover)
// and asserts the job fails alone with the typed cl error while the
// pool stays healthy for the next job.
func TestServeRetryBudgetAndIsolation(t *testing.T) {
	fx := newFixture(t, 30_000, 24)
	s, ts := newServer(t, fx, t.TempDir(), func(c *Config) {
		c.RetryBudget = 1
	})
	defer s.Drain()

	hdr := map[string]string{"X-Repute-Faults": "enq1=lost"}
	j := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=6", hdr))
	failed := awaitState(t, ts.URL, j.ID, StateDone, StateFailed)
	if failed.State != StateFailed {
		t.Fatalf("device-loss job = %q, want failed", failed.State)
	}
	if failed.Error == nil || failed.Error.Kind != "cl" || !failed.Error.DeviceLost {
		t.Fatalf("typed error = %+v, want cl device-loss", failed.Error)
	}
	if failed.Error.Code != "CL_DEVICE_NOT_AVAILABLE" {
		t.Errorf("error code = %q", failed.Error.Code)
	}
	if failed.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (budget 1 retry)", failed.Attempts)
	}

	// The pool heals: the very next job completes on the same device.
	clean := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=6", nil))
	cleanDone := awaitState(t, ts.URL, clean.ID, StateDone, StateFailed)
	if cleanDone.State != StateDone {
		t.Fatalf("follow-up job failed after device-loss job: %+v", cleanDone.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap trace.Snapshot
	json.NewDecoder(resp.Body).Decode(&snap) //nolint:errcheck
	resp.Body.Close()
	if snap.Counters["serve_jobs_retried_total"] != 1 || snap.Counters["serve_jobs_failed_total"] != 1 {
		t.Errorf("retry/failure accounting = %v", snap.Counters)
	}
}

// TestServeBadInputFailsWithoutRetry submits garbage and expects a
// typed input failure that does not burn the retry budget.
func TestServeBadInputFailsWithoutRetry(t *testing.T) {
	fx := newFixture(t, 30_000, 8)
	s, ts := newServer(t, fx, t.TempDir(), nil)
	defer s.Drain()

	j := decodeJob(t, submit(t, ts.URL, []byte("this is not fastq\n"), "", nil))
	failed := awaitState(t, ts.URL, j.ID, StateDone, StateFailed)
	if failed.State != StateFailed {
		t.Fatalf("garbage job = %q, want failed", failed.State)
	}
	if failed.Error == nil || failed.Error.Kind != "input" {
		t.Errorf("typed error = %+v, want kind input", failed.Error)
	}
	if failed.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (input errors don't retry)", failed.Attempts)
	}
}

// TestServeDeadline gives a job an impossible deadline and expects a
// typed deadline failure with no retry.
func TestServeDeadline(t *testing.T) {
	fx := newFixture(t, 30_000, 24)
	s, ts := newServer(t, fx, t.TempDir(), func(c *Config) {
		c.StepDelay = 50 * time.Millisecond
	})
	defer s.Drain()

	j := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=2&deadline_ms=1", nil))
	failed := awaitState(t, ts.URL, j.ID, StateDone, StateFailed)
	if failed.State != StateFailed {
		t.Fatalf("deadline job = %q, want failed", failed.State)
	}
	if failed.Error == nil || failed.Error.Kind != "deadline" {
		t.Errorf("typed error = %+v, want kind deadline", failed.Error)
	}
	if failed.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (deadline failures don't retry)", failed.Attempts)
	}
}

// TestServePrefilter submits a job with the GateKeeper pre-alignment
// filter enabled: the SAM must stay byte-identical to the unfiltered
// in-memory baseline (the filter's superset invariant, end to end), the
// filter configuration must persist in job.json, and the filter's
// counters must fold into /metrics. A bad filter name is a 400.
func TestServePrefilter(t *testing.T) {
	fx := newFixture(t, 40_000, 40)
	s, ts := newServer(t, fx, t.TempDir(), nil)
	defer s.Drain()

	resp := submit(t, ts.URL, fx.fastq, "?batch=7&prefilter=gatekeeper", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	j := decodeJob(t, resp)
	if j.Prefilter != mapper.PrefilterGateKeeper {
		t.Fatalf("admitted job prefilter = %q, want %q", j.Prefilter, mapper.PrefilterGateKeeper)
	}
	done := awaitState(t, ts.URL, j.ID, StateDone, StateFailed)
	if done.State != StateDone {
		t.Fatalf("job failed: %+v", done.Error)
	}
	got := fetchSAM(t, ts.URL, j.ID)
	want := fx.baselineSAM(t, false, 5, 100)
	if !bytes.Equal(got, want) {
		t.Errorf("filtered service SAM differs from unfiltered baseline (%d vs %d bytes)", len(got), len(want))
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap trace.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if _, ok := snap.Counters["prefilter_rejected_total"]; !ok {
		t.Error("prefilter_rejected_total not folded into /metrics")
	}
	if _, ok := snap.Counters["prefilter_false_accepts_total"]; !ok {
		t.Error("prefilter_false_accepts_total not folded into /metrics")
	}

	bad := submit(t, ts.URL, fx.fastq, "?prefilter=grim", nil)
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad prefilter = %d, want 400", bad.StatusCode)
	}
}
