package serve

// Partition allocator: the piece that turns the shared device pool into
// disjoint per-job partitions. A job asks for n devices; the allocator
// hands out n breaker-healthy free devices (closed first, then
// half-open — canaries run only when no fully healthy device is free)
// and marks them busy until the job releases them. Devices whose
// circuit breaker is open are quarantined: they are never allocated,
// and every pass-over ticks the breaker's cooldown (cl.Breaker.Skipped)
// so a quarantined device eventually goes half-open and earns a canary
// job. All decisions are count-driven — no clocks, no randomness — so
// a scripted chaos run allocates identically every time.

import (
	"sync"

	"repro/internal/cl"
)

// allocator tracks which pool devices are checked out to running jobs.
type allocator struct {
	devices []*cl.Device // immutable after newAllocator

	mu   sync.Mutex
	busy []bool // guarded by mu; busy[i] = devices[i] is checked out
}

func newAllocator(devices []*cl.Device) *allocator {
	return &allocator{devices: devices, busy: make([]bool, len(devices))}
}

// acquire tries to check out n healthy free devices. On success it
// returns the chosen pool indices and devices with ok true; when fewer
// than n healthy devices are free it changes nothing and reports ok
// false. Every free open-breaker device passed over gets a cooldown
// tick, so repeated failed acquires are what eventually readmit a
// quarantined device.
func (a *allocator) acquire(n int) (idx []int, devs []*cl.Device, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var closed, half []int
	for i, d := range a.devices {
		if a.busy[i] {
			continue
		}
		st := d.BreakerState()
		if st == cl.BreakerOpen {
			st, _ = d.Breaker().Skipped()
		}
		switch st {
		case cl.BreakerClosed:
			closed = append(closed, i)
		case cl.BreakerHalfOpen:
			half = append(half, i)
		}
	}
	if len(closed)+len(half) < n {
		return nil, nil, false
	}
	idx = append(closed, half...)[:n]
	devs = make([]*cl.Device, n)
	for k, i := range idx {
		a.busy[i] = true
		devs[k] = a.devices[i]
	}
	return idx, devs, true
}

// release returns a partition's devices to the pool.
func (a *allocator) release(idx []int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, i := range idx {
		a.busy[i] = false
	}
}
