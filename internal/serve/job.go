package serve

// Job model and the on-disk job store. Every job owns one spool
// directory (reads.fq upload, out.sam output, run.ckpt checkpoint,
// job.json metadata); job.json is persisted atomically on every state
// transition, so a killed server restarted over the same spool sees
// every job exactly as it last durably was and re-queues the unfinished
// ones in admission order.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/cl"
)

// JobState is a job's position in its lifecycle. The machine is
// queued → running → {done, failed, interrupted}; interrupted (drain)
// and stale running (crash) re-enter queued on restart.
type JobState string

const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateInterrupted JobState = "interrupted"
)

// JobError is the typed, machine-readable failure state of a failed
// job, reusing the cl error taxonomy so clients can distinguish a
// transient resource squeeze from a lost device from bad input.
type JobError struct {
	// Kind classifies the failure: "cl" (device/runtime, Code set),
	// "deadline" (per-job deadline exceeded), "input" (unparseable
	// reads), "internal" (anything else).
	Kind string `json:"kind"`
	// Code is the OpenCL-style error code name (e.g.
	// "CL_DEVICE_NOT_AVAILABLE") when Kind is "cl".
	Code string `json:"code,omitempty"`
	// Transient and DeviceLost mirror cl.IsTransient / cl.IsDeviceLost
	// for the underlying error.
	Transient  bool   `json:"transient,omitempty"`
	DeviceLost bool   `json:"device_lost,omitempty"`
	Message    string `json:"message"`
}

// classifyError builds the typed error state for a job failure.
func classifyError(kind string, err error) *JobError {
	je := &JobError{Kind: kind, Message: err.Error()}
	if code := cl.CodeOf(err); code != cl.Success {
		je.Kind = "cl"
		je.Code = code.String()
		je.Transient = cl.IsTransient(err)
		je.DeviceLost = cl.IsDeviceLost(err)
	}
	return je
}

// Job is one mapping job. The store hands out copies; only the store
// mutates the canonical instances, under its mutex.
type Job struct {
	ID  string `json:"id"`
	Seq int    `json:"seq"` // admission order, the FIFO key
	// State and Error are the lifecycle position and, for failed jobs,
	// the typed cause.
	State JobState  `json:"state"`
	Error *JobError `json:"error,omitempty"`
	// Request parameters.
	Batch      int    `json:"batch"`
	Cigar      bool   `json:"cigar,omitempty"`
	Prefilter  string `json:"prefilter,omitempty"`   // pre-alignment filter ("" = off)
	Faults     string `json:"faults,omitempty"`      // X-Repute-Faults plan text
	DeadlineMS int64  `json:"deadline_ms,omitempty"` // 0 = none
	Bytes      int64  `json:"bytes"`                 // spooled upload size
	// Devices is the partition size the job requested (?devices=K,
	// default 1); Partition records which pool devices the latest attempt
	// actually ran on.
	Devices   int      `json:"devices,omitempty"`
	Partition []string `json:"partition,omitempty"`
	// Attempts counts runs started (1 on the first run); a job may
	// retry until attempts exceeds the server's retry budget.
	Attempts int `json:"attempts,omitempty"`
	// Progress and result tallies (from the job's checkpoint state).
	Reads      int     `json:"reads,omitempty"`
	Mapped     int     `json:"mapped,omitempty"`
	Locations  int     `json:"locations,omitempty"`
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	// Resumable marks interrupted jobs whose checkpoint allows a
	// bit-identical continuation after restart.
	Resumable bool `json:"resumable,omitempty"`
}

// store is the shared job table. All fields are mutated only under mu;
// methods return Job copies so handlers never alias store-owned state.
type store struct {
	dir string // spool root; immutable after newStore

	mu            sync.Mutex
	jobs          map[string]*Job // guarded by mu
	queue         []string        // guarded by mu; FIFO of queued job IDs
	inflightBytes int64           // guarded by mu; upload bytes admitted but not yet terminal
	nextSeq       int             // guarded by mu
}

// terminal reports whether a state ends a job's claim on the in-flight
// byte budget. Interrupted counts as terminal for accounting because it
// only occurs during drain (the process is about to exit; a restart
// recounts from the spool).
func terminal(st JobState) bool {
	return st == StateDone || st == StateFailed || st == StateInterrupted
}

// jobDir is the job's spool directory; readsPath, samPath and ckptPath
// are the fixed artifact names inside it.
func (s *store) jobDir(id string) string    { return filepath.Join(s.dir, id) }
func (s *store) readsPath(id string) string { return filepath.Join(s.dir, id, "reads.fq") }
func (s *store) samPath(id string) string   { return filepath.Join(s.dir, id, "out.sam") }
func (s *store) ckptPath(id string) string  { return filepath.Join(s.dir, id, "run.ckpt") }

// newStore opens (or creates) the spool directory and loads every
// persisted job. Jobs that were queued, running or interrupted when the
// previous process died are re-queued in admission order — running jobs
// resume from their last durable checkpoint.
func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spool: %w", err)
	}
	s := &store{dir: dir, jobs: map[string]*Job{}}
	// The store is still single-owner here, but taking the lock anyway
	// keeps the guarded-field discipline uniform (and lockguard-checkable).
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: spool: %w", err)
	}
	var resumed []*Job
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name(), "job.json"))
		if err != nil {
			continue // half-created spool entry from a crash mid-admission
		}
		j := &Job{}
		if err := json.Unmarshal(b, j); err != nil || j.ID != e.Name() {
			continue
		}
		if j.Devices < 1 {
			j.Devices = 1 // spool entries written before partitions existed
		}
		s.jobs[j.ID] = j
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
		switch j.State {
		case StateQueued, StateRunning, StateInterrupted:
			j.State = StateQueued
			resumed = append(resumed, j)
		}
	}
	sort.Slice(resumed, func(i, k int) bool { return resumed[i].Seq < resumed[k].Seq })
	for _, j := range resumed {
		s.queue = append(s.queue, j.ID)
		s.inflightBytes += j.Bytes
		if err := s.persist(j); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// persist writes a job's metadata atomically (tmp + rename). It takes a
// snapshot, not store state, so it needs no lock of its own.
func (s *store) persist(j *Job) error {
	b, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: job %s: %w", j.ID, err)
	}
	b = append(b, '\n')
	path := filepath.Join(s.jobDir(j.ID), "job.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("serve: job %s: %w", j.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: job %s: %w", j.ID, err)
	}
	return nil
}

// depth reports the queued-job count and in-flight upload bytes.
func (s *store) depth() (n int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.inflightBytes
}

// admit creates a new queued job if the queue has room for it,
// returning the job copy and true, or the current queue depth and false
// when admission control rejects it. size is the spooled upload size.
func (s *store) admit(template Job, size int64, maxQueue int, maxBytes int64) (Job, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) >= maxQueue || s.inflightBytes+size > maxBytes {
		return Job{}, len(s.queue), false
	}
	j := template
	j.Seq = s.nextSeq
	s.nextSeq++
	j.ID = fmt.Sprintf("job-%06d", j.Seq)
	j.State = StateQueued
	j.Bytes = size
	s.jobs[j.ID] = &j
	s.queue = append(s.queue, j.ID)
	s.inflightBytes += size
	return j, len(s.queue), true
}

// forget removes a job that failed spooling after admit, releasing its
// queue slot.
func (s *store) forget(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	delete(s.jobs, id)
	for i, qid := range s.queue {
		if qid == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.inflightBytes -= j.Bytes
}

// get returns a copy of the job.
func (s *store) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// peek returns a copy of the oldest queued job without dequeuing it, so
// the scheduler can try to allocate its partition first. ok is false
// when the queue is empty.
func (s *store) peek() (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Job{}, false
	}
	return *s.jobs[s.queue[0]], true
}

// dequeue pops the oldest queued job and marks it running. ok is false
// when the queue is empty.
func (s *store) dequeue() (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Job{}, false
	}
	id := s.queue[0]
	s.queue = s.queue[1:]
	j := s.jobs[id]
	j.State = StateRunning
	j.Attempts++
	cp := *j
	s.persist(&cp) //nolint:errcheck // running is re-derived on restart
	return cp, true
}

// requeue puts a running job back at the tail of the queue (retry after
// a failed attempt).
func (s *store) requeue(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("serve: requeue: no job %s", id)
	}
	j.State = StateQueued
	s.queue = append(s.queue, id)
	cp := *j
	return cp, s.persist(&cp)
}

// update applies fn to the job under the store lock and persists the
// result, returning the updated copy.
func (s *store) update(id string, fn func(*Job)) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("serve: update: no job %s", id)
	}
	wasTerminal := terminal(j.State)
	fn(j)
	if !wasTerminal && terminal(j.State) {
		s.inflightBytes -= j.Bytes
	}
	cp := *j
	return cp, s.persist(&cp)
}

// snapshotJobs returns copies of all jobs sorted by admission order.
func (s *store) snapshotJobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}
