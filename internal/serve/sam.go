package serve

// SAM emission shared by the CLI's map command and the service's job
// runner, so the two paths produce byte-identical records from the same
// mappings.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/genome"
	"repro/internal/mapper"
	"repro/internal/sam"
)

// WriteReadAlignments emits one read's SAM record(s), translating
// global mapping positions to per-contig coordinates and dropping
// alignments that span a contig boundary (reported via the dropped
// count). With cigar set it recovers the CIGAR string through the
// pipeline's traceback kernel.
func WriteReadAlignments(sw *sam.Writer, g *genome.Genome, p *core.Pipeline,
	name string, read []byte, ms []mapper.Mapping, cigar bool, maxErrors int) (int, error) {
	dropped := 0
	var alns []sam.Alignment
	for _, m := range ms {
		if g.SpansBoundary(int(m.Pos), len(read)) {
			dropped++
			continue
		}
		contig, off, err := g.Locate(int(m.Pos))
		if err != nil {
			return dropped, err
		}
		aln := sam.Alignment{
			RName:  contig.Name,
			Pos:    int32(off),
			Strand: m.Strand,
			Dist:   m.Dist,
		}
		if len(alns) == 0 {
			aln.MAPQ = mapper.EstimateMAPQ(ms)
		}
		if cigar {
			c, err := p.CigarFor(read, m, maxErrors)
			if err != nil {
				return dropped, fmt.Errorf("read %s: %w", name, err)
			}
			aln.Cigar = c.String()
		}
		alns = append(alns, aln)
	}
	if err := sw.WriteAlignments(name, []byte(dna.Decode(read)), alns); err != nil {
		return dropped, err
	}
	return dropped, nil
}
