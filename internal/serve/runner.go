package serve

// The scheduler and per-job runner. One runner goroutine drains the
// FIFO queue, so jobs on the shared device pool execute in admission
// order — fairness by construction — and every job gets the pool to
// itself while it runs. Fault isolation follows from the same shape:
// a job's fault plan (X-Repute-Faults) is installed on the devices just
// before its attempt and unconditionally disarmed after, so an injected
// device loss dies with the job that asked for it and the next job sees
// a healthy pool.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fastx"
	"repro/internal/mapper"
	"repro/internal/sam"
	"repro/internal/seed"
	"repro/internal/trace"
)

// runner is the single scheduler goroutine: pop the oldest queued job,
// run it, repeat; block on wake when idle; exit on stop. It never exits
// mid-attempt — drain interrupts the attempt at a batch boundary via
// the emit callback, and only then does the loop observe stop.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		job, ok := s.store.dequeue()
		if !ok {
			s.updateGauges()
			select {
			case <-s.wake:
			case <-s.stopCh:
				return
			}
			continue
		}
		s.updateGauges()
		s.runJob(job)
		s.updateGauges()
	}
}

// runJob executes one attempt of a job and applies the outcome to the
// job state machine: success → done, drain stop → interrupted
// (resumable), deadline → failed (no retry), anything else → requeue
// while the retry budget lasts, then failed with the typed cl error.
func (s *Server) runJob(job Job) {
	rec := trace.NewRecorder()
	s.setRecorder(job.ID, rec)

	err := s.runAttempt(job, rec)

	// The attempt's metrics fold into the service registry exactly once
	// per attempt, whatever the outcome — a failed attempt's retries and
	// injected faults are part of the service's story too.
	if aerr := s.reg.Apply(rec.Metrics()); aerr != nil && err == nil {
		err = aerr
	}

	switch {
	case err == nil:
		j, _ := s.store.update(job.ID, func(j *Job) {
			j.State = StateDone
			j.Resumable = false
			j.Error = nil
		})
		s.reg.Counter(metricJobsCompleted).Add(1)
		s.reg.Histogram(metricJobSimSeconds, trace.TimeBuckets()).Observe(j.SimSeconds)
	case errors.Is(err, core.Stop):
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.State = StateInterrupted
			j.Resumable = true
		})
		s.reg.Counter(metricJobsInterrupted).Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.State = StateFailed
			j.Error = &JobError{Kind: "deadline", Message: fmt.Sprintf("deadline %d ms exceeded", j.DeadlineMS)}
		})
		s.reg.Counter(metricJobsFailed).Add(1)
	default:
		// Bad input never improves on retry; everything else may (transient
		// resource pressure, injected chaos) and earns the budget.
		if job.Attempts <= s.cfg.RetryBudget && !errors.Is(err, errBadInput) {
			s.store.requeue(job.ID) //nolint:errcheck
			s.reg.Counter(metricJobsRetried).Add(1)
			return
		}
		kind := "internal"
		if errors.Is(err, errBadInput) {
			kind = "input"
		}
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.State = StateFailed
			j.Error = classifyError(kind, err)
		})
		s.reg.Counter(metricJobsFailed).Add(1)
	}
}

// errBadInput marks failures caused by the job's own payload (reads
// that don't parse), which classify as "input" rather than "internal".
var errBadInput = errors.New("serve: bad input")

// runAttempt runs one MapStream pass over the job's spooled reads,
// resuming from the job's checkpoint when one exists. It is the service
// counterpart of the CLI's streaming loop and shares its invariants:
// SAM truncated to the checkpointed prefix, scanner seeked to the
// checkpointed offset, codec fast-forwarded, fault ordinals restored —
// so a resumed job is bit-identical to an uninterrupted one.
func (s *Server) runAttempt(job Job, rec *trace.Recorder) error {
	p, err := s.newPipeline(rec)
	if err != nil {
		return err
	}
	opt := mapper.Options{
		MaxErrors: s.cfg.MaxErrors, MaxLocations: s.cfg.MaxLocations,
		Prefilter: job.Prefilter,
	}
	fingerprint := checkpoint.FingerprintDigest(s.digest, opt,
		fmt.Sprintf("batch=%d", job.Batch),
		fmt.Sprintf("cigar=%t", job.Cigar),
		"faults="+job.Faults,
	)

	ckptPath := s.store.ckptPath(job.ID)
	st := &checkpoint.State{
		Version:       checkpoint.Version,
		Fingerprint:   fingerprint,
		BatchSize:     job.Batch,
		DeviceSeconds: map[string]float64{},
	}
	resume := false
	if _, serr := os.Stat(ckptPath); serr == nil {
		loaded, lerr := checkpoint.Load(ckptPath)
		if lerr != nil {
			return lerr
		}
		if verr := loaded.Verify(fingerprint); verr != nil {
			return verr
		}
		st = loaded
		if st.DeviceSeconds == nil {
			st.DeviceSeconds = map[string]float64{}
		}
		resume = true
		s.reg.Counter(metricJobsResumed).Add(1)
	}

	// Per-job chaos: install the job's fault plan with fresh ordinals
	// (or the checkpointed ones on resume), and always disarm afterwards
	// — an injected device loss must never outlive the job that carried
	// it, and the next job must start from a healthy pool.
	if job.Faults != "" {
		plan, perr := cl.ParseFaultPlan(job.Faults)
		if perr != nil {
			return fmt.Errorf("%w: %w", errBadInput, perr)
		}
		for _, d := range s.devices {
			d.InstallFaults(plan)
			if o, ok := st.FaultOrdinals[d.Name]; resume && ok {
				d.RestoreFaultOrdinals(o)
			}
		}
	}
	defer func() {
		for _, d := range s.devices {
			d.InstallFaults(nil)
		}
	}()

	// Output SAM: fresh attempts write a headered file; resumes truncate
	// to the checkpointed prefix and append.
	refs := make([]sam.RefSeq, len(s.g.Contigs()))
	for i, c := range s.g.Contigs() {
		refs[i] = sam.RefSeq{Name: c.Name, Length: c.Length}
	}
	samPath := s.store.samPath(job.ID)
	var (
		out *os.File
		sw  *sam.Writer
	)
	if resume {
		out, err = os.OpenFile(samPath, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if err := out.Truncate(st.SAMBytes); err != nil {
			out.Close()
			return err
		}
		if _, err := out.Seek(st.SAMBytes, io.SeekStart); err != nil {
			out.Close()
			return err
		}
		sw = sam.NewAppendWriter(out, refs[0].Name)
	} else {
		out, err = os.Create(samPath)
		if err != nil {
			return err
		}
		if sw, err = sam.NewMultiWriter(out, refs); err != nil {
			out.Close()
			return err
		}
	}
	defer out.Close()

	rf, err := os.Open(s.store.readsPath(job.ID))
	if err != nil {
		return err
	}
	defer rf.Close()
	if _, err := rf.Seek(st.Offset, io.SeekStart); err != nil {
		return err
	}
	sc := fastx.NewScanner(rf, fastx.ScanOptions{
		Format:     fastx.FormatFASTQ,
		Name:       job.ID + "/reads.fq",
		Tracer:     rec,
		BaseOffset: st.Offset,
		BaseLine:   st.Line,
	})
	codec := fastx.NewCodec(0)
	codec.FastForward(st.RNGDraws)
	src := core.NewScanSource(sc, codec, job.Batch, false, opt.MaxErrors, st.Reads)

	ctx := context.Background()
	if job.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	emit := func(b core.StreamBatch, res *mapper.Result) error {
		for i, name := range b.Names {
			dropped, werr := WriteReadAlignments(sw, s.g, p, name, b.Reads[i],
				res.Mappings[i], job.Cigar, opt.MaxErrors)
			if werr != nil {
				return werr
			}
			st.Dropped += dropped
		}
		if err := sw.Flush(); err != nil {
			return err
		}
		pos, err := out.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}

		st.Batches++
		st.Reads = b.Start + len(b.Reads)
		for _, ms := range res.Mappings {
			if len(ms) > 0 {
				st.Mapped++
			}
			st.Locations += len(ms)
		}
		st.SimSeconds += res.SimSeconds
		st.EnergyJ += res.EnergyJ
		for dev, sec := range res.DeviceSeconds {
			st.DeviceSeconds[dev] += sec
		}
		st.Cost.Add(res.Cost)
		st.Faults.Add(res.Faults)
		st.Offset = b.Token.Offset
		st.Line = b.Token.Line
		st.RNGDraws = b.Token.RNGDraws
		st.SAMBytes = pos
		st.FaultOrdinals = snapshotOrdinals(s.devices)

		if err := checkpoint.Save(ckptPath, st); err != nil {
			return err
		}
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.Reads = st.Reads
			j.Mapped = st.Mapped
			j.Locations = st.Locations
			j.SimSeconds = st.SimSeconds
			j.Resumable = true
		})
		if s.cfg.StepDelay > 0 {
			time.Sleep(s.cfg.StepDelay)
		}
		if s.draining.Load() {
			return core.Stop
		}
		return nil
	}

	_, err = p.MapStream(ctx, src, opt, emit)
	if err != nil {
		var pe *fastx.ParseError
		if errors.As(err, &pe) {
			return fmt.Errorf("%w: %w", errBadInput, err)
		}
		return err
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if pos, perr := out.Seek(0, io.SeekCurrent); perr == nil {
		st.SAMBytes = pos
	}
	return checkpoint.Save(ckptPath, st)
}

// newPipeline wires a per-job pipeline over the shared index and device
// pool. The pipeline itself is cheap scaffolding — the FM-indexes and
// the devices are shared; only the tracer hookup is per job.
func (s *Server) newPipeline(rec *trace.Recorder) (*core.Pipeline, error) {
	cfg := core.Config{Name: "REPUTE", Selector: seed.REPUTE{}, Tracer: rec}
	if s.file.Meta.Sharded() {
		shards := make([]core.Shard, len(s.file.Indexes))
		for i, sh := range s.file.Meta.Shards {
			shards[i] = core.Shard{
				Index:      s.file.Indexes[i],
				OwnStart:   sh.OwnStart,
				OwnEnd:     sh.OwnEnd,
				SliceStart: sh.SliceStart,
				SliceEnd:   sh.SliceEnd,
			}
		}
		return core.NewSharded(shards, s.file.Meta.Overlap, s.devices, cfg)
	}
	return core.NewFromIndex(s.file.Indexes[0], s.devices, cfg)
}

// snapshotOrdinals captures every armed device's fault ordinals for the
// checkpoint, mirroring the CLI's streaming loop.
func snapshotOrdinals(devices []*cl.Device) map[string]cl.FaultOrdinals {
	var m map[string]cl.FaultOrdinals
	for _, d := range devices {
		if o, ok := d.FaultOrdinals(); ok {
			if m == nil {
				m = map[string]cl.FaultOrdinals{}
			}
			m[d.Name] = o
		}
	}
	return m
}
