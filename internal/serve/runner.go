package serve

// The scheduler and per-job runner. One dispatcher goroutine walks the
// FIFO queue head-of-line: the oldest queued job states how many
// devices it wants (?devices=K, default 1), the partition allocator
// hands out that many breaker-healthy free devices, and the job runs on
// its own goroutine over its disjoint partition — up to MaxConcurrent
// jobs at once. Admission order still decides who gets devices next
// (fairness by construction); a job waits only while no healthy device
// is free. Fault isolation follows from the partition shape: a job's
// fault plan (X-Repute-Faults) is installed only on that job's
// partition devices just before its attempt and unconditionally
// disarmed after, so an injected device loss dies with the job that
// asked for it. What outlives the job is the device's breaker state —
// by design: a tripped breaker quarantines the device out of new
// partitions until the allocator's cooldown ticks half-open it and a
// canary job re-proves it (DESIGN.md §17).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fastx"
	"repro/internal/mapper"
	"repro/internal/sam"
	"repro/internal/seed"
	"repro/internal/trace"
)

// runner is the dispatcher goroutine: peek the oldest queued job, carve
// its partition out of the pool, hand it to a worker goroutine, repeat;
// block on wake when idle or saturated; exit on stop after every worker
// has finished. Workers never die mid-attempt — drain interrupts each
// attempt at a batch boundary via the emit callback, and the dispatcher
// waits for them before reporting done.
func (s *Server) runner() {
	defer close(s.runnerDone)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		if int(s.active.Load()) >= s.cfg.MaxConcurrent {
			s.waitWake()
			continue
		}
		head, ok := s.store.peek()
		if !ok {
			s.updateGauges()
			s.waitWake()
			continue
		}
		idx, devs, got := s.alloc.acquire(head.Devices)
		if !got {
			// Head-of-line blocking: the oldest job waits for devices, and
			// younger jobs wait behind it — fairness over utilisation. If
			// jobs are running, one of them will free devices and wake us.
			// If nothing is running, every device the job could use is
			// quarantined: loop again immediately — each acquire ticks the
			// open breakers' cooldowns, so within CooldownSkips passes a
			// device goes half-open and becomes allocatable.
			if s.active.Load() > 0 {
				s.waitWake()
			}
			continue
		}
		job, ok := s.store.dequeue()
		if !ok {
			s.alloc.release(idx)
			continue
		}
		names := make([]string, len(devs))
		for i, d := range devs {
			names[i] = d.Name
		}
		s.store.update(job.ID, func(j *Job) { j.Partition = names }) //nolint:errcheck
		s.active.Add(1)
		s.updateGauges()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runJob(job, devs)
			s.alloc.release(idx)
			s.active.Add(-1)
			s.updateGauges()
			s.wakeUp()
		}()
	}
}

// waitWake blocks until a worker frees capacity, a submit queues work,
// or drain begins.
func (s *Server) waitWake() {
	select {
	case <-s.wake:
	case <-s.stopCh:
	}
}

// wakeUp nudges the dispatcher without blocking.
func (s *Server) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// runJob executes one attempt of a job over its device partition and
// applies the outcome to the job state machine: success → done, drain
// stop → interrupted (resumable), deadline → failed (no retry),
// anything else → requeue while the retry budget lasts, then failed
// with the typed cl error.
func (s *Server) runJob(job Job, devs []*cl.Device) {
	rec := trace.NewRecorder()
	s.setRecorder(job.ID, rec)

	err := s.runAttempt(job, rec, devs)

	// The attempt's metrics fold into the service registry exactly once
	// per attempt, whatever the outcome — a failed attempt's retries and
	// injected faults are part of the service's story too.
	if aerr := s.reg.Apply(rec.Metrics()); aerr != nil && err == nil {
		err = aerr
	}

	switch {
	case err == nil:
		j, _ := s.store.update(job.ID, func(j *Job) {
			j.State = StateDone
			j.Resumable = false
			j.Error = nil
		})
		s.reg.Counter(metricJobsCompleted).Add(1)
		s.reg.Histogram(metricJobSimSeconds, trace.TimeBuckets()).Observe(j.SimSeconds)
	case errors.Is(err, core.Stop):
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.State = StateInterrupted
			j.Resumable = true
		})
		s.reg.Counter(metricJobsInterrupted).Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.State = StateFailed
			j.Error = &JobError{Kind: "deadline", Message: fmt.Sprintf("deadline %d ms exceeded", j.DeadlineMS)}
		})
		s.reg.Counter(metricJobsFailed).Add(1)
	default:
		// Bad input never improves on retry; everything else may (transient
		// resource pressure, injected chaos) and earns the budget.
		if job.Attempts <= s.cfg.RetryBudget && !errors.Is(err, errBadInput) {
			s.store.requeue(job.ID) //nolint:errcheck
			s.reg.Counter(metricJobsRetried).Add(1)
			return
		}
		kind := "internal"
		if errors.Is(err, errBadInput) {
			kind = "input"
		}
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.State = StateFailed
			j.Error = classifyError(kind, err)
		})
		s.reg.Counter(metricJobsFailed).Add(1)
	}
}

// errBadInput marks failures caused by the job's own payload (reads
// that don't parse), which classify as "input" rather than "internal".
var errBadInput = errors.New("serve: bad input")

// runAttempt runs one MapStream pass over the job's spooled reads,
// resuming from the job's checkpoint when one exists. It is the service
// counterpart of the CLI's streaming loop and shares its invariants:
// SAM truncated to the checkpointed prefix, scanner seeked to the
// checkpointed offset, codec fast-forwarded, fault ordinals restored —
// so a resumed job is bit-identical to an uninterrupted one.
func (s *Server) runAttempt(job Job, rec *trace.Recorder, devs []*cl.Device) error {
	p, err := s.newPipeline(rec, devs)
	if err != nil {
		return err
	}
	opt := mapper.Options{
		MaxErrors: s.cfg.MaxErrors, MaxLocations: s.cfg.MaxLocations,
		Prefilter: job.Prefilter,
	}
	fingerprint := checkpoint.FingerprintDigest(s.digest, opt,
		fmt.Sprintf("batch=%d", job.Batch),
		fmt.Sprintf("cigar=%t", job.Cigar),
		fmt.Sprintf("devices=%d", job.Devices),
		"faults="+job.Faults,
	)

	ckptPath := s.store.ckptPath(job.ID)
	st := &checkpoint.State{
		Version:       checkpoint.Version,
		Fingerprint:   fingerprint,
		BatchSize:     job.Batch,
		DeviceSeconds: map[string]float64{},
	}
	resume := false
	if _, serr := os.Stat(ckptPath); serr == nil {
		loaded, lerr := checkpoint.Load(ckptPath)
		if lerr != nil {
			return lerr
		}
		if verr := loaded.Verify(fingerprint); verr != nil {
			return verr
		}
		st = loaded
		if st.DeviceSeconds == nil {
			st.DeviceSeconds = map[string]float64{}
		}
		resume = true
		s.reg.Counter(metricJobsResumed).Add(1)
	}

	// Per-job chaos: install the job's fault plan with fresh ordinals
	// (or the checkpointed ones on resume) on the job's own partition
	// only — a device=K directive narrows it further to the Kth
	// partition member, which is how a chaos run loses one device while
	// its partition partners stay healthy. Always disarm afterwards: an
	// injected fault plan must never outlive the job that carried it.
	// (The breaker state a plan tripped intentionally does outlive it;
	// readmission goes through the allocator's half-open canary.)
	if job.Faults != "" {
		plan, perr := cl.ParseFaultPlan(job.Faults)
		if perr != nil {
			return fmt.Errorf("%w: %w", errBadInput, perr)
		}
		armed := devs
		if plan.Device > 0 {
			if plan.Device > len(devs) {
				return fmt.Errorf("%w: fault directive device=%d exceeds the job's %d-device partition",
					errBadInput, plan.Device, len(devs))
			}
			armed = devs[plan.Device-1 : plan.Device]
		}
		for _, d := range armed {
			d.InstallFaults(plan)
			if o, ok := st.FaultOrdinals[d.Name]; resume && ok {
				d.RestoreFaultOrdinals(o)
			}
		}
	}
	defer func() {
		for _, d := range devs {
			d.InstallFaults(nil)
		}
	}()

	// Output SAM: fresh attempts write a headered file; resumes truncate
	// to the checkpointed prefix and append.
	refs := make([]sam.RefSeq, len(s.g.Contigs()))
	for i, c := range s.g.Contigs() {
		refs[i] = sam.RefSeq{Name: c.Name, Length: c.Length}
	}
	samPath := s.store.samPath(job.ID)
	var (
		out *os.File
		sw  *sam.Writer
	)
	if resume {
		out, err = os.OpenFile(samPath, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if err := out.Truncate(st.SAMBytes); err != nil {
			out.Close()
			return err
		}
		if _, err := out.Seek(st.SAMBytes, io.SeekStart); err != nil {
			out.Close()
			return err
		}
		sw = sam.NewAppendWriter(out, refs[0].Name)
	} else {
		out, err = os.Create(samPath)
		if err != nil {
			return err
		}
		if sw, err = sam.NewMultiWriter(out, refs); err != nil {
			out.Close()
			return err
		}
	}
	defer out.Close()

	rf, err := os.Open(s.store.readsPath(job.ID))
	if err != nil {
		return err
	}
	defer rf.Close()
	if _, err := rf.Seek(st.Offset, io.SeekStart); err != nil {
		return err
	}
	sc := fastx.NewScanner(rf, fastx.ScanOptions{
		Format:     fastx.FormatFASTQ,
		Name:       job.ID + "/reads.fq",
		Tracer:     rec,
		BaseOffset: st.Offset,
		BaseLine:   st.Line,
	})
	codec := fastx.NewCodec(0)
	codec.FastForward(st.RNGDraws)
	src := core.NewScanSource(sc, codec, job.Batch, false, opt.MaxErrors, st.Reads)

	ctx := context.Background()
	if job.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	emit := func(b core.StreamBatch, res *mapper.Result) error {
		for i, name := range b.Names {
			dropped, werr := WriteReadAlignments(sw, s.g, p, name, b.Reads[i],
				res.Mappings[i], job.Cigar, opt.MaxErrors)
			if werr != nil {
				return werr
			}
			st.Dropped += dropped
		}
		if err := sw.Flush(); err != nil {
			return err
		}
		pos, err := out.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}

		st.Batches++
		st.Reads = b.Start + len(b.Reads)
		for _, ms := range res.Mappings {
			if len(ms) > 0 {
				st.Mapped++
			}
			st.Locations += len(ms)
		}
		st.SimSeconds += res.SimSeconds
		st.EnergyJ += res.EnergyJ
		for dev, sec := range res.DeviceSeconds {
			st.DeviceSeconds[dev] += sec
		}
		st.Cost.Add(res.Cost)
		st.Faults.Add(res.Faults)
		st.Offset = b.Token.Offset
		st.Line = b.Token.Line
		st.RNGDraws = b.Token.RNGDraws
		st.SAMBytes = pos
		st.FaultOrdinals = snapshotOrdinals(devs)

		if err := checkpoint.Save(ckptPath, st); err != nil {
			return err
		}
		s.store.update(job.ID, func(j *Job) { //nolint:errcheck
			j.Reads = st.Reads
			j.Mapped = st.Mapped
			j.Locations = st.Locations
			j.SimSeconds = st.SimSeconds
			j.Resumable = true
		})
		if s.cfg.StepDelay > 0 {
			time.Sleep(s.cfg.StepDelay)
		}
		if s.draining.Load() {
			return core.Stop
		}
		return nil
	}

	_, err = p.MapStream(ctx, src, opt, emit)
	if err != nil {
		var pe *fastx.ParseError
		if errors.As(err, &pe) {
			return fmt.Errorf("%w: %w", errBadInput, err)
		}
		return err
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if pos, perr := out.Seek(0, io.SeekCurrent); perr == nil {
		st.SAMBytes = pos
	}
	return checkpoint.Save(ckptPath, st)
}

// newPipeline wires a per-job pipeline over the shared index and the
// job's device partition. The pipeline itself is cheap scaffolding —
// the FM-indexes are shared and the devices belong to the job for its
// lifetime; only the tracer hookup is per job.
func (s *Server) newPipeline(rec *trace.Recorder, devs []*cl.Device) (*core.Pipeline, error) {
	cfg := core.Config{Name: "REPUTE", Selector: seed.REPUTE{}, Tracer: rec}
	if s.file.Meta.Sharded() {
		shards := make([]core.Shard, len(s.file.Indexes))
		for i, sh := range s.file.Meta.Shards {
			shards[i] = core.Shard{
				Index:      s.file.Indexes[i],
				OwnStart:   sh.OwnStart,
				OwnEnd:     sh.OwnEnd,
				SliceStart: sh.SliceStart,
				SliceEnd:   sh.SliceEnd,
			}
		}
		return core.NewSharded(shards, s.file.Meta.Overlap, devs, cfg)
	}
	if len(devs) > 1 {
		// Read-split with a nil split sends every read to the first
		// device; a multi-device partition wants the whole partition busy.
		// The pool is homogeneous, so even shares are the deterministic
		// choice. (Sharded dispatch rejects Split — shards already spread
		// the work round-robin.)
		cfg.Split = make([]float64, len(devs))
		for i := range cfg.Split {
			cfg.Split[i] = 1
		}
	}
	return core.NewFromIndex(s.file.Indexes[0], devs, cfg)
}

// snapshotOrdinals captures every armed device's fault ordinals for the
// checkpoint, mirroring the CLI's streaming loop.
func snapshotOrdinals(devices []*cl.Device) map[string]cl.FaultOrdinals {
	var m map[string]cl.FaultOrdinals
	for _, d := range devices {
		if o, ok := d.FaultOrdinals(); ok {
			if m == nil {
				m = map[string]cl.FaultOrdinals{}
			}
			m[d.Name] = o
		}
	}
	return m
}
