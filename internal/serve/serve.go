// Package serve is the mapping service: a zero-dependency net/http
// front end that accepts FASTQ mapping jobs, schedules them — FIFO in
// admission order — onto disjoint partitions of a shared, index-loaded
// device pool, runs up to MaxConcurrent at once through
// core.Pipeline.MapStream, and serves back SAM. Robustness is the
// package's contract, not a feature flag:
//
//   - Admission control: a bounded queue (depth + in-flight byte
//     budget) that answers 429 with Retry-After instead of queueing
//     unboundedly, and 503 once draining. Retry-After spreads
//     synchronized clients with deterministic jitter.
//   - Failure isolation: each job's fault plan (X-Repute-Faults) is
//     armed only on that job's partition for its attempts and disarmed
//     after, so an injected device loss never poisons a concurrent or
//     subsequent job.
//   - Device health: every pool device carries a circuit breaker fed by
//     the typed fault taxonomy and a simulated-time hang watchdog.
//     Quarantined (open-breaker) devices are excluded from new
//     partitions until a half-open canary job readmits them; jobs queue
//     only while no healthy device is free. DESIGN.md §17.
//   - Retry budgets: a failing job is re-queued (resuming from its own
//     checkpoint) until its attempts exceed the budget, then fails
//     alone with a typed error from the cl taxonomy.
//   - Graceful drain: SIGTERM (via Drain) stops admission, interrupts
//     in-flight jobs at a batch boundary after their checkpoints are
//     durable, and reports what is resumable; restarting over the same
//     spool re-queues unfinished jobs and produces byte-identical SAM.
//
// DESIGN.md §14 documents the protocol; the CLI front end is
// `repute serve`.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cl"
	"repro/internal/genome"
	"repro/internal/index"
	"repro/internal/mapper"
	"repro/internal/trace"
)

// Metric names (tracedisc-checked: snake_case families, counters end
// in _total before any "/" label segment).
const (
	metricJobsAdmitted    = "serve_jobs_admitted_total"
	metricJobsRejected    = "serve_jobs_rejected_total" // + "/overload" | "/draining"
	metricJobsCompleted   = "serve_jobs_completed_total"
	metricJobsFailed      = "serve_jobs_failed_total"
	metricJobsRetried     = "serve_jobs_retried_total"
	metricJobsResumed     = "serve_jobs_resumed_total"
	metricJobsInterrupted = "serve_jobs_interrupted_total"
	metricQueueDepth      = "serve_queue_depth"
	metricInflightBytes   = "serve_inflight_bytes"
	metricReady           = "serve_ready"
	metricJobsRunning     = "serve_jobs_running"
	metricJobSimSeconds   = "serve_job_sim_seconds"
	metricBreakerState    = "device_breaker_state" // + "/<device>"; 0 closed, 1 half-open, 2 open
)

// Config wires a Server. Index, Devices and Spool are required; zero
// values elsewhere select the documented defaults.
type Config struct {
	// Index is the loaded reference index artifact all jobs map against.
	Index *index.File
	// Devices is the shared device pool.
	Devices []*cl.Device
	// Spool is the job spool directory: one subdirectory per job holding
	// the upload, the output SAM, the checkpoint and the job metadata.
	Spool string
	// MaxQueue bounds the number of queued jobs (default 8); MaxInflightBytes
	// bounds the summed upload bytes of admitted-but-unfinished jobs
	// (default 256 MiB). Exceeding either rejects with 429.
	MaxQueue         int
	MaxInflightBytes int64
	// MaxUploadBytes bounds a single upload (default 64 MiB).
	MaxUploadBytes int64
	// DefaultBatch is the streaming batch size when a job does not set
	// ?batch= (default 512).
	DefaultBatch int
	// RetryBudget is how many times a failed attempt may be re-queued
	// before the job fails for good (default 2: up to 3 attempts).
	RetryBudget int
	// MaxConcurrent bounds how many jobs run at once over disjoint
	// device partitions (default min(4, len(Devices))). 1 restores the
	// strict one-at-a-time FIFO.
	MaxConcurrent int
	// WatchdogFactor is the hang-watchdog multiple armed on every pool
	// device: an enqueue overrunning factor × its cost-model expectation
	// is terminated with a typed transient fault. 0 selects the default
	// of 8; negative disables the watchdog.
	WatchdogFactor float64
	// MaxErrors and MaxLocations are the mapping options (defaults 5 and
	// 100, matching `repute map`).
	MaxErrors    int
	MaxLocations int
	// StepDelay inserts a pause after every batch — a test hook to make
	// drain and overload windows wide enough to hit deterministically.
	StepDelay time.Duration
}

// Server is the mapping service. Create with New, mount via Handler,
// shut down with Drain.
type Server struct {
	cfg     Config
	file    *index.File
	g       *genome.Genome
	digest  [32]byte
	devices []*cl.Device
	reg     *trace.Registry
	store   *store
	mux     *http.ServeMux

	alloc *allocator

	draining   atomic.Bool
	active     atomic.Int32  // jobs currently running on workers
	rejectSeq  atomic.Uint64 // monotonic 429 counter, the Retry-After jitter source
	stopCh     chan struct{}
	wake       chan struct{}
	runnerDone chan struct{}

	mu        sync.Mutex
	recorders map[string]*trace.Recorder // guarded by mu; per-job, in-memory only
}

// New builds a Server over a loaded index artifact and starts its
// scheduler. The spool directory is created if missing and probed for
// writability up front (a typed *checkpoint.DirError otherwise — the
// service refuses to start rather than fail on the first checkpoint).
// Unfinished jobs found in the spool are re-queued in admission order.
func New(cfg Config) (*Server, error) {
	if cfg.Index == nil || len(cfg.Index.Indexes) == 0 {
		return nil, fmt.Errorf("serve: config needs a loaded index")
	}
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("serve: config needs at least one device")
	}
	if cfg.Spool == "" {
		return nil, fmt.Errorf("serve: config needs a spool directory")
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8
	}
	if cfg.MaxInflightBytes <= 0 {
		cfg.MaxInflightBytes = 256 << 20
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	if cfg.DefaultBatch <= 0 {
		cfg.DefaultBatch = 512
	}
	if cfg.RetryBudget < 0 {
		cfg.RetryBudget = 0
	} else if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 2
	}
	if cfg.MaxErrors <= 0 {
		cfg.MaxErrors = 5
	}
	if cfg.MaxLocations <= 0 {
		cfg.MaxLocations = 100
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = len(cfg.Devices)
		if cfg.MaxConcurrent > 4 {
			cfg.MaxConcurrent = 4
		}
	}
	switch {
	case cfg.WatchdogFactor == 0:
		cfg.WatchdogFactor = 8
	case cfg.WatchdogFactor < 0:
		cfg.WatchdogFactor = 0
	}
	// Device health is always on in the service: every pool device gets
	// a circuit breaker (default thresholds) and the hang watchdog. The
	// allocator and the half-open canary flow handle readmission.
	for _, d := range cfg.Devices {
		d.EnableBreaker(cl.BreakerConfig{})
		d.SetWatchdog(cfg.WatchdogFactor)
	}

	g, err := genome.FromContigs(cfg.Index.Meta.Contigs)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Spool, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spool: %w", err)
	}
	if err := checkpoint.CheckDir(cfg.Spool); err != nil {
		return nil, err
	}
	st, err := newStore(cfg.Spool)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:        cfg,
		file:       cfg.Index,
		g:          g,
		digest:     cfg.Index.Digest(),
		devices:    cfg.Devices,
		reg:        trace.NewRegistry(),
		store:      st,
		alloc:      newAllocator(cfg.Devices),
		stopCh:     make(chan struct{}),
		wake:       make(chan struct{}, 1),
		runnerDone: make(chan struct{}),
		recorders:  map[string]*trace.Recorder{},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/sam", s.handleSAM)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	s.updateGauges()
	go s.runner()
	return s, nil
}

// Handler is the service's HTTP handler, for mounting under an
// http.Server or httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Queued reports how many jobs are waiting (not running, not finished).
func (s *Server) Queued() int { n, _ := s.store.depth(); return n }

// Drain performs the graceful-shutdown protocol: flip readiness off and
// stop admitting (503), let the in-flight job checkpoint and stop at
// its next batch boundary, stop the scheduler, and return every job
// that is not in a terminal-success state — the resume hints. Blocks
// until the scheduler has exited; safe to call once.
func (s *Server) Drain() []Job {
	if s.draining.CompareAndSwap(false, true) {
		s.updateGauges()
		close(s.stopCh)
	}
	<-s.runnerDone
	var unfinished []Job
	for _, j := range s.store.snapshotJobs() {
		if j.State != StateDone && j.State != StateFailed {
			unfinished = append(unfinished, j)
		}
	}
	return unfinished
}

// setRecorder publishes a job's in-memory trace recorder (latest
// attempt wins). Recorders are not persisted: after a restart,
// /trace/{id} for an old job is a 404.
func (s *Server) setRecorder(id string, rec *trace.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recorders[id] = rec
}

// recorder fetches a job's trace recorder.
func (s *Server) recorder(id string) (*trace.Recorder, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recorders[id]
	return rec, ok
}

// ready is the readiness predicate: not draining and room in the queue.
func (s *Server) ready() bool {
	if s.draining.Load() {
		return false
	}
	n, b := s.store.depth()
	return n < s.cfg.MaxQueue && b < s.cfg.MaxInflightBytes
}

// updateGauges refreshes the queue-shaped and health gauges after any
// transition.
func (s *Server) updateGauges() {
	n, b := s.store.depth()
	s.reg.Gauge(metricQueueDepth).Set(float64(n))
	s.reg.Gauge(metricInflightBytes).Set(float64(b))
	s.reg.Gauge(metricJobsRunning).Set(float64(s.active.Load()))
	ready := 0.0
	if s.ready() {
		ready = 1.0
	}
	s.reg.Gauge(metricReady).Set(ready)
	for _, d := range s.devices {
		s.reg.Gauge(metricBreakerState + "/" + d.Name).Set(float64(d.BreakerState()))
	}
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not our error
}

// apiError is the JSON error envelope for request-level failures.
type apiError struct {
	Error string `json:"error"`
}

// handleSubmit is POST /jobs: admission control, upload spooling, job
// creation. Responds 202 with the job JSON, 400 on a bad request, 413
// on an oversized upload, 429 (Retry-After) on overload, 503 while
// draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reg.Counter(metricJobsRejected + "/draining").Add(1)
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining: not admitting new jobs"})
		return
	}

	job := Job{Batch: s.cfg.DefaultBatch, Devices: 1}
	q := r.URL.Query()
	if v := q.Get("devices"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > len(s.devices) {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(
				"bad devices %q (want 1..%d)", v, len(s.devices))})
			return
		}
		job.Devices = n
	}
	if v := q.Get("batch"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad batch %q (want integer > 0)", v)})
			return
		}
		job.Batch = n
	}
	if v := q.Get("cigar"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad cigar %q", v)})
			return
		}
		job.Cigar = b
	}
	if v := q.Get("prefilter"); v != "" {
		switch v {
		case mapper.PrefilterOff, mapper.PrefilterGateKeeper:
			job.Prefilter = v
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad prefilter %q (want %s or %s)",
				v, mapper.PrefilterOff, mapper.PrefilterGateKeeper)})
			return
		}
	}
	if v := q.Get("deadline_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad deadline_ms %q (want integer ms > 0)", v)})
			return
		}
		job.DeadlineMS = n
	}
	if fp := r.Header.Get("X-Repute-Faults"); fp != "" {
		plan, err := cl.ParseFaultPlan(fp)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		if plan.Device > job.Devices {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(
				"fault directive device=%d exceeds the job's %d-device partition", plan.Device, job.Devices)})
			return
		}
		job.Faults = fp
	}

	// Fast-path overload check before reading the body; the admit call
	// below re-checks under the store lock once the size is known.
	if n, b := s.store.depth(); n >= s.cfg.MaxQueue || b >= s.cfg.MaxInflightBytes {
		s.rejectOverload(w, n)
		return
	}

	// Spool the upload to a temp file in the spool root; it becomes the
	// job's reads.fq only after admission succeeds.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	file, _, err := r.FormFile("reads")
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, apiError{Error: fmt.Sprintf("multipart field \"reads\": %v", err)})
		return
	}
	defer file.Close()
	tmp, err := os.CreateTemp(s.cfg.Spool, ".upload-*")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	tmpName := tmp.Name()
	size, err := io.Copy(tmp, file)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		status := http.StatusInternalServerError
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, apiError{Error: err.Error()})
		return
	}

	admitted, depth, ok := s.store.admit(job, size, s.cfg.MaxQueue, s.cfg.MaxInflightBytes)
	if !ok {
		os.Remove(tmpName)
		s.rejectOverload(w, depth)
		return
	}
	if err := os.MkdirAll(s.store.jobDir(admitted.ID), 0o755); err == nil {
		err = os.Rename(tmpName, s.store.readsPath(admitted.ID))
	}
	if err == nil {
		err = s.store.persist(&admitted)
	}
	if err != nil {
		os.Remove(tmpName)
		s.store.forget(admitted.ID)
		os.RemoveAll(s.store.jobDir(admitted.ID))
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}

	s.reg.Counter(metricJobsAdmitted).Add(1)
	s.updateGauges()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	writeJSON(w, http.StatusAccepted, admitted)
}

// rejectOverload answers 429 with a Retry-After proportional to the
// backlog — the contract that the queue never grows unboundedly. The
// base delay (current queue depth) is spread with deterministic jitter
// over [base, 2*base] so a herd of synchronized clients does not come
// back in one stampede: the jitter source is a monotonic rejection
// counter, not a clock or math/rand, keeping replays reproducible.
func (s *Server) rejectOverload(w http.ResponseWriter, depth int) {
	s.reg.Counter(metricJobsRejected + "/overload").Add(1)
	base := depth
	if base < 1 {
		base = 1
	}
	n := s.rejectSeq.Add(1)
	retry := base + int(n%uint64(base+1))
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusTooManyRequests, apiError{Error: "queue full: retry later"})
}

// handleList is GET /jobs: all jobs in admission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.snapshotJobs())
}

// handleStatus is GET /jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleSAM is GET /jobs/{id}/sam: the finished job's SAM output. A job
// that is not done yet answers 409 with its current state.
func (s *Server) handleSAM(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	if j.State != StateDone {
		writeJSON(w, http.StatusConflict, j)
		return
	}
	f, err := os.Open(s.store.samPath(j.ID))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s", filepath.Base(s.store.samPath(j.ID))))
	io.Copy(w, f) //nolint:errcheck // client gone is not our error
}

// handleHealthz is GET /healthz: liveness — the process answers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is GET /readyz: readiness — flips to 503 while draining
// or when admission control would reject the next job anyway.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case !s.ready():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "overloaded")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleMetrics is GET /metrics: the service registry (scheduler
// counters and gauges plus every finished attempt's folded pipeline
// metrics) as deterministic JSON, or — with ?format=prom — as the
// Prometheus text exposition format for scrapers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.updateGauges()
	snap := s.reg.Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w) //nolint:errcheck // client gone is not our error
	case "prom":
		w.Header().Set("Content-Type", trace.PrometheusContentType)
		snap.WritePrometheus(w) //nolint:errcheck // client gone is not our error
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(
			"bad format %q (want json or prom)", format)})
	}
}

// handleTrace is GET /trace/{id}: the job's latest attempt as a Chrome
// trace-event file. Recorders live in memory only, so jobs from before
// a restart answer 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.recorder(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no trace for job (traces are in-memory and per-process)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChromeTrace(w, rec) //nolint:errcheck // client gone is not our error
}
