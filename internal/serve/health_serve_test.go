package serve

// Device-health and concurrent-scheduling suite: two jobs on disjoint
// partitions while one partition loses a device mid-job (watchdog kills
// first, breaker trips, failover inside the partition), the half-open
// canary readmission, the Retry-After jitter contract under two
// synchronized saturated clients, the Prometheus metrics format, and
// the ?devices= validation surface.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cl"
	"repro/internal/trace"
)

// threeDevicePool builds a pool of three identical renamed CPUs so the
// allocator can carve disjoint partitions and tests can name devices in
// fault plans and gauge assertions.
func threeDevicePool() []*cl.Device {
	names := []string{"pool-0", "pool-1", "pool-2"}
	devs := make([]*cl.Device, len(names))
	for i, n := range names {
		d := cl.SystemOneCPU()
		d.Name = n
		devs[i] = d
	}
	return devs
}

// metricsSnapshot fetches /metrics as a decoded JSON snapshot.
func metricsSnapshot(t *testing.T, url string) trace.Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap trace.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestServeConcurrentChaosPartitions is the end-to-end health story.
// Job A takes a two-device partition and carries a fault plan scoped to
// its second device: two throttled enqueues slow enough that the hang
// watchdog terminates them, then a device loss. The breaker on that
// device trips open, the job fails over inside its own partition, and
// job B — running concurrently on the remaining device — never sees any
// of it. Both SAMs must be byte-identical to the clean serial baseline.
// A follow-up job that needs the whole pool forces the quarantined
// device through the half-open canary and back to closed.
func TestServeConcurrentChaosPartitions(t *testing.T) {
	fx := newFixture(t, 40_000, 40)
	pool := threeDevicePool()
	s, ts := newServer(t, fx, t.TempDir(), func(c *Config) {
		c.Devices = pool
		c.StepDelay = 15 * time.Millisecond
	})
	defer s.Drain()

	// Watchdog math: SystemOneCPU has no fixed launch overhead, so a
	// throttle of 0.04 makes the enqueue take 25× its expected makespan —
	// past the default watchdog factor of 8. Two kills score the breaker;
	// the third enqueue's device loss trips it open immediately.
	hdr := map[string]string{"X-Repute-Faults": "device=2,throttle1-2=0.04,enq3=lost"}
	a := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=7&devices=2", hdr))
	b := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=7", nil))

	// Both jobs must actually overlap: disjoint partitions, one scheduler.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ja, _ := s.store.get(a.ID)
		jb, _ := s.store.get(b.ID)
		if ja.State == StateRunning && jb.State == StateRunning {
			break
		}
		if ja.State == StateDone && jb.State == StateDone {
			t.Log("jobs finished before overlap was observed; widen StepDelay to tighten this")
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never ran concurrently: A=%q B=%q", ja.State, jb.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	doneA := awaitState(t, ts.URL, a.ID, StateDone, StateFailed)
	doneB := awaitState(t, ts.URL, b.ID, StateDone, StateFailed)
	if doneA.State != StateDone {
		t.Fatalf("chaos job failed: %+v", doneA.Error)
	}
	if doneB.State != StateDone {
		t.Fatalf("concurrent clean job failed: %+v", doneB.Error)
	}
	if len(doneA.Partition) != 2 {
		t.Errorf("job A partition = %v, want 2 devices", doneA.Partition)
	}
	if len(doneB.Partition) != 1 {
		t.Errorf("job B partition = %v, want 1 device", doneB.Partition)
	}

	want := fx.baselineSAM(t, false, 5, 100)
	if !bytes.Equal(fetchSAM(t, ts.URL, a.ID), want) {
		t.Error("chaos job SAM differs from clean serial baseline")
	}
	if !bytes.Equal(fetchSAM(t, ts.URL, b.ID), want) {
		t.Error("concurrent clean job SAM differs from clean serial baseline")
	}

	// The lost device's breaker is open — quarantined out of new
	// partitions — and the health counters surfaced in /metrics.
	lost := doneA.Partition[1]
	var lostDev *cl.Device
	for _, d := range pool {
		if d.Name == lost {
			lostDev = d
		}
	}
	if lostDev == nil {
		t.Fatalf("partition device %q not in pool", lost)
	}
	if st := lostDev.BreakerState(); st != cl.BreakerOpen {
		t.Fatalf("lost device breaker = %v, want open", st)
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.Counters["watchdog_fired_total"] < 2 {
		t.Errorf("watchdog_fired_total = %d, want >= 2", snap.Counters["watchdog_fired_total"])
	}
	if snap.Counters["device_quarantined_total"] == 0 {
		t.Error("device_quarantined_total = 0, want breaker trip counted")
	}
	if got := snap.Gauges["device_breaker_state/"+lost]; got != float64(cl.BreakerOpen) {
		t.Errorf("device_breaker_state/%s = %v, want %v (open)", lost, got, float64(cl.BreakerOpen))
	}

	// A whole-pool job cannot run on two healthy devices: the allocator's
	// pass-over ticks the open breaker half-open and admits it as the
	// partition's canary. Its first clean enqueue closes the breaker.
	canary := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=7&devices=3", nil))
	canaryDone := awaitState(t, ts.URL, canary.ID, StateDone, StateFailed)
	if canaryDone.State != StateDone {
		t.Fatalf("canary job failed: %+v", canaryDone.Error)
	}
	if !bytes.Equal(fetchSAM(t, ts.URL, canary.ID), want) {
		t.Error("canary job SAM differs from clean serial baseline")
	}
	if st := lostDev.BreakerState(); st != cl.BreakerClosed {
		t.Fatalf("breaker after canary = %v, want closed (readmitted)", st)
	}
	snap = metricsSnapshot(t, ts.URL)
	if snap.Counters["device_readmitted_total"] == 0 {
		t.Error("device_readmitted_total = 0, want canary readmission counted")
	}
	if got := snap.Gauges["device_breaker_state/"+lost]; got != float64(cl.BreakerClosed) {
		t.Errorf("device_breaker_state/%s = %v after readmission, want 0", lost, got)
	}
}

// TestServeRetryAfterJitter saturates the queue and has two
// synchronized clients bounce off it back to back: their Retry-After
// values must differ (deterministic jitter spreads the stampede) while
// both stay within the documented [depth, 2*depth] span.
func TestServeRetryAfterJitter(t *testing.T) {
	fx := newFixture(t, 30_000, 24)
	s, ts := newServer(t, fx, t.TempDir(), func(c *Config) {
		c.MaxQueue = 1
		c.StepDelay = 30 * time.Millisecond
	})
	defer s.Drain()

	// Occupy the runner, then fill the single queue slot.
	a := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=4", nil))
	awaitState(t, ts.URL, a.ID, StateRunning, StateDone)
	b := decodeJob(t, submit(t, ts.URL, fx.fastq, "?batch=4", nil))

	retryAfter := func() int {
		resp := submit(t, ts.URL, fx.fastq, "?batch=4", nil)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
		}
		n, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
		}
		return n
	}
	first := retryAfter()
	second := retryAfter()
	if first == second {
		t.Errorf("two synchronized clients got identical Retry-After %d: no jitter, hello stampede", first)
	}
	for _, got := range []int{first, second} {
		if got < 1 || got > 2 {
			t.Errorf("Retry-After = %d, want within [depth, 2*depth] = [1, 2]", got)
		}
	}

	awaitState(t, ts.URL, a.ID, StateDone)
	awaitState(t, ts.URL, b.ID, StateDone)
}

// TestServeMetricsPromFormat asserts /metrics?format=prom speaks the
// Prometheus text exposition: the scrape content type, # TYPE-annotated
// families, and the same counters the JSON snapshot carries.
func TestServeMetricsPromFormat(t *testing.T) {
	fx := newFixture(t, 30_000, 16)
	s, ts := newServer(t, fx, t.TempDir(), nil)
	defer s.Drain()

	j := decodeJob(t, submit(t, ts.URL, fx.fastq, "", nil))
	if done := awaitState(t, ts.URL, j.ID, StateDone, StateFailed); done.State != StateDone {
		t.Fatalf("job failed: %+v", done.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != trace.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", got, trace.PrometheusContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE serve_jobs_admitted_total counter\n",
		"serve_jobs_admitted_total 1\n",
		"# TYPE serve_jobs_completed_total counter\n",
		"# TYPE device_breaker_state gauge\n",
		`device_breaker_state{segment="Intel Core i7-2600 (OpenCL)"} 0` + "\n",
		"# TYPE serve_job_sim_seconds histogram\n",
		`serve_job_sim_seconds_bucket{le="+Inf"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition lacks %q:\n%s", want, out)
		}
	}

	bad, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", bad.StatusCode)
	}
}

// TestServeDevicesParamValidation covers the partition-size request
// surface: out-of-range ?devices= is a 400, as is a fault plan whose
// device=K directive points outside the job's own partition.
func TestServeDevicesParamValidation(t *testing.T) {
	fx := newFixture(t, 30_000, 8)
	s, ts := newServer(t, fx, t.TempDir(), nil) // single-device pool
	defer s.Drain()

	for _, q := range []string{"?devices=0", "?devices=-1", "?devices=2", "?devices=banana"} {
		resp := submit(t, ts.URL, fx.fastq, q, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400", q, resp.StatusCode)
		}
	}

	// device=2 cannot target a 1-device partition, even on a bigger pool.
	resp := submit(t, ts.URL, fx.fastq, "?devices=1",
		map[string]string{"X-Repute-Faults": "device=2,enq1=oor"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-partition fault directive = %d, want 400", resp.StatusCode)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "exceeds the job's 1-device partition") {
		t.Errorf("error = %q, want partition-bound message", e.Error)
	}

	// In-range requests are accepted and recorded on the job.
	ok := decodeJob(t, submit(t, ts.URL, fx.fastq, "?devices=1", nil))
	if ok.Devices != 1 {
		t.Errorf("admitted job devices = %d, want 1", ok.Devices)
	}
	if done := awaitState(t, ts.URL, ok.ID, StateDone, StateFailed); done.State != StateDone {
		t.Fatalf("job failed: %+v", done.Error)
	}
}
