package suffix

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func suffixLess(text []byte, a, b int32) bool {
	return compareSuffixes(text, a, b) < 0
}

func checkSuffixArray(t *testing.T, text []byte, sa []int32) {
	t.Helper()
	if len(sa) != len(text) {
		t.Fatalf("len(sa) = %d want %d", len(sa), len(text))
	}
	seen := make([]bool, len(text))
	for _, v := range sa {
		if v < 0 || int(v) >= len(text) {
			t.Fatalf("sa entry %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("sa entry %d duplicated", v)
		}
		seen[v] = true
	}
	for i := 1; i < len(sa); i++ {
		if !suffixLess(text, sa[i-1], sa[i]) {
			t.Fatalf("suffixes out of order at %d: %q !< %q",
				i, text[sa[i-1]:], text[sa[i]:])
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	if sa := Build(nil); len(sa) != 0 {
		t.Errorf("Build(nil) = %v want empty", sa)
	}
}

func TestBuildSingle(t *testing.T) {
	sa := Build([]byte{2})
	if len(sa) != 1 || sa[0] != 0 {
		t.Errorf("Build single = %v want [0]", sa)
	}
}

func TestBuildKnown(t *testing.T) {
	// banana over codes: b=1,a=0,n=2 -> suffix array 5,3,1,0,4,2
	text := []byte{1, 0, 2, 0, 2, 0}
	want := []int32{5, 3, 1, 0, 4, 2}
	got := Build(text)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Build(banana) = %v want %v", got, want)
		}
	}
}

func TestBuildAllSame(t *testing.T) {
	text := bytes.Repeat([]byte{3}, 100)
	sa := Build(text)
	checkSuffixArray(t, text, sa)
	// All-same text sorts shortest suffix first.
	for i, v := range sa {
		if int(v) != len(text)-1-i {
			t.Fatalf("all-same sa[%d] = %d want %d", i, v, len(text)-1-i)
		}
	}
}

func TestBuildVsNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		alpha := 1 + rng.Intn(4)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte(rng.Intn(alpha))
		}
		got := Build(text)
		want := BuildNaive(text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d alpha=%d): sa[%d]=%d want %d\ntext=%v",
					trial, n, alpha, i, got[i], want[i], text)
			}
		}
	}
}

func TestBuildVsNaiveRepetitive(t *testing.T) {
	// Highly repetitive strings stress the recursion depth of SA-IS.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		motif := make([]byte, 2+rng.Intn(5))
		for i := range motif {
			motif[i] = byte(rng.Intn(4))
		}
		text := bytes.Repeat(motif, 20+rng.Intn(30))
		got := Build(text)
		checkSuffixArray(t, text, got)
	}
}

func TestBuildPropertyValidPermutationAndOrder(t *testing.T) {
	f := func(raw []byte) bool {
		text := make([]byte, len(raw))
		for i, b := range raw {
			text[i] = b & 3
		}
		sa := Build(text)
		if len(sa) != len(text) {
			return false
		}
		seen := make([]bool, len(text))
		for _, v := range sa {
			if v < 0 || int(v) >= len(text) || seen[v] {
				return false
			}
			seen[v] = true
		}
		for i := 1; i < len(sa); i++ {
			if !suffixLess(text, sa[i-1], sa[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildAdversarialStructures(t *testing.T) {
	// Structures known to stress suffix-array construction: Fibonacci
	// strings (maximal repetition structure), long unary runs with a
	// trailing change, alternating patterns, and nested squares.
	fib := func(n int) []byte {
		a, b := []byte{1}, []byte{1, 0}
		for len(b) < n {
			a, b = b, append(append([]byte{}, b...), a...)
		}
		return b[:n]
	}
	var cases [][]byte
	cases = append(cases, fib(377))
	run := bytes.Repeat([]byte{2}, 200)
	cases = append(cases, append(append([]byte{}, run...), 0))
	cases = append(cases, append([]byte{0}, run...))
	alt := make([]byte, 301)
	for i := range alt {
		alt[i] = byte(i % 2)
	}
	cases = append(cases, alt)
	sq := bytes.Repeat([]byte{0, 1, 0, 1, 2, 0, 1, 0, 1, 2, 3}, 30)
	cases = append(cases, sq)
	for i, text := range cases {
		got := Build(text)
		want := BuildNaive(text)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("case %d: sa[%d] = %d want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestBuildLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large input in -short mode")
	}
	rng := rand.New(rand.NewSource(3))
	text := make([]byte, 200_000)
	for i := range text {
		text[i] = byte(rng.Intn(4))
	}
	sa := Build(text)
	checkSuffixArray(t, text, sa)
}

func BenchmarkBuild1M(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	text := make([]byte, 1_000_000)
	for i := range text {
		text[i] = byte(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(text)
	}
	b.SetBytes(int64(len(text)))
}
