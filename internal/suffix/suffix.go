// Package suffix builds suffix arrays with the SA-IS algorithm (Nong,
// Zhang & Chan, "Two Efficient Algorithms for Linear Time Suffix Array
// Construction", 2011). SA-IS runs in O(n) time and is the standard
// construction used by read-mapping preprocessing stages; the FM-index in
// internal/fmindex is built from its output.
package suffix

// Build returns the suffix array of text: a permutation sa of 0..len(text)-1
// such that the suffixes text[sa[0]:], text[sa[1]:], ... are in increasing
// lexicographic order. text holds base codes (or any small-alphabet bytes);
// it is not modified. The virtual sentinel smaller than every symbol is
// handled internally and does not appear in the result.
func Build(text []byte) []int32 {
	n := len(text)
	if n == 0 {
		return []int32{}
	}
	if n == 1 {
		return []int32{0}
	}
	// Shift symbols up by one so 0 is free for the sentinel, append it.
	s := make([]int32, n+1)
	maxSym := int32(0)
	for i, b := range text {
		s[i] = int32(b) + 1
		if s[i] > maxSym {
			maxSym = s[i]
		}
	}
	s[n] = 0
	sa := make([]int32, n+1)
	sais(s, sa, int(maxSym)+1)
	// sa[0] is the sentinel suffix; drop it.
	out := make([]int32, n)
	copy(out, sa[1:])
	return out
}

const (
	lType = false
	sType = true
)

// sais computes the suffix array of s into sa. s must end with a unique
// smallest symbol (the sentinel) and all symbols must lie in [0, k).
func sais(s, sa []int32, k int) {
	n := len(s)
	if n == 1 {
		sa[0] = 0
		return
	}
	// Classify each position as S-type or L-type.
	t := make([]bool, n)
	t[n-1] = sType
	for i := n - 2; i >= 0; i-- {
		switch {
		case s[i] < s[i+1]:
			t[i] = sType
		case s[i] > s[i+1]:
			t[i] = lType
		default:
			t[i] = t[i+1]
		}
	}
	isLMS := func(i int) bool { return i > 0 && t[i] == sType && t[i-1] == lType }

	bkt := make([]int32, k)
	bucketCounts := func() {
		for i := range bkt {
			bkt[i] = 0
		}
		for _, c := range s {
			bkt[c]++
		}
	}
	bucketTails := func() {
		sum := int32(0)
		for i := range bkt {
			sum += bkt[i]
			bkt[i] = sum
		}
	}
	bucketHeads := func() {
		sum := int32(0)
		for i := range bkt {
			c := bkt[i]
			bkt[i] = sum
			sum += c
		}
	}

	const empty = int32(-1)

	// induceSort sorts all suffixes given the LMS suffixes already placed
	// in sa (everything else must be empty).
	induce := func() {
		// Induce L-type suffixes left to right from bucket heads.
		bucketCounts()
		bucketHeads()
		for i := 0; i < n; i++ {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if t[j-1] == lType {
				c := s[j-1]
				sa[bkt[c]] = j - 1
				bkt[c]++
			}
		}
		// Induce S-type suffixes right to left from bucket tails.
		bucketCounts()
		bucketTails()
		for i := n - 1; i >= 0; i-- {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if t[j-1] == sType {
				c := s[j-1]
				bkt[c]--
				sa[bkt[c]] = j - 1
			}
		}
	}

	// Stage 1: place LMS suffixes at bucket tails in text order, induce.
	for i := range sa {
		sa[i] = empty
	}
	bucketCounts()
	bucketTails()
	for i := 1; i < n; i++ {
		if isLMS(i) {
			c := s[i]
			bkt[c]--
			sa[bkt[c]] = int32(i)
		}
	}
	sa[0] = int32(n - 1) // the sentinel suffix sorts first
	induce()

	// Stage 2: compact the sorted LMS suffixes and name their substrings.
	nLMS := 0
	for i := 0; i < n; i++ {
		if isLMS(int(sa[i])) {
			sa[nLMS] = sa[i]
			nLMS++
		}
	}
	// Use the tail of sa as the name array (indexed by position/2).
	names := sa[nLMS:]
	for i := range names {
		names[i] = empty
	}
	lmsEqual := func(a, b int) bool {
		// Compare LMS substrings starting at a and b (inclusive of the
		// next LMS position). The sentinel's LMS substring is unique.
		if a == n-1 || b == n-1 {
			return false
		}
		for d := 0; ; d++ {
			aEnd := isLMS(a + d)
			bEnd := isLMS(b + d)
			if d > 0 && aEnd && bEnd {
				return true
			}
			if aEnd != bEnd || s[a+d] != s[b+d] || t[a+d] != t[b+d] {
				return false
			}
		}
	}
	name := int32(0)
	prev := -1
	for i := 0; i < nLMS; i++ {
		pos := int(sa[i])
		if prev >= 0 && !lmsEqual(prev, pos) {
			name++
		}
		names[pos/2] = name
		prev = pos
	}
	nNames := int(name) + 1

	// Build the reduced string: names of LMS substrings in text order.
	s1 := make([]int32, 0, nLMS)
	lmsPos := make([]int32, 0, nLMS)
	for i := 1; i < n; i++ {
		if isLMS(i) {
			s1 = append(s1, names[i/2])
			lmsPos = append(lmsPos, int32(i))
		}
	}

	// Stage 3: order the LMS suffixes, recursing when names repeat.
	sa1 := make([]int32, len(s1))
	if nNames == len(s1) {
		for i, nm := range s1 {
			sa1[nm] = int32(i)
		}
	} else {
		sais(s1, sa1, nNames)
	}

	// Stage 4: induce the final order from the sorted LMS suffixes.
	for i := range sa {
		sa[i] = empty
	}
	bucketCounts()
	bucketTails()
	for i := len(sa1) - 1; i >= 0; i-- {
		j := lmsPos[sa1[i]]
		c := s[j]
		bkt[c]--
		sa[bkt[c]] = j
	}
	induce()
}

// BuildNaive returns the suffix array via direct comparison sorting.
// It is O(n^2 log n) worst case and exists as the test oracle for Build.
func BuildNaive(text []byte) []int32 {
	sa := make([]int32, len(text))
	for i := range sa {
		sa[i] = int32(i)
	}
	// Insertion of sort.Slice here would drag in reflection on a hot loop;
	// the oracle is only used on small inputs, so simplicity wins.
	quickSortSuffixes(text, sa)
	return sa
}

func quickSortSuffixes(text []byte, sa []int32) {
	if len(sa) < 2 {
		return
	}
	pivot := sa[len(sa)/2]
	var less, eq, greater []int32
	for _, s := range sa {
		switch compareSuffixes(text, s, pivot) {
		case -1:
			less = append(less, s)
		case 0:
			eq = append(eq, s)
		default:
			greater = append(greater, s)
		}
	}
	quickSortSuffixes(text, less)
	quickSortSuffixes(text, greater)
	copy(sa, less)
	copy(sa[len(less):], eq)
	copy(sa[len(less)+len(eq):], greater)
}

func compareSuffixes(text []byte, a, b int32) int {
	if a == b {
		return 0
	}
	for int(a) < len(text) && int(b) < len(text) {
		if text[a] != text[b] {
			if text[a] < text[b] {
				return -1
			}
			return 1
		}
		a++
		b++
	}
	// The shorter suffix (which ran out first) sorts earlier.
	if int(a) == len(text) {
		return -1
	}
	return 1
}
