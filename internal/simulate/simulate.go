// Package simulate generates the synthetic workloads that stand in for
// the paper's data: chromosome 21 of GRCh38 becomes a configurable
// reference with explicit repeat structure and GC bias, and the NCBI read
// sets ERR012100_1 (length 100) and SRR826460_1 (length 150) become
// error-profiled read samplers with ground-truth origins.
//
// What matters to filtration behaviour is the k-mer frequency spectrum of
// the reference (how repetitive seeds are) and the per-read error load;
// both are explicit knobs here, which DESIGN.md documents as the data
// substitution.
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/dna"
)

// RefConfig controls synthetic reference generation.
type RefConfig struct {
	Length int
	Seed   int64
	// GC is the target G+C fraction of the random backbone (0..1);
	// 0 means the human-like default of 0.41.
	GC float64
	// RepeatFraction is the fraction of the final sequence covered by
	// copies of repeat motifs (human chr21 is roughly half repetitive);
	// 0 disables repeats, negative values also disable them.
	RepeatFraction float64
	// RepeatMinLen/RepeatMaxLen bound motif lengths (defaults 150/800,
	// spanning SINE- to LINE-like scales at reduced size).
	RepeatMinLen, RepeatMaxLen int
	// RepeatDivergence is the per-base substitution probability applied
	// to each placed repeat copy (default 0.02).
	RepeatDivergence float64
	// HighCopyFraction covers this fraction of the genome with a few
	// SINE/Alu-like families: one motif copied many times with low
	// divergence. These are what make reads multi-map to dozens of
	// locations, the regime that separates all-mappers from best-mappers
	// under the §III-A metric. 0 disables; negative also disables.
	HighCopyFraction float64
	// HighCopyMotifLen is the family motif length (default 300).
	HighCopyMotifLen int
	// HighCopyDivergence is the per-base mutation rate of family copies
	// (default 0.01, keeping copies within typical error budgets).
	HighCopyDivergence float64
}

func (c RefConfig) withDefaults() RefConfig {
	if c.GC == 0 {
		c.GC = 0.41
	}
	if c.RepeatMinLen == 0 {
		c.RepeatMinLen = 150
	}
	if c.RepeatMaxLen == 0 {
		c.RepeatMaxLen = 800
	}
	if c.RepeatDivergence == 0 {
		c.RepeatDivergence = 0.02
	}
	if c.HighCopyMotifLen == 0 {
		c.HighCopyMotifLen = 200
	}
	if c.HighCopyDivergence == 0 {
		c.HighCopyDivergence = 0.005
	}
	return c
}

// Chr21Like returns the configuration used throughout the experiments as
// the chromosome-21 stand-in at the given scale (chr21 itself is about
// 46.7 Mbp; the default experiment scale is much smaller).
func Chr21Like(length int, seed int64) RefConfig {
	return RefConfig{
		Length:           length,
		Seed:             seed,
		GC:               0.41,
		RepeatFraction:   0.25,
		HighCopyFraction: 0.30,
	}
}

// Reference generates a synthetic reference as base codes.
func Reference(cfg RefConfig) []byte {
	cfg = cfg.withDefaults()
	if cfg.Length <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ref := make([]byte, cfg.Length)
	for i := range ref {
		ref[i] = randBase(rng, cfg.GC)
	}
	placeModerate(rng, ref, cfg)
	// High-copy families go in last so their copies stay coherent — these
	// create the multi-mapping reads that separate all-mappers from
	// best-mappers under the §III-A metric.
	if cfg.HighCopyFraction > 0 {
		covered := 0
		target := int(float64(cfg.Length) * cfg.HighCopyFraction)
		families := 3
		for f := 0; f < families && cfg.HighCopyMotifLen*4 < cfg.Length; f++ {
			motifLen := cfg.HighCopyMotifLen
			src := rng.Intn(cfg.Length - motifLen)
			motif := append([]byte(nil), ref[src:src+motifLen]...)
			// Conservation is position-dependent, as in real transposon
			// families (conserved functional cores, fast-decaying
			// flanks): per-position mutation-rate multipliers make some
			// k-mers of the family near-unique and others ubiquitous —
			// the frequency landscape optimal seed placement exploits.
			profile := make([]float64, motifLen)
			for i := range profile {
				profile[i] = rng.ExpFloat64() * 2
			}
			for covered < target*(f+1)/families {
				// Copies are frequently truncated (as 5'-truncated Alu
				// elements are), which litters the sequence with repeat
				// boundaries — the regime where optimal seed placement
				// beats serial heuristics.
				cpLen := motifLen
				if rng.Intn(2) == 0 {
					cpLen = motifLen*2/5 + rng.Intn(motifLen*3/5)
				}
				cp := motif[motifLen-cpLen:]
				dst := rng.Intn(cfg.Length - cpLen)
				// Each copy has an age: older copies diverged further,
				// so read-to-copy distances spread into strata the way
				// real transposon families do.
				age := rng.Float64() * 2 * cfg.HighCopyDivergence
				prof := profile[motifLen-cpLen:]
				for i, c := range cp {
					if rng.Float64() < age*prof[i] {
						c = mutateBase(rng, c)
					}
					ref[dst+i] = c
				}
				covered += cpLen
			}
		}
	}
	return ref
}

// placeModerate scatters medium-copy-number repeat motifs until the
// configured fraction of the sequence is covered.
func placeModerate(rng *rand.Rand, ref []byte, cfg RefConfig) {
	if cfg.RepeatFraction <= 0 {
		return
	}
	covered := 0
	target := int(float64(cfg.Length) * cfg.RepeatFraction)
	for covered < target {
		motifLen := cfg.RepeatMinLen + rng.Intn(cfg.RepeatMaxLen-cfg.RepeatMinLen+1)
		if motifLen > cfg.Length/4 {
			motifLen = cfg.Length / 4
		}
		if motifLen < 10 {
			break
		}
		src := rng.Intn(cfg.Length - motifLen)
		motif := append([]byte(nil), ref[src:src+motifLen]...)
		copies := 2 + rng.Intn(8)
		for k := 0; k < copies && covered < target; k++ {
			dst := rng.Intn(cfg.Length - motifLen)
			for i, c := range motif {
				if rng.Float64() < cfg.RepeatDivergence {
					c = mutateBase(rng, c)
				}
				ref[dst+i] = c
			}
			covered += motifLen
		}
	}
}

func randBase(rng *rand.Rand, gc float64) byte {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return dna.C
		}
		return dna.G
	}
	if rng.Intn(2) == 0 {
		return dna.A
	}
	return dna.T
}

func mutateBase(rng *rand.Rand, c byte) byte {
	return (c + 1 + byte(rng.Intn(3))) % 4
}

// ReadProfile describes a sequencing error model.
type ReadProfile struct {
	Name    string
	Length  int
	SubRate float64 // per-base substitution probability
	InsRate float64 // per-base insertion probability
	DelRate float64 // per-base deletion probability
}

// The two dataset stand-ins used across the experiments. Rates are
// Illumina-like; ERR012100_1 is an older GAII run (higher error),
// SRR826460_1 a HiSeq run with longer reads.
var (
	ERR012100 = ReadProfile{Name: "ERR012100_1", Length: 100, SubRate: 0.012, InsRate: 0.0008, DelRate: 0.0008}
	SRR826460 = ReadProfile{Name: "SRR826460_1", Length: 150, SubRate: 0.009, InsRate: 0.0006, DelRate: 0.0006}
)

// Origin records where a simulated read was sampled from — the ground
// truth used by sensitivity tests (the paper's accuracy metric instead
// compares against the RazerS3 gold standard, as internal/eval does).
type Origin struct {
	Pos    int32 // leftmost reference position of the sampled window
	Strand byte  // '+' or '-'
	Edits  uint8 // number of errors introduced
}

// ReadSet is a simulated workload with ground truth.
type ReadSet struct {
	Profile ReadProfile
	Reads   [][]byte // base codes, each Profile.Length long
	Origins []Origin
}

// Reads samples n reads from ref under the profile. Errors are introduced
// per base; indels shift the sampled window so every read has exactly
// Profile.Length bases, as real reads do.
func Reads(ref []byte, n int, prof ReadProfile, seed int64) (ReadSet, error) {
	margin := prof.Length + prof.Length/4 + 8
	if len(ref) < margin {
		return ReadSet{}, fmt.Errorf("simulate: reference length %d too short for %d-bp reads",
			len(ref), prof.Length)
	}
	rng := rand.New(rand.NewSource(seed))
	set := ReadSet{
		Profile: prof,
		Reads:   make([][]byte, 0, n),
		Origins: make([]Origin, 0, n),
	}
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(ref) - margin)
		window := ref[pos : pos+margin]
		read, edits := applyErrors(rng, window, prof)
		strand := byte('+')
		if rng.Intn(2) == 1 {
			strand = '-'
			read = dna.ReverseComplement(read)
		}
		set.Reads = append(set.Reads, read)
		set.Origins = append(set.Origins, Origin{Pos: int32(pos), Strand: strand, Edits: edits})
	}
	return set, nil
}

// PairOrigin is the ground truth of one simulated fragment.
type PairOrigin struct {
	// Pos1/Pos2 are the leftmost reference positions of the two mates;
	// Strand1/Strand2 their strands (always opposite, FR orientation).
	Pos1, Pos2       int32
	Strand1, Strand2 byte
	Insert           int32
	Edits1, Edits2   uint8
}

// PairSet is a simulated paired-end workload.
type PairSet struct {
	Profile ReadProfile
	Reads1  [][]byte
	Reads2  [][]byte
	Origins []PairOrigin
}

// PairedReads samples n FR fragments: mate 1 reads the fragment start on
// one strand, mate 2 the fragment end on the other, with the insert
// length normal(insertMean, insertSD) clamped to at least 2×read length.
func PairedReads(ref []byte, n int, prof ReadProfile, insertMean, insertSD float64, seed int64) (PairSet, error) {
	minInsert := 2 * prof.Length
	margin := int(insertMean+4*insertSD) + prof.Length
	if len(ref) < margin+8 {
		return PairSet{}, fmt.Errorf("simulate: reference length %d too short for inserts ~%.0f",
			len(ref), insertMean)
	}
	rng := rand.New(rand.NewSource(seed))
	set := PairSet{Profile: prof}
	for i := 0; i < n; i++ {
		insert := int(insertMean + rng.NormFloat64()*insertSD)
		if insert < minInsert {
			insert = minInsert
		}
		pos := rng.Intn(len(ref) - insert - prof.Length/4 - 8)
		w1 := ref[pos : pos+prof.Length+prof.Length/4+8]
		r1, e1 := applyErrors(rng, w1, prof)
		// Mate 2 reads the fragment end inward: simulate from the
		// reverse complement of the window's tail.
		tail := dna.ReverseComplement(ref[pos+insert-prof.Length-prof.Length/8-4 : pos+insert])
		r2, e2 := applyErrors(rng, tail, prof)

		o := PairOrigin{
			Pos1: int32(pos), Strand1: '+',
			Pos2: int32(pos + insert - prof.Length), Strand2: '-',
			Insert: int32(insert),
			Edits1: e1, Edits2: e2,
		}
		// Half the fragments come from the other genomic strand, where
		// the sequencer's "read 1" is the reverse-strand mate: the roles
		// swap, the sequences themselves are already correct.
		if rng.Intn(2) == 1 {
			r1, r2 = r2, r1
			o.Pos1, o.Pos2 = o.Pos2, o.Pos1
			o.Strand1, o.Strand2 = '-', '+'
			o.Edits1, o.Edits2 = o.Edits2, o.Edits1
		}
		set.Reads1 = append(set.Reads1, r1)
		set.Reads2 = append(set.Reads2, r2)
		set.Origins = append(set.Origins, o)
	}
	return set, nil
}

// applyErrors copies exactly prof.Length bases out of window, injecting
// substitutions, insertions and deletions at the profile rates.
func applyErrors(rng *rand.Rand, window []byte, prof ReadProfile) ([]byte, uint8) {
	out := make([]byte, 0, prof.Length)
	var edits uint8
	src := 0
	for len(out) < prof.Length && src < len(window) {
		r := rng.Float64()
		switch {
		case r < prof.InsRate:
			out = append(out, byte(rng.Intn(4)))
			edits++
		case r < prof.InsRate+prof.DelRate:
			src++ // skip a reference base
			edits++
		case r < prof.InsRate+prof.DelRate+prof.SubRate:
			out = append(out, mutateBase(rng, window[src]))
			src++
			edits++
		default:
			out = append(out, window[src])
			src++
		}
	}
	for len(out) < prof.Length {
		out = append(out, byte(rng.Intn(4)))
		edits++
	}
	return out, edits
}
