package simulate

import (
	"math"
	"testing"

	"repro/internal/dna"
)

func TestReferenceLengthAndAlphabet(t *testing.T) {
	ref := Reference(RefConfig{Length: 10_000, Seed: 1})
	if len(ref) != 10_000 {
		t.Fatalf("length %d want 10000", len(ref))
	}
	for i, c := range ref {
		if c > 3 {
			t.Fatalf("invalid code %d at %d", c, i)
		}
	}
}

func TestReferenceDeterministic(t *testing.T) {
	a := Reference(Chr21Like(5000, 42))
	b := Reference(Chr21Like(5000, 42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := Reference(Chr21Like(5000, 43))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical references")
	}
}

func TestReferenceGCBias(t *testing.T) {
	for _, gc := range []float64{0.3, 0.5, 0.7} {
		ref := Reference(RefConfig{Length: 200_000, Seed: 7, GC: gc, RepeatFraction: -1})
		got := dna.GCContent(ref)
		if math.Abs(got-gc) > 0.02 {
			t.Errorf("GC target %v got %v", gc, got)
		}
	}
}

func TestReferenceRepeatsIncreaseKmerFrequency(t *testing.T) {
	// A repetitive reference must have more duplicated 16-mers than an
	// iid one of the same length.
	count := func(ref []byte) int {
		seen := map[string]int{}
		for i := 0; i+16 <= len(ref); i += 4 {
			seen[string(ref[i:i+16])]++
		}
		dup := 0
		for _, c := range seen {
			if c > 1 {
				dup += c
			}
		}
		return dup
	}
	flat := Reference(RefConfig{Length: 100_000, Seed: 3, RepeatFraction: -1})
	repetitive := Reference(RefConfig{Length: 100_000, Seed: 3, RepeatFraction: 0.5})
	if count(repetitive) <= count(flat)*2 {
		t.Errorf("repeats did not raise duplication: flat %d repetitive %d",
			count(flat), count(repetitive))
	}
}

func TestReferenceEmpty(t *testing.T) {
	if ref := Reference(RefConfig{Length: 0}); len(ref) != 0 {
		t.Errorf("zero length produced %d bases", len(ref))
	}
}

func TestReadsBasic(t *testing.T) {
	ref := Reference(Chr21Like(50_000, 1))
	set, err := Reads(ref, 500, ERR012100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Reads) != 500 || len(set.Origins) != 500 {
		t.Fatalf("got %d reads / %d origins", len(set.Reads), len(set.Origins))
	}
	plus, minus := 0, 0
	for i, r := range set.Reads {
		if len(r) != 100 {
			t.Fatalf("read %d length %d want 100", i, len(r))
		}
		o := set.Origins[i]
		switch o.Strand {
		case '+':
			plus++
		case '-':
			minus++
		default:
			t.Fatalf("read %d bad strand %q", i, o.Strand)
		}
		if int(o.Pos) < 0 || int(o.Pos) >= len(ref) {
			t.Fatalf("read %d origin %d out of range", i, o.Pos)
		}
	}
	if plus == 0 || minus == 0 {
		t.Errorf("strand balance broken: %d+/%d-", plus, minus)
	}
}

func TestReadsMatchOriginWithinEditBudget(t *testing.T) {
	// A simulated read must align back to its origin window with edit
	// distance <= recorded Edits (checked by naive DP on the window).
	ref := Reference(Chr21Like(30_000, 9))
	set, err := Reads(ref, 100, SRR826460, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range set.Reads {
		o := set.Origins[i]
		read := r
		if o.Strand == '-' {
			read = dna.ReverseComplement(r)
		}
		wEnd := int(o.Pos) + len(read) + int(o.Edits) + 2
		if wEnd > len(ref) {
			wEnd = len(ref)
		}
		window := ref[o.Pos:wEnd]
		if d := editDistancePrefix(read, window); d > int(o.Edits) {
			t.Fatalf("read %d: distance %d > recorded edits %d", i, d, o.Edits)
		}
	}
}

// editDistancePrefix returns min edit distance of p against any prefix of w.
func editDistancePrefix(p, w []byte) int {
	prev := make([]int, len(w)+1)
	cur := make([]int, len(w)+1)
	for i := 1; i <= len(p); i++ {
		cur[0] = i
		for j := 1; j <= len(w); j++ {
			cost := 1
			if p[i-1] == w[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if prev[j]+1 < best {
				best = prev[j] + 1
			}
			if cur[j-1]+1 < best {
				best = cur[j-1] + 1
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	min := prev[0]
	for _, v := range prev {
		if v < min {
			min = v
		}
	}
	return min
}

func TestReadsErrorRateMatchesProfile(t *testing.T) {
	ref := Reference(RefConfig{Length: 100_000, Seed: 4, RepeatFraction: -1})
	prof := ReadProfile{Name: "test", Length: 100, SubRate: 0.02}
	set, err := Reads(ref, 2000, prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	totalEdits := 0
	for _, o := range set.Origins {
		totalEdits += int(o.Edits)
	}
	perBase := float64(totalEdits) / float64(2000*100)
	if math.Abs(perBase-0.02) > 0.004 {
		t.Errorf("observed error rate %v want ~0.02", perBase)
	}
}

func TestPairedReadsGeometry(t *testing.T) {
	ref := Reference(Chr21Like(60_000, 12))
	set, err := PairedReads(ref, 300, ERR012100, 420, 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Reads1) != 300 || len(set.Reads2) != 300 || len(set.Origins) != 300 {
		t.Fatalf("set sizes %d/%d/%d", len(set.Reads1), len(set.Reads2), len(set.Origins))
	}
	swapped := 0
	for i, o := range set.Origins {
		if len(set.Reads1[i]) != 100 || len(set.Reads2[i]) != 100 {
			t.Fatalf("fragment %d: read lengths %d/%d", i, len(set.Reads1[i]), len(set.Reads2[i]))
		}
		if o.Strand1 == o.Strand2 {
			t.Fatalf("fragment %d: same strands", i)
		}
		if o.Insert < 200 || o.Insert > 700 {
			t.Fatalf("fragment %d: insert %d outside plausible band", i, o.Insert)
		}
		// The forward mate must be the leftmost one.
		fwdPos, revPos := o.Pos1, o.Pos2
		if o.Strand1 == '-' {
			fwdPos, revPos = o.Pos2, o.Pos1
			swapped++
		}
		if fwdPos > revPos {
			t.Fatalf("fragment %d: forward mate at %d right of reverse at %d", i, fwdPos, revPos)
		}
		if got := revPos + 100 - fwdPos; got != o.Insert {
			t.Fatalf("fragment %d: geometry says insert %d, origin says %d", i, got, o.Insert)
		}
	}
	if swapped == 0 || swapped == 300 {
		t.Errorf("strand balance broken: %d/300 swapped", swapped)
	}
}

func TestPairedReadsMatchOrigins(t *testing.T) {
	// Each mate must align near its origin within its edit budget.
	ref := Reference(Chr21Like(50_000, 15))
	set, err := PairedReads(ref, 60, ERR012100, 400, 30, 16)
	if err != nil {
		t.Fatal(err)
	}
	check := func(read []byte, pos int32, strand byte, edits uint8) bool {
		r := read
		if strand == '-' {
			r = dna.ReverseComplement(read)
		}
		end := int(pos) + len(r) + int(edits) + 4
		if end > len(ref) {
			end = len(ref)
		}
		start := int(pos) - int(edits) - 4
		if start < 0 {
			start = 0
		}
		return editDistancePrefix(r, ref[start:end]) <= int(edits)+2
	}
	for i, o := range set.Origins {
		if !check(set.Reads1[i], o.Pos1, o.Strand1, o.Edits1) {
			t.Fatalf("fragment %d mate 1 does not align at its origin", i)
		}
		if !check(set.Reads2[i], o.Pos2, o.Strand2, o.Edits2) {
			t.Fatalf("fragment %d mate 2 does not align at its origin", i)
		}
	}
}

func TestPairedReadsRefTooShort(t *testing.T) {
	if _, err := PairedReads(make([]byte, 300), 5, ERR012100, 400, 30, 1); err == nil {
		t.Error("short reference accepted for paired reads")
	}
}

func TestReadsRefTooShort(t *testing.T) {
	if _, err := Reads(make([]byte, 50), 10, ERR012100, 1); err == nil {
		t.Error("short reference accepted")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []ReadProfile{ERR012100, SRR826460} {
		if p.Length <= 0 || p.SubRate <= 0 || p.Name == "" {
			t.Errorf("profile %+v not sane", p)
		}
	}
	if ERR012100.Length != 100 || SRR826460.Length != 150 {
		t.Error("profile lengths do not match the paper's datasets")
	}
}
