// Package qgram provides a q-gram position index over a DNA text: every
// occurrence position of every length-q substring, grouped by gram. It is
// the substrate of the hashing-based mappers in the paper's comparison
// (RazerS3's SWIFT-style counting filter and Hobbes3's signature
// selection), which the paper contrasts with the FM-index mappers.
package qgram

import "fmt"

// MaxQ bounds the gram length so the bucket directory stays addressable
// (4^q int32 entries).
const MaxQ = 12

// Index maps q-grams to their sorted occurrence positions.
type Index struct {
	q      int
	n      int
	starts []int32 // bucket boundaries, len 4^q + 1
	pos    []int32 // positions grouped by gram, each group ascending
}

// Hash packs q base codes into the bucket number of the gram.
func Hash(codes []byte) uint32 {
	var h uint32
	for _, c := range codes {
		h = h<<2 | uint32(c)
	}
	return h
}

// Build indexes every q-gram of text (base codes 0..3).
func Build(text []byte, q int) (*Index, error) {
	if q < 1 || q > MaxQ {
		return nil, fmt.Errorf("qgram: q=%d out of range 1..%d", q, MaxQ)
	}
	n := len(text)
	buckets := 1 << uint(2*q)
	ix := &Index{q: q, n: n, starts: make([]int32, buckets+1)}
	if n < q {
		ix.pos = []int32{}
		return ix, nil
	}
	nGrams := n - q + 1
	mask := uint32(buckets - 1)
	// Pass 1: count.
	h := Hash(text[:q])
	ix.starts[h+1]++
	for i := 1; i < nGrams; i++ {
		h = (h<<2 | uint32(text[i+q-1])) & mask
		ix.starts[h+1]++
	}
	for b := 1; b <= buckets; b++ {
		ix.starts[b] += ix.starts[b-1]
	}
	// Pass 2: place. Scanning left to right keeps each bucket ascending.
	ix.pos = make([]int32, nGrams)
	next := make([]int32, buckets)
	copy(next, ix.starts[:buckets])
	h = Hash(text[:q])
	ix.pos[next[h]] = 0
	next[h]++
	for i := 1; i < nGrams; i++ {
		h = (h<<2 | uint32(text[i+q-1])) & mask
		ix.pos[next[h]] = int32(i)
		next[h]++
	}
	return ix, nil
}

// Q returns the gram length.
func (ix *Index) Q() int { return ix.q }

// Len returns the indexed text length.
func (ix *Index) Len() int { return ix.n }

// Positions returns the ascending occurrence positions of the gram with
// the given hash. The slice aliases index storage; do not modify it.
func (ix *Index) Positions(h uint32) []int32 {
	return ix.pos[ix.starts[h]:ix.starts[h+1]]
}

// Count returns the occurrence count of the gram without materialising
// the positions.
func (ix *Index) Count(h uint32) int {
	return int(ix.starts[h+1] - ix.starts[h])
}

// SizeBytes reports the index memory footprint for device accounting.
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.starts)+len(ix.pos)) * 4
}
