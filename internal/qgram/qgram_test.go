package qgram

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dna"
)

func naivePositions(text, gram []byte) []int32 {
	var out []int32
	for i := 0; i+len(gram) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(gram)], gram) {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestHash(t *testing.T) {
	if got := Hash(dna.MustEncode("AAAA")); got != 0 {
		t.Errorf("Hash(AAAA) = %d want 0", got)
	}
	if got := Hash(dna.MustEncode("T")); got != 3 {
		t.Errorf("Hash(T) = %d want 3", got)
	}
	if got := Hash(dna.MustEncode("CA")); got != 4 {
		t.Errorf("Hash(CA) = %d want 4", got)
	}
}

func TestBuildRejectsBadQ(t *testing.T) {
	text := dna.MustEncode("ACGT")
	for _, q := range []int{0, -1, MaxQ + 1} {
		if _, err := Build(text, q); err == nil {
			t.Errorf("Build(q=%d) accepted", q)
		}
	}
}

func TestShortText(t *testing.T) {
	ix, err := Build(dna.MustEncode("AC"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Positions(Hash(dna.MustEncode("ACGT"))); len(got) != 0 {
		t.Errorf("short text produced positions %v", got)
	}
}

func TestPositionsVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(500)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte(rng.Intn(4))
		}
		q := 1 + rng.Intn(6)
		ix, err := Build(text, q)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			gram := make([]byte, q)
			for i := range gram {
				gram[i] = byte(rng.Intn(4))
			}
			got := ix.Positions(Hash(gram))
			want := naivePositions(text, gram)
			if len(got) != len(want) {
				t.Fatalf("q=%d gram %v: %d positions want %d", q, gram, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d gram %v: positions %v want %v", q, gram, got, want)
				}
			}
			if ix.Count(Hash(gram)) != len(want) {
				t.Fatalf("Count mismatch for gram %v", gram)
			}
		}
	}
}

func TestPositionsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := make([]byte, 2000)
	for i := range text {
		text[i] = byte(rng.Intn(2)) // low entropy: big buckets
	}
	ix, err := Build(text, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for h := uint32(0); h < 1<<10; h++ {
		ps := ix.Positions(h)
		total += len(ps)
		for i := 1; i < len(ps); i++ {
			if ps[i] <= ps[i-1] {
				t.Fatalf("bucket %d not ascending: %v", h, ps)
			}
		}
	}
	if total != len(text)-5+1 {
		t.Errorf("total positions %d want %d", total, len(text)-5+1)
	}
}

func TestSizeBytes(t *testing.T) {
	ix, err := Build(dna.MustEncode("ACGTACGTAC"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() <= 0 || ix.Q() != 3 || ix.Len() != 10 {
		t.Errorf("metadata wrong: size %d q %d len %d", ix.SizeBytes(), ix.Q(), ix.Len())
	}
}

func BenchmarkBuildQ11(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	text := make([]byte, 1_000_000)
	for i := range text {
		text[i] = byte(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(text, 11); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(text)))
}
