package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Event is one recorded trace event. Phase is 'X' for a complete span
// (Start/Dur meaningful) or 'i' for an instant (Start meaningful, Dur
// zero), matching the Chrome trace-event phases the exporter emits.
type Event struct {
	Lane  string
	Name  string
	Phase byte
	Start float64
	Dur   float64
	Attrs []Attr
}

// Recorder is the recording Tracer. It keeps every event in memory and
// exports them deterministically: events are stable-sorted by lane name,
// preserving each lane's append order. Because every lane has exactly one
// writer goroutine at a time (a device's host goroutine, or the pipeline
// coordinator), per-lane order is the device's ordinal schedule — the
// same schedule fault injection counts on — so a serial and a parallel
// run of one workload export byte-identical traces.
//
// Instants carry no simulated duration; the recorder pins each one to its
// lane's frontier (the largest span end recorded on the lane so far), so
// a fault instant lands exactly where the failed operation would have
// run.
type Recorder struct {
	mu       sync.Mutex
	events   []Event            // guarded by mu
	open     map[SpanID]int     // open Begin spans -> index into events; guarded by mu
	nextID   SpanID             // guarded by mu
	frontier map[string]float64 // guarded by mu
	itemOps  *Histogram
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		open:     map[SpanID]int{},
		frontier: map[string]float64{},
		itemOps:  NewHistogram(OpsBuckets()),
	}
}

// Span implements Tracer.
func (r *Recorder) Span(lane, name string, start, dur float64, attrs ...Attr) {
	r.mu.Lock()
	r.events = append(r.events, Event{
		Lane: lane, Name: name, Phase: 'X', Start: start, Dur: dur,
		Attrs: append([]Attr(nil), attrs...),
	})
	if end := start + dur; end > r.frontier[lane] {
		r.frontier[lane] = end
	}
	r.mu.Unlock()
}

// Begin implements Tracer: it opens a span whose duration is fixed by a
// later End call, reserving the span's place in lane order now.
func (r *Recorder) Begin(lane, name string, start float64, attrs ...Attr) SpanID {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.open[id] = len(r.events)
	r.events = append(r.events, Event{
		Lane: lane, Name: name, Phase: 'X', Start: start, Dur: -1,
		Attrs: append([]Attr(nil), attrs...),
	})
	if start > r.frontier[lane] {
		r.frontier[lane] = start
	}
	r.mu.Unlock()
	return id
}

// End implements Tracer: it closes a span opened by Begin. Unknown ids
// (including the Noop tracer's 0) are ignored.
func (r *Recorder) End(id SpanID, end float64, attrs ...Attr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.open[id]
	if !ok {
		return
	}
	delete(r.open, id)
	ev := &r.events[i]
	ev.Dur = end - ev.Start
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	ev.Attrs = append(ev.Attrs, attrs...)
	if end > r.frontier[ev.Lane] {
		r.frontier[ev.Lane] = end
	}
}

// Instant implements Tracer: the event is pinned to the lane's frontier.
func (r *Recorder) Instant(lane, name string, attrs ...Attr) {
	r.mu.Lock()
	r.events = append(r.events, Event{
		Lane: lane, Name: name, Phase: 'i', Start: r.frontier[lane],
		Attrs: append([]Attr(nil), attrs...),
	})
	r.mu.Unlock()
}

// ItemOpsHistogram returns the recorder's per-work-item operation-count
// histogram. The core pipeline observes each item's total op count into
// it when this recorder is installed.
func (r *Recorder) ItemOpsHistogram() *Histogram { return r.itemOps }

// Events returns the recorded events stable-sorted by lane name (each
// lane's internal order preserved). The returned slice is a copy.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	evs := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Lane < evs[j].Lane })
	return evs
}

// Lanes returns the sorted set of lane names seen so far.
func (r *Recorder) Lanes() []string {
	r.mu.Lock()
	set := map[string]bool{}
	for _, ev := range r.events {
		set[ev.Lane] = true
	}
	r.mu.Unlock()
	lanes := make([]string, 0, len(set))
	for l := range set {
		lanes = append(lanes, l)
	}
	sort.Strings(lanes)
	return lanes
}

// Validate checks structural soundness: no still-open Begin spans, no
// negative durations, and within each lane spans nest properly (a span
// either contains or is disjoint from every earlier overlapping span,
// within a small tolerance for float accumulation).
func (r *Recorder) Validate() error {
	r.mu.Lock()
	nOpen := len(r.open)
	r.mu.Unlock()
	if nOpen > 0 {
		return fmt.Errorf("trace: %d span(s) still open", nOpen)
	}
	const eps = 1e-9
	type openSpan struct {
		name string
		end  float64
	}
	stacks := map[string][]openSpan{}
	for _, ev := range r.Events() {
		if ev.Dur < 0 {
			return fmt.Errorf("trace: %s/%s: negative duration %g", ev.Lane, ev.Name, ev.Dur)
		}
		if ev.Phase != 'X' {
			continue
		}
		stack := stacks[ev.Lane]
		// Pop spans that ended before this one starts.
		for len(stack) > 0 && stack[len(stack)-1].end <= ev.Start+eps {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if ev.Start+ev.Dur > top.end+eps {
				return fmt.Errorf("trace: %s: span %q [%g, %g) overlaps %q ending %g",
					ev.Lane, ev.Name, ev.Start, ev.Start+ev.Dur, top.name, top.end)
			}
		}
		stacks[ev.Lane] = append(stack, openSpan{name: ev.Name, end: ev.Start + ev.Dur})
	}
	return nil
}

// Metrics derives a registry snapshot from the recorded events. The
// registry is rebuilt from the deterministically ordered event list on
// every call, so snapshots from a serial and a parallel run are equal:
// counters sum integer attributes, and gauges take each lane's final
// value, neither depending on goroutine interleaving.
//
// Derived metrics:
//
//	device_busy_seconds/<lane>   gauge: frontier of each non-host lane
//	energy_joules/<lane>         gauge: sum of energy_j span attributes
//	candidates_total             counter: sum of candidates attributes
//	verified_total               counter: sum of verified attributes
//	enqueues_total/<lane>        counter: enqueue:* spans per lane
//	faults_total                 counter: *-fault instants
//	retries_total                counter: retry instants
//	batch_halvings_total         counter: batch-halved instants
//	failovers_total              counter: failover + deadline-migrate instants
//	records_skipped_total        counter: record-skipped instants (lenient ingest)
//	records_skipped_total/<reason>  counter: same, broken down by reason attr
//	watchdog_fired_total         counter: watchdog-fired instants (hang kills)
//	device_quarantined_total     counter: breaker-open instants (breaker trips)
//	device_readmitted_total      counter: breaker-closed instants (canary passed)
//	kernel_seconds/<kernel>      gauge: summed enqueue:* span durations per kernel
//	enqueue_seconds              histogram: enqueue:* span durations
//	item_ops                     histogram: per-item op counts (if observed)
//
// When the pre-alignment filter ran (any event carries prefilter
// attributes), three more metrics appear:
//
//	prefilter_rejected_total       counter: candidates rejected by the filter
//	prefilter_false_accepts_total  counter: filter-accepted candidates verification rejected
//	prefilter_filtered_fraction    gauge: rejected / candidates seen by the filter
func (r *Recorder) Metrics() Snapshot {
	reg := NewRegistry()
	energy := map[string]float64{}
	busy := map[string]float64{}
	kernelSec := map[string]float64{}
	enqSec := reg.Histogram("enqueue_seconds", TimeBuckets())
	var prefRejected, prefCands, prefFalseAcc int64
	prefSeen := false
	for _, ev := range r.Events() {
		if end := ev.Start + ev.Dur; ev.Lane != "host" && end > busy[ev.Lane] {
			busy[ev.Lane] = end
		}
		switch ev.Phase {
		case 'X':
			if isEnqueue(ev.Name) {
				reg.Counter("enqueues_total/" + ev.Lane).Add(1)
				enqSec.Observe(ev.Dur)
				kernelSec[ev.Name[len("enqueue:"):]] += ev.Dur
			}
			evCands, evFiltered := int64(0), false
			for _, a := range ev.Attrs {
				switch a.Key {
				case "energy_j":
					if v, ok := a.Value().(float64); ok {
						energy[ev.Lane] += v
					}
				case "candidates":
					if v, ok := a.Value().(int64); ok {
						reg.Counter("candidates_total").Add(v)
						evCands = v
					}
				case "verified":
					if v, ok := a.Value().(int64); ok {
						reg.Counter("verified_total").Add(v)
					}
				case "filtered":
					if v, ok := a.Value().(int64); ok {
						prefRejected += v
						prefSeen, evFiltered = true, true
					}
				case "false_accepts":
					if v, ok := a.Value().(int64); ok {
						prefFalseAcc += v
						prefSeen = true
					}
				}
			}
			// The filtered fraction's denominator counts only candidates
			// on prefilter-stage events, where both attributes ride the
			// same span.
			if evFiltered {
				prefCands += evCands
			}
		case 'i':
			switch ev.Name {
			case "retry":
				reg.Counter("retries_total").Add(1)
			case "batch-halved":
				reg.Counter("batch_halvings_total").Add(1)
			case "failover", "deadline-migrate":
				reg.Counter("failovers_total").Add(1)
			case "watchdog-fired":
				reg.Counter("watchdog_fired_total").Add(1)
			case "breaker-open":
				reg.Counter("device_quarantined_total").Add(1)
			case "breaker-closed":
				reg.Counter("device_readmitted_total").Add(1)
			case "record-skipped":
				reg.Counter("records_skipped_total").Add(1)
				for _, a := range ev.Attrs {
					if a.Key == "reason" {
						if reason, ok := a.Value().(string); ok {
							reg.Counter("records_skipped_total/" + reason).Add(1)
						}
					}
				}
			}
			if isFault(ev.Name) {
				reg.Counter("faults_total").Add(1)
			}
		}
	}
	for lane, sec := range busy {
		reg.Gauge("device_busy_seconds/" + lane).Set(sec)
	}
	for lane, j := range energy {
		reg.Gauge("energy_joules/" + lane).Set(j)
	}
	for kernel, sec := range kernelSec {
		reg.Gauge("kernel_seconds/" + kernel).Set(sec)
	}
	if prefSeen {
		reg.Counter("prefilter_rejected_total").Add(prefRejected)
		reg.Counter("prefilter_false_accepts_total").Add(prefFalseAcc)
		frac := 0.0
		if prefCands > 0 {
			frac = float64(prefRejected) / float64(prefCands)
		}
		reg.Gauge("prefilter_filtered_fraction").Set(frac)
	}
	if r.itemOps.Count() > 0 {
		reg.Histogram("item_ops", OpsBuckets()).copyFrom(r.itemOps)
	}
	return reg.Snapshot()
}

func isEnqueue(name string) bool {
	return len(name) >= len("enqueue:") && name[:len("enqueue:")] == "enqueue:"
}

func isFault(name string) bool {
	const suf = "-fault"
	return len(name) >= len(suf) && name[len(name)-len(suf):] == suf
}
