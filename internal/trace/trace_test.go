package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAttrValues(t *testing.T) {
	if v := Str("k", "s").Value(); v != "s" {
		t.Errorf("Str value = %v", v)
	}
	if v := I64("k", 7).Value(); v != int64(7) {
		t.Errorf("I64 value = %v", v)
	}
	if v := F64("k", 2.5).Value(); v != 2.5 {
		t.Errorf("F64 value = %v", v)
	}
}

func TestIsNoop(t *testing.T) {
	if !IsNoop(nil) || !IsNoop(Noop{}) {
		t.Error("nil and Noop{} must be no-ops")
	}
	if IsNoop(NewRecorder()) {
		t.Error("Recorder must not be a no-op")
	}
	// The Noop methods must be callable and inert.
	var n Noop
	id := n.Begin("l", "x", 0)
	if id != 0 {
		t.Errorf("Noop.Begin = %d, want 0", id)
	}
	n.Span("l", "x", 0, 1)
	n.End(id, 1)
	n.Instant("l", "x")
}

func TestRecorderSpanOrderAndLanes(t *testing.T) {
	r := NewRecorder()
	r.Span("dev-b", "b1", 0, 1)
	r.Span("dev-a", "a1", 0, 2)
	r.Span("dev-b", "b2", 1, 1)
	evs := r.Events()
	var got []string
	for _, ev := range evs {
		got = append(got, ev.Lane+"/"+ev.Name)
	}
	want := []string{"dev-a/a1", "dev-b/b1", "dev-b/b2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
	lanes := r.Lanes()
	if len(lanes) != 2 || lanes[0] != "dev-a" || lanes[1] != "dev-b" {
		t.Errorf("Lanes = %v", lanes)
	}
}

func TestRecorderBeginEnd(t *testing.T) {
	r := NewRecorder()
	id := r.Begin("host", "map", 1, I64("reads", 10))
	if err := r.Validate(); err == nil {
		t.Error("Validate must fail while a span is open")
	}
	r.End(id, 4, F64("energy_j", 2))
	r.End(id, 9) // double End is ignored
	r.End(999, 9)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Start != 1 || evs[0].Dur != 3 {
		t.Fatalf("events = %+v", evs)
	}
	if len(evs[0].Attrs) != 2 {
		t.Errorf("End must append attrs: %+v", evs[0].Attrs)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// End before Begin's start clamps the duration to zero.
	id2 := r.Begin("host", "neg", 5)
	r.End(id2, 3)
	for _, ev := range r.Events() {
		if ev.Name == "neg" && ev.Dur != 0 {
			t.Errorf("negative span not clamped: %+v", ev)
		}
	}
}

func TestRecorderInstantFrontier(t *testing.T) {
	r := NewRecorder()
	r.Span("dev", "work", 2, 3)
	r.Instant("dev", "alloc-fault", Str("error", "boom"))
	r.Instant("fresh", "note")
	var at float64 = -1
	for _, ev := range r.Events() {
		if ev.Name == "alloc-fault" {
			at = ev.Start
		}
		if ev.Lane == "fresh" && ev.Start != 0 {
			t.Errorf("instant on fresh lane at %g, want 0", ev.Start)
		}
	}
	if at != 5 {
		t.Errorf("instant pinned at %g, want frontier 5", at)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	r := NewRecorder()
	r.Span("dev", "outer", 0, 2)
	r.Span("dev", "straddle", 1, 3) // overlaps outer without nesting
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("Validate = %v, want overlap error", err)
	}
	r2 := NewRecorder()
	r2.Span("dev", "outer", 0, 4)
	r2.Span("dev", "inner", 1, 2)
	r2.Span("dev", "after", 4, 1)
	if err := r2.Validate(); err != nil {
		t.Errorf("nested spans must validate: %v", err)
	}
}

func TestRegistryMetrics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("retries_total")
	c.Add(2)
	c.Add(-5) // ignored
	if reg.Counter("retries_total") != c {
		t.Error("Counter not stable across lookups")
	}
	if c.Value() != 2 {
		t.Errorf("counter = %d, want 2", c.Value())
	}
	g := reg.Gauge("speedup")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %g", g.Value())
	}
	h := reg.Histogram("lat", TimeBuckets())
	h.Observe(5e-7)
	h.Observe(0.02)
	h.Observe(1e9) // overflow bucket
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	snap := reg.Snapshot()
	if snap.Counters["retries_total"] != 2 || snap.Gauges["speedup"] != 3.5 {
		t.Errorf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 3 || len(hs.Buckets) != 3 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if hs.Buckets[len(hs.Buckets)-1].LE != "+Inf" {
		t.Errorf("overflow bucket = %+v", hs.Buckets)
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	var buf2 bytes.Buffer
	if err := snap.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("equal snapshots must serialise byte-identically")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter("n").Add(1)
				reg.Histogram("h", OpsBuckets()).Observe(float64(j))
				reg.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("n").Value(); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if got := reg.Histogram("h", nil).Count(); got != 800 {
		t.Errorf("histogram count = %d, want 800", got)
	}
}

func TestRecorderMetricsDerivation(t *testing.T) {
	r := NewRecorder()
	r.Span("gpu-0", "enqueue:map", 0, 2,
		F64("energy_j", 10), I64("candidates", 30), I64("verified", 4))
	r.Span("gpu-0", "enqueue:map", 2, 1, F64("energy_j", 5))
	r.Span("gpu-0", "penalty", 3, 0.5, F64("energy_j", 1))
	r.Span("host", "map", 0, 4)
	r.Instant("gpu-0", "retry")
	r.Instant("gpu-0", "enqueue-fault", Str("error", "x"))
	r.Instant("gpu-0", "batch-halved")
	r.Instant("host", "failover", I64("reads", 9))
	r.ItemOpsHistogram().Observe(100)
	m := r.Metrics()
	checks := map[string]int64{
		"enqueues_total/gpu-0": 2,
		"candidates_total":     30,
		"verified_total":       4,
		"retries_total":        1,
		"faults_total":         1,
		"batch_halvings_total": 1,
		"failovers_total":      1,
	}
	for k, want := range checks {
		if got := m.Counters[k]; got != want {
			t.Errorf("%s = %d, want %d", k, got, want)
		}
	}
	if got := m.Gauges["device_busy_seconds/gpu-0"]; got != 3.5 {
		t.Errorf("busy seconds = %g, want 3.5", got)
	}
	if got := m.Gauges["energy_joules/gpu-0"]; got != 16 {
		t.Errorf("energy = %g, want 16", got)
	}
	if _, ok := m.Gauges["device_busy_seconds/host"]; ok {
		t.Error("host lane must not report device busy seconds")
	}
	if hs := m.Histograms["item_ops"]; hs.Count != 1 {
		t.Errorf("item_ops = %+v", hs)
	}
	if hs := m.Histograms["enqueue_seconds"]; hs.Count != 2 {
		t.Errorf("enqueue_seconds = %+v", hs)
	}
	if got := m.Gauges["kernel_seconds/map"]; got != 3 {
		t.Errorf("kernel_seconds/map = %g, want 3", got)
	}
	// No event carried prefilter attributes, so no prefilter metrics
	// may appear: their presence is gated on the filter having run.
	for _, k := range []string{"prefilter_rejected_total", "prefilter_false_accepts_total"} {
		if _, ok := m.Counters[k]; ok {
			t.Errorf("%s present without prefilter events", k)
		}
	}
	if _, ok := m.Gauges["prefilter_filtered_fraction"]; ok {
		t.Error("prefilter_filtered_fraction present without prefilter events")
	}
}

func TestRecorderMetricsPrefilterDerivation(t *testing.T) {
	r := NewRecorder()
	// Two prefilter-stage spans and one verify-stage span, mirroring how
	// EnqueueNDRange attaches the attributes: candidates + filtered ride
	// the prefilter span, false_accepts rides the verify span.
	r.Span("cpu-0", "enqueue:map-prefilter", 0, 1,
		I64("candidates", 40), I64("filtered", 25), I64("filter_words", 900))
	r.Span("cpu-0", "enqueue:map-prefilter", 1, 1,
		I64("candidates", 10), I64("filtered", 5), I64("filter_words", 200))
	r.Span("cpu-0", "enqueue:map-verify", 2, 1,
		I64("candidates", 20), I64("verified", 17), I64("false_accepts", 3))
	m := r.Metrics()
	if got := m.Counters["prefilter_rejected_total"]; got != 30 {
		t.Errorf("prefilter_rejected_total = %d, want 30", got)
	}
	if got := m.Counters["prefilter_false_accepts_total"]; got != 3 {
		t.Errorf("prefilter_false_accepts_total = %d, want 3", got)
	}
	// Denominator counts candidates only on spans that carried a
	// "filtered" attribute (40+10), not the verify span's 20.
	if got := m.Gauges["prefilter_filtered_fraction"]; got != 0.6 {
		t.Errorf("prefilter_filtered_fraction = %g, want 0.6", got)
	}
	if got := m.Counters["candidates_total"]; got != 70 {
		t.Errorf("candidates_total = %d, want 70", got)
	}
	if got := m.Gauges["kernel_seconds/map-prefilter"]; got != 2 {
		t.Errorf("kernel_seconds/map-prefilter = %g, want 2", got)
	}
	if got := m.Gauges["kernel_seconds/map-verify"]; got != 1 {
		t.Errorf("kernel_seconds/map-verify = %g, want 1", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Span("dev-a", "enqueue:map", 0, 0.25, I64("global_size", 64))
	id := r.Begin("host", "map", 0)
	r.End(id, 0.25)
	r.Instant("dev-a", "retry", Str("error", "transient"))
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   *float64       `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	var names []string
	threads := map[string]int{}
	for _, ev := range tr.TraceEvents {
		names = append(names, ev.Phase+":"+ev.Name)
		if ev.Phase == "M" && ev.Name == "thread_name" {
			threads[ev.Args["name"].(string)] = ev.TID
		}
		if ev.Phase == "X" {
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("span %s has bad duration %v", ev.Name, ev.Dur)
			}
			if ev.Name == "enqueue:map" && *ev.Dur != 0.25*1e6 {
				t.Errorf("span dur = %g µs, want 250000", *ev.Dur)
			}
		}
		if ev.Phase == "i" && ev.Scope != "t" {
			t.Errorf("instant %s scope = %q, want t", ev.Name, ev.Scope)
		}
	}
	if threads["dev-a"] != 1 || threads["host"] != 2 {
		t.Errorf("thread metadata = %v", threads)
	}
	// Byte-identical on re-export.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-export must be byte-identical")
	}
}

func TestHistogramCopyFrom(t *testing.T) {
	a := NewHistogram(OpsBuckets())
	a.Observe(3)
	a.Observe(3000)
	b := NewHistogram(OpsBuckets())
	b.copyFrom(a)
	if b.Count() != 2 || b.Sum() != 3003 {
		t.Errorf("copyFrom: count=%d sum=%g", b.Count(), b.Sum())
	}
}

func TestRecorderConcurrentLanes(t *testing.T) {
	// Concurrent writers on distinct lanes: per-lane order must be each
	// writer's program order regardless of interleaving.
	r := NewRecorder()
	var wg sync.WaitGroup
	for _, lane := range []string{"a", "b", "c", "d"} {
		wg.Add(1)
		go func(lane string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Span(lane, "s", float64(i), 1)
				r.Instant(lane, "i")
			}
		}(lane)
	}
	wg.Wait()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := map[string]float64{}
	for _, ev := range r.Events() {
		if ev.Phase != 'X' {
			continue
		}
		if ev.Start < prev[ev.Lane] {
			t.Fatalf("lane %s out of order: %g after %g", ev.Lane, ev.Start, prev[ev.Lane])
		}
		prev[ev.Lane] = ev.Start
	}
}

func TestRegistryApply(t *testing.T) {
	// Two source registries standing in for two jobs' recorders.
	job := func(retries int64, busy float64, obs []float64) Snapshot {
		r := NewRegistry()
		r.Counter("retries_total/oor").Add(retries)
		r.Gauge("device_busy_seconds/cpu").Set(busy)
		h := r.Histogram("batch_sim_seconds", TimeBuckets())
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	s1 := job(2, 1.5, []float64{3e-4, 0.2})
	s2 := job(3, 4.0, []float64{0.5, 250}) // 250 overflows TimeBuckets

	dst := NewRegistry()
	if err := dst.Apply(s1); err != nil {
		t.Fatal(err)
	}
	if err := dst.Apply(s2); err != nil {
		t.Fatal(err)
	}

	if got := dst.Counter("retries_total/oor").Value(); got != 5 {
		t.Errorf("counter folded to %d, want 5 (sum of jobs)", got)
	}
	if got := dst.Gauge("device_busy_seconds/cpu").Value(); got != 4.0 {
		t.Errorf("gauge folded to %v, want 4.0 (last applied wins)", got)
	}
	h := dst.Histogram("batch_sim_seconds", TimeBuckets())
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if want := 3e-4 + 0.2 + 0.5 + 250; h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
	hs := h.snapshot()
	var overflow int64
	for _, b := range hs.Buckets {
		if b.LE == "+Inf" {
			overflow = b.Count
		}
	}
	if overflow != 1 {
		t.Errorf("overflow bucket = %d, want 1", overflow)
	}

	// Determinism: two registries fed the same snapshots serialise
	// byte-identically.
	other := NewRegistry()
	if err := other.Apply(s1); err != nil {
		t.Fatal(err)
	}
	if err := other.Apply(s2); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := dst.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := other.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}

	// Snapshots omit empty buckets, so a bound the destination has never
	// seen is legitimate: it must merge as a new bucket, not misbucket or
	// fail.
	extra := Snapshot{Histograms: map[string]HistogramSnapshot{
		"batch_sim_seconds": {Count: 1, Sum: 7, Buckets: []BucketSnapshot{{LE: "7", Count: 1}}},
	}}
	if err := dst.Apply(extra); err != nil {
		t.Fatalf("Apply with an unseen bucket bound: %v", err)
	}
	if h.Count() != 5 {
		t.Errorf("histogram count after merge = %d, want 5", h.Count())
	}
	var at7, inf int64
	for _, b := range h.snapshot().Buckets {
		switch b.LE {
		case "7":
			at7 = b.Count
		case "+Inf":
			inf = b.Count
		}
	}
	if at7 != 1 || inf != 1 {
		t.Errorf("merged buckets: le=7 count %d (want 1), overflow %d (want 1)", at7, inf)
	}
	// A malformed bound is still a typed failure.
	bad := Snapshot{Histograms: map[string]HistogramSnapshot{
		"batch_sim_seconds": {Count: 1, Sum: 1, Buckets: []BucketSnapshot{{LE: "seven", Count: 1}}},
	}}
	if err := dst.Apply(bad); err == nil {
		t.Error("Apply with a malformed bucket bound succeeded")
	}
}
