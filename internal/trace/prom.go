package trace

// Prometheus text exposition (version 0.0.4) for metric snapshots. The
// registry's native naming convention suffixes a metric family with a
// "/segment" discriminator (device lane, kernel, skip reason); the
// exposition maps that onto Prometheus labels — "enqueues_total/CPU-A"
// becomes `enqueues_total{segment="CPU-A"}` — so one family groups its
// per-device series the way Prometheus tooling expects. Output is fully
// deterministic: families and series are sorted, floats render with the
// same formatFloat the JSON snapshot uses, and equal snapshots expose
// byte-identical text.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: a `# TYPE` line per family followed by its series in sorted
// order. Counters and gauges map directly; histograms expose the
// standard cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`. Names are sanitised to the Prometheus grammar and the
// "/segment" suffix becomes a segment label.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type series struct {
		label string // rendered label set, "" or `{segment="..."}`
		value string
	}
	// Group each metric kind's series by sanitised family so a family's
	// TYPE line is emitted exactly once even when several raw names
	// (differing only in segment) map onto it.
	group := func(names []string, value func(string) string) (map[string][]series, []string) {
		fams := map[string][]series{}
		for _, name := range names {
			fam, seg := splitFamily(name)
			lbl := ""
			if seg != "" {
				lbl = `{segment="` + escapeLabel(seg) + `"}`
			}
			fams[fam] = append(fams[fam], series{label: lbl, value: value(name)})
		}
		order := make([]string, 0, len(fams))
		for fam := range fams {
			order = append(order, fam)
		}
		sort.Strings(order)
		return fams, order
	}

	cFams, cOrder := group(sortedKeys(s.Counters), func(n string) string {
		return strconv.FormatInt(s.Counters[n], 10)
	})
	for _, fam := range cOrder {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam); err != nil {
			return err
		}
		for _, sr := range cFams[fam] {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam, sr.label, sr.value); err != nil {
				return err
			}
		}
	}

	gFams, gOrder := group(sortedKeys(s.Gauges), func(n string) string {
		return formatFloat(s.Gauges[n])
	})
	for _, fam := range gOrder {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", fam); err != nil {
			return err
		}
		for _, sr := range gFams[fam] {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam, sr.label, sr.value); err != nil {
				return err
			}
		}
	}

	for _, name := range sortedKeys(s.Histograms) {
		fam, seg := splitFamily(name)
		pre := ""
		if seg != "" {
			pre = `segment="` + escapeLabel(seg) + `",`
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
			return err
		}
		hs := s.Histograms[name]
		// Snapshot buckets are non-cumulative with empty buckets omitted
		// and "+Inf" last; re-sort defensively by bound and accumulate
		// into the cumulative counts the exposition format requires.
		buckets := append([]BucketSnapshot(nil), hs.Buckets...)
		sort.SliceStable(buckets, func(i, j int) bool {
			return bucketBound(buckets[i].LE) < bucketBound(buckets[j].LE)
		})
		cum := int64(0)
		for _, b := range buckets {
			if b.LE == "+Inf" {
				continue // folded into the final +Inf line below
			}
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, pre, b.LE, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, pre, hs.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, braced(pre), formatFloat(hs.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, braced(pre), hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// bucketBound orders bucket bounds numerically; "+Inf" (and anything
// unparsable) sorts last.
func bucketBound(le string) float64 {
	v, err := strconv.ParseFloat(le, 64)
	if err != nil || le == "+Inf" {
		return math.Inf(1)
	}
	return v
}

// splitFamily separates a registry name into its Prometheus family and
// segment: the part before the first "/" (sanitised to the metric-name
// grammar) and everything after it.
func splitFamily(name string) (fam, segment string) {
	fam, segment, _ = strings.Cut(name, "/")
	return sanitizeName(fam), segment
}

// sanitizeName maps a registry family onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other byte with '_'.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// braced wraps a trailing-comma label prefix into a full label set for
// the _sum/_count series ("" stays "").
func braced(pre string) string {
	if pre == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(pre, ",") + "}"
}
