// Package trace is the observability layer of the simulated OpenCL
// runtime: structured spans and instant events over *simulated* time, a
// metrics registry (counters, gauges, histograms) snapshotable as JSON,
// and a Chrome trace-event exporter so a whole multi-device mapping run
// can be inspected in chrome://tracing or Perfetto.
//
// The paper's evaluation (§IV) is built entirely on per-stage timing,
// power and energy accounting across heterogeneous devices; this package
// makes those quantities visible per event instead of only as end-of-run
// aggregates. Three properties shape the design:
//
//   - Zero dependency: stdlib only, importable from internal/cl without
//     cycles (this package imports nothing from the repository).
//   - Zero hot-path overhead when disabled: the runtime stores a nil
//     tracer for Noop (see IsNoop), so the only cost with tracing off is
//     one nil check per hook.
//   - Determinism: events are keyed on lane ordinals and simulated time,
//     never on wall clocks or map iteration, and exports order lanes and
//     records deterministically — a serial and a parallel host run of the
//     same workload emit byte-identical traces (asserted by the
//     internal/core determinism suite).
//
// A lane is one timeline in the trace: a device's busy-time axis, or the
// host coordinator's makespan axis. Within a lane all events come from a
// single goroutine at a time, which is what makes per-lane record order
// well defined.
package trace

// Attr is one key/value annotation on a span or instant event. Exactly
// one of the value fields is meaningful, per the constructor used.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	i64  int64
	f64  float64
}

type attrKind uint8

const (
	kindString attrKind = iota
	kindInt64
	kindFloat64
)

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindString, str: v} }

// I64 builds an integer attribute.
func I64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt64, i64: v} }

// F64 builds a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat64, f64: v} }

// Value returns the attribute's value as the dynamic type it was built
// with (string, int64 or float64) — the form the JSON exporters consume.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt64:
		return a.i64
	case kindFloat64:
		return a.f64
	default:
		return a.str
	}
}

// SpanID identifies a span opened by Begin; 0 is never a valid id.
type SpanID int64

// Tracer receives the runtime's observability events. All times are
// simulated seconds on the given lane's timeline. Implementations must
// be safe for concurrent use: device lanes are driven by per-device host
// goroutines.
//
// Span records a completed span covering [start, start+dur). Begin/End
// are for spans whose extent is unknown up front (the pipeline's
// per-mapping-run span around its recovery rounds); Begin reserves the
// span's place in lane order. Instant records a point event at the
// lane's current frontier — the largest span end seen on the lane — for
// decisions that have no simulated duration of their own (an injected
// fault, a batch halving, a failover).
type Tracer interface {
	Span(lane, name string, start, dur float64, attrs ...Attr)
	Begin(lane, name string, start float64, attrs ...Attr) SpanID
	End(id SpanID, end float64, attrs ...Attr)
	Instant(lane, name string, attrs ...Attr)
}

// Noop is the default tracer: it discards everything. Hook sites store
// nil instead of a Noop (see IsNoop), so installing it is guaranteed to
// add zero work on the hot path — asserted by the zero-cost tests and
// the enqueue benchmarks in internal/cl.
type Noop struct{}

// Span implements Tracer.
func (Noop) Span(lane, name string, start, dur float64, attrs ...Attr) {}

// Begin implements Tracer.
func (Noop) Begin(lane, name string, start float64, attrs ...Attr) SpanID { return 0 }

// End implements Tracer.
func (Noop) End(id SpanID, end float64, attrs ...Attr) {}

// Instant implements Tracer.
func (Noop) Instant(lane, name string, attrs ...Attr) {}

// IsNoop reports whether t is nil or the built-in no-op tracer. Hook
// sites (cl.Queue.SetTracer, core.Config.Tracer) normalise Noop to nil
// so the disabled path is a single pointer comparison.
func IsNoop(t Tracer) bool {
	if t == nil {
		return true
	}
	_, ok := t.(Noop)
	return ok
}
