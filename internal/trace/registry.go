package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Counter is a monotonically increasing metric (retries, candidates,
// injected faults). Safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by d (d < 0 is ignored).
func (c *Counter) Add(d int64) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-value metric (per-device busy seconds, energy joules,
// benchmark speedups). Safe for concurrent use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed upper-bound buckets, plus an
// overflow bucket. It tracks count and sum; when every observation is an
// integer below 2⁵³ (the runtime's op counts and byte sizes are), the
// float64 sum is exact and therefore independent of observation order —
// part of the serial/parallel determinism contract.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // guarded by mu; ascending upper bounds, grown only by applySnapshot
	counts []int64   // len(bounds)+1; last is overflow; guarded by mu
	count  int64     // guarded by mu
	sum    float64   // guarded by mu
}

// TimeBuckets are the default upper bounds (simulated seconds) for
// latency-shaped histograms: 1 µs to 100 s in decade steps.
func TimeBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}
}

// OpsBuckets are the default upper bounds for per-item operation-count
// histograms.
func OpsBuckets() []float64 {
	return []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}
}

// NewHistogram builds a histogram with the given ascending upper bounds;
// a trailing overflow bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// copyFrom replaces h's state with src's. Both histograms must share the
// same bounds.
func (h *Histogram) copyFrom(src *Histogram) {
	src.mu.Lock()
	counts := append([]int64(nil), src.counts...)
	count, sum := src.count, src.sum
	src.mu.Unlock()
	h.mu.Lock()
	copy(h.counts, counts)
	h.count, h.sum = count, sum
	h.mu.Unlock()
}

// applySnapshot folds a snapshot's observations into h. Snapshots omit
// empty buckets, so two snapshots of identically-bounded histograms can
// expose disjoint bound sets; bounds h has never seen are inserted
// rather than rejected, which keeps every count attached to its
// original bucket.
func (h *Histogram) applySnapshot(hs HistogramSnapshot) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, b := range hs.Buckets {
		var i int
		if b.LE == "+Inf" {
			i = len(h.bounds)
		} else {
			v, err := strconv.ParseFloat(b.LE, 64)
			if err != nil {
				return fmt.Errorf("bad bucket bound %q: %w", b.LE, err)
			}
			// Grow a new zero bucket when v is an unseen bound; insertion
			// keeps the bounds sorted and shifts the existing counts
			// (including overflow) along with their bounds.
			i = sort.SearchFloat64s(h.bounds, v)
			if i == len(h.bounds) || h.bounds[i] != v {
				h.bounds = append(h.bounds, 0)
				copy(h.bounds[i+1:], h.bounds[i:])
				h.bounds[i] = v
				h.counts = append(h.counts, 0)
				copy(h.counts[i+1:], h.counts[i:])
				h.counts[i] = 0
			}
		}
		h.counts[i] += b.Count
	}
	h.count += hs.Count
	h.sum += hs.Sum
	return nil
}

// bounds recovers the finite bucket bounds present in the snapshot
// (empty buckets are omitted, so this is a lower bound on the source
// histogram's bounds — enough to re-create a compatible histogram).
func (hs HistogramSnapshot) bounds() ([]float64, error) {
	var b []float64
	for _, bk := range hs.Buckets {
		if bk.LE == "+Inf" {
			continue
		}
		v, err := strconv.ParseFloat(bk.LE, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bucket bound %q: %w", bk.LE, err)
		}
		b = append(b, v)
	}
	sort.Float64s(b)
	return b, nil
}

// snapshot returns the histogram's state as a HistogramSnapshot.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := make([]BucketSnapshot, 0, len(h.counts))
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		buckets = append(buckets, BucketSnapshot{LE: le, Count: n})
	}
	return HistogramSnapshot{Count: h.count, Sum: h.sum, Buckets: buckets}
}

// Registry is a namespace of metrics. Metric handles are get-or-create
// and stable: repeated lookups of one name return the same handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// BucketSnapshot is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound LE ("+Inf" for overflow).
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a histogram's state in a snapshot. Empty buckets
// are omitted.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, JSON-serialisable with
// deterministic key order (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(histograms))
		for k, v := range histograms {
			s.Histograms[k] = v.snapshot()
		}
	}
	return s
}

// Apply folds a snapshot into the registry: counter values add onto the
// registry's counters, gauge values overwrite, histogram buckets and
// sums accumulate (new histograms are created from the snapshot's own
// bucket bounds; existing ones must contain every applied bound). It is
// the aggregation half of the per-job metrics design: each job runs
// against its own Recorder, and the job's final Snapshot is folded into
// the long-lived service registry exactly once — so a job's metrics
// appear atomically, and two registries fed the same snapshots in the
// same order serialise byte-identically.
func (r *Registry) Apply(s Snapshot) error {
	// Sorted iteration keeps handle creation deterministic (Apply's
	// effect is order-independent, but get-or-create is a side effect).
	for _, name := range sortedKeys(s.Counters) {
		r.Counter(name).Add(s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		r.Gauge(name).Set(s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		bounds, err := hs.bounds()
		if err != nil {
			return fmt.Errorf("trace: apply histogram %s: %w", name, err)
		}
		if err := r.Histogram(name, bounds).applySnapshot(hs); err != nil {
			return fmt.Errorf("trace: apply histogram %s: %w", name, err)
		}
	}
	return nil
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WriteJSON writes the snapshot as indented JSON. Map keys are emitted
// sorted, so equal snapshots serialise byte-identically.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// formatFloat renders a bucket bound compactly ("0.001", "10").
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
