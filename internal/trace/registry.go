package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Counter is a monotonically increasing metric (retries, candidates,
// injected faults). Safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by d (d < 0 is ignored).
func (c *Counter) Add(d int64) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-value metric (per-device busy seconds, energy joules,
// benchmark speedups). Safe for concurrent use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed upper-bound buckets, plus an
// overflow bucket. It tracks count and sum; when every observation is an
// integer below 2⁵³ (the runtime's op counts and byte sizes are), the
// float64 sum is exact and therefore independent of observation order —
// part of the serial/parallel determinism contract.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; immutable after construction
	counts []int64   // len(bounds)+1; last is overflow; guarded by mu
	count  int64     // guarded by mu
	sum    float64   // guarded by mu
}

// TimeBuckets are the default upper bounds (simulated seconds) for
// latency-shaped histograms: 1 µs to 100 s in decade steps.
func TimeBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}
}

// OpsBuckets are the default upper bounds for per-item operation-count
// histograms.
func OpsBuckets() []float64 {
	return []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}
}

// NewHistogram builds a histogram with the given ascending upper bounds;
// a trailing overflow bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// copyFrom replaces h's state with src's. Both histograms must share the
// same bounds.
func (h *Histogram) copyFrom(src *Histogram) {
	src.mu.Lock()
	counts := append([]int64(nil), src.counts...)
	count, sum := src.count, src.sum
	src.mu.Unlock()
	h.mu.Lock()
	copy(h.counts, counts)
	h.count, h.sum = count, sum
	h.mu.Unlock()
}

// snapshot returns the histogram's state as a HistogramSnapshot.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := make([]BucketSnapshot, 0, len(h.counts))
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		buckets = append(buckets, BucketSnapshot{LE: le, Count: n})
	}
	return HistogramSnapshot{Count: h.count, Sum: h.sum, Buckets: buckets}
}

// Registry is a namespace of metrics. Metric handles are get-or-create
// and stable: repeated lookups of one name return the same handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// BucketSnapshot is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound LE ("+Inf" for overflow).
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a histogram's state in a snapshot. Empty buckets
// are omitted.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, JSON-serialisable with
// deterministic key order (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(histograms))
		for k, v := range histograms {
			s.Histograms[k] = v.snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Map keys are emitted
// sorted, so equal snapshots serialise byte-identically.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// formatFloat renders a bucket bound compactly ("0.001", "10").
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
