package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("retries_total").Add(3)
	reg.Counter("enqueues_total/CPU-A").Add(5)
	reg.Counter("enqueues_total/CPU-B").Add(7)
	reg.Gauge("device_busy_seconds/CPU-A").Set(1.25)
	reg.Gauge("prefilter_filtered_fraction").Set(0.5)
	h := reg.Histogram("enqueue_seconds", TimeBuckets())
	h.Observe(5e-4) // le 1e-3 bucket
	h.Observe(5e-4)
	h.Observe(2)     // le 10 bucket
	h.Observe(1e300) // overflow

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE enqueues_total counter
enqueues_total{segment="CPU-A"} 5
enqueues_total{segment="CPU-B"} 7
# TYPE retries_total counter
retries_total 3
# TYPE device_busy_seconds gauge
device_busy_seconds{segment="CPU-A"} 1.25
# TYPE prefilter_filtered_fraction gauge
prefilter_filtered_fraction 0.5
# TYPE enqueue_seconds histogram
enqueue_seconds_bucket{le="0.001"} 2
enqueue_seconds_bucket{le="10"} 3
enqueue_seconds_bucket{le="+Inf"} 4
enqueue_seconds_sum 1e+300
enqueue_seconds_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Equal snapshots expose byte-identical text.
	var again bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two expositions of one snapshot differ")
	}
}

func TestWritePrometheusSegmentedHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("job_seconds/upload", TimeBuckets())
	h.Observe(0.02)
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE job_seconds histogram\n",
		`job_seconds_bucket{segment="upload",le="0.1"} 1` + "\n",
		`job_seconds_bucket{segment="upload",le="+Inf"} 1` + "\n",
		`job_seconds_sum{segment="upload"} 0.02` + "\n",
		`job_seconds_count{segment="upload"} 1` + "\n",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition lacks %q:\n%s", want, buf.String())
		}
	}
}

func TestPrometheusNameAndLabelSanitisation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`weird.family/seg"with\escapes` + "\nnewline").Add(1)
	reg.Gauge("9starts_with_digit").Set(1)
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`weird_family{segment="seg\"with\\escapes\nnewline"} 1`,
		"_starts_with_digit 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}

// TestMetricsDerivesHealthCounters: the breaker and watchdog instants
// the cl layer emits surface as the documented health counters.
func TestMetricsDerivesHealthCounters(t *testing.T) {
	rec := NewRecorder()
	rec.Instant("CPU-A", "watchdog-fired")
	rec.Instant("CPU-A", "watchdog-fired")
	rec.Instant("CPU-A", "breaker-open")
	rec.Instant("CPU-A", "breaker-closed")
	m := rec.Metrics()
	for name, want := range map[string]int64{
		"watchdog_fired_total":     2,
		"device_quarantined_total": 1,
		"device_readmitted_total":  1,
	} {
		if got := m.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
