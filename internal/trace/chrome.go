package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format's JSON array
// (the "traceEvents" envelope understood by chrome://tracing and
// Perfetto). Timestamps and durations are microseconds; here they carry
// simulated time, so the viewer's timeline is the simulated timeline.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorder's events in Chrome trace-event
// JSON. Lanes become threads of one process, ordered and numbered by
// sorted lane name; spans become complete ('X') events and instants 'i'
// events, with attributes in args. Event order and lane numbering are
// derived only from lane names and per-lane append order, so equal
// recordings serialise byte-identically.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	lanes := r.Lanes()
	tid := make(map[string]int, len(lanes))
	evs := make([]chromeEvent, 0, len(lanes)+len(r.Events())+1)
	evs = append(evs, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "repute-sim"},
	})
	for i, lane := range lanes {
		tid[lane] = i + 1
		evs = append(evs, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: i + 1,
			Args: map[string]any{"name": lane},
		})
	}
	for _, ev := range r.Events() {
		ce := chromeEvent{
			Name: ev.Name,
			TS:   ev.Start * 1e6,
			PID:  1,
			TID:  tid[ev.Lane],
		}
		if len(ev.Attrs) > 0 {
			ce.Args = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				ce.Args[a.Key] = a.Value()
			}
		}
		switch ev.Phase {
		case 'X':
			ce.Phase = "X"
			dur := ev.Dur * 1e6
			ce.Dur = &dur
		case 'i':
			ce.Phase = "i"
			ce.Scope = "t"
		default:
			continue
		}
		evs = append(evs, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
