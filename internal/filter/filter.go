// Package filter implements a GateKeeper-style bit-parallel
// pre-alignment filter (Alser et al., "GateKeeper: a new hardware
// architecture for accelerating pre-alignment in DNA short read
// mapping"). It sits between seed location and Myers bit-vector
// verification and cheaply rejects candidate windows that cannot
// contain a match within the error budget δ.
//
// The core invariant is one-sided: the filter may accept windows the
// verifier will reject (false accepts cost one wasted verification),
// but it must NEVER reject a window the verifier would accept. The
// mapper relies on this to keep filtered and unfiltered output
// byte-identical.
//
// # Filter math
//
// Verification accepts a candidate when the pattern P (length n)
// aligns within δ edits against SOME substring of the window W
// (length L ≤ n+2δ, the candidate position padded by δ on both
// sides). Under such an alignment a pattern position i lands at
// window index i + a + d, where a ∈ [0, 3δ] is the match start
// (L − (n−δ) ≤ 3δ) and d ∈ [−δ, δ] is the cumulative indel drift.
// The filter therefore builds shifted match masks for every shift
//
//	s ∈ S = {−δ, …, 4δ}
//
// where mask m_s has bit i set iff P[i] == W[i+s] (out-of-window
// comparisons count as mismatches). This is wider than the classic
// GateKeeper 2δ+1 shift set because our windows are padded and the
// verifier accepts a match at any start position; extra shifts only
// make the filter more permissive, so soundness is preserved.
//
// Accidental single-base matches would make a plain OR of the masks
// useless, so each mask is amended: a match bit survives only when
// it has a matching neighbour at the same shift (a "solid" run of
// length ≥ 2). The amended masks are OR-accumulated and the filter
// accepts iff
//
//	n − popcount(⋁_s solid(m_s)) ≤ 2δ+1.
//
// Soundness: an alignment with e ≤ δ edits partitions the pattern
// into at most e+1 maximal exactly-matching segments with at most e
// positions outside any segment. A segment of length ≥ 2 is a solid
// run at its shift and survives amendment whole; only length-1
// segments can be lost, at most one bit each. The unset bits in the
// accumulator therefore number at most e + (e+1) = 2e+1 ≤ 2δ+1, so
// every verifiable window passes the threshold — zero false rejects,
// by construction. The property test in this package checks exactly
// that against a brute-force Myers oracle.
package filter

import (
	"math/bits"

	"repro/internal/dna"
)

// Threshold returns the amended-mismatch acceptance threshold for an
// error budget of delta edits: 2δ+1 (δ unmatched positions plus up to
// δ+1 amended singleton segments).
func Threshold(delta int) int { return 2*delta + 1 }

// Shifts returns the number of shifted Hamming masks evaluated per
// window for an error budget of delta edits: |{−δ, …, 4δ}| = 5δ+2.
func Shifts(delta int) int { return 5*delta + 2 }

// State is one worker's private scratch for the filter. It follows
// the simulated-OpenCL kernel-state contract: all buffers grow
// amortised and are reused across calls, so the steady-state hot path
// performs zero allocations. A State is prepared once per (pattern,
// delta) and then accepts or rejects any number of candidate windows.
// It is not safe for concurrent use; each host worker owns one.
type State struct {
	n        int    // pattern length
	delta    int    // error budget δ
	wp       int    // 64-bit words covering the n pattern bits
	tailMask uint64 // valid pattern bits in the last word

	peq [4][]uint64 // per-code pattern equality bitvectors (wp words)
	v   [4][]uint64 // per-code shifted window registers (vw words)
	m   []uint64    // current shift's match mask (wp words)
	acc []uint64    // OR-accumulated solid-match mask (wp words)
}

// growWords returns buf resized to w words, reusing its backing array
// when capacity allows.
func growWords(buf []uint64, w int) []uint64 {
	if cap(buf) < w {
		return make([]uint64, w)
	}
	return buf[:w]
}

// Prepare builds the pattern equality bitvectors for one pattern (a
// code sequence, dna.A..dna.T) and error budget. It returns the
// filter-word cost charged to the simulated device: one unit per
// 64-bit word-lane written, mirroring how VerifyWords counts Myers
// block updates rather than machine instructions.
func (st *State) Prepare(pattern []byte, delta int) int64 {
	n := len(pattern)
	wp := (n + 63) / 64
	if wp == 0 {
		wp = 1
	}
	st.n, st.delta, st.wp = n, delta, wp
	if r := n % 64; r == 0 && n > 0 {
		st.tailMask = ^uint64(0)
	} else {
		st.tailMask = (uint64(1) << uint(r)) - 1
	}
	for c := 0; c < dna.Alphabet; c++ {
		st.peq[c] = growWords(st.peq[c], wp)
		for w := 0; w < wp; w++ {
			st.peq[c][w] = 0
		}
	}
	for i, c := range pattern {
		st.peq[c][i/64] |= 1 << uint(i%64)
	}
	st.m = growWords(st.m, wp)
	st.acc = growWords(st.acc, wp)
	return int64(dna.Alphabet * wp)
}

// Accept runs the shifted-Hamming filter over one candidate window (a
// code sequence extracted around the candidate position, the same
// window the verifier would scan). It reports whether the window may
// contain a match within the prepared error budget, plus the
// filter-word cost of the decision. A window too short to contain any
// match (the verifier's own skip condition) is rejected at zero cost.
func (st *State) Accept(window []byte) (bool, int64) {
	n, delta, wp := st.n, st.delta, st.wp
	L := len(window)
	if n == 0 {
		return true, 0
	}
	if L < n-delta {
		return false, 0
	}
	// A threshold of 2δ+1 ≥ n accepts every window; skip the scan.
	if Threshold(delta) >= n {
		return true, 0
	}

	// Window registers aligned for the first shift s = −δ: register
	// bit i holds W[i−δ], i.e. window position j occupies bit j+δ.
	vw := (L + delta + 63) / 64
	if vw < wp {
		vw = wp
	}
	for c := 0; c < dna.Alphabet; c++ {
		st.v[c] = growWords(st.v[c], vw)
		for w := 0; w < vw; w++ {
			st.v[c][w] = 0
		}
	}
	for j, c := range window {
		idx := j + delta
		st.v[c][idx/64] |= 1 << uint(idx%64)
	}
	for w := 0; w < wp; w++ {
		st.acc[w] = 0
	}

	shifts := Shifts(delta)
	for s := 0; s < shifts; s++ {
		// Match mask for this shift: bit i set iff P[i] == W[i+s].
		for w := 0; w < wp; w++ {
			mw := (st.peq[0][w] & st.v[0][w]) |
				(st.peq[1][w] & st.v[1][w]) |
				(st.peq[2][w] & st.v[2][w]) |
				(st.peq[3][w] & st.v[3][w])
			st.m[w] = mw
		}
		st.m[wp-1] &= st.tailMask
		// Amendment: keep only solid matches (a matching neighbour at
		// the same shift); isolated single-base matches are accidental.
		for w := 0; w < wp; w++ {
			mw := st.m[w]
			left := mw << 1
			if w > 0 {
				left |= st.m[w-1] >> 63
			}
			right := mw >> 1
			if w+1 < wp {
				right |= st.m[w+1] << 63
			}
			st.acc[w] |= mw & (left | right)
		}
		if s+1 == shifts {
			break
		}
		// Advance every window register one position: s → s+1.
		for c := 0; c < dna.Alphabet; c++ {
			vc := st.v[c]
			for w := 0; w < vw-1; w++ {
				vc[w] = vc[w]>>1 | vc[w+1]<<63
			}
			vc[vw-1] >>= 1
		}
	}

	unmatched := n
	for w := 0; w < wp; w++ {
		unmatched -= bits.OnesCount64(st.acc[w])
	}
	// Cost: one filter word per (shift, pattern word) lane plus the
	// window register build, the same accounting granularity as
	// align.WordCost for the Myers kernel.
	words := int64(shifts*wp) + int64(dna.Alphabet*vw)
	return unmatched <= Threshold(delta), words
}
