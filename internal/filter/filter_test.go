package filter

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
)

// randSeq returns n random base codes.
func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(dna.Alphabet))
	}
	return s
}

// mutate applies exactly e random edits (substitution, insertion or
// deletion) to a copy of pattern, producing a sequence the verifier is
// guaranteed to accept within e edits.
func mutate(rng *rand.Rand, pattern []byte, e int) []byte {
	out := append([]byte(nil), pattern...)
	for k := 0; k < e; k++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(out) > 0: // substitution
			i := rng.Intn(len(out))
			out[i] = byte(rng.Intn(dna.Alphabet))
		case op == 1: // insertion
			i := rng.Intn(len(out) + 1)
			out = append(out, 0)
			copy(out[i+1:], out[i:])
			out[i] = byte(rng.Intn(dna.Alphabet))
		case len(out) > 0: // deletion
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		}
	}
	return out
}

// window builds a candidate window around body: random padding on both
// sides, total length between n-delta and n+2*delta like the padded
// windows the verification stage extracts.
func window(rng *rand.Rand, body []byte, n, delta int) []byte {
	pad := n + 2*delta - len(body)
	if pad < 0 {
		pad = 0
	}
	left := 0
	if pad > 0 {
		left = rng.Intn(pad + 1)
	}
	w := make([]byte, 0, len(body)+pad)
	w = append(w, randSeq(rng, left)...)
	w = append(w, body...)
	w = append(w, randSeq(rng, pad-left)...)
	return w
}

// oracleTrial runs one randomized trial and reports a false reject:
// the Myers verifier accepts the window but the filter rejects it.
func oracleTrial(t *testing.T, rng *rand.Rand, st *State, delta int) {
	t.Helper()
	n := 1 + rng.Intn(120)
	pattern := randSeq(rng, n)
	var body []byte
	if rng.Intn(2) == 0 {
		// Planted instance: the window provably contains a ≤delta match.
		body = mutate(rng, pattern, rng.Intn(delta+1))
	} else {
		// Junk instance: usually unverifiable, exercises rejection.
		body = randSeq(rng, n)
	}
	win := window(rng, body, n, delta)
	if len(win) < n-delta {
		return // the pipeline skips windows that cannot contain a match
	}
	_, verifies := align.Verify(pattern, win, delta)
	st.Prepare(pattern, delta)
	accepted, _ := st.Accept(win)
	if verifies && !accepted {
		t.Fatalf("false reject: delta=%d n=%d pattern=%v window=%v",
			delta, n, pattern, win)
	}
}

// TestFilterNeverFalseRejects is the superset-invariant oracle: across
// randomized patterns and windows for δ ∈ {0,1,2,3}, the filter never
// rejects a window the Myers verifier accepts.
func TestFilterNeverFalseRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var st State
	for delta := 0; delta <= 3; delta++ {
		for trial := 0; trial < 4000; trial++ {
			oracleTrial(t, rng, &st, delta)
		}
	}
}

// TestFilterNeverFalseRejectsParallel runs the same oracle from many
// goroutines with per-goroutine states, so -race observes the filter
// scratch being used the way concurrent host workers use it.
func TestFilterNeverFalseRejectsParallel(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var st State
			for delta := 0; delta <= 3; delta++ {
				for trial := 0; trial < 800; trial++ {
					oracleTrial(t, rng, &st, delta)
				}
			}
		}(int64(g + 100))
	}
	wg.Wait()
}

// TestFilterRejectsJunk pins the filter's reason to exist: on fully
// random windows (no planted match) at realistic read length it must
// reject a substantial fraction, else it is a no-op stage.
func TestFilterRejectsJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, delta := range []int{0, 1, 2, 3} {
		var st State
		rejected, trials := 0, 2000
		for i := 0; i < trials; i++ {
			pattern := randSeq(rng, 100)
			win := randSeq(rng, 100+2*delta)
			st.Prepare(pattern, delta)
			if ok, _ := st.Accept(win); !ok {
				rejected++
			}
		}
		frac := float64(rejected) / float64(trials)
		if frac < 0.3 {
			t.Errorf("delta=%d: rejected only %.1f%% of junk windows", delta, 100*frac)
		}
		t.Logf("delta=%d junk rejection: %.1f%%", delta, 100*frac)
	}
}

// TestFilterEdgeCases covers the degenerate paths.
func TestFilterEdgeCases(t *testing.T) {
	var st State
	st.Prepare(nil, 2)
	if ok, w := st.Accept([]byte{0, 1, 2}); !ok || w != 0 {
		t.Errorf("empty pattern: got (%t, %d), want accept at zero cost", ok, w)
	}
	pattern := dna.MustEncode("ACGTACGTACGT")
	st.Prepare(pattern, 1)
	if ok, w := st.Accept(pattern[:5]); ok || w != 0 {
		t.Errorf("short window: got (%t, %d), want reject at zero cost", ok, w)
	}
	// Threshold 2δ+1 ≥ n accepts trivially without scanning.
	st.Prepare(pattern[:3], 1)
	if ok, w := st.Accept(dna.MustEncode("TTTTT")); !ok || w != 0 {
		t.Errorf("trivial threshold: got (%t, %d), want accept at zero cost", ok, w)
	}
	// An exact match is always accepted and always charged.
	st.Prepare(pattern, 0)
	ok, w := st.Accept(pattern)
	if !ok || w <= 0 {
		t.Errorf("exact match: got (%t, %d), want accept with positive cost", ok, w)
	}
}

// TestFilterCostScales checks the charged filter words grow with the
// shift count: the δ=3 scan must cost more than the δ=0 scan on the
// same pattern/window pair, and both must be positive.
func TestFilterCostScales(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pattern := randSeq(rng, 100)
	win := randSeq(rng, 106)
	var st State
	st.Prepare(pattern, 0)
	_, w0 := st.Accept(win[:100])
	st.Prepare(pattern, 3)
	_, w3 := st.Accept(win)
	if w0 <= 0 || w3 <= w0 {
		t.Errorf("filter words: delta0=%d delta3=%d, want 0 < delta0 < delta3", w0, w3)
	}
}

// TestFilterZeroAllocSteadyState pins the hot path at zero allocations
// once the scratch has grown to the working size — the same contract
// the simulated kernels are held to by clvet and AllocsPerRun pins.
func TestFilterZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pattern := randSeq(rng, 150)
	wins := make([][]byte, 16)
	for i := range wins {
		wins[i] = randSeq(rng, 150+2*3)
	}
	var st State
	st.Prepare(pattern, 3)
	st.Accept(wins[0]) // warm the scratch
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		st.Prepare(pattern, 3)
		st.Accept(wins[i%len(wins)])
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Prepare+Accept allocates %.1f times per run, want 0", allocs)
	}
}
