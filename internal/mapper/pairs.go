package mapper

import (
	"sort"

	"repro/internal/cl"
)

// Paired-end support. The paper maps the "_1" mates of paired NCBI runs
// as single-end reads; a release-quality mapper must also pair mates.
// The model is the standard Illumina FR library: mates come from opposite
// strands of one fragment, the leftmost mate on '+', with the fragment
// (insert) length in a known band.

// Pair is one reported mate pairing. First/Second are mappings of the
// respective mates; Insert is the outer fragment length; Concordant
// reports FR orientation within the insert band.
type Pair struct {
	First, Second Mapping
	Insert        int32
	Concordant    bool
}

// TotalDist is the pair's combined edit distance (pair ranking key).
func (p Pair) TotalDist() int { return int(p.First.Dist) + int(p.Second.Dist) }

// PairUp combines per-mate mapping lists into concordant pairs: one mate
// on '+', the other on '-', leftmost-on-plus, insert within
// [minInsert, maxInsert]. Results are sorted by combined distance then
// position and capped at maxPairs (0 = no cap). Mapping lists must be
// position-sorted, as Finalize emits.
func PairUp(ms1, ms2 []Mapping, len1, len2 int, minInsert, maxInsert int32, maxPairs int) []Pair {
	var out []Pair
	// Split the second mate's mappings by strand for binary search.
	var fwd2, rev2 []Mapping
	for _, m := range ms2 {
		if m.Strand == Forward {
			fwd2 = append(fwd2, m)
		} else {
			rev2 = append(rev2, m)
		}
	}
	// Case A: mate1 on '+', mate2 on '-' to its right.
	for _, m1 := range ms1 {
		if m1.Strand != Forward {
			continue
		}
		lo := m1.Pos + minInsert - int32(len2)
		hi := m1.Pos + maxInsert - int32(len2)
		for _, m2 := range sliceRange(rev2, lo, hi) {
			insert := m2.Pos + int32(len2) - m1.Pos
			if insert < minInsert || insert > maxInsert {
				continue
			}
			out = append(out, Pair{First: m1, Second: m2, Insert: insert, Concordant: true})
		}
	}
	// Case B: mate2 on '+', mate1 on '-' to its right.
	for _, m1 := range ms1 {
		if m1.Strand != Reverse {
			continue
		}
		lo := m1.Pos + int32(len1) - maxInsert
		hi := m1.Pos + int32(len1) - minInsert
		for _, m2 := range sliceRange(fwd2, lo, hi) {
			insert := m1.Pos + int32(len1) - m2.Pos
			if insert < minInsert || insert > maxInsert {
				continue
			}
			out = append(out, Pair{First: m1, Second: m2, Insert: insert, Concordant: true})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if d1, d2 := out[i].TotalDist(), out[j].TotalDist(); d1 != d2 {
			return d1 < d2
		}
		if out[i].First.Pos != out[j].First.Pos {
			return out[i].First.Pos < out[j].First.Pos
		}
		return out[i].Second.Pos < out[j].Second.Pos
	})
	if maxPairs > 0 && len(out) > maxPairs {
		out = out[:maxPairs]
	}
	return out
}

// sliceRange returns the mappings with Pos in [lo, hi] from a
// position-sorted slice.
func sliceRange(ms []Mapping, lo, hi int32) []Mapping {
	i := sort.Search(len(ms), func(i int) bool { return ms[i].Pos >= lo })
	j := sort.Search(len(ms), func(i int) bool { return ms[i].Pos > hi })
	return ms[i:j]
}

// PairOptions configure paired mapping.
type PairOptions struct {
	Options
	// MinInsert/MaxInsert bound the accepted fragment length.
	MinInsert, MaxInsert int32
	// MaxPairs caps reported pairs per fragment (0 = MaxLocations).
	MaxPairs int
}

// WithDefaults fills unset fields (insert band defaults to 100..1000).
func (o PairOptions) WithDefaults() PairOptions {
	o.Options = o.Options.WithDefaults()
	if o.MaxInsert == 0 {
		o.MaxInsert = 1000
	}
	if o.MinInsert == 0 {
		o.MinInsert = 100
	}
	if o.MaxPairs <= 0 {
		o.MaxPairs = o.MaxLocations
	}
	return o
}

// PairResult is the outcome of mapping a paired read set.
type PairResult struct {
	// Pairs[i] are fragment i's concordant pairs (may be empty).
	Pairs [][]Pair
	// Single1/Single2 hold the per-mate single-end mappings, for
	// fragments whose mates must be reported individually.
	Single1, Single2 [][]Mapping
	SimSeconds       float64
	EnergyJ          float64
	Cost             cl.Cost
	// Faults accumulates both mates' recovery accounting.
	Faults FaultStats
}

// ConcordantFragments counts fragments with at least one concordant pair.
func (r *PairResult) ConcordantFragments() int {
	n := 0
	for _, ps := range r.Pairs {
		if len(ps) > 0 {
			n++
		}
	}
	return n
}
