package coral

import (
	"math/rand"
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func TestNewAndMap(t *testing.T) {
	ref := simulate.Reference(simulate.Chr21Like(40_000, 1))
	set, err := simulate.Reads(ref, 60, simulate.ERR012100, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "CORAL" {
		t.Errorf("default name = %q", m.Name())
	}
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	res, err := m.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	eligible := 0
	for i, o := range set.Origins {
		if int(o.Edits) > opt.MaxErrors {
			continue
		}
		eligible++
		for _, mp := range res.Mappings[i] {
			if mp.Strand == o.Strand && abs32(mp.Pos-o.Pos) <= 4 {
				found++
				break
			}
		}
	}
	if found < eligible*98/100 {
		t.Errorf("CORAL sensitivity %d/%d", found, eligible)
	}
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func TestNamedVariantsAndSplit(t *testing.T) {
	ref := simulate.Reference(simulate.Chr21Like(30_000, 2))
	m, err := New(ref, cl.SystemOne().Devices, []float64{0.5, 0.25, 0.25}, "CORAL-all")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "CORAL-all" {
		t.Errorf("name = %q", m.Name())
	}
	set, err := simulate.Reads(ref, 40, simulate.ERR012100, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Map(set.Reads, mapper.Options{MaxErrors: 3, MaxLocations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeviceSeconds) != 3 {
		t.Errorf("devices used = %d want 3", len(res.DeviceSeconds))
	}
}

func TestNewFromIndexShares(t *testing.T) {
	ref := simulate.Reference(simulate.Chr21Like(20_000, 3))
	base, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewFromIndex(base.Index(), []*cl.Device{cl.SystemOneCPU()}, nil, "CORAL-shared")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Index() != base.Index() {
		t.Error("index not shared")
	}
	rng := rand.New(rand.NewSource(1))
	_ = rng
	set, err := simulate.Reads(ref, 10, simulate.ERR012100, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := base.Map(set.Reads, mapper.Options{MaxErrors: 3, MaxLocations: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.Map(set.Reads, mapper.Options{MaxErrors: 3, MaxLocations: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Mappings {
		if len(a.Mappings[i]) != len(b.Mappings[i]) {
			t.Fatalf("read %d differs across shared-index mappers", i)
		}
	}
}
