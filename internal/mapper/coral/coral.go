// Package coral builds the CORAL comparison mapper (Maheshwari et al.,
// IEEE/ACM TCBB 2019): the same OpenCL kernel flow as REPUTE but with the
// serial variable-length k-mer heuristic instead of DP filtration — the
// two tools share their pipeline in the paper exactly this way.
package coral

import (
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/seed"
)

// New returns a CORAL mapper over ref on the given devices. split follows
// core.Config.Split semantics; name labels the variant ("CORAL-cpu",
// "CORAL-all", "CORAL-HiKey").
func New(ref []byte, devices []*cl.Device, split []float64, name string) (*core.Pipeline, error) {
	if name == "" {
		name = "CORAL"
	}
	return core.New(ref, devices, core.Config{
		Name:     name,
		Selector: seed.CORAL{},
		Split:    split,
	})
}

// NewFromIndex is New over a prebuilt index.
func NewFromIndex(ix *core.Index, devices []*cl.Device, split []float64, name string) (*core.Pipeline, error) {
	if name == "" {
		name = "CORAL"
	}
	return core.NewFromIndex(ix, devices, core.Config{
		Name:     name,
		Selector: seed.CORAL{},
		Split:    split,
	})
}
