// Package mapper defines the interface and shared machinery of every read
// mapper in the repository: mapping records, run options, result and
// accounting types, and the candidate-verification step (dedup + Myers
// bit-vector + coordinate recovery) that all filtration strategies feed.
package mapper

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/align"
	"repro/internal/cl"
	"repro/internal/dna"
)

// Strand constants.
const (
	Forward = byte('+')
	Reverse = byte('-')
)

// Mapping is one reported location of a read: the leftmost reference
// position in forward-strand coordinates, the strand, and the edit
// distance. Per the paper's §IV, REPUTE reports exactly this triple (no
// CIGAR string).
type Mapping struct {
	Pos    int32
	Strand byte
	Dist   uint8
}

// Options configure a mapping run.
type Options struct {
	// MaxErrors is δ, the maximum edit distance.
	MaxErrors int
	// MaxLocations caps reported locations per read (the paper's
	// "first-n" policy forced by static allocation); 0 means 1000, the
	// setting used for most mappers in §III-A.
	MaxLocations int
	// Best selects best-mapper behaviour: only locations at the minimal
	// observed distance are reported (Yara/BWA-MEM/GEM-style).
	Best bool
	// MinSeedLen is Smin for the DP and heuristic selectors.
	MinSeedLen int
	// MaxSeedFreq is the CORAL growth threshold (0 = default).
	MaxSeedFreq int
	// Retries caps in-place re-enqueue attempts after a transient device
	// fault (cl.IsTransient) before the work fails over to another
	// device. 0 means the default of 3; negative disables retries.
	Retries int
	// RetryBackoffSimSec is the simulated backoff charged to the device
	// for the first retry of a batch, doubling per attempt; it lands in
	// the device's busy time and therefore in SimSeconds and EnergyJ.
	// 0 means the default of 1 ms.
	RetryBackoffSimSec float64
	// Prefilter selects the optional pre-alignment filter stage between
	// seed location and verification: PrefilterOff (the default) or
	// PrefilterGateKeeper (bit-parallel shifted-Hamming rejection, see
	// internal/filter). The filter only ever accepts a superset of the
	// verifiable candidates, so mappings are identical either way.
	Prefilter string
}

// Prefilter stage names accepted by Options.Prefilter.
const (
	PrefilterOff        = "off"
	PrefilterGateKeeper = "gatekeeper"
)

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.MaxLocations <= 0 {
		o.MaxLocations = 1000
	}
	if o.MaxErrors < 0 {
		o.MaxErrors = 0
	}
	if o.Retries == 0 {
		o.Retries = 3
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoffSimSec <= 0 {
		o.RetryBackoffSimSec = 1e-3
	}
	if o.Prefilter == "" {
		o.Prefilter = PrefilterOff
	}
	return o
}

// Result is the output of mapping a read set.
type Result struct {
	// Mappings[i] are read i's reported locations, deduplicated, sorted
	// by (Pos, Strand).
	Mappings [][]Mapping
	// SimSeconds is the simulated mapping time: the makespan across the
	// devices used (task-parallel kernels finish together at the max).
	SimSeconds float64
	// EnergyJ is the marginal (above idle) energy across devices.
	EnergyJ float64
	// DeviceSeconds is per-device busy time.
	DeviceSeconds map[string]float64
	// Cost aggregates the abstract operations performed.
	Cost cl.Cost
	// Faults accounts the recovery actions the run performed; the zero
	// value means a fault-free run.
	Faults FaultStats
}

// FaultStats accounts the fault-recovery work of a mapping run: how many
// transient faults were retried in place, how much simulated backoff
// those retries cost, how many batches were halved after allocation
// failures, and how many reads migrated off failed or slow devices. The
// mappings themselves are unaffected by recovery — that is the
// fault-tolerance contract the determinism suite asserts — so these
// counters are the only place the turbulence shows.
type FaultStats struct {
	// Retries counts transient faults retried on the same device.
	Retries int
	// BackoffSimSec is the simulated backoff charged by those retries.
	BackoffSimSec float64
	// DegradedBatches counts batch halvings after allocation failures.
	DegradedBatches int
	// FailoverReads counts reads redistributed off permanently failed
	// devices.
	FailoverReads int
	// DeadlineReads counts reads migrated off devices that exceeded
	// their simulated-seconds deadline.
	DeadlineReads int
	// WatchdogFires counts enqueues the hang watchdog terminated
	// (cl.CommandTerminated) before recovery re-ran them.
	WatchdogFires int
	// FailedDevices lists devices lost permanently, in device order.
	FailedDevices []string
	// SkippedRecords counts input records a lenient-mode ingest dropped
	// (malformed or unmappably short) instead of aborting the run; the
	// host-side analogue of the device-fault counters above.
	SkippedRecords int
	// SkipReasons breaks SkippedRecords down by fastx skip reason.
	SkipReasons map[string]int
}

// Any reports whether any recovery action was taken.
func (f FaultStats) Any() bool {
	return f.Retries != 0 || f.DegradedBatches != 0 || f.FailoverReads != 0 ||
		f.DeadlineReads != 0 || f.WatchdogFires != 0 || len(f.FailedDevices) != 0 ||
		f.SkippedRecords != 0
}

// Add accumulates o into f (used when a run spans several Map calls,
// e.g. paired-end mates).
func (f *FaultStats) Add(o FaultStats) {
	f.Retries += o.Retries
	f.BackoffSimSec += o.BackoffSimSec
	f.DegradedBatches += o.DegradedBatches
	f.FailoverReads += o.FailoverReads
	f.DeadlineReads += o.DeadlineReads
	f.WatchdogFires += o.WatchdogFires
	f.FailedDevices = append(f.FailedDevices, o.FailedDevices...)
	f.SkippedRecords += o.SkippedRecords
	if len(o.SkipReasons) > 0 {
		if f.SkipReasons == nil {
			f.SkipReasons = make(map[string]int, len(o.SkipReasons))
		}
		for r, n := range o.SkipReasons {
			f.SkipReasons[r] += n
		}
	}
}

// MappedReads counts reads with at least one reported location.
func (r *Result) MappedReads() int {
	n := 0
	for _, ms := range r.Mappings {
		if len(ms) > 0 {
			n++
		}
	}
	return n
}

// TotalLocations counts all reported locations.
func (r *Result) TotalLocations() int {
	n := 0
	for _, ms := range r.Mappings {
		n += len(ms)
	}
	return n
}

// Mapper is a complete read mapper bound to a reference.
type Mapper interface {
	Name() string
	Map(reads [][]byte, opt Options) (*Result, error)
}

// Candidate is an unverified potential read start position on one strand.
type Candidate struct {
	Pos    int32 // putative leftmost read position (may be refined by ±δ)
	Strand byte
}

// DedupCandidates sorts candidates and collapses entries whose positions
// fall within tol of the previous kept entry on the same strand — seeds
// from the same alignment vote for positions that differ by the indel
// offset, so tol is normally δ.
//
//repute:hotpath
func DedupCandidates(cands []Candidate, tol int32) []Candidate {
	if len(cands) == 0 {
		return cands
	}
	slices.SortFunc(cands, func(a, b Candidate) int {
		if a.Strand != b.Strand {
			return int(a.Strand) - int(b.Strand)
		}
		return cmp.Compare(a.Pos, b.Pos)
	})
	out := cands[:1]
	for _, c := range cands[1:] {
		last := out[len(out)-1]
		if c.Strand == last.Strand && c.Pos-last.Pos <= tol {
			continue
		}
		out = append(out, c)
	}
	return out
}

// VerifyState carries reusable buffers across per-read verifications.
type VerifyState struct {
	window  []byte
	revComp []byte
}

// VerifyCost tallies the work a verification performed so kernels can
// charge it to their work item.
type VerifyCost struct {
	Windows     int64
	VerifyWords int64
	// Matched counts candidates whose window verified (the Myers scan
	// found a match within the budget); callers running behind the
	// pre-alignment filter derive false accepts as len(cands)-Matched.
	Matched int64
}

// Verify checks every candidate with the Myers bit-vector and returns the
// verified mappings (deduplicated by exact position and strand, sorted).
// reads on the reverse strand are verified against the reverse-complement
// pattern so the reported position stays in forward coordinates.
//
//repute:hotpath
func (vs *VerifyState) Verify(text dna.PackedSeq, read []byte, cands []Candidate, maxDist, maxLoc int) ([]Mapping, VerifyCost) {
	var out []Mapping
	var cost VerifyCost
	n := len(read)
	for _, c := range cands {
		pattern := read
		if c.Strand == Reverse {
			if cap(vs.revComp) < n {
				vs.revComp = make([]byte, n)
			}
			vs.revComp = vs.revComp[:n]
			dna.ReverseComplementInto(vs.revComp, read)
			pattern = vs.revComp
		}
		lo := int(c.Pos) - maxDist
		hi := int(c.Pos) + n + maxDist
		if lo < 0 {
			lo = 0
		}
		if hi > text.Len() {
			hi = text.Len()
		}
		if hi-lo < n-maxDist {
			continue
		}
		if cap(vs.window) < hi-lo {
			vs.window = make([]byte, hi-lo)
		}
		win := text.SliceInto(vs.window, lo, hi)
		cost.Windows++
		cost.VerifyWords += int64(align.WordCost(n) * len(win))
		m, ok := align.Verify(pattern, win, maxDist)
		if !ok {
			continue
		}
		cost.Matched++
		//pipevet:allow hotalloc -- verified mappings are the output, retained by the caller
		out = append(out, Mapping{
			Pos:    int32(lo + m.Start),
			Strand: c.Strand,
			Dist:   uint8(m.Dist),
		})
	}
	out = Finalize(out, false, maxLoc)
	return out, cost
}

// Finalize deduplicates, optionally keeps only the best stratum, sorts,
// and applies the first-n location cap.
//
//repute:hotpath
func Finalize(ms []Mapping, bestOnly bool, maxLoc int) []Mapping {
	if len(ms) == 0 {
		return ms
	}
	slices.SortFunc(ms, func(a, b Mapping) int {
		if a.Pos != b.Pos {
			return cmp.Compare(a.Pos, b.Pos)
		}
		if a.Strand != b.Strand {
			return int(a.Strand) - int(b.Strand)
		}
		return cmp.Compare(a.Dist, b.Dist)
	})
	dedup := ms[:1]
	for _, m := range ms[1:] {
		last := &dedup[len(dedup)-1]
		if m.Pos == last.Pos && m.Strand == last.Strand {
			if m.Dist < last.Dist {
				last.Dist = m.Dist
			}
			continue
		}
		dedup = append(dedup, m)
	}
	ms = dedup
	if bestOnly {
		best := ms[0].Dist
		for _, m := range ms[1:] {
			if m.Dist < best {
				best = m.Dist
			}
		}
		keep := ms[:0]
		for _, m := range ms {
			if m.Dist == best {
				keep = append(keep, m)
			}
		}
		ms = keep
	}
	if maxLoc > 0 && len(ms) > maxLoc {
		ms = ms[:maxLoc]
	}
	return ms
}

// MergeShards combines one read's mappings from several reference shards
// into the final report. Inputs must already be in global coordinates
// and filtered to each shard's ownership range, so the union has no
// cross-shard duplicates and the merge reduces to a deterministic
// re-finalize: sort by (Pos, Strand, Dist), re-apply the best-stratum
// policy across shards, and re-impose the first-n cap globally. The
// result is independent of shard count and of the order shards finished.
func MergeShards(parts [][]Mapping, bestOnly bool, maxLoc int) []Mapping {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	all := make([]Mapping, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	return Finalize(all, bestOnly, maxLoc)
}

// ValidateReads rejects reads no mapper here can handle, plus option
// values with no pipeline interpretation.
func ValidateReads(reads [][]byte, opt Options) error {
	switch opt.Prefilter {
	case "", PrefilterOff, PrefilterGateKeeper:
	default:
		return fmt.Errorf("mapper: unknown prefilter %q (valid: %s, %s)",
			opt.Prefilter, PrefilterOff, PrefilterGateKeeper)
	}
	for i, r := range reads {
		if len(r) == 0 {
			return fmt.Errorf("mapper: read %d is empty", i)
		}
		if len(r) <= opt.MaxErrors {
			return fmt.Errorf("mapper: read %d length %d <= max errors %d",
				i, len(r), opt.MaxErrors)
		}
		for j, c := range r {
			if c > 3 {
				return fmt.Errorf("mapper: read %d has invalid code %d at %d", i, c, j)
			}
		}
	}
	return nil
}
