package mapper

import (
	"testing"

	"repro/internal/dna"
)

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.MaxLocations != 1000 {
		t.Errorf("default MaxLocations = %d want 1000", o.MaxLocations)
	}
	o = Options{MaxLocations: 5, MaxErrors: -3}.WithDefaults()
	if o.MaxLocations != 5 || o.MaxErrors != 0 {
		t.Errorf("WithDefaults clobbered fields: %+v", o)
	}
}

func TestDedupCandidates(t *testing.T) {
	cands := []Candidate{
		{Pos: 100, Strand: Forward},
		{Pos: 102, Strand: Forward}, // within tol 3 of 100
		{Pos: 110, Strand: Forward},
		{Pos: 100, Strand: Reverse}, // different strand survives
		{Pos: 50, Strand: Forward},
	}
	got := DedupCandidates(cands, 3)
	if len(got) != 4 {
		t.Fatalf("got %d candidates want 4: %+v", len(got), got)
	}
	// Sorted by strand then pos; '+' < '-' in ASCII.
	if got[0].Pos != 50 || got[1].Pos != 100 || got[2].Pos != 110 || got[3].Strand != Reverse {
		t.Errorf("unexpected order: %+v", got)
	}
	if out := DedupCandidates(nil, 3); len(out) != 0 {
		t.Errorf("nil input gave %v", out)
	}
}

func TestFinalizeDedupAndBest(t *testing.T) {
	ms := []Mapping{
		{Pos: 10, Strand: Forward, Dist: 2},
		{Pos: 10, Strand: Forward, Dist: 1}, // duplicate pos: keep min dist
		{Pos: 20, Strand: Forward, Dist: 0},
		{Pos: 30, Strand: Reverse, Dist: 1},
	}
	all := Finalize(append([]Mapping(nil), ms...), false, 0)
	if len(all) != 3 {
		t.Fatalf("all: got %d want 3: %+v", len(all), all)
	}
	if all[0].Pos != 10 || all[0].Dist != 1 {
		t.Errorf("dedup kept wrong dist: %+v", all[0])
	}
	best := Finalize(append([]Mapping(nil), ms...), true, 0)
	if len(best) != 1 || best[0].Pos != 20 || best[0].Dist != 0 {
		t.Errorf("best stratum = %+v want pos 20 dist 0", best)
	}
	capped := Finalize(append([]Mapping(nil), ms...), false, 2)
	if len(capped) != 2 {
		t.Errorf("cap 2 gave %d", len(capped))
	}
	if out := Finalize(nil, true, 5); len(out) != 0 {
		t.Errorf("nil finalize gave %v", out)
	}
}

func TestVerifyStateFindsPlanted(t *testing.T) {
	refStr := "ACGTACGTTTGCAGCAATCGATCGGGCTATATCGCGGCAT"
	ref := dna.MustEncode(refStr)
	text := dna.Pack(ref)
	read := dna.MustEncode("GCAGCAATCG") // at position 10
	vs := &VerifyState{}
	ms, cost := vs.Verify(text, read, []Candidate{{Pos: 10, Strand: Forward}}, 1, 10)
	if len(ms) != 1 || ms[0].Pos != 10 || ms[0].Dist != 0 {
		t.Fatalf("verify = %+v want pos 10 dist 0", ms)
	}
	if cost.Windows != 1 || cost.VerifyWords <= 0 {
		t.Errorf("cost = %+v", cost)
	}
	// Reverse strand: a read that is the revcomp of ref[10:20] maps there
	// with Strand='-'.
	ms, _ = vs.Verify(text, dna.ReverseComplement(ref[10:20]), []Candidate{{Pos: 10, Strand: Reverse}}, 1, 10)
	if len(ms) != 1 || ms[0].Strand != Reverse {
		t.Fatalf("reverse verify = %+v", ms)
	}
}

func TestVerifyStateRejectsAndClamps(t *testing.T) {
	ref := dna.MustEncode("AAAAAAAAAAAAAAAAAAAA")
	text := dna.Pack(ref)
	read := dna.MustEncode("CCCCCCCC")
	vs := &VerifyState{}
	ms, _ := vs.Verify(text, read, []Candidate{{Pos: 5, Strand: Forward}}, 2, 10)
	if len(ms) != 0 {
		t.Errorf("hopeless candidate verified: %+v", ms)
	}
	// Candidate near the end: window clamps, nothing crashes.
	ms, _ = vs.Verify(text, dna.MustEncode("AAAA"), []Candidate{{Pos: 18, Strand: Forward}}, 1, 10)
	for _, m := range ms {
		if int(m.Pos) >= text.Len() {
			t.Errorf("mapping beyond text: %+v", m)
		}
	}
	// Candidate far past the end is skipped outright.
	ms, _ = vs.Verify(text, read, []Candidate{{Pos: 100, Strand: Forward}}, 1, 10)
	if len(ms) != 0 {
		t.Errorf("out-of-range candidate verified: %+v", ms)
	}
}

func TestValidateReads(t *testing.T) {
	good := [][]byte{dna.MustEncode("ACGTACGT")}
	if err := ValidateReads(good, Options{MaxErrors: 3}); err != nil {
		t.Errorf("valid reads rejected: %v", err)
	}
	if err := ValidateReads([][]byte{{}}, Options{}); err == nil {
		t.Error("empty read accepted")
	}
	if err := ValidateReads([][]byte{{0, 1}}, Options{MaxErrors: 2}); err == nil {
		t.Error("read shorter than error budget accepted")
	}
	if err := ValidateReads([][]byte{{0, 7, 1}}, Options{}); err == nil {
		t.Error("invalid code accepted")
	}
}

func TestResultCounters(t *testing.T) {
	r := &Result{Mappings: [][]Mapping{
		{{Pos: 1}, {Pos: 2}},
		nil,
		{{Pos: 3}},
	}}
	if r.MappedReads() != 2 {
		t.Errorf("MappedReads = %d want 2", r.MappedReads())
	}
	if r.TotalLocations() != 3 {
		t.Errorf("TotalLocations = %d want 3", r.TotalLocations())
	}
}

func TestFaultStatsSkippedRecords(t *testing.T) {
	var f FaultStats
	if f.Any() {
		t.Error("zero FaultStats must report Any() == false")
	}
	f.Add(FaultStats{SkippedRecords: 2, SkipReasons: map[string]int{"length-mismatch": 2}})
	f.Add(FaultStats{SkippedRecords: 2, SkipReasons: map[string]int{"length-mismatch": 1, "short-read": 1}})
	if !f.Any() {
		t.Error("skipped records must count as a fault for Any()")
	}
	if f.SkippedRecords != 4 {
		t.Errorf("SkippedRecords = %d, want 4", f.SkippedRecords)
	}
	if f.SkipReasons["length-mismatch"] != 3 || f.SkipReasons["short-read"] != 1 {
		t.Errorf("SkipReasons = %v", f.SkipReasons)
	}
	// Adding an empty stats value must not allocate a reasons map.
	var g FaultStats
	g.Add(FaultStats{})
	if g.SkipReasons != nil {
		t.Error("Add of empty stats allocated a SkipReasons map")
	}
}
