// Package bwamem reimplements the seeding/extension skeleton of BWA-MEM
// (Li & Durbin, Bioinformatics 2010; MEM variant 2013): greedy maximal
// exact matches found by FM-index backward extension from spaced anchors,
// candidate chaining by diagonal, banded-DP extension, and primary-only
// reporting. As a best-mapper that emits a single alignment per read it
// scores low on the paper's all-locations metric and high on any-best —
// the contrast Tables I and II show.
package bwamem

import (
	"fmt"
	"sort"

	"repro/internal/align"
	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

// minSeedLen mirrors BWA-MEM's default -k 19.
const minSeedLen = 19

// maxHitsPerSeed skips seeds more frequent than this (BWA's -c filter).
const maxHitsPerSeed = 200

// bandWidth mirrors BWA-MEM's default -w 100: every chain extension runs
// a banded Smith-Waterman of this half-width regardless of δ, which is
// why BWA's time is flat in δ but high in absolute terms (Table I).
const bandWidth = 100

// Mapper is a BWA-MEM-style best-mapper bound to a reference.
type Mapper struct {
	ix  *fmindex.Index
	dev *cl.Device
}

// New creates the mapper on a host device.
func New(ref []byte, dev *cl.Device) (*Mapper, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("bwamem: empty reference")
	}
	return &Mapper{ix: fmindex.Build(ref, fmindex.Options{}), dev: dev}, nil
}

// Name implements mapper.Mapper.
func (m *Mapper) Name() string { return "BWA-MEM" }

// seedsOf finds maximal exact matches by backward extension from anchor
// end positions spread over the read.
func (m *Mapper) seedsOf(pattern []byte, anchors int, itemCost *cl.Cost) []memSeed {
	n := len(pattern)
	var seeds []memSeed
	step := n / anchors
	if step < 1 {
		step = 1
	}
	for end := n; end >= minSeedLen; end -= step {
		lo, hi := m.ix.Start()
		start := end
		bestLo, bestHi, bestStart := 0, 0, end
		for start > 0 {
			nlo, nhi := m.ix.ExtendLeft(pattern[start-1], lo, hi)
			itemCost.FMSteps++
			if nlo >= nhi {
				break
			}
			lo, hi = nlo, nhi
			start--
			bestLo, bestHi, bestStart = lo, hi, start
		}
		if end-bestStart >= minSeedLen && bestHi > bestLo {
			seeds = append(seeds, memSeed{start: bestStart, end: end, lo: bestLo, hi: bestHi})
		}
	}
	return seeds
}

type memSeed struct {
	start, end int
	lo, hi     int
}

// Map implements mapper.Mapper.
func (m *Mapper) Map(reads [][]byte, opt mapper.Options) (*mapper.Result, error) {
	opt = opt.WithDefaults()
	if err := mapper.ValidateReads(reads, opt); err != nil {
		return nil, err
	}
	res := &mapper.Result{
		Mappings:      make([][]mapper.Mapping, len(reads)),
		DeviceSeconds: map[string]float64{},
	}
	if len(reads) == 0 {
		return res, nil
	}
	locSteps := m.ix.LocateSteps()
	text := m.ix.Text()

	// Per-worker private scratch (cl.Kernel.NewState contract): nothing
	// mutable is captured by the kernel closure.
	type kernelState struct {
		rev    []byte
		locs   []int32
		window []byte
		// seen holds the sorted diagonal-bucket keys already extended for
		// the current strand — the chain dedup that used to be a per-item
		// map, which the kernel contract forbids (kernelalloc).
		seen []int32
	}
	newState := func() any { return &kernelState{rev: make([]byte, len(reads[0]))} }
	body := func(wi *cl.WorkItem, state any) {
		st := state.(*kernelState)
		read := reads[wi.Global]
		n := len(read)
		var itemCost cl.Cost
		best := mapper.Mapping{Dist: uint8(opt.MaxErrors) + 1}
		haveBest := false
		for _, strand := range []byte{mapper.Forward, mapper.Reverse} {
			pattern := read
			if strand == mapper.Reverse {
				if cap(st.rev) < n {
					st.rev = make([]byte, n)
				}
				st.rev = st.rev[:n]
				dna.ReverseComplementInto(st.rev, read)
				pattern = st.rev
			}
			// BWA-MEM re-seeds roughly every ~20 bp along the read.
			seeds := m.seedsOf(pattern, n/20+1, &itemCost)
			st.seen = st.seen[:0]
			for _, sd := range seeds {
				c := sd.hi - sd.lo
				if c > maxHitsPerSeed {
					continue
				}
				st.locs = m.ix.Locate(sd.lo, sd.hi, 0, st.locs[:0])
				itemCost.LocateSteps += int64(float64(c) * (1 + locSteps))
				for _, p := range st.locs {
					cand := p - int32(sd.start)
					key := cand / int32(opt.MaxErrors+1)
					at := sort.Search(len(st.seen), func(i int) bool { return st.seen[i] >= key })
					if at < len(st.seen) && st.seen[at] == key {
						continue
					}
					st.seen = append(st.seen, 0)
					copy(st.seen[at+1:], st.seen[at:])
					st.seen[at] = key
					lo := int(cand) - opt.MaxErrors
					hi := int(cand) + n + opt.MaxErrors
					if lo < 0 {
						lo = 0
					}
					if hi > text.Len() {
						hi = text.Len()
					}
					if hi-lo < n-opt.MaxErrors {
						continue
					}
					if cap(st.window) < hi-lo {
						st.window = make([]byte, hi-lo)
					}
					win := text.SliceInto(st.window, lo, hi)
					// Full-bandwidth banded SW extension per chain.
					itemCost.DPCells += int64((2*bandWidth + 1) * n)
					end, dist := align.BandedDistance(pattern, win, opt.MaxErrors)
					if end < 0 {
						continue
					}
					if uint8(dist) < best.Dist {
						// Recover the start with a Myers reverse pass.
						itemCost.VerifyWords += int64(align.WordCost(n) * end)
						match, ok := align.Verify(pattern, win[:end], dist)
						if !ok {
							continue
						}
						best = mapper.Mapping{
							Pos:    int32(lo + match.Start),
							Strand: strand,
							Dist:   uint8(match.Dist),
						}
						haveBest = true
					}
				}
			}
		}
		itemCost.Items = 1
		wi.Charge(itemCost)
		if haveBest {
			res.Mappings[wi.Global] = []mapper.Mapping{best}
		}
	}

	busy, energy, cost, err := mapper.RunOnDevice(m.dev, "bwamem-map", len(reads), 2048, newState, body)
	if err != nil {
		return nil, err
	}
	res.SimSeconds = busy
	res.EnergyJ = energy
	res.Cost = cost
	res.DeviceSeconds[m.dev.Name] = busy
	return res, nil
}
