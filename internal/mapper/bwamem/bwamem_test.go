package bwamem

import (
	"math/rand"
	"testing"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
)

func randText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

func TestSinglePrimaryAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randText(rng, 20_000)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	var reads [][]byte
	for i := 0; i < 30; i++ {
		pos := rng.Intn(len(ref) - 100)
		reads = append(reads, ref[pos:pos+100])
	}
	res, err := m.Map(reads, mapper.Options{MaxErrors: 4, MaxLocations: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, ms := range res.Mappings {
		if len(ms) > 1 {
			t.Errorf("read %d: %d locations, best-mapper must report one", i, len(ms))
		}
	}
}

func TestFindsExactAndMutatedReads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randText(rng, 30_000)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		pos := rng.Intn(len(ref) - 150)
		read := append([]byte(nil), ref[pos:pos+150]...)
		nErr := rng.Intn(4)
		for e := 0; e < nErr; e++ {
			p := rng.Intn(len(read))
			read[p] = (read[p] + 1 + byte(rng.Intn(3))) % 4
		}
		strand := mapper.Forward
		if rng.Intn(2) == 1 {
			strand = mapper.Reverse
			read = dna.ReverseComplement(read)
		}
		res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 5, MaxLocations: 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, mp := range res.Mappings[0] {
			if mp.Strand == strand && mp.Pos >= int32(pos-5) && mp.Pos <= int32(pos+5) {
				hits++
			}
		}
	}
	// MEM seeding with >=19 bp exact stretches finds nearly all of these.
	if hits < trials*85/100 {
		t.Errorf("found %d/%d planted reads", hits, trials)
	}
}

func TestSeedsOfProducesMaximalMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := randText(rng, 10_000)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	pattern := ref[5000:5100]
	var cost cl.Cost
	seeds := m.seedsOf(pattern, 6, &cost)
	if len(seeds) == 0 {
		t.Fatal("no seeds for an exact substring")
	}
	for _, s := range seeds {
		if s.end-s.start < minSeedLen {
			t.Errorf("seed shorter than minSeedLen: %+v", s)
		}
		if s.hi <= s.lo {
			t.Errorf("empty seed interval: %+v", s)
		}
		// The seed substring must actually occur at the located interval.
		if got := m.ix.Count(pattern[s.start:s.end]); got != s.hi-s.lo {
			t.Errorf("seed count %d but interval size %d", got, s.hi-s.lo)
		}
	}
	if cost.FMSteps == 0 {
		t.Error("no FM steps charged")
	}
}

func TestReportedDistanceSound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := randText(rng, 15_000)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	pos := 3000
	read := append([]byte(nil), ref[pos:pos+100]...)
	read[10] = (read[10] + 1) % 4
	read[60] = (read[60] + 2) % 4
	res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 4, MaxLocations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mappings[0]) != 1 {
		t.Fatalf("mappings = %+v", res.Mappings[0])
	}
	mp := res.Mappings[0][0]
	if mp.Pos != int32(pos) || mp.Dist != 2 {
		t.Errorf("mapping = %+v want pos %d dist 2", mp, pos)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, cl.SystemOneHost()); err == nil {
		t.Error("empty reference accepted")
	}
}
