package mapper

import "repro/internal/cl"

// RunOnDevice executes one per-read kernel over n work items on a single
// device and returns the simulated timing, energy and cost. The baseline
// mappers (threaded host programs in the paper) all use this single-queue
// path; only REPUTE and CORAL split work across devices.
//
// newState builds one host worker's private scratch (cl.Kernel.NewState);
// body receives it on every call and must keep all mutable working
// memory there, since the runtime may execute work items on several
// workers at once. Pass nil for a stateless kernel.
func RunOnDevice(dev *cl.Device, kernelName string, n int, privateBytes int64, newState func() any, body func(*cl.WorkItem, any)) (simSeconds, energyJ float64, cost cl.Cost, err error) {
	q := cl.NewQueue(dev)
	k := &cl.Kernel{Name: kernelName, PrivateBytesPerItem: privateBytes, NewState: newState, Body: body}
	if _, err := q.EnqueueNDRange(k, n); err != nil {
		return 0, 0, cl.Cost{}, err
	}
	busy, total := q.Finish()
	return busy, q.EnergyJ(), total, nil
}
