package mapper

import "repro/internal/cl"

// RunOnDevice executes one per-read kernel over n work items on a single
// device and returns the simulated timing, energy and cost. The baseline
// mappers (threaded host programs in the paper) all use this single-queue
// path; only REPUTE and CORAL split work across devices.
func RunOnDevice(dev *cl.Device, kernelName string, n int, privateBytes int64, body func(*cl.WorkItem)) (simSeconds, energyJ float64, cost cl.Cost, err error) {
	q := cl.NewQueue(dev)
	k := &cl.Kernel{Name: kernelName, PrivateBytesPerItem: privateBytes, Body: body}
	if _, err := q.EnqueueNDRange(k, n); err != nil {
		return 0, 0, cl.Cost{}, err
	}
	busy, total := q.Finish()
	return busy, q.EnergyJ(), total, nil
}
