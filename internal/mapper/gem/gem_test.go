package gem

import (
	"math/rand"
	"testing"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
)

func randText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

func TestRegionsPartitionTheRead(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randText(rng, 20_000)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	pattern := ref[8000:8100]
	var cost cl.Cost
	regs := m.regionsOf(pattern, &cost)
	if len(regs) == 0 {
		t.Fatal("no regions")
	}
	// Regions are produced right-to-left and must tile [0, len(pattern)).
	end := len(pattern)
	for _, r := range regs {
		if r.end != end {
			t.Fatalf("region %+v does not abut previous end %d", r, end)
		}
		if r.start >= r.end {
			t.Fatalf("empty region %+v", r)
		}
		end = r.start
	}
	if end != 0 {
		t.Fatalf("regions do not reach the read start: %d", end)
	}
	if cost.FMSteps == 0 {
		t.Error("no FM steps charged")
	}
}

func TestAdaptiveRegionsShorterInUniqueSequence(t *testing.T) {
	// In random (unique) sequence, intervals shrink fast, so regions cut
	// early; in a high-copy repeat they must run longer.
	rng := rand.New(rand.NewSource(2))
	motif := randText(rng, 400)
	var ref []byte
	for i := 0; i < 50; i++ {
		ref = append(ref, motif...)
	}
	ref = append(ref, randText(rng, 20_000)...)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	var cost cl.Cost
	uniqueRegs := m.regionsOf(ref[len(ref)-5_000:len(ref)-4_900], &cost)
	repeatRegs := m.regionsOf(motif[:100], &cost)
	avgLen := func(rs []region) float64 {
		total := 0
		for _, r := range rs {
			total += r.end - r.start
		}
		return float64(total) / float64(len(rs))
	}
	if avgLen(repeatRegs) <= avgLen(uniqueRegs) {
		t.Errorf("repeat regions (%.1f) not longer than unique regions (%.1f)",
			avgLen(repeatRegs), avgLen(uniqueRegs))
	}
}

func TestBestStratumAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := randText(rng, 15_000)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	pos := 6000
	read := append([]byte(nil), ref[pos:pos+100]...)
	read[30] = (read[30] + 1) % 4
	res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 4, MaxLocations: 100})
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Mappings[0]
	if len(ms) == 0 || len(ms) > bestStratumCap {
		t.Fatalf("mappings = %+v", ms)
	}
	for _, mp := range ms {
		if mp.Dist != ms[0].Dist {
			t.Errorf("mixed strata: %+v", ms)
		}
	}
	if ms[0].Pos != int32(pos) || ms[0].Dist != 1 {
		t.Errorf("best = %+v want pos %d dist 1", ms[0], pos)
	}
}

func TestReverseStrand(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := randText(rng, 12_000)
	m, err := New(ref, cl.SystemOneHost())
	if err != nil {
		t.Fatal(err)
	}
	pos := 2000
	read := dna.ReverseComplement(ref[pos : pos+120])
	res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 3, MaxLocations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mappings[0]) == 0 || res.Mappings[0][0].Strand != mapper.Reverse ||
		res.Mappings[0][0].Pos != int32(pos) {
		t.Fatalf("reverse mappings = %+v", res.Mappings[0])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, cl.SystemOneHost()); err == nil {
		t.Error("empty reference accepted")
	}
}
