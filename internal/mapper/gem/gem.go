// Package gem reimplements the filtration core of the GEM mapper
// (Marco-Sola et al., Nature Methods 2012): adaptive region filtration —
// scanning the read and cutting a seed as soon as its FM-index interval
// shrinks below a threshold, so seed lengths adapt to local repetitiveness
// — followed by Myers verification and best-stratum reporting.
package gem

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

// regionThreshold is the interval size at which an adaptive region is cut
// (GEM's region granularity).
const regionThreshold = 20

// bestStratumCap bounds the co-optimal locations reported per read,
// modelling GEM's default best+subdominant output limits.
const bestStratumCap = 5

// regionMaxHits discards regions that stayed too frequent even at full
// length (reads inside unresolvable repeats): GEM treats such regions as
// non-filtering rather than flooding verification with their hits.
const regionMaxHits = 256

// Mapper is a GEM-style best-mapper bound to a reference.
type Mapper struct {
	ix  *fmindex.Index
	dev *cl.Device
}

// New creates the mapper on a host device.
func New(ref []byte, dev *cl.Device) (*Mapper, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("gem: empty reference")
	}
	return &Mapper{ix: fmindex.Build(ref, fmindex.Options{}), dev: dev}, nil
}

// Name implements mapper.Mapper.
func (m *Mapper) Name() string { return "GEM" }

type region struct {
	start, end int
	lo, hi     int
}

// regionsOf cuts the pattern into adaptive regions right-to-left (the
// FM index extends leftwards): each region grows until its interval is
// at most regionThreshold or empties.
func (m *Mapper) regionsOf(pattern []byte, itemCost *cl.Cost) []region {
	var regs []region
	end := len(pattern)
	for end > 0 {
		lo, hi := m.ix.Start()
		start := end
		lastLo, lastHi := lo, hi
		for start > 0 {
			nlo, nhi := m.ix.ExtendLeft(pattern[start-1], lo, hi)
			itemCost.FMSteps++
			start--
			if nlo >= nhi {
				lastLo, lastHi = nlo, nhi
				break
			}
			lo, hi = nlo, nhi
			lastLo, lastHi = lo, hi
			if hi-lo <= regionThreshold {
				break
			}
		}
		regs = append(regs, region{start: start, end: end, lo: lastLo, hi: lastHi})
		end = start
	}
	return regs
}

// Map implements mapper.Mapper.
func (m *Mapper) Map(reads [][]byte, opt mapper.Options) (*mapper.Result, error) {
	opt = opt.WithDefaults()
	if err := mapper.ValidateReads(reads, opt); err != nil {
		return nil, err
	}
	res := &mapper.Result{
		Mappings:      make([][]mapper.Mapping, len(reads)),
		DeviceSeconds: map[string]float64{},
	}
	if len(reads) == 0 {
		return res, nil
	}
	locSteps := m.ix.LocateSteps()
	maxCand := 2 * opt.MaxLocations

	// Per-worker private scratch (cl.Kernel.NewState contract): nothing
	// mutable is captured by the kernel closure.
	type kernelState struct {
		vs    mapper.VerifyState
		rev   []byte
		cands []mapper.Candidate
		locs  []int32
	}
	newState := func() any { return &kernelState{rev: make([]byte, len(reads[0]))} }
	body := func(wi *cl.WorkItem, state any) {
		st := state.(*kernelState)
		read := reads[wi.Global]
		var itemCost cl.Cost
		st.cands = st.cands[:0]
		for _, strand := range []byte{mapper.Forward, mapper.Reverse} {
			pattern := read
			if strand == mapper.Reverse {
				if cap(st.rev) < len(read) {
					st.rev = make([]byte, len(read))
				}
				st.rev = st.rev[:len(read)]
				dna.ReverseComplementInto(st.rev, read)
				pattern = st.rev
			}
			regs := m.regionsOf(pattern, &itemCost)
			remaining := maxCand
			for _, r := range regs {
				c := r.hi - r.lo
				if c <= 0 || c > regionMaxHits || remaining <= 0 {
					continue
				}
				if c > remaining {
					c = remaining
				}
				st.locs = m.ix.Locate(r.lo, r.lo+c, 0, st.locs[:0])
				itemCost.LocateSteps += int64(float64(c) * (1 + locSteps))
				for _, p := range st.locs {
					st.cands = append(st.cands, mapper.Candidate{Pos: p - int32(r.start), Strand: strand})
				}
				remaining -= c
			}
		}
		dd := mapper.DedupCandidates(st.cands, int32(opt.MaxErrors))
		ms, vc := st.vs.Verify(m.ix.Text(), read, dd, opt.MaxErrors, 0)
		itemCost.VerifyWords += vc.VerifyWords
		itemCost.Items = 1
		wi.Charge(itemCost)
		// GEM reports the best stratum, capped like the real tool's
		// best+subdominant output.
		maxLoc := opt.MaxLocations
		if maxLoc > bestStratumCap {
			maxLoc = bestStratumCap
		}
		res.Mappings[wi.Global] = mapper.Finalize(ms, true, maxLoc)
	}

	busy, energy, cost, err := mapper.RunOnDevice(m.dev, "gem-map", len(reads), 512, newState, body)
	if err != nil {
		return nil, err
	}
	res.SimSeconds = busy
	res.EnergyJ = energy
	res.Cost = cost
	res.DeviceSeconds[m.dev.Name] = busy
	return res, nil
}
