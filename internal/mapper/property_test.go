package mapper

import (
	"testing"
	"testing/quick"
)

// genCandidates decodes arbitrary bytes into a candidate list.
func genCandidates(raw []byte) []Candidate {
	var out []Candidate
	for i := 0; i+2 < len(raw); i += 3 {
		pos := int32(raw[i])<<8 | int32(raw[i+1])
		strand := Forward
		if raw[i+2]&1 == 1 {
			strand = Reverse
		}
		out = append(out, Candidate{Pos: pos, Strand: strand})
	}
	return out
}

func TestDedupCandidatesProperties(t *testing.T) {
	f := func(raw []byte, tolRaw uint8) bool {
		tol := int32(tolRaw % 10)
		in := genCandidates(raw)
		orig := append([]Candidate(nil), in...)
		out := DedupCandidates(in, tol)
		// Sorted by (strand, pos) and gap > tol within a strand.
		for i := 1; i < len(out); i++ {
			a, b := out[i-1], out[i]
			if a.Strand > b.Strand || (a.Strand == b.Strand && b.Pos < a.Pos) {
				return false
			}
			if a.Strand == b.Strand && b.Pos-a.Pos <= tol {
				return false
			}
		}
		// Every input candidate is within tol of some kept candidate on
		// its strand (coverage: nothing is lost beyond merging).
		for _, c := range orig {
			ok := false
			for _, k := range out {
				if k.Strand == c.Strand && c.Pos >= k.Pos && c.Pos-k.Pos <= tol {
					ok = true
					break
				}
				if k.Strand == c.Strand && k.Pos == c.Pos {
					ok = true
					break
				}
			}
			if !ok && len(orig) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func genMappings(raw []byte) []Mapping {
	var out []Mapping
	for i := 0; i+2 < len(raw); i += 3 {
		strand := Forward
		if raw[i+2]&1 == 1 {
			strand = Reverse
		}
		out = append(out, Mapping{
			Pos:    int32(raw[i]),
			Strand: strand,
			Dist:   raw[i+1] % 8,
		})
	}
	return out
}

func TestFinalizeProperties(t *testing.T) {
	f := func(raw []byte, bestOnly bool, capRaw uint8) bool {
		in := genMappings(raw)
		maxLoc := int(capRaw % 20)
		out := Finalize(append([]Mapping(nil), in...), bestOnly, maxLoc)
		if maxLoc > 0 && len(out) > maxLoc {
			return false
		}
		for i := 1; i < len(out); i++ {
			a, b := out[i-1], out[i]
			if a.Pos > b.Pos {
				return false
			}
			if a.Pos == b.Pos && a.Strand == b.Strand {
				return false // duplicates must be merged
			}
		}
		if bestOnly && len(out) > 0 {
			best := out[0].Dist
			for _, m := range out {
				if m.Dist < best {
					best = m.Dist
				}
			}
			for _, m := range out {
				if m.Dist != best {
					return false
				}
			}
		}
		// Every output mapping must stem from an input with the same
		// (pos, strand) and a dist no smaller than reported.
		for _, m := range out {
			found := false
			for _, in1 := range in {
				if in1.Pos == m.Pos && in1.Strand == m.Strand && in1.Dist >= m.Dist {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
