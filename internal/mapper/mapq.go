package mapper

// EstimateMAPQ derives a Phred-scaled mapping quality for a read's
// primary (first) location from its reported location list, with the
// usual best-mapper semantics:
//
//   - no locations → 0;
//   - ties in the best stratum → 0 (placement is a coin toss);
//   - a unique best location scores higher the further away the
//     second-best stratum is, saturating at 42 (as BWA/Bowtie2 do);
//   - heavy multi-mapping outside the best stratum still drags the
//     quality down logarithmically.
//
// The mappings must be Finalize output (deduplicated); order within the
// list does not matter.
func EstimateMAPQ(ms []Mapping) uint8 {
	if len(ms) == 0 {
		return 0
	}
	best := ms[0].Dist
	for _, m := range ms[1:] {
		if m.Dist < best {
			best = m.Dist
		}
	}
	bestCount := 0
	secondBest := uint8(255)
	for _, m := range ms {
		if m.Dist == best {
			bestCount++
		} else if m.Dist < secondBest {
			secondBest = m.Dist
		}
	}
	if bestCount > 1 {
		return 0
	}
	if secondBest == 255 {
		// Unique location with no competitor at all.
		return 42
	}
	gap := int(secondBest) - int(best)
	q := 10 + 8*gap
	// Many near-miss locations lower confidence.
	for n := len(ms); n > 2; n /= 2 {
		q -= 2
	}
	if q < 1 {
		q = 1
	}
	if q > 42 {
		q = 42
	}
	return uint8(q)
}
