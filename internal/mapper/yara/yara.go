// Package yara reimplements the core of Yara (Siragusa, FU Berlin 2015):
// FM-index pigeonhole filtration with uniform exact seeds and stratified
// reporting. In best mode (how the paper configures it) only the lowest
// observed edit-distance stratum is reported — which is why Yara scores a
// few percent under the paper's §III-A all-locations metric and ~100%
// under the §III-B any-best metric.
package yara

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

// bestStratumCap models Yara's strata-count output limit: in best mode at
// most this many co-optimal locations are emitted per read, as the real
// tool's stratum limits do. Multi-mapping reads therefore cover only a
// sliver of the gold standard's (up to 100) locations — the §III-A
// behaviour Table I shows.
const bestStratumCap = 5

// Mapper is a Yara-style mapper bound to a reference.
type Mapper struct {
	ix   *fmindex.Index
	dev  *cl.Device
	best bool
}

// New creates the mapper. best selects the paper's best-mapper
// configuration; pass false to make Yara report every stratum.
func New(ref []byte, dev *cl.Device, best bool) (*Mapper, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("yara: empty reference")
	}
	return &Mapper{ix: fmindex.Build(ref, fmindex.Options{}), dev: dev, best: best}, nil
}

// Name implements mapper.Mapper.
func (m *Mapper) Name() string { return "Yara" }

// Map implements mapper.Mapper.
func (m *Mapper) Map(reads [][]byte, opt mapper.Options) (*mapper.Result, error) {
	opt = opt.WithDefaults()
	if err := mapper.ValidateReads(reads, opt); err != nil {
		return nil, err
	}
	res := &mapper.Result{
		Mappings:      make([][]mapper.Mapping, len(reads)),
		DeviceSeconds: map[string]float64{},
	}
	if len(reads) == 0 {
		return res, nil
	}
	// Yara's filtration searches *approximate* seeds: the read is cut
	// into a fixed small number of pieces and each is searched in the
	// FM-index allowing seedErr substitutions, with seedErr chosen so the
	// pigeonhole guarantee holds: δ errors over s pieces leave one piece
	// with ≤ floor(δ/s) errors. At δ ≥ 2s the per-seed budget reaches 2
	// and the backtracking search explodes — Table I's n=150 column where
	// Yara runs 38 → 321 s and REPUTE's 13× headline comes from.
	const nSeeds = 3
	seedErr := opt.MaxErrors / nSeeds
	locSteps := m.ix.LocateSteps()
	// Yara enumerates every approximate-seed occurrence (it reports all
	// strata), so its candidate budget is generous — this is what blows
	// its time up at high δ on repetitive references.
	maxCand := 8 * opt.MaxLocations

	// Per-worker private scratch (cl.Kernel.NewState contract): nothing
	// mutable is captured by the kernel closure.
	type kernelState struct {
		vs    mapper.VerifyState
		rev   []byte
		cands []mapper.Candidate
		locs  []int32
	}
	newState := func() any { return &kernelState{rev: make([]byte, len(reads[0]))} }
	body := func(wi *cl.WorkItem, state any) {
		st := state.(*kernelState)
		read := reads[wi.Global]
		n := len(read)
		var itemCost cl.Cost
		st.cands = st.cands[:0]
		for _, strand := range []byte{mapper.Forward, mapper.Reverse} {
			pattern := read
			if strand == mapper.Reverse {
				if cap(st.rev) < n {
					st.rev = make([]byte, n)
				}
				st.rev = st.rev[:n]
				dna.ReverseComplementInto(st.rev, read)
				pattern = st.rev
			}
			remaining := maxCand
			for si := 0; si < nSeeds && remaining > 0; si++ {
				start := si * n / nSeeds
				end := (si + 1) * n / nSeeds
				steps := m.ix.RangeApprox(pattern[start:end], seedErr, func(h fmindex.ApproxHit) {
					if remaining <= 0 {
						return
					}
					c := h.Hi - h.Lo
					if c > remaining {
						c = remaining
					}
					st.locs = m.ix.Locate(h.Lo, h.Lo+c, 0, st.locs[:0])
					itemCost.LocateSteps += int64(float64(c) * (1 + locSteps))
					for _, p := range st.locs {
						st.cands = append(st.cands, mapper.Candidate{Pos: p - int32(start), Strand: strand})
					}
					remaining -= c
				})
				itemCost.FMSteps += int64(steps)
			}
		}
		dd := mapper.DedupCandidates(st.cands, int32(opt.MaxErrors))
		ms, vc := st.vs.Verify(m.ix.Text(), read, dd, opt.MaxErrors, 0)
		itemCost.VerifyWords += vc.VerifyWords
		itemCost.Items = 1
		wi.Charge(itemCost)
		maxLoc := opt.MaxLocations
		if m.best || opt.Best {
			if maxLoc > bestStratumCap {
				maxLoc = bestStratumCap
			}
		}
		res.Mappings[wi.Global] = mapper.Finalize(ms, m.best || opt.Best, maxLoc)
	}

	busy, energy, cost, err := mapper.RunOnDevice(m.dev, "yara-map", len(reads), 512, newState, body)
	if err != nil {
		return nil, err
	}
	res.SimSeconds = busy
	res.EnergyJ = energy
	res.Cost = cost
	res.DeviceSeconds[m.dev.Name] = busy
	return res, nil
}
