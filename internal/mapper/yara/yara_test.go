package yara

import (
	"math/rand"
	"testing"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
)

func randText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

func TestBestModeReportsOnlyBestStratum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randText(rng, 20_000)
	m, err := New(ref, cl.SystemOneHost(), true)
	if err != nil {
		t.Fatal(err)
	}
	pos := 7777
	read := append([]byte(nil), ref[pos:pos+100]...)
	read[50] = (read[50] + 1) % 4 // one substitution: best stratum is dist 1
	res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 4, MaxLocations: 100})
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Mappings[0]
	if len(ms) == 0 {
		t.Fatal("read not mapped")
	}
	for _, mp := range ms {
		if mp.Dist != ms[0].Dist {
			t.Errorf("mixed strata in best mode: %+v", ms)
		}
	}
	if ms[0].Pos != int32(pos) || ms[0].Dist != 1 {
		t.Errorf("best mapping = %+v want pos %d dist 1", ms[0], pos)
	}
}

func TestBestStratumCapApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	motif := randText(rng, 150)
	var ref []byte
	for i := 0; i < 30; i++ { // 30 identical copies: stratum would be 30
		ref = append(ref, motif...)
		ref = append(ref, randText(rng, 40)...)
	}
	m, err := New(ref, cl.SystemOneHost(), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Map([][]byte{motif[:100]}, mapper.Options{MaxErrors: 3, MaxLocations: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Mappings[0]); got != bestStratumCap {
		t.Errorf("reported %d locations want stratum cap %d", got, bestStratumCap)
	}
}

func TestApproximateSeedsFindHighErrorReads(t *testing.T) {
	// With δ substitutions spread evenly, plain exact δ/2+1 seeds would
	// fail, but 1-error approximate seeds must succeed (pigeonhole).
	rng := rand.New(rand.NewSource(3))
	ref := randText(rng, 30_000)
	m, err := New(ref, cl.SystemOneHost(), true)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		const d = 6
		pos := rng.Intn(len(ref) - 150)
		read := append([]byte(nil), ref[pos:pos+150]...)
		for e := 0; e < d; e++ {
			p := e*25 + rng.Intn(20)
			read[p] = (read[p] + 1 + byte(rng.Intn(3))) % 4
		}
		res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: d, MaxLocations: 100})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, mp := range res.Mappings[0] {
			// Equal-cost alignments can shift the reported start by a
			// base or two; accept a small neighbourhood.
			if mp.Strand == mapper.Forward && mp.Pos >= int32(pos-2) && mp.Pos <= int32(pos+2) {
				found = true
			}
		}
		if !found {
			misses++
		}
	}
	// ceil((6+1)/2)=4 seeds with <=1 error each tolerate 6 errors by
	// pigeonhole, so every planted read must be found.
	if misses > 0 {
		t.Errorf("%d/%d planted reads missed", misses, trials)
	}
}

func TestCostGrowsWithErrors(t *testing.T) {
	// Approximate-seed backtracking is what makes Yara's time climb with
	// δ (the Table I trend REPUTE's 13x claim rests on).
	rng := rand.New(rand.NewSource(4))
	ref := randText(rng, 40_000)
	m, err := New(ref, cl.SystemOneHost(), true)
	if err != nil {
		t.Fatal(err)
	}
	var reads [][]byte
	for i := 0; i < 30; i++ {
		pos := rng.Intn(len(ref) - 150)
		reads = append(reads, ref[pos:pos+150])
	}
	res3, err := m.Map(reads, mapper.Options{MaxErrors: 3, MaxLocations: 100})
	if err != nil {
		t.Fatal(err)
	}
	res7, err := m.Map(reads, mapper.Options{MaxErrors: 7, MaxLocations: 100})
	if err != nil {
		t.Fatal(err)
	}
	// δ=7 moves the per-seed budget from 1 to 2 substitutions: the
	// backtracking tree explodes, not just grows.
	if res7.Cost.FMSteps < 5*res3.Cost.FMSteps {
		t.Errorf("FM steps δ=7 (%d) not ≥5x δ=3 (%d)", res7.Cost.FMSteps, res3.Cost.FMSteps)
	}
	if res7.SimSeconds <= res3.SimSeconds {
		t.Errorf("time did not grow with δ: %v vs %v", res7.SimSeconds, res3.SimSeconds)
	}
}

func TestReverseStrand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randText(rng, 10_000)
	m, err := New(ref, cl.SystemOneHost(), true)
	if err != nil {
		t.Fatal(err)
	}
	pos := 2500
	read := dna.ReverseComplement(ref[pos : pos+100])
	res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 3, MaxLocations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mappings[0]) == 0 || res.Mappings[0][0].Strand != mapper.Reverse {
		t.Fatalf("reverse read mappings = %+v", res.Mappings[0])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, cl.SystemOneHost(), true); err == nil {
		t.Error("empty reference accepted")
	}
}
