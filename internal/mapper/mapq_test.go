package mapper

import "testing"

func TestEstimateMAPQ(t *testing.T) {
	cases := []struct {
		name string
		ms   []Mapping
		want func(q uint8) bool
		desc string
	}{
		{"unmapped", nil, func(q uint8) bool { return q == 0 }, "0"},
		{"unique", []Mapping{fm(10, Forward, 1)},
			func(q uint8) bool { return q == 42 }, "42"},
		{"tied best", []Mapping{fm(10, Forward, 1), fm(900, Forward, 1)},
			func(q uint8) bool { return q == 0 }, "0"},
		{"clear winner", []Mapping{fm(10, Forward, 0), fm(900, Forward, 4)},
			func(q uint8) bool { return q >= 30 && q <= 42 }, "30..42"},
		{"narrow winner", []Mapping{fm(10, Forward, 2), fm(900, Forward, 3)},
			func(q uint8) bool { return q >= 10 && q < 30 }, "10..29"},
	}
	for _, tc := range cases {
		if q := EstimateMAPQ(tc.ms); !tc.want(q) {
			t.Errorf("%s: MAPQ = %d want %s", tc.name, q, tc.desc)
		}
	}
}

func TestEstimateMAPQMonotonicInGap(t *testing.T) {
	prev := uint8(0)
	for gap := uint8(1); gap <= 6; gap++ {
		ms := []Mapping{fm(10, Forward, 0), fm(900, Forward, gap)}
		q := EstimateMAPQ(ms)
		if q < prev {
			t.Errorf("gap %d: MAPQ %d dropped below %d", gap, q, prev)
		}
		prev = q
	}
}

func TestEstimateMAPQMultiMappingPenalty(t *testing.T) {
	few := []Mapping{fm(10, Forward, 0), fm(900, Forward, 2)}
	var many []Mapping
	many = append(many, fm(10, Forward, 0))
	for i := int32(1); i <= 16; i++ {
		many = append(many, fm(1000*i, Forward, 2))
	}
	if EstimateMAPQ(many) >= EstimateMAPQ(few) {
		t.Errorf("16 near-misses (%d) not below 1 near-miss (%d)",
			EstimateMAPQ(many), EstimateMAPQ(few))
	}
}
