package razers3

import (
	"math/rand"
	"testing"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
)

func randText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

func mutateK(rng *rand.Rand, s []byte, k int) []byte {
	out := append([]byte(nil), s...)
	for e := 0; e < k; e++ {
		p := rng.Intn(len(out))
		switch rng.Intn(3) {
		case 0:
			out[p] = (out[p] + 1 + byte(rng.Intn(3))) % 4
		case 1:
			out = append(out[:p], append([]byte{byte(rng.Intn(4))}, out[p:]...)...)
		default:
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, cl.SystemOneHost(), 0); err == nil {
		t.Error("empty reference accepted")
	}
	m, err := New(dna.MustEncode("ACGTACGTACGT"), cl.SystemOneHost(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if m.maxQ > 12 {
		t.Errorf("maxQ %d not clamped", m.maxQ)
	}
}

func TestChooseQThreshold(t *testing.T) {
	m, err := New(dna.MustEncode("ACGT"), cl.SystemOneHost(), 11)
	if err != nil {
		t.Fatal(err)
	}
	q, thr := m.chooseQ(100, 3)
	if q != 11 || thr != 100+1-4*11 {
		t.Errorf("chooseQ(100,3) = %d,%d", q, thr)
	}
	// Very high error loads force a smaller q so the threshold stays >= 2.
	q, thr = m.chooseQ(100, 20)
	if thr < 2 || q*(20+1) > 100-1 {
		t.Errorf("chooseQ(100,20) = %d,%d violates the lemma bound", q, thr)
	}
}

func TestFullSensitivityPlantedEdits(t *testing.T) {
	// The q-gram lemma filter must be lossless: every planted location
	// within the edit budget is reported, including indel cases.
	rng := rand.New(rand.NewSource(1))
	ref := randText(rng, 30_000)
	m, err := New(ref, cl.SystemOneHost(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var reads [][]byte
	var origins []int32
	var strands []byte
	for i := 0; i < 60; i++ {
		pos := rng.Intn(len(ref) - 130)
		read := mutateK(rng, ref[pos:pos+100], rng.Intn(4))
		if len(read) > 100 {
			read = read[:100]
		}
		strand := byte('+')
		if rng.Intn(2) == 1 {
			strand = '-'
			read = dna.ReverseComplement(read)
		}
		reads = append(reads, read)
		origins = append(origins, int32(pos))
		strands = append(strands, strand)
	}
	res, err := m.Map(reads, mapper.Options{MaxErrors: 5, MaxLocations: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		found := false
		for _, mp := range res.Mappings[i] {
			if mp.Strand == strands[i] && abs32(mp.Pos-origins[i]) <= 5 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("read %d: planted origin %d%c not reported", i, origins[i], strands[i])
		}
	}
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLocationCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	motif := randText(rng, 120)
	var ref []byte
	for i := 0; i < 40; i++ { // 40 exact copies: heavy multi-mapping
		ref = append(ref, motif...)
		ref = append(ref, randText(rng, 30)...)
	}
	m, err := New(ref, cl.SystemOneHost(), 8)
	if err != nil {
		t.Fatal(err)
	}
	read := append([]byte(nil), motif[:100]...)
	res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 3, MaxLocations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mappings[0]) != 10 {
		t.Errorf("cap 10 produced %d locations", len(res.Mappings[0]))
	}
}

func TestTimeGrowsWithErrorBudget(t *testing.T) {
	// Lower q-gram thresholds mean more candidates: simulated time must
	// not shrink as δ rises (Table I's RazerS3 column trend).
	rng := rand.New(rand.NewSource(3))
	ref := randText(rng, 40_000)
	m, err := New(ref, cl.SystemOneHost(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var reads [][]byte
	for i := 0; i < 50; i++ {
		pos := rng.Intn(len(ref) - 100)
		reads = append(reads, ref[pos:pos+100])
	}
	prev := -1.0
	for _, d := range []int{3, 5, 7} {
		res, err := m.Map(reads, mapper.Options{MaxErrors: d, MaxLocations: 100})
		if err != nil {
			t.Fatal(err)
		}
		if res.SimSeconds < prev {
			t.Errorf("δ=%d time %v below δ-2 time %v", d, res.SimSeconds, prev)
		}
		prev = res.SimSeconds
	}
}

func TestEmptyReadSet(t *testing.T) {
	m, err := New(dna.MustEncode("ACGTACGTACGTACGTACGT"), cl.SystemOneHost(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Map(nil, mapper.Options{MaxErrors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mappings) != 0 {
		t.Errorf("empty set produced %d mapping lists", len(res.Mappings))
	}
}
