// Package razers3 reimplements the algorithmic core of RazerS 3 (Weese,
// Holtgrewe & Reinert, Bioinformatics 2012): a q-gram-lemma counting
// filter over a hash index with SWIFT-style diagonal binning, followed by
// Myers bit-vector verification. It is a fully sensitive all-mapper — for
// the configured (n, δ, q) every location within edit distance δ is
// reported (up to the location cap) — which is why both the paper and
// this reproduction use it as the accuracy gold standard.
package razers3

import (
	"fmt"
	"sort"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
	"repro/internal/qgram"
)

// Mapper is a RazerS3-style all-mapper bound to a reference.
type Mapper struct {
	ref     []byte
	text    dna.PackedSeq
	dev     *cl.Device
	maxQ    int
	indexes map[int]*qgram.Index // per gram length, built on demand
}

// New creates the mapper on a host device. maxQ caps the gram length
// (0 = 11, a chromosome-scale default; tests use smaller references and
// smaller q emerges automatically from the lemma bound).
func New(ref []byte, dev *cl.Device, maxQ int) (*Mapper, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("razers3: empty reference")
	}
	if maxQ <= 0 {
		maxQ = 11
	}
	if maxQ > qgram.MaxQ {
		maxQ = qgram.MaxQ
	}
	return &Mapper{
		ref:     ref,
		text:    dna.Pack(ref),
		dev:     dev,
		maxQ:    maxQ,
		indexes: map[int]*qgram.Index{},
	}, nil
}

// Name implements mapper.Mapper.
func (m *Mapper) Name() string { return "RazerS3" }

// chooseQ picks the largest usable gram length for (n, δ): the q-gram
// lemma threshold t = n+1-(δ+1)q must stay comfortably positive.
func (m *Mapper) chooseQ(readLen, errors int) (q, t int) {
	q = m.maxQ
	for q > 1 {
		t = readLen + 1 - (errors+1)*q
		if t >= 2 {
			return q, t
		}
		q--
	}
	return 1, readLen - errors // degenerate but still sound
}

func (m *Mapper) index(q int) (*qgram.Index, error) {
	if ix, ok := m.indexes[q]; ok {
		return ix, nil
	}
	ix, err := qgram.Build(m.ref, q)
	if err != nil {
		return nil, err
	}
	m.indexes[q] = ix
	return ix, nil
}

// Map implements mapper.Mapper.
func (m *Mapper) Map(reads [][]byte, opt mapper.Options) (*mapper.Result, error) {
	opt = opt.WithDefaults()
	if err := mapper.ValidateReads(reads, opt); err != nil {
		return nil, err
	}
	res := &mapper.Result{
		Mappings:      make([][]mapper.Mapping, len(reads)),
		DeviceSeconds: map[string]float64{},
	}
	if len(reads) == 0 {
		return res, nil
	}
	q, t := m.chooseQ(len(reads[0]), opt.MaxErrors)
	ix, err := m.index(q)
	if err != nil {
		return nil, err
	}

	// Per-worker private scratch: the kernel may run on several host
	// workers at once, so no mutable buffer is captured by the closure.
	type kernelState struct {
		vs    mapper.VerifyState
		rev   []byte
		diags []int32
		cands []mapper.Candidate
	}
	newState := func() any { return &kernelState{rev: make([]byte, len(reads[0]))} }
	body := func(wi *cl.WorkItem, state any) {
		st := state.(*kernelState)
		read := reads[wi.Global]
		n := len(read)
		var itemCost cl.Cost
		st.cands = st.cands[:0]
		for _, strand := range []byte{mapper.Forward, mapper.Reverse} {
			pattern := read
			if strand == mapper.Reverse {
				if cap(st.rev) < n {
					st.rev = make([]byte, n)
				}
				st.rev = st.rev[:n]
				dna.ReverseComplementInto(st.rev, read)
				pattern = st.rev
			}
			st.diags = st.diags[:0]
			// Probe every read q-gram; collect hit diagonals.
			for i := 0; i+q <= n; i++ {
				h := qgram.Hash(pattern[i : i+q])
				ps := ix.Positions(h)
				itemCost.HashProbes += 1 + int64(len(ps))
				for _, p := range ps {
					st.diags = append(st.diags, p-int32(i))
				}
			}
			diags := st.diags
			sort.Slice(diags, func(a, b int) bool { return diags[a] < diags[b] })
			itemCost.DPCells += int64(len(diags)) // sort/merge work proxy
			// Sliding window over sorted diagonals: an alignment with
			// <= δ edits keeps >= t grams whose diagonals span <= δ.
			lo := 0
			for hi := 0; hi < len(diags); hi++ {
				for diags[hi]-diags[lo] > int32(opt.MaxErrors) {
					lo++
				}
				if hi-lo+1 >= t {
					st.cands = append(st.cands, mapper.Candidate{Pos: diags[lo], Strand: strand})
				}
			}
		}
		dd := mapper.DedupCandidates(st.cands, int32(opt.MaxErrors))
		ms, vc := st.vs.Verify(m.text, read, dd, opt.MaxErrors, opt.MaxLocations)
		itemCost.VerifyWords += vc.VerifyWords
		itemCost.Items = 1
		wi.Charge(itemCost)
		res.Mappings[wi.Global] = mapper.Finalize(ms, opt.Best, opt.MaxLocations)
	}

	busy, energy, cost, err := mapper.RunOnDevice(m.dev, "razers3-map", len(reads), 512, newState, body)
	if err != nil {
		return nil, err
	}
	res.SimSeconds = busy
	res.EnergyJ = energy
	res.Cost = cost
	res.DeviceSeconds[m.dev.Name] = busy
	return res, nil
}
