package hobbes3

import (
	"math/rand"
	"testing"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
)

func randText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

func TestSelectSignaturesMinimisesFrequency(t *testing.T) {
	// freqs crafted so the optimum is unambiguous.
	freqs := []int32{9, 1, 9, 9, 9, 2, 9, 9, 9, 3, 9, 9}
	pos, cells := selectSignatures(freqs, 3, 4)
	if cells <= 0 {
		t.Fatal("no DP cells accounted")
	}
	want := []int{1, 5, 9}
	if len(pos) != 3 {
		t.Fatalf("positions = %v", pos)
	}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("positions = %v want %v", pos, want)
		}
	}
}

func TestSelectSignaturesRespectsSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 20 + rng.Intn(60)
		q := 2 + rng.Intn(6)
		k := 1 + rng.Intn(4)
		if k*q > n {
			continue
		}
		freqs := make([]int32, n-q+1)
		for i := range freqs {
			freqs[i] = int32(rng.Intn(100))
		}
		pos, _ := selectSignatures(freqs, k, q)
		if len(pos) != k {
			t.Fatalf("trial %d: %d positions want %d", trial, len(pos), k)
		}
		for i := 1; i < len(pos); i++ {
			if pos[i] < pos[i-1]+q {
				t.Fatalf("trial %d: overlap %v (q=%d)", trial, pos, q)
			}
		}
		// Compare against brute force on small instances.
		if len(freqs) <= 18 && k <= 3 {
			best := bruteSignatures(freqs, k, q)
			var got int64
			for _, p := range pos {
				got += int64(freqs[p])
			}
			if got != best {
				t.Fatalf("trial %d: DP cost %d brute %d (freqs %v k %d q %d)",
					trial, got, best, freqs, k, q)
			}
		}
	}
}

func bruteSignatures(freqs []int32, k, q int) int64 {
	best := int64(1) << 62
	var rec func(start int, left int, sum int64)
	rec = func(start, left int, sum int64) {
		if left == 0 {
			if sum < best {
				best = sum
			}
			return
		}
		// Signature at i needs q*(left-1) more positions to its right.
		for i := start; i+q*(left-1) <= len(freqs)-1; i++ {
			rec(i+q, left-1, sum+int64(freqs[i]))
		}
	}
	rec(0, k, 0)
	return best
}

func TestLosslessPigeonhole(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randText(rng, 25_000)
	m, err := New(ref, cl.SystemOneHost(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		pos := rng.Intn(len(ref) - 100)
		read := append([]byte(nil), ref[pos:pos+100]...)
		// Plant exactly δ substitutions spread across the read.
		const d = 4
		for e := 0; e < d; e++ {
			p := e*25 + rng.Intn(20)
			read[p] = (read[p] + 1 + byte(rng.Intn(3))) % 4
		}
		res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: d, MaxLocations: 100})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, mp := range res.Mappings[0] {
			if mp.Strand == mapper.Forward && mp.Pos >= int32(pos-d) && mp.Pos <= int32(pos+d) {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: planted location %d missed", trial, pos)
		}
	}
}

func TestReverseStrand(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := randText(rng, 10_000)
	m, err := New(ref, cl.SystemOneHost(), 8)
	if err != nil {
		t.Fatal(err)
	}
	pos := 4321
	read := dna.ReverseComplement(ref[pos : pos+100])
	res, err := m.Map([][]byte{read}, mapper.Options{MaxErrors: 2, MaxLocations: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mp := range res.Mappings[0] {
		if mp.Strand == mapper.Reverse && mp.Pos == int32(pos) && mp.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reverse-strand read not mapped: %+v", res.Mappings[0])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, cl.SystemOneHost(), 0); err == nil {
		t.Error("empty reference accepted")
	}
}
