// Package hobbes3 reimplements the core of Hobbes3 (Kim, Li & Xie, 2016):
// pigeonhole filtration with δ+1 *variable-position* fixed-length q-gram
// signatures, chosen by a dynamic program that minimises the summed index
// frequency of the signatures — the hash-index cousin of the paper's DP
// filtration. Candidates are the union of the chosen signatures' hits,
// verified with the Myers bit-vector. It is a fully sensitive all-mapper.
package hobbes3

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
	"repro/internal/qgram"
)

// Mapper is a Hobbes3-style all-mapper bound to a reference.
type Mapper struct {
	ref     []byte
	text    dna.PackedSeq
	dev     *cl.Device
	maxQ    int
	indexes map[int]*qgram.Index
}

// New creates the mapper on a host device. maxQ caps gram length (0 = 11).
func New(ref []byte, dev *cl.Device, maxQ int) (*Mapper, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("hobbes3: empty reference")
	}
	if maxQ <= 0 {
		maxQ = 11
	}
	if maxQ > qgram.MaxQ {
		maxQ = qgram.MaxQ
	}
	return &Mapper{
		ref:     ref,
		text:    dna.Pack(ref),
		dev:     dev,
		maxQ:    maxQ,
		indexes: map[int]*qgram.Index{},
	}, nil
}

// Name implements mapper.Mapper.
func (m *Mapper) Name() string { return "Hobbes3" }

// chooseQ picks the signature length: δ+1 disjoint signatures must fit,
// and the gram stays two steps below the RazerS3-style maximum — Hobbes3
// trades gram selectivity for its cheap signature DP, so its candidate
// lists run longer than a DP-placed long seed's (the REPUTE gap at low δ).
func (m *Mapper) chooseQ(readLen, errors int) int {
	q := readLen / (errors + 1)
	if q > m.maxQ-2 {
		q = m.maxQ - 2
	}
	if q < 1 {
		q = 1
	}
	return q
}

func (m *Mapper) index(q int) (*qgram.Index, error) {
	if ix, ok := m.indexes[q]; ok {
		return ix, nil
	}
	ix, err := qgram.Build(m.ref, q)
	if err != nil {
		return nil, err
	}
	m.indexes[q] = ix
	return ix, nil
}

// selectSignatures runs the Hobbes DP: choose k = errors+1 positions
// p_1 < p_2 < ... with p_{j+1} >= p_j + q minimising total frequency.
// freqs[i] is the index frequency of the gram starting at i.
// It returns the chosen positions and the DP cell count.
func selectSignatures(freqs []int32, k, q int) ([]int, int) {
	n := len(freqs) // number of gram start positions
	const inf = int64(1) << 62
	// best[j][i]: min cost choosing j+1 signatures from grams [i:].
	best := make([][]int64, k)
	choice := make([][]int32, k)
	for j := range best {
		best[j] = make([]int64, n+1)
		choice[j] = make([]int32, n+1)
	}
	cells := 0
	for j := 0; j < k; j++ {
		for i := n; i >= 0; i-- {
			cells++
			b, c := inf, int32(-1)
			if i < n {
				// Option: skip position i.
				b, c = best[j][i+1], choice[j][i+1]
				// Option: place signature j at i.
				var rest int64
				if j == 0 {
					rest = 0
				} else if i+q <= n {
					rest = best[j-1][i+q]
				} else {
					rest = inf
				}
				if rest < inf {
					if v := int64(freqs[i]) + rest; v < b {
						b, c = v, int32(i)
					}
				}
			}
			best[j][i], choice[j][i] = b, c
		}
	}
	if best[k-1][0] >= inf {
		return nil, cells
	}
	// Recover positions: choice[j][i] is where the first of the j+1
	// remaining signatures lands in the optimum for state (j, i).
	pos := make([]int, 0, k)
	i := 0
	for j := k - 1; j >= 0; j-- {
		p := int(choice[j][i])
		if p < i {
			return nil, cells // infeasible state; cannot happen when best is finite
		}
		pos = append(pos, p)
		i = p + q
	}
	return pos, cells
}

// Map implements mapper.Mapper.
func (m *Mapper) Map(reads [][]byte, opt mapper.Options) (*mapper.Result, error) {
	opt = opt.WithDefaults()
	if err := mapper.ValidateReads(reads, opt); err != nil {
		return nil, err
	}
	res := &mapper.Result{
		Mappings:      make([][]mapper.Mapping, len(reads)),
		DeviceSeconds: map[string]float64{},
	}
	if len(reads) == 0 {
		return res, nil
	}
	q := m.chooseQ(len(reads[0]), opt.MaxErrors)
	ix, err := m.index(q)
	if err != nil {
		return nil, err
	}
	k := opt.MaxErrors + 1

	// Per-worker private scratch (cl.Kernel.NewState contract): nothing
	// mutable is captured by the kernel closure.
	type kernelState struct {
		vs    mapper.VerifyState
		rev   []byte
		freqs []int32
		cands []mapper.Candidate
	}
	newState := func() any { return &kernelState{rev: make([]byte, len(reads[0]))} }
	body := func(wi *cl.WorkItem, state any) {
		st := state.(*kernelState)
		read := reads[wi.Global]
		n := len(read)
		var itemCost cl.Cost
		st.cands = st.cands[:0]
		for _, strand := range []byte{mapper.Forward, mapper.Reverse} {
			pattern := read
			if strand == mapper.Reverse {
				if cap(st.rev) < n {
					st.rev = make([]byte, n)
				}
				st.rev = st.rev[:n]
				dna.ReverseComplementInto(st.rev, read)
				pattern = st.rev
			}
			nGrams := n - q + 1
			if cap(st.freqs) < nGrams {
				st.freqs = make([]int32, nGrams)
			}
			st.freqs = st.freqs[:nGrams]
			for i := 0; i < nGrams; i++ {
				st.freqs[i] = int32(ix.Count(qgram.Hash(pattern[i : i+q])))
			}
			itemCost.HashProbes += int64(nGrams)
			sigs, cells := selectSignatures(st.freqs, k, q)
			itemCost.DPCells += int64(cells)
			for _, p := range sigs {
				hits := ix.Positions(qgram.Hash(pattern[p : p+q]))
				itemCost.HashProbes += 1 + int64(len(hits))
				for _, hp := range hits {
					st.cands = append(st.cands, mapper.Candidate{Pos: hp - int32(p), Strand: strand})
				}
			}
		}
		dd := mapper.DedupCandidates(st.cands, int32(opt.MaxErrors))
		ms, vc := st.vs.Verify(m.text, read, dd, opt.MaxErrors, opt.MaxLocations)
		itemCost.VerifyWords += vc.VerifyWords
		itemCost.Items = 1
		wi.Charge(itemCost)
		res.Mappings[wi.Global] = mapper.Finalize(ms, opt.Best, opt.MaxLocations)
	}

	busy, energy, cost, err := mapper.RunOnDevice(m.dev, "hobbes3-map", len(reads), 1024, newState, body)
	if err != nil {
		return nil, err
	}
	res.SimSeconds = busy
	res.EnergyJ = energy
	res.Cost = cost
	res.DeviceSeconds[m.dev.Name] = busy
	return res, nil
}
