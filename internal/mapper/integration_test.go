package mapper_test

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/sam"
	"testing"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/mapper"
	"repro/internal/mapper/bwamem"
	"repro/internal/mapper/coral"
	"repro/internal/mapper/gem"
	"repro/internal/mapper/hobbes3"
	"repro/internal/mapper/razers3"
	"repro/internal/mapper/yara"
	"repro/internal/simulate"
)

type world struct {
	ref     []byte
	set     simulate.ReadSet
	mappers map[string]mapper.Mapper
}

func buildWorld(t *testing.T, refLen, nReads int, prof simulate.ReadProfile) *world {
	t.Helper()
	ref := simulate.Reference(simulate.Chr21Like(refLen, 21))
	set, err := simulate.Reads(ref, nReads, prof, 22)
	if err != nil {
		t.Fatal(err)
	}
	host := cl.SystemOneHost()
	cpu := cl.SystemOneCPU()
	w := &world{ref: ref, set: set, mappers: map[string]mapper.Mapper{}}

	rz, err := razers3.New(ref, host, 9)
	if err != nil {
		t.Fatal(err)
	}
	w.mappers["RazerS3"] = rz
	hb, err := hobbes3.New(ref, host, 9)
	if err != nil {
		t.Fatal(err)
	}
	w.mappers["Hobbes3"] = hb
	ya, err := yara.New(ref, host, true)
	if err != nil {
		t.Fatal(err)
	}
	w.mappers["Yara"] = ya
	bw, err := bwamem.New(ref, host)
	if err != nil {
		t.Fatal(err)
	}
	w.mappers["BWA-MEM"] = bw
	gm, err := gem.New(ref, host)
	if err != nil {
		t.Fatal(err)
	}
	w.mappers["GEM"] = gm
	rp, err := core.New(ref, []*cl.Device{cpu}, core.Config{Name: "REPUTE-cpu"})
	if err != nil {
		t.Fatal(err)
	}
	w.mappers["REPUTE"] = rp
	co, err := coral.New(ref, []*cl.Device{cpu}, nil, "CORAL-cpu")
	if err != nil {
		t.Fatal(err)
	}
	w.mappers["CORAL"] = co
	return w
}

// originFound reports whether any mapping matches the origin within ±tol.
func originFound(ms []mapper.Mapping, o simulate.Origin, tol int32) bool {
	for _, m := range ms {
		if m.Strand == o.Strand && abs32(m.Pos-o.Pos) <= tol {
			return true
		}
	}
	return false
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAllMappersEndToEnd(t *testing.T) {
	w := buildWorld(t, 50_000, 100, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 5, MaxLocations: 100}

	results := map[string]*mapper.Result{}
	for name, m := range w.mappers {
		res, err := m.Map(w.set.Reads, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.SimSeconds <= 0 || res.EnergyJ <= 0 {
			t.Errorf("%s: timing/energy missing (%v s, %v J)", name, res.SimSeconds, res.EnergyJ)
		}
		results[name] = res
	}

	eligible := 0
	sensitivity := map[string]int{}
	for i, o := range w.set.Origins {
		if int(o.Edits) > opt.MaxErrors {
			continue
		}
		eligible++
		for name, res := range results {
			if originFound(res.Mappings[i], o, int32(opt.MaxErrors)) {
				sensitivity[name]++
			}
		}
	}
	if eligible < 80 {
		t.Fatalf("only %d eligible reads; workload broken", eligible)
	}
	// Full-sensitivity all-mappers must find every planted origin.
	for _, name := range []string{"RazerS3", "Hobbes3"} {
		if sensitivity[name] != eligible {
			t.Errorf("%s sensitivity %d/%d — must be lossless", name, sensitivity[name], eligible)
		}
	}
	// DP/heuristic OpenCL mappers: near-perfect, as in the paper (99.9+).
	for _, name := range []string{"REPUTE", "CORAL"} {
		if sensitivity[name] < eligible*98/100 {
			t.Errorf("%s sensitivity %d/%d below 98%%", name, sensitivity[name], eligible)
		}
	}
	// Best-mappers: they report few locations but should still hit the
	// origin for most reads (any-best style).
	for _, name := range []string{"Yara", "GEM", "BWA-MEM"} {
		if sensitivity[name] < eligible*70/100 {
			t.Errorf("%s any-best sensitivity %d/%d below 70%%", name, sensitivity[name], eligible)
		}
	}
	// Best-mappers must report far fewer locations than all-mappers
	// (the Table I vs Table II accuracy contrast).
	if results["Yara"].TotalLocations() >= results["RazerS3"].TotalLocations() {
		t.Errorf("Yara locations %d >= RazerS3 %d",
			results["Yara"].TotalLocations(), results["RazerS3"].TotalLocations())
	}
	if results["BWA-MEM"].TotalLocations() > results["BWA-MEM"].MappedReads() {
		t.Errorf("BWA-MEM reported multiple locations per read")
	}
}

func TestMappingsAreSoundAcrossMappers(t *testing.T) {
	w := buildWorld(t, 30_000, 40, simulate.SRR826460)
	opt := mapper.Options{MaxErrors: 6, MaxLocations: 50}
	text := dna.Pack(w.ref)
	for name, m := range w.mappers {
		res, err := m.Map(w.set.Reads, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, ms := range res.Mappings {
			for _, mp := range ms {
				if mp.Dist > uint8(opt.MaxErrors) {
					t.Fatalf("%s read %d: dist %d > δ", name, i, mp.Dist)
				}
				pattern := w.set.Reads[i]
				if mp.Strand == mapper.Reverse {
					pattern = dna.ReverseComplement(pattern)
				}
				lo := int(mp.Pos)
				hi := lo + len(pattern) + opt.MaxErrors
				if lo < 0 || lo >= text.Len() {
					t.Fatalf("%s read %d: position %d out of range", name, i, mp.Pos)
				}
				if hi > text.Len() {
					hi = text.Len()
				}
				win := text.Slice(lo, hi)
				if d := editDistancePrefixT(pattern, win); d > int(mp.Dist) {
					t.Fatalf("%s read %d: claimed dist %d at %d, actual %d",
						name, i, mp.Dist, mp.Pos, d)
				}
			}
		}
	}
}

// editDistancePrefixT: min edit distance of p vs any prefix of w.
func editDistancePrefixT(p, w []byte) int {
	prev := make([]int, len(w)+1)
	cur := make([]int, len(w)+1)
	for i := 1; i <= len(p); i++ {
		cur[0] = i
		for j := 1; j <= len(w); j++ {
			cost := 1
			if p[i-1] == w[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if prev[j]+1 < best {
				best = prev[j] + 1
			}
			if cur[j-1]+1 < best {
				best = cur[j-1] + 1
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := prev[0]
	for _, v := range prev {
		if v < best {
			best = v
		}
	}
	return best
}

func TestSAMRoundTripAccuracyPipeline(t *testing.T) {
	// End-to-end plumbing of cmd/accuracy: map with gold + candidate,
	// serialise both to SAM, parse back, group, and score. The metrics
	// computed from the SAM files must equal those computed in memory.
	w := buildWorld(t, 25_000, 40, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	gold, err := w.mappers["RazerS3"].Map(w.set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	test, err := w.mappers["Yara"].Map(w.set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	toSAM := func(res *mapper.Result) map[string][]mapper.Mapping {
		var buf bytes.Buffer
		sw, err := sam.NewWriter(&buf, "ref", len(w.ref))
		if err != nil {
			t.Fatal(err)
		}
		for i, ms := range res.Mappings {
			name := fmt.Sprintf("r%04d", i)
			if err := sw.WriteRead(name, nil, ms); err != nil {
				t.Fatal(err)
			}
		}
		sw.Flush()
		recs, err := sam.Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return sam.GroupByRead(recs)
	}
	goldSAM := toSAM(gold)
	testSAM := toSAM(test)

	goldLists := make([][]mapper.Mapping, len(w.set.Reads))
	testLists := make([][]mapper.Mapping, len(w.set.Reads))
	for i := range w.set.Reads {
		name := fmt.Sprintf("r%04d", i)
		goldLists[i] = goldSAM[name]
		testLists[i] = testSAM[name]
	}
	viaSAM := eval.AccuracyAll(goldLists, testLists, int32(opt.MaxErrors))
	direct := eval.AccuracyAll(gold.Mappings, test.Mappings, int32(opt.MaxErrors))
	if math.Abs(viaSAM-direct) > 1e-9 {
		t.Errorf("accuracy via SAM %v != in-memory %v", viaSAM, direct)
	}
	anyBest := eval.AccuracyAnyBest(goldLists, testLists, int32(opt.MaxErrors))
	if anyBest < direct {
		t.Errorf("any-best %v below all-locations %v for the same output", anyBest, direct)
	}
}

func TestBestMapperModes(t *testing.T) {
	w := buildWorld(t, 20_000, 30, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	for _, name := range []string{"Yara", "GEM"} {
		res, err := w.mappers[name].Map(w.set.Reads, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, ms := range res.Mappings {
			if len(ms) == 0 {
				continue
			}
			best := ms[0].Dist
			for _, m := range ms {
				if m.Dist < best {
					best = m.Dist
				}
			}
			for _, m := range ms {
				if m.Dist != best {
					t.Fatalf("%s read %d: non-best stratum reported (%d vs %d)",
						name, i, m.Dist, best)
				}
			}
		}
	}
}
