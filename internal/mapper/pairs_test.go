package mapper

import (
	"testing"
	"testing/quick"
)

func fm(pos int32, strand byte, dist uint8) Mapping {
	return Mapping{Pos: pos, Strand: strand, Dist: dist}
}

func TestPairUpConcordantFR(t *testing.T) {
	// Mate1 '+' at 1000, mate2 '-' at 1300 (len 100): insert 400.
	ms1 := []Mapping{fm(1000, Forward, 1)}
	ms2 := []Mapping{fm(1300, Reverse, 0)}
	pairs := PairUp(ms1, ms2, 100, 100, 200, 600, 0)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v", pairs)
	}
	p := pairs[0]
	if !p.Concordant || p.Insert != 400 || p.TotalDist() != 1 {
		t.Errorf("pair = %+v", p)
	}
}

func TestPairUpReversedRoles(t *testing.T) {
	// Mate1 is the reverse mate: '-' at 1300; mate2 '+' at 1000.
	ms1 := []Mapping{fm(1300, Reverse, 0)}
	ms2 := []Mapping{fm(1000, Forward, 2)}
	pairs := PairUp(ms1, ms2, 100, 100, 200, 600, 0)
	if len(pairs) != 1 || pairs[0].Insert != 400 {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestPairUpRejects(t *testing.T) {
	cases := []struct {
		name     string
		ms1, ms2 []Mapping
	}{
		{"same strand", []Mapping{fm(1000, Forward, 0)}, []Mapping{fm(1300, Forward, 0)}},
		{"insert too big", []Mapping{fm(1000, Forward, 0)}, []Mapping{fm(5000, Reverse, 0)}},
		{"insert too small", []Mapping{fm(1000, Forward, 0)}, []Mapping{fm(1010, Reverse, 0)}},
		{"wrong order (RF)", []Mapping{fm(1300, Forward, 0)}, []Mapping{fm(1000, Reverse, 0)}},
		{"no mate2", []Mapping{fm(1000, Forward, 0)}, nil},
	}
	for _, tc := range cases {
		if pairs := PairUp(tc.ms1, tc.ms2, 100, 100, 200, 600, 0); len(pairs) != 0 {
			t.Errorf("%s: unexpectedly paired %+v", tc.name, pairs)
		}
	}
}

func TestPairUpRescuesAmbiguousMate(t *testing.T) {
	// Mate1 multi-maps to 5 repeat copies; mate2 maps uniquely. Only the
	// copy compatible with mate2's position pairs.
	ms1 := []Mapping{
		fm(100, Forward, 1), fm(2100, Forward, 1), fm(4100, Forward, 1),
		fm(6100, Forward, 1), fm(8100, Forward, 1),
	}
	ms2 := []Mapping{fm(4400, Reverse, 0)}
	pairs := PairUp(ms1, ms2, 100, 100, 200, 600, 0)
	if len(pairs) != 1 || pairs[0].First.Pos != 4100 {
		t.Fatalf("rescue failed: %+v", pairs)
	}
}

func TestPairUpRankingAndCap(t *testing.T) {
	ms1 := []Mapping{fm(1000, Forward, 3), fm(2000, Forward, 0)}
	ms2 := []Mapping{fm(1300, Reverse, 0), fm(2300, Reverse, 1)}
	pairs := PairUp(ms1, ms2, 100, 100, 200, 600, 0)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
	// Best combined distance first: (2000,2300) dist 1 before (1000,1300) dist 3.
	if pairs[0].First.Pos != 2000 || pairs[1].First.Pos != 1000 {
		t.Errorf("ranking wrong: %+v", pairs)
	}
	capped := PairUp(ms1, ms2, 100, 100, 200, 600, 1)
	if len(capped) != 1 || capped[0].First.Pos != 2000 {
		t.Errorf("cap kept wrong pair: %+v", capped)
	}
}

func TestPairUpPropertyInsertBand(t *testing.T) {
	f := func(raw1, raw2 []byte) bool {
		ms1 := Finalize(genMappings(raw1), false, 0)
		ms2 := Finalize(genMappings(raw2), false, 0)
		const minI, maxI = 150, 450
		pairs := PairUp(ms1, ms2, 100, 100, minI, maxI, 0)
		for _, p := range pairs {
			if p.Insert < minI || p.Insert > maxI {
				return false
			}
			if p.First.Strand == p.Second.Strand {
				return false
			}
			// Leftmost mate must be the forward one.
			left, right := p.First, p.Second
			if right.Pos < left.Pos {
				left, right = right, left
			}
			if left.Strand != Forward || right.Strand != Reverse {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPairOptionsDefaults(t *testing.T) {
	o := PairOptions{}.WithDefaults()
	if o.MinInsert != 100 || o.MaxInsert != 1000 || o.MaxPairs != o.MaxLocations {
		t.Errorf("defaults = %+v", o)
	}
}
