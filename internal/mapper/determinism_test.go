package mapper_test

import (
	"runtime"
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

// TestAllMappersSerialParallelDeterminism runs every mapper — REPUTE and
// CORAL via core plus the five baselines — under serial and parallel host
// execution and asserts identical mappings and accounting. This is what
// the NewState migration buys: kernel bodies own no shared mutable
// captures, so the host schedule cannot change results.
func TestAllMappersSerialParallelDeterminism(t *testing.T) {
	// Force a real worker pool even on single-core CI machines.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	w := buildWorld(t, 30_000, 60, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}

	for name, m := range w.mappers {
		t.Run(name, func(t *testing.T) {
			run := func(mode cl.ExecMode) *mapper.Result {
				prevMode := cl.SetDefaultExecMode(mode)
				defer cl.SetDefaultExecMode(prevMode)
				res, err := m.Map(w.set.Reads, opt)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := run(cl.Serial)
			parallel := run(cl.Parallel)

			if serial.SimSeconds != parallel.SimSeconds {
				t.Errorf("SimSeconds differ: serial %v parallel %v",
					serial.SimSeconds, parallel.SimSeconds)
			}
			if serial.EnergyJ != parallel.EnergyJ {
				t.Errorf("EnergyJ differs: serial %v parallel %v",
					serial.EnergyJ, parallel.EnergyJ)
			}
			if serial.Cost != parallel.Cost {
				t.Errorf("Cost differs:\nserial   %+v\nparallel %+v",
					serial.Cost, parallel.Cost)
			}
			for i := range serial.Mappings {
				a, b := serial.Mappings[i], parallel.Mappings[i]
				if len(a) != len(b) {
					t.Fatalf("read %d: %d vs %d mappings", i, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("read %d mapping %d differs: %+v vs %+v", i, j, a[j], b[j])
					}
				}
			}
		})
	}
}
