package refstats

import "testing"

func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct{ c, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {15, 2},
		{16, 3}, {63, 3}, {64, 4}, {1000, 4},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.c); got != tc.want {
			t.Errorf("bucketOf(%d) = %d want %d", tc.c, got, tc.want)
		}
	}
	if len(BucketLabels) != 5 {
		t.Errorf("labels = %v", BucketLabels)
	}
}
