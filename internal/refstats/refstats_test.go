package refstats

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/fmindex"
	"repro/internal/simulate"
)

func TestKmerSpectrumTinyKnown(t *testing.T) {
	// AAAA: 2-mers are AA x3 -> one distinct k-mer, 3 positions in the
	// 2-3x bucket.
	sp, err := KmerSpectrum(dna.MustEncode("AAAA"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.DistinctKmers != 1 || sp.Buckets[1] != 3 || sp.MaxFreq != 3 {
		t.Errorf("spectrum = %+v", sp)
	}
}

func TestKmerSpectrumBucketsSumToPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text := make([]byte, 5000)
	for i := range text {
		text[i] = byte(rng.Intn(4))
	}
	for _, k := range []int{4, 8, 11} {
		sp, err := KmerSpectrum(text, k)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range sp.Buckets {
			total += b
		}
		if total != len(text)-k+1 {
			t.Errorf("k=%d: bucket sum %d want %d", k, total, len(text)-k+1)
		}
		if sp.MeanFreq < 1 {
			t.Errorf("k=%d: mean frequency %v < 1", k, sp.MeanFreq)
		}
	}
	if _, err := KmerSpectrum(text, 99); err == nil {
		t.Error("absurd k accepted")
	}
}

func TestRepeatRichReferenceHasFatterTail(t *testing.T) {
	flat := simulate.Reference(simulate.RefConfig{Length: 150_000, Seed: 2, RepeatFraction: -1, HighCopyFraction: -1})
	rich := simulate.Reference(simulate.Chr21Like(150_000, 2))
	spFlat, err := KmerSpectrum(flat, 11)
	if err != nil {
		t.Fatal(err)
	}
	spRich, err := KmerSpectrum(rich, 11)
	if err != nil {
		t.Fatal(err)
	}
	tail := func(sp Spectrum) int { return sp.Buckets[3] + sp.Buckets[4] }
	if tail(spRich) <= tail(spFlat)*2 {
		t.Errorf("repeat-rich tail %d not well above flat %d", tail(spRich), tail(spFlat))
	}
}

func TestMultiMapFraction(t *testing.T) {
	rich := simulate.Reference(simulate.Chr21Like(120_000, 3))
	ix := fmindex.Build(rich, fmindex.Options{})
	frac := MultiMapFraction(ix, rich, 100, 16, 997)
	if frac <= 0.02 || frac >= 0.9 {
		t.Errorf("multi-map fraction %v outside plausible band", frac)
	}
	if f := MultiMapFraction(ix, rich[:50], 100, 16, 1); f != 0 {
		t.Errorf("short text fraction %v want 0", f)
	}
}

func TestFootprintSampledSmaller(t *testing.T) {
	text := simulate.Reference(simulate.Chr21Like(60_000, 4))
	fp := Footprint(text)
	if fp.Sampled32Bytes >= fp.FullSABytes {
		t.Errorf("sampled %d not below full %d", fp.Sampled32Bytes, fp.FullSABytes)
	}
	// Full SA should cost roughly 4 B/base more than the sampled one.
	if ratio := float64(fp.FullSABytes) / float64(fp.Sampled32Bytes); ratio < 1.5 {
		t.Errorf("full/sampled ratio %v too small", ratio)
	}
}

func TestReportRenders(t *testing.T) {
	text := simulate.Reference(simulate.Chr21Like(40_000, 5))
	var buf bytes.Buffer
	if err := Report(&buf, text, []int{8, 11}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"8-mer spectrum", "11-mer spectrum", "unique", "index footprint"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
