// Package refstats computes reference and index statistics: k-mer
// frequency spectra, repeat content and index memory footprints. The
// experiment harness uses it to demonstrate that the synthetic
// chromosome-21 stand-in actually lands in the intended filtration
// regime (DESIGN.md §2's data substitution), and cmd/inspect exposes it.
package refstats

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dna"
	"repro/internal/fmindex"
	"repro/internal/qgram"
)

// Spectrum summarises the k-mer frequency distribution of a reference.
type Spectrum struct {
	K int
	// Buckets counts k-mer *positions* by the frequency of their k-mer:
	// Buckets[0] = positions whose k-mer occurs once, [1] 2..3 times,
	// [2] 4..15, [3] 16..63, [4] 64+.
	Buckets [5]int
	// DistinctKmers is the number of distinct k-mers present.
	DistinctKmers int
	// MeanFreq is the average occurrence count over positions (how many
	// candidate locations an average exact seed of length K produces).
	MeanFreq float64
	// MaxFreq is the largest occurrence count seen.
	MaxFreq int
}

// bucketOf maps an occurrence count to its bucket index.
func bucketOf(c int) int {
	switch {
	case c <= 1:
		return 0
	case c <= 3:
		return 1
	case c <= 15:
		return 2
	case c <= 63:
		return 3
	default:
		return 4
	}
}

// BucketLabels name the Spectrum buckets in order.
var BucketLabels = [5]string{"unique", "2-3x", "4-15x", "16-63x", "64x+"}

// KmerSpectrum computes the k-mer spectrum of text via a q-gram index
// (k is capped at qgram.MaxQ).
func KmerSpectrum(text []byte, k int) (Spectrum, error) {
	ix, err := qgram.Build(text, k)
	if err != nil {
		return Spectrum{}, err
	}
	sp := Spectrum{K: k}
	buckets := 1 << uint(2*k)
	totalPositions := 0
	totalFreq := 0
	for h := 0; h < buckets; h++ {
		c := ix.Count(uint32(h))
		if c == 0 {
			continue
		}
		sp.DistinctKmers++
		sp.Buckets[bucketOf(c)] += c
		totalPositions += c
		totalFreq += c * c
		if c > sp.MaxFreq {
			sp.MaxFreq = c
		}
	}
	if totalPositions > 0 {
		sp.MeanFreq = float64(totalFreq) / float64(totalPositions)
	}
	return sp, nil
}

// MultiMapFraction estimates the fraction of read-length windows whose
// best exact seed of length k is non-unique — the share of reads that
// will multi-map, which drives the paper's §III-A metric separation.
func MultiMapFraction(ix *fmindex.Index, text []byte, readLen, k, stride int) float64 {
	if stride < 1 {
		stride = 1
	}
	windows, multi := 0, 0
	for pos := 0; pos+readLen <= len(text); pos += stride {
		windows++
		best := int(^uint(0) >> 1)
		for off := 0; off+k <= readLen; off += k {
			c := ix.Count(text[pos+off : pos+off+k])
			if c < best {
				best = c
			}
		}
		if best > 1 {
			multi++
		}
	}
	if windows == 0 {
		return 0
	}
	return float64(multi) / float64(windows)
}

// IndexFootprint reports the memory cost of the index structures at both
// locate configurations — the §IV memory discussion in numbers.
type IndexFootprint struct {
	TextLen        int
	FullSABytes    int64
	Sampled32Bytes int64
}

// Footprint builds both index variants and measures them.
func Footprint(text []byte) IndexFootprint {
	full := fmindex.Build(text, fmindex.Options{})
	sampled := fmindex.Build(text, fmindex.Options{SASampleRate: 32})
	return IndexFootprint{
		TextLen:        len(text),
		FullSABytes:    full.SizeBytes(),
		Sampled32Bytes: sampled.SizeBytes(),
	}
}

// Report renders a human-readable summary of the reference.
func Report(w io.Writer, text []byte, ks []int) error {
	fmt.Fprintf(w, "reference: %d bp, GC %.3f\n", len(text), dna.GCContent(text))
	sort.Ints(ks)
	for _, k := range ks {
		sp, err := KmerSpectrum(text, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%d-mer spectrum: %d distinct, mean seed frequency %.2f, max %d\n",
			sp.K, sp.DistinctKmers, sp.MeanFreq, sp.MaxFreq)
		total := 0
		for _, b := range sp.Buckets {
			total += b
		}
		for i, b := range sp.Buckets {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(b) / float64(total)
			}
			fmt.Fprintf(w, "  %-7s %9d positions (%5.1f%%)\n", BucketLabels[i], b, pct)
		}
	}
	fp := Footprint(text)
	fmt.Fprintf(w, "\nindex footprint: full SA %d B (%.1f B/base), sampled 1/32 %d B (%.1f B/base)\n",
		fp.FullSABytes, float64(fp.FullSABytes)/float64(fp.TextLen),
		fp.Sampled32Bytes, float64(fp.Sampled32Bytes)/float64(fp.TextLen))
	return nil
}
