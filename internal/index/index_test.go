package index

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fmindex"
	"repro/internal/genome"
)

func testGenome(t *testing.T, n int, seed int64) *genome.Genome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(l int) []byte {
		s := make([]byte, l)
		for i := range s {
			s[i] = byte(rng.Intn(4))
		}
		return s
	}
	g, err := genome.New(
		[]string{"chrA", "chrB"},
		[][]byte{mk(n * 2 / 3), mk(n - n*2/3)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionTilesAndOverlaps(t *testing.T) {
	for _, tc := range []struct {
		n       int64
		k, over int
	}{
		{100, 1, 0}, {100, 3, 10}, {101, 4, 7}, {7, 7, 3}, {1 << 20, 5, 1024},
	} {
		geom := Partition(tc.n, tc.k, tc.over)
		if len(geom) != tc.k {
			t.Fatalf("Partition(%d,%d): %d shards", tc.n, tc.k, len(geom))
		}
		prev := int64(0)
		for i, s := range geom {
			if s.OwnStart != prev {
				t.Fatalf("shard %d owns from %d, want %d", i, s.OwnStart, prev)
			}
			if s.OwnEnd <= s.OwnStart {
				t.Fatalf("shard %d owns empty range", i)
			}
			if s.SliceStart > s.OwnStart || s.SliceEnd < s.OwnEnd {
				t.Fatalf("shard %d slice %v does not cover ownership", i, s)
			}
			if s.SliceStart < 0 || s.SliceEnd > tc.n {
				t.Fatalf("shard %d slice %v outside text", i, s)
			}
			wantS0 := s.OwnStart - int64(tc.over)
			if wantS0 < 0 {
				wantS0 = 0
			}
			if s.SliceStart != wantS0 {
				t.Fatalf("shard %d slice start %d, want %d", i, s.SliceStart, wantS0)
			}
			prev = s.OwnEnd
		}
		if prev != tc.n {
			t.Fatalf("shards own %d of %d", prev, tc.n)
		}
	}
}

func TestRoundTripSingle(t *testing.T) {
	g := testGenome(t, 4000, 1)
	f, err := Build(g, 1, 0, fmindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != f.Digest() {
		t.Fatalf("digest mismatch after round trip")
	}
	if len(got.Indexes) != 1 || got.Indexes[0].Len() != g.Len() {
		t.Fatalf("loaded wrong index shape")
	}
	if got.Meta.Sharded() {
		t.Fatalf("single-shard artifact reports sharded")
	}
	lg, err := got.Genome()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lg.Text(), g.Text()) {
		t.Fatalf("reconstructed genome text differs")
	}
	// The loaded index must answer queries identically.
	text := g.Text()
	for i := 0; i+20 < len(text); i += 997 {
		p := text[i : i+20]
		if got.Indexes[0].Count(p) != f.Indexes[0].Count(p) {
			t.Fatalf("count mismatch at %d", i)
		}
	}
}

func TestRoundTripSharded(t *testing.T) {
	g := testGenome(t, 6000, 2)
	f, err := Build(g, 3, 200, fmindex.Options{SASampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Meta.Sharded() || len(got.Indexes) != 3 {
		t.Fatalf("loaded %d shards, want 3", len(got.Indexes))
	}
	if got.Meta.Overlap != 200 || got.Meta.SASampleRate != 4 {
		t.Fatalf("meta options not preserved: %+v", got.Meta)
	}
	text := g.Text()
	for i, s := range got.Meta.Shards {
		slice := text[s.SliceStart:s.SliceEnd]
		if got.Indexes[i].Len() != len(slice) {
			t.Fatalf("shard %d length %d, want %d", i, got.Indexes[i].Len(), len(slice))
		}
		// Spot-check: a pattern from the slice is found there.
		p := slice[len(slice)/2 : len(slice)/2+15]
		if got.Indexes[i].Count(p) == 0 {
			t.Fatalf("shard %d cannot find its own substring", i)
		}
	}
	if _, err := got.Genome(); err == nil {
		t.Fatalf("sharded artifact should not reconstruct a contiguous genome")
	}
}

func TestInfoMatchesLoad(t *testing.T) {
	g := testGenome(t, 3000, 3)
	f, err := Build(g, 2, 150, fmindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := ReadInfo(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != f.Digest() {
		t.Fatalf("info digest %x != writer digest %x", info.Digest, f.Digest())
	}
	if info.TotalBytes != int64(buf.Len()) {
		t.Fatalf("info computes %d total bytes, file has %d", info.TotalBytes, buf.Len())
	}
	if len(info.Sections) != 3 {
		t.Fatalf("info lists %d sections, want 3", len(info.Sections))
	}
	if len(info.Meta.Shards) != 2 || info.Meta.RefBases != int64(g.Len()) {
		t.Fatalf("info meta wrong: %+v", info.Meta)
	}
}

func TestCorruptByteDetected(t *testing.T) {
	g := testGenome(t, 2500, 4)
	f, err := Build(g, 2, 150, fmindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flip one byte at several offsets through the file; every corruption
	// must surface as a typed error (checksum, format, or fmindex parse
	// rejection) — never a silent success.
	for off := 13; off < len(clean); off += len(clean) / 41 {
		dirty := bytes.Clone(clean)
		dirty[off] ^= 0x20
		_, err := Load(bytes.NewReader(dirty), int64(len(dirty)))
		if err == nil {
			t.Fatalf("corruption at offset %d loaded successfully", off)
		}
	}
	// A payload-byte flip specifically must be reported as ChecksumError
	// when the FM-index still parses, or as a wrapped parse error; flip a
	// byte deep in the last section's payload (text bytes rarely affect
	// structure) and check the typed path.
	dirty := bytes.Clone(clean)
	dirty[len(dirty)-5] ^= 0x01
	_, err = Load(bytes.NewReader(dirty), int64(len(dirty)))
	var ce *ChecksumError
	if !errors.As(err, &ce) && !errors.Is(err, fmindex.ErrCorrupt) {
		t.Fatalf("payload corruption gave untyped error: %v", err)
	}
}

func TestTruncationRejected(t *testing.T) {
	g := testGenome(t, 2000, 5)
	f, err := Build(g, 1, 0, fmindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{0, 3, 11, 50, len(whole) / 2, len(whole) - 1} {
		if _, err := Load(bytes.NewReader(whole[:cut]), int64(cut)); err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", cut)
		}
	}
	// A section length pointing past EOF must be rejected before any
	// large allocation (the size bound catches it at the header).
	dirty := bytes.Clone(whole)
	// Section table starts at byte 12; meta section length field is at 16.
	for i := 0; i < 8; i++ {
		dirty[16+i] = 0xff
	}
	if _, err := Load(bytes.NewReader(dirty), int64(len(dirty))); err == nil {
		t.Fatalf("absurd section length loaded successfully")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := testGenome(t, 1500, 6)
	f, err := Build(g, 2, 120, fmindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ref.ridx"
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != f.Digest() {
		t.Fatalf("digest mismatch via file round trip")
	}
	info, err := ReadInfoFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != f.Digest() {
		t.Fatalf("info digest mismatch via file round trip")
	}
}

func TestBuildRejectsTooManyShards(t *testing.T) {
	g := testGenome(t, 100, 7)
	if _, err := Build(g, 200, 10, fmindex.Options{}); err == nil {
		t.Fatalf("200 shards over 100 bases accepted")
	}
}
