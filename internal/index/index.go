// Package index defines the persistent on-disk index artifact: a
// versioned container that wraps one or more serialized FM-indexes
// (fmindex.WriteTo blobs) together with the contig table and shard
// geometry needed to map against them. The container turns the index
// from a per-run rebuild into a reusable file — the REPUTE embedded
// deployment model, where the reference index is prepared once on a
// host and shipped to the device.
//
// Layout (all integers little-endian):
//
//	magic   u32  "RIDX"
//	version u32
//	nsect   u32
//	section × nsect:
//	    kind    u32   (1 = meta JSON, 2 = FM-index shard blob)
//	    length  u64   payload bytes
//	    sha256  [32]byte of the payload
//	    payload []byte
//
// The first section is always the meta JSON; it is followed by one
// FM-index blob per shard, in shard order. Every payload is covered by
// its SHA-256, so any single corrupted byte is detected at load time
// with a typed *ChecksumError. The container digest — SHA-256 over the
// header and the section headers (not the payloads) — identifies the
// artifact cheaply and is what checkpoints fingerprint.
package index

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"

	"repro/internal/fmindex"
	"repro/internal/genome"
)

// Version is the container format version this package writes (and the
// only one it reads).
const Version = 1

const (
	containerMagic   = uint32(0x52494458) // "RIDX"
	containerVersion = uint32(Version)

	kindMeta  = uint32(1)
	kindShard = uint32(2)

	// maxMetaBytes bounds the meta JSON allocation; real tables are a few
	// kilobytes even for thousands of contigs.
	maxMetaBytes = 1 << 24

	// maxSections bounds the section count a header may declare.
	maxSections = 1 << 16

	// DefaultOverlap is the shard overlap used when the builder is not
	// given one: generous for short-read lengths (a read of length L with
	// δ errors needs overlap ≥ L + 2δ to be found near a shard boundary).
	DefaultOverlap = 1024
)

// ErrFormat is wrapped by container-level structural errors: bad magic,
// unsupported version, impossible section table.
var ErrFormat = errors.New("invalid index container")

// ChecksumError reports a payload whose SHA-256 does not match its
// section header — the byte-level corruption case.
type ChecksumError struct {
	Section int
	Kind    uint32
	Want    [32]byte
	Got     [32]byte
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("index: checksum mismatch in section %d (kind %d): file is corrupt",
		e.Section, e.Kind)
}

// ShardGeom places one shard in global reference coordinates. The shard's
// FM-index is built over text[SliceStart:SliceEnd]; it *owns* (reports
// mappings for) positions in [OwnStart, OwnEnd). Slices of neighbouring
// shards overlap so reads straddling an ownership boundary are still
// fully contained in some shard's slice.
type ShardGeom struct {
	OwnStart   int64 `json:"own_start"`
	OwnEnd     int64 `json:"own_end"`
	SliceStart int64 `json:"slice_start"`
	SliceEnd   int64 `json:"slice_end"`
}

// Owns reports whether the shard reports mappings at global position pos.
func (s ShardGeom) Owns(pos int64) bool { return pos >= s.OwnStart && pos < s.OwnEnd }

// Meta is the self-describing header of an index artifact, serialized as
// deterministic JSON in the container's first section.
type Meta struct {
	// RefBases is the concatenated reference length.
	RefBases int64 `json:"ref_bases"`
	// SASampleRate echoes the fmindex build option (0 = full SA).
	SASampleRate int `json:"sa_sample_rate"`
	// Overlap is the shard slice overlap in bases (0 for a single shard).
	Overlap int `json:"overlap"`
	// Contigs is the reference contig table in order.
	Contigs []genome.Contig `json:"contigs"`
	// Shards is the shard geometry, one entry per FM-index section.
	Shards []ShardGeom `json:"shards"`
}

// Sharded reports whether the artifact partitions the reference.
func (m *Meta) Sharded() bool { return len(m.Shards) > 1 }

// File is a fully loaded index artifact: the metadata plus one FM-index
// per shard (a single-shard file is the ordinary whole-reference index).
type File struct {
	Meta    Meta
	Indexes []*fmindex.Index

	digest [32]byte
}

// Digest identifies the artifact: SHA-256 over the container header and
// all section headers (kind, length, payload checksum). It is set by
// WriteTo, Load and ReadInfo, is identical across the three, and is
// cheap to compute on load because payload bytes are already hashed per
// section. Checkpoints use it as the index fingerprint.
func (f *File) Digest() [32]byte { return f.digest }

// Partition computes k ownership ranges over an n-base reference, each
// extended by overlap on both sides (clamped to the text) to form the
// shard slices. Ownership ranges tile [0, n) exactly.
func Partition(n int64, k, overlap int) []ShardGeom {
	if k < 1 {
		k = 1
	}
	shards := make([]ShardGeom, k)
	for i := 0; i < k; i++ {
		own0 := n * int64(i) / int64(k)
		own1 := n * int64(i+1) / int64(k)
		s0 := own0 - int64(overlap)
		if s0 < 0 {
			s0 = 0
		}
		s1 := own1 + int64(overlap)
		if s1 > n {
			s1 = n
		}
		shards[i] = ShardGeom{OwnStart: own0, OwnEnd: own1, SliceStart: s0, SliceEnd: s1}
	}
	return shards
}

// Build constructs an in-memory artifact for a genome: one FM-index when
// shards <= 1, otherwise `shards` overlapping per-shard indexes. overlap
// <= 0 selects DefaultOverlap (ignored for a single shard).
func Build(g *genome.Genome, shards, overlap int, opts fmindex.Options) (*File, error) {
	n := int64(g.Len())
	if shards <= 1 {
		f := &File{
			Meta: Meta{
				RefBases:     n,
				SASampleRate: opts.SASampleRate,
				Contigs:      g.Contigs(),
				Shards:       Partition(n, 1, 0),
			},
			Indexes: []*fmindex.Index{fmindex.Build(g.Text(), opts)},
		}
		return f, nil
	}
	if overlap <= 0 {
		overlap = DefaultOverlap
	}
	if int64(shards) > n {
		return nil, fmt.Errorf("index: %d shards for a %d-base reference", shards, n)
	}
	geom := Partition(n, shards, overlap)
	f := &File{
		Meta: Meta{
			RefBases:     n,
			SASampleRate: opts.SASampleRate,
			Overlap:      overlap,
			Contigs:      g.Contigs(),
			Shards:       geom,
		},
		Indexes: make([]*fmindex.Index, shards),
	}
	text := g.Text()
	for i, s := range geom {
		f.Indexes[i] = fmindex.Build(text[s.SliceStart:s.SliceEnd], opts)
	}
	return f, nil
}

// metaJSON marshals the meta deterministically (encoding/json emits
// struct fields in declaration order, so the bytes are stable).
func (f *File) metaJSON() ([]byte, error) {
	if len(f.Indexes) != len(f.Meta.Shards) {
		return nil, fmt.Errorf("index: %d indexes for %d shards", len(f.Indexes), len(f.Meta.Shards))
	}
	return json.Marshal(&f.Meta)
}

// WriteTo serializes the artifact. FM-index payloads are streamed twice —
// once into the section hash to learn (length, sha256) for the header,
// once into the writer — so no shard blob is ever buffered whole.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	meta, err := f.metaJSON()
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &countingWriter{w: bw}
	hdr := sha256.New()
	out := io.MultiWriter(cw, hdr) // header bytes feed the digest

	writeU32 := func(v uint32) { binary.Write(out, binary.LittleEndian, v) }
	writeU32(containerMagic)
	writeU32(containerVersion)
	writeU32(uint32(1 + len(f.Indexes)))

	writeSection := func(kind uint32, length uint64, sum [32]byte, payload func(io.Writer) error) error {
		writeU32(kind)
		binary.Write(out, binary.LittleEndian, length)
		out.Write(sum[:])
		if cw.err != nil {
			return cw.err
		}
		return payload(cw) // payloads bypass the digest hash
	}

	metaSum := sha256.Sum256(meta)
	err = writeSection(kindMeta, uint64(len(meta)), metaSum, func(w io.Writer) error {
		_, err := w.Write(meta)
		return err
	})
	if err != nil {
		return cw.n, err
	}
	for i, ix := range f.Indexes {
		// First pass: measure and hash the blob without retaining it.
		ph := sha256.New()
		pc := &countingWriter{w: ph}
		if _, err := ix.WriteTo(pc); err != nil {
			return cw.n, fmt.Errorf("index: hashing shard %d: %w", i, err)
		}
		var sum [32]byte
		ph.Sum(sum[:0])
		err = writeSection(kindShard, uint64(pc.n), sum, func(w io.Writer) error {
			// Second pass: WriteTo is deterministic, so this emits the
			// exact bytes hashed above.
			n, err := ix.WriteTo(w)
			if err == nil && n != pc.n {
				return fmt.Errorf("index: shard %d wrote %d bytes after hashing %d", i, n, pc.n)
			}
			return err
		})
		if err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	hdr.Sum(f.digest[:0])
	return cw.n, nil
}

// Save writes the artifact to path atomically (temp file + rename).
func Save(path string, f *File) error {
	tmp, err := os.CreateTemp(dirOf(path), ".index-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := f.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// sectionReader walks the container structure shared by Load and
// ReadInfo: header, then per-section headers with payload handling
// delegated to the caller.
type sectionReader struct {
	br    *bufio.Reader
	limit int64 // remaining input bytes, bounds every allocation
	hdr   hash.Hash
}

func newSectionReader(r io.Reader, size int64) (*sectionReader, int, error) {
	sr := &sectionReader{br: bufio.NewReaderSize(r, 1<<20), limit: size, hdr: sha256.New()}
	var magic, version, nsect uint32
	if err := sr.readHeaderInto(&magic); err != nil {
		return nil, 0, fmt.Errorf("index: reading magic: %w", err)
	}
	if magic != containerMagic {
		return nil, 0, fmt.Errorf("index: bad magic %#x: %w", magic, ErrFormat)
	}
	if err := sr.readHeaderInto(&version); err != nil {
		return nil, 0, err
	}
	if version != containerVersion {
		return nil, 0, fmt.Errorf("index: unsupported container version %d: %w", version, ErrFormat)
	}
	if err := sr.readHeaderInto(&nsect); err != nil {
		return nil, 0, err
	}
	if nsect < 2 || nsect > maxSections {
		return nil, 0, fmt.Errorf("index: implausible section count %d: %w", nsect, ErrFormat)
	}
	return sr, int(nsect), nil
}

// readHeaderInto reads a fixed-width header field, feeding the digest.
func (sr *sectionReader) readHeaderInto(v any) error {
	before := sr.limit
	err := binary.Read(io.TeeReader(sr.br, sr.hdr), binary.LittleEndian, v)
	if err == nil {
		sr.limit = before - int64(binary.Size(v))
	}
	return err
}

// nextSection reads one section header and validates the length against
// the remaining input.
func (sr *sectionReader) nextSection() (kind uint32, length uint64, sum [32]byte, err error) {
	if err = sr.readHeaderInto(&kind); err != nil {
		return
	}
	if err = sr.readHeaderInto(&length); err != nil {
		return
	}
	if err = sr.readHeaderInto(&sum); err != nil {
		return
	}
	if sr.limit >= 0 && length > uint64(sr.limit) {
		err = fmt.Errorf("index: section declares %d bytes with %d remaining: %w",
			length, sr.limit, ErrFormat)
		return
	}
	return
}

func (sr *sectionReader) digest() (d [32]byte) {
	sr.hdr.Sum(d[:0])
	return
}

// readMeta consumes and verifies the meta section (which must be the
// container's first).
func (sr *sectionReader) readMeta() (*Meta, error) {
	kind, length, sum, err := sr.nextSection()
	if err != nil {
		return nil, err
	}
	if kind != kindMeta {
		return nil, fmt.Errorf("index: first section has kind %d, want meta: %w", kind, ErrFormat)
	}
	if length > maxMetaBytes {
		return nil, fmt.Errorf("index: meta section of %d bytes: %w", length, ErrFormat)
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(sr.br, buf); err != nil {
		return nil, err
	}
	sr.limit -= int64(length)
	if got := sha256.Sum256(buf); got != sum {
		return nil, &ChecksumError{Section: 0, Kind: kindMeta, Want: sum, Got: got}
	}
	var m Meta
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("index: decoding meta: %w: %w", err, ErrFormat)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Meta) validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("index: meta declares no shards: %w", ErrFormat)
	}
	if len(m.Contigs) == 0 {
		return fmt.Errorf("index: meta declares no contigs: %w", ErrFormat)
	}
	total := int64(0)
	for _, c := range m.Contigs {
		if int64(c.Offset) != total || c.Length <= 0 {
			return fmt.Errorf("index: contig %q has inconsistent layout: %w", c.Name, ErrFormat)
		}
		total += int64(c.Length)
	}
	if total != m.RefBases {
		return fmt.Errorf("index: contigs cover %d bases, meta declares %d: %w",
			total, m.RefBases, ErrFormat)
	}
	prev := int64(0)
	for i, s := range m.Shards {
		if s.OwnStart != prev || s.OwnEnd < s.OwnStart ||
			s.SliceStart > s.OwnStart || s.SliceEnd < s.OwnEnd ||
			s.SliceStart < 0 || s.SliceEnd > m.RefBases {
			return fmt.Errorf("index: shard %d has inconsistent geometry: %w", i, ErrFormat)
		}
		prev = s.OwnEnd
	}
	if prev != m.RefBases {
		return fmt.Errorf("index: shards own %d of %d bases: %w", prev, m.RefBases, ErrFormat)
	}
	return nil
}

// Load reads and fully verifies an artifact: every section checksum is
// checked (typed *ChecksumError on mismatch) and every FM-index is
// deserialized through the hardened fmindex.ReadFrom. size is the total
// input length if known (bounds section allocations); pass < 0 when
// unknown. The artifact digest is available via Digest afterwards.
func Load(r io.Reader, size int64) (*File, error) {
	sr, nsect, err := newSectionReader(r, size)
	if err != nil {
		return nil, err
	}
	m, err := sr.readMeta()
	if err != nil {
		return nil, err
	}
	if nsect != 1+len(m.Shards) {
		return nil, fmt.Errorf("index: %d sections for %d shards: %w", nsect, len(m.Shards), ErrFormat)
	}
	f := &File{Meta: *m, Indexes: make([]*fmindex.Index, len(m.Shards))}
	for i := range f.Indexes {
		kind, length, sum, err := sr.nextSection()
		if err != nil {
			return nil, err
		}
		if kind != kindShard {
			return nil, fmt.Errorf("index: section %d has kind %d, want shard: %w", 1+i, kind, ErrFormat)
		}
		// Verify the checksum over exactly the declared payload while the
		// FM-index deserializer consumes it.
		ph := sha256.New()
		lr := io.LimitReader(sr.br, int64(length))
		ix, err := fmindex.ReadFrom(io.TeeReader(lr, ph))
		if err != nil {
			// Checksum first: a flipped byte usually surfaces as an fmindex
			// parse error, but the actionable diagnosis is the corruption.
			if _, derr := io.Copy(ph, lr); derr == nil {
				var got [32]byte
				ph.Sum(got[:0])
				if got != sum {
					return nil, &ChecksumError{Section: 1 + i, Kind: kindShard, Want: sum, Got: got}
				}
			}
			return nil, fmt.Errorf("index: shard %d: %w", i, err)
		}
		if _, err := io.Copy(ph, lr); err != nil { // drain any trailing bytes
			return nil, err
		}
		sr.limit -= int64(length)
		var got [32]byte
		ph.Sum(got[:0])
		if got != sum {
			return nil, &ChecksumError{Section: 1 + i, Kind: kindShard, Want: sum, Got: got}
		}
		want := m.Shards[i].SliceEnd - m.Shards[i].SliceStart
		if int64(ix.Len()) != want {
			return nil, fmt.Errorf("index: shard %d holds %d bases, geometry implies %d: %w",
				i, ix.Len(), want, ErrFormat)
		}
		f.Indexes[i] = ix
	}
	f.digest = sr.digest()
	return f, nil
}

// LoadFile opens and fully verifies the artifact at path.
func LoadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	f, err := Load(fh, st.Size())
	if err != nil {
		return nil, fmt.Errorf("loading index %s: %w", path, err)
	}
	return f, nil
}

// SectionInfo summarizes one container section for `index info`.
type SectionInfo struct {
	Kind   uint32
	Length uint64
	SHA256 [32]byte
}

// Info is the cheap artifact summary: metadata and section table read
// without deserializing (or verifying) the FM-index payloads. Only the
// meta checksum is validated.
type Info struct {
	Meta     Meta
	Sections []SectionInfo
	Digest   [32]byte
	// TotalBytes is the container size implied by the section table.
	TotalBytes int64
}

// ReadInfo reads the artifact summary, skipping shard payloads. The
// digest it reports matches Load and WriteTo.
func ReadInfo(r io.Reader, size int64) (*Info, error) {
	sr, nsect, err := newSectionReader(r, size)
	if err != nil {
		return nil, err
	}
	m, err := sr.readMeta()
	if err != nil {
		return nil, err
	}
	if nsect != 1+len(m.Shards) {
		return nil, fmt.Errorf("index: %d sections for %d shards: %w", nsect, len(m.Shards), ErrFormat)
	}
	info := &Info{Meta: *m}
	meta, _ := json.Marshal(m)
	info.Sections = append(info.Sections, SectionInfo{Kind: kindMeta, Length: uint64(len(meta)), SHA256: sha256.Sum256(meta)})
	for i := 1; i < nsect; i++ {
		kind, length, sum, err := sr.nextSection()
		if err != nil {
			return nil, err
		}
		if _, err := io.CopyN(io.Discard, sr.br, int64(length)); err != nil {
			return nil, err
		}
		sr.limit -= int64(length)
		info.Sections = append(info.Sections, SectionInfo{Kind: kind, Length: length, SHA256: sum})
	}
	info.Digest = sr.digest()
	for _, s := range info.Sections {
		info.TotalBytes += int64(s.Length) + 4 + 8 + 32
	}
	info.TotalBytes += 12 // container header
	return info, nil
}

// ReadInfoFile reads the summary of the artifact at path.
func ReadInfoFile(path string) (*Info, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	info, err := ReadInfo(fh, st.Size())
	if err != nil {
		return nil, fmt.Errorf("reading index %s: %w", path, err)
	}
	return info, nil
}

// Genome reconstructs the reference genome tables from the artifact. For
// a single-shard file the full text is available from the index; sharded
// files return a genome bound to shard 0's slice only when it covers the
// whole reference, otherwise the contig table with a nil text is not
// representable by genome.Genome — callers needing coordinates only
// should use Meta.Contigs with genome.FromContigs.
func (f *File) Genome() (*genome.Genome, error) {
	if f.Meta.Sharded() {
		return nil, fmt.Errorf("index: sharded artifact holds no contiguous reference text")
	}
	return genome.FromParts(f.Meta.Contigs, f.Indexes[0].Text().Unpack())
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
