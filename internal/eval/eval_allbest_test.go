package eval

import (
	"testing"

	"repro/internal/mapper"
)

func md(pos int32, strand byte, dist uint8) mapper.Mapping {
	return mapper.Mapping{Pos: pos, Strand: strand, Dist: dist}
}

func TestAccuracyAllBest(t *testing.T) {
	gold := [][]mapper.Mapping{
		// read 0: best stratum is dist 1 at {10, 20}; dist 3 at 30.
		{md(10, '+', 1), md(20, '+', 1), md(30, '+', 3)},
		// read 1: single best location.
		{md(100, '-', 0)},
		// read 2: unmapped in gold — excluded from the denominator.
		{},
	}
	full := [][]mapper.Mapping{
		{md(10, '+', 1), md(20, '+', 1)}, // both best found, dist-3 miss is fine
		{md(100, '-', 0)},
		{},
	}
	if got := AccuracyAllBest(gold, full, 0); got != 100 {
		t.Errorf("full = %v want 100", got)
	}
	partial := [][]mapper.Mapping{
		{md(10, '+', 1)}, // one of two best: read fails all-best
		{md(100, '-', 0)},
		{},
	}
	if got := AccuracyAllBest(gold, partial, 0); got != 50 {
		t.Errorf("partial = %v want 50", got)
	}
	// Under any-best the same partial output scores 100.
	if got := AccuracyAnyBest(gold, partial, 0); got != 100 {
		t.Errorf("any-best(partial) = %v want 100", got)
	}
}

func TestAccuracyAllBestNotAboveAnyBest(t *testing.T) {
	// A read passing all-best necessarily passes any-best, so the
	// per-read metrics are ordered (all-locations is per-location and
	// not comparable).
	gold := [][]mapper.Mapping{
		{md(10, '+', 1), md(20, '+', 1), md(30, '+', 2)},
		{md(50, '-', 0), md(60, '-', 0)},
		{md(70, '+', 2)},
	}
	test := [][]mapper.Mapping{
		{md(10, '+', 1)},
		{md(50, '-', 0), md(60, '-', 0)},
		{},
	}
	allBest := AccuracyAllBest(gold, test, 0)
	anyBest := AccuracyAnyBest(gold, test, 0)
	if allBest > anyBest {
		t.Errorf("all-best %v above any-best %v", allBest, anyBest)
	}
}

func TestAccuracyAllBestEmpty(t *testing.T) {
	if got := AccuracyAllBest([][]mapper.Mapping{{}}, [][]mapper.Mapping{{}}, 0); got != 0 {
		t.Errorf("no gold-mapped reads = %v want 0", got)
	}
}
