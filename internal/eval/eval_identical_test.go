package eval

import (
	"testing"

	"repro/internal/mapper"
)

func TestIdenticalMappings(t *testing.T) {
	m := func(pos int32, strand byte, dist uint8) mapper.Mapping {
		return mapper.Mapping{Pos: pos, Strand: strand, Dist: dist}
	}
	a := [][]mapper.Mapping{
		{m(10, '+', 0), m(90, '-', 2)},
		nil,
		{m(40, '+', 1)},
	}

	if ok, i := IdenticalMappings(a, a); !ok || i != -1 {
		t.Errorf("self comparison = (%v, %d), want (true, -1)", ok, i)
	}

	b := [][]mapper.Mapping{
		{m(10, '+', 0), m(90, '-', 2)},
		nil,
		{m(40, '+', 2)}, // distance differs
	}
	if ok, i := IdenticalMappings(a, b); ok || i != 2 {
		t.Errorf("distance diff = (%v, %d), want (false, 2)", ok, i)
	}

	c := [][]mapper.Mapping{
		{m(10, '+', 0)}, // one location missing
		nil,
		{m(40, '+', 1)},
	}
	if ok, i := IdenticalMappings(a, c); ok || i != 0 {
		t.Errorf("count diff = (%v, %d), want (false, 0)", ok, i)
	}

	if ok, i := IdenticalMappings(a, a[:2]); ok || i != 2 {
		t.Errorf("length diff = (%v, %d), want (false, 2)", ok, i)
	}
}
