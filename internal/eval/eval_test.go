package eval

import (
	"testing"

	"repro/internal/mapper"
)

func m(pos int32, strand byte) mapper.Mapping {
	return mapper.Mapping{Pos: pos, Strand: strand}
}

func TestAccuracyAllExact(t *testing.T) {
	gold := [][]mapper.Mapping{
		{m(10, '+'), m(50, '-')},
		{m(100, '+')},
	}
	test := [][]mapper.Mapping{
		{m(10, '+'), m(50, '-')},
		{m(100, '+')},
	}
	if got := AccuracyAll(gold, test, 0); got != 100 {
		t.Errorf("exact match accuracy = %v want 100", got)
	}
}

func TestAccuracyAllPartial(t *testing.T) {
	gold := [][]mapper.Mapping{
		{m(10, '+'), m(50, '-'), m(90, '+'), m(120, '+')},
	}
	test := [][]mapper.Mapping{
		{m(10, '+'), m(90, '+')},
	}
	if got := AccuracyAll(gold, test, 0); got != 50 {
		t.Errorf("accuracy = %v want 50", got)
	}
}

func TestAccuracyTolerance(t *testing.T) {
	gold := [][]mapper.Mapping{{m(100, '+')}}
	near := [][]mapper.Mapping{{m(103, '+')}}
	if got := AccuracyAll(gold, near, 3); got != 100 {
		t.Errorf("within-tol accuracy = %v want 100", got)
	}
	if got := AccuracyAll(gold, near, 2); got != 0 {
		t.Errorf("out-of-tol accuracy = %v want 0", got)
	}
	// Same position, wrong strand never matches.
	wrong := [][]mapper.Mapping{{m(100, '-')}}
	if got := AccuracyAll(gold, wrong, 5); got != 0 {
		t.Errorf("wrong-strand accuracy = %v want 0", got)
	}
}

func TestAccuracyAnyBest(t *testing.T) {
	gold := [][]mapper.Mapping{
		{m(10, '+'), m(50, '-'), m(90, '+')}, // read 0: 3 gold locations
		{m(200, '+')},                        // read 1
		{},                                   // read 2: unmapped in gold, ignored
	}
	test := [][]mapper.Mapping{
		{m(50, '-')}, // one of three: read counts as hit under any-best
		{},           // miss
		{m(5, '+')},  // irrelevant
	}
	if got := AccuracyAnyBest(gold, test, 0); got != 50 {
		t.Errorf("any-best = %v want 50", got)
	}
	if got := AccuracyAll(gold, test, 0); got != 25 {
		t.Errorf("all-locations = %v want 25", got)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if got := AccuracyAll(nil, nil, 0); got != 0 {
		t.Errorf("empty = %v want 0", got)
	}
	gold := [][]mapper.Mapping{{}}
	test := [][]mapper.Mapping{{}}
	if got := AccuracyAnyBest(gold, test, 0); got != 0 {
		t.Errorf("no gold-mapped reads = %v want 0", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	AccuracyAll([][]mapper.Mapping{{}}, nil, 0)
}

func TestSensitivity(t *testing.T) {
	origins := []Origin{
		{Pos: 10, Strand: '+', Edits: 2},
		{Pos: 20, Strand: '-', Edits: 3},
		{Pos: 30, Strand: '+', Edits: 9}, // over budget: excluded
	}
	test := [][]mapper.Mapping{
		{m(11, '+')},
		{},
		{},
	}
	if got := Sensitivity(test, origins, 5, 2); got != 50 {
		t.Errorf("sensitivity = %v want 50", got)
	}
	if got := Sensitivity(test, origins[2:], 5, 2); got != 0 {
		t.Errorf("no eligible = %v want 0", got)
	}
}

func TestMatchesBinarySearchBoundaries(t *testing.T) {
	ms := []mapper.Mapping{m(10, '+'), m(20, '-'), m(20, '+'), m(30, '+')}
	// mapper.Finalize sorts by Pos then Strand; emulate that ordering.
	cases := []struct {
		pos    int32
		strand byte
		tol    int32
		want   bool
	}{
		{10, '+', 0, true},
		{9, '+', 0, false},
		{9, '+', 1, true},
		{20, '-', 0, true},
		{20, '+', 0, true},
		{31, '+', 1, true},
		{32, '+', 1, false},
	}
	for _, tc := range cases {
		if got := matches(ms, tc.pos, tc.strand, tc.tol); got != tc.want {
			t.Errorf("matches(pos=%d strand=%c tol=%d) = %v want %v",
				tc.pos, tc.strand, tc.tol, got, tc.want)
		}
	}
}
