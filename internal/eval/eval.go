// Package eval implements the paper's two accuracy measurements against a
// gold-standard mapper (RazerS3 in both the paper and this reproduction):
//
//   - §III-A (all-locations): every mapping location the gold standard
//     reports for a read is searched in the candidate mapper's output;
//     accuracy is the fraction of gold locations found. All-mappers score
//     ~100 here, best-mappers a few percent (they report few locations).
//
//   - §III-B (any-best, after the Rabema benchmark): a read counts as
//     correct if the candidate reports at least one location+strand that
//     matches any gold location for that read; accuracy is the fraction
//     of gold-mapped reads covered. Best-mappers recover to ~90-100 here.
//
// Locations match when strands are equal and positions differ by at most
// a tolerance, normally δ — mappers legitimately disagree by the indel
// offset about where an alignment "starts".
package eval

import (
	"fmt"

	"repro/internal/mapper"
)

// matches reports whether ms (sorted by Pos, as mapper.Finalize emits)
// contains a location within ±tol of pos on the given strand.
func matches(ms []mapper.Mapping, pos int32, strand byte, tol int32) bool {
	// Binary search for the first mapping with Pos >= pos-tol.
	lo, hi := 0, len(ms)
	for lo < hi {
		mid := (lo + hi) / 2
		if ms[mid].Pos < pos-tol {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(ms) && ms[lo].Pos <= pos+tol; lo++ {
		if ms[lo].Strand == strand {
			return true
		}
	}
	return false
}

// AccuracyAll computes the §III-A metric: the percentage of gold-standard
// locations that appear in test output. gold and test are per-read
// mapping lists of equal length.
func AccuracyAll(gold, test [][]mapper.Mapping, tol int32) float64 {
	if len(gold) != len(test) {
		panic("eval: gold/test length mismatch")
	}
	total, found := 0, 0
	for i := range gold {
		for _, g := range gold[i] {
			total++
			if matches(test[i], g.Pos, g.Strand, tol) {
				found++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(found) / float64(total)
}

// AccuracyAnyBest computes the §III-B metric: the percentage of
// gold-mapped reads for which test reports at least one matching
// location and strand.
func AccuracyAnyBest(gold, test [][]mapper.Mapping, tol int32) float64 {
	if len(gold) != len(test) {
		panic("eval: gold/test length mismatch")
	}
	mapped, hit := 0, 0
	for i := range gold {
		if len(gold[i]) == 0 {
			continue
		}
		mapped++
		for _, g := range gold[i] {
			if matches(test[i], g.Pos, g.Strand, tol) {
				hit++
				break
			}
		}
	}
	if mapped == 0 {
		return 0
	}
	return 100 * float64(hit) / float64(mapped)
}

// AccuracyAllBest computes the remaining Rabema category: a read counts
// as correct when *every* gold location in the best (lowest-distance)
// stratum is present in the test output. Stricter than any-best, looser
// than all-locations.
func AccuracyAllBest(gold, test [][]mapper.Mapping, tol int32) float64 {
	if len(gold) != len(test) {
		panic("eval: gold/test length mismatch")
	}
	mapped, ok := 0, 0
	for i := range gold {
		if len(gold[i]) == 0 {
			continue
		}
		mapped++
		best := gold[i][0].Dist
		for _, g := range gold[i][1:] {
			if g.Dist < best {
				best = g.Dist
			}
		}
		all := true
		for _, g := range gold[i] {
			if g.Dist != best {
				continue
			}
			if !matches(test[i], g.Pos, g.Strand, tol) {
				all = false
				break
			}
		}
		if all {
			ok++
		}
	}
	if mapped == 0 {
		return 0
	}
	return 100 * float64(ok) / float64(mapped)
}

// Sensitivity measures recovery of simulated ground truth: the percentage
// of reads with origin edit load <= maxErrors whose origin location and
// strand appear in the mapper output. It complements the gold-standard
// metrics in tests.
func Sensitivity(test [][]mapper.Mapping, origins []Origin, maxErrors int, tol int32) float64 {
	eligible, found := 0, 0
	for i, o := range origins {
		if int(o.Edits) > maxErrors {
			continue
		}
		eligible++
		if matches(test[i], o.Pos, o.Strand, tol) {
			found++
		}
	}
	if eligible == 0 {
		return 0
	}
	return 100 * float64(found) / float64(eligible)
}

// Origin mirrors simulate.Origin without importing it (keeps eval free of
// the workload generator; callers convert).
type Origin struct {
	Pos    int32
	Strand byte
	Edits  uint8
}

// IdenticalMappings reports whether two per-read mapping lists are
// exactly equal: same reads, same locations, strands and distances, in
// the same order. Unlike the accuracy metrics it tolerates nothing — it
// is the check the fault-tolerance experiments use to show that recovery
// changes when and where reads map, never what they map to. The second
// result is the index of the first differing read (-1 when identical).
func IdenticalMappings(a, b [][]mapper.Mapping) (bool, int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if len(a[i]) != len(b[i]) {
			return false, i
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false, i
			}
		}
	}
	if len(a) != len(b) {
		return false, n
	}
	return true, -1
}

// PrefilterGate is the accuracy-regression gate for the pre-alignment
// filter: a filter is only allowed to discard candidate locations the
// verifier would reject anyway, so a filtered run must produce mappings
// byte-identical to the unfiltered run — not merely accuracy-equivalent.
// It returns nil when the outputs match and an error naming the first
// differing read otherwise.
func PrefilterGate(unfiltered, filtered [][]mapper.Mapping) error {
	if ok, i := IdenticalMappings(unfiltered, filtered); !ok {
		if i >= len(unfiltered) || i >= len(filtered) {
			return fmt.Errorf("eval: prefilter gate: read counts differ (%d unfiltered, %d filtered)",
				len(unfiltered), len(filtered))
		}
		return fmt.Errorf("eval: prefilter gate: read %d differs (%d unfiltered vs %d filtered mappings)",
			i, len(unfiltered[i]), len(filtered[i]))
	}
	return nil
}
