package genome

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/fastx"
)

func mustNew(t *testing.T) *Genome {
	t.Helper()
	g, err := New(
		[]string{"chr1", "chr2", "chr3"},
		[][]byte{
			dna.MustEncode("ACGTACGTAC"), // 10
			dna.MustEncode("TTTT"),       // 4
			dna.MustEncode("GGGGGG"),     // 6
		})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty genome accepted")
	}
	if _, err := New([]string{"a"}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := New([]string{"a", "a"}, [][]byte{{0}, {1}}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := New([]string{""}, [][]byte{{0}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New([]string{"a"}, [][]byte{{}}); err == nil {
		t.Error("empty contig accepted")
	}
}

func TestTextConcatenation(t *testing.T) {
	g := mustNew(t)
	if g.Len() != 20 {
		t.Fatalf("Len = %d want 20", g.Len())
	}
	want := "ACGTACGTACTTTTGGGGGG"
	if got := dna.Decode(g.Text()); got != want {
		t.Errorf("Text = %q want %q", got, want)
	}
	if len(g.Contigs()) != 3 {
		t.Errorf("contigs = %v", g.Contigs())
	}
}

func TestLocate(t *testing.T) {
	g := mustNew(t)
	cases := []struct {
		pos  int
		name string
		off  int
	}{
		{0, "chr1", 0}, {9, "chr1", 9},
		{10, "chr2", 0}, {13, "chr2", 3},
		{14, "chr3", 0}, {19, "chr3", 5},
	}
	for _, tc := range cases {
		c, off, err := g.Locate(tc.pos)
		if err != nil {
			t.Fatalf("Locate(%d): %v", tc.pos, err)
		}
		if c.Name != tc.name || off != tc.off {
			t.Errorf("Locate(%d) = %s:%d want %s:%d", tc.pos, c.Name, off, tc.name, tc.off)
		}
	}
	for _, bad := range []int{-1, 20, 100} {
		if _, _, err := g.Locate(bad); err == nil {
			t.Errorf("Locate(%d) accepted", bad)
		}
	}
}

func TestGlobalRoundTrip(t *testing.T) {
	g := mustNew(t)
	f := func(raw uint16) bool {
		pos := int(raw) % g.Len()
		c, off, err := g.Locate(pos)
		if err != nil {
			return false
		}
		back, err := g.Global(c.Name, off)
		return err == nil && back == pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if _, err := g.Global("nope", 0); err == nil {
		t.Error("unknown contig accepted")
	}
	if _, err := g.Global("chr2", 4); err == nil {
		t.Error("offset past contig end accepted")
	}
}

func TestSpansBoundary(t *testing.T) {
	g := mustNew(t)
	cases := []struct {
		pos, length int
		want        bool
	}{
		{0, 10, false}, // exactly chr1
		{0, 11, true},  // into chr2
		{8, 2, false},  // chr1 tail
		{8, 3, true},   // crosses into chr2
		{10, 4, false}, // exactly chr2
		{14, 6, false}, // exactly chr3
		{14, 7, true},  // past the end
		{-1, 2, true},  // invalid
		{19, 1, false}, // last base
		{19, 2, true},  // overruns
	}
	for _, tc := range cases {
		if got := g.SpansBoundary(tc.pos, tc.length); got != tc.want {
			t.Errorf("SpansBoundary(%d,%d) = %v want %v", tc.pos, tc.length, got, tc.want)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	g := mustNew(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(bufio.NewReader(&buf), g.Text())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contigs()) != 3 || got.Contigs()[1] != g.Contigs()[1] {
		t.Errorf("contigs = %+v want %+v", got.Contigs(), g.Contigs())
	}
}

func TestReadTableRejectsCorruption(t *testing.T) {
	g := mustNew(t)
	var buf bytes.Buffer
	g.WriteTo(&buf)
	// Text of the wrong length must be rejected.
	if _, err := ReadTable(bufio.NewReader(bytes.NewReader(buf.Bytes())), g.Text()[:10]); err == nil {
		t.Error("short text accepted")
	}
	if _, err := ReadTable(bufio.NewReader(bytes.NewReader([]byte("junk"))), g.Text()); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFromFasta(t *testing.T) {
	recs := []fastx.Record{
		{Name: "c1", Seq: []byte("ACGT")},
		{Name: "c2", Seq: []byte("GGNN")},
	}
	if _, err := FromFasta(recs, nil); err == nil {
		t.Error("ambiguous bases accepted with nil rng")
	}
	g, err := FromFasta(recs, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 || g.Contigs()[1].Name != "c2" {
		t.Errorf("genome = %+v", g.Contigs())
	}
}
