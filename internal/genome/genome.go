// Package genome handles multi-contig references: real genomes are sets
// of named sequences (chromosomes, scaffolds), while the index and the
// mappers work over one concatenated text. Genome tracks the contig
// boundaries, converts between global and per-contig coordinates, and
// rejects alignments that would straddle two contigs — exactly what a
// downstream user needs to run this mapper on something other than the
// paper's single chromosome 21.
package genome

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/fastx"
)

// Contig is one named sequence in the reference.
type Contig struct {
	Name   string
	Offset int // start in the concatenated text
	Length int
}

// Genome is an immutable set of contigs over one concatenated text. A
// coordinate-only genome (FromContigs) has textLen set but no text: all
// coordinate conversions work, Text returns nil.
type Genome struct {
	contigs []Contig
	text    []byte // concatenated base codes (nil when coordinate-only)
	textLen int    // total length, valid even without text
}

// New builds a genome from named sequences of base codes. Contig order is
// preserved; names must be unique and sequences non-empty.
func New(names []string, seqs [][]byte) (*Genome, error) {
	if len(names) != len(seqs) {
		return nil, fmt.Errorf("genome: %d names for %d sequences", len(names), len(seqs))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("genome: no contigs")
	}
	g := &Genome{}
	seen := map[string]bool{}
	offset := 0
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("genome: contig %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("genome: duplicate contig name %q", name)
		}
		seen[name] = true
		if len(seqs[i]) == 0 {
			return nil, fmt.Errorf("genome: contig %q is empty", name)
		}
		g.contigs = append(g.contigs, Contig{Name: name, Offset: offset, Length: len(seqs[i])})
		g.text = append(g.text, seqs[i]...)
		offset += len(seqs[i])
	}
	g.textLen = len(g.text)
	return g, nil
}

// FromFasta loads a genome from FASTA records, converting ambiguous bases
// with rng (nil rejects them), mirroring index-building practice.
func FromFasta(recs []fastx.Record, rng *rand.Rand) (*Genome, error) {
	names := make([]string, len(recs))
	seqs := make([][]byte, len(recs))
	for i, rec := range recs {
		names[i] = rec.Name
		codes, err := fastx.CodesOf(rec, rng)
		if err != nil {
			return nil, err
		}
		seqs[i] = codes
	}
	return New(names, seqs)
}

// Text returns the concatenated base codes (shared, do not modify); this
// is what gets indexed.
func (g *Genome) Text() []byte { return g.text }

// Len returns the total concatenated length.
func (g *Genome) Len() int { return g.textLen }

// Contigs returns the contig table in order.
func (g *Genome) Contigs() []Contig { return g.contigs }

// Locate converts a global position into (contig, offset within contig).
func (g *Genome) Locate(pos int) (Contig, int, error) {
	if pos < 0 || pos >= g.textLen {
		return Contig{}, 0, fmt.Errorf("genome: position %d out of range 0..%d", pos, g.textLen-1)
	}
	// Binary search for the last contig with Offset <= pos.
	i := sort.Search(len(g.contigs), func(i int) bool {
		return g.contigs[i].Offset > pos
	}) - 1
	c := g.contigs[i]
	return c, pos - c.Offset, nil
}

// Global converts (contig name, offset) back to a global position.
func (g *Genome) Global(name string, off int) (int, error) {
	for _, c := range g.contigs {
		if c.Name == name {
			if off < 0 || off >= c.Length {
				return 0, fmt.Errorf("genome: offset %d outside contig %q (len %d)", off, name, c.Length)
			}
			return c.Offset + off, nil
		}
	}
	return 0, fmt.Errorf("genome: unknown contig %q", name)
}

// WriteTo serializes the contig table (not the sequence — that lives in
// the FM-index). Implements io.WriterTo.
func (g *Genome) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "GENOME\t%d\n", len(g.contigs))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, c := range g.contigs {
		n, err := fmt.Fprintf(w, "%s\t%d\t%d\n", c.Name, c.Offset, c.Length)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadContigs deserializes just the contig table written by WriteTo;
// FromParts attaches it to a text afterwards (the text usually follows
// the table in the same file, inside the FM-index blob).
func ReadContigs(r *bufio.Reader) ([]Contig, error) {
	var count int
	if _, err := fmt.Fscanf(r, "GENOME\t%d\n", &count); err != nil {
		return nil, fmt.Errorf("genome: bad table header: %w", err)
	}
	if count <= 0 || count > 1<<20 {
		return nil, fmt.Errorf("genome: implausible contig count %d", count)
	}
	var contigs []Contig
	total := 0
	for i := 0; i < count; i++ {
		var c Contig
		if _, err := fmt.Fscanf(r, "%s\t%d\t%d\n", &c.Name, &c.Offset, &c.Length); err != nil {
			return nil, fmt.Errorf("genome: contig %d: %w", i, err)
		}
		if c.Offset != total || c.Length <= 0 {
			return nil, fmt.Errorf("genome: contig %q has inconsistent layout", c.Name)
		}
		total += c.Length
		contigs = append(contigs, c)
	}
	return contigs, nil
}

// FromParts builds a genome from an already-validated contig table and
// its concatenated text, verifying they agree on total length.
func FromParts(contigs []Contig, text []byte) (*Genome, error) {
	if len(contigs) == 0 {
		return nil, fmt.Errorf("genome: no contigs")
	}
	total := 0
	for _, c := range contigs {
		total += c.Length
	}
	if total != len(text) {
		return nil, fmt.Errorf("genome: contigs cover %d bases, text has %d", total, len(text))
	}
	return &Genome{contigs: contigs, text: text, textLen: total}, nil
}

// FromContigs builds a coordinate-only genome from a validated contig
// table: Locate, Global and SpansBoundary work, Text returns nil. Used
// when the reference text lives elsewhere (e.g. sharded index artifacts
// hold per-slice texts and only the contig table travels in the meta).
func FromContigs(contigs []Contig) (*Genome, error) {
	if len(contigs) == 0 {
		return nil, fmt.Errorf("genome: no contigs")
	}
	total := 0
	for _, c := range contigs {
		if c.Offset != total || c.Length <= 0 {
			return nil, fmt.Errorf("genome: contig %q has inconsistent layout", c.Name)
		}
		total += c.Length
	}
	return &Genome{contigs: contigs, textLen: total}, nil
}

// ReadTable deserializes a contig table written by WriteTo and attaches
// it to the given concatenated text (typically Index.Text().Unpack()).
func ReadTable(r *bufio.Reader, text []byte) (*Genome, error) {
	contigs, err := ReadContigs(r)
	if err != nil {
		return nil, err
	}
	return FromParts(contigs, text)
}

// SpansBoundary reports whether the interval [pos, pos+length) crosses a
// contig boundary — such alignments are artefacts of concatenation and
// must be discarded by callers.
func (g *Genome) SpansBoundary(pos, length int) bool {
	if pos < 0 || pos+length > g.textLen {
		return true
	}
	c, off, err := g.Locate(pos)
	if err != nil {
		return true
	}
	return off+length > c.Length
}
