package genome

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLocateSpansProperty(t *testing.T) {
	// Random contig layouts: Locate and SpansBoundary must agree with a
	// brute-force walk of the contig table.
	f := func(sizesRaw []uint8, posRaw, lenRaw uint16) bool {
		var names []string
		var seqs [][]byte
		rng := rand.New(rand.NewSource(int64(posRaw)))
		for i, s := range sizesRaw {
			size := 1 + int(s)%200
			names = append(names, fmt.Sprintf("c%d", i))
			seq := make([]byte, size)
			for j := range seq {
				seq[j] = byte(rng.Intn(4))
			}
			seqs = append(seqs, seq)
			if len(names) == 8 {
				break
			}
		}
		if len(names) == 0 {
			return true
		}
		g, err := New(names, seqs)
		if err != nil {
			return false
		}
		pos := int(posRaw) % g.Len()
		length := 1 + int(lenRaw)%150

		// Brute force: find contig by scanning.
		at := 0
		var wantName string
		var wantOff int
		for i, s := range seqs {
			if pos < at+len(s) {
				wantName, wantOff = names[i], pos-at
				break
			}
			at += len(s)
		}
		c, off, err := g.Locate(pos)
		if err != nil || c.Name != wantName || off != wantOff {
			return false
		}
		wantSpan := wantOff+length > len(seqs[indexOf(names, wantName)]) || pos+length > g.Len()
		return g.SpansBoundary(pos, length) == wantSpan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}
