// Package bitvec provides a static bit vector with O(1) rank support.
// The FM-index uses it to mark sampled suffix-array rows; it is small and
// allocation-free after construction.
package bitvec

import "math/bits"

// blockBits is the span covered by one precomputed rank entry.
const blockBits = 512

// Rank is an immutable bit vector of fixed length with constant-time
// Rank1 queries. Build one with a Builder.
type Rank struct {
	words []uint64
	// super[i] = number of set bits in words before block i.
	super []int32
	n     int
	ones  int
}

// Builder accumulates set bits before freezing into a Rank.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a builder for a vector of n bits, all initially zero.
func NewBuilder(n int) *Builder {
	return &Builder{words: make([]uint64, (n+63)/64), n: n}
}

// Set sets bit i.
func (b *Builder) Set(i int) {
	b.words[i>>6] |= 1 << uint(i&63)
}

// Build freezes the builder into a queryable Rank vector.
func (b *Builder) Build() *Rank {
	wordsPerBlock := blockBits / 64
	nBlocks := (len(b.words) + wordsPerBlock - 1) / wordsPerBlock
	super := make([]int32, nBlocks+1)
	total := 0
	for blk := 0; blk < nBlocks; blk++ {
		super[blk] = int32(total)
		for w := blk * wordsPerBlock; w < (blk+1)*wordsPerBlock && w < len(b.words); w++ {
			total += bits.OnesCount64(b.words[w])
		}
	}
	super[nBlocks] = int32(total)
	return &Rank{words: b.words, super: super, n: b.n, ones: total}
}

// Len returns the number of bits.
func (r *Rank) Len() int { return r.n }

// Ones returns the total number of set bits.
func (r *Rank) Ones() int { return r.ones }

// Get reports whether bit i is set.
func (r *Rank) Get(i int) bool {
	return r.words[i>>6]&(1<<uint(i&63)) != 0
}

// Rank1 returns the number of set bits in positions [0, i).
func (r *Rank) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i > r.n {
		i = r.n
	}
	blk := i / blockBits
	cnt := int(r.super[blk])
	wordsPerBlock := blockBits / 64
	firstWord := blk * wordsPerBlock
	lastWord := i >> 6
	for w := firstWord; w < lastWord; w++ {
		cnt += bits.OnesCount64(r.words[w])
	}
	if rem := uint(i & 63); rem != 0 {
		cnt += bits.OnesCount64(r.words[lastWord] & (1<<rem - 1))
	}
	return cnt
}

// SizeBytes reports the memory footprint of the structure, used by the
// simulated-device buffer accounting.
func (r *Rank) SizeBytes() int64 {
	return int64(len(r.words)*8 + len(r.super)*4)
}

// Words exposes the underlying bit words for serialization. The slice is
// shared; callers must not modify it.
func (r *Rank) Words() []uint64 { return r.words }

// FromWords reconstructs a Rank vector of n bits from raw words previously
// obtained via Words; the rank directory is recomputed.
func FromWords(words []uint64, n int) *Rank {
	b := &Builder{words: words, n: n}
	return b.Build()
}
