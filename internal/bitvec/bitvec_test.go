package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildFromBools(bitsIn []bool) *Rank {
	b := NewBuilder(len(bitsIn))
	for i, set := range bitsIn {
		if set {
			b.Set(i)
		}
	}
	return b.Build()
}

func TestEmpty(t *testing.T) {
	r := NewBuilder(0).Build()
	if r.Len() != 0 || r.Ones() != 0 || r.Rank1(0) != 0 {
		t.Errorf("empty vector misbehaves: len=%d ones=%d", r.Len(), r.Ones())
	}
}

func TestGetAndRankSmall(t *testing.T) {
	pattern := []bool{true, false, true, true, false, false, true}
	r := buildFromBools(pattern)
	wantRank := 0
	for i, set := range pattern {
		if r.Get(i) != set {
			t.Errorf("Get(%d) = %v want %v", i, r.Get(i), set)
		}
		if r.Rank1(i) != wantRank {
			t.Errorf("Rank1(%d) = %d want %d", i, r.Rank1(i), wantRank)
		}
		if set {
			wantRank++
		}
	}
	if r.Rank1(len(pattern)) != wantRank {
		t.Errorf("Rank1(n) = %d want %d", r.Rank1(len(pattern)), wantRank)
	}
	if r.Ones() != wantRank {
		t.Errorf("Ones = %d want %d", r.Ones(), wantRank)
	}
}

func TestRankAcrossBlockBoundaries(t *testing.T) {
	// Sizes straddling the 512-bit block boundary and 64-bit words.
	for _, n := range []int{63, 64, 65, 511, 512, 513, 1024, 1537} {
		rng := rand.New(rand.NewSource(int64(n)))
		pattern := make([]bool, n)
		for i := range pattern {
			pattern[i] = rng.Intn(3) == 0
		}
		r := buildFromBools(pattern)
		rank := 0
		for i := 0; i <= n; i++ {
			if got := r.Rank1(i); got != rank {
				t.Fatalf("n=%d: Rank1(%d) = %d want %d", n, i, got, rank)
			}
			if i < n && pattern[i] {
				rank++
			}
		}
	}
}

func TestRankOutOfRangeClamps(t *testing.T) {
	r := buildFromBools([]bool{true, true, false})
	if got := r.Rank1(100); got != 2 {
		t.Errorf("Rank1(past end) = %d want 2", got)
	}
	if got := r.Rank1(-5); got != 0 {
		t.Errorf("Rank1(negative) = %d want 0", got)
	}
}

func TestRankProperty(t *testing.T) {
	f := func(raw []byte, queryRaw uint16) bool {
		pattern := make([]bool, len(raw))
		for i, b := range raw {
			pattern[i] = b&1 == 1
		}
		r := buildFromBools(pattern)
		i := int(queryRaw)
		if len(pattern) > 0 {
			i %= len(pattern) + 1
		} else {
			i = 0
		}
		want := 0
		for j := 0; j < i; j++ {
			if pattern[j] {
				want++
			}
		}
		return r.Rank1(i) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesPositive(t *testing.T) {
	r := buildFromBools(make([]bool, 10_000))
	if r.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d want > 0", r.SizeBytes())
	}
}

func BenchmarkRank1(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	bld := NewBuilder(1 << 20)
	for i := 0; i < 1<<18; i++ {
		bld.Set(rng.Intn(1 << 20))
	}
	r := bld.Build()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Rank1(i & (1<<20 - 1))
	}
	_ = sink
}
