package fmindex

// Approximate backward search: enumerate the SA intervals of every string
// within a bounded number of substitutions of the pattern, by branching
// the backward-search extension. This is the engine behind Yara-style
// approximate seeds — filtration schemes that tolerate errors inside the
// seed itself. Cost grows steeply with the error bound, which is exactly
// why such mappers slow down at high δ.

// ApproxHit is one interval of occurrences of a pattern variant.
type ApproxHit struct {
	Lo, Hi int
	Errors int
}

// RangeApprox reports the SA intervals of all strings matching p with at
// most maxErrors substitutions. Intervals for different error layouts may
// overlap in position space; callers dedupe located candidates. The
// return value is the number of ExtendLeft steps spent (for cost
// accounting). fn is invoked once per maximal surviving interval.
func (ix *Index) RangeApprox(p []byte, maxErrors int, fn func(ApproxHit)) int {
	if len(p) == 0 {
		return 0
	}
	steps := 0
	lo, hi := ix.Start()
	var rec func(i, lo, hi, errs int)
	rec = func(i, lo, hi, errs int) {
		if i < 0 {
			fn(ApproxHit{Lo: lo, Hi: hi, Errors: errs})
			return
		}
		// Match branch.
		mlo, mhi := ix.ExtendLeft(p[i], lo, hi)
		steps++
		if mlo < mhi {
			rec(i-1, mlo, mhi, errs)
		}
		if errs == maxErrors {
			return
		}
		// Substitution branches.
		for c := byte(0); c < 4; c++ {
			if c == p[i] {
				continue
			}
			slo, shi := ix.ExtendLeft(c, lo, hi)
			steps++
			if slo < shi {
				rec(i-1, slo, shi, errs+1)
			}
		}
	}
	rec(len(p)-1, lo, hi, 0)
	return steps
}

// CountApprox sums the occurrence counts over RangeApprox. Variants are
// distinct strings, so intervals are disjoint and the sum is exact.
func (ix *Index) CountApprox(p []byte, maxErrors int) int {
	total := 0
	ix.RangeApprox(p, maxErrors, func(h ApproxHit) { total += h.Hi - h.Lo })
	return total
}
