package fmindex

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// fuzzSeedBlobs serializes a few small indexes spanning both locate modes
// so the fuzzer starts from structurally valid inputs and mutates inward.
func fuzzSeedBlobs(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	var blobs [][]byte
	for _, cfg := range []struct {
		n, rate int
	}{
		{4, 0}, {61, 0}, {200, 0}, {61, 4}, {200, 8}, {513, 32},
	} {
		text := make([]byte, cfg.n)
		for i := range text {
			text[i] = byte(rng.Intn(4))
		}
		ix := Build(text, Options{SASampleRate: cfg.rate})
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			tb.Fatalf("serializing seed index: %v", err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	return blobs
}

// FuzzIndexReadFrom feeds arbitrary bytes to ReadFrom. The properties: no
// panic and no huge allocation regardless of input; every data-shaped
// failure wraps ErrCorrupt (never a bare success on garbage); and any
// input that does parse must re-serialize to exactly the bytes consumed —
// i.e. accepted inputs are precisely the image of WriteTo.
func FuzzIndexReadFrom(f *testing.F) {
	for _, blob := range fuzzSeedBlobs(f) {
		f.Add(blob)
	}
	// A few handcrafted corruptions of interest: truncation, huge length
	// field, zeroed header.
	blob := fuzzSeedBlobs(f)[1]
	f.Add(blob[:len(blob)/2])
	huge := bytes.Clone(blob)
	for i := 8; i < 16; i++ {
		huge[i] = 0xff
	}
	f.Add(huge)
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &countingReader{r: bytes.NewReader(data)}
		ix, err := ReadFrom(r)
		if err != nil {
			if ix != nil {
				t.Fatalf("ReadFrom returned both an index and error %v", err)
			}
			// I/O-shaped errors come from truncation; anything else must
			// carry the typed corruption sentinel.
			if !errors.Is(err, ErrCorrupt) &&
				!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("ReadFrom error is neither ErrCorrupt nor EOF: %v", err)
			}
			return
		}
		// Success: the index must be internally consistent and round-trip
		// to exactly the consumed prefix.
		if err := ix.validate(); err != nil {
			t.Fatalf("accepted index fails validate: %v", err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatalf("re-serializing accepted index: %v", err)
		}
		if int64(buf.Len()) > r.n {
			t.Fatalf("re-serialization is %d bytes but only %d were available", buf.Len(), r.n)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("accepted index does not round-trip to its input prefix")
		}
	})
}

// countingReader tracks the number of bytes handed out, bounding what the
// round-trip property may compare against.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
