package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSerializationProperty(t *testing.T) {
	// Any index (any text, either locate mode) must round-trip and keep
	// answering count queries identically.
	f := func(rawText []byte, rateRaw uint8, queryRaw []byte) bool {
		if len(rawText) < 4 {
			return true
		}
		if len(rawText) > 800 {
			rawText = rawText[:800]
		}
		text := make([]byte, len(rawText))
		for i, b := range rawText {
			text[i] = b & 3
		}
		rate := 0
		if rateRaw%2 == 1 {
			rate = 2 + int(rateRaw)%30
		}
		ix := Build(text, Options{SASampleRate: rate})
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		// Probe with a few substrings and a few arbitrary patterns.
		rng := rand.New(rand.NewSource(int64(len(rawText))))
		for q := 0; q < 8; q++ {
			plen := 1 + rng.Intn(6)
			var p []byte
			if q%2 == 0 && len(text) > plen {
				s := rng.Intn(len(text) - plen)
				p = text[s : s+plen]
			} else {
				p = make([]byte, plen)
				for i := range p {
					if i < len(queryRaw) {
						p[i] = queryRaw[i] & 3
					}
				}
			}
			if got.Count(p) != ix.Count(p) {
				return false
			}
			lo, hi := ix.Range(p)
			a := ix.Locate(lo, hi, 0, nil)
			b := got.Locate(lo, hi, 0, nil)
			if len(a) != len(b) {
				return false
			}
			sortInt32(a)
			sortInt32(b)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
