package fmindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/dna"
)

// Binary format: magic, version, then fixed-width fields and length-
// prefixed sections. All integers are little-endian.
const (
	indexMagic   = uint32(0x52455055) // "REPU"
	indexVersion = uint32(1)
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	writeU32 := func(v uint32) { binary.Write(cw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(cw, binary.LittleEndian, v) }

	writeU32(indexMagic)
	writeU32(indexVersion)
	writeU64(uint64(ix.n))
	for _, c := range ix.counts {
		writeU64(uint64(c))
	}
	writeU64(uint64(ix.sentinelRow))
	writeU32(uint32(ix.sampleRate))

	writeBytes := func(b []byte) {
		writeU64(uint64(len(b)))
		cw.Write(b)
	}
	writeInt32s := func(s []int32) {
		writeU64(uint64(len(s)))
		binary.Write(cw, binary.LittleEndian, s)
	}
	writeBytes(ix.bwt.Bytes())
	writeBytes(ix.text.Bytes())
	writeInt32s(ix.occ)
	if ix.sa != nil {
		writeU32(0) // locate mode: full SA
		writeInt32s(ix.sa)
	} else {
		writeU32(1) // locate mode: sampled
		writeInt32s(ix.samples)
		words := ix.sampled.Words()
		writeU64(uint64(len(words)))
		binary.Write(cw, binary.LittleEndian, words)
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes an index written by WriteTo.
func ReadFrom(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("fmindex: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("fmindex: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("fmindex: unsupported version %d", version)
	}

	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}

	ix := &Index{}
	nU, err := readU64()
	if err != nil {
		return nil, err
	}
	const maxLen = 1 << 40
	if nU > maxLen {
		return nil, fmt.Errorf("fmindex: implausible length %d", nU)
	}
	ix.n = int(nU)
	for i := range ix.counts {
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		ix.counts[i] = int(v)
	}
	sr, err := readU64()
	if err != nil {
		return nil, err
	}
	ix.sentinelRow = int(sr)
	rate, err := readU32()
	if err != nil {
		return nil, err
	}
	ix.sampleRate = int(rate)

	readBytes := func() ([]byte, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > maxLen {
			return nil, fmt.Errorf("fmindex: implausible section size %d", n)
		}
		b := make([]byte, n)
		_, err = io.ReadFull(br, b)
		return b, err
	}
	readInt32s := func() ([]int32, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > maxLen {
			return nil, fmt.Errorf("fmindex: implausible section size %d", n)
		}
		s := make([]int32, n)
		err = binary.Read(br, binary.LittleEndian, s)
		return s, err
	}

	bwtBytes, err := readBytes()
	if err != nil {
		return nil, err
	}
	ix.bwt = packedFromBytes(bwtBytes, ix.n+1)
	textBytes, err := readBytes()
	if err != nil {
		return nil, err
	}
	ix.text = packedFromBytes(textBytes, ix.n)
	if ix.occ, err = readInt32s(); err != nil {
		return nil, err
	}
	mode, err := readU32()
	if err != nil {
		return nil, err
	}
	switch mode {
	case 0:
		if ix.sa, err = readInt32s(); err != nil {
			return nil, err
		}
		ix.sampleRate = 0
	case 1:
		if ix.samples, err = readInt32s(); err != nil {
			return nil, err
		}
		nWords, err := readU64()
		if err != nil {
			return nil, err
		}
		if nWords > maxLen/8 {
			return nil, fmt.Errorf("fmindex: implausible bitvector size %d", nWords)
		}
		words := make([]uint64, nWords)
		if err := binary.Read(br, binary.LittleEndian, words); err != nil {
			return nil, err
		}
		ix.sampled = bitvec.FromWords(words, ix.n+1)
	default:
		return nil, fmt.Errorf("fmindex: unknown locate mode %d", mode)
	}

	sum := 1
	for b := 0; b < 4; b++ {
		ix.cArr[b] = sum
		sum += ix.counts[b]
	}
	ix.cArr[4] = sum
	if err := ix.validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

// packedFromBytes wraps already-packed data in a PackedSeq of n bases.
func packedFromBytes(data []byte, n int) dna.PackedSeq {
	return dna.FromPacked(data, n)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
