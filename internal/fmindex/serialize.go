package fmindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/dna"
)

// Binary format: magic, version, then fixed-width fields and length-
// prefixed sections. All integers are little-endian. Every section length
// is fully determined by the text length n, so ReadFrom can reject a
// corrupt length field before allocating anything — a fuzzer-supplied
// 8-byte field must never translate into a multi-gigabyte make().
const (
	indexMagic   = uint32(0x52455055) // "REPU"
	indexVersion = uint32(1)

	// maxTextLen caps the text length a deserialized index may claim
	// (16 Gbase — far beyond any reference this tool targets, small
	// enough that the derived section sizes stay addressable).
	maxTextLen = 1 << 34
)

// ErrCorrupt is wrapped by every ReadFrom error caused by the input data
// itself (as opposed to I/O failure): bad magic, impossible lengths,
// inconsistent internal structure. errors.Is(err, ErrCorrupt)
// distinguishes "this file is damaged" from "this file is unreadable".
var ErrCorrupt = errors.New("corrupt index data")

// corruptf builds an ErrCorrupt-wrapped deserialization error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("fmindex: "+format+": %w", append(args, ErrCorrupt)...)
}

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	writeU32 := func(v uint32) { binary.Write(cw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(cw, binary.LittleEndian, v) }

	writeU32(indexMagic)
	writeU32(indexVersion)
	writeU64(uint64(ix.n))
	for _, c := range ix.counts {
		writeU64(uint64(c))
	}
	writeU64(uint64(ix.sentinelRow))
	writeU32(uint32(ix.sampleRate))

	writeBytes := func(b []byte) {
		writeU64(uint64(len(b)))
		cw.Write(b)
	}
	writeInt32s := func(s []int32) {
		writeU64(uint64(len(s)))
		binary.Write(cw, binary.LittleEndian, s)
	}
	writeBytes(ix.bwt.Bytes())
	writeBytes(ix.text.Bytes())
	writeInt32s(ix.occ)
	if ix.sa != nil {
		writeU32(0) // locate mode: full SA
		writeInt32s(ix.sa)
	} else {
		writeU32(1) // locate mode: sampled
		writeInt32s(ix.samples)
		words := ix.sampled.Words()
		writeU64(uint64(len(words)))
		binary.Write(cw, binary.LittleEndian, words)
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Expected section lengths for a text of n bases. They mirror the build
// path exactly: Pack stores 4 bases per byte, the BWT covers n+1 rows,
// occ holds one 4-entry checkpoint per occCheckpoint rows plus one, the
// full SA has n entries, and the sampled mode stores every rate-th text
// position plus an (n+1)-bit marker vector.
func expectedBWTBytes(n int) uint64  { return uint64(n+1+3) / 4 }
func expectedTextBytes(n int) uint64 { return uint64(n+3) / 4 }
func expectedOccLen(n int) uint64    { return 4 * (uint64(n+1)/occCheckpoint + 1) }
func expectedSamples(n, rate int) uint64 {
	if n == 0 {
		return 0
	}
	return uint64((n-1)/rate) + 1
}
func expectedSampledWords(n int) uint64 { return uint64(n+1+63) / 64 }

// ReadFrom deserializes an index written by WriteTo. Input corruption —
// wrong magic, a length field that disagrees with the declared text
// length, internal inconsistency — yields an error wrapping ErrCorrupt
// and never a large speculative allocation: every section length is
// validated against its expected value before the backing slice is made.
func ReadFrom(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("fmindex: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, corruptf("bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, corruptf("unsupported version %d", version)
	}

	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}

	ix := &Index{}
	nU, err := readU64()
	if err != nil {
		return nil, err
	}
	if nU > maxTextLen {
		return nil, corruptf("implausible length %d", nU)
	}
	ix.n = int(nU)
	total := uint64(0)
	for i := range ix.counts {
		v, err := readU64()
		if err != nil {
			return nil, err
		}
		if v > nU {
			return nil, corruptf("symbol count %d exceeds length %d", v, nU)
		}
		ix.counts[i] = int(v)
		total += v
	}
	if total != nU {
		return nil, corruptf("counts sum %d != length %d", total, nU)
	}
	sr, err := readU64()
	if err != nil {
		return nil, err
	}
	if sr > nU {
		return nil, corruptf("sentinel row %d out of range 0..%d", sr, nU)
	}
	ix.sentinelRow = int(sr)
	rate, err := readU32()
	if err != nil {
		return nil, err
	}
	ix.sampleRate = int(rate)

	readBytes := func(name string, want uint64) ([]byte, error) {
		got, err := readU64()
		if err != nil {
			return nil, err
		}
		if got != want {
			return nil, corruptf("%s section declares %d bytes, text length %d implies %d",
				name, got, ix.n, want)
		}
		b := make([]byte, got)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	readInt32s := func(name string, want uint64) ([]int32, error) {
		got, err := readU64()
		if err != nil {
			return nil, err
		}
		if got != want {
			return nil, corruptf("%s section declares %d entries, text length %d implies %d",
				name, got, ix.n, want)
		}
		s := make([]int32, got)
		if err := binary.Read(br, binary.LittleEndian, s); err != nil {
			return nil, err
		}
		return s, nil
	}

	bwtBytes, err := readBytes("bwt", expectedBWTBytes(ix.n))
	if err != nil {
		return nil, err
	}
	ix.bwt = packedFromBytes(bwtBytes, ix.n+1)
	textBytes, err := readBytes("text", expectedTextBytes(ix.n))
	if err != nil {
		return nil, err
	}
	ix.text = packedFromBytes(textBytes, ix.n)
	if ix.occ, err = readInt32s("occ", expectedOccLen(ix.n)); err != nil {
		return nil, err
	}
	mode, err := readU32()
	if err != nil {
		return nil, err
	}
	switch mode {
	case 0:
		if ix.sampleRate != 0 {
			return nil, corruptf("full-SA locate mode with sample rate %d", ix.sampleRate)
		}
		if ix.sa, err = readInt32s("suffix array", uint64(ix.n)); err != nil {
			return nil, err
		}
		for _, v := range ix.sa {
			if v < 0 || int(v) >= ix.n {
				return nil, corruptf("suffix array entry %d out of range 0..%d", v, ix.n-1)
			}
		}
	case 1:
		if ix.sampleRate < 1 {
			return nil, corruptf("sampled locate mode with rate %d", ix.sampleRate)
		}
		if ix.samples, err = readInt32s("samples", expectedSamples(ix.n, ix.sampleRate)); err != nil {
			return nil, err
		}
		for _, v := range ix.samples {
			if v < 0 || int(v) >= ix.n || int(v)%ix.sampleRate != 0 {
				return nil, corruptf("sample position %d invalid for rate %d", v, ix.sampleRate)
			}
		}
		nWords, err := readU64()
		if err != nil {
			return nil, err
		}
		if nWords != expectedSampledWords(ix.n) {
			return nil, corruptf("sample bitvector declares %d words, text length %d implies %d",
				nWords, ix.n, expectedSampledWords(ix.n))
		}
		words := make([]uint64, nWords)
		if err := binary.Read(br, binary.LittleEndian, words); err != nil {
			return nil, err
		}
		ix.sampled = bitvec.FromWords(words, ix.n+1)
		if got, want := ix.sampled.Ones(), len(ix.samples); got != want {
			return nil, corruptf("sample bitvector marks %d rows for %d samples", got, want)
		}
	default:
		return nil, corruptf("unknown locate mode %d", mode)
	}

	sum := 1
	for b := 0; b < 4; b++ {
		ix.cArr[b] = sum
		sum += ix.counts[b]
	}
	ix.cArr[4] = sum
	if err := ix.validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrCorrupt)
	}
	return ix, nil
}

// packedFromBytes wraps already-packed data in a PackedSeq of n bases.
func packedFromBytes(data []byte, n int) dna.PackedSeq {
	return dna.FromPacked(data, n)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
