package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

// naiveCount counts occurrences of p in text by scanning.
func naiveCount(text, p []byte) int {
	if len(p) == 0 || len(p) > len(text) {
		return 0
	}
	n := 0
	for i := 0; i+len(p) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(p)], p) {
			n++
		}
	}
	return n
}

// naivePositions returns all match positions of p in text.
func naivePositions(text, p []byte) []int32 {
	var out []int32
	for i := 0; i+len(p) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(p)], p) {
			out = append(out, int32(i))
		}
	}
	return out
}

func randomText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestCountKnown(t *testing.T) {
	text := dna.MustEncode("ACGTACGTACGT")
	ix := Build(text, Options{})
	cases := []struct {
		p    string
		want int
	}{
		{"ACGT", 3}, {"CGTA", 2}, {"T", 3}, {"ACGTACGTACGT", 1},
		{"TTTT", 0}, {"GACG", 0},
	}
	for _, tc := range cases {
		if got := ix.Count(dna.MustEncode(tc.p)); got != tc.want {
			t.Errorf("Count(%s) = %d want %d", tc.p, got, tc.want)
		}
	}
}

func TestCountVsNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		text := randomText(rng, 200+rng.Intn(800))
		ix := Build(text, Options{})
		for q := 0; q < 40; q++ {
			plen := 1 + rng.Intn(12)
			var p []byte
			if rng.Intn(2) == 0 && len(text) > plen {
				start := rng.Intn(len(text) - plen)
				p = text[start : start+plen]
			} else {
				p = randomText(rng, plen)
			}
			if got, want := ix.Count(p), naiveCount(text, p); got != want {
				t.Fatalf("trial %d: Count(%v) = %d want %d", trial, p, got, want)
			}
		}
	}
}

func TestLocateVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, rate := range []int{0, 4, 16, 32} {
		text := randomText(rng, 600)
		ix := Build(text, Options{SASampleRate: rate})
		for q := 0; q < 30; q++ {
			plen := 2 + rng.Intn(8)
			start := rng.Intn(len(text) - plen)
			p := text[start : start+plen]
			lo, hi := ix.Range(p)
			got := ix.Locate(lo, hi, 0, nil)
			want := naivePositions(text, p)
			if len(got) != len(want) {
				t.Fatalf("rate %d: Locate count %d want %d", rate, len(got), len(want))
			}
			sortInt32(got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rate %d: positions %v want %v", rate, got, want)
				}
			}
		}
	}
}

func TestLocateLimit(t *testing.T) {
	text := bytes.Repeat(dna.MustEncode("ACG"), 50)
	ix := Build(text, Options{})
	lo, hi := ix.Range(dna.MustEncode("ACG"))
	if hi-lo != 50 {
		t.Fatalf("Range(ACG) size = %d want 50", hi-lo)
	}
	got := ix.Locate(lo, hi, 7, nil)
	if len(got) != 7 {
		t.Fatalf("Locate limit 7 returned %d", len(got))
	}
}

func TestExtendLeftIncremental(t *testing.T) {
	// Extending left character by character must agree with Range on
	// every suffix of the pattern.
	rng := rand.New(rand.NewSource(3))
	text := randomText(rng, 500)
	ix := Build(text, Options{})
	p := text[100:120]
	lo, hi := ix.Start()
	for i := len(p) - 1; i >= 0; i-- {
		lo, hi = ix.ExtendLeft(p[i], lo, hi)
		wlo, whi := ix.Range(p[i:])
		if lo != wlo || hi != whi {
			t.Fatalf("ExtendLeft interval (%d,%d) != Range (%d,%d) at suffix %d",
				lo, hi, wlo, whi, i)
		}
	}
}

func TestExtendLeftEmptyStaysEmpty(t *testing.T) {
	text := dna.MustEncode("AAAA")
	ix := Build(text, Options{})
	lo, hi := ix.Range(dna.MustEncode("C"))
	if lo < hi {
		t.Fatalf("Range(C) = (%d,%d) want empty", lo, hi)
	}
	lo2, hi2 := ix.ExtendLeft(dna.A, lo, hi)
	if lo2 < hi2 {
		t.Errorf("extending an empty interval produced (%d,%d)", lo2, hi2)
	}
}

func TestCountProperty(t *testing.T) {
	f := func(rawText, rawP []byte) bool {
		if len(rawText) == 0 {
			return true
		}
		text := make([]byte, len(rawText))
		for i, b := range rawText {
			text[i] = b & 3
		}
		plen := 1 + len(rawP)%8
		if plen > len(text) {
			plen = len(text)
		}
		p := make([]byte, plen)
		for i := range p {
			if i < len(rawP) {
				p[i] = rawP[i] & 3
			}
		}
		ix := Build(text, Options{})
		return ix.Count(p) == naiveCount(text, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSampledMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	text := randomText(rng, 2000)
	full := Build(text, Options{})
	sampled := Build(text, Options{SASampleRate: 8})
	for q := 0; q < 50; q++ {
		plen := 3 + rng.Intn(10)
		start := rng.Intn(len(text) - plen)
		p := text[start : start+plen]
		lo, hi := full.Range(p)
		slo, shi := sampled.Range(p)
		if lo != slo || hi != shi {
			t.Fatalf("range mismatch full (%d,%d) sampled (%d,%d)", lo, hi, slo, shi)
		}
		a := full.Locate(lo, hi, 0, nil)
		b := sampled.Locate(slo, shi, 0, nil)
		sortInt32(a)
		sortInt32(b)
		if len(a) != len(b) {
			t.Fatalf("locate count mismatch %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("locate mismatch %v vs %v", a, b)
			}
		}
	}
	if sampled.SizeBytes() >= full.SizeBytes() {
		t.Errorf("sampled index (%d B) not smaller than full (%d B)",
			sampled.SizeBytes(), full.SizeBytes())
	}
	if full.LocateSteps() != 0 || sampled.LocateSteps() <= 0 {
		t.Errorf("LocateSteps: full %v sampled %v", full.LocateSteps(), sampled.LocateSteps())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, rate := range []int{0, 8} {
		text := randomText(rng, 700)
		ix := Build(text, Options{SASampleRate: rate})
		var buf bytes.Buffer
		n, err := ix.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		for q := 0; q < 20; q++ {
			plen := 2 + rng.Intn(8)
			start := rng.Intn(len(text) - plen)
			p := text[start : start+plen]
			if got.Count(p) != ix.Count(p) {
				t.Fatalf("rate %d: count differs after round trip", rate)
			}
			lo, hi := got.Range(p)
			a := got.Locate(lo, hi, 0, nil)
			b := ix.Locate(lo, hi, 0, nil)
			sortInt32(a)
			sortInt32(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("rate %d: locate differs after round trip", rate)
				}
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Error("ReadFrom accepted garbage")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("ReadFrom accepted empty input")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	text := randomText(rand.New(rand.NewSource(6)), 300)
	ix := Build(text, Options{})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{10, len(data) / 2, len(data) - 3} {
		if _, err := ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("ReadFrom accepted truncation at %d", cut)
		}
	}
}

func TestTextRetained(t *testing.T) {
	text := dna.MustEncode("ACGTGTCA")
	ix := Build(text, Options{})
	if got := dna.Decode(ix.Text().Unpack()); got != "ACGTGTCA" {
		t.Errorf("Text() = %q want ACGTGTCA", got)
	}
	if ix.Len() != 8 {
		t.Errorf("Len = %d want 8", ix.Len())
	}
}

func BenchmarkCount20(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	text := randomText(rng, 1_000_000)
	ix := Build(text, Options{})
	p := text[500000:500020]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Count(p)
	}
}

func BenchmarkLocateSampled32(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	text := randomText(rng, 1_000_000)
	ix := Build(text, Options{SASampleRate: 32})
	p := text[500000:500012]
	lo, hi := ix.Range(p)
	out := make([]int32, 0, hi-lo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = ix.Locate(lo, hi, 0, out[:0])
	}
}
