// Package fmindex implements an FM-index (Ferragina & Manzini, FOCS 2000)
// over 2-bit DNA texts: checkpointed Occ ranks on the packed BWT, backward
// search, single-character left extension (the primitive the filtration DP
// walks), and locate via either the full suffix array or a sampled suffix
// array in the style of Bowtie 2 — the space/time trade-off the paper's
// §IV discusses.
package fmindex

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/bwt"
	"repro/internal/dna"
	"repro/internal/suffix"
)

// occCheckpoint is the number of BWT positions covered by one Occ
// checkpoint. 128 keeps the scan within 32 packed bytes.
const occCheckpoint = 128

// Options configure index construction.
type Options struct {
	// SASampleRate selects locate storage: 0 keeps the full suffix
	// array (4 bytes/base, fastest locate); a positive rate r stores
	// only suffix positions divisible by r and recovers the rest by
	// LF-walking (≤ r-1 steps), shrinking memory by ~r×.
	SASampleRate int
}

// Index is an immutable FM-index over a DNA reference.
type Index struct {
	n           int    // text length
	counts      [4]int // per-base symbol counts
	cArr        [5]int // cArr[b] = rows before the first suffix starting with base b
	bwt         dna.PackedSeq
	sentinelRow int
	// occ holds cumulative per-base counts at every checkpoint:
	// occ[4*j+b] = occurrences of base b in bwt[0 : j*occCheckpoint),
	// sentinel placeholder excluded.
	occ  []int32
	text dna.PackedSeq

	// Locate support: exactly one of sa or (samples, sampled) is set.
	sa         []int32
	sampleRate int
	samples    []int32
	sampled    *bitvec.Rank
}

// Build constructs the index for text (base codes). The text is retained
// (packed) for verification-window extraction.
func Build(text []byte, opts Options) *Index {
	sa := suffix.Build(text)
	return buildFromSA(text, sa, opts)
}

func buildFromSA(text []byte, sa []int32, opts Options) *Index {
	n := len(text)
	bw, sentinelRow := bwt.Transform(text, sa)
	ix := &Index{
		n:           n,
		bwt:         dna.Pack(bw),
		sentinelRow: sentinelRow,
		text:        dna.Pack(text),
	}
	for _, c := range text {
		ix.counts[c]++
	}
	sum := 1 // row 0 is the sentinel suffix
	for b := 0; b < 4; b++ {
		ix.cArr[b] = sum
		sum += ix.counts[b]
	}
	ix.cArr[4] = sum

	ix.buildOcc(bw)

	if opts.SASampleRate <= 0 {
		ix.sa = sa
	} else {
		ix.sampleRate = opts.SASampleRate
		ix.buildSamples(sa)
	}
	return ix
}

func (ix *Index) buildOcc(bw []byte) {
	m := len(bw) // n+1
	nCheckpoints := m/occCheckpoint + 1
	ix.occ = make([]int32, 4*nCheckpoints)
	var running [4]int32
	for i, c := range bw {
		if i%occCheckpoint == 0 {
			copy(ix.occ[4*(i/occCheckpoint):], running[:])
		}
		if i == ix.sentinelRow {
			continue
		}
		running[c]++
	}
	if m%occCheckpoint == 0 {
		copy(ix.occ[4*(m/occCheckpoint):], running[:])
	}
}

func (ix *Index) buildSamples(sa []int32) {
	rate := ix.sampleRate
	bld := bitvec.NewBuilder(ix.n + 1)
	// Row 0 holds the sentinel suffix with text position n; sample it so
	// LF walks terminate without wrapping (position n % rate may be
	// nonzero, but the walk below never visits row 0 for real patterns).
	var vals []int32
	for row, pos := range sa {
		if int(pos)%rate == 0 {
			bld.Set(row + 1) // +1: FM rows are shifted by the sentinel row
			vals = append(vals, pos)
		}
	}
	ix.sampled = bld.Build()
	ix.samples = vals
}

// Len returns the reference length.
func (ix *Index) Len() int { return ix.n }

// Text returns the packed reference retained by the index.
func (ix *Index) Text() dna.PackedSeq { return ix.text }

// Start returns the backward-search interval covering all rows.
func (ix *Index) Start() (lo, hi int) { return 0, ix.n + 1 }

// occAt returns the number of occurrences of base b in bwt[0:i),
// excluding the sentinel placeholder.
func (ix *Index) occAt(b byte, i int) int {
	cp := i / occCheckpoint
	cnt := int(ix.occ[4*cp+int(b)])
	for p := cp * occCheckpoint; p < i; p++ {
		if p == ix.sentinelRow {
			continue
		}
		if ix.bwt.At(p) == b {
			cnt++
		}
	}
	return cnt
}

// ExtendLeft narrows the interval [lo, hi) for pattern P to the interval
// for cP. An empty result (lo >= hi) means cP does not occur.
// This is a single FM-index backward-search step and is the unit of
// filtration work the mappers account.
func (ix *Index) ExtendLeft(c byte, lo, hi int) (int, int) {
	return ix.cArr[c] + ix.occAt(c, lo), ix.cArr[c] + ix.occAt(c, hi)
}

// Range runs a full backward search for pattern p (base codes) and
// returns the matching SA interval [lo, hi); lo >= hi means no match.
func (ix *Index) Range(p []byte) (lo, hi int) {
	lo, hi = ix.Start()
	for i := len(p) - 1; i >= 0 && lo < hi; i-- {
		lo, hi = ix.ExtendLeft(p[i], lo, hi)
	}
	return lo, hi
}

// Count returns the number of occurrences of p in the text.
func (ix *Index) Count(p []byte) int {
	lo, hi := ix.Range(p)
	if hi < lo {
		return 0
	}
	return hi - lo
}

// lf maps a BWT row to the row of the suffix one text position earlier.
func (ix *Index) lf(row int) int {
	if row == ix.sentinelRow {
		return 0
	}
	c := ix.bwt.At(row)
	return ix.cArr[c] + ix.occAt(c, row)
}

// resolve returns the text position of the suffix at the given FM row.
func (ix *Index) resolve(row int) int {
	if ix.sa != nil {
		if row == 0 {
			return ix.n
		}
		return int(ix.sa[row-1])
	}
	steps := 0
	for {
		if row == 0 {
			return ix.n + steps
		}
		if ix.sampled.Get(row) {
			return int(ix.samples[ix.sampled.Rank1(row)]) + steps
		}
		row = ix.lf(row)
		steps++
	}
}

// Locate appends the text positions of all suffixes in [lo, hi) to out
// and returns it. Positions are not sorted. The limit caps how many are
// produced; limit <= 0 means all.
func (ix *Index) Locate(lo, hi, limit int, out []int32) []int32 {
	if limit <= 0 || limit > hi-lo {
		limit = hi - lo
	}
	for r := lo; r < lo+limit; r++ {
		out = append(out, int32(ix.resolve(r)))
	}
	return out
}

// LocateSteps reports the number of LF-mapping steps locate would spend
// on one row on average: 0 for the full suffix array, ~(rate-1)/2 when
// sampled. Used by cost accounting.
func (ix *Index) LocateSteps() float64 {
	if ix.sa != nil {
		return 0
	}
	return float64(ix.sampleRate-1) / 2
}

// SizeBytes reports the approximate memory footprint of the index
// structures (bwt + occ + locate support + retained text). The simulated
// OpenCL devices check this against their allocation limits.
func (ix *Index) SizeBytes() int64 {
	size := int64(len(ix.bwt.Bytes())) + int64(len(ix.occ))*4 + int64(len(ix.text.Bytes()))
	if ix.sa != nil {
		size += int64(len(ix.sa)) * 4
	} else {
		size += int64(len(ix.samples))*4 + ix.sampled.SizeBytes()
	}
	return size
}

// validate performs internal consistency checks; it is exercised by tests
// and by ReadFrom to reject corrupted inputs.
func (ix *Index) validate() error {
	total := 0
	for _, c := range ix.counts {
		total += c
	}
	if total != ix.n {
		return fmt.Errorf("fmindex: counts sum %d != n %d", total, ix.n)
	}
	if ix.sentinelRow < 0 || ix.sentinelRow > ix.n {
		return fmt.Errorf("fmindex: sentinel row %d out of range", ix.sentinelRow)
	}
	if ix.sa == nil && (ix.sampleRate <= 0 || ix.sampled == nil) {
		return fmt.Errorf("fmindex: no locate support present")
	}
	return nil
}
