package fmindex

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
)

// naiveHammingCount counts text positions where p matches with at most k
// substitutions.
func naiveHammingCount(text, p []byte, k int) int {
	n := 0
	for i := 0; i+len(p) <= len(text); i++ {
		d := 0
		for j := range p {
			if text[i+j] != p[j] {
				d++
				if d > k {
					break
				}
			}
		}
		if d <= k {
			n++
		}
	}
	return n
}

func TestCountApproxVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		text := randomText(rng, 300+rng.Intn(500))
		ix := Build(text, Options{})
		for q := 0; q < 20; q++ {
			plen := 4 + rng.Intn(8)
			start := rng.Intn(len(text) - plen)
			p := append([]byte(nil), text[start:start+plen]...)
			if rng.Intn(2) == 0 { // sometimes mutate so matches need the error budget
				p[rng.Intn(plen)] = byte(rng.Intn(4))
			}
			for k := 0; k <= 2; k++ {
				got := ix.CountApprox(p, k)
				want := naiveHammingCount(text, p, k)
				if got != want {
					t.Fatalf("trial %d k=%d p=%v: CountApprox %d want %d",
						trial, k, p, got, want)
				}
			}
		}
	}
}

func TestRangeApproxZeroErrorsEqualsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := randomText(rng, 500)
	ix := Build(text, Options{})
	p := text[100:112]
	var hits []ApproxHit
	steps := ix.RangeApprox(p, 0, func(h ApproxHit) { hits = append(hits, h) })
	lo, hi := ix.Range(p)
	if len(hits) != 1 || hits[0].Lo != lo || hits[0].Hi != hi || hits[0].Errors != 0 {
		t.Fatalf("hits = %+v want exactly [{%d %d 0}]", hits, lo, hi)
	}
	if steps < len(p) {
		t.Errorf("steps = %d, want at least pattern length %d", steps, len(p))
	}
}

func TestRangeApproxStepsGrowWithErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := randomText(rng, 5000)
	ix := Build(text, Options{})
	p := text[1000:1020]
	prev := 0
	for k := 0; k <= 2; k++ {
		steps := ix.RangeApprox(p, k, func(ApproxHit) {})
		if steps <= prev {
			t.Fatalf("k=%d steps %d did not grow over %d", k, steps, prev)
		}
		prev = steps
	}
}

func TestRangeApproxLocatedPositionsAreValid(t *testing.T) {
	// Every located occurrence must genuinely be within the error budget.
	rng := rand.New(rand.NewSource(4))
	text := randomText(rng, 2000)
	ix := Build(text, Options{})
	p := append([]byte(nil), text[500:516]...)
	p[3] = (p[3] + 1) % 4
	const k = 1
	ix.RangeApprox(p, k, func(h ApproxHit) {
		for _, pos := range ix.Locate(h.Lo, h.Hi, 0, nil) {
			d := 0
			for j := range p {
				if text[int(pos)+j] != p[j] {
					d++
				}
			}
			if d != h.Errors {
				t.Fatalf("hit errors %d but occurrence at %d has %d mismatches",
					h.Errors, pos, d)
			}
		}
	})
}

func TestRangeApproxEmptyPattern(t *testing.T) {
	ix := Build(dna.MustEncode("ACGT"), Options{})
	if steps := ix.RangeApprox(nil, 1, func(ApproxHit) { t.Fatal("hit on empty pattern") }); steps != 0 {
		t.Errorf("steps = %d want 0", steps)
	}
}
