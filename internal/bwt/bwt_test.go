package bwt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

func TestTransformKnown(t *testing.T) {
	// T = ACGT. Sorted suffixes of ACGT$: $, ACGT$, CGT$, GT$, T$.
	// L column: T, $, A, C, G -> codes with placeholder at row 1.
	text := dna.MustEncode("ACGT")
	b, row := FromText(text)
	if row != 1 {
		t.Fatalf("sentinelRow = %d want 1", row)
	}
	want := []byte{dna.T, 0, dna.A, dna.C, dna.G}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bwt = %v want %v", b, want)
		}
	}
}

func TestInvertKnown(t *testing.T) {
	text := dna.MustEncode("GATTACA")
	b, row := FromText(text)
	got := Invert(b, row)
	if dna.Decode(got) != "GATTACA" {
		t.Fatalf("Invert = %q want GATTACA", dna.Decode(got))
	}
}

func TestInvertEmpty(t *testing.T) {
	b, row := FromText(nil)
	if len(b) != 1 {
		t.Fatalf("empty text bwt len = %d want 1", len(b))
	}
	if got := Invert(b, row); len(got) != 0 {
		t.Fatalf("Invert(empty) = %v want empty", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		text := make([]byte, len(raw))
		for i, b := range raw {
			text[i] = b & 3
		}
		b, row := FromText(text)
		if len(b) != len(text)+1 {
			return false
		}
		got := Invert(b, row)
		if len(got) != len(text) {
			return false
		}
		for i := range text {
			if got[i] != text[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte(rng.Intn(2)) // binary alphabet: many ties
		}
		b, row := FromText(text)
		got := Invert(b, row)
		for i := range text {
			if got[i] != text[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestSymbolConservation(t *testing.T) {
	// The BWT is a permutation of the text (plus the sentinel): symbol
	// counts must match exactly.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		text := make([]byte, n)
		var wantCounts [4]int
		for i := range text {
			text[i] = byte(rng.Intn(4))
			wantCounts[text[i]]++
		}
		b, row := FromText(text)
		var gotCounts [4]int
		for i, c := range b {
			if i == row {
				continue
			}
			gotCounts[c]++
		}
		if gotCounts != wantCounts {
			t.Fatalf("trial %d: counts %v want %v", trial, gotCounts, wantCounts)
		}
	}
}
