// Package bwt computes the Burrows-Wheeler transform of a DNA text from
// its suffix array. The transform is the permutation of the text that the
// FM-index ranks; the sentinel row convention used here matches
// internal/fmindex.
package bwt

import "repro/internal/suffix"

// Transform returns the BWT of text over the logical string text+"$",
// where the sentinel sorts before every base. The returned slice has
// length len(text)+1; the entry at the returned sentinelRow corresponds to
// the sentinel and holds 0 as a placeholder (rank structures must exclude
// it). sa is the suffix array of text as produced by suffix.Build.
func Transform(text []byte, sa []int32) (bwtCodes []byte, sentinelRow int) {
	n := len(text)
	out := make([]byte, n+1)
	// Row 0 of the conceptual sorted rotation matrix is the sentinel
	// suffix "$"; its BWT character is the last character of the text.
	if n > 0 {
		out[0] = text[n-1]
	}
	sentinelRow = 0
	for i, pos := range sa {
		row := i + 1 // shift by one for the sentinel suffix at row 0
		if pos == 0 {
			out[row] = 0 // placeholder for '$'
			sentinelRow = row
		} else {
			out[row] = text[pos-1]
		}
	}
	return out, sentinelRow
}

// FromText is a convenience that builds the suffix array itself.
func FromText(text []byte) (bwtCodes []byte, sentinelRow int) {
	return Transform(text, suffix.Build(text))
}

// Invert reconstructs the original text from a BWT produced by Transform.
// It exists to let tests assert the transform is lossless.
func Invert(bwtCodes []byte, sentinelRow int) []byte {
	m := len(bwtCodes) // n+1
	if m <= 1 {
		return nil
	}
	n := m - 1
	// Count symbol occurrences, excluding the sentinel placeholder.
	var counts [5]int // index 0 is the sentinel itself
	for i, c := range bwtCodes {
		if i == sentinelRow {
			continue
		}
		counts[int(c)+1]++
	}
	// first[c] = row of the first occurrence of symbol c in column F.
	var first [5]int
	sum := 1 // the sentinel occupies row 0 of F
	for c := 1; c < 5; c++ {
		first[c] = sum
		sum += counts[c]
	}
	// LF mapping: lf[i] = first[sym] + (rank of sym among bwt[0..i)).
	lf := make([]int, m)
	var seen [5]int
	for i, c := range bwtCodes {
		if i == sentinelRow {
			lf[i] = 0
			continue
		}
		sym := int(c) + 1
		lf[i] = first[sym] + seen[sym]
		seen[sym]++
	}
	// Row 0 is the sentinel suffix, whose L character is the last text
	// character; LF walks the text right to left from there.
	out := make([]byte, n)
	row := 0
	for k := n - 1; k >= 0; k-- {
		out[k] = bwtCodes[row]
		row = lf[row]
	}
	return out
}
