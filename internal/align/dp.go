package align

// DistanceDP is the plain dynamic-programming reference for semi-global
// edit distance: O(m*n) time. It returns the same (end, dist) contract as
// Distance and exists as the oracle the bit-vector path is tested against,
// and as the slow baseline in the verification ablation bench.
func DistanceDP(pattern, text []byte, maxDist int) (end, dist int) {
	m := len(pattern)
	if m == 0 {
		return 0, 0
	}
	col := lastRowDP(pattern, text)
	bestEnd, bestDist := -1, maxDist+1
	for j, d := range col {
		if j == 0 {
			continue // column 0 is the empty-text boundary, not a match end
		}
		if d < bestDist {
			bestDist, bestEnd = d, j
		}
	}
	if bestEnd < 0 {
		return -1, -1
	}
	return bestEnd, bestDist
}

// lastRowDP returns D[m][j] for j = 0..len(text) of the semi-global DP
// (free start in text: D[0][j] = 0; D[i][0] = i).
func lastRowDP(pattern, text []byte) []int {
	m, n := len(pattern), len(text)
	prev := make([]int, n+1) // row i-1
	cur := make([]int, n+1)  // row i
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if pattern[i-1] == text[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev
}

// OccurrencesDP is the reference for Occurrences.
func OccurrencesDP(pattern, text []byte, maxDist int, fn func(end, dist int)) {
	if len(pattern) == 0 {
		return
	}
	row := lastRowDP(pattern, text)
	for j := 1; j < len(row); j++ {
		if row[j] <= maxDist {
			fn(j, row[j])
		}
	}
}

// BandedDistance computes the semi-global distance restricted to a
// diagonal band of half-width maxDist around the main diagonal, the
// classic Ukkonen cut-off. It is exact whenever the true distance is
// <= maxDist and the window length is within m+maxDist. Used by the
// BWA-MEM-style extender and as the verification ablation baseline.
func BandedDistance(pattern, text []byte, maxDist int) (end, dist int) {
	m, n := len(pattern), len(text)
	if m == 0 {
		return 0, 0
	}
	const inf = 1 << 30
	width := 2*maxDist + 1
	// band[i] covers columns j in [i-maxDist, i+maxDist] shifted so the
	// pattern aligns near the diagonal. Because the start is free we also
	// allow j offsets up to n-m+maxDist; to keep the band exact for the
	// pigeonhole windows (n ≈ m + 2δ) we widen by the length difference.
	slack := n - m
	if slack < 0 {
		slack = 0
	}
	width += slack
	prev := make([]int, width+2)
	cur := make([]int, width+2)
	lowOf := func(i int) int { return i - maxDist }
	for k := range prev {
		j := lowOf(0) + k
		if j >= 0 {
			prev[k] = 0 // D[0][j] = 0 (free start)
		} else {
			prev[k] = inf
		}
	}
	bestEnd, bestDist := -1, maxDist+1
	for i := 1; i <= m; i++ {
		lo := lowOf(i)
		for k := 0; k < width+2; k++ {
			j := lo + k
			if j < 0 || j > n {
				cur[k] = inf
				continue
			}
			if j == 0 {
				cur[k] = i
				continue
			}
			cost := 1
			if pattern[i-1] == text[j-1] {
				cost = 0
			}
			best := inf
			// prev row, prev col: D[i-1][j-1] is at index k in prev
			// (prev row's lo is lo-1, so j-1 sits at the same k).
			if v := prev[k]; v < inf {
				best = v + cost
			}
			// prev row, same col: D[i-1][j] at index k+1 in prev.
			if k+1 < len(prev) && prev[k+1] < inf && prev[k+1]+1 < best {
				best = prev[k+1] + 1
			}
			// same row, prev col: D[i][j-1] at index k-1.
			if k-1 >= 0 && cur[k-1] < inf && cur[k-1]+1 < best {
				best = cur[k-1] + 1
			}
			cur[k] = best
		}
		prev, cur = cur, prev
	}
	lo := lowOf(m)
	for k := 0; k < width+2; k++ {
		j := lo + k
		if j >= 1 && j <= n && prev[k] < bestDist {
			bestDist, bestEnd = prev[k], j
		}
	}
	if bestEnd < 0 {
		return -1, -1
	}
	return bestEnd, bestDist
}
