package align

import (
	"fmt"
	"strings"
)

// The paper's §IV notes REPUTE "currently does not produce the CIGAR
// string" and defers it to future versions; this file is that feature.
// Coordinates come from the cheap bit-vector Verify pass; the CIGAR is
// recovered by a small full-DP traceback over just the matched window
// slice, so the cost is O(m·(m+2δ)) only for mappings that are actually
// reported.

// CigarElem is one run-length-encoded alignment operation, SAM-style:
// 'M' consumes both sequences (match or mismatch), 'I' consumes only the
// read, 'D' consumes only the reference.
type CigarElem struct {
	Op  byte
	Len int
}

// Cigar is a run-length-encoded alignment.
type Cigar []CigarElem

// String renders the standard SAM form, e.g. "42M1I57M"; "*" when empty.
func (c Cigar) String() string {
	if len(c) == 0 {
		return "*"
	}
	var b strings.Builder
	for _, e := range c {
		fmt.Fprintf(&b, "%d%c", e.Len, e.Op)
	}
	return b.String()
}

// ReadLen returns the number of read bases the CIGAR consumes (M+I).
func (c Cigar) ReadLen() int {
	n := 0
	for _, e := range c {
		if e.Op == 'M' || e.Op == 'I' {
			n += e.Len
		}
	}
	return n
}

// RefLen returns the number of reference bases consumed (M+D).
func (c Cigar) RefLen() int {
	n := 0
	for _, e := range c {
		if e.Op == 'M' || e.Op == 'D' {
			n += e.Len
		}
	}
	return n
}

// Edits returns the edit count implied by the alignment against the
// given sequences (mismatches inside M runs plus I/D lengths).
func (c Cigar) Edits(pattern, refSegment []byte) int {
	edits := 0
	pi, ri := 0, 0
	for _, e := range c {
		switch e.Op {
		case 'M':
			for k := 0; k < e.Len; k++ {
				if pattern[pi+k] != refSegment[ri+k] {
					edits++
				}
			}
			pi += e.Len
			ri += e.Len
		case 'I':
			edits += e.Len
			pi += e.Len
		case 'D':
			edits += e.Len
			ri += e.Len
		}
	}
	return edits
}

// AlignCigar verifies pattern inside window (semi-global, distance <=
// maxDist) and additionally recovers the CIGAR of the best alignment.
// The Match coordinates are window-relative, as in Verify.
func AlignCigar(pattern, window []byte, maxDist int) (Match, Cigar, bool) {
	m, ok := Verify(pattern, window, maxDist)
	if !ok {
		return Match{}, nil, false
	}
	cigar := globalCigar(pattern, window[m.Start:m.End])
	return m, cigar, true
}

// globalCigar runs a full Needleman-Wunsch (unit costs) with traceback
// between pattern and segment, both ends anchored.
func globalCigar(pattern, segment []byte) Cigar {
	m, n := len(pattern), len(segment)
	// dp is (m+1)x(n+1); from stores the move that reached each cell:
	// 'M' diagonal, 'I' up (read-consuming), 'D' left (ref-consuming).
	dp := make([]int32, (m+1)*(n+1))
	from := make([]byte, (m+1)*(n+1))
	at := func(i, j int) int { return i*(n+1) + j }
	for j := 1; j <= n; j++ {
		dp[at(0, j)] = int32(j)
		from[at(0, j)] = 'D'
	}
	for i := 1; i <= m; i++ {
		dp[at(i, 0)] = int32(i)
		from[at(i, 0)] = 'I'
		for j := 1; j <= n; j++ {
			cost := int32(1)
			if pattern[i-1] == segment[j-1] {
				cost = 0
			}
			best := dp[at(i-1, j-1)] + cost
			op := byte('M')
			if v := dp[at(i-1, j)] + 1; v < best {
				best, op = v, 'I'
			}
			if v := dp[at(i, j-1)] + 1; v < best {
				best, op = v, 'D'
			}
			dp[at(i, j)] = best
			from[at(i, j)] = op
		}
	}
	// Trace back from (m, n).
	var rev []byte
	i, j := m, n
	for i > 0 || j > 0 {
		op := from[at(i, j)]
		rev = append(rev, op)
		switch op {
		case 'M':
			i--
			j--
		case 'I':
			i--
		case 'D':
			j--
		}
	}
	// Reverse and run-length encode.
	var out Cigar
	for k := len(rev) - 1; k >= 0; k-- {
		op := rev[k]
		if len(out) > 0 && out[len(out)-1].Op == op {
			out[len(out)-1].Len++
		} else {
			out = append(out, CigarElem{Op: op, Len: 1})
		}
	}
	return out
}
