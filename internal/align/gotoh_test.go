package align

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
)

func TestGotohExactMatch(t *testing.T) {
	p := dna.MustEncode("ACGTACGT")
	w := dna.MustEncode("TTACGTACGTTT")
	res, ok := Gotoh(p, w, DefaultScoring())
	if !ok {
		t.Fatal("no alignment")
	}
	if res.Score != 8 || res.Start != 2 || res.End != 10 {
		t.Errorf("result = %+v want score 8, span 2..10", res)
	}
	if res.Cigar.String() != "8M" {
		t.Errorf("cigar = %s", res.Cigar)
	}
}

func TestGotohMismatchScoring(t *testing.T) {
	p := dna.MustEncode("ACGTACGT")
	w := dna.MustEncode("ACGAACGT")
	res, ok := Gotoh(p, w, DefaultScoring())
	if !ok {
		t.Fatal("no alignment")
	}
	if res.Score != 7-4 { // 7 matches, 1 mismatch at -4
		t.Errorf("score = %d want 3", res.Score)
	}
}

func TestGotohAffinePreference(t *testing.T) {
	// With affine gaps, one 2-base gap (6+1+1=8) must beat two 1-base
	// gaps (2x(6+1)=14); the unit-cost model cannot express this.
	p := dna.MustEncode("AAAACCCCGGGGTTTT")
	// Window deletes two adjacent read bases (CC):
	w := dna.MustEncode("AAAACCGGGGTTTT")
	res, ok := Gotoh(p, w, DefaultScoring())
	if !ok {
		t.Fatal("no alignment")
	}
	gaps := 0
	for _, e := range res.Cigar {
		if e.Op == 'I' {
			gaps++
			if e.Len != 2 {
				t.Errorf("gap length %d want one 2-base insertion: %s", e.Len, res.Cigar)
			}
		}
	}
	if gaps != 1 {
		t.Errorf("cigar %s has %d insertion runs want 1", res.Cigar, gaps)
	}
	// A k-base gap costs GapOpen + (k-1)*GapExtend: 6+1 = 7 here.
	if got, want := res.Score, int32(14-6-1); got != want {
		t.Errorf("score = %d want %d", got, want)
	}
}

func TestGotohCigarConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		m := 20 + rng.Intn(100)
		p := randSeq(rng, m)
		mutated := mutate(rng, p, rng.Intn(4))
		w := append(append(randSeq(rng, rng.Intn(12)), mutated...), randSeq(rng, rng.Intn(12))...)
		res, ok := Gotoh(p, w, DefaultScoring())
		if !ok {
			t.Fatalf("trial %d: no alignment", trial)
		}
		if res.Cigar.ReadLen() != len(p) {
			t.Fatalf("trial %d: cigar consumes %d read bases want %d (%s)",
				trial, res.Cigar.ReadLen(), len(p), res.Cigar)
		}
		if res.Cigar.RefLen() != res.End-res.Start {
			t.Fatalf("trial %d: cigar span %d want %d", trial, res.Cigar.RefLen(), res.End-res.Start)
		}
		// Recompute the score from the CIGAR; must match.
		sc := DefaultScoring()
		var score int32
		pi, wi := 0, res.Start
		for _, e := range res.Cigar {
			switch e.Op {
			case 'M':
				for k := 0; k < e.Len; k++ {
					if p[pi+k] == w[wi+k] {
						score += sc.Match
					} else {
						score += sc.Mismatch
					}
				}
				pi += e.Len
				wi += e.Len
			case 'I':
				score -= sc.GapOpen + sc.GapExtend*int32(e.Len-1)
				pi += e.Len
			case 'D':
				score -= sc.GapOpen + sc.GapExtend*int32(e.Len-1)
				wi += e.Len
			}
		}
		if score != res.Score {
			t.Fatalf("trial %d: cigar score %d reported %d (%s)", trial, score, res.Score, res.Cigar)
		}
	}
}

func TestGotohEmptyInputs(t *testing.T) {
	if _, ok := Gotoh(nil, dna.MustEncode("ACGT"), DefaultScoring()); ok {
		t.Error("empty pattern aligned")
	}
	if _, ok := Gotoh(dna.MustEncode("ACGT"), nil, DefaultScoring()); ok {
		t.Error("empty window aligned")
	}
}
