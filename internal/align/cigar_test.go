package align

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
)

func TestCigarStringAndLens(t *testing.T) {
	c := Cigar{{Op: 'M', Len: 42}, {Op: 'I', Len: 1}, {Op: 'M', Len: 57}}
	if got := c.String(); got != "42M1I57M" {
		t.Errorf("String = %q", got)
	}
	if c.ReadLen() != 100 {
		t.Errorf("ReadLen = %d want 100", c.ReadLen())
	}
	if c.RefLen() != 99 {
		t.Errorf("RefLen = %d want 99", c.RefLen())
	}
	if got := Cigar(nil).String(); got != "*" {
		t.Errorf("empty String = %q want *", got)
	}
}

func TestAlignCigarExact(t *testing.T) {
	p := dna.MustEncode("ACGTACGT")
	w := dna.MustEncode("TTACGTACGTTT")
	m, c, ok := AlignCigar(p, w, 0)
	if !ok || m.Dist != 0 {
		t.Fatalf("exact match not found: %+v %v", m, ok)
	}
	if c.String() != "8M" {
		t.Errorf("cigar = %s want 8M", c)
	}
	if m.Start != 2 || m.End != 10 {
		t.Errorf("coords = %d..%d want 2..10", m.Start, m.End)
	}
}

func TestAlignCigarSubstitution(t *testing.T) {
	p := dna.MustEncode("ACGTACGT")
	w := dna.MustEncode("ACGAACGT") // sub at index 3
	_, c, ok := AlignCigar(p, w, 1)
	if !ok {
		t.Fatal("not found")
	}
	// A substitution stays inside an M run.
	if c.String() != "8M" {
		t.Errorf("cigar = %s want 8M", c)
	}
	if edits := c.Edits(p, w); edits != 1 {
		t.Errorf("Edits = %d want 1", edits)
	}
}

func TestAlignCigarIndel(t *testing.T) {
	// Read has an extra base vs the reference: expect an I.
	p := dna.MustEncode("ACGTTACGT")
	w := dna.MustEncode("GGACGTACGTGG")
	m, c, ok := AlignCigar(p, w, 1)
	if !ok || m.Dist != 1 {
		t.Fatalf("match = %+v ok=%v", m, ok)
	}
	hasI := false
	for _, e := range c {
		if e.Op == 'I' {
			hasI = true
		}
	}
	if !hasI {
		t.Errorf("cigar %s lacks insertion", c)
	}
	if c.ReadLen() != len(p) {
		t.Errorf("ReadLen %d != pattern %d", c.ReadLen(), len(p))
	}
	if c.RefLen() != m.End-m.Start {
		t.Errorf("RefLen %d != window span %d", c.RefLen(), m.End-m.Start)
	}
}

func TestAlignCigarConsistencyRandom(t *testing.T) {
	// Properties: CIGAR consumes exactly the read and the matched window
	// slice, and its implied edit count equals the reported distance.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 20 + rng.Intn(130)
		p := randSeq(rng, m)
		k := rng.Intn(6)
		mutated := mutate(rng, p, k)
		window := append(append(randSeq(rng, rng.Intn(10)), mutated...), randSeq(rng, rng.Intn(10))...)
		match, c, ok := AlignCigar(p, window, k)
		if !ok {
			t.Fatalf("trial %d: planted alignment not found", trial)
		}
		if c.ReadLen() != len(p) {
			t.Fatalf("trial %d: cigar consumes %d read bases want %d (%s)",
				trial, c.ReadLen(), len(p), c)
		}
		if c.RefLen() != match.End-match.Start {
			t.Fatalf("trial %d: cigar consumes %d ref bases want %d",
				trial, c.RefLen(), match.End-match.Start)
		}
		if edits := c.Edits(p, window[match.Start:match.End]); edits != match.Dist {
			t.Fatalf("trial %d: cigar edits %d but match dist %d (%s)",
				trial, edits, match.Dist, c)
		}
	}
}

func TestAlignCigarReject(t *testing.T) {
	if _, _, ok := AlignCigar(dna.MustEncode("AAAA"), dna.MustEncode("CCCCCC"), 1); ok {
		t.Error("hopeless alignment accepted")
	}
}
