package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// mutate applies exactly k random edits (sub/ins/del) to s.
func mutate(rng *rand.Rand, s []byte, k int) []byte {
	out := append([]byte(nil), s...)
	for e := 0; e < k; e++ {
		if len(out) == 0 {
			out = append(out, byte(rng.Intn(4)))
			continue
		}
		p := rng.Intn(len(out))
		switch rng.Intn(3) {
		case 0: // substitution
			out[p] = (out[p] + 1 + byte(rng.Intn(3))) % 4
		case 1: // insertion
			out = append(out[:p], append([]byte{byte(rng.Intn(4))}, out[p:]...)...)
		default: // deletion
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func TestDistanceExactMatch(t *testing.T) {
	p := dna.MustEncode("ACGTACGT")
	text := dna.MustEncode("TTTACGTACGTTTT")
	end, dist := Distance(p, text, 0)
	if dist != 0 || end != 11 {
		t.Errorf("Distance = (%d,%d) want (11,0)", end, dist)
	}
}

func TestDistanceNoMatch(t *testing.T) {
	p := dna.MustEncode("AAAAAAAA")
	text := dna.MustEncode("CCCCCCCCCCCC")
	end, dist := Distance(p, text, 2)
	if end != -1 || dist != -1 {
		t.Errorf("Distance = (%d,%d) want (-1,-1)", end, dist)
	}
}

func TestDistanceOneSub(t *testing.T) {
	p := dna.MustEncode("ACGTA")
	text := dna.MustEncode("GGACGGAGG")
	end, dist := Distance(p, text, 1)
	if dist != 1 || end != 7 {
		t.Errorf("Distance = (%d,%d) want (7,1)", end, dist)
	}
}

func TestDistanceEmptyPattern(t *testing.T) {
	end, dist := Distance(nil, dna.MustEncode("ACGT"), 3)
	if end != 0 || dist != 0 {
		t.Errorf("empty pattern = (%d,%d) want (0,0)", end, dist)
	}
}

func TestDistanceVsDPRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(150) // exercises 1-3 word patterns
		n := rng.Intn(250)
		p := randSeq(rng, m)
		text := randSeq(rng, n)
		maxDist := rng.Intn(8)
		gotEnd, gotDist := Distance(p, text, maxDist)
		wantEnd, wantDist := DistanceDP(p, text, maxDist)
		if gotEnd != wantEnd || gotDist != wantDist {
			t.Fatalf("trial %d (m=%d n=%d k=%d): Myers (%d,%d) DP (%d,%d)",
				trial, m, n, maxDist, gotEnd, gotDist, wantEnd, wantDist)
		}
	}
}

func TestDistanceVsDPPlanted(t *testing.T) {
	// Plant mutated copies so matches actually exist near the threshold.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		m := 30 + rng.Intn(120)
		p := randSeq(rng, m)
		k := rng.Intn(6)
		mutated := mutate(rng, p, k)
		pre := randSeq(rng, rng.Intn(40))
		post := randSeq(rng, rng.Intn(40))
		text := append(append(append([]byte{}, pre...), mutated...), post...)
		maxDist := k + rng.Intn(3)
		gotEnd, gotDist := Distance(p, text, maxDist)
		wantEnd, wantDist := DistanceDP(p, text, maxDist)
		if gotEnd != wantEnd || gotDist != wantDist {
			t.Fatalf("trial %d: Myers (%d,%d) DP (%d,%d)",
				trial, gotEnd, gotDist, wantEnd, wantDist)
		}
		if gotDist > k && gotDist >= 0 && k <= maxDist {
			t.Fatalf("trial %d: found dist %d but %d edits were planted", trial, gotDist, k)
		}
	}
}

func TestOccurrencesVsDP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 5 + rng.Intn(80)
		p := randSeq(rng, m)
		text := append(append(randSeq(rng, 30), mutate(rng, p, rng.Intn(4))...), randSeq(rng, 30)...)
		maxDist := rng.Intn(6)
		type hit struct{ end, dist int }
		var got, want []hit
		Occurrences(p, text, maxDist, func(e, d int) { got = append(got, hit{e, d}) })
		OccurrencesDP(p, text, maxDist, func(e, d int) { want = append(want, hit{e, d}) })
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: hit %d = %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestVerifyRecoversPlantedCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		m := 20 + rng.Intn(130)
		p := randSeq(rng, m)
		k := rng.Intn(5)
		mutated := mutate(rng, p, k)
		preLen := rng.Intn(15)
		window := append(append(randSeq(rng, preLen), mutated...), randSeq(rng, rng.Intn(15))...)
		match, ok := Verify(p, window, k)
		if !ok {
			t.Fatalf("trial %d: planted match with %d edits not found", trial, k)
		}
		if match.Dist > k {
			t.Fatalf("trial %d: dist %d > planted %d", trial, match.Dist, k)
		}
		if match.Start < 0 || match.End > len(window) || match.Start >= match.End {
			t.Fatalf("trial %d: bad coords %+v (window %d)", trial, match, len(window))
		}
		// The claimed region must actually align within the claimed
		// distance (check with the DP oracle on the exact slice).
		_, d := DistanceDP(p, window[match.Start:match.End], match.Dist)
		if d != match.Dist {
			t.Fatalf("trial %d: claimed dist %d, slice realigns to %d", trial, match.Dist, d)
		}
	}
}

func TestVerifyRejects(t *testing.T) {
	p := dna.MustEncode("ACACACACAC")
	w := dna.MustEncode("GTGTGTGTGTGTGTGT")
	if _, ok := Verify(p, w, 2); ok {
		t.Error("Verify accepted a hopeless window")
	}
}

func TestBandedVsDP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		m := 20 + rng.Intn(100)
		k := rng.Intn(6)
		p := randSeq(rng, m)
		// Verification-window shape: pattern plus 2k flanking positions.
		mutated := mutate(rng, p, rng.Intn(k+1))
		window := append(append(randSeq(rng, k), mutated...), randSeq(rng, k)...)
		gotEnd, gotDist := BandedDistance(p, window, k)
		wantEnd, wantDist := DistanceDP(p, window, k)
		if gotDist != wantDist {
			t.Fatalf("trial %d (m=%d k=%d): banded dist %d want %d",
				trial, m, k, gotDist, wantDist)
		}
		if wantDist >= 0 && gotEnd != wantEnd {
			t.Fatalf("trial %d: banded end %d want %d", trial, gotEnd, wantEnd)
		}
	}
}

func TestMyersProperty(t *testing.T) {
	f := func(rawP, rawT []byte, kRaw uint8) bool {
		if len(rawP) == 0 {
			return true
		}
		if len(rawP) > 200 {
			rawP = rawP[:200]
		}
		p := make([]byte, len(rawP))
		for i, b := range rawP {
			p[i] = b & 3
		}
		text := make([]byte, len(rawT))
		for i, b := range rawT {
			text[i] = b & 3
		}
		k := int(kRaw % 10)
		if k >= len(p) {
			k = len(p) - 1
		}
		gE, gD := Distance(p, text, k)
		wE, wD := DistanceDP(p, text, k)
		return gE == wE && gD == wD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceEdgeCases(t *testing.T) {
	// Text shorter than the pattern: alignment still possible via
	// deletions, DP and Myers must agree.
	p := dna.MustEncode("ACGTACGT")
	short := dna.MustEncode("ACG")
	gE, gD := Distance(p, short, 6)
	wE, wD := DistanceDP(p, short, 6)
	if gE != wE || gD != wD {
		t.Errorf("short text: Myers (%d,%d) DP (%d,%d)", gE, gD, wE, wD)
	}
	// Empty text: no columns, no match.
	if e, d := Distance(p, nil, 3); e != -1 || d != -1 {
		t.Errorf("empty text = (%d,%d)", e, d)
	}
	// maxDist >= pattern length is clamped but stays sound.
	if _, d := Distance(dna.MustEncode("AC"), dna.MustEncode("GGGG"), 10); d > 2 {
		t.Errorf("clamped distance %d > pattern length", d)
	}
	// Pattern of exactly 64 and 65 bases (word boundary).
	rng := rand.New(rand.NewSource(99))
	for _, m := range []int{63, 64, 65, 127, 128, 129} {
		pat := randSeq(rng, m)
		text := append(append(randSeq(rng, 20), pat...), randSeq(rng, 20)...)
		gE, gD := Distance(pat, text, 2)
		wE, wD := DistanceDP(pat, text, 2)
		if gE != wE || gD != wD {
			t.Errorf("m=%d: Myers (%d,%d) DP (%d,%d)", m, gE, gD, wE, wD)
		}
	}
}

func TestWordCost(t *testing.T) {
	for _, tc := range []struct{ m, want int }{{1, 1}, {64, 1}, {65, 2}, {128, 2}, {150, 3}} {
		if got := WordCost(tc.m); got != tc.want {
			t.Errorf("WordCost(%d) = %d want %d", tc.m, got, tc.want)
		}
	}
}

func TestPopcountWords(t *testing.T) {
	if got := popcountWords([]uint64{0b1011, 1 << 63}); got != 4 {
		t.Errorf("popcountWords = %d want 4", got)
	}
}

func BenchmarkMyers100x110(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	p := randSeq(rng, 100)
	w := append(append(randSeq(rng, 5), mutate(rng, p, 3)...), randSeq(rng, 5)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(p, w, 5)
	}
}

func BenchmarkMyers150x170(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := randSeq(rng, 150)
	w := append(append(randSeq(rng, 10), mutate(rng, p, 5)...), randSeq(rng, 10)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(p, w, 7)
	}
}

func BenchmarkDP100x110(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	p := randSeq(rng, 100)
	w := append(append(randSeq(rng, 5), mutate(rng, p, 3)...), randSeq(rng, 5)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistanceDP(p, w, 5)
	}
}
