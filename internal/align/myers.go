// Package align implements the verification-stage string matching used by
// every mapper in this repository: Myers' bit-vector algorithm (Myers,
// J. ACM 1999) in the multi-word block formulation of Hyyrö, a banded DP
// variant, and plain dynamic-programming references that the fast paths
// are tested against.
//
// All functions perform semi-global alignment: the whole pattern must
// align, but it may start and end anywhere in the text window, which is
// exactly the verification problem after pigeonhole filtration.
package align

import "math/bits"

// Match describes one verified alignment inside a text window.
// Start/End are window coordinates with the usual half-open convention;
// Dist is the edit distance.
type Match struct {
	Start, End, Dist int
}

// myersState holds the per-pattern preprocessing for the block algorithm.
// One state can verify the same pattern against many windows.
type myersState struct {
	m     int
	words int
	peq   [4][]uint64
	// lastMask has the bit for pattern row m-1 within the last word.
	lastMask uint64
}

// newMyersState preprocesses pattern (base codes) for repeated searches.
func newMyersState(pattern []byte) *myersState {
	m := len(pattern)
	w := (m + 63) / 64
	st := &myersState{m: m, words: w}
	for c := 0; c < 4; c++ {
		st.peq[c] = make([]uint64, w)
	}
	for i, c := range pattern {
		st.peq[c][i/64] |= 1 << uint(i%64)
	}
	st.lastMask = 1 << uint((m-1)%64)
	return st
}

// advanceBlock performs one column step on a single 64-row block.
// hin is the horizontal delta entering the block bottom (-1, 0 or +1);
// the returned hout leaves at the block top.
func advanceBlock(pv, mv, eq uint64, hin int) (pvOut, mvOut uint64, hout int) {
	xv := eq | mv
	if hin < 0 {
		eq |= 1
	}
	xh := (((eq & pv) + pv) ^ pv) | eq
	ph := mv | ^(xh | pv)
	mh := pv & xh
	hout = 0
	if ph&(1<<63) != 0 {
		hout = 1
	} else if mh&(1<<63) != 0 {
		hout = -1
	}
	ph <<= 1
	mh <<= 1
	switch {
	case hin < 0:
		mh |= 1
	case hin > 0:
		ph |= 1
	}
	pvOut = mh | ^(xv | ph)
	mvOut = ph & xv
	return pvOut, mvOut, hout
}

// search runs the semi-global scan of the pattern over text, invoking fn
// with (endExclusive, dist) for every column whose score is <= maxDist.
// It returns the best (lowest, earliest) column.
func (st *myersState) search(text []byte, maxDist int, fn func(end, dist int)) (bestEnd, bestDist int) {
	w := st.words
	pv := make([]uint64, w)
	mv := make([]uint64, w)
	for i := range pv {
		pv[i] = ^uint64(0)
	}
	score := st.m
	bestEnd, bestDist = -1, maxDist+1
	for j, c := range text {
		hin := 0
		for b := 0; b < w; b++ {
			var hout int
			if b == w-1 {
				// Track the score at pattern row m-1, which may sit
				// below bit 63 of the last word.
				pvb, mvb := pv[b], mv[b]
				eq := st.peq[c][b]
				xv := eq | mvb
				if hin < 0 {
					eq |= 1
				}
				xh := (((eq & pvb) + pvb) ^ pvb) | eq
				ph := mvb | ^(xh | pvb)
				mh := pvb & xh
				if ph&st.lastMask != 0 {
					score++
				} else if mh&st.lastMask != 0 {
					score--
				}
				ph <<= 1
				mh <<= 1
				switch {
				case hin < 0:
					mh |= 1
				case hin > 0:
					ph |= 1
				}
				pv[b] = mh | ^(xv | ph)
				mv[b] = ph & xv
				hout = 0 // unused past the last block
				_ = hout
			} else {
				pv[b], mv[b], hin = advanceBlock(pv[b], mv[b], st.peq[c][b], hin)
			}
		}
		if score <= maxDist {
			if fn != nil {
				fn(j+1, score)
			}
			if score < bestDist {
				bestDist, bestEnd = score, j+1
			}
		}
	}
	if bestEnd < 0 {
		return -1, -1
	}
	return bestEnd, bestDist
}

// Distance returns the minimum semi-global edit distance of pattern
// against any substring of text, together with the end (exclusive) of the
// earliest best match. If no alignment has distance <= maxDist it returns
// (-1, -1).
func Distance(pattern, text []byte, maxDist int) (end, dist int) {
	if len(pattern) == 0 {
		return 0, 0
	}
	if maxDist >= len(pattern) {
		// The whole pattern can be deleted; any position matches.
		maxDist = len(pattern) - 1
		if maxDist < 0 {
			return 0, 0
		}
	}
	st := newMyersState(pattern)
	return st.search(text, maxDist, nil)
}

// Occurrences invokes fn(end, dist) for every text column where the
// pattern matches with distance <= maxDist. Ends are exclusive.
func Occurrences(pattern, text []byte, maxDist int, fn func(end, dist int)) {
	if len(pattern) == 0 {
		return
	}
	st := newMyersState(pattern)
	st.search(text, maxDist, fn)
}

// Verify checks whether pattern aligns in window with distance <= maxDist
// and, when it does, recovers the full match coordinates: the forward pass
// finds the best end and a reverse pass over reversed strings finds the
// matching start.
func Verify(pattern, window []byte, maxDist int) (Match, bool) {
	if len(pattern) == 0 {
		return Match{}, true
	}
	end, dist := Distance(pattern, window, maxDist)
	if end < 0 {
		return Match{}, false
	}
	// Reverse both strings up to the found end; the best end of the
	// reverse problem is the distance from `end` back to the start.
	rp := reverse(pattern)
	rw := reverse(window[:end])
	rend, rdist := Distance(rp, rw, dist)
	if rend < 0 {
		// The reverse search is over the prefix that produced dist, so
		// this cannot happen; guard anyway.
		return Match{Start: 0, End: end, Dist: dist}, true
	}
	return Match{Start: end - rend, End: end, Dist: rdist}, true
}

func reverse(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// WordCost reports the number of 64-bit block updates one column costs
// for a pattern of length m — the unit the simulated kernels account per
// verified window column.
func WordCost(m int) int { return (m + 63) / 64 }

// popcountWords is exposed for whitebox testing of bit bookkeeping.
func popcountWords(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}
