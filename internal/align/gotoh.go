package align

// Affine-gap alignment (Gotoh, 1982). The verification pipeline scores
// unit edits (Levenshtein), which is what the paper's mappers compare on;
// downstream consumers of SAM output usually want affine-gap scores
// (opening a gap costs more than extending it), so the library provides
// them as a standalone scorer over the already-located window.

// Scoring configures the affine-gap model. Scores are additive, higher is
// better; gap penalties are positive numbers that get subtracted.
type Scoring struct {
	Match     int32
	Mismatch  int32 // typically negative
	GapOpen   int32 // cost of the first base of a gap (positive)
	GapExtend int32 // cost of each further base (positive)
}

// DefaultScoring mirrors the BWA-MEM defaults (1, -4, 6, 1).
func DefaultScoring() Scoring {
	return Scoring{Match: 1, Mismatch: -4, GapOpen: 6, GapExtend: 1}
}

// GotohResult is a scored glocal alignment of the whole pattern inside
// the window.
type GotohResult struct {
	Score      int32
	Start, End int // window coordinates, half open
	Cigar      Cigar
}

// Gotoh aligns the whole pattern against any substring of the window
// (semi-global) under affine-gap scoring, returning the best-scoring
// placement with its CIGAR. Complexity O(len(pattern)·len(window)) time.
func Gotoh(pattern, window []byte, sc Scoring) (GotohResult, bool) {
	m, n := len(pattern), len(window)
	if m == 0 || n == 0 {
		return GotohResult{}, false
	}
	const negInf = int32(-1 << 30)
	// Three layers: M (match/mismatch), X (gap in window / read
	// insertion), Y (gap in read / deletion). Rows over the pattern.
	type cell struct{ m, x, y int32 }
	prev := make([]cell, n+1)
	cur := make([]cell, n+1)
	// Traceback stores a packed move per (layer, i, j).
	type move struct{ mFrom, xFrom, yFrom byte } // 'M','X','Y' predecessors
	tb := make([][]move, m+1)
	for i := range tb {
		tb[i] = make([]move, n+1)
	}
	// Row 0: the alignment may start at any window position for free.
	for j := 0; j <= n; j++ {
		prev[j] = cell{m: 0, x: negInf, y: negInf}
	}
	for i := 1; i <= m; i++ {
		cur[0] = cell{m: negInf, x: -sc.GapOpen - sc.GapExtend*int32(i-1) - sc.GapExtend, y: negInf}
		if i == 1 {
			cur[0].x = -sc.GapOpen
		}
		for j := 1; j <= n; j++ {
			sub := sc.Mismatch
			if pattern[i-1] == window[j-1] {
				sub = sc.Match
			}
			// M layer: diagonal from the best layer.
			bm, bf := prev[j-1].m, byte('M')
			if prev[j-1].x > bm {
				bm, bf = prev[j-1].x, 'X'
			}
			if prev[j-1].y > bm {
				bm, bf = prev[j-1].y, 'Y'
			}
			cm := bm + sub
			// X layer: consume a pattern base against a gap (from above).
			xo := prev[j].m - sc.GapOpen
			xe := prev[j].x - sc.GapExtend
			cx, xf := xo, byte('M')
			if xe > cx {
				cx, xf = xe, 'X'
			}
			// Y layer: consume a window base against a gap (from left).
			yo := cur[j-1].m - sc.GapOpen
			ye := cur[j-1].y - sc.GapExtend
			cy, yf := yo, byte('M')
			if ye > cy {
				cy, yf = ye, 'Y'
			}
			cur[j] = cell{m: cm, x: cx, y: cy}
			tb[i][j] = move{mFrom: bf, xFrom: xf, yFrom: yf}
		}
		prev, cur = cur, prev
	}
	// Best end: max over layers in the last pattern row (prev after swap).
	bestJ, bestScore, bestLayer := -1, negInf, byte('M')
	for j := 1; j <= n; j++ {
		for _, l := range []struct {
			layer byte
			score int32
		}{{'M', prev[j].m}, {'X', prev[j].x}, {'Y', prev[j].y}} {
			if l.score > bestScore {
				bestScore, bestJ, bestLayer = l.score, j, l.layer
			}
		}
	}
	if bestJ < 0 || bestScore == negInf {
		return GotohResult{}, false
	}
	// The scan above only kept two rolling rows; rerun to recover the
	// full traceback is avoided by having stored tb moves per cell, but
	// moves alone do not say which (i, j) decrement applies in X/Y —
	// they do: X consumes i, Y consumes j, M consumes both.
	var rev []byte
	i, j, layer := m, bestJ, bestLayer
	for i > 0 && j > 0 {
		mv := tb[i][j]
		switch layer {
		case 'M':
			rev = append(rev, 'M')
			layer = mv.mFrom
			i--
			j--
		case 'X':
			rev = append(rev, 'I')
			layer = mv.xFrom
			i--
		case 'Y':
			rev = append(rev, 'D')
			layer = mv.yFrom
			j--
		}
	}
	for i > 0 { // leading read bases against the window edge
		rev = append(rev, 'I')
		i--
	}
	start := j
	var cigar Cigar
	for k := len(rev) - 1; k >= 0; k-- {
		op := rev[k]
		if len(cigar) > 0 && cigar[len(cigar)-1].Op == op {
			cigar[len(cigar)-1].Len++
		} else {
			cigar = append(cigar, CigarElem{Op: op, Len: 1})
		}
	}
	return GotohResult{Score: bestScore, Start: start, End: bestJ, Cigar: cigar}, true
}
