package seed

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fmindex"
)

// oracleSelect enumerates every legal partition of read into parts
// contiguous seeds of length >= smin and returns the minimal total
// candidate count, the set of optimal divider vectors (seed end
// positions) and how many optima exist — the brute-force ground truth
// the DP must match.
func oracleSelect(ix *fmindex.Index, read []byte, parts, smin int) (best int, optima [][]int) {
	n := len(read)
	best = int(^uint(0) >> 1)
	ends := make([]int, parts)
	var rec func(i, start, total int)
	rec = func(i, start, total int) {
		if i == parts-1 {
			if n-start < smin {
				return
			}
			total += ix.Count(read[start:n])
			ends[i] = n
			if total < best {
				best = total
				optima = optima[:0]
			}
			if total == best {
				optima = append(optima, append([]int(nil), ends...))
			}
			return
		}
		// Leave at least smin per remaining seed.
		for end := start + smin; end <= n-(parts-1-i)*smin; end++ {
			ends[i] = end
			rec(i+1, end, total+ix.Count(read[start:end]))
		}
	}
	rec(0, 0, 0)
	return best, optima
}

func seedEnds(sel Selection) []int {
	ends := make([]int, len(sel.Seeds))
	for i, s := range sel.Seeds {
		ends[i] = s.End
	}
	return ends
}

// TestDPEdgeCasesAgainstOracle drives the REPUTE and OSS dynamic
// programs through the boundary geometries of the divider DP — read
// length not divisible by δ+1, the window collapsed to zero by Smin,
// δ=0's short-circuit, and a read absent from the reference (the
// encoded analogue of an all-N read: every seed has zero candidates) —
// and checks the chosen dividers against the brute-force oracle.
func TestDPEdgeCasesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	text := repetitiveText(rng, 12_000)
	// Confine the text to codes 0..2 so code 3 can play the part of an
	// ambiguous base that cannot occur in the reference.
	for i, c := range text {
		if c == 3 {
			text[i] = byte(rng.Intn(3))
		}
	}
	ix := fmindex.Build(text, fmindex.Options{})
	pos := 4321
	absent := make([]byte, 64)
	for i := range absent {
		absent[i] = 3
	}

	cases := []struct {
		name     string
		read     []byte
		errors   int
		smin     int
		selector Selector
	}{
		// 43 = 3 seeds with remainder 1: ends fall off the smin grid.
		{"indivisible-length", text[pos : pos+43], 2, 8, REPUTE{}},
		// n == (δ+1)·Smin: the exploration window w is 0 and the split
		// is forced to exact smin-length seeds.
		{"window-collapsed", text[pos : pos+30], 2, 10, REPUTE{}},
		// Smin clipped to its other boundary: smin=1 explores everything.
		{"smin-floor", text[pos : pos+24], 3, 1, REPUTE{}},
		// δ=0 short-circuits to a single whole-read seed.
		{"zero-errors", text[pos : pos+25], 0, 8, REPUTE{}},
		// Absent (all-N-like) read: every seed counts zero; the DP must
		// still emit a legal partition.
		{"all-n-read", absent, 2, 9, REPUTE{}},
		// The unconstrained OSS hits the same geometry with smin=1.
		{"oss-indivisible", text[pos : pos+41], 3, 1, OSS{}},
		{"oss-all-n", absent[:30], 2, 1, OSS{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts := tc.errors + 1
			sel, err := tc.selector.Select(ix, tc.read,
				Params{Errors: tc.errors, MinSeedLen: tc.smin})
			if err != nil {
				t.Fatal(err)
			}
			checkPartition(t, sel, len(tc.read), parts)
			smin := tc.smin
			if _, isOSS := tc.selector.(OSS); isOSS {
				smin = 1
			}
			for i, s := range sel.Seeds {
				if s.Len() < smin {
					t.Errorf("seed %d length %d < Smin %d", i, s.Len(), smin)
				}
			}
			checkCounts(t, ix, tc.read, sel)

			best, optima := oracleSelect(ix, tc.read, parts, smin)
			if sel.TotalCandidates != best {
				t.Errorf("TotalCandidates = %d, oracle optimum = %d (dividers %v)",
					sel.TotalCandidates, best, seedEnds(sel))
			}
			if len(optima) == 1 && !reflect.DeepEqual(seedEnds(sel), optima[0]) {
				t.Errorf("dividers = %v, oracle's unique optimum = %v",
					seedEnds(sel), optima[0])
			}
			found := false
			for _, o := range optima {
				if reflect.DeepEqual(seedEnds(sel), o) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("dividers %v are not among the %d oracle optima",
					seedEnds(sel), len(optima))
			}
		})
	}
}

// TestDPInfeasibleSmin: a read too short for δ+1 seeds of Smin must be
// rejected with the documented error, not mis-partitioned.
func TestDPInfeasibleSmin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := repetitiveText(rng, 2_000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[100:129] // 29 < 3 × 10
	_, err := (REPUTE{}).Select(ix, read, Params{Errors: 2, MinSeedLen: 10})
	if err == nil || !strings.Contains(err.Error(), "seeds × Smin") {
		t.Fatalf("infeasible Smin accepted: %v", err)
	}
	// The boundary just above is feasible: 30 = 3 × 10.
	if _, err := (REPUTE{}).Select(ix, text[100:130], Params{Errors: 2, MinSeedLen: 10}); err != nil {
		t.Fatalf("exact-fit Smin rejected: %v", err)
	}
}
