package seed

import "repro/internal/fmindex"

// CORAL is the serial heuristic seed selector of the authors' earlier
// OpenCL mapper (Maheshwari et al., TCBB 2019): seeds are chosen one at a
// time from the right end of the read, each grown leftwards until its
// candidate count falls to MaxSeedFreq or its length budget runs out.
// No global optimisation is performed — the paper's Table I/II gap between
// CORAL and REPUTE on repetitive reads comes from exactly this.
type CORAL struct{}

// DefaultMaxSeedFreq is the growth-stop threshold used when Params does
// not provide one. CORAL keeps growing a k-mer while it is more frequent
// than this; the lenient default mirrors the serial heuristic's "good
// enough" stopping rule, whose per-seed overshoot against the DP optimum
// compounds as δ (and so the seed count) grows — the widening CORAL →
// REPUTE gap across Table I's columns.
const DefaultMaxSeedFreq = 32

// Name implements Selector.
func (CORAL) Name() string { return "coral-heuristic" }

// Select implements Selector.
func (CORAL) Select(ix *fmindex.Index, read []byte, p Params) (Selection, error) {
	n := len(read)
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	smin := p.MinSeedLen
	if smin < 1 {
		smin = 1
	}
	maxFreq := p.MaxSeedFreq
	if maxFreq <= 0 {
		maxFreq = DefaultMaxSeedFreq
	}
	maxLen := p.MaxSeedLen
	if maxLen <= 0 {
		maxLen = 2 * smin
	}
	if maxLen < smin {
		maxLen = smin
	}
	parts := p.Errors + 1
	if n < parts*smin {
		// Degrade gracefully: shrink the minimum so the partition exists.
		smin = n / parts
		if smin < 1 {
			smin = 1
		}
	}

	seeds := make([]Seed, parts)
	steps := 0
	end := n
	for j := parts - 1; j >= 0; j-- {
		if j == 0 {
			// The leftmost seed takes whatever remains.
			lo, hi, st := searchSeed(ix, read, 0, end)
			steps += st
			seeds[0] = Seed{Start: 0, End: end, Lo: lo, Hi: hi}
			break
		}
		// Seeds 1..j still need smin positions each to the left.
		minStart := j * smin
		lo, hi := ix.Start()
		start := end
		bestLo, bestHi := lo, hi
		for start > minStart && end-start < maxLen {
			start--
			lo, hi = ix.ExtendLeft(read[start], lo, hi)
			steps++
			bestLo, bestHi = lo, hi
			length := end - start
			if lo >= hi {
				// No occurrences at all: a perfect filter, stop.
				break
			}
			if length >= smin && hi-lo <= maxFreq {
				break
			}
		}
		seeds[j] = Seed{Start: start, End: end, Lo: bestLo, Hi: bestHi}
		end = start
	}
	return Selection{
		Seeds:           seeds,
		TotalCandidates: totalOf(seeds),
		FMSteps:         steps,
		PeakMemBytes:    parts*16 + 32,
	}, nil
}
