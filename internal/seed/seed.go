// Package seed implements the filtration stage of read mapping: choosing
// the δ+1 k-mers (pigeonhole principle) whose exact-match candidate
// locations are verified downstream.
//
// Four strategies are provided, mirroring the paper's comparison:
//
//   - Uniform: equal-length split, the textbook pigeonhole baseline.
//   - OSS: the full Optimal Seed Solver dynamic program (Xin et al.,
//     Bioinformatics 2016) over the entire read.
//   - REPUTE: the paper's contribution — the same optimality, but with the
//     DP exploration space clipped to the (n − Smin·(δ+1))-wide window
//     that a minimum seed length Smin induces, two live DP rows, and a
//     compact backtracking matrix. This is what makes the kernel fit in
//     OpenCL private/local memory.
//   - CORAL: the serial heuristic of the authors' earlier mapper — grow
//     each k-mer until its candidate count drops below a threshold,
//     without global optimisation.
//
// Every selector reports operation counts (FM-index steps, DP cells) and
// an estimated peak working-set size; the simulated OpenCL devices charge
// time and check memory budgets from these.
package seed

import (
	"fmt"

	"repro/internal/fmindex"
)

// Seed is one selected k-mer: read coordinates plus its FM interval.
type Seed struct {
	Start, End int // read coordinates, half open
	Lo, Hi     int // FM-index SA interval; Hi <= Lo means no occurrences
}

// Count returns the number of candidate locations the seed contributes.
func (s Seed) Count() int {
	if s.Hi <= s.Lo {
		return 0
	}
	return s.Hi - s.Lo
}

// Len returns the seed length.
func (s Seed) Len() int { return s.End - s.Start }

// Selection is the output of a filtration strategy for one read.
type Selection struct {
	Seeds           []Seed
	TotalCandidates int
	// Accounting for the device cost model.
	FMSteps      int // single-character FM backward-search extensions
	DPCells      int // DP cells evaluated
	PeakMemBytes int // peak working-set estimate of the method
}

// Params configure a selection.
type Params struct {
	Errors     int // δ: the read is split into δ+1 seeds
	MinSeedLen int // Smin; ignored by Uniform and OSS
	// MaxSeedFreq is CORAL's stop-growing threshold: a seed stops
	// extending once its candidate count is at or below this value.
	MaxSeedFreq int
	// MaxSeedLen bounds CORAL's variable k-mer length (the real tool
	// selects lengths from a bounded range); 0 means 2×MinSeedLen.
	// The DP selectors ignore it — their lengths are bounded by the
	// exploration window instead.
	MaxSeedLen int
}

func (p Params) validate(readLen int) error {
	if p.Errors < 0 {
		return fmt.Errorf("seed: negative error count %d", p.Errors)
	}
	if readLen < p.Errors+1 {
		return fmt.Errorf("seed: read length %d cannot host %d seeds", readLen, p.Errors+1)
	}
	return nil
}

// Selector is a filtration strategy.
type Selector interface {
	Name() string
	Select(ix *fmindex.Index, read []byte, p Params) (Selection, error)
}

// freqWalker computes candidate counts for seeds sharing an end position
// by walking the FM index leftwards once. counts[k] is the count of
// read[end-1-k : end], i.e. the seed of length k+1.
type freqWalker struct {
	ix      *fmindex.Index
	fmSteps int
}

// walk fills counts for seed lengths 1..maxLen ending at end (exclusive).
// Extensions stop charging FM steps once the interval is empty (all longer
// seeds then have zero occurrences). It also records the SA interval per
// length in los/his when those slices are non-nil.
func (w *freqWalker) walk(read []byte, end, maxLen int, counts []int32, los, his []int32) {
	lo, hi := w.ix.Start()
	empty := false
	for k := 0; k < maxLen; k++ {
		if !empty {
			lo, hi = w.ix.ExtendLeft(read[end-1-k], lo, hi)
			w.fmSteps++
			if lo >= hi {
				empty = true
			}
		}
		if empty {
			counts[k] = 0
			if los != nil {
				los[k], his[k] = 0, 0
			}
		} else {
			counts[k] = int32(hi - lo)
			if los != nil {
				los[k], his[k] = int32(lo), int32(hi)
			}
		}
	}
}

// searchSeed runs a plain backward search for read[start:end] and returns
// the interval plus the number of FM steps spent.
func searchSeed(ix *fmindex.Index, read []byte, start, end int) (lo, hi, steps int) {
	lo, hi = ix.Start()
	for i := end - 1; i >= start; i-- {
		lo, hi = ix.ExtendLeft(read[i], lo, hi)
		steps++
		if lo >= hi {
			return lo, hi, steps
		}
	}
	return lo, hi, steps
}

// totalOf sums candidate counts.
func totalOf(seeds []Seed) int {
	t := 0
	for _, s := range seeds {
		t += s.Count()
	}
	return t
}

// DPPeakMem estimates the private working set (bytes per work item) a
// selector's kernel needs for reads of length n — the figure a host must
// declare before launching a static OpenCL 1.2 kernel, and the quantity
// the paper's Smin trade-off controls. The REPUTE estimate mirrors
// dpSelect's actual allocations; OSS is the same shape over the whole
// read; the serial strategies carry only a few registers.
func DPPeakMem(n, errors, smin int, sel Selector) int {
	const fixed = 256 // interval registers, verification window bookkeeping
	if smin < 1 {
		smin = 1
	}
	switch sel.(type) {
	case REPUTE:
		w := n - (errors+1)*smin
		if w < 0 {
			w = 0
		}
		return 2*(w+1)*4 + errors*(w+1)*2 + (smin+w)*4 + fixed
	case OSS:
		return 2*n*4 + errors*n*2 + n*4 + fixed
	default:
		return fixed
	}
}

// Uniform splits the read into δ+1 nearly equal k-mers.
type Uniform struct{}

// Name implements Selector.
func (Uniform) Name() string { return "uniform" }

// Select implements Selector.
func (Uniform) Select(ix *fmindex.Index, read []byte, p Params) (Selection, error) {
	if err := p.validate(len(read)); err != nil {
		return Selection{}, err
	}
	n := len(read)
	parts := p.Errors + 1
	seeds := make([]Seed, parts)
	steps := 0
	for i := 0; i < parts; i++ {
		start := i * n / parts
		end := (i + 1) * n / parts
		lo, hi, st := searchSeed(ix, read, start, end)
		steps += st
		seeds[i] = Seed{Start: start, End: end, Lo: lo, Hi: hi}
	}
	return Selection{
		Seeds:           seeds,
		TotalCandidates: totalOf(seeds),
		FMSteps:         steps,
		PeakMemBytes:    parts * 16,
	}, nil
}
