package seed

import (
	"fmt"

	"repro/internal/fmindex"
)

// REPUTE is the paper's memory-optimised DP seed selector. It finds the
// partition of the read into δ+1 seeds, each at least MinSeedLen long,
// that minimises the total number of candidate locations — provably
// optimal under the minimum-length constraint — while keeping the DP
// state clipped to the exploration window W = n − Smin·(δ+1) the paper
// describes: every DP row and the backtracking matrix span W+1 entries
// instead of the whole read.
type REPUTE struct{}

// Name implements Selector.
func (REPUTE) Name() string { return "repute-dp" }

// Select implements Selector.
func (REPUTE) Select(ix *fmindex.Index, read []byte, p Params) (Selection, error) {
	smin := p.MinSeedLen
	if smin < 1 {
		smin = 1
	}
	return dpSelect(ix, read, p.Errors, smin)
}

// OSS is the full Optimal Seed Solver: the same dynamic program with no
// minimum seed length, i.e. the exploration space is the entire read.
// It produces the unconstrained optimum at a larger memory and time cost;
// the ablation benches quantify the difference.
type OSS struct{}

// Name implements Selector.
func (OSS) Name() string { return "oss-full" }

// Select implements Selector.
func (OSS) Select(ix *fmindex.Index, read []byte, p Params) (Selection, error) {
	return dpSelect(ix, read, p.Errors, 1)
}

// dpSelect runs the divider DP shared by REPUTE and OSS.
//
// State: opt[j][v] is the minimal total candidate count of splitting
// read[0 : j*smin + v] into j seeds of length >= smin, for j = 1..δ+1 and
// window offset v in [0, W], W = n - (δ+1)*smin.
//
// The paper's "δ iterations" correspond to j = 2..δ+1. Rather than
// walking the FM-index separately inside every iteration, prefix ends are
// processed in ascending order and each end's leftward frequency walk is
// shared by every iteration that examines it — the OSS-style "efficient
// use of FM-index backward search" §II-B mentions. Results are identical;
// the walk count drops by about the iteration overlap factor.
func dpSelect(ix *fmindex.Index, read []byte, errors, smin int) (Selection, error) {
	p := Params{Errors: errors, MinSeedLen: smin}
	n := len(read)
	if err := p.validate(n); err != nil {
		return Selection{}, err
	}
	parts := errors + 1
	if n < parts*smin {
		return Selection{}, fmt.Errorf(
			"seed: read length %d < %d seeds × Smin %d", n, parts, smin)
	}

	sel := Selection{}
	if errors == 0 {
		lo, hi, st := searchSeed(ix, read, 0, n)
		sel.Seeds = []Seed{{Start: 0, End: n, Lo: lo, Hi: hi}}
		sel.TotalCandidates = sel.Seeds[0].Count()
		sel.FMSteps = st
		sel.PeakMemBytes = 16
		return sel, nil
	}

	w := n - parts*smin // exploration window; offsets v, u are in [0, w]
	walker := &freqWalker{ix: ix}
	const inf = int32(1<<31 - 1)

	// opt rows for j = 1..parts at stride w+1; bt rows for j = 2..parts.
	opt := make([]int32, parts*(w+1))
	for i := range opt {
		opt[i] = inf
	}
	bt := make([]uint16, (parts-1)*(w+1))
	counts := make([]int32, smin+w)
	row := func(j int) []int32 { return opt[(j-1)*(w+1) : j*(w+1)] }

	cells := 0
	for e := smin; e <= n; e++ {
		// Iterations j with a prefix end at e: v = e - j*smin in [0, w].
		jHi := e / smin
		if jHi > parts {
			jHi = parts
		}
		jLo := (e - w + smin - 1) / smin
		if jLo < 1 {
			jLo = 1
		}
		if jLo > jHi {
			continue
		}
		// The final iteration only ever needs the full-read prefix.
		if jHi == parts && e != n {
			jHi = parts - 1
			if jLo > jHi {
				continue
			}
		}
		// One shared leftward walk covers every seed ending at e.
		maxNeed := smin + w
		if e < maxNeed {
			maxNeed = e
		}
		walker.walk(read, e, maxNeed, counts[:maxNeed], nil, nil)

		for j := jLo; j <= jHi; j++ {
			v := e - j*smin
			if j == 1 {
				// Single seed covering the whole prefix read[0:e].
				f := int32(0)
				if e <= maxNeed {
					f = counts[e-1]
				}
				row(1)[v] = f
				cells++
				continue
			}
			prev := row(j - 1)
			best, bestU := inf, 0
			for u := 0; u <= v; u++ {
				if prev[u] == inf {
					continue
				}
				// Seed read[(j-1)*smin+u : e] has length smin+v-u.
				f := counts[smin+v-u-1]
				if c := prev[u] + f; c < best {
					best, bestU = c, u
				}
				cells++
			}
			row(j)[v] = best
			bt[(j-2)*(w+1)+v] = uint16(bestU)
		}
	}

	// Backtrack from the full read.
	ends := make([]int, parts+1)
	ends[parts] = n
	v := w
	for j := parts; j >= 2; j-- {
		u := int(bt[(j-2)*(w+1)+v])
		ends[j-1] = (j-1)*smin + u
		v = u
	}
	ends[0] = 0

	seeds := make([]Seed, parts)
	for i := 0; i < parts; i++ {
		lo, hi, st := searchSeed(ix, read, ends[i], ends[i+1])
		walker.fmSteps += st
		seeds[i] = Seed{Start: ends[i], End: ends[i+1], Lo: lo, Hi: hi}
	}

	sel.Seeds = seeds
	sel.TotalCandidates = totalOf(seeds)
	sel.FMSteps = walker.fmSteps
	sel.DPCells = cells
	sel.PeakMemBytes = len(opt)*4 + len(bt)*2 + len(counts)*4
	return sel, nil
}
