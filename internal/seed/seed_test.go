package seed

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
	"repro/internal/fmindex"
)

func randText(rng *rand.Rand, n int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(rng.Intn(4))
	}
	return t
}

// repetitiveText makes a text with heavy repeat structure so seed
// frequencies differ wildly across the read — the regime where DP
// filtration beats heuristics.
func repetitiveText(rng *rand.Rand, n int) []byte {
	motif := randText(rng, 8)
	out := make([]byte, 0, n)
	for len(out) < n {
		if rng.Intn(3) == 0 {
			out = append(out, motif...)
		} else {
			out = append(out, randText(rng, 8)...)
		}
	}
	return out[:n]
}

func checkPartition(t *testing.T, sel Selection, readLen, parts int) {
	t.Helper()
	if len(sel.Seeds) != parts {
		t.Fatalf("got %d seeds want %d", len(sel.Seeds), parts)
	}
	pos := 0
	for i, s := range sel.Seeds {
		if s.Start != pos {
			t.Fatalf("seed %d starts at %d want %d", i, s.Start, pos)
		}
		if s.End <= s.Start {
			t.Fatalf("seed %d empty: %+v", i, s)
		}
		pos = s.End
	}
	if pos != readLen {
		t.Fatalf("partition ends at %d want %d", pos, readLen)
	}
}

func checkCounts(t *testing.T, ix *fmindex.Index, read []byte, sel Selection) {
	t.Helper()
	total := 0
	for i, s := range sel.Seeds {
		want := ix.Count(read[s.Start:s.End])
		if s.Count() != want {
			t.Fatalf("seed %d count %d want %d (seed %q)",
				i, s.Count(), want, dna.Decode(read[s.Start:s.End]))
		}
		total += want
	}
	if sel.TotalCandidates != total {
		t.Fatalf("TotalCandidates %d want %d", sel.TotalCandidates, total)
	}
}

// bruteForceOptimal enumerates every legal divider placement and returns
// the minimal total candidate count.
func bruteForceOptimal(ix *fmindex.Index, read []byte, errors, smin int) int {
	n := len(read)
	parts := errors + 1
	best := -1
	ends := make([]int, parts+1)
	ends[0] = 0
	ends[parts] = n
	var rec func(i, prev int, sum int)
	rec = func(i, prev, sum int) {
		if i == parts {
			if prev != n {
				return
			}
			if best < 0 || sum < best {
				best = sum
			}
			return
		}
		if i == parts-1 {
			// Last seed is forced to [prev, n).
			if n-prev < smin {
				return
			}
			rec(parts, n, sum+ix.Count(read[prev:n]))
			return
		}
		for end := prev + smin; end <= n-(parts-1-i)*smin; end++ {
			rec(i+1, end, sum+ix.Count(read[prev:end]))
		}
	}
	rec(0, 0, 0)
	return best
}

func allSelectors() []Selector {
	return []Selector{Uniform{}, OSS{}, REPUTE{}, CORAL{}}
}

func TestSelectorsProducePartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text := repetitiveText(rng, 3000)
	ix := fmindex.Build(text, fmindex.Options{})
	for trial := 0; trial < 25; trial++ {
		n := 40 + rng.Intn(110)
		start := rng.Intn(len(text) - n)
		read := text[start : start+n]
		errors := 1 + rng.Intn(5)
		smin := 3 + rng.Intn(5)
		if (errors+1)*smin > n {
			smin = n / (errors + 1)
		}
		p := Params{Errors: errors, MinSeedLen: smin}
		for _, sel := range allSelectors() {
			got, err := sel.Select(ix, read, p)
			if err != nil {
				t.Fatalf("%s: %v", sel.Name(), err)
			}
			checkPartition(t, got, n, errors+1)
			checkCounts(t, ix, read, got)
			if got.FMSteps <= 0 {
				t.Fatalf("%s: no FM steps accounted", sel.Name())
			}
		}
	}
}

func TestREPUTEOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := repetitiveText(rng, 800)
	ix := fmindex.Build(text, fmindex.Options{})
	for trial := 0; trial < 40; trial++ {
		n := 12 + rng.Intn(14)
		start := rng.Intn(len(text) - n)
		read := text[start : start+n]
		errors := 1 + rng.Intn(2)
		smin := 2 + rng.Intn(3)
		if (errors+1)*smin > n {
			continue
		}
		got, err := (REPUTE{}).Select(ix, read, Params{Errors: errors, MinSeedLen: smin})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceOptimal(ix, read, errors, smin)
		if got.TotalCandidates != want {
			t.Fatalf("trial %d (n=%d δ=%d smin=%d): REPUTE total %d, brute force %d",
				trial, n, errors, smin, got.TotalCandidates, want)
		}
		for i, s := range got.Seeds {
			if s.Len() < smin {
				t.Fatalf("trial %d: seed %d shorter than Smin: %+v", trial, i, s)
			}
		}
	}
}

func TestOSSOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := repetitiveText(rng, 600)
	ix := fmindex.Build(text, fmindex.Options{})
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(10)
		start := rng.Intn(len(text) - n)
		read := text[start : start+n]
		errors := 1 + rng.Intn(2)
		got, err := (OSS{}).Select(ix, read, Params{Errors: errors})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceOptimal(ix, read, errors, 1)
		if got.TotalCandidates != want {
			t.Fatalf("trial %d: OSS total %d, brute force %d", trial, got.TotalCandidates, want)
		}
	}
}

func TestSelectorOrdering(t *testing.T) {
	// OSS (unconstrained optimum) <= REPUTE (constrained optimum)
	// <= Uniform (one feasible partition), whenever uniform is feasible.
	rng := rand.New(rand.NewSource(4))
	text := repetitiveText(rng, 5000)
	ix := fmindex.Build(text, fmindex.Options{})
	for trial := 0; trial < 30; trial++ {
		n := 100
		start := rng.Intn(len(text) - n)
		read := text[start : start+n]
		errors := 3 + rng.Intn(3)
		smin := 8
		p := Params{Errors: errors, MinSeedLen: smin}
		oss, err := (OSS{}).Select(ix, read, p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := (REPUTE{}).Select(ix, read, p)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := (Uniform{}).Select(ix, read, p)
		if err != nil {
			t.Fatal(err)
		}
		if oss.TotalCandidates > rep.TotalCandidates {
			t.Fatalf("trial %d: OSS %d > REPUTE %d", trial, oss.TotalCandidates, rep.TotalCandidates)
		}
		if rep.TotalCandidates > uni.TotalCandidates {
			t.Fatalf("trial %d: REPUTE %d > uniform %d", trial, rep.TotalCandidates, uni.TotalCandidates)
		}
	}
}

func TestREPUTEMemorySmallerThanOSS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	text := randText(rng, 4000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[1000:1100]
	p := Params{Errors: 5, MinSeedLen: 14}
	rep, err := (REPUTE{}).Select(ix, read, p)
	if err != nil {
		t.Fatal(err)
	}
	oss, err := (OSS{}).Select(ix, read, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakMemBytes >= oss.PeakMemBytes {
		t.Errorf("REPUTE mem %d not below OSS mem %d", rep.PeakMemBytes, oss.PeakMemBytes)
	}
	if rep.DPCells >= oss.DPCells {
		t.Errorf("REPUTE cells %d not below OSS cells %d", rep.DPCells, oss.DPCells)
	}
}

func TestSminTradeoff(t *testing.T) {
	// Larger Smin must not decrease total candidates (smaller exploration
	// space can only do worse or equal), and must not increase DP cells.
	rng := rand.New(rand.NewSource(6))
	text := repetitiveText(rng, 8000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[4000:4100]
	prevCand := -1
	prevCells := 1 << 30
	for _, smin := range []int{8, 12, 16, 20} {
		sel, err := (REPUTE{}).Select(ix, read, Params{Errors: 4, MinSeedLen: smin})
		if err != nil {
			t.Fatal(err)
		}
		if prevCand >= 0 && sel.TotalCandidates < prevCand {
			t.Errorf("Smin %d: candidates %d dropped below smaller-Smin %d",
				smin, sel.TotalCandidates, prevCand)
		}
		if sel.DPCells > prevCells {
			t.Errorf("Smin %d: DP cells %d grew over smaller-Smin %d",
				smin, sel.DPCells, prevCells)
		}
		prevCand, prevCells = sel.TotalCandidates, sel.DPCells
	}
}

func TestCORALThreshold(t *testing.T) {
	// With a tiny threshold CORAL grows long seeds; with a huge one it
	// stops at Smin. Both must remain valid partitions.
	rng := rand.New(rand.NewSource(7))
	text := repetitiveText(rng, 4000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[2000:2100]
	for _, freq := range []int{1, 4, 1000000} {
		sel, err := (CORAL{}).Select(ix, read, Params{Errors: 4, MinSeedLen: 10, MaxSeedFreq: freq})
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, sel, len(read), 5)
		checkCounts(t, ix, read, sel)
	}
}

func TestZeroErrorsSingleSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	text := randText(rng, 1000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[100:150]
	for _, s := range allSelectors() {
		sel, err := s.Select(ix, read, Params{Errors: 0, MinSeedLen: 10})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		checkPartition(t, sel, 50, 1)
		if sel.Seeds[0].Count() < 1 {
			t.Errorf("%s: planted read has zero candidates", s.Name())
		}
	}
}

func TestParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	text := randText(rng, 200)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[0:10]
	if _, err := (REPUTE{}).Select(ix, read, Params{Errors: -1}); err == nil {
		t.Error("negative errors accepted")
	}
	if _, err := (REPUTE{}).Select(ix, read, Params{Errors: 20}); err == nil {
		t.Error("more seeds than bases accepted")
	}
	if _, err := (REPUTE{}).Select(ix, read, Params{Errors: 2, MinSeedLen: 6}); err == nil {
		t.Error("infeasible Smin accepted")
	}
}

func TestSeedCountHelpers(t *testing.T) {
	s := Seed{Start: 3, End: 10, Lo: 5, Hi: 9}
	if s.Len() != 7 || s.Count() != 4 {
		t.Errorf("Len/Count = %d/%d want 7/4", s.Len(), s.Count())
	}
	empty := Seed{Start: 0, End: 4, Lo: 9, Hi: 9}
	if empty.Count() != 0 {
		t.Errorf("empty seed Count = %d want 0", empty.Count())
	}
}

func BenchmarkREPUTESelect100(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	text := repetitiveText(rng, 200_000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[100_000:100_100]
	p := Params{Errors: 5, MinSeedLen: 14}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (REPUTE{}).Select(ix, read, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOSSSelect100(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	text := repetitiveText(rng, 200_000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[100_000:100_100]
	p := Params{Errors: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (OSS{}).Select(ix, read, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCORALSelect100(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	text := repetitiveText(rng, 200_000)
	ix := fmindex.Build(text, fmindex.Options{})
	read := text[100_000:100_100]
	p := Params{Errors: 5, MinSeedLen: 14}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (CORAL{}).Select(ix, read, p); err != nil {
			b.Fatal(err)
		}
	}
}
