package seed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fmindex"
)

// sharedIndex builds one moderate index reused by the quick properties.
var sharedIx *fmindex.Index
var sharedText []byte

func propIndex() *fmindex.Index {
	if sharedIx == nil {
		rng := rand.New(rand.NewSource(1234))
		sharedText = repetitiveText(rng, 20_000)
		sharedIx = fmindex.Build(sharedText, fmindex.Options{})
	}
	return sharedIx
}

func TestREPUTEPartitionProperty(t *testing.T) {
	ix := propIndex()
	f := func(posRaw uint16, lenRaw, errRaw, sminRaw uint8) bool {
		n := 30 + int(lenRaw)%120
		pos := int(posRaw) % (len(sharedText) - n)
		read := sharedText[pos : pos+n]
		errors := 1 + int(errRaw)%6
		smin := 2 + int(sminRaw)%14
		if (errors+1)*smin > n {
			return true // infeasible inputs are rejected elsewhere
		}
		sel, err := (REPUTE{}).Select(ix, read, Params{Errors: errors, MinSeedLen: smin})
		if err != nil {
			return false
		}
		// Partition invariants: δ+1 seeds, contiguous, covering, >= smin,
		// counts match the index.
		if len(sel.Seeds) != errors+1 {
			return false
		}
		at := 0
		total := 0
		for _, s := range sel.Seeds {
			if s.Start != at || s.Len() < smin {
				return false
			}
			at = s.End
			if got := ix.Count(read[s.Start:s.End]); got != s.Count() {
				return false
			}
			total += s.Count()
		}
		return at == n && total == sel.TotalCandidates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCORALPartitionProperty(t *testing.T) {
	ix := propIndex()
	f := func(posRaw uint16, lenRaw, errRaw uint8) bool {
		n := 30 + int(lenRaw)%120
		pos := int(posRaw) % (len(sharedText) - n)
		read := sharedText[pos : pos+n]
		errors := 1 + int(errRaw)%6
		if errors+1 > n {
			return true
		}
		sel, err := (CORAL{}).Select(ix, read, Params{Errors: errors, MinSeedLen: 8})
		if err != nil {
			return false
		}
		at := 0
		for _, s := range sel.Seeds {
			if s.Start != at || s.End <= s.Start {
				return false
			}
			at = s.End
		}
		return at == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDPPeakMemMonotoneInWindow(t *testing.T) {
	// Smaller Smin → larger window → more kernel memory, for both DP
	// selectors; serial strategies stay constant.
	prevRep := 0
	for smin := 20; smin >= 8; smin -= 2 {
		rep := DPPeakMem(150, 5, smin, REPUTE{})
		if rep < prevRep {
			t.Errorf("smin %d: REPUTE mem %d below larger-smin %d", smin, rep, prevRep)
		}
		prevRep = rep
	}
	if oss := DPPeakMem(150, 5, 1, OSS{}); oss <= DPPeakMem(150, 5, 8, REPUTE{}) {
		t.Errorf("OSS mem %d not above windowed REPUTE", oss)
	}
	if c := DPPeakMem(150, 5, 8, CORAL{}); c != DPPeakMem(150, 5, 20, CORAL{}) {
		t.Error("CORAL mem should not depend on smin")
	}
}
