package fastx

// Scanner is the streaming counterpart of ReadFasta/ReadFastq: it parses
// one record at a time from an io.Reader, keeping memory bounded by the
// longest single record instead of the whole file — the ingest model a
// read set larger than an embedded device's RAM demands. Beyond
// incrementality it adds the three ingest-robustness features the batch
// parsers lack:
//
//   - typed parse errors (ParseError) carrying file, line, record ordinal
//     and a stable reason token;
//   - a lenient mode that skips malformed records, tallies them per
//     reason and emits trace instants instead of aborting the stream;
//   - exact byte-offset tracking at record boundaries, so a checkpointed
//     run can reopen the file, seek, and continue parsing exactly where
//     it stopped (internal/checkpoint, DESIGN.md §11).
//
// The Scanner is deliberately an independent implementation rather than a
// wrapper around ReadFasta/ReadFastq: the fuzz targets cross-validate the
// two against each other, so a parsing bug must strike both to go
// unnoticed.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Format selects the record syntax a Scanner expects.
type Format int

// Formats. FormatAuto sniffs the first non-blank line: '>' means FASTA,
// '@' means FASTQ, anything else is an unknown-format error (fatal even
// in lenient mode — without a format there is nothing to resync to).
const (
	FormatAuto Format = iota
	FormatFASTA
	FormatFASTQ
)

func (f Format) String() string {
	switch f {
	case FormatFASTA:
		return "fasta"
	case FormatFASTQ:
		return "fastq"
	default:
		return "auto"
	}
}

// Parse-failure reason tokens. They are stable identifiers — the
// per-reason skip tallies and the derived metrics registry key on them.
const (
	ReasonMissingHeader    = "missing-header"    // expected '>'/'@' header line
	ReasonTruncatedRecord  = "truncated-record"  // EOF in the middle of a record
	ReasonMissingSeparator = "missing-separator" // FASTQ third line is not '+'
	ReasonLengthMismatch   = "length-mismatch"   // FASTQ quality length != sequence length
	ReasonLineTooLong      = "line-too-long"     // line exceeds ScanOptions.MaxLineBytes
	ReasonUnknownFormat    = "unknown-format"    // auto-detection found neither '>' nor '@'
	ReasonShortRead        = "short-read"        // read too short to map (tallied by the stream source)
	ReasonStrayHeader      = "stray-header"      // '>' after the first column of a FASTA sequence line
)

// ParseError describes one malformed record in a FASTA/FASTQ stream.
type ParseError struct {
	File   string // input name from ScanOptions.Name (may be empty)
	Line   int    // 1-based line where the problem was detected
	Record int    // 0-based ordinal of the record being parsed
	Reason string // stable reason token (Reason* constants)
	Detail string // human-oriented specifics
}

func (e *ParseError) Error() string {
	name := e.File
	if name == "" {
		name = "fastx"
	}
	return fmt.Sprintf("%s: line %d: record %d: %s: %s",
		name, e.Line, e.Record, e.Reason, e.Detail)
}

// SkipStats tallies the records a lenient Scanner dropped.
type SkipStats struct {
	// Records is the total number of skipped records.
	Records int
	// Reasons breaks the skips down by reason token.
	Reasons map[string]int
}

// count tallies one skipped record.
func (s *SkipStats) count(reason string) {
	s.Records++
	if s.Reasons == nil {
		s.Reasons = map[string]int{}
	}
	s.Reasons[reason]++
}

// Clone returns a deep copy (the Reasons map is not shared).
func (s SkipStats) Clone() SkipStats {
	out := SkipStats{Records: s.Records}
	if len(s.Reasons) > 0 {
		out.Reasons = make(map[string]int, len(s.Reasons))
		for k, v := range s.Reasons {
			out.Reasons[k] = v
		}
	}
	return out
}

// ScanOptions configure a Scanner. The zero value is a strict
// auto-detecting scanner with the default line-length cap.
type ScanOptions struct {
	// Format fixes the record syntax; FormatAuto sniffs the first line.
	Format Format
	// Lenient skips malformed records (tallying them per reason and
	// emitting trace instants) instead of stopping with a ParseError.
	Lenient bool
	// Name labels the input in errors and skip instants (a file path).
	Name string
	// Tracer, when non-nil, receives a "record-skipped" instant on the
	// "ingest" lane for every record a lenient scan drops.
	Tracer trace.Tracer
	// MaxLineBytes bounds a single input line (0 = 16 MiB). Longer lines
	// are consumed but their record is treated as malformed — the bound
	// that keeps a streaming parse at O(record) memory on any input.
	MaxLineBytes int
	// BaseOffset is added to Offset(): the absolute position of the
	// reader's first byte when resuming mid-file.
	BaseOffset int64
	// BaseLine is added to Line() for the same reason.
	BaseLine int
}

// defaultMaxLine bounds one line when ScanOptions.MaxLineBytes is zero.
const defaultMaxLine = 16 << 20

// Scanner incrementally parses FASTA/FASTQ records. Use it like
// bufio.Scanner: for sc.Scan() { rec := sc.Record() }; err := sc.Err().
type Scanner struct {
	br     *bufio.Reader
	opts   ScanOptions
	format Format

	rec     Record
	nrec    int // records returned so far
	err     error
	eof     bool
	skipped SkipStats

	off    int64 // bytes consumed, relative to the reader's first byte
	lineNo int   // lines consumed, relative to the reader's first line

	pending    []byte // one pushed-back trimmed line (FASTA header lookahead)
	pendingSz  int64
	pendingBad bool // pushed-back line was over-long
	hasPending bool

	buf []byte // reusable line accumulator
}

// NewScanner returns a Scanner over r.
func NewScanner(r io.Reader, opts ScanOptions) *Scanner {
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = defaultMaxLine
	}
	return &Scanner{
		br:     bufio.NewReaderSize(r, 1<<16),
		opts:   opts,
		format: opts.Format,
	}
}

// Offset returns the absolute byte offset of the first byte not yet
// consumed by a returned record — after Scan returns true, the position
// where parsing of the next record will begin. Seeking a reopened file
// here and scanning again continues the record stream exactly.
func (s *Scanner) Offset() int64 { return s.opts.BaseOffset + s.off }

// Line returns the absolute 1-based number of the last consumed line.
func (s *Scanner) Line() int { return s.opts.BaseLine + s.lineNo }

// Skipped returns a copy of the lenient-mode skip tallies so far.
func (s *Scanner) Skipped() SkipStats { return s.skipped.Clone() }

// Record returns the record parsed by the last successful Scan. The
// record's slices are freshly allocated and safe to retain.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the terminal error: nil after a clean end of input, a
// *ParseError after a strict-mode parse failure, or the underlying read
// error.
func (s *Scanner) Err() error { return s.err }

// CountSkip tallies one skipped record with the given reason and emits
// the same trace instant a parse-level skip does. Stream sources use it
// for records that parse but cannot be mapped (ReasonShortRead).
func (s *Scanner) CountSkip(reason string) {
	s.skipped.count(reason)
	if t := s.opts.Tracer; !trace.IsNoop(t) {
		t.Instant("ingest", "record-skipped",
			trace.Str("reason", reason),
			trace.Str("file", s.opts.Name),
			trace.I64("line", int64(s.Line())))
	}
}

// Scan advances to the next record. It returns false at end of input or
// on a terminal error (see Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	if s.format == FormatAuto {
		if !s.detectFormat() {
			return false
		}
	}
	if s.format == FormatFASTA {
		return s.scanFasta()
	}
	return s.scanFastq()
}

// detectFormat sniffs the leading non-blank line without consuming it.
func (s *Scanner) detectFormat() bool {
	l, size, long, ok := s.nextNonBlank()
	if !ok {
		return false // EOF or IO error; Err reports it
	}
	switch {
	case long:
		s.err = s.parseError(ReasonLineTooLong, "first line exceeds the line-length bound")
	case l[0] == '>':
		s.format = FormatFASTA
	case l[0] == '@':
		s.format = FormatFASTQ
	default:
		s.err = s.parseError(ReasonUnknownFormat,
			fmt.Sprintf("first line starts with %q, want '>' (FASTA) or '@' (FASTQ)", l[0]))
	}
	s.unread(l, size, long)
	return s.err == nil
}

// next reads one line, trims surrounding whitespace, and advances the
// offset and line counters by the raw line (including its newline). long
// reports that the raw line exceeded MaxLineBytes (its content is
// discarded but its bytes are consumed and counted).
//
//repute:hotpath
func (s *Scanner) next() (line []byte, size int64, long, ok bool) {
	if s.hasPending {
		s.hasPending = false
		s.off += s.pendingSz
		s.lineNo++
		return s.pending, s.pendingSz, s.pendingBad, true
	}
	if s.eof || s.err != nil {
		return nil, 0, false, false
	}
	s.buf = s.buf[:0]
	for {
		chunk, err := s.br.ReadSlice('\n')
		size += int64(len(chunk))
		if !long {
			if len(s.buf)+len(chunk) > s.opts.MaxLineBytes {
				long = true
				s.buf = s.buf[:0]
			} else {
				s.buf = append(s.buf, chunk...)
			}
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err == io.EOF {
			s.eof = true
			if size == 0 {
				return nil, 0, false, false
			}
			break
		}
		if err != nil {
			s.err = fmt.Errorf("fastx: %s: %w", s.opts.Name, err)
			return nil, 0, false, false
		}
		break
	}
	s.off += size
	s.lineNo++
	return bytes.TrimSpace(s.buf), size, long, true
}

// unread pushes the last line returned by next back, rewinding the
// offset and line counters. At most one line may be pending.
func (s *Scanner) unread(line []byte, size int64, long bool) {
	s.pending, s.pendingSz, s.pendingBad = line, size, long
	s.hasPending = true
	s.off -= size
	s.lineNo--
}

// nextNonBlank skips blank lines, mirroring the batch parsers.
func (s *Scanner) nextNonBlank() (line []byte, size int64, long, ok bool) {
	for {
		line, size, long, ok = s.next()
		if !ok {
			return nil, 0, false, false
		}
		if long || len(line) > 0 {
			return line, size, long, true
		}
	}
}

// parseError builds a ParseError at the current position.
func (s *Scanner) parseError(reason, detail string) *ParseError {
	return &ParseError{
		File:   s.opts.Name,
		Line:   s.Line(),
		Record: s.nrec,
		Reason: reason,
		Detail: detail,
	}
}

// fail handles one malformed record: in strict mode it stores the typed
// error and stops the scan; in lenient mode it tallies the skip, emits
// the trace instant, and reports that scanning may continue.
func (s *Scanner) fail(reason, detail string) (resume bool) {
	if !s.opts.Lenient {
		s.err = s.parseError(reason, detail)
		return false
	}
	s.CountSkip(reason)
	return true
}

// resyncTo discards lines until one starts with marker (which is pushed
// back) or the input ends — the lenient-mode recovery point after a
// structurally broken record. A quality line that happens to start with
// the marker can fool it; the policy is deterministic, which is what the
// checkpoint contract needs.
func (s *Scanner) resyncTo(marker byte) {
	for {
		l, size, long, ok := s.next()
		if !ok {
			return
		}
		if !long && len(l) > 0 && l[0] == marker {
			s.unread(l, size, long)
			return
		}
	}
}

// scanFasta parses one FASTA record: a '>' header and every following
// line up to the next header or EOF.
func (s *Scanner) scanFasta() bool {
	for {
		l, _, long, ok := s.nextNonBlank()
		if !ok {
			return false
		}
		if long {
			if !s.fail(ReasonLineTooLong, "header line exceeds the line-length bound") {
				return false
			}
			s.resyncTo('>')
			continue
		}
		if l[0] != '>' {
			if !s.fail(ReasonMissingHeader, fmt.Sprintf("sequence before first '>' header: %.32q", l)) {
				return false
			}
			s.resyncTo('>')
			continue
		}
		rec := Record{Name: string(bytes.TrimSpace(l[1:]))}
		bad := false
		for {
			l2, size, long2, ok := s.next()
			if !ok {
				break
			}
			if long2 {
				bad = true
				if !s.fail(ReasonLineTooLong, "sequence line exceeds the line-length bound") {
					return false
				}
				s.resyncTo('>')
				break
			}
			if len(l2) == 0 {
				continue
			}
			if l2[0] == '>' {
				s.unread(l2, size, long2)
				break
			}
			if bytes.IndexByte(l2, '>') >= 0 {
				// Mangled header: a mid-line '>' cannot round-trip
				// (wrapping may move it to a line start). Matches
				// ReadFasta's rejection.
				bad = true
				if !s.fail(ReasonStrayHeader, fmt.Sprintf("stray '>' inside sequence line: %.32q", l2)) {
					return false
				}
				s.resyncTo('>')
				break
			}
			rec.Seq = appendSeq(rec.Seq, l2)
		}
		if bad {
			continue // the whole record was dropped
		}
		s.rec = rec
		s.nrec++
		return true
	}
}

// scanFastq parses one four-line FASTQ record: @name, sequence, +,
// quality (blank lines between fields are skipped, as in ReadFastq).
func (s *Scanner) scanFastq() bool {
	for {
		hdr, _, long, ok := s.nextNonBlank()
		if !ok {
			return false
		}
		if long {
			if !s.fail(ReasonLineTooLong, "header line exceeds the line-length bound") {
				return false
			}
			s.resyncTo('@')
			continue
		}
		if hdr[0] != '@' {
			if !s.fail(ReasonMissingHeader, fmt.Sprintf("expected @header, got %.32q", hdr)) {
				return false
			}
			s.resyncTo('@')
			continue
		}
		name := string(hdr[1:])

		seq, _, long, ok := s.nextNonBlank()
		if !ok {
			if s.err == nil {
				s.fail(ReasonTruncatedRecord, "missing sequence")
			}
			return false
		}
		if long {
			if !s.fail(ReasonLineTooLong, "sequence line exceeds the line-length bound") {
				return false
			}
			s.resyncTo('@')
			continue
		}
		seqCopy := append([]byte(nil), seq...)

		plus, _, long, ok := s.nextNonBlank()
		if !ok {
			if s.err == nil {
				s.fail(ReasonTruncatedRecord, "missing '+' separator")
			}
			return false
		}
		if long || plus[0] != '+' {
			if !s.fail(ReasonMissingSeparator, fmt.Sprintf("expected '+' separator, got %.32q", plus)) {
				return false
			}
			s.resyncTo('@')
			continue
		}

		qual, _, long, ok := s.nextNonBlank()
		if !ok {
			if s.err == nil {
				s.fail(ReasonTruncatedRecord, "missing quality")
			}
			return false
		}
		if long {
			if !s.fail(ReasonLineTooLong, "quality line exceeds the line-length bound") {
				return false
			}
			s.resyncTo('@')
			continue
		}
		if len(qual) != len(seqCopy) {
			if !s.fail(ReasonLengthMismatch,
				fmt.Sprintf("quality length %d != sequence length %d", len(qual), len(seqCopy))) {
				return false
			}
			continue // all four lines consumed; next line should be a header
		}

		s.rec = Record{Name: name, Seq: seqCopy, Qual: append([]byte(nil), qual...)}
		s.nrec++
		return true
	}
}
