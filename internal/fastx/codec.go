package fastx

import (
	"math/rand"

	"repro/internal/dna"
)

// Codec converts records to base codes under the standard index-building
// policy — ambiguous bases (N etc.) become deterministic pseudo-random
// bases — while counting how many random draws it has made. The count is
// what makes streaming ingest checkpointable: a resumed run fast-forwards
// a fresh Codec by the recorded draw count, so the bases substituted
// after the resume point are bit-identical to an uninterrupted run
// (DESIGN.md §11).
type Codec struct {
	rng   *rand.Rand
	draws uint64
}

// NewCodec returns a Codec seeded deterministically.
func NewCodec(seed int64) *Codec {
	return &Codec{rng: rand.New(rand.NewSource(seed))}
}

// Codes converts a record's ASCII sequence to base codes, replacing each
// ambiguous character with a pseudo-random base and counting the draw.
func (c *Codec) Codes(rec Record) []byte {
	out := make([]byte, len(rec.Seq))
	for i, b := range rec.Seq {
		code, ok := dna.CodeOf(b)
		if !ok {
			code = byte(c.rng.Intn(4))
			c.draws++
		}
		out[i] = code
	}
	return out
}

// Draws returns the number of random draws made so far.
func (c *Codec) Draws() uint64 { return c.draws }

// FastForward advances the Codec's random stream by n draws without
// producing codes — the resume path's replay of an interrupted run's
// ambiguity substitutions.
func (c *Codec) FastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.rng.Intn(4)
	}
	c.draws += n
}
