package fastx

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/trace"
)

// collect drains a scanner, returning the records and terminal error.
func collect(sc *Scanner) ([]Record, error) {
	var recs []Record
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	return recs, sc.Err()
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !bytes.Equal(a[i].Seq, b[i].Seq) ||
			!bytes.Equal(a[i].Qual, b[i].Qual) {
			return false
		}
	}
	return true
}

// TestScannerMatchesBatchParsers cross-validates the streaming scanner
// against ReadFasta/ReadFastq on well-formed inputs, including CRLF line
// endings, blank separator lines and wrapped FASTA sequence.
func TestScannerMatchesBatchParsers(t *testing.T) {
	fastaInputs := map[string]string{
		"simple":    ">a\nACGT\n>b desc here\nTTTT\nGGGG\n",
		"crlf":      ">a\r\nACGT\r\n>b\r\nTT\r\n",
		"blank":     "\n\n>a\nAC\n\nGT\n\n>b\nTT\n",
		"noEOFnl":   ">a\nACGT",
		"emptySeq":  ">a\n>b\nACGT\n",
		"wrapped":   ">chr\n" + strings.Repeat("ACGTACGTAC\n", 20),
		"nameTrim":  ">  padded name  \nAC\n",
		"seqSpaces": ">a\n  ACGT  \n",
		"seqInner":  ">a\nAC GT\tTT\n",
	}
	for name, in := range fastaInputs {
		t.Run("fasta/"+name, func(t *testing.T) {
			want, err := ReadFasta(strings.NewReader(in))
			if err != nil {
				t.Fatalf("ReadFasta: %v", err)
			}
			got, err := collect(NewScanner(strings.NewReader(in), ScanOptions{Format: FormatFASTA}))
			if err != nil {
				t.Fatalf("Scanner: %v", err)
			}
			if !recordsEqual(got, want) {
				t.Errorf("records differ:\nscanner %+v\nbatch   %+v", got, want)
			}
		})
	}

	fastqInputs := map[string]string{
		"simple":  "@r1\nACGT\n+\nIIII\n@r2\nTT\n+\n##\n",
		"crlf":    "@r1\r\nACGT\r\n+\r\nIIII\r\n",
		"plusTag": "@r1\nACGT\n+r1\nIIII\n",
		"blank":   "\n@r1\nACGT\n\n+\nIIII\n\n@r2\nAA\n+\nII\n",
		"noEOFnl": "@r1\nACGT\n+\nIIII",
	}
	for name, in := range fastqInputs {
		t.Run("fastq/"+name, func(t *testing.T) {
			want, err := ReadFastq(strings.NewReader(in))
			if err != nil {
				t.Fatalf("ReadFastq: %v", err)
			}
			got, err := collect(NewScanner(strings.NewReader(in), ScanOptions{Format: FormatFASTQ}))
			if err != nil {
				t.Fatalf("Scanner: %v", err)
			}
			if !recordsEqual(got, want) {
				t.Errorf("records differ:\nscanner %+v\nbatch   %+v", got, want)
			}
		})
	}
}

func TestScannerAutoDetect(t *testing.T) {
	recs, err := collect(NewScanner(strings.NewReader("\n>a\nACGT\n"), ScanOptions{}))
	if err != nil || len(recs) != 1 || recs[0].Name != "a" {
		t.Errorf("auto FASTA: recs %+v err %v", recs, err)
	}
	recs, err = collect(NewScanner(strings.NewReader("@r\nAC\n+\nII\n"), ScanOptions{}))
	if err != nil || len(recs) != 1 || recs[0].Name != "r" {
		t.Errorf("auto FASTQ: recs %+v err %v", recs, err)
	}
	_, err = collect(NewScanner(strings.NewReader("garbage\n"), ScanOptions{}))
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Reason != ReasonUnknownFormat {
		t.Errorf("auto garbage: want unknown-format ParseError, got %v", err)
	}
}

// TestScannerTypedErrors checks that each malformation class surfaces as
// a ParseError with the right reason and a usable position.
func TestScannerTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		in     string
		reason string
		line   int
	}{
		{"fastqBadHeader", FormatFASTQ, "@r1\nAC\n+\nII\nnotaheader\nAC\n+\nII\n", ReasonMissingHeader, 5},
		{"fastqTruncSeq", FormatFASTQ, "@r1\n", ReasonTruncatedRecord, 1},
		{"fastqTruncPlus", FormatFASTQ, "@r1\nACGT\n", ReasonTruncatedRecord, 2},
		{"fastqTruncQual", FormatFASTQ, "@r1\nACGT\n+\n", ReasonTruncatedRecord, 3},
		{"fastqBadPlus", FormatFASTQ, "@r1\nACGT\nIIII\nACGT\n", ReasonMissingSeparator, 3},
		{"fastqLenMismatch", FormatFASTQ, "@r1\nACGT\n+\nIII\n", ReasonLengthMismatch, 4},
		{"fastaLeadingSeq", FormatFASTA, "ACGT\n>a\nAC\n", ReasonMissingHeader, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := collect(NewScanner(strings.NewReader(tc.in),
				ScanOptions{Format: tc.format, Name: "in.fx"}))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("want ParseError, got %v", err)
			}
			if pe.Reason != tc.reason {
				t.Errorf("reason = %q, want %q", pe.Reason, tc.reason)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d", pe.Line, tc.line)
			}
			if pe.File != "in.fx" {
				t.Errorf("file = %q, want in.fx", pe.File)
			}
		})
	}
}

// TestScannerLenientSkips checks that lenient mode skips exactly the
// malformed records, keeps the well-formed ones, tallies skips per
// reason, and emits one record-skipped trace instant per skip.
func TestScannerLenientSkips(t *testing.T) {
	in := "@r1\nACGT\n+\nIIII\n" + // good
		"@r2\nACGT\n+\nIII\n" + // length mismatch
		"junk line\n" + // missing header; resync to next '@'
		"@r3\nAC\n+\nII\n" + // good
		"@r4\nACGT\nIIII\n" + // missing separator; resync consumes to EOF
		"@r5\nAC\n+\nII\n" // good (resync target)
	rec := trace.NewRecorder()
	sc := NewScanner(strings.NewReader(in), ScanOptions{
		Format: FormatFASTQ, Lenient: true, Name: "dirty.fq", Tracer: rec,
	})
	recs, err := collect(sc)
	if err != nil {
		t.Fatalf("lenient scan must not fail: %v", err)
	}
	var names []string
	for _, r := range recs {
		names = append(names, r.Name)
	}
	if got, want := strings.Join(names, ","), "r1,r3,r5"; got != want {
		t.Errorf("kept %s, want %s", got, want)
	}
	sk := sc.Skipped()
	if sk.Records != 3 {
		t.Errorf("skipped %d records, want 3 (%v)", sk.Records, sk.Reasons)
	}
	want := map[string]int{
		ReasonLengthMismatch:   1,
		ReasonMissingHeader:    1,
		ReasonMissingSeparator: 1,
	}
	for r, n := range want {
		if sk.Reasons[r] != n {
			t.Errorf("reason %s = %d, want %d", r, sk.Reasons[r], n)
		}
	}
	instants := 0
	for _, ev := range rec.Events() {
		if ev.Phase == 'i' && ev.Name == "record-skipped" && ev.Lane == "ingest" {
			instants++
		}
	}
	if instants != sk.Records {
		t.Errorf("%d record-skipped instants for %d skips", instants, sk.Records)
	}
	snap := rec.Metrics()
	if got := snap.Counters["records_skipped_total"]; got != 3 {
		t.Errorf("records_skipped_total = %d, want 3", got)
	}
	if got := snap.Counters["records_skipped_total/"+ReasonLengthMismatch]; got != 1 {
		t.Errorf("records_skipped_total/length-mismatch = %d, want 1", got)
	}
}

// TestScannerOffsetResume is the checkpoint contract: stopping after any
// record, reopening the input at Offset(), and scanning again must yield
// exactly the remaining records.
func TestScannerOffsetResume(t *testing.T) {
	var sb strings.Builder
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		n := 20 + rng.Intn(80)
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = "ACGTN"[rng.Intn(5)]
		}
		sb.WriteString("@read")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString("\n")
		sb.Write(seq)
		sb.WriteString("\n+\n")
		sb.WriteString(strings.Repeat("I", n))
		sb.WriteString("\n")
		if i%7 == 0 {
			sb.WriteString("\n") // blank separator line
		}
	}
	in := sb.String()
	full, err := collect(NewScanner(strings.NewReader(in), ScanOptions{Format: FormatFASTQ}))
	if err != nil {
		t.Fatal(err)
	}

	for stop := 0; stop <= len(full); stop++ {
		sc := NewScanner(strings.NewReader(in), ScanOptions{Format: FormatFASTQ})
		for i := 0; i < stop; i++ {
			if !sc.Scan() {
				t.Fatalf("stop %d: premature end", stop)
			}
		}
		off := sc.Offset()
		line := sc.Line()
		rest, err := collect(NewScanner(strings.NewReader(in[off:]),
			ScanOptions{Format: FormatFASTQ, BaseOffset: off, BaseLine: line}))
		if err != nil {
			t.Fatalf("stop %d: resume: %v", stop, err)
		}
		if !recordsEqual(rest, full[stop:]) {
			t.Fatalf("stop %d: resumed records differ (%d vs %d)", stop, len(rest), len(full[stop:]))
		}
	}
}

func TestScannerLineTooLong(t *testing.T) {
	in := ">a\n" + strings.Repeat("A", 100) + "\n>b\nAC\n"
	// Strict: the over-long sequence line is a typed error.
	_, err := collect(NewScanner(strings.NewReader(in),
		ScanOptions{Format: FormatFASTA, MaxLineBytes: 64}))
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Reason != ReasonLineTooLong {
		t.Errorf("strict: want line-too-long, got %v", err)
	}
	// Lenient: the whole record drops, the next survives.
	sc := NewScanner(strings.NewReader(in),
		ScanOptions{Format: FormatFASTA, MaxLineBytes: 64, Lenient: true})
	recs, err := collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "b" {
		t.Errorf("lenient: kept %+v, want only record b", recs)
	}
	if sc.Skipped().Reasons[ReasonLineTooLong] != 1 {
		t.Errorf("skip tallies = %+v", sc.Skipped())
	}
}

// TestCodecFastForward checks the resume property: encoding a read set
// in two halves with a fast-forwarded second codec substitutes the same
// pseudo-random bases as one uninterrupted codec.
func TestCodecFastForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := make([]Record, 30)
	for i := range recs {
		seq := make([]byte, 50+rng.Intn(50))
		for j := range seq {
			seq[j] = "ACGTNRY"[rng.Intn(7)] // plenty of ambiguity codes
		}
		recs[i] = Record{Name: "r", Seq: seq}
	}

	one := NewCodec(0)
	var whole [][]byte
	for _, r := range recs {
		whole = append(whole, one.Codes(r))
	}

	for split := 0; split <= len(recs); split += 7 {
		first := NewCodec(0)
		var draws uint64
		for i := 0; i < split; i++ {
			first.Codes(recs[i])
		}
		draws = first.Draws()
		second := NewCodec(0)
		second.FastForward(draws)
		for i := split; i < len(recs); i++ {
			if got := second.Codes(recs[i]); !bytes.Equal(got, whole[i]) {
				t.Fatalf("split %d: read %d codes differ after fast-forward", split, i)
			}
		}
		if second.Draws() != one.Draws() {
			t.Fatalf("split %d: draw count %d, want %d", split, second.Draws(), one.Draws())
		}
	}
}

// TestCodecMatchesCodesOf pins the Codec to the legacy CodesOf policy so
// streamed and in-memory ingest substitute identical bases.
func TestCodecMatchesCodesOf(t *testing.T) {
	recs := []Record{
		{Name: "a", Seq: []byte("ACGTNNRYACGT")},
		{Name: "b", Seq: []byte("NNNNACGT")},
	}
	rng := rand.New(rand.NewSource(0))
	codec := NewCodec(0)
	for i, r := range recs {
		want, err := CodesOf(r, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := codec.Codes(r); !bytes.Equal(got, want) {
			t.Errorf("read %d: Codec %v != CodesOf %v", i, got, want)
		}
	}
}
