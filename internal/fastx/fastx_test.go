package fastx

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadFastaBasic(t *testing.T) {
	in := ">chr1 test\nACGT\nACGT\n>chr2\nTTTT\n"
	recs, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records want 2", len(recs))
	}
	if recs[0].Name != "chr1 test" || string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("rec0 = %q/%q", recs[0].Name, recs[0].Seq)
	}
	if recs[1].Name != "chr2" || string(recs[1].Seq) != "TTTT" {
		t.Errorf("rec1 = %q/%q", recs[1].Name, recs[1].Seq)
	}
}

func TestReadFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header accepted")
	}
	if _, err := ReadFasta(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "a", Seq: []byte("ACGTACGTACGTACGT")},
		{Name: "b", Seq: []byte("TT")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 5); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i].Name != recs[i].Name || !bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Errorf("record %d: %q/%q want %q/%q",
				i, got[i].Name, got[i].Seq, recs[i].Name, recs[i].Seq)
		}
	}
}

func TestReadFastqBasic(t *testing.T) {
	in := "@r1\nACGT\n+\nIIII\n@r2\nGG\n+anything\n!!\n"
	recs, err := ReadFastq(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records want 2", len(recs))
	}
	if recs[0].Name != "r1" || string(recs[0].Seq) != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Errorf("rec0 = %+v", recs[0])
	}
}

func TestReadFastqErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"@r1\nACGT\n+\nII\n",      // qual length mismatch
		"@r1\nACGT\n",             // truncated
		"r1\nACGT\n+\nIIII\n",     // missing @
		"@r1\nACGT\nIIII\nIIII\n", // missing +
	}
	for i, in := range cases {
		if _, err := ReadFastq(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "x", Seq: []byte("ACGTA"), Qual: []byte("IJKLM")},
		{Name: "y", Seq: []byte("TT")}, // nil qual gets filled
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Qual) != "IJKLM" {
		t.Errorf("qual = %q want IJKLM", got[0].Qual)
	}
	if string(got[1].Qual) != "II" {
		t.Errorf("filled qual = %q want II", got[1].Qual)
	}
}

func TestCodesOf(t *testing.T) {
	rec := Record{Name: "r", Seq: []byte("ACGT")}
	codes, err := CodesOf(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 2, 3}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v want %v", codes, want)
		}
	}
}

func TestCodesOfAmbiguous(t *testing.T) {
	rec := Record{Name: "r", Seq: []byte("ACNNT")}
	if _, err := CodesOf(rec, nil); err == nil {
		t.Error("nil rng accepted N")
	}
	codes, err := CodesOf(rec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		if c > 3 {
			t.Errorf("code %d at %d out of range", c, i)
		}
	}
	if codes[0] != 0 || codes[1] != 1 || codes[4] != 3 {
		t.Errorf("unambiguous bases altered: %v", codes)
	}
}
