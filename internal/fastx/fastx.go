// Package fastx reads and writes FASTA and FASTQ files, the interchange
// formats for references and read sets. Sequences are kept as ASCII in
// records; CodesOf converts to base codes with the usual mapper policy of
// replacing ambiguous bases (N etc.) with deterministic pseudo-random
// bases, as real read mappers do when building indexes.
package fastx

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/dna"
)

// Record is one FASTA/FASTQ entry. Qual is nil for FASTA records.
type Record struct {
	Name string
	Seq  []byte // ASCII bases
	Qual []byte // ASCII Phred+33, nil for FASTA
}

// appendSeq appends a FASTA sequence line to dst, dropping interior
// blanks: a space or tab inside a sequence line is layout, not
// sequence — kept, it would be miscoded as a base downstream and
// could not survive a write/re-read round-trip across line wraps.
func appendSeq(dst, line []byte) []byte {
	if bytes.IndexByte(line, ' ') < 0 && bytes.IndexByte(line, '\t') < 0 {
		return append(dst, line...)
	}
	for _, c := range line {
		if c != ' ' && c != '\t' {
			dst = append(dst, c)
		}
	}
	return dst
}

// ReadFasta parses all records from r.
func ReadFasta(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var recs []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if b[0] == '>' {
			recs = append(recs, Record{Name: string(bytes.TrimSpace(b[1:]))})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fastx: line %d: sequence before first header", line)
		}
		if bytes.IndexByte(b, '>') >= 0 {
			// A '>' after the first column is a mangled header, and a
			// sequence containing one could not round-trip: wrapping
			// may put it at a line start, where it reads as a header.
			return nil, fmt.Errorf("fastx: line %d: stray '>' inside sequence line", line)
		}
		cur.Seq = appendSeq(cur.Seq, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("fastx: no FASTA records found")
	}
	return recs, nil
}

// WriteFasta writes records wrapping sequence lines at width columns
// (width <= 0 means no wrapping).
func WriteFasta(w io.Writer, recs []Record, width int) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		seq := rec.Seq
		if width <= 0 {
			width = len(seq)
		}
		for len(seq) > 0 {
			n := width
			if n > len(seq) {
				n = len(seq)
			}
			bw.Write(seq[:n])
			bw.WriteByte('\n')
			seq = seq[n:]
		}
	}
	return bw.Flush()
}

// ReadFastq parses all records from r. Each record must be the standard
// four lines: @name, sequence, +, quality.
func ReadFastq(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var recs []Record
	line := 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			line++
			b := bytes.TrimSpace(sc.Bytes())
			if len(b) > 0 {
				out := make([]byte, len(b))
				copy(out, b)
				return out, true
			}
		}
		return nil, false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if hdr[0] != '@' {
			return nil, fmt.Errorf("fastx: line %d: expected @header, got %q", line, hdr)
		}
		seq, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: line %d: truncated record (missing sequence)", line)
		}
		plus, ok := next()
		if !ok || plus[0] != '+' {
			return nil, fmt.Errorf("fastx: line %d: expected + separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: line %d: truncated record (missing quality)", line)
		}
		if len(qual) != len(seq) {
			return nil, fmt.Errorf("fastx: line %d: quality length %d != sequence length %d",
				line, len(qual), len(seq))
		}
		recs = append(recs, Record{Name: string(hdr[1:]), Seq: seq, Qual: qual})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("fastx: no FASTQ records found")
	}
	return recs, nil
}

// WriteFastq writes records in four-line FASTQ form. Records without
// qualities get a constant high quality string.
func WriteFastq(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CodesOf converts a record's ASCII sequence to base codes. Ambiguous
// characters are replaced with pseudo-random bases drawn from rng, the
// standard index-building policy; rng may be nil to reject them instead.
func CodesOf(rec Record, rng *rand.Rand) ([]byte, error) {
	out := make([]byte, len(rec.Seq))
	for i, b := range rec.Seq {
		c, ok := dna.CodeOf(b)
		if !ok {
			if rng == nil {
				return nil, fmt.Errorf("fastx: record %s: invalid base %q at %d", rec.Name, b, i)
			}
			c = byte(rng.Intn(4))
		}
		out[i] = c
	}
	return out, nil
}
