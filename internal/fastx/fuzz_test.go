package fastx

import (
	"bytes"
	"testing"
	"testing/quick"
)

// The parsers face arbitrary files; they must reject or accept but never
// panic, and anything they accept must round-trip.

func TestReadFastaNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		recs, err := ReadFasta(bytes.NewReader(raw))
		if err != nil {
			return true
		}
		// Accepted input must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteFasta(&buf, recs, 60); err != nil {
			return false
		}
		again, err := ReadFasta(&buf)
		if err != nil || len(again) != len(recs) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(again[i].Seq, recs[i].Seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReadFastqNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		recs, err := ReadFastq(bytes.NewReader(raw))
		if err != nil {
			return true
		}
		for _, r := range recs {
			if len(r.Qual) != len(r.Seq) {
				return false // parser let a length mismatch through
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
