package fastx

import (
	"bytes"
	"errors"
	"testing"
)

// The parsers face arbitrary files; they must reject or accept but never
// panic, anything they accept must round-trip, and the streaming Scanner
// must agree with the batch parsers — two independent implementations
// cross-validating each other, so a parsing bug has to strike both to go
// unnoticed. (These targets replaced the original testing/quick checks;
// `go test` runs the seed corpus, `go test -fuzz=FuzzScanner` explores.)

// seedCorpus feeds every target the interesting shapes: CRLF endings,
// truncated quality lines, empty records, blank lines, missing newlines.
func seedCorpus(f *testing.F) {
	for _, s := range []string{
		"",
		"\n\n",
		">a\nACGT\n>b\nTT\n",
		">a\r\nACGT\r\n",
		">a\n>b\nACGT\n",       // empty record
		">a\nACGT",             // no trailing newline
		"ACGT\n>a\nAC\n",       // sequence before header
		"@r1\nACGT\n+\nIIII\n", // well-formed FASTQ
		"@r1\r\nACGT\r\n+\r\nIIII\r\n",
		"@r1\nACGT\n+\nIII\n",     // truncated quality line
		"@r1\nACGT\n+\n",          // missing quality
		"@r1\nACGT\n",             // missing separator
		"@r1\n",                   // header only
		"@r1\nACGT\nIIII\nACGT\n", // separator is not '+'
		"@\n\n+\n\n",              // empty name, empty record
		"\n@r1\nAC\n\n+\nII\n",    // blank lines between fields
		"@a\nAC\n+\nII\n@b\nACGT\n+\nII\n@c\nGG\n+\nII\n",
	} {
		f.Add([]byte(s))
	}
}

func FuzzReadFasta(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ReadFasta(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted input must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteFasta(&buf, recs, 60); err != nil {
			t.Fatalf("write accepted records: %v", err)
		}
		again, err := ReadFasta(&buf)
		if err != nil {
			t.Fatalf("reparse written records: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round-trip count %d != %d", len(again), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(again[i].Seq, recs[i].Seq) {
				t.Fatalf("record %d sequence changed in round-trip", i)
			}
		}
		// The strict scanner is an independent implementation; on inputs
		// the batch parser accepts, it must produce identical records.
		srecs, err := collect(NewScanner(bytes.NewReader(raw), ScanOptions{Format: FormatFASTA}))
		if err != nil {
			t.Fatalf("scanner rejected batch-accepted input: %v", err)
		}
		if !recordsEqual(srecs, recs) {
			t.Fatalf("scanner records differ from ReadFasta:\nscanner %+v\nbatch   %+v", srecs, recs)
		}
	})
}

func FuzzReadFastq(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ReadFastq(bytes.NewReader(raw))
		if err != nil {
			return
		}
		for _, r := range recs {
			if len(r.Qual) != len(r.Seq) {
				t.Fatal("parser let a length mismatch through")
			}
		}
		srecs, err := collect(NewScanner(bytes.NewReader(raw), ScanOptions{Format: FormatFASTQ}))
		if err != nil {
			t.Fatalf("scanner rejected batch-accepted input: %v", err)
		}
		if !recordsEqual(srecs, recs) {
			t.Fatalf("scanner records differ from ReadFastq:\nscanner %+v\nbatch   %+v", srecs, recs)
		}
	})
}

func FuzzScanner(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, format := range []Format{FormatAuto, FormatFASTA, FormatFASTQ} {
			// Strict mode: never panics; a terminal error on an in-memory
			// reader must be a typed *ParseError.
			strict, err := collect(NewScanner(bytes.NewReader(raw), ScanOptions{Format: format}))
			if err != nil {
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("format %v: non-ParseError terminal error: %v", format, err)
				}
			}
			for _, r := range strict {
				if r.Qual != nil && len(r.Qual) != len(r.Seq) {
					t.Fatalf("format %v: quality/sequence length mismatch accepted", format)
				}
			}

			// Lenient mode: never fails — except for auto-detection on an
			// unrecognizable first line, where there is no format to
			// resync to — and keeps at least every record the strict scan
			// produced before it stopped.
			sc := NewScanner(bytes.NewReader(raw), ScanOptions{Format: format, Lenient: true})
			lenient, err := collect(sc)
			if err != nil {
				var pe *ParseError
				if format == FormatAuto && errors.As(err, &pe) && pe.Reason == ReasonUnknownFormat {
					continue
				}
				t.Fatalf("format %v: lenient scan failed: %v", format, err)
			}
			if len(lenient) < len(strict) {
				t.Fatalf("format %v: lenient kept %d records, strict parsed %d",
					format, len(lenient), len(strict))
			}
			if !recordsEqual(lenient[:len(strict)], strict) {
				t.Fatalf("format %v: lenient prefix differs from strict records", format)
			}
		}
	})
}

// FuzzScannerResume stresses the checkpoint property on arbitrary
// inputs: for a strict scan, stopping after the first record and
// resuming at Offset() yields the same remaining records.
func FuzzScannerResume(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		full, err := collect(NewScanner(bytes.NewReader(raw), ScanOptions{Format: FormatFASTQ}))
		if err != nil || len(full) < 2 {
			return
		}
		sc := NewScanner(bytes.NewReader(raw), ScanOptions{Format: FormatFASTQ})
		if !sc.Scan() {
			t.Fatal("scan failed on accepted input")
		}
		off := sc.Offset()
		if off < 0 || off > int64(len(raw)) {
			t.Fatalf("offset %d out of range [0, %d]", off, len(raw))
		}
		rest, err := collect(NewScanner(bytes.NewReader(raw[off:]),
			ScanOptions{Format: FormatFASTQ, BaseOffset: off}))
		if err != nil {
			t.Fatalf("resume at %d failed: %v", off, err)
		}
		if !recordsEqual(rest, full[1:]) {
			t.Fatalf("resume at %d: %d records, want %d", off, len(rest), len(full)-1)
		}
	})
}
