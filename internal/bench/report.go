package bench

import (
	"fmt"
	"io"
	"time"
)

// Report bundles one full experiment run for rendering.
type Report struct {
	Scale    Scale
	Seed     int64
	Started  time.Time
	Duration time.Duration
	T1, T2   *Comparison
	T3       *Comparison
	T4       *EnergyTable
	F3, F4   *Series
}

// RunAll executes every experiment at the given scale.
func RunAll(sc Scale, seed int64) (*Report, error) {
	start := time.Now()
	ds, err := BuildDataset(sc, seed)
	if err != nil {
		return nil, err
	}
	r := &Report{Scale: sc, Seed: seed, Started: start}
	if r.T1, err = Table1(ds); err != nil {
		return nil, fmt.Errorf("table 1: %w", err)
	}
	if r.T2, err = Table2(ds); err != nil {
		return nil, fmt.Errorf("table 2: %w", err)
	}
	if r.T3, err = Table3(ds); err != nil {
		return nil, fmt.Errorf("table 3: %w", err)
	}
	if r.T4, err = Table4(ds); err != nil {
		return nil, fmt.Errorf("table 4: %w", err)
	}
	if r.F3, err = RunFig3(ds); err != nil {
		return nil, fmt.Errorf("fig 3: %w", err)
	}
	if r.F4, err = RunFig4(ds); err != nil {
		return nil, fmt.Errorf("fig 4: %w", err)
	}
	r.Duration = time.Since(start)
	return r, nil
}

// markdownComparison renders measured vs paper cells side by side.
func markdownComparison(w io.Writer, c *Comparison, paper *PaperComparison) {
	fmt.Fprintf(w, "\n### %s\n\n", c.Title)
	fmt.Fprintf(w, "Accuracy metric: %s. Cells are `measured | paper` as `T(s) / A(%%)`.\n\n", c.Metric)
	fmt.Fprintf(w, "| mapper |")
	for _, col := range c.Cols {
		fmt.Fprintf(w, " %s |", col)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range c.Cols {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for i, row := range c.Rows {
		fmt.Fprintf(w, "| %s |", row)
		for j := range c.Cols {
			cell := c.Cells[i][j]
			fmt.Fprintf(w, " %.2f / %.1f", cell.TimeS, cell.AccPct)
			if paper != nil {
				if pc, ok := paper.Cells[row]; ok && j < len(pc) {
					fmt.Fprintf(w, " <br> _%.1f / %.1f_", pc[j].TimeS, pc[j].AccPct)
				}
			}
			fmt.Fprintf(w, " |")
		}
		fmt.Fprintln(w)
	}
}

// markdownEnergy renders Table IV measured vs paper.
func markdownEnergy(w io.Writer, t *EnergyTable) {
	fmt.Fprintf(w, "\n### Table IV: power and energy (§III-D)\n\n")
	fmt.Fprintf(w, "Cells are `measured | paper` as `P(W) / E(J)`; P includes idle draw, E is marginal, as in the paper.\n\n")
	for _, sec := range t.Sections {
		fmt.Fprintf(w, "**%s** (idle %.1f W; paper idle %.1f W)\n\n", sec.System, sec.IdleW, PaperIdle[sec.System])
		fmt.Fprintf(w, "| mapper |")
		for _, col := range t.Cols {
			fmt.Fprintf(w, " %s |", col)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "|---|")
		for range t.Cols {
			fmt.Fprintf(w, "---|")
		}
		fmt.Fprintln(w)
		paperRows := PaperTable4[sec.System]
		for i, row := range sec.Rows {
			fmt.Fprintf(w, "| %s |", row)
			for j := range t.Cols {
				cell := sec.Cells[i][j]
				fmt.Fprintf(w, " %.1f / %.1f", cell.PowerW, cell.EnergyJ)
				if pr, ok := paperRows[row]; ok && j < len(pr) {
					fmt.Fprintf(w, " <br> _%.1f / %.1f_", pr[j].PowerW, pr[j].EnergyJ)
				}
				fmt.Fprintf(w, " |")
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

// markdownSeries renders a figure sweep.
func markdownSeries(w io.Writer, s *Series) {
	fmt.Fprintf(w, "\n### %s\n\n| %s | T(s) |\n|---|---|\n", s.Title, s.XLabel)
	for _, p := range s.Points {
		fmt.Fprintf(w, "| %s | %.2f |\n", p.Label, p.TimeS)
	}
}

// WriteMarkdown renders the full report in EXPERIMENTS.md form.
func (r *Report) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "# EXPERIMENTS — paper vs measured\n\n")
	fmt.Fprintf(w, "Run: scale `%s` (reference %d bp, %d reads per set), seed %d, wall time %s.\n\n",
		r.Scale.Name, r.Scale.RefLen, r.Scale.ReadsPerSet, r.Seed, r.Duration.Round(time.Second))
	fmt.Fprintf(w, "Mapping times are **simulated seconds** from the device models in "+
		"`internal/cl` (the work counts are real, the clock is modelled — see DESIGN.md §2); "+
		"the paper's numbers are measured on its physical testbed with 1M reads per set "+
		"against chr21, so absolute values differ by scale. The object of comparison is the "+
		"shape: orderings, rough factors and crossovers, checked explicitly below.\n")
	markdownComparison(w, r.T1, &PaperTable1)
	markdownComparison(w, r.T2, &PaperTable2)
	markdownComparison(w, r.T3, &PaperTable3)
	markdownEnergy(w, r.T4)
	markdownSeries(w, r.F3)
	fmt.Fprintf(w, "\nPaper Fig. 3 shape: time falls as reads move to the GPUs, then flattens/rises as a GPU becomes the bottleneck.\n")
	markdownSeries(w, r.F4)
	fmt.Fprintf(w, "\nPaper Fig. 4 shape: U-curve — small Smin pays in DP filtration time, large Smin pays in candidate verification.\n")

	fmt.Fprintf(w, "\n## Shape checks\n\n")
	checks := CheckShapes(r.T1, r.T2, r.T3, r.T4, r.F3, r.F4)
	for _, c := range checks {
		mark := "✅"
		if !c.Pass {
			mark = "❌"
		}
		if c.Detail != "" {
			fmt.Fprintf(w, "- %s %s — %s\n", mark, c.Name, c.Detail)
		} else {
			fmt.Fprintf(w, "- %s %s\n", mark, c.Name)
		}
	}
}
