package bench

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/mapper/bwamem"
	"repro/internal/mapper/coral"
	"repro/internal/mapper/gem"
	"repro/internal/mapper/hobbes3"
	"repro/internal/mapper/razers3"
	"repro/internal/mapper/yara"
	"repro/internal/seed"
)

// Spec names a mapper variant and how to build and configure it.
type Spec struct {
	Label string
	// Gold marks the accuracy reference (RazerS3, as in the paper).
	Gold bool
	// Build constructs the mapper once per suite; it is cached by label.
	Build func(ds *Dataset) (mapper.Mapper, error)
	// Tune adjusts the base options for this mapper (location caps,
	// best mode, ...). Nil keeps the base options.
	Tune func(o mapper.Options) mapper.Options
}

// maxQFor keeps hash-index directories proportionate to the reference.
func maxQFor(refLen int) int {
	q := 4
	for n := refLen; n > 256 && q < 11; n >>= 2 {
		q++
	}
	return q
}

// splitAll is the CPU + 2 GPU workload split used for the "-all" variants
// (the paper offloads 480k/1M reads to the GPUs at n=100, δ=3).
var splitAll = []float64{0.52, 0.24, 0.24}

// splitHiKey balances the A73 and A53 clusters by their clock ratio.
var splitHiKey = []float64{0.57, 0.43}

// goldTune is the paper's RazerS3 configuration: at most 100 locations
// per read (other mappers report up to 1000).
func goldTune(o mapper.Options) mapper.Options {
	o.MaxLocations = 100
	return o
}

// SystemOneSpecs are the Table I/II rows: baselines on the host CPU, the
// OpenCL mappers on the CPU device, with optional "-all" variants across
// CPU + both GPUs.
func SystemOneSpecs(includeAll bool) []Spec {
	specs := []Spec{
		{
			Label: "RazerS3", Gold: true,
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return razers3.New(ds.Ref, cl.SystemOneHost(), maxQFor(len(ds.Ref)))
			},
			Tune: goldTune,
		},
		{
			Label: "Hobbes3",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return hobbes3.New(ds.Ref, cl.SystemOneHost(), maxQFor(len(ds.Ref)))
			},
		},
		{
			Label: "Yara",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return yara.New(ds.Ref, cl.SystemOneHost(), true)
			},
		},
		{
			Label: "BWA-MEM",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return bwamem.New(ds.Ref, cl.SystemOneHost())
			},
		},
		{
			Label: "GEM",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return gem.New(ds.Ref, cl.SystemOneHost())
			},
		},
		{
			Label: "CORAL-cpu",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return coral.New(ds.Ref, []*cl.Device{cl.SystemOneCPU()}, nil, "CORAL-cpu")
			},
		},
		{
			Label: "REPUTE-cpu",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return core.New(ds.Ref, []*cl.Device{cl.SystemOneCPU()}, core.Config{Name: "REPUTE-cpu"})
			},
		},
	}
	if includeAll {
		specs = append(specs,
			Spec{
				Label: "CORAL-all",
				Build: func(ds *Dataset) (mapper.Mapper, error) {
					return coral.New(ds.Ref, cl.SystemOne().Devices, splitAll, "CORAL-all")
				},
			},
			Spec{
				Label: "REPUTE-all",
				Build: func(ds *Dataset) (mapper.Mapper, error) {
					return core.New(ds.Ref, cl.SystemOne().Devices, core.Config{
						Name: "REPUTE-all", Split: splitAll,
					})
				},
			},
		)
	}
	return specs
}

// SystemTwoSpecs are the Table III rows: the four mappers that run on the
// HiKey970 (§III-C), baselines on all eight cores, OpenCL mappers split
// across the two clusters.
func SystemTwoSpecs() []Spec {
	return []Spec{
		{
			Label: "RazerS3", Gold: true,
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return razers3.New(ds.Ref, cl.HiKeyHost(), maxQFor(len(ds.Ref)))
			},
			Tune: goldTune,
		},
		{
			Label: "Hobbes3",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return hobbes3.New(ds.Ref, cl.HiKeyHost(), maxQFor(len(ds.Ref)))
			},
		},
		{
			Label: "CORAL-HiKey",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return coral.New(ds.Ref, cl.HiKey970().Devices, splitHiKey, "CORAL-HiKey")
			},
		},
		{
			Label: "REPUTE-HiKey",
			Build: func(ds *Dataset) (mapper.Mapper, error) {
				return core.New(ds.Ref, cl.HiKey970().Devices, core.Config{
					Name: "REPUTE-HiKey", Split: splitHiKey,
				})
			},
		},
	}
}

// Suite caches constructed mappers for one dataset.
type Suite struct {
	DS      *Dataset
	mappers map[string]mapper.Mapper
}

// NewSuite wraps a dataset.
func NewSuite(ds *Dataset) *Suite {
	return &Suite{DS: ds, mappers: map[string]mapper.Mapper{}}
}

// Mapper builds (or returns the cached) mapper for a spec.
func (s *Suite) Mapper(spec Spec) (mapper.Mapper, error) {
	if m, ok := s.mappers[spec.Label]; ok {
		return m, nil
	}
	m, err := spec.Build(s.DS)
	if err != nil {
		return nil, fmt.Errorf("bench: building %s: %w", spec.Label, err)
	}
	s.mappers[spec.Label] = m
	return m, nil
}

// baseOptions are the shared run options for a column.
func baseOptions(col Column) mapper.Options {
	return mapper.Options{
		MaxErrors:    col.Errors,
		MaxLocations: 1000,
		MinSeedLen:   0, // mappers pick their defaults
	}
}

// reputeSeedParams mirrors core.DefaultMinSeedLen for reporting.
func reputeSeedParams(col Column) seed.Params {
	return seed.Params{
		Errors:     col.Errors,
		MinSeedLen: core.DefaultMinSeedLen(col.ReadLen, col.Errors),
	}
}
