package bench

// Paper-reported numbers (DATE 2020, Tables I-IV), embedded so the
// experiment tooling can print paper-vs-measured comparisons and
// EXPERIMENTS.md can record them. A value of -1 marks entries the paper
// leaves blank or merges (BWA-MEM is reported once per read length).

// PaperCell mirrors CellTA for paper data.
type PaperCell struct {
	TimeS  float64
	AccPct float64
}

// PaperComparison is a paper table in the same shape as Comparison.
type PaperComparison struct {
	Title string
	Cols  []Column
	Rows  []string
	Cells map[string][]PaperCell // by row label, indexed like Cols
}

// PaperTable1 is Table I (homogeneous, CPU only, §III-A accuracy).
var PaperTable1 = PaperComparison{
	Title: "Paper Table I (homogeneous scenario)",
	Cols:  PaperColumns,
	Rows:  []string{"RazerS3", "Hobbes3", "Yara", "BWA-MEM", "GEM", "CORAL-cpu", "REPUTE-cpu"},
	Cells: map[string][]PaperCell{
		"RazerS3":    {{26.7, 100}, {42.6, 100}, {65.7, 100}, {30.7, 100}, {50.6, 100}, {91.3, 100}},
		"Hobbes3":    {{21.6, 100}, {18.6, 100}, {16.6, 100}, {58.4, 100}, {50, 100}, {40.7, 100}},
		"Yara":       {{10, 5.22}, {21, 4.51}, {25.5, 4.00}, {38.2, 5.27}, {116.5, 4.54}, {321.4, 4.14}},
		"BWA-MEM":    {{82, 39.9}, {82, 39.9}, {82, 39.9}, {159, 30.82}, {159, 30.82}, {159, 30.82}},
		"GEM":        {{22, 4.88}, {22, 4.14}, {21, 3.59}, {56, 4.74}, {54, 4.15}, {53, 3.68}},
		"CORAL-cpu":  {{7.03, 99.96}, {16.34, 99.91}, {32.29, 99.87}, {17.31, 100}, {37.36, 100}, {66.35, 100}},
		"REPUTE-cpu": {{7.49, 99.99}, {14.88, 99.98}, {24.92, 99.94}, {13.75, 100}, {21.1, 100}, {33.4, 99.99}},
	},
}

// PaperTable2 is Table II (heterogeneous, CPU + 2 GPUs, §III-B accuracy).
var PaperTable2 = PaperComparison{
	Title: "Paper Table II (heterogeneous scenario)",
	Cols:  PaperColumns,
	Rows:  []string{"RazerS3", "Hobbes3", "Yara", "BWA-MEM", "GEM", "CORAL-all", "REPUTE-all"},
	Cells: map[string][]PaperCell{
		"RazerS3":    {{26.7, 100}, {42.6, 100}, {65.7, 100}, {30.7, 100}, {50.6, 100}, {91.3, 100}},
		"Hobbes3":    {{20.4, 100}, {16.9, 100}, {14.6, 100}, {58.2, 100}, {49.5, 100}, {40.5, 100}},
		"Yara":       {{10, 99.2}, {21, 99.4}, {25.5, 99.5}, {38.2, 100}, {116.5, 100}, {321.4, 100}},
		"BWA-MEM":    {{82.2, 97.16}, {82.2, 97.16}, {82.2, 97.16}, {159.1, 95.09}, {159.1, 95.09}, {159.1, 95.09}},
		"GEM":        {{22, 92.9}, {22, 91.4}, {22, 89.4}, {54, 90.2}, {54, 91.3}, {53, 89.1}},
		"CORAL-all":  {{5.24, 99.98}, {9.74, 99.97}, {24.73, 99.98}, {12.2, 100}, {29.47, 100}, {56.05, 100}},
		"REPUTE-all": {{5.27, 99.99}, {12.65, 99.99}, {19.8, 99.9}, {7.87, 100}, {12.9, 100}, {23.9, 100}},
	},
}

// PaperTable3 is Table III (HiKey970 embedded scenario).
var PaperTable3 = PaperComparison{
	Title: "Paper Table III (embedded scenario, HiKey970)",
	Cols:  PaperColumns,
	Rows:  []string{"RazerS3", "Hobbes3", "CORAL-HiKey", "REPUTE-HiKey"},
	Cells: map[string][]PaperCell{
		"RazerS3":      {{89.1, 100}, {127.5, 100}, {222.3, 100}, {96.8, 100}, {168.1, 100}, {328.1, 100}},
		"Hobbes3":      {{54.06, 100}, {47.37, 100}, {46.68, 100}, {89.95, 100}, {78.21, 100}, {69.34, 100}},
		"CORAL-HiKey":  {{16.41, 100}, {38.39, 100}, {67.48, 100}, {38.65, 100}, {78.50, 100}, {134.1, 100}},
		"REPUTE-HiKey": {{17.47, 99.99}, {35.35, 99.99}, {60.61, 99.99}, {49.44, 100}, {56.3, 100}, {84.72, 100}},
	},
}

// PaperEnergyCell mirrors EnergyCell for paper data.
type PaperEnergyCell struct {
	PowerW  float64
	EnergyJ float64
}

// PaperTable4 holds Table IV, keyed by system then row label; cells are
// indexed like EnergyColumns.
var PaperTable4 = map[string]map[string][]PaperEnergyCell{
	"System 1": {
		"RazerS3":    {{241, 2162.7}, {243, 2548.1}},
		"Hobbes3":    {{254, 1917.6}, {258, 5703.6}},
		"CORAL-cpu":  {{365, 1440.1}, {371, 3652.3}},
		"CORAL-all":  {{454, 1540.7}, {461, 3673.1}},
		"REPUTE-cpu": {{354, 1691.5}, {358, 2859.1}},
		"REPUTE-all": {{455, 1554.7}, {490, 2597.1}},
	},
	"System 2": {
		"RazerS3":      {{7.5, 356.3}, {8.6, 493.5}},
		"Hobbes3":      {{7.5, 216.2}, {8.4, 440.8}},
		"CORAL-HiKey":  {{8.5, 82.06}, {9.1, 216.5}},
		"REPUTE-HiKey": {{8, 78.6}, {7.8, 212.6}},
	},
}

// PaperIdle holds the idle powers the paper subtracts.
var PaperIdle = map[string]float64{"System 1": 160, "System 2": 3.5}
