package bench

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/trace"
)

// Trace demo: one instrumented heterogeneous run on System 1 (CPU + two
// GTX 590 halves, the paper's 0.52/0.24/0.24 split) with the recording
// tracer installed, exported both as a Chrome trace-event file (open in
// chrome://tracing or Perfetto) and as a metrics snapshot. This is the
// observability layer's showcase, the way the fault sweep is the
// recovery layer's.

// TraceDemo holds one instrumented run's artifacts.
type TraceDemo struct {
	Reads       int
	SimSeconds  float64
	EnergyJ     float64
	Recorder    *trace.Recorder
	ChromeJSON  []byte // trace-event file, ready to write to disk
	MetricsJSON []byte // metrics snapshot in the registry's JSON form
}

// RunTraceDemo maps the dataset's 100 bp read set on System 1 with a
// recording tracer and validates the resulting trace before export.
func RunTraceDemo(ds *Dataset) (*TraceDemo, error) {
	rec := trace.NewRecorder()
	p, err := core.New(ds.Ref, cl.SystemOne().Devices, core.Config{
		Split:  []float64{0.52, 0.24, 0.24},
		Tracer: rec,
	})
	if err != nil {
		return nil, err
	}
	reads := ds.Sets[100].Reads
	if len(reads) > 400 {
		reads = reads[:400]
	}
	res, err := p.Map(reads, mapper.Options{MaxErrors: 3, MaxLocations: 100})
	if err != nil {
		return nil, err
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("bench: trace demo produced an invalid trace: %w", err)
	}
	var cbuf, mbuf bytes.Buffer
	if err := trace.WriteChromeTrace(&cbuf, rec); err != nil {
		return nil, err
	}
	if err := rec.Metrics().WriteJSON(&mbuf); err != nil {
		return nil, err
	}
	return &TraceDemo{
		Reads:       len(reads),
		SimSeconds:  res.SimSeconds,
		EnergyJ:     res.EnergyJ,
		Recorder:    rec,
		ChromeJSON:  cbuf.Bytes(),
		MetricsJSON: mbuf.Bytes(),
	}, nil
}

// Render prints a per-lane summary of the recorded trace.
func (d *TraceDemo) Render(w io.Writer) {
	fmt.Fprintf(w, "Trace demo: %d reads on System 1, %d trace events (%.5f sim s, %.3f J)\n",
		d.Reads, len(d.Recorder.Events()), d.SimSeconds, d.EnergyJ)
	fmt.Fprintf(w, "  %-34s %7s %8s %12s\n", "lane", "spans", "instants", "busy(sim s)")
	type laneStat struct {
		spans, instants int
		busy            float64
	}
	stats := map[string]*laneStat{}
	for _, ev := range d.Recorder.Events() {
		s := stats[ev.Lane]
		if s == nil {
			s = &laneStat{}
			stats[ev.Lane] = s
		}
		if ev.Phase == 'X' {
			s.spans++
			if end := ev.Start + ev.Dur; end > s.busy {
				s.busy = end
			}
		} else {
			s.instants++
		}
	}
	for _, lane := range d.Recorder.Lanes() {
		s := stats[lane]
		fmt.Fprintf(w, "  %-34s %7d %8d %12.5f\n", lane, s.spans, s.instants, s.busy)
	}
	fmt.Fprintf(w, "  Chrome trace: %d bytes, metrics snapshot: %d bytes\n",
		len(d.ChromeJSON), len(d.MetricsJSON))
}
