package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/align"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/seed"
)

// Ablations quantifies the design choices DESIGN.md §6 calls out, on one
// dataset: filtration strategy quality/cost, locate-structure footprint
// vs speed, and verification kernel choice.
type Ablations struct {
	Filtration []FiltrationRow
	Locate     []LocateRow
	Verify     []VerifyRow
}

// FiltrationRow compares one seed-selection strategy.
type FiltrationRow struct {
	Name         string
	CandPerRead  float64
	FMPerRead    float64
	DPCells      float64
	PeakMemBytes int
}

// LocateRow compares one suffix-array configuration.
type LocateRow struct {
	Name       string
	IndexBytes int64
	SimSeconds float64
}

// VerifyRow compares one verification algorithm (host wall time — these
// all run on the same silicon, so wall time is the honest metric).
type VerifyRow struct {
	Name     string
	NsPerWin float64
}

// RunAblations executes all three studies at a bounded cost.
func RunAblations(ds *Dataset) (*Ablations, error) {
	out := &Ablations{}
	ix := fmindex.Build(ds.Ref, fmindex.Options{})
	reads := ds.Sets[150].Reads
	if len(reads) > 600 {
		reads = reads[:600]
	}

	// 1. Filtration strategies at (n=150, δ=5).
	params := seed.Params{Errors: 5, MinSeedLen: core.DefaultMinSeedLen(150, 5)}
	for _, sel := range []seed.Selector{seed.Uniform{}, seed.CORAL{}, seed.REPUTE{}, seed.OSS{}} {
		var cands, fm, cells, peak int
		for _, r := range reads {
			s, err := sel.Select(ix, r, params)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation %s: %w", sel.Name(), err)
			}
			cands += s.TotalCandidates
			fm += s.FMSteps
			cells += s.DPCells
			if s.PeakMemBytes > peak {
				peak = s.PeakMemBytes
			}
		}
		n := float64(len(reads))
		out.Filtration = append(out.Filtration, FiltrationRow{
			Name:         sel.Name(),
			CandPerRead:  float64(cands) / n,
			FMPerRead:    float64(fm) / n,
			DPCells:      float64(cells) / n,
			PeakMemBytes: peak,
		})
	}

	// 2. Locate structures: map a subset through the pipeline on the CPU
	// device with each index variant.
	sub := reads
	if len(sub) > 300 {
		sub = sub[:300]
	}
	opt := mapper.Options{MaxErrors: 5, MaxLocations: 100}
	for _, cfg := range []struct {
		name string
		rate int
	}{{"full suffix array", 0}, {"sampled 1/16", 16}, {"sampled 1/64", 64}} {
		vix := ix
		if cfg.rate != 0 {
			vix = fmindex.Build(ds.Ref, fmindex.Options{SASampleRate: cfg.rate})
		}
		p, err := core.NewFromIndex(vix, []*cl.Device{cl.SystemOneCPU()}, core.Config{})
		if err != nil {
			return nil, err
		}
		res, err := p.Map(sub, opt)
		if err != nil {
			return nil, err
		}
		out.Locate = append(out.Locate, LocateRow{
			Name:       cfg.name,
			IndexBytes: vix.SizeBytes(),
			SimSeconds: res.SimSeconds,
		})
	}

	// 3. Verification kernels over pipeline-shaped windows.
	const k = 5
	type verifier struct {
		name string
		fn   func(p, w []byte) (int, int)
	}
	verifiers := []verifier{
		{"Myers bit-vector", func(p, w []byte) (int, int) { return align.Distance(p, w, k) }},
		{"banded DP", func(p, w []byte) (int, int) { return align.BandedDistance(p, w, k) }},
		{"full DP", func(p, w []byte) (int, int) { return align.DistanceDP(p, w, k) }},
	}
	for _, v := range verifiers {
		start := time.Now()
		wins := 0
		for rep := 0; rep < 3; rep++ {
			for j, r := range reads {
				pos := (j*997 + rep*131) % (len(ds.Ref) - len(r) - 2*k)
				window := ds.Ref[pos : pos+len(r)+2*k]
				v.fn(r, window)
				wins++
			}
		}
		out.Verify = append(out.Verify, VerifyRow{
			Name:     v.name,
			NsPerWin: float64(time.Since(start).Nanoseconds()) / float64(wins),
		})
	}
	return out, nil
}

// Render prints the three studies.
func (a *Ablations) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation 1: filtration strategies (n=150, δ=5)")
	fmt.Fprintf(w, "  %-18s %12s %12s %12s %10s\n", "strategy", "cand/read", "FM/read", "DPcells/read", "peak B")
	for _, r := range a.Filtration {
		fmt.Fprintf(w, "  %-18s %12.1f %12.1f %12.1f %10d\n",
			r.Name, r.CandPerRead, r.FMPerRead, r.DPCells, r.PeakMemBytes)
	}
	fmt.Fprintln(w, "\nAblation 2: locate structure (§IV memory discussion)")
	fmt.Fprintf(w, "  %-18s %14s %12s\n", "structure", "index bytes", "T(sim s)")
	for _, r := range a.Locate {
		fmt.Fprintf(w, "  %-18s %14d %12.5f\n", r.Name, r.IndexBytes, r.SimSeconds)
	}
	fmt.Fprintln(w, "\nAblation 3: verification kernel (host ns per window)")
	for _, r := range a.Verify {
		fmt.Fprintf(w, "  %-18s %12.0f ns\n", r.Name, r.NsPerWin)
	}
}
