package bench

// Index persistence benchmark: the point of the on-disk artifact is that
// loading it (checksum verify + deserialize) is much cheaper than the
// rebuild-every-run path (SA-IS suffix sort + BWT + Occ table). This
// experiment measures both on the dataset's reference, plus the sharded
// variants, and reports the load-vs-rebuild speedup. BENCH_index.json at
// the repository root is a committed run of it.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/index"
)

// IndexRow is one artifact configuration's measurements.
type IndexRow struct {
	// Shards and SARate identify the configuration.
	Shards int `json:"shards"`
	SARate int `json:"sa_rate"`
	// BuildSec is the in-memory FM-index construction time — the cost
	// `map -ref` pays on every run.
	BuildSec float64 `json:"build_sec"`
	// WriteSec is the container serialization time (hash + write).
	WriteSec float64 `json:"write_sec"`
	// LoadSec is the verified container load time — the cost `map -index`
	// pays, including every section checksum and index validation.
	LoadSec float64 `json:"load_sec"`
	// InfoSec is the `index info` summary time (payloads skipped).
	InfoSec float64 `json:"info_sec"`
	// FileBytes is the artifact size on disk.
	FileBytes int64 `json:"file_bytes"`
	// Speedup is BuildSec / LoadSec: how much cheaper a verified load is
	// than rebuilding the index.
	Speedup float64 `json:"speedup"`
}

// IndexBench is the full measurement set.
type IndexBench struct {
	Scale    string     `json:"scale"`
	RefBases int        `json:"ref_bases"`
	Rows     []IndexRow `json:"rows"`
}

// timeIt returns the best-of-three wall time of f in seconds (minimum
// filters scheduler noise; the quantity of interest is intrinsic cost).
func timeIt(f func() error) (float64, error) {
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}

// RunIndexBench measures build, save, verified-load and info times for a
// whole-reference artifact and a sharded one over the dataset reference.
func RunIndexBench(ds *Dataset) (*IndexBench, error) {
	g, err := genome.New([]string{"chr21s"}, [][]byte{ds.Ref})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "repute-indexbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	b := &IndexBench{Scale: ds.Scale.Name, RefBases: g.Len()}
	for _, cfg := range []struct{ shards, rate int }{
		{1, 0},
		{1, 32},
		{4, 0},
	} {
		row := IndexRow{Shards: cfg.shards, SARate: cfg.rate}
		opts := fmindex.Options{SASampleRate: cfg.rate}

		// Rebuild cost: what every `map -ref` run pays before mapping.
		row.BuildSec, err = timeIt(func() error {
			if cfg.shards == 1 {
				fmindex.Build(g.Text(), opts)
				return nil
			}
			_, err := index.Build(g, cfg.shards, index.DefaultOverlap, opts)
			return err
		})
		if err != nil {
			return nil, err
		}

		f, err := index.Build(g, cfg.shards, index.DefaultOverlap, opts)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("s%d-r%d.ridx", cfg.shards, cfg.rate))
		row.WriteSec, err = timeIt(func() error { return index.Save(path, f) })
		if err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		row.FileBytes = st.Size()

		row.LoadSec, err = timeIt(func() error {
			_, err := index.LoadFile(path)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.InfoSec, err = timeIt(func() error {
			_, err := index.ReadInfoFile(path)
			return err
		})
		if err != nil {
			return nil, err
		}
		if row.LoadSec > 0 {
			row.Speedup = row.BuildSec / row.LoadSec
		}
		b.Rows = append(b.Rows, row)
	}
	return b, nil
}

// Render prints the measurement table.
func (b *IndexBench) Render(w io.Writer) {
	fmt.Fprintf(w, "Index persistence: load vs rebuild (%s scale, %d bp reference)\n",
		b.Scale, b.RefBases)
	fmt.Fprintf(w, "%-18s %10s %10s %10s %10s %12s %9s\n",
		"config", "build", "write", "load", "info", "file", "speedup")
	for _, r := range b.Rows {
		cfg := fmt.Sprintf("shards=%d", r.Shards)
		if r.SARate > 0 {
			cfg += fmt.Sprintf(" sa=1/%d", r.SARate)
		}
		fmt.Fprintf(w, "%-18s %9.1fms %9.1fms %9.1fms %9.1fms %11dB %8.1fx\n",
			cfg, r.BuildSec*1e3, r.WriteSec*1e3, r.LoadSec*1e3, r.InfoSec*1e3,
			r.FileBytes, r.Speedup)
	}
}

// WriteJSON writes the measurements as indented JSON (BENCH_index.json).
func (b *IndexBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
