package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/eval"
	"repro/internal/mapper"
)

// Metric selects the accuracy definition.
type Metric int

// Accuracy metrics.
const (
	MetricAll     Metric = iota // §III-A: all gold locations found
	MetricAnyBest               // §III-B: any matching location per read
)

func (m Metric) String() string {
	if m == MetricAll {
		return "all-locations (§III-A)"
	}
	return "any-best (§III-B)"
}

// CellTA holds one mapper×configuration measurement.
type CellTA struct {
	TimeS  float64
	AccPct float64
}

// Comparison is a Table I/II/III-shaped result.
type Comparison struct {
	Title  string
	Metric Metric
	Cols   []Column
	Rows   []string
	Cells  [][]CellTA
}

// RunComparison maps every spec over every column, measuring simulated
// time and accuracy against the gold spec under the given metric.
func RunComparison(title string, suite *Suite, specs []Spec, cols []Column, metric Metric) (*Comparison, error) {
	cmp := &Comparison{Title: title, Metric: metric, Cols: cols}
	for _, s := range specs {
		cmp.Rows = append(cmp.Rows, s.Label)
	}
	cmp.Cells = make([][]CellTA, len(specs))
	for i := range cmp.Cells {
		cmp.Cells[i] = make([]CellTA, len(cols))
	}
	goldIdx := -1
	for i, s := range specs {
		if s.Gold {
			goldIdx = i
			break
		}
	}
	if goldIdx < 0 {
		return nil, fmt.Errorf("bench: no gold spec in %s", title)
	}

	for ci, col := range cols {
		set, ok := suite.DS.Sets[col.ReadLen]
		if !ok {
			return nil, fmt.Errorf("bench: no read set of length %d", col.ReadLen)
		}
		results := make([]*mapper.Result, len(specs))
		for si, spec := range specs {
			m, err := suite.Mapper(spec)
			if err != nil {
				return nil, err
			}
			opt := baseOptions(col)
			if spec.Tune != nil {
				opt = spec.Tune(opt)
			}
			res, err := m.Map(set.Reads, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: %s at %s: %w", spec.Label, col, err)
			}
			results[si] = res
			cmp.Cells[si][ci].TimeS = res.SimSeconds
		}
		gold := results[goldIdx].Mappings
		for si := range specs {
			var acc float64
			if metric == MetricAll {
				acc = eval.AccuracyAll(gold, results[si].Mappings, int32(col.Errors))
			} else {
				acc = eval.AccuracyAnyBest(gold, results[si].Mappings, int32(col.Errors))
			}
			cmp.Cells[si][ci].AccPct = acc
		}
	}
	return cmp, nil
}

// Cell returns the measurement for (rowLabel, col), or false.
func (c *Comparison) Cell(rowLabel string, col Column) (CellTA, bool) {
	ri := -1
	for i, r := range c.Rows {
		if r == rowLabel {
			ri = i
			break
		}
	}
	if ri < 0 {
		return CellTA{}, false
	}
	for j, cc := range c.Cols {
		if cc == col {
			return c.Cells[ri][j], true
		}
	}
	return CellTA{}, false
}

// Render prints the comparison as an aligned text table, paper-style:
// T(s) and A(%) per configuration.
func (c *Comparison) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\naccuracy metric: %s\n", c.Title, c.Metric)
	fmt.Fprintf(w, "%-14s", "mapper")
	for _, col := range c.Cols {
		fmt.Fprintf(w, " | %-17s", col.String())
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "")
	for range c.Cols {
		fmt.Fprintf(w, " | %8s %8s", "T(s)", "A(%)")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 14+len(c.Cols)*20))
	for i, row := range c.Rows {
		fmt.Fprintf(w, "%-14s", row)
		for _, cell := range c.Cells[i] {
			fmt.Fprintf(w, " | %8.3f %8.2f", cell.TimeS, cell.AccPct)
		}
		fmt.Fprintln(w)
	}
}

// EnergyCell is one Table IV measurement: wall power (idle included, as a
// meter would read) and marginal energy (the paper's (P-idle)×T).
type EnergyCell struct {
	PowerW  float64
	EnergyJ float64
	TimeS   float64
}

// EnergySection is one system's block of Table IV.
type EnergySection struct {
	System string
	IdleW  float64
	Rows   []string
	Cells  [][]EnergyCell // [row][col]
}

// EnergyTable is the Table IV result.
type EnergyTable struct {
	Cols     []Column
	Sections []EnergySection
}

// RunEnergy measures power and energy for the given specs on one system.
func RunEnergy(system string, idleW float64, suite *Suite, specs []Spec, cols []Column) (*EnergySection, error) {
	sec := &EnergySection{System: system, IdleW: idleW}
	for _, s := range specs {
		sec.Rows = append(sec.Rows, s.Label)
	}
	sec.Cells = make([][]EnergyCell, len(specs))
	for si, spec := range specs {
		sec.Cells[si] = make([]EnergyCell, len(cols))
		m, err := suite.Mapper(spec)
		if err != nil {
			return nil, err
		}
		for ci, col := range cols {
			set := suite.DS.Sets[col.ReadLen]
			opt := baseOptions(col)
			if spec.Tune != nil {
				opt = spec.Tune(opt)
			}
			res, err := m.Map(set.Reads, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: %s energy at %s: %w", spec.Label, col, err)
			}
			cell := EnergyCell{EnergyJ: res.EnergyJ, TimeS: res.SimSeconds}
			if res.SimSeconds > 0 {
				cell.PowerW = idleW + res.EnergyJ/res.SimSeconds
			}
			sec.Cells[si][ci] = cell
		}
	}
	return sec, nil
}

// Render prints the energy table paper-style.
func (t *EnergyTable) Render(w io.Writer) {
	fmt.Fprintln(w, "Table IV: power and energy consumption (§III-D)")
	fmt.Fprintf(w, "%-14s", "mapper")
	for _, col := range t.Cols {
		fmt.Fprintf(w, " | %-17s", col.String())
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "")
	for range t.Cols {
		fmt.Fprintf(w, " | %8s %8s", "P(W)", "E(J)")
	}
	fmt.Fprintln(w)
	for _, sec := range t.Sections {
		fmt.Fprintf(w, "--- %s (idle %.1f W) %s\n", sec.System, sec.IdleW,
			strings.Repeat("-", 20))
		for i, row := range sec.Rows {
			fmt.Fprintf(w, "%-14s", row)
			for _, cell := range sec.Cells[i] {
				fmt.Fprintf(w, " | %8.1f %8.1f", cell.PowerW, cell.EnergyJ)
			}
			fmt.Fprintln(w)
		}
	}
}
