package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fabricate builds a minimal but well-formed report so the renderer can
// be tested without an hour-long run.
func fabricate() *Report {
	mkCmp := func(title string, rows []string, metric Metric) *Comparison {
		c := &Comparison{Title: title, Metric: metric, Cols: PaperColumns, Rows: rows}
		c.Cells = make([][]CellTA, len(rows))
		for i := range rows {
			c.Cells[i] = make([]CellTA, len(PaperColumns))
			for j := range c.Cells[i] {
				c.Cells[i][j] = CellTA{TimeS: float64(i+1) * 0.1, AccPct: 99}
			}
		}
		return c
	}
	t1 := mkCmp("Table I", []string{"RazerS3", "Hobbes3", "Yara", "BWA-MEM", "GEM", "CORAL-cpu", "REPUTE-cpu"}, MetricAll)
	t2 := mkCmp("Table II", []string{"RazerS3", "Hobbes3", "Yara", "BWA-MEM", "GEM", "CORAL-all", "REPUTE-all"}, MetricAnyBest)
	t3 := mkCmp("Table III", []string{"RazerS3", "Hobbes3", "CORAL-HiKey", "REPUTE-HiKey"}, MetricAnyBest)
	t4 := &EnergyTable{
		Cols: EnergyColumns,
		Sections: []EnergySection{
			{System: "System 1", IdleW: 160, Rows: []string{"REPUTE-all"},
				Cells: [][]EnergyCell{{{PowerW: 450, EnergyJ: 1500, TimeS: 5}, {PowerW: 460, EnergyJ: 2500, TimeS: 8}}}},
			{System: "System 2", IdleW: 3.5, Rows: []string{"REPUTE-HiKey"},
				Cells: [][]EnergyCell{{{PowerW: 8, EnergyJ: 80, TimeS: 17}, {PowerW: 8, EnergyJ: 210, TimeS: 50}}}},
		},
	}
	f3 := &Series{Title: "Fig. 3", XLabel: "reads per GPU",
		Points: []SeriesPoint{{X: 0, TimeS: 5, Label: "0"}, {X: 100, TimeS: 3, Label: "100"}, {X: 200, TimeS: 4, Label: "200"}}}
	f4 := &Series{Title: "Fig. 4", XLabel: "Smin",
		Points: []SeriesPoint{{X: 8, TimeS: 4, Label: "Smin=8"}, {X: 12, TimeS: 3, Label: "Smin=12"}, {X: 20, TimeS: 5, Label: "Smin=20"}}}
	return &Report{
		Scale: Tiny, Seed: 1, Started: time.Now(), Duration: time.Minute,
		T1: t1, T2: t2, T3: t3, T4: t4, F3: f3, F4: f4,
	}
}

func TestWriteMarkdownStructure(t *testing.T) {
	r := fabricate()
	var buf bytes.Buffer
	r.WriteMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{
		"# EXPERIMENTS — paper vs measured",
		"### Table I",
		"### Table II",
		"### Table III",
		"### Table IV",
		"Fig. 3",
		"Fig. 4",
		"## Shape checks",
		"REPUTE-cpu", "REPUTE-HiKey",
		"simulated seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Paper numbers must appear alongside measured ones (italicised).
	if !strings.Contains(out, "_26.7 / 100.0_") {
		t.Errorf("paper Table I numbers not embedded:\n%s", out[:min(2000, len(out))])
	}
}

func TestShapeChecksOnFabricatedReport(t *testing.T) {
	r := fabricate()
	checks := CheckShapes(r.T1, r.T2, r.T3, r.T4, r.F3, r.F4)
	if len(checks) < 10 {
		t.Fatalf("only %d checks", len(checks))
	}
	byName := map[string]ShapeCheck{}
	for _, c := range checks {
		byName[c.Name] = c
	}
	// The fabricated figures have interior minima: those checks pass.
	for name, c := range byName {
		if strings.HasPrefix(name, "F3:") && !c.Pass {
			t.Errorf("F3 check failed on interior-minimum series: %+v", c)
		}
		if strings.HasPrefix(name, "F4:") && !c.Pass {
			t.Errorf("F4 check failed on interior-minimum series: %+v", c)
		}
	}
	// Energy ratio 2500/210 ≈ 12x: the embedded-energy check passes.
	for name, c := range byName {
		if strings.Contains(name, "order of magnitude of energy") && !c.Pass {
			t.Errorf("energy check failed: %+v", c)
		}
	}
}

func TestWriteJSONStructure(t *testing.T) {
	r := fabricate()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := jsonUnmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	tables, ok := decoded["tables"].([]any)
	if !ok || len(tables) != 3 {
		t.Fatalf("tables = %v", decoded["tables"])
	}
	if decoded["energy"] == nil {
		t.Error("energy section missing")
	}
	figs, ok := decoded["figures"].([]any)
	if !ok || len(figs) != 2 {
		t.Errorf("figures = %v", decoded["figures"])
	}
	if checks, ok := decoded["shape_checks"].([]any); !ok || len(checks) < 10 {
		t.Errorf("shape_checks = %v", decoded["shape_checks"])
	}
}

func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
