package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

// SeriesPoint is one measurement of a figure sweep.
type SeriesPoint struct {
	X     float64
	TimeS float64
	Label string
}

// Series is a figure result.
type Series struct {
	Title  string
	XLabel string
	Points []SeriesPoint
}

// Render prints the series as a table plus a proportional ASCII bar chart.
func (s *Series) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n%-18s %10s\n", s.Title, s.XLabel, "T(s)")
	maxT := 0.0
	for _, p := range s.Points {
		if p.TimeS > maxT {
			maxT = p.TimeS
		}
	}
	for _, p := range s.Points {
		bar := 0
		if maxT > 0 {
			bar = int(40 * p.TimeS / maxT)
		}
		fmt.Fprintf(w, "%-18s %10.2f  %s\n", p.Label, p.TimeS, strings.Repeat("#", bar))
	}
}

// RunFig3 reproduces Fig. 3: mapping time for different CPU/GPU workload
// distributions at (n=150, δ=5) and minimum k-mer length 22. The X axis
// is the number of reads mapped by each GPU; the remainder goes to the
// CPU. The leftmost point is CPU-only, the rightmost all-GPU.
func RunFig3(ds *Dataset) (*Series, error) {
	set, ok := ds.Sets[150]
	if !ok {
		return nil, fmt.Errorf("bench: dataset lacks 150-bp reads")
	}
	ix := fmindex.Build(ds.Ref, fmindex.Options{})
	devices := cl.SystemOne().Devices
	s := &Series{
		Title:  "Fig. 3: time vs reads offloaded per GPU (n=150, δ=5, Smin=22)",
		XLabel: "reads per GPU",
	}
	n := len(set.Reads)
	opt := mapper.Options{MaxErrors: 5, MaxLocations: 100, MinSeedLen: 22}
	for _, fracPerGPU := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50} {
		split := []float64{1 - 2*fracPerGPU, fracPerGPU, fracPerGPU}
		p, err := core.NewFromIndex(ix, devices, core.Config{Name: "REPUTE-all", Split: split})
		if err != nil {
			return nil, err
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: fig3 at %.0f%%/GPU: %w", 100*fracPerGPU, err)
		}
		perGPU := float64(n) * fracPerGPU
		s.Points = append(s.Points, SeriesPoint{
			X:     perGPU,
			TimeS: res.SimSeconds,
			Label: fmt.Sprintf("%d", int(perGPU)),
		})
	}
	return s, nil
}

// RunFig4 reproduces Fig. 4: mapping time for different minimum k-mer
// lengths with a fixed workload distribution (CPU 82%, 9% per GPU) at
// (n=100, δ=4) — the paper's 820,000/90,000/90,000 read split.
func RunFig4(ds *Dataset) (*Series, error) {
	set, ok := ds.Sets[100]
	if !ok {
		return nil, fmt.Errorf("bench: dataset lacks 100-bp reads")
	}
	ix := fmindex.Build(ds.Ref, fmindex.Options{})
	devices := cl.SystemOne().Devices
	p, err := core.NewFromIndex(ix, devices, core.Config{
		Name: "REPUTE-all", Split: []float64{0.82, 0.09, 0.09},
	})
	if err != nil {
		return nil, err
	}
	s := &Series{
		Title:  "Fig. 4: time vs minimum k-mer length (n=100, δ=4, CPU 82% / GPU 9%+9%)",
		XLabel: "min k-mer length",
	}
	// Small Smin pays in DP exploration (the left rise), large Smin pays
	// in candidate verification (the right rise at 20, as in the paper).
	for _, smin := range []int{8, 9, 10, 12, 14, 16, 18, 20} {
		opt := mapper.Options{MaxErrors: 4, MaxLocations: 1000, MinSeedLen: smin}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: fig4 at Smin=%d: %w", smin, err)
		}
		s.Points = append(s.Points, SeriesPoint{
			X:     float64(smin),
			TimeS: res.SimSeconds,
			Label: fmt.Sprintf("Smin=%d", smin),
		})
	}
	return s, nil
}
