package bench

// Pre-alignment filter ablation: the GateKeeper-style filter kernel is
// only worth its cycles if it (a) never changes the final mappings and
// (b) rejects enough junk candidates before Myers verification to buy
// back more simulated time than it spends. This experiment maps one read
// set with the filter off and on across several error budgets and
// reports filtered fraction, false-accept rate, the (required-zero)
// false-reject count, and the simulated-time speedup.
// BENCH_prefilter.json at the repository root is a committed run of it.

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/seed"
	"repro/internal/trace"
)

// PrefilterRow is one (selector, error budget) ablation measurement.
type PrefilterRow struct {
	// Selector is the seed selection strategy the row ran under. The
	// filter's payoff depends on it: uniform fixed-stride seeding (the
	// regime GateKeeper-class filters were designed for) floods
	// verification with junk candidates, while the frequency-aware DP
	// selector already suppresses most junk at the seeding stage.
	Selector string `json:"selector"`
	// Delta is the error budget δ (mapper.Options.MaxErrors).
	Delta int `json:"delta"`
	// Reads is the mapped read count.
	Reads int `json:"reads"`
	// Candidates is the total deduplicated candidate locations the
	// filter examined (candidates_total in a filtered run).
	Candidates int64 `json:"candidates"`
	// Rejected is how many of them the filter discarded before
	// verification (prefilter_rejected_total).
	Rejected int64 `json:"rejected"`
	// FilteredFraction is Rejected / Candidates.
	FilteredFraction float64 `json:"filtered_fraction"`
	// FalseAccepts counts filter-accepted candidates that Myers
	// verification then rejected (prefilter_false_accepts_total).
	FalseAccepts int64 `json:"false_accepts"`
	// FalseAcceptRate is FalseAccepts / (Candidates - Rejected): of what
	// the filter let through, the fraction verification threw away.
	FalseAcceptRate float64 `json:"false_accept_rate"`
	// FalseRejects is the number of reads whose mappings differ between
	// the unfiltered and filtered runs. The filter's superset invariant
	// requires this to be zero; the accuracy-regression gate fails the
	// experiment otherwise.
	FalseRejects int `json:"false_rejects"`
	// GateOK records that eval.PrefilterGate passed (outputs identical).
	GateOK bool `json:"gate_ok"`
	// SimSecondsOff/On are the simulated mapping times without and with
	// the filter; Speedup is their ratio.
	SimSecondsOff float64 `json:"sim_seconds_off"`
	SimSecondsOn  float64 `json:"sim_seconds_on"`
	Speedup       float64 `json:"speedup"`
}

// PrefilterBench is the full ablation.
type PrefilterBench struct {
	Scale   string         `json:"scale"`
	ReadLen int            `json:"read_len"`
	Rows    []PrefilterRow `json:"rows"`
}

// RunPrefilterBench maps the dataset's 100 bp read set at δ ∈ {0..3}
// with the pre-alignment filter off and on, under both the uniform
// fixed-stride seed selector (the junk-heavy regime GateKeeper-class
// filters were built for) and the paper's frequency-aware DP selector
// (which suppresses most junk before it ever reaches verification).
func RunPrefilterBench(ds *Dataset) (*PrefilterBench, error) {
	const readLen = 100
	set, ok := ds.Sets[readLen]
	if !ok {
		return nil, fmt.Errorf("bench: dataset has no %d bp read set", readLen)
	}
	probe, err := core.New(ds.Ref, []*cl.Device{cl.SystemOneCPU()}, core.Config{})
	if err != nil {
		return nil, err
	}
	ix := probe.Index()

	b := &PrefilterBench{Scale: ds.Scale.Name, ReadLen: readLen}
	selectors := []seed.Selector{seed.Uniform{}, seed.REPUTE{}}
	for _, sel := range selectors {
		for delta := 0; delta <= 3; delta++ {
			row, err := prefilterPoint(ix, set.Reads, sel, delta)
			if err != nil {
				return nil, err
			}
			b.Rows = append(b.Rows, *row)
		}
	}
	return b, nil
}

// prefilterPoint measures one (selector, δ) configuration off vs on.
func prefilterPoint(ix *fmindex.Index, reads [][]byte, sel seed.Selector, delta int) (*PrefilterRow, error) {
	opt := mapper.Options{
		MaxErrors: delta, MaxLocations: 200, MinSeedLen: 8,
		Prefilter: mapper.PrefilterOff,
	}
	pOff, err := core.NewFromIndex(ix, []*cl.Device{cl.SystemOneCPU()}, core.Config{Selector: sel})
	if err != nil {
		return nil, err
	}
	off, err := pOff.Map(reads, opt)
	if err != nil {
		return nil, err
	}

	rec := trace.NewRecorder()
	pOn, err := core.NewFromIndex(ix, []*cl.Device{cl.SystemOneCPU()}, core.Config{Selector: sel, Tracer: rec})
	if err != nil {
		return nil, err
	}
	opt.Prefilter = mapper.PrefilterGateKeeper
	on, err := pOn.Map(reads, opt)
	if err != nil {
		return nil, err
	}

	m := rec.Metrics()
	row := PrefilterRow{
		Selector:      sel.Name(),
		Delta:         delta,
		Reads:         len(reads),
		Candidates:    m.Counters["candidates_total"],
		Rejected:      m.Counters["prefilter_rejected_total"],
		FalseAccepts:  m.Counters["prefilter_false_accepts_total"],
		SimSecondsOff: off.SimSeconds,
		SimSecondsOn:  on.SimSeconds,
	}
	if row.Candidates > 0 {
		row.FilteredFraction = float64(row.Rejected) / float64(row.Candidates)
	}
	if surv := row.Candidates - row.Rejected; surv > 0 {
		row.FalseAcceptRate = float64(row.FalseAccepts) / float64(surv)
	}
	if row.SimSecondsOn > 0 {
		row.Speedup = row.SimSecondsOff / row.SimSecondsOn
	}
	for i := range off.Mappings {
		if !sameReadMappings(off.Mappings[i], on.Mappings[i]) {
			row.FalseRejects++
		}
	}
	row.GateOK = eval.PrefilterGate(off.Mappings, on.Mappings) == nil
	if !row.GateOK {
		return nil, fmt.Errorf("bench: prefilter gate failed (%s, δ=%d): %v",
			sel.Name(), delta, eval.PrefilterGate(off.Mappings, on.Mappings))
	}
	return &row, nil
}

func sameReadMappings(a, b []mapper.Mapping) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Render prints the ablation table.
func (b *PrefilterBench) Render(w io.Writer) {
	fmt.Fprintf(w, "Pre-alignment filter ablation (%s scale, %d bp reads)\n", b.Scale, b.ReadLen)
	fmt.Fprintf(w, "%-9s %-3s %10s %10s %9s %9s %9s %6s %10s %10s %8s\n",
		"selector", "δ", "cands", "rejected", "frac", "f.acc", "f.accRate", "f.rej", "off", "on", "speedup")
	for _, r := range b.Rows {
		fmt.Fprintf(w, "%-9s %-3d %10d %10d %8.1f%% %9d %8.1f%% %6d %9.3fs %9.3fs %7.2fx\n",
			r.Selector, r.Delta, r.Candidates, r.Rejected, 100*r.FilteredFraction,
			r.FalseAccepts, 100*r.FalseAcceptRate, r.FalseRejects,
			r.SimSecondsOff, r.SimSecondsOn, r.Speedup)
	}
}

// WriteJSON writes the measurements as indented JSON (BENCH_prefilter.json).
func (b *PrefilterBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
