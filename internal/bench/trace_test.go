package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceDemoSmoke runs the instrumented System 1 demo and validates
// the exported artifacts: the Chrome trace must decode as a trace-event
// envelope with one named thread per device lane plus the host, spans
// must carry non-negative timestamps and durations, and the metrics
// snapshot must decode with the per-device gauges populated.
func TestTraceDemoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace demo in -short mode")
	}
	t.Setenv("REPUTE_CL_FAULTS", "")
	ds := tinyDS(t)
	d, err := RunTraceDemo(ds)
	if err != nil {
		t.Fatal(err)
	}

	var env struct {
		TraceEvents []struct {
			Name  string   `json:"name"`
			Phase string   `json:"ph"`
			TS    float64  `json:"ts"`
			Dur   *float64 `json:"dur"`
			TID   int      `json:"tid"`
			Args  map[string]any
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(d.ChromeJSON, &env); err != nil {
		t.Fatalf("Chrome trace does not decode: %v", err)
	}
	lanes := map[string]bool{}
	spans := 0
	for _, ev := range env.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				lanes[ev.Args["name"].(string)] = true
			}
		case "X":
			spans++
			if ev.TS < 0 || ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("span %q has ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
			}
		}
	}
	if spans == 0 {
		t.Fatal("no spans in the demo trace")
	}
	if !lanes["host"] {
		t.Errorf("host lane missing from thread metadata: %v", lanes)
	}
	devLanes := 0
	for l := range lanes {
		if l != "host" {
			devLanes++
		}
	}
	if devLanes != 3 {
		t.Errorf("System 1 trace has %d device lanes, want 3: %v", devLanes, lanes)
	}

	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(d.MetricsJSON, &snap); err != nil {
		t.Fatalf("metrics snapshot does not decode: %v", err)
	}
	var enqueues int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "enqueues_total/") {
			enqueues += v
		}
	}
	if enqueues == 0 || snap.Counters["candidates_total"] == 0 {
		t.Errorf("demo counters not populated: %+v", snap.Counters)
	}
	busyGauges := 0
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "device_busy_seconds/") {
			busyGauges++
		}
	}
	if busyGauges != 3 {
		t.Errorf("per-device busy gauges = %d, want 3 (gauges %v)", busyGauges, snap.Gauges)
	}

	var buf bytes.Buffer
	d.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "host") || !strings.Contains(out, "Chrome trace") {
		t.Errorf("render missing content:\n%s", out)
	}
}
