package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyDS builds a once-per-process dataset small enough for unit tests.
var tinyCache *Dataset

func tinyDS(t *testing.T) *Dataset {
	t.Helper()
	if tinyCache != nil {
		return tinyCache
	}
	sc := Scale{Name: "unit", RefLen: 120_000, ReadsPerSet: 150}
	ds, err := BuildDataset(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	tinyCache = ds
	return ds
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "full"} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestBuildDataset(t *testing.T) {
	ds := tinyDS(t)
	if len(ds.Ref) != 120_000 {
		t.Fatalf("ref length %d", len(ds.Ref))
	}
	for _, n := range []int{100, 150} {
		set, ok := ds.Sets[n]
		if !ok {
			t.Fatalf("missing %d-bp set", n)
		}
		if len(set.Reads) != 150 {
			t.Fatalf("%d-bp set has %d reads", n, len(set.Reads))
		}
		if len(set.Reads[0]) != n {
			t.Fatalf("%d-bp set read length %d", n, len(set.Reads[0]))
		}
	}
}

func TestMaxQFor(t *testing.T) {
	if q := maxQFor(1 << 30); q != 11 {
		t.Errorf("maxQFor(1G) = %d want 11", q)
	}
	if q := maxQFor(1000); q > 8 || q < 4 {
		t.Errorf("maxQFor(1000) = %d out of sane range", q)
	}
}

func TestComparisonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run in -short mode")
	}
	ds := tinyDS(t)
	suite := NewSuite(ds)
	cols := []Column{{100, 3}, {150, 5}}
	cmp, err := RunComparison("smoke", suite, SystemOneSpecs(false), cols, MetricAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 7 {
		t.Fatalf("rows = %v", cmp.Rows)
	}
	// Gold row is RazerS3: accuracy identically 100 under both metrics.
	for _, col := range cols {
		c, ok := cmp.Cell("RazerS3", col)
		if !ok || c.AccPct != 100 {
			t.Errorf("gold accuracy at %s = %+v", col, c)
		}
		if c.TimeS <= 0 {
			t.Errorf("gold time at %s = %v", col, c.TimeS)
		}
		// All-mappers high, best-mappers low under §III-A.
		for _, m := range []string{"Hobbes3", "REPUTE-cpu", "CORAL-cpu"} {
			c, _ := cmp.Cell(m, col)
			if c.AccPct < 98 {
				t.Errorf("%s accuracy %v < 98 at %s", m, c.AccPct, col)
			}
		}
		for _, m := range []string{"Yara", "GEM", "BWA-MEM"} {
			c, _ := cmp.Cell(m, col)
			if c.AccPct > 60 {
				t.Errorf("%s accuracy %v suspiciously high under all-locations", m, c.AccPct)
			}
		}
	}
	var buf bytes.Buffer
	cmp.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "REPUTE-cpu") || !strings.Contains(out, "T(s)") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestEnergySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("energy run in -short mode")
	}
	ds := tinyDS(t)
	suite := NewSuite(ds)
	specs := filterSpecs(SystemTwoSpecs(), "Hobbes3", "CORAL-HiKey")
	sec, err := RunEnergy("System 2", 3.5, suite, specs, []Column{{100, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range sec.Rows {
		cell := sec.Cells[i][0]
		if cell.EnergyJ <= 0 || cell.PowerW <= 3.5 || cell.TimeS <= 0 {
			t.Errorf("%s energy cell %+v not populated", row, cell)
		}
		if cell.PowerW > 20 {
			t.Errorf("%s wall power %v absurd for the SoC", row, cell.PowerW)
		}
	}
	var buf bytes.Buffer
	(&EnergyTable{Cols: []Column{{100, 3}}, Sections: []EnergySection{*sec}}).Render(&buf)
	if !strings.Contains(buf.String(), "P(W)") {
		t.Error("energy render missing header")
	}
}

func TestFilterSpecs(t *testing.T) {
	specs := SystemOneSpecs(true)
	got := filterSpecs(specs, "CORAL-cpu", "REPUTE-cpu")
	for _, s := range got {
		if s.Label == "CORAL-cpu" || s.Label == "REPUTE-cpu" {
			t.Errorf("filter kept %s", s.Label)
		}
	}
	if len(got) != len(specs)-2 {
		t.Errorf("filtered %d from %d", len(got), len(specs))
	}
}

func TestPaperDataConsistent(t *testing.T) {
	for _, pt := range []PaperComparison{PaperTable1, PaperTable2, PaperTable3} {
		for _, row := range pt.Rows {
			cells, ok := pt.Cells[row]
			if !ok {
				t.Errorf("%s: row %s missing cells", pt.Title, row)
				continue
			}
			if len(cells) != len(pt.Cols) {
				t.Errorf("%s: row %s has %d cells for %d cols",
					pt.Title, row, len(cells), len(pt.Cols))
			}
			for _, c := range cells {
				if c.TimeS <= 0 || c.AccPct <= 0 || c.AccPct > 100 {
					t.Errorf("%s: row %s implausible cell %+v", pt.Title, row, c)
				}
			}
		}
	}
	for sys, rows := range PaperTable4 {
		if _, ok := PaperIdle[sys]; !ok {
			t.Errorf("no idle power for %s", sys)
		}
		for row, cells := range rows {
			if len(cells) != len(EnergyColumns) {
				t.Errorf("%s/%s: %d energy cells", sys, row, len(cells))
			}
		}
	}
}

func TestCheckShapesHandlesNil(t *testing.T) {
	checks := CheckShapes(nil, nil, nil, nil, nil, nil)
	if len(checks) != 0 {
		t.Errorf("nil inputs produced %d checks", len(checks))
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run in -short mode")
	}
	ds := tinyDS(t)
	a, err := RunAblations(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Filtration) != 4 || len(a.Locate) != 3 || len(a.Verify) != 3 {
		t.Fatalf("ablation shape: %d/%d/%d", len(a.Filtration), len(a.Locate), len(a.Verify))
	}
	byName := map[string]FiltrationRow{}
	for _, r := range a.Filtration {
		if r.CandPerRead <= 0 || r.FMPerRead <= 0 {
			t.Errorf("%s: empty measurements %+v", r.Name, r)
		}
		byName[r.Name] = r
	}
	// Quality ladder: OSS <= REPUTE <= uniform candidates; REPUTE uses
	// less memory than OSS.
	if byName["oss-full"].CandPerRead > byName["repute-dp"].CandPerRead {
		t.Errorf("OSS (%v) worse than REPUTE (%v)",
			byName["oss-full"].CandPerRead, byName["repute-dp"].CandPerRead)
	}
	if byName["repute-dp"].CandPerRead > byName["uniform"].CandPerRead {
		t.Errorf("REPUTE (%v) worse than uniform (%v)",
			byName["repute-dp"].CandPerRead, byName["uniform"].CandPerRead)
	}
	if byName["repute-dp"].PeakMemBytes >= byName["oss-full"].PeakMemBytes {
		t.Errorf("REPUTE memory %d not below OSS %d",
			byName["repute-dp"].PeakMemBytes, byName["oss-full"].PeakMemBytes)
	}
	// Locate: sampling shrinks the index and costs locate time.
	if a.Locate[1].IndexBytes >= a.Locate[0].IndexBytes {
		t.Error("sampling did not shrink the index")
	}
	if a.Locate[2].SimSeconds < a.Locate[0].SimSeconds {
		t.Error("aggressive sampling did not cost locate time")
	}
	// Verification: the bit-vector must beat plain DP by a wide margin.
	if a.Verify[0].NsPerWin*3 > a.Verify[2].NsPerWin {
		t.Errorf("Myers (%v ns) not well below full DP (%v ns)",
			a.Verify[0].NsPerWin, a.Verify[2].NsPerWin)
	}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	ds := tinyDS(t)
	s, err := RunFig4(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 8 {
		t.Fatalf("fig4 points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.TimeS <= 0 {
			t.Errorf("point %s has no time", p.Label)
		}
	}
	var buf bytes.Buffer
	s.Render(&buf)
	if !strings.Contains(buf.String(), "Smin=12") {
		t.Error("fig4 render missing labels")
	}
}
