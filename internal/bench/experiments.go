package bench

import (
	"fmt"
	"io"

	"repro/internal/cl"
)

// filterSpecs drops specs whose label matches any of drop.
func filterSpecs(specs []Spec, drop ...string) []Spec {
	out := specs[:0:0]
	for _, s := range specs {
		skip := false
		for _, d := range drop {
			if s.Label == d {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, s)
		}
	}
	return out
}

// Table1 reproduces Table I: the homogeneous scenario — every mapper on
// System 1's CPU, accuracy per §III-A against the RazerS3 gold standard.
func Table1(ds *Dataset) (*Comparison, error) {
	suite := NewSuite(ds)
	return RunComparison(
		"Table I: mapping on the CPU (homogeneous scenario)",
		suite, SystemOneSpecs(false), PaperColumns, MetricAll)
}

// Table2 reproduces Table II: the heterogeneous scenario — baselines as
// before, CORAL/REPUTE split across CPU + 2 GPUs, accuracy per §III-B.
func Table2(ds *Dataset) (*Comparison, error) {
	suite := NewSuite(ds)
	specs := filterSpecs(SystemOneSpecs(true), "CORAL-cpu", "REPUTE-cpu")
	return RunComparison(
		"Table II: mapping on the CPU + 2 GPUs (heterogeneous scenario)",
		suite, specs, PaperColumns, MetricAnyBest)
}

// Table3 reproduces Table III: the embedded scenario on the HiKey970,
// with the four mappers that run there, accuracy per §III-B (§III-C
// adopts that methodology).
func Table3(ds *Dataset) (*Comparison, error) {
	suite := NewSuite(ds)
	return RunComparison(
		"Table III: mapping on the HiKey970 SoC (embedded scenario)",
		suite, SystemTwoSpecs(), PaperColumns, MetricAnyBest)
}

// Table4 reproduces Table IV: power and energy on both systems for the
// two §III-D configurations.
func Table4(ds *Dataset) (*EnergyTable, error) {
	t := &EnergyTable{Cols: EnergyColumns}
	sys1 := NewSuite(ds)
	specs1 := filterSpecs(SystemOneSpecs(true), "Yara", "BWA-MEM", "GEM")
	sec1, err := RunEnergy("System 1", cl.SystemOneIdleW, sys1, specs1, EnergyColumns)
	if err != nil {
		return nil, err
	}
	t.Sections = append(t.Sections, *sec1)
	sys2 := NewSuite(ds)
	sec2, err := RunEnergy("System 2", cl.SystemTwoIdleW, sys2, SystemTwoSpecs(), EnergyColumns)
	if err != nil {
		return nil, err
	}
	t.Sections = append(t.Sections, *sec2)
	return t, nil
}

// ShapeCheck is one qualitative claim of the paper checked against the
// measured results. EXPERIMENTS.md records these: the reproduction's goal
// is the shape (who wins, by what rough factor), not absolute seconds.
type ShapeCheck struct {
	Name   string
	Detail string
	Pass   bool
}

// CheckShapes evaluates the paper's headline claims on measured results.
// Any of t1..f4 may be nil; their checks are skipped.
func CheckShapes(t1, t2, t3 *Comparison, t4 *EnergyTable, f3, f4 *Series) []ShapeCheck {
	var checks []ShapeCheck
	add := func(name string, pass bool, detail string, args ...any) {
		checks = append(checks, ShapeCheck{Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	if t1 != nil {
		worst, best := 1e18, 0.0
		fasterCount := 0
		for _, col := range t1.Cols {
			r, _ := t1.Cell("REPUTE-cpu", col)
			y, _ := t1.Cell("Yara", col)
			if y.TimeS > 0 {
				sp := y.TimeS / r.TimeS
				if sp < worst {
					worst = sp
				}
				if sp > best {
					best = sp
				}
				if sp >= 0.95 {
					fasterCount++
				}
			}
		}
		// Yara's approximate-seed backtracking blows up at n=150, high δ
		// (the paper's 321 s cell behind the 13x headline); the factor is
		// scale-dependent, the ordering is not.
		y6, _ := t1.Cell("Yara", Column{150, 6})
		r6, _ := t1.Cell("REPUTE-cpu", Column{150, 6})
		y7, _ := t1.Cell("Yara", Column{150, 7})
		r7, _ := t1.Cell("REPUTE-cpu", Column{150, 7})
		add("T1: REPUTE-cpu beats Yara, decisively at n=150 high δ (paper: up to 13x)",
			fasterCount >= len(t1.Cols)-1 && y6.TimeS > r6.TimeS && y7.TimeS > r7.TimeS,
			"speedup range %.1fx..%.1fx, n150δ7 %.1fx", worst, best, y7.TimeS/r7.TimeS)

		rz := true
		for _, col := range t1.Cols {
			r, _ := t1.Cell("REPUTE-cpu", col)
			z, _ := t1.Cell("RazerS3", col)
			if r.TimeS >= z.TimeS {
				rz = false
			}
		}
		add("T1: REPUTE-cpu beats RazerS3 everywhere", rz, "")

		// The DP-vs-heuristic margin grows with reference scale (the
		// candidate savings scale with repeat multiplicity, the DP cost
		// does not); at reduced scale we require parity at the paper's
		// showcase cell and a majority of wins overall.
		rep, _ := t1.Cell("REPUTE-cpu", Column{150, 7})
		cor, _ := t1.Cell("CORAL-cpu", Column{150, 7})
		wins := 0
		for _, col := range t1.Cols {
			r, _ := t1.Cell("REPUTE-cpu", col)
			c, _ := t1.Cell("CORAL-cpu", col)
			if r.TimeS <= c.TimeS*1.02 {
				wins++
			}
		}
		add("T1: DP filtration matches/beats the CORAL heuristic (paper: 2x at n=150, δ=7)",
			rep.TimeS <= cor.TimeS*1.05 && wins >= 4,
			"REPUTE %.3fs vs CORAL %.3fs at n150δ7; parity-or-better in %d/%d configs",
			rep.TimeS, cor.TimeS, wins, len(t1.Cols))

		lowBest := true
		for _, m := range []string{"Yara", "GEM", "BWA-MEM"} {
			for _, col := range t1.Cols {
				c, ok := t1.Cell(m, col)
				if ok && c.AccPct > 60 {
					lowBest = false
				}
			}
		}
		add("T1: best-mappers score low under the all-locations metric (paper: 4-40%)",
			lowBest, "")

		hiAcc := true
		for _, m := range []string{"Hobbes3", "REPUTE-cpu", "CORAL-cpu"} {
			for _, col := range t1.Cols {
				c, _ := t1.Cell(m, col)
				if c.AccPct < 99 {
					hiAcc = false
				}
			}
		}
		add("T1: all-mappers stay above 99% accuracy", hiAcc, "")
	}

	if t2 != nil {
		recovered := true
		for _, m := range []string{"Yara", "GEM", "BWA-MEM"} {
			for _, col := range t2.Cols {
				c, ok := t2.Cell(m, col)
				if ok && c.AccPct < 80 {
					recovered = false
				}
			}
		}
		add("T2: best-mappers recover to 80-100% under any-best (paper: 89-100%)",
			recovered, "")
	}

	if t1 != nil && t2 != nil {
		faster, count := 0, 0
		var maxSp float64
		for _, col := range t1.Cols {
			cpu, _ := t1.Cell("REPUTE-cpu", col)
			all, ok := t2.Cell("REPUTE-all", col)
			if !ok {
				continue
			}
			count++
			if all.TimeS < cpu.TimeS {
				faster++
			}
			if sp := cpu.TimeS / all.TimeS; sp > maxSp {
				maxSp = sp
			}
		}
		add("T1/T2: adding GPUs speeds REPUTE up (paper: up to ~2x)",
			faster >= count/2 && maxSp > 1.2 && maxSp < 4,
			"faster in %d/%d configs, max speedup %.2fx", faster, count, maxSp)
	}

	if t1 != nil && t3 != nil {
		sane := true
		var worst float64
		for _, col := range t3.Cols {
			hik, _ := t3.Cell("REPUTE-HiKey", col)
			cpu, _ := t1.Cell("REPUTE-cpu", col)
			ratio := hik.TimeS / cpu.TimeS
			if ratio > worst {
				worst = ratio
			}
			if ratio < 1 || ratio > 10 {
				sane = false
			}
		}
		add("T3: embedded SoC is slower than the workstation but comparable (paper: ~2-4x)",
			sane, "worst slowdown %.1fx", worst)
	}

	if t3 != nil {
		wins := 0
		for _, col := range t3.Cols {
			rep, _ := t3.Cell("REPUTE-HiKey", col)
			rz, _ := t3.Cell("RazerS3", col)
			if rep.TimeS < rz.TimeS {
				wins++
			}
		}
		add("T3: REPUTE-HiKey beats RazerS3 on the SoC (paper: up to 4x)",
			wins == len(t3.Cols), "wins %d/%d", wins, len(t3.Cols))
	}

	if t4 != nil && len(t4.Sections) == 2 {
		sys1, sys2 := t4.Sections[0], t4.Sections[1]
		cellOf := func(sec EnergySection, row string, col int) (EnergyCell, bool) {
			for i, r := range sec.Rows {
				if r == row {
					return sec.Cells[i][col], true
				}
			}
			return EnergyCell{}, false
		}
		e1, ok1 := cellOf(sys1, "REPUTE-all", 1)
		e2, ok2 := cellOf(sys2, "REPUTE-HiKey", 1)
		ratio := 0.0
		if ok1 && ok2 && e2.EnergyJ > 0 {
			ratio = e1.EnergyJ / e2.EnergyJ
		}
		add("T4: embedded REPUTE saves an order of magnitude of energy (paper: ~12-27x)",
			ratio > 5, "System1/System2 energy ratio %.1fx", ratio)

		// The paper's margin over CORAL here is only ~4% (78.6 vs 82.1 J),
		// so require lowest-or-within-10% rather than a strict win.
		lowest := true
		for ci := range EnergyColumns {
			rep, _ := cellOf(sys2, "REPUTE-HiKey", ci)
			for _, row := range sys2.Rows {
				if row == "REPUTE-HiKey" {
					continue
				}
				other, _ := cellOf(sys2, row, ci)
				if other.EnergyJ*1.10 < rep.EnergyJ {
					lowest = false
				}
			}
		}
		add("T4: REPUTE has the lowest energy on the HiKey970 (paper margin ~4%)", lowest, "")
	}

	if f3 != nil && len(f3.Points) > 2 {
		minIdx := 0
		for i, p := range f3.Points {
			if p.TimeS < f3.Points[minIdx].TimeS {
				minIdx = i
			}
		}
		add("F3: offloading to GPUs improves on CPU-only (minimum not at zero offload)",
			minIdx > 0, "best point at %s reads/GPU", f3.Points[minIdx].Label)
	}

	if f4 != nil && len(f4.Points) > 2 {
		minIdx := 0
		for i, p := range f4.Points {
			if p.TimeS < f4.Points[minIdx].TimeS {
				minIdx = i
			}
		}
		interior := minIdx > 0 && minIdx < len(f4.Points)-1
		add("F4: Smin sweep is U-shaped (interior optimum, paper: rises again at 20)",
			interior, "best at %s", f4.Points[minIdx].Label)
	}

	return checks
}

// RenderChecks prints shape-check results.
func RenderChecks(w io.Writer, checks []ShapeCheck) {
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		if c.Detail != "" {
			fmt.Fprintf(w, "[%s] %s — %s\n", status, c.Name, c.Detail)
		} else {
			fmt.Fprintf(w, "[%s] %s\n", status, c.Name)
		}
	}
}
