package bench

// Serve load benchmark: M concurrent clients upload mapping jobs at a
// live in-process server (the same handler stack `repute serve` mounts)
// and measure end-to-end job latency — submit to done, polling included
// — plus saturation throughput. The sweep raises the client count past
// the scheduler's concurrency so the p99/p50 spread shows where
// queueing starts. BENCH_serve.json at the repository root is a
// committed run of it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cl"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/index"
	"repro/internal/serve"
)

// ServeRow is one client-concurrency level's measurements.
type ServeRow struct {
	// Clients is how many uploaders run at once; Jobs is the total they
	// completed.
	Clients int `json:"clients"`
	Jobs    int `json:"jobs"`
	// Retried429 counts submissions that bounced off admission control
	// and were retried after their Retry-After.
	Retried429 int `json:"retried_429"`
	// P50/P99 are job latency percentiles in seconds, submit to done.
	P50LatencySec float64 `json:"p50_latency_sec"`
	P99LatencySec float64 `json:"p99_latency_sec"`
	// WallSec is the level's total wall time; JobsPerSec and ReadsPerSec
	// are the resulting throughput.
	WallSec     float64 `json:"wall_sec"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	ReadsPerSec float64 `json:"reads_per_sec"`
}

// ServeBench is the full client-concurrency sweep.
type ServeBench struct {
	Scale         string     `json:"scale"`
	ReadsPerJob   int        `json:"reads_per_job"`
	PoolDevices   int        `json:"pool_devices"`
	MaxConcurrent int        `json:"max_concurrent"`
	Rows          []ServeRow `json:"rows"`
}

// serveBenchJobsPerClient is how many jobs each client submits in
// sequence — enough that a level's wall time is dominated by steady
// state, not the first job's cold start.
const serveBenchJobsPerClient = 3

// RunServeBench sweeps client concurrency against one in-process
// mapping service over the dataset's reference and short-read set.
func RunServeBench(ds *Dataset) (*ServeBench, error) {
	g, err := genome.New([]string{"chr21s"}, [][]byte{ds.Ref})
	if err != nil {
		return nil, err
	}
	f, err := index.Build(g, 1, 0, fmindex.Options{})
	if err != nil {
		return nil, err
	}
	set := ds.Sets[100]
	nReads := len(set.Reads)
	if nReads > 400 {
		nReads = 400 // per-job upload; the sweep varies clients, not job size
	}
	var fq bytes.Buffer
	for i, r := range set.Reads[:nReads] {
		seq := make([]byte, len(r))
		for j, c := range r {
			seq[j] = "ACGT"[c]
		}
		fmt.Fprintf(&fq, "@r%d\n%s\n+\n%s\n", i, seq, strings.Repeat("I", len(seq)))
	}
	body, contentType, err := multipartBody(fq.Bytes())
	if err != nil {
		return nil, err
	}

	const poolSize = 4
	b := &ServeBench{Scale: ds.Scale.Name, ReadsPerJob: nReads, PoolDevices: poolSize, MaxConcurrent: poolSize}
	for _, clients := range []int{1, 2, 4, 8} {
		row, err := runServeLevel(f, body, contentType, clients, poolSize, nReads)
		if err != nil {
			return nil, err
		}
		b.Rows = append(b.Rows, *row)
	}
	return b, nil
}

// runServeLevel runs one client-concurrency level against a fresh
// server (fresh spool, fresh breakers: levels do not contaminate each
// other).
func runServeLevel(f *index.File, body []byte, contentType string, clients, poolSize, nReads int) (*ServeRow, error) {
	devices := make([]*cl.Device, poolSize)
	for i := range devices {
		d := cl.SystemOneCPU()
		d.Name = fmt.Sprintf("bench-%d", i)
		devices[i] = d
	}
	spool, err := os.MkdirTemp("", "repute-servebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spool)
	srv, err := serve.New(serve.Config{
		Index:         f,
		Devices:       devices,
		Spool:         spool,
		MaxQueue:      2 * clients,
		MaxConcurrent: poolSize,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	row := &ServeRow{Clients: clients}
	var (
		mu   sync.Mutex
		lats []float64
		errs []error
		wg   sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < serveBenchJobsPerClient; k++ {
				t0 := time.Now()
				retries, err := runServeJob(ts.URL, body, contentType)
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else {
					lats = append(lats, time.Since(t0).Seconds())
					row.Retried429 += retries
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	row.WallSec = time.Since(start).Seconds()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	sort.Float64s(lats)
	row.Jobs = len(lats)
	row.P50LatencySec = percentile(lats, 50)
	row.P99LatencySec = percentile(lats, 99)
	if row.WallSec > 0 {
		row.JobsPerSec = float64(row.Jobs) / row.WallSec
		row.ReadsPerSec = float64(row.Jobs*nReads) / row.WallSec
	}
	return row, nil
}

// runServeJob submits one upload and polls it to completion, honouring
// Retry-After on 429. Returns how many times admission bounced it.
func runServeJob(url string, body []byte, contentType string) (retries int, err error) {
	var id string
	for {
		resp, err := http.Post(url+"/jobs", contentType, bytes.NewReader(body))
		if err != nil {
			return retries, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			retries++
			// The header is whole seconds; waiting it out at full length
			// would swamp the bench, so back off a bounded fraction.
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return retries, fmt.Errorf("servebench: submit: %d: %s", resp.StatusCode, b)
		}
		var job struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			return retries, err
		}
		id = job.ID
		break
	}
	for {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			return retries, err
		}
		var job struct {
			State string          `json:"state"`
			Error json.RawMessage `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			return retries, err
		}
		switch job.State {
		case "done":
			return retries, nil
		case "failed":
			return retries, fmt.Errorf("servebench: job %s failed: %s", id, job.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// multipartBody wraps a FASTQ payload as the multipart form the submit
// endpoint expects, returning the body and its content type.
func multipartBody(fastq []byte) ([]byte, string, error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("reads", "reads.fq")
	if err != nil {
		return nil, "", err
	}
	if _, err := fw.Write(fastq); err != nil {
		return nil, "", err
	}
	if err := mw.Close(); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), mw.FormDataContentType(), nil
}

// percentile returns the pth percentile of sorted values
// (nearest-rank).
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// Render prints the sweep table.
func (b *ServeBench) Render(w io.Writer) {
	fmt.Fprintf(w, "Serve load sweep (%s scale, %d reads/job, %d-device pool, max %d concurrent jobs)\n",
		b.Scale, b.ReadsPerJob, b.PoolDevices, b.MaxConcurrent)
	fmt.Fprintf(w, "%8s %6s %8s %10s %10s %9s %10s %12s\n",
		"clients", "jobs", "429s", "p50", "p99", "wall", "jobs/s", "reads/s")
	for _, r := range b.Rows {
		fmt.Fprintf(w, "%8d %6d %8d %8.1fms %8.1fms %8.2fs %10.1f %12.0f\n",
			r.Clients, r.Jobs, r.Retried429, r.P50LatencySec*1e3, r.P99LatencySec*1e3,
			r.WallSec, r.JobsPerSec, r.ReadsPerSec)
	}
}

// WriteJSON writes the measurements as indented JSON (BENCH_serve.json).
func (b *ServeBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
