package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mapper"
)

// Fault sweep: the robustness experiment the paper's hardware section
// implies but never runs. Each scenario scripts one failure class from
// real OpenCL deployments — transient launch failures, allocation
// pressure, thermal throttling, outright device loss, a device too slow
// for its share — against a two-device split, and checks that the
// recovered run reports mappings identical to a fault-free run. Only the
// accounting (retries, halved batches, migrated reads, simulated time
// and energy) is allowed to differ.

// FaultRow is one scenario's outcome.
type FaultRow struct {
	Scenario        string
	MappedReads     int
	Identical       bool // mappings equal to the fault-free run's
	Retries         int
	DegradedBatches int
	FailoverReads   int
	DeadlineReads   int
	FailedDevices   []string
	SimSeconds      float64
	EnergyJ         float64
}

// FaultSweep is the full scenario table.
type FaultSweep struct {
	Reads int
	Rows  []FaultRow
}

// RunFaultSweep executes the sweep on the dataset's 100 bp read set.
func RunFaultSweep(ds *Dataset) (*FaultSweep, error) {
	// The devices' MaxAlloc is clamped to the index footprint and the
	// output slots sized so every device share spans several batches —
	// faults are schedule-based, and without multiple enqueues and
	// allocations per device there are no ordinals to hit.
	probe, err := core.New(ds.Ref, []*cl.Device{cl.SystemOneCPU()}, core.Config{})
	if err != nil {
		return nil, err
	}
	ixBytes := probe.Index().SizeBytes()
	maxLoc := int(ixBytes / 128) // => ~16-read batches on clamped devices
	mkDevs := func() []*cl.Device {
		a := cl.SystemOneCPU()
		a.Name = "cpu-0"
		a.MaxAlloc = ixBytes
		b := cl.SystemOneCPU()
		b.Name = "cpu-1"
		b.MaxAlloc = ixBytes
		return []*cl.Device{a, b}
	}
	reads := ds.Sets[100].Reads
	if len(reads) > 96 {
		reads = reads[:96] // 3 batches per device under the 50/50 split
	}
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baseline, err := probe.Map(reads, opt)
	if err != nil {
		return nil, err
	}

	scenarios := []struct {
		name      string
		planA     *cl.FaultPlan // armed on cpu-0
		planB     *cl.FaultPlan // armed on cpu-1
		deadlines []float64
	}{
		{name: "fault-free"},
		{
			name:  "transient launch faults",
			planA: &cl.FaultPlan{FailEnqueues: map[int]cl.Code{2: cl.OutOfResources}},
			planB: &cl.FaultPlan{FailEnqueues: map[int]cl.Code{1: cl.OutOfResources, 3: cl.OutOfResources}},
		},
		{
			name:  "allocation pressure",
			planA: &cl.FaultPlan{FailAllocs: map[int]cl.Code{4: cl.MemObjectAllocationFailure}},
		},
		{
			name:  "thermal throttle",
			planA: &cl.FaultPlan{Throttles: []cl.Throttle{{From: 2, To: 4, Factor: 0.5}}},
		},
		{
			name:  "device loss mid-run",
			planB: &cl.FaultPlan{FailEnqueues: map[int]cl.Code{2: cl.DeviceNotAvailable}},
		},
		{
			name:      "deadline migration",
			deadlines: []float64{1e-12, 0},
		},
		{
			name:  "compound (loss + transients)",
			planA: &cl.FaultPlan{FailEnqueues: map[int]cl.Code{2: cl.OutOfResources}, FailAllocs: map[int]cl.Code{4: cl.MemObjectAllocationFailure}},
			planB: &cl.FaultPlan{FailEnqueues: map[int]cl.Code{3: cl.DeviceNotAvailable}},
		},
	}

	out := &FaultSweep{Reads: len(reads)}
	for _, sc := range scenarios {
		devs := mkDevs()
		devs[0].InstallFaults(sc.planA)
		devs[1].InstallFaults(sc.planB)
		p, err := core.NewFromIndex(probe.Index(), devs, core.Config{
			Split: []float64{0.5, 0.5}, Deadlines: sc.deadlines,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fault sweep %q: %w", sc.name, err)
		}
		res, err := p.Map(reads, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: fault sweep %q: %w", sc.name, err)
		}
		same, _ := eval.IdenticalMappings(baseline.Mappings, res.Mappings)
		out.Rows = append(out.Rows, FaultRow{
			Scenario:        sc.name,
			MappedReads:     res.MappedReads(),
			Identical:       same,
			Retries:         res.Faults.Retries,
			DegradedBatches: res.Faults.DegradedBatches,
			FailoverReads:   res.Faults.FailoverReads,
			DeadlineReads:   res.Faults.DeadlineReads,
			FailedDevices:   res.Faults.FailedDevices,
			SimSeconds:      res.SimSeconds,
			EnergyJ:         res.EnergyJ,
		})
	}
	return out, nil
}

// Render prints the sweep table.
func (s *FaultSweep) Render(w io.Writer) {
	fmt.Fprintf(w, "Fault sweep: recovery under injected faults (%d reads, 2-device split)\n", s.Reads)
	fmt.Fprintf(w, "  %-26s %7s %9s %7s %7s %8s %8s %10s %10s  %s\n",
		"scenario", "mapped", "identical", "retries", "halved", "failover", "deadline", "T(sim s)", "E(J)", "lost devices")
	for _, r := range s.Rows {
		lost := "-"
		if len(r.FailedDevices) > 0 {
			lost = strings.Join(r.FailedDevices, ",")
		}
		fmt.Fprintf(w, "  %-26s %7d %9v %7d %7d %8d %8d %10.5f %10.3f  %s\n",
			r.Scenario, r.MappedReads, r.Identical, r.Retries, r.DegradedBatches,
			r.FailoverReads, r.DeadlineReads, r.SimSeconds, r.EnergyJ, lost)
	}
}
