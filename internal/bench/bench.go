// Package bench is the experiment harness: it rebuilds every table and
// figure of the paper's evaluation section on synthetic workloads at a
// configurable scale, using the simulated OpenCL platforms from
// internal/cl. cmd/experiments is its CLI; bench_test.go at the module
// root exposes each experiment as a Go benchmark.
package bench

import (
	"fmt"

	"repro/internal/simulate"
)

// Scale sets the workload size. The paper maps 1M reads per set against
// chromosome 21 (46.7 Mbp); the default scales keep laptop runtimes while
// preserving the k-mer frequency regime via the repeat generator.
type Scale struct {
	Name        string
	RefLen      int
	ReadsPerSet int
}

// Predefined scales.
var (
	// Tiny is for unit tests and Go benchmarks.
	Tiny = Scale{Name: "tiny", RefLen: 200_000, ReadsPerSet: 400}
	// Small is the cmd/experiments default.
	Small = Scale{Name: "small", RefLen: 1_000_000, ReadsPerSet: 2000}
	// Medium gives smoother accuracy percentages.
	Medium = Scale{Name: "medium", RefLen: 4_000_000, ReadsPerSet: 10_000}
	// Full is the paper's nominal workload (hours of runtime).
	Full = Scale{Name: "full", RefLen: 46_709_983, ReadsPerSet: 1_000_000}
)

// ScaleByName resolves a -scale flag value: a predefined name, or a
// custom "REFLEN:READS" pair (e.g. "4000000:3500").
func ScaleByName(name string) (Scale, error) {
	for _, s := range []Scale{Tiny, Small, Medium, Full} {
		if s.Name == name {
			return s, nil
		}
	}
	var refLen, reads int
	if n, err := fmt.Sscanf(name, "%d:%d", &refLen, &reads); n == 2 && err == nil && refLen > 0 && reads > 0 {
		return Scale{Name: name, RefLen: refLen, ReadsPerSet: reads}, nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (tiny, small, medium, full, or REFLEN:READS)", name)
}

// Dataset is a generated reference plus the two read sets.
type Dataset struct {
	Scale Scale
	Ref   []byte
	// Sets is keyed by read length (100 for the ERR012100 stand-in,
	// 150 for SRR826460).
	Sets map[int]simulate.ReadSet
}

// BuildDataset generates the chr21-like reference and both read sets.
func BuildDataset(sc Scale, seed int64) (*Dataset, error) {
	ref := simulate.Reference(simulate.Chr21Like(sc.RefLen, seed))
	ds := &Dataset{Scale: sc, Ref: ref, Sets: map[int]simulate.ReadSet{}}
	for _, prof := range []simulate.ReadProfile{simulate.ERR012100, simulate.SRR826460} {
		set, err := simulate.Reads(ref, sc.ReadsPerSet, prof, seed+int64(prof.Length))
		if err != nil {
			return nil, err
		}
		ds.Sets[prof.Length] = set
	}
	return ds, nil
}

// Column is one (read length, error budget) experiment configuration.
type Column struct {
	ReadLen, Errors int
}

func (c Column) String() string { return fmt.Sprintf("n=%d δ=%d", c.ReadLen, c.Errors) }

// PaperColumns are the six configurations of Tables I-III.
var PaperColumns = []Column{
	{100, 3}, {100, 4}, {100, 5},
	{150, 5}, {150, 6}, {150, 7},
}

// EnergyColumns are the two configurations of Table IV.
var EnergyColumns = []Column{{100, 3}, {150, 5}}
