package bench

import (
	"encoding/json"
	"io"
)

// jsonReport mirrors Report with stable, exported field names for
// machine consumption (CI trend tracking, plotting).
type jsonReport struct {
	Scale   string           `json:"scale"`
	RefLen  int              `json:"ref_len"`
	Reads   int              `json:"reads_per_set"`
	Seed    int64            `json:"seed"`
	Tables  []jsonComparison `json:"tables"`
	Energy  *jsonEnergy      `json:"energy,omitempty"`
	Figures []jsonSeries     `json:"figures"`
	Checks  []jsonCheck      `json:"shape_checks"`
}

type jsonComparison struct {
	Title  string     `json:"title"`
	Metric string     `json:"metric"`
	Cols   []string   `json:"columns"`
	Rows   []string   `json:"rows"`
	Cells  [][]CellTA `json:"cells"`
}

type jsonEnergy struct {
	Cols     []string            `json:"columns"`
	Sections []jsonEnergySection `json:"sections"`
}

type jsonEnergySection struct {
	System string         `json:"system"`
	IdleW  float64        `json:"idle_watts"`
	Rows   []string       `json:"rows"`
	Cells  [][]EnergyCell `json:"cells"`
}

type jsonSeries struct {
	Title  string        `json:"title"`
	XLabel string        `json:"x_label"`
	Points []SeriesPoint `json:"points"`
}

type jsonCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// WriteJSON emits the full report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		Scale:  r.Scale.Name,
		RefLen: r.Scale.RefLen,
		Reads:  r.Scale.ReadsPerSet,
		Seed:   r.Seed,
	}
	colNames := func(cols []Column) []string {
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = c.String()
		}
		return names
	}
	for _, cmp := range []*Comparison{r.T1, r.T2, r.T3} {
		if cmp == nil {
			continue
		}
		out.Tables = append(out.Tables, jsonComparison{
			Title:  cmp.Title,
			Metric: cmp.Metric.String(),
			Cols:   colNames(cmp.Cols),
			Rows:   cmp.Rows,
			Cells:  cmp.Cells,
		})
	}
	if r.T4 != nil {
		je := &jsonEnergy{Cols: colNames(r.T4.Cols)}
		for _, sec := range r.T4.Sections {
			je.Sections = append(je.Sections, jsonEnergySection{
				System: sec.System, IdleW: sec.IdleW, Rows: sec.Rows, Cells: sec.Cells,
			})
		}
		out.Energy = je
	}
	for _, s := range []*Series{r.F3, r.F4} {
		if s == nil {
			continue
		}
		out.Figures = append(out.Figures, jsonSeries{Title: s.Title, XLabel: s.XLabel, Points: s.Points})
	}
	for _, c := range CheckShapes(r.T1, r.T2, r.T3, r.T4, r.F3, r.F4) {
		out.Checks = append(out.Checks, jsonCheck{Name: c.Name, Pass: c.Pass, Detail: c.Detail})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
