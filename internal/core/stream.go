package core

// Streaming ingest: MapStream runs the existing fault-tolerant Map
// machinery over a stream of fixed-size read batches, so host memory is
// O(batch) instead of O(reads) — the bounded-memory view of read mapping
// GRIM-Filter-style batch processing motivates and embedded targets
// (HiKey970-class SoCs, read sets larger than RAM) require. A producer
// goroutine parses the next batch while the devices map the current one;
// the bounded channel between them is the backpressure that keeps the
// producer from racing ahead of the mappers. DESIGN.md §11.

import (
	"context"
	"errors"

	"repro/internal/fastx"
	"repro/internal/mapper"
	"repro/internal/trace"
)

// Stop is the sentinel an emit callback returns to end a MapStream run
// cleanly at a batch boundary — the graceful-shutdown path (SIGINT after
// a final checkpoint). MapStream stops consuming, cancels the producer,
// and returns the results aggregated so far together with Stop.
var Stop = errors.New("core: map stream stopped")

// StreamToken records the ingest-side state at the moment a batch was
// cut from the input. It is everything a checkpoint needs to reopen the
// input and continue producing bit-identical batches: the byte offset of
// the first unconsumed record, the line number (for error messages that
// stay correct across a resume), the cumulative ambiguous-base draw
// count (fastx.Codec), and the cumulative lenient-parse skip tallies.
type StreamToken struct {
	Offset   int64
	Line     int
	RNGDraws uint64
	Skipped  fastx.SkipStats
}

// StreamBatch is one unit of streamed mapping work.
type StreamBatch struct {
	// Index is the 0-based batch ordinal within this MapStream call.
	Index int
	// Start is the global read index of the batch's first read (offset
	// by the resume point when continuing a checkpointed run).
	Start int
	// Names are the read names, parallel to Reads (SAM output needs them).
	Names []string
	// Reads are the base-code sequences to map.
	Reads [][]byte
	// Token is the ingest state captured when the batch was cut.
	Token StreamToken
}

// StreamResult aggregates a MapStream run. The embedded Result carries
// the cumulative timing, energy, cost and fault accounting but a nil
// Mappings slice — per-read mappings are handed to the emit callback
// batch by batch and never accumulated, which is the point of streaming.
type StreamResult struct {
	mapper.Result
	// Reads, Mapped and Locations are the per-read tallies Result's
	// Mappings-derived accessors would normally provide.
	Reads     int
	Mapped    int
	Locations int
	// Batches counts the batches mapped.
	Batches int
}

// streamAhead bounds how many parsed batches may wait for the mappers;
// with capacity 1 the producer parses exactly one batch ahead.
const streamAhead = 1

// MapStream consumes batches from src until src returns an empty batch
// or an error, mapping each through Map and handing the batch plus its
// per-batch result to emit, in input order. src runs in its own
// goroutine, at most streamAhead batches ahead of the mappers.
//
// ctx bounds the whole run: when it is cancelled (a per-job deadline, a
// caller tearing the stream down mid-Map), MapStream stops before the
// next batch and returns ctx.Err() with the aggregate so far. The
// producer goroutine is cancelled on every exit path — emit errors and
// context cancellation included — never left blocked on the batch
// channel; TestMapStreamProducerExits pins this with goroutine-count
// assertions under -race.
//
// emit is called after the batch's mappings are complete; returning an
// error stops the run (the sentinel Stop marks a deliberate graceful
// stop and is returned as-is). emit may be nil when only the aggregate
// matters.
//
// Because each batch runs through the same Map call an in-memory run
// would use — same kernels, same fault recovery, same trace timeline via
// the pipeline's trace origin — a streamed run's mappings, metrics and
// simulated totals are bit-identical to mapping the same batches from
// memory (asserted by TestMapStreamMatchesInMemory).
func (p *Pipeline) MapStream(ctx context.Context, src func() (StreamBatch, error), opt mapper.Options, emit func(StreamBatch, *mapper.Result) error) (*StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type produced struct {
		b   StreamBatch
		err error
	}
	ch := make(chan produced, streamAhead)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(ch)
		for {
			b, err := src()
			select {
			case ch <- produced{b, err}:
			case <-done:
				return
			case <-ctx.Done():
				return
			}
			if err != nil || len(b.Reads) == 0 {
				return
			}
			// A parsed batch may have been handed over at the same moment
			// cancellation landed (select picks ready cases at random);
			// re-checking here keeps the producer from parsing ahead of a
			// consumer that will never drain the channel.
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			default:
			}
		}
	}()

	sr := &StreamResult{Result: mapper.Result{DeviceSeconds: map[string]float64{}}}
	for pr := range ch {
		if err := ctx.Err(); err != nil {
			return sr, err
		}
		if pr.err != nil {
			return sr, pr.err
		}
		b := pr.b
		// The token's skip tallies are cumulative, so the latest batch —
		// including the final empty one — carries the stream's total.
		sr.Faults.SkippedRecords = b.Token.Skipped.Records
		sr.Faults.SkipReasons = b.Token.Skipped.Clone().Reasons
		if len(b.Reads) == 0 {
			break
		}
		res, err := p.Map(b.Reads, opt)
		if err != nil {
			return sr, err
		}
		sr.Batches++
		sr.Reads += len(b.Reads)
		for _, ms := range res.Mappings {
			if len(ms) > 0 {
				sr.Mapped++
			}
			sr.Locations += len(ms)
		}
		sr.SimSeconds += res.SimSeconds
		sr.EnergyJ += res.EnergyJ
		for dev, sec := range res.DeviceSeconds {
			sr.DeviceSeconds[dev] += sec
		}
		sr.Cost.Add(res.Cost)
		skipped, reasons := sr.Faults.SkippedRecords, sr.Faults.SkipReasons
		sr.Faults.Add(res.Faults)
		sr.Faults.SkippedRecords, sr.Faults.SkipReasons = skipped, reasons
		if t := p.tracer; t != nil {
			t.Instant("host", "stream-batch",
				trace.I64("batch", int64(b.Index)),
				trace.I64("start", int64(b.Start)),
				trace.I64("reads", int64(len(b.Reads))))
		}
		if emit != nil {
			if err := emit(b, res); err != nil {
				return sr, err
			}
		}
	}
	// The producer exits (closing ch) on cancellation as well as on EOF;
	// a run that ended because ctx fired must report the cancellation even
	// when the consumer never saw another batch.
	if err := ctx.Err(); err != nil {
		return sr, err
	}
	return sr, nil
}

// NewScanSource adapts a fastx.Scanner plus Codec into a MapStream
// source cutting batches of batchSize reads. startRead seats the batches
// on the global read axis (the resume point of a checkpointed run). In
// lenient mode, records that parse but are too short to map — length at
// most maxErrors, which ValidateReads would reject — are skipped and
// tallied as short-read; in strict mode they flow through and fail the
// run the way an in-memory load would.
func NewScanSource(sc *fastx.Scanner, codec *fastx.Codec, batchSize int, lenient bool, maxErrors, startRead int) func() (StreamBatch, error) {
	index, next := 0, startRead
	return func() (StreamBatch, error) {
		b := StreamBatch{Index: index, Start: next}
		for len(b.Reads) < batchSize && sc.Scan() {
			rec := sc.Record()
			codes := codec.Codes(rec)
			if lenient && len(codes) <= maxErrors {
				sc.CountSkip(fastx.ReasonShortRead)
				continue
			}
			b.Names = append(b.Names, rec.Name)
			b.Reads = append(b.Reads, codes)
		}
		if err := sc.Err(); err != nil {
			return b, err
		}
		b.Token = StreamToken{
			Offset:   sc.Offset(),
			Line:     sc.Line(),
			RNGDraws: codec.Draws(),
			Skipped:  sc.Skipped(),
		}
		index++
		next += len(b.Reads)
		return b, nil
	}
}
