package core

import (
	"strings"
	"testing"

	"repro/internal/cl"
	"repro/internal/eval"
	"repro/internal/mapper"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// prefilterOpt returns the option pair (off, gatekeeper) for one test
// scenario. MinSeedLen is forced low so the random reference produces
// spurious candidate locations for the filter to reject — at the default
// Smin a 60 kb random genome yields almost no false seeds and the filter
// has nothing to do.
func prefilterOpt(maxErr, maxLoc int) (off, on mapper.Options) {
	off = mapper.Options{
		MaxErrors: maxErr, MaxLocations: maxLoc, MinSeedLen: 8,
		Prefilter: mapper.PrefilterOff,
	}
	on = off
	on.Prefilter = mapper.PrefilterGateKeeper
	return off, on
}

// TestPrefilterEquivalenceSingleDevice is the accuracy-regression gate at
// pipeline level: with the GateKeeper-style pre-alignment filter enabled
// the mapper must produce mappings byte-identical to the unfiltered run,
// in both host execution modes.
func TestPrefilterEquivalenceSingleDevice(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 60_000, 120, simulate.ERR012100)
	offOpt, onOpt := prefilterOpt(3, 100)

	for _, mode := range []cl.ExecMode{cl.Serial, cl.Parallel} {
		pOff, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: mode})
		if err != nil {
			t.Fatal(err)
		}
		off, err := pOff.Map(set.Reads, offOpt)
		if err != nil {
			t.Fatal(err)
		}
		pOn, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: mode})
		if err != nil {
			t.Fatal(err)
		}
		on, err := pOn.Map(set.Reads, onOpt)
		if err != nil {
			t.Fatal(err)
		}
		sameMappings(t, off.Mappings, on.Mappings)
		if err := eval.PrefilterGate(off.Mappings, on.Mappings); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
		if on.SimSeconds <= 0 || on.EnergyJ <= 0 {
			t.Errorf("mode %v: accounting empty: %v s, %v J", mode, on.SimSeconds, on.EnergyJ)
		}
	}
}

// TestPrefilterMetricsAndSpans checks the observability contract: a
// filtered run surfaces the prefilter counters and the per-kernel time
// split through the trace-derived metrics registry, and the rejected
// fraction is a real number in (0, 1].
func TestPrefilterMetricsAndSpans(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 60_000, 120, simulate.ERR012100)
	_, onOpt := prefilterOpt(3, 100)

	rec := trace.NewRecorder()
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Map(set.Reads, onOpt); err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	m := rec.Metrics()
	rejected, ok := m.Counters["prefilter_rejected_total"]
	if !ok {
		t.Fatal("prefilter_rejected_total missing from filtered run")
	}
	if rejected <= 0 {
		t.Errorf("prefilter_rejected_total = %d, want > 0 (MinSeedLen=8 must produce junk candidates)", rejected)
	}
	if _, ok := m.Counters["prefilter_false_accepts_total"]; !ok {
		t.Error("prefilter_false_accepts_total missing from filtered run")
	}
	frac, ok := m.Gauges["prefilter_filtered_fraction"]
	if !ok || frac <= 0 || frac > 1 {
		t.Errorf("prefilter_filtered_fraction = %g (present=%t), want in (0,1]", frac, ok)
	}
	var preSec, verSec float64
	for k, v := range m.Gauges {
		switch {
		case strings.HasPrefix(k, "kernel_seconds/") && strings.HasSuffix(k, "-prefilter"):
			preSec += v
		case strings.HasPrefix(k, "kernel_seconds/") && strings.HasSuffix(k, "-verify"):
			verSec += v
		}
	}
	if preSec <= 0 || verSec <= 0 {
		t.Errorf("per-kernel time split missing: prefilter=%g verify=%g", preSec, verSec)
	}

	// The unfiltered pipeline must not leak any prefilter metric.
	rec2 := trace.NewRecorder()
	p2, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial, Tracer: rec2})
	if err != nil {
		t.Fatal(err)
	}
	offOpt, _ := prefilterOpt(3, 100)
	if _, err := p2.Map(set.Reads, offOpt); err != nil {
		t.Fatal(err)
	}
	m2 := rec2.Metrics()
	if _, ok := m2.Counters["prefilter_rejected_total"]; ok {
		t.Error("prefilter_rejected_total present in unfiltered run")
	}
	if _, ok := m2.Gauges["prefilter_filtered_fraction"]; ok {
		t.Error("prefilter_filtered_fraction present in unfiltered run")
	}
}

// TestPrefilterEquivalenceSharded runs the gate across the second
// dispatch geometry: a sharded reference over multiple devices, where the
// filter must compose with shard-overlap ownership filtering.
func TestPrefilterEquivalenceSharded(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 60_000, 100, simulate.ERR012100)
	offOpt, onOpt := prefilterOpt(3, 100)

	run := func(opt mapper.Options) [][]mapper.Mapping {
		t.Helper()
		p, err := NewSharded(makeShards(ref, 3, 256, 0), 256, cl.SystemOne().Devices, Config{Exec: cl.Serial})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mappings
	}
	off, on := run(offOpt), run(onOpt)
	sameMappings(t, off, on)
	if err := eval.PrefilterGate(off, on); err != nil {
		t.Error(err)
	}
}

// TestPrefilterEquivalenceUnderFaults arms a fault plan (transient launch
// failure, allocation failure forcing a batch halving, permanent device
// loss) against the filtered pipeline: recovery replays and resliced
// candidate slots must not change what anything maps to.
func TestPrefilterEquivalenceUnderFaults(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 120)
	offOpt, onOpt := prefilterOpt(3, maxLoc)

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, offOpt)
	if err != nil {
		t.Fatal(err)
	}

	devs := mkDevs()
	devs[0].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{2: cl.OutOfResources},
		FailAllocs:   map[int]cl.Code{4: cl.MemObjectAllocationFailure},
	})
	devs[1].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{3: cl.DeviceNotAvailable},
	})
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, onOpt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, baseline.Mappings, res.Mappings)
	if err := eval.PrefilterGate(baseline.Mappings, res.Mappings); err != nil {
		t.Error(err)
	}
	if !res.Faults.Any() {
		t.Error("fault plan armed but no recovery accounted")
	}
}

// TestPrefilterUnknownValueRejected pins option validation: an
// unrecognised filter name is an error before any mapping work starts.
func TestPrefilterUnknownValueRejected(t *testing.T) {
	ref, set := testWorld(t, 20_000, 4, simulate.ERR012100)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Map(set.Reads, mapper.Options{MaxErrors: 2, MaxLocations: 10, Prefilter: "grim"})
	if err == nil || !strings.Contains(err.Error(), "prefilter") {
		t.Fatalf("unknown prefilter accepted: err=%v", err)
	}
}
