package core

import (
	"fmt"

	"repro/internal/mapper"
)

// MapPairs maps a paired-end read set: both mates run through the normal
// single-end pipeline (so the multi-device split applies unchanged), then
// the per-mate locations are combined into concordant FR pairs within the
// insert band. Fragments with no concordant pair keep their single-end
// mappings in Single1/Single2, as real mappers report discordant mates.
//
// Pairing also rescues ambiguity: a mate that multi-maps inside a repeat
// is pinned by its uniquely-mapping partner — see examples/pairedend.
func (p *Pipeline) MapPairs(reads1, reads2 [][]byte, opt mapper.PairOptions) (*mapper.PairResult, error) {
	if len(reads1) != len(reads2) {
		return nil, fmt.Errorf("core: %d first mates vs %d second mates", len(reads1), len(reads2))
	}
	opt = opt.WithDefaults()
	res1, err := p.Map(reads1, opt.Options)
	if err != nil {
		return nil, fmt.Errorf("core: mate 1: %w", err)
	}
	res2, err := p.Map(reads2, opt.Options)
	if err != nil {
		return nil, fmt.Errorf("core: mate 2: %w", err)
	}

	out := &mapper.PairResult{
		Pairs:   make([][]mapper.Pair, len(reads1)),
		Single1: res1.Mappings,
		Single2: res2.Mappings,
		// The two mate batches run back to back on the same devices.
		SimSeconds: res1.SimSeconds + res2.SimSeconds,
		EnergyJ:    res1.EnergyJ + res2.EnergyJ,
	}
	out.Cost = res1.Cost
	out.Cost.Add(res2.Cost)
	out.Faults = res1.Faults
	out.Faults.Add(res2.Faults)
	for i := range reads1 {
		out.Pairs[i] = mapper.PairUp(
			res1.Mappings[i], res2.Mappings[i],
			len(reads1[i]), len(reads2[i]),
			opt.MinInsert, opt.MaxInsert, opt.MaxPairs)
	}
	return out, nil
}
