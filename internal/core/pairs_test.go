package core

import (
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func TestMapPairsFindsConcordantOrigins(t *testing.T) {
	ref := simulate.Reference(simulate.Chr21Like(80_000, 31))
	set, err := simulate.PairedReads(ref, 100, simulate.ERR012100, 400, 35, 32)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.PairOptions{
		Options:   mapper.Options{MaxErrors: 5, MaxLocations: 100},
		MinInsert: 200, MaxInsert: 700,
	}
	res, err := p.MapPairs(set.Reads1, set.Reads2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimSeconds <= 0 || res.EnergyJ <= 0 || res.Cost.Items == 0 {
		t.Errorf("accounting empty: %+v", res.Cost)
	}
	found, eligible := 0, 0
	for i, o := range set.Origins {
		if int(o.Edits1) > opt.MaxErrors || int(o.Edits2) > opt.MaxErrors {
			continue
		}
		eligible++
		ok := false
		for _, pr := range res.Pairs[i] {
			d1 := abs32(pr.First.Pos - o.Pos1)
			d2 := abs32(pr.Second.Pos - o.Pos2)
			if pr.First.Strand == o.Strand1 && pr.Second.Strand == o.Strand2 &&
				d1 <= int32(opt.MaxErrors) && d2 <= int32(opt.MaxErrors) {
				ok = true
				break
			}
		}
		if ok {
			found++
		}
	}
	if eligible < 80 {
		t.Fatalf("only %d eligible fragments", eligible)
	}
	if found < eligible*98/100 {
		t.Fatalf("concordant recovery %d/%d below 98%%", found, eligible)
	}
	// Every reported pair respects the insert band.
	for i, prs := range res.Pairs {
		for _, pr := range prs {
			if pr.Insert < opt.MinInsert || pr.Insert > opt.MaxInsert {
				t.Fatalf("fragment %d: insert %d outside band", i, pr.Insert)
			}
		}
	}
}

func TestMapPairsRescue(t *testing.T) {
	// A mate inside a high-copy repeat multi-maps; pairing with its
	// unique partner must pin a single concordant location.
	ref := simulate.Reference(simulate.Chr21Like(80_000, 33))
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := simulate.PairedReads(ref, 200, simulate.ERR012100, 400, 35, 34)
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.PairOptions{
		Options:   mapper.Options{MaxErrors: 4, MaxLocations: 200},
		MinInsert: 200, MaxInsert: 700,
	}
	res, err := p.MapPairs(set.Reads1, set.Reads2, opt)
	if err != nil {
		t.Fatal(err)
	}
	rescued := 0
	for i := range set.Origins {
		multi := len(res.Single1[i]) > 3 || len(res.Single2[i]) > 3
		if multi && len(res.Pairs[i]) >= 1 && len(res.Pairs[i]) < 3 {
			rescued++
		}
	}
	if rescued == 0 {
		t.Error("no ambiguous fragment was rescued by pairing — repeat structure missing?")
	}
}

func TestMapPairsValidation(t *testing.T) {
	ref := simulate.Reference(simulate.Chr21Like(30_000, 35))
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapPairs([][]byte{{0, 1}}, nil, mapper.PairOptions{}); err == nil {
		t.Error("mismatched mate counts accepted")
	}
}
