package core

import (
	"strings"
	"testing"

	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/mapper"
	"repro/internal/seed"
	"repro/internal/simulate"
)

// testWorld builds a small repetitive reference plus simulated reads.
func testWorld(t *testing.T, refLen, nReads int, prof simulate.ReadProfile) ([]byte, simulate.ReadSet) {
	t.Helper()
	ref := simulate.Reference(simulate.Chr21Like(refLen, 11))
	set, err := simulate.Reads(ref, nReads, prof, 12)
	if err != nil {
		t.Fatal(err)
	}
	return ref, set
}

func TestPipelineFindsPlantedReads(t *testing.T) {
	ref, set := testWorld(t, 60_000, 120, simulate.ERR012100)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Name: "REPUTE-test"})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 5, MaxLocations: 100}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i, ms := range res.Mappings {
		o := set.Origins[i]
		if int(o.Edits) > opt.MaxErrors {
			continue // too many errors to be findable; not counted
		}
		ok := false
		for _, m := range ms {
			if m.Strand == o.Strand && abs32(m.Pos-o.Pos) <= int32(opt.MaxErrors) {
				ok = true
				break
			}
		}
		if ok {
			found++
		} else {
			t.Logf("read %d origin %d%c edits %d not found (%d mappings)",
				i, o.Pos, o.Strand, o.Edits, len(ms))
		}
	}
	eligible := 0
	for _, o := range set.Origins {
		if int(o.Edits) <= opt.MaxErrors {
			eligible++
		}
	}
	if found < eligible*99/100 {
		t.Fatalf("sensitivity %d/%d below 99%%", found, eligible)
	}
	if res.SimSeconds <= 0 || res.EnergyJ <= 0 {
		t.Errorf("accounting empty: %v s, %v J", res.SimSeconds, res.EnergyJ)
	}
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func TestPipelineDistancesAreSound(t *testing.T) {
	// Every reported mapping must actually align at the claimed distance.
	ref, set := testWorld(t, 40_000, 60, simulate.SRR826460)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 6, MaxLocations: 50}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Index().Text()
	checked := 0
	for i, ms := range res.Mappings {
		for _, m := range ms {
			if m.Dist > uint8(opt.MaxErrors) {
				t.Fatalf("read %d mapping dist %d > %d", i, m.Dist, opt.MaxErrors)
			}
			pattern := set.Reads[i]
			if m.Strand == mapper.Reverse {
				pattern = dna.ReverseComplement(pattern)
			}
			lo := int(m.Pos) - 1
			if lo < 0 {
				lo = 0
			}
			hi := int(m.Pos) + len(pattern) + opt.MaxErrors
			if hi > text.Len() {
				hi = text.Len()
			}
			win := text.Slice(lo, hi)
			if _, ok := verifyOracle(pattern, win, int(m.Dist)); !ok {
				t.Fatalf("read %d claims pos %d dist %d strand %c but window does not align",
					i, m.Pos, m.Dist, m.Strand)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no mappings produced at all")
	}
}

// verifyOracle is a tiny DP check used only in tests.
func verifyOracle(p, w []byte, k int) (int, bool) {
	prev := make([]int, len(w)+1)
	cur := make([]int, len(w)+1)
	for i := 1; i <= len(p); i++ {
		cur[0] = i
		for j := 1; j <= len(w); j++ {
			cost := 1
			if p[i-1] == w[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if prev[j]+1 < best {
				best = prev[j] + 1
			}
			if cur[j-1]+1 < best {
				best = cur[j-1] + 1
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	bestD := len(p) + len(w)
	for j := 1; j <= len(w); j++ {
		if prev[j] < bestD {
			bestD = prev[j]
		}
	}
	return bestD, bestD <= k
}

func TestPipelineMultiDeviceSplitAgreesWithSingle(t *testing.T) {
	ref, set := testWorld(t, 30_000, 80, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 50}

	single, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	resS, err := single.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	sys := cl.SystemOne()
	multi, err := New(ref, sys.Devices, Config{Split: []float64{0.5, 0.25, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	resM, err := multi.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	for i := range resS.Mappings {
		a, b := resS.Mappings[i], resM.Mappings[i]
		if len(a) != len(b) {
			t.Fatalf("read %d: %d vs %d mappings across splits", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("read %d mapping %d differs: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
	if len(resM.DeviceSeconds) != 3 {
		t.Errorf("multi-device run used %d devices want 3", len(resM.DeviceSeconds))
	}
	// Makespan must be the max device time, not the sum.
	var sum, max float64
	for _, s := range resM.DeviceSeconds {
		sum += s
		if s > max {
			max = s
		}
	}
	if resM.SimSeconds != max || (len(resM.DeviceSeconds) > 1 && resM.SimSeconds >= sum) {
		t.Errorf("SimSeconds %v, max %v, sum %v", resM.SimSeconds, max, sum)
	}
}

func TestPipelineBatchingUnderTinyAllocLimit(t *testing.T) {
	ref, set := testWorld(t, 20_000, 40, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: 1000}
	big, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	resWant, err := big.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	// A device whose MaxAlloc holds the index but only a dozen reads'
	// output slots forces many batches; results must not change.
	tinyDev := cl.SystemOneCPU()
	tinyDev.MaxAlloc = big.Index().SizeBytes() + 4096
	tiny, err := NewFromIndex(big.Index(), []*cl.Device{tinyDev}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	resGot, err := tiny.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resWant.Mappings {
		if len(resWant.Mappings[i]) != len(resGot.Mappings[i]) {
			t.Fatalf("read %d: batched run differs", i)
		}
	}
}

func TestPipelineIndexTooBigForDevice(t *testing.T) {
	ref, set := testWorld(t, 20_000, 5, simulate.ERR012100)
	dev := cl.GTX590(0)
	dev.GlobalMem = 1 << 10 // absurd: index cannot fit
	dev.MaxAlloc = 1 << 8
	p, err := New(ref, []*cl.Device{dev}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Map(set.Reads, mapper.Options{MaxErrors: 3}); err == nil {
		t.Error("oversized index accepted on tiny device")
	} else if !strings.Contains(err.Error(), "index does not fit") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPipelineInfeasibleSminSurfacesError(t *testing.T) {
	ref, set := testWorld(t, 20_000, 5, simulate.ERR012100)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Smin 30 with 4 seeds needs 120 bases; reads are 100.
	_, err = p.Map(set.Reads, mapper.Options{MaxErrors: 3, MinSeedLen: 30})
	if err == nil {
		t.Error("infeasible Smin accepted")
	}
}

func TestPipelineValidatesInputs(t *testing.T) {
	ref, _ := testWorld(t, 20_000, 1, simulate.ERR012100)
	if _, err := New(nil, []*cl.Device{cl.SystemOneCPU()}, Config{}); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := New(ref, nil, Config{}); err == nil {
		t.Error("no devices accepted")
	}
	if _, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Split: []float64{1, 2}}); err == nil {
		t.Error("mismatched split accepted")
	}
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Map([][]byte{{}}, mapper.Options{MaxErrors: 1}); err == nil {
		t.Error("empty read accepted")
	}
	if _, err := p.Map([][]byte{{9, 9}}, mapper.Options{MaxErrors: 1}); err == nil {
		t.Error("invalid codes accepted")
	}
}

func TestCORALSelectorPipeline(t *testing.T) {
	ref, set := testWorld(t, 40_000, 60, simulate.ERR012100)
	rep, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Name: "REPUTE"})
	if err != nil {
		t.Fatal(err)
	}
	cor, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Name: "CORAL", Selector: seed.CORAL{}})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	r1, err := rep.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cor.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic cannot beat the DP optimum on filtration work:
	// CORAL verifies at least as many windows in aggregate.
	if r2.Cost.VerifyWords < r1.Cost.VerifyWords {
		t.Errorf("CORAL verify words %d < REPUTE %d — heuristic beating the optimum",
			r2.Cost.VerifyWords, r1.Cost.VerifyWords)
	}
	if r1.MappedReads() == 0 || r2.MappedReads() == 0 {
		t.Error("a pipeline mapped nothing")
	}
}

func TestSampledIndexMapsIdentically(t *testing.T) {
	// The §IV memory trade-off must not change results: pipelines over a
	// full-SA index and a sampled one report identical mappings.
	ref, set := testWorld(t, 30_000, 50, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	full, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{SASampleRate: 32})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sampled.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rf.Mappings {
		if len(rf.Mappings[i]) != len(rs.Mappings[i]) {
			t.Fatalf("read %d: %d vs %d mappings", i, len(rf.Mappings[i]), len(rs.Mappings[i]))
		}
		for j := range rf.Mappings[i] {
			if rf.Mappings[i][j] != rs.Mappings[i][j] {
				t.Fatalf("read %d mapping %d differs: %+v vs %+v",
					i, j, rf.Mappings[i][j], rs.Mappings[i][j])
			}
		}
	}
	if rs.Cost.LocateSteps <= rf.Cost.LocateSteps {
		t.Errorf("sampled locate steps %d not above full %d",
			rs.Cost.LocateSteps, rf.Cost.LocateSteps)
	}
}

func TestCigarForReportedMappings(t *testing.T) {
	ref, set := testWorld(t, 30_000, 40, simulate.SRR826460)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 5, MaxLocations: 20}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, ms := range res.Mappings {
		for _, m := range ms {
			c, err := p.CigarFor(set.Reads[i], m, opt.MaxErrors)
			if err != nil {
				t.Fatalf("read %d mapping %+v: %v", i, m, err)
			}
			if c.ReadLen() != len(set.Reads[i]) {
				t.Fatalf("read %d: cigar %s consumes %d bases want %d",
					i, c, c.ReadLen(), len(set.Reads[i]))
			}
			pattern := set.Reads[i]
			if m.Strand == mapper.Reverse {
				pattern = dna.ReverseComplement(pattern)
			}
			seg := p.Index().Text().Slice(int(m.Pos), int(m.Pos)+c.RefLen())
			if edits := c.Edits(pattern, seg); edits > int(m.Dist) {
				t.Fatalf("read %d: cigar implies %d edits, mapping says %d", i, edits, m.Dist)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing mapped")
	}
	// Out-of-range positions must error, not panic.
	if _, err := p.CigarFor(set.Reads[0], mapper.Mapping{Pos: 1 << 30}, 3); err == nil {
		t.Error("absurd position accepted")
	}
}

func TestDefaultMinSeedLen(t *testing.T) {
	for _, tc := range []struct{ n, e, want int }{
		{100, 3, 14}, {100, 5, 9}, {100, 7, 8}, {150, 5, 16}, {150, 7, 13}, {10, 9, 1},
	} {
		if got := DefaultMinSeedLen(tc.n, tc.e); got != tc.want {
			t.Errorf("DefaultMinSeedLen(%d,%d) = %d want %d", tc.n, tc.e, got, tc.want)
		}
	}
}

func TestSharesSumToTotal(t *testing.T) {
	ref, _ := testWorld(t, 20_000, 1, simulate.ERR012100)
	sys := cl.SystemOne()
	p, err := New(ref, sys.Devices, Config{Split: []float64{0.82, 0.09, 0.09}})
	if err != nil {
		t.Fatal(err)
	}
	for _, total := range []int{0, 1, 7, 1000, 999_999} {
		counts := p.shares(total)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				t.Fatalf("negative share %v", counts)
			}
			sum += c
		}
		if sum != total {
			t.Fatalf("shares of %d sum to %d: %v", total, sum, counts)
		}
	}
}

func TestSharesRemainderGoesToLargestShare(t *testing.T) {
	ref, _ := testWorld(t, 20_000, 1, simulate.ERR012100)
	sys := cl.SystemOne()
	for _, tc := range []struct {
		split []float64
		total int
		want  []int
	}{
		// A zero-share device must receive no reads — the remainder
		// belongs to the largest share, not unconditionally to device 0.
		{[]float64{0, 1, 0}, 7, []int{0, 7, 0}},
		{[]float64{0, 0.5, 0.5}, 5, []int{0, 3, 2}},
		// Negative shares are clamped and never absorb the remainder.
		{[]float64{-1, 1, 0}, 3, []int{0, 3, 0}},
		// Largest-share device takes the rounding leftovers.
		{[]float64{0.2, 0.6, 0.2}, 7, []int{1, 5, 1}},
		{[]float64{1, 0, 0}, 4, []int{4, 0, 0}},
	} {
		p, err := New(ref, sys.Devices, Config{Split: tc.split})
		if err != nil {
			t.Fatal(err)
		}
		counts := p.shares(tc.total)
		for i := range counts {
			if counts[i] != tc.want[i] {
				t.Errorf("shares(%v, %d) = %v want %v", tc.split, tc.total, counts, tc.want)
				break
			}
		}
	}
}
