package core

import (
	"runtime"
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

// TestSerialParallelDeterminism is the guard that keeps the performance
// model trustworthy: the work-group scheduler may run work items on any
// number of host workers, but mappings, simulated seconds, energy and
// cost must be bit-identical to single-goroutine execution.
func TestSerialParallelDeterminism(t *testing.T) {
	// Force a real worker pool even on single-core CI machines.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	ref, set := testWorld(t, 40_000, 100, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}

	for _, tc := range []struct {
		name  string
		devs  func() []*cl.Device
		split []float64
	}{
		{"single-device", func() []*cl.Device { return []*cl.Device{cl.SystemOneCPU()} }, nil},
		{"multi-device", func() []*cl.Device { return cl.SystemOne().Devices }, []float64{0.5, 0.25, 0.25}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(mode cl.ExecMode) *mapper.Result {
				p, err := New(ref, tc.devs(), Config{Split: tc.split, Exec: mode})
				if err != nil {
					t.Fatal(err)
				}
				res, err := p.Map(set.Reads, opt)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := run(cl.Serial)
			parallel := run(cl.Parallel)

			if serial.SimSeconds != parallel.SimSeconds {
				t.Errorf("SimSeconds differ: serial %v parallel %v",
					serial.SimSeconds, parallel.SimSeconds)
			}
			if serial.EnergyJ != parallel.EnergyJ {
				t.Errorf("EnergyJ differs: serial %v parallel %v",
					serial.EnergyJ, parallel.EnergyJ)
			}
			if serial.Cost != parallel.Cost {
				t.Errorf("Cost differs:\nserial   %+v\nparallel %+v",
					serial.Cost, parallel.Cost)
			}
			for name, s := range serial.DeviceSeconds {
				if p := parallel.DeviceSeconds[name]; p != s {
					t.Errorf("DeviceSeconds[%s] differ: serial %v parallel %v", name, s, p)
				}
			}
			if len(serial.Mappings) != len(parallel.Mappings) {
				t.Fatalf("mapping counts differ: %d vs %d",
					len(serial.Mappings), len(parallel.Mappings))
			}
			for i := range serial.Mappings {
				a, b := serial.Mappings[i], parallel.Mappings[i]
				if len(a) != len(b) {
					t.Fatalf("read %d: %d vs %d mappings", i, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("read %d mapping %d differs: %+v vs %+v", i, j, a[j], b[j])
					}
				}
			}
		})
	}
}
