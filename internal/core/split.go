package core

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

// The paper's §IV: "The distribution of workload among various devices
// should be performed judiciously to obtain optimum performance" — Fig. 3
// sweeps the split by hand. AutoSplit automates the tuning with a pilot
// run: it maps a small sample on every device separately, measures each
// device's simulated mapping rate for this exact workload shape (read
// length, δ, Smin — occupancy and memory effects included), and returns
// shares proportional to the rates, so task-parallel kernels finish
// together.

// AutoSplit returns per-device workload shares for the given pipeline
// configuration, calibrated by mapping sample reads on each device.
// sample should be a few hundred representative reads; larger samples
// calibrate better but cost more.
func AutoSplit(ix *fmindex.Index, devices []*cl.Device, sample [][]byte, cfg Config, opt mapper.Options) ([]float64, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: AutoSplit needs devices")
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("core: AutoSplit needs sample reads")
	}
	rates := make([]float64, len(devices))
	total := 0.0
	for i, dev := range devices {
		pilotCfg := cfg
		pilotCfg.Split = nil // everything on this one device
		p, err := NewFromIndex(ix, []*cl.Device{dev}, pilotCfg)
		if err != nil {
			return nil, err
		}
		res, err := p.Map(sample, opt)
		if err != nil {
			return nil, fmt.Errorf("core: pilot on %s: %w", dev.Name, err)
		}
		if res.SimSeconds <= 0 {
			return nil, fmt.Errorf("core: pilot on %s produced no timing", dev.Name)
		}
		rates[i] = float64(len(sample)) / res.SimSeconds
		total += rates[i]
	}
	shares := make([]float64, len(devices))
	for i := range shares {
		shares[i] = rates[i] / total
	}
	return shares, nil
}
