package core

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

// faultWorld builds a reference, a read set and two identically-powered
// CPU devices whose MaxAlloc is clamped so each 60-read share needs
// several batches (~16 reads per batch) — without multiple enqueues and
// allocations per device there would be no ordinals for a FaultPlan to
// hit. The returned MaxLocations must be used for the run: the clamp
// works by sizing the static output slots against the index footprint.
func faultWorld(t *testing.T, nReads int) (ref []byte, set simulate.ReadSet, mkDevs func() []*cl.Device, maxLoc int) {
	t.Helper()
	ref, set = testWorld(t, 30_000, nReads, simulate.ERR012100)
	probe, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ixBytes := probe.Index().SizeBytes()
	maxLoc = int(ixBytes / 128) // => batch ≈ MaxAlloc/(8·maxLoc) ≈ 16 reads
	mkDevs = func() []*cl.Device {
		a := cl.SystemOneCPU()
		a.Name = "CPU-A"
		a.MaxAlloc = ixBytes
		b := cl.SystemOneCPU()
		b.Name = "CPU-B"
		b.MaxAlloc = ixBytes
		return []*cl.Device{a, b}
	}
	return ref, set, mkDevs, maxLoc
}

func sameMappings(t *testing.T, want, got [][]mapper.Mapping) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("mapping counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("read %d: %d vs %d mappings", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("read %d mapping %d differs: %+v vs %+v",
					i, j, want[i][j], got[i][j])
			}
		}
	}
}

// TestMapRecoversFromFaultPlan is the acceptance scenario of the fault
// tolerance layer: across a two-device split, device A suffers a
// transient launch failure and an injected allocation failure, device B
// is lost permanently mid-run — and Map still returns mappings identical
// to a fault-free serial single-device run, with the recovery visible
// only in Result.Faults.
func TestMapRecoversFromFaultPlan(t *testing.T) {
	// The scenario scripts its plans exactly; neutralise any ambient
	// chaos plan (CI's REPUTE_CL_FAULTS run) so the baseline is clean.
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 120)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Faults.Any() {
		t.Fatalf("fault-free baseline reports recovery: %+v", baseline.Faults)
	}

	devs := mkDevs()
	// Device A, per-ordinal: alloc1 = index, then (in, out, enqueue) per
	// batch. alloc4 is batch 2's input buffer — an injected transient
	// allocation failure that halves the batch; enq2 is the next launch —
	// a transient failure retried in place.
	devs[0].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{2: cl.OutOfResources},
		FailAllocs:   map[int]cl.Code{4: cl.MemObjectAllocationFailure},
	})
	// Device B dies for good at its third launch, mid-share.
	devs[1].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{3: cl.DeviceNotAvailable},
	})
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	sameMappings(t, baseline.Mappings, res.Mappings)
	f := res.Faults
	if f.Retries < 1 || f.BackoffSimSec <= 0 {
		t.Errorf("transient retry not accounted: %+v", f)
	}
	if f.DegradedBatches < 1 {
		t.Errorf("batch halving not accounted: %+v", f)
	}
	if f.FailoverReads < 1 {
		t.Errorf("failover not accounted: %+v", f)
	}
	if len(f.FailedDevices) != 1 || f.FailedDevices[0] != "CPU-B" {
		t.Errorf("FailedDevices = %v, want [CPU-B]", f.FailedDevices)
	}
	if res.DeviceSeconds["CPU-A"] <= 0 || res.DeviceSeconds["CPU-B"] <= 0 {
		t.Errorf("DeviceSeconds = %v, want both devices busy", res.DeviceSeconds)
	}
	if res.SimSeconds <= 0 || res.EnergyJ <= 0 {
		t.Errorf("SimSeconds/EnergyJ = %v/%v", res.SimSeconds, res.EnergyJ)
	}
}

// TestFaultDeterminismSerialParallel extends the serial/parallel
// bit-identity guarantee to runs with an active FaultPlan: injection is
// schedule-based, so both execution modes observe the same faults and
// produce identical results and recovery accounting.
func TestFaultDeterminismSerialParallel(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	ref, set, mkDevs, maxLoc := faultWorld(t, 120)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	run := func(mode cl.ExecMode) *mapper.Result {
		devs := mkDevs() // fresh devices: fresh fault ordinals per run
		devs[0].InstallFaults(&cl.FaultPlan{
			FailEnqueues: map[int]cl.Code{2: cl.OutOfResources},
			FailAllocs:   map[int]cl.Code{4: cl.MemObjectAllocationFailure},
			Throttles:    []cl.Throttle{{From: 3, To: 5, Factor: 0.5}},
		})
		devs[1].InstallFaults(&cl.FaultPlan{
			FailEnqueues: map[int]cl.Code{3: cl.DeviceNotAvailable},
		})
		p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(cl.Serial)
	parallel := run(cl.Parallel)

	if serial.SimSeconds != parallel.SimSeconds {
		t.Errorf("SimSeconds differ: serial %v parallel %v",
			serial.SimSeconds, parallel.SimSeconds)
	}
	if serial.EnergyJ != parallel.EnergyJ {
		t.Errorf("EnergyJ differs: serial %v parallel %v",
			serial.EnergyJ, parallel.EnergyJ)
	}
	if serial.Cost != parallel.Cost {
		t.Errorf("Cost differs:\nserial   %+v\nparallel %+v", serial.Cost, parallel.Cost)
	}
	if !reflect.DeepEqual(serial.Faults, parallel.Faults) {
		t.Errorf("FaultStats differ:\nserial   %+v\nparallel %+v",
			serial.Faults, parallel.Faults)
	}
	if !serial.Faults.Any() {
		t.Error("fault plan injected nothing — the comparison is vacuous")
	}
	sameMappings(t, serial.Mappings, parallel.Mappings)
}

// TestFailoverMapsAllReads kills one of two devices on its very first
// launch: its entire share must fail over and every read still map.
func TestFailoverMapsAllReads(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 80)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	devs := mkDevs()
	devs[1].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{1: cl.DeviceNotAvailable},
	})
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, baseline.Mappings, res.Mappings)
	if res.Faults.FailoverReads != 40 {
		t.Errorf("FailoverReads = %d, want 40 (device B's whole share)",
			res.Faults.FailoverReads)
	}
	if len(res.Faults.FailedDevices) != 1 || res.Faults.FailedDevices[0] != "CPU-B" {
		t.Errorf("FailedDevices = %v, want [CPU-B]", res.Faults.FailedDevices)
	}
}

// TestDeadlineMigratesWork gives the first device a simulated-seconds
// budget it exceeds after one batch; the rest of its share must migrate
// to the second device with no effect on the mappings.
func TestDeadlineMigratesWork(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 80)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	devs := mkDevs()
	// nil split: everything starts on device A; its deadline trips before
	// the second batch.
	p, err := New(ref, devs, Config{Exec: cl.Serial, Deadlines: []float64{1e-12, 0}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, baseline.Mappings, res.Mappings)
	if res.Faults.DeadlineReads < 1 {
		t.Errorf("DeadlineReads = %d, want > 0", res.Faults.DeadlineReads)
	}
	if len(res.Faults.FailedDevices) != 0 {
		t.Errorf("deadline migration recorded as device failure: %v",
			res.Faults.FailedDevices)
	}
	if res.DeviceSeconds["CPU-B"] <= 0 {
		t.Errorf("migrated work never ran on CPU-B: %v", res.DeviceSeconds)
	}
}

// TestAllDevicesFailedSurfacesError: when every device is lost the error
// names the devices and their causes instead of hanging or mis-mapping.
func TestAllDevicesFailedSurfacesError(t *testing.T) {
	ref, set, mkDevs, maxLoc := faultWorld(t, 40)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}
	devs := mkDevs()
	for _, d := range devs {
		d.InstallFaults(&cl.FaultPlan{
			FailEnqueues: map[int]cl.Code{1: cl.DeviceNotAvailable},
		})
	}
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Map(set.Reads, opt)
	if err == nil {
		t.Fatal("Map succeeded with every device lost")
	}
	for _, want := range []string{"no device completed", "CPU-A", "CPU-B", "CL_DEVICE_NOT_AVAILABLE"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
}

// TestEnvFaultPlanAutoInstall: setting REPUTE_CL_FAULTS turns a plain
// pipeline run into a chaos run — the plan is armed on every device
// without an explicit one and the run still succeeds via recovery.
func TestEnvFaultPlanAutoInstall(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "enq1=oor")
	ref, set := testWorld(t, 20_000, 30, simulate.ERR012100)
	dev := cl.SystemOneCPU()
	p, err := New(ref, []*cl.Device{dev}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, mapper.Options{MaxErrors: 3, MaxLocations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !dev.FaultsInstalled() {
		t.Error("env plan was not armed on the device")
	}
	if res.Faults.Retries < 1 {
		t.Errorf("injected enq1=oor was not retried: %+v", res.Faults)
	}
}

func TestDeadlinesLengthValidated(t *testing.T) {
	ref, _ := testWorld(t, 10_000, 1, simulate.ERR012100)
	_, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Deadlines: []float64{1, 2}})
	if err == nil || !strings.Contains(err.Error(), "deadlines") {
		t.Fatalf("mismatched Deadlines accepted: %v", err)
	}
}
