package core

import (
	"strings"
	"testing"

	"repro/internal/cl"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

// makeShards partitions ref into k ownership ranges with the given slice
// overlap and builds one FM-index per slice — the in-memory equivalent of
// a sharded index artifact.
func makeShards(ref []byte, k, overlap, rate int) []Shard {
	n := int64(len(ref))
	shards := make([]Shard, k)
	for i := 0; i < k; i++ {
		own0 := n * int64(i) / int64(k)
		own1 := n * int64(i+1) / int64(k)
		s0 := own0 - int64(overlap)
		if s0 < 0 {
			s0 = 0
		}
		s1 := own1 + int64(overlap)
		if s1 > n {
			s1 = n
		}
		shards[i] = Shard{
			Index:      fmindex.Build(ref[s0:s1], fmindex.Options{SASampleRate: rate}),
			OwnStart:   own0,
			OwnEnd:     own1,
			SliceStart: s0,
			SliceEnd:   s1,
		}
	}
	return shards
}

// TestShardedMatchesSingle is the shard-vs-whole equivalence property:
// shard dispatch (per-shard search + global merge) must report the exact
// mappings of the single-index pipeline, across shard counts, locate
// modes and device counts, serially and in parallel.
func TestShardedMatchesSingle(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 30_000, 80, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 50}

	single, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		k, rate int
		devices func() []*cl.Device
		exec    cl.ExecMode
	}{
		{"2shards-1dev-serial", 2, 0, func() []*cl.Device { return []*cl.Device{cl.SystemOneCPU()} }, cl.Serial},
		{"3shards-3devs", 3, 0, func() []*cl.Device { return cl.SystemOne().Devices }, cl.Auto},
		{"5shards-3devs-sampled", 5, 32, func() []*cl.Device { return cl.SystemOne().Devices }, cl.Auto},
		{"4shards-2devs", 4, 0, func() []*cl.Device {
			a, b := cl.SystemOneCPU(), cl.SystemOneCPU()
			a.Name, b.Name = "CPU-A", "CPU-B"
			return []*cl.Device{a, b}
		}, cl.Auto},
	} {
		t.Run(tc.name, func(t *testing.T) {
			shards := makeShards(ref, tc.k, 256, tc.rate)
			p, err := NewSharded(shards, 256, tc.devices(), Config{Exec: tc.exec})
			if err != nil {
				t.Fatal(err)
			}
			if !p.Sharded() || p.Index() != nil {
				t.Fatal("sharded pipeline misreports its geometry")
			}
			got, err := p.Map(set.Reads, opt)
			if err != nil {
				t.Fatal(err)
			}
			sameMappings(t, want.Mappings, got.Mappings)
			if got.SimSeconds <= 0 || got.EnergyJ <= 0 {
				t.Errorf("accounting empty: %v s, %v J", got.SimSeconds, got.EnergyJ)
			}
		})
	}
}

// TestShardedBestModeMatchesSingle checks the merge's best-stratum
// composition: per-shard best filtering followed by the global best
// re-filter must equal single-index best mapping.
func TestShardedBestModeMatchesSingle(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 30_000, 60, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 50, Best: true}

	single, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSharded(makeShards(ref, 3, 256, 0), 256, cl.SystemOne().Devices, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, want.Mappings, got.Mappings)
}

// TestShardedUnderFaultsMatchesSingle arms a chaos plan on every device
// of a sharded run: transient retries, allocation degradation and a
// permanent device loss re-dispatching that device's shards must leave
// the merged mappings untouched.
func TestShardedUnderFaultsMatchesSingle(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 100)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	single, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Shard indexes are roughly half the whole index; the faultWorld
	// MaxAlloc clamp still forces several batches per shard.
	devs := mkDevs()
	devs[0].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{2: cl.OutOfResources},
		FailAllocs:   map[int]cl.Code{4: cl.MemObjectAllocationFailure},
	})
	// Device B dies at its third launch: its shard's remaining reads must
	// fail over to device A, which re-loads B's reference slice.
	devs[1].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{3: cl.DeviceNotAvailable},
	})
	p, err := NewSharded(makeShards(ref, 2, 256, 0), 256, devs, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, want.Mappings, got.Mappings)
	f := got.Faults
	if f.Retries < 1 {
		t.Errorf("transient retry not accounted: %+v", f)
	}
	if len(f.FailedDevices) != 1 || f.FailedDevices[0] != "CPU-B" {
		t.Errorf("FailedDevices = %v, want [CPU-B]", f.FailedDevices)
	}
	if f.FailoverReads < 1 {
		t.Errorf("shard failover not accounted: %+v", f)
	}
}

// TestShardedEnvChaosMatchesSingle runs shard dispatch under the ambient
// REPUTE_CL_FAULTS plan the CI chaos job uses.
func TestShardedEnvChaosMatchesSingle(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 30_000, 60, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: 50}
	single, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	t.Setenv("REPUTE_CL_FAULTS", "enq2=oor,alloc3=alloc,throttle2-4=0.5")
	p, err := NewSharded(makeShards(ref, 3, 256, 0), 256, cl.SystemOne().Devices, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, want.Mappings, got.Mappings)
	if !got.Faults.Any() {
		t.Error("chaos plan armed but no faults accounted")
	}
}

// TestShardedOverlapValidation: an overlap too small for the read length
// must be rejected loudly at Map time, not silently lose boundary reads.
func TestShardedOverlapValidation(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 30_000, 5, simulate.ERR012100)
	// Reads are 100 bases; with δ=4 the slices need ≥ 108 bases of margin.
	p, err := NewSharded(makeShards(ref, 2, 64, 0), 64, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Map(set.Reads, mapper.Options{MaxErrors: 4, MaxLocations: 50})
	if err == nil {
		t.Fatal("undersized overlap accepted")
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestShardedCigarFor: CIGAR recovery must work from shard slices with
// global mapping coordinates.
func TestShardedCigarFor(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 30_000, 40, simulate.SRR826460)
	opt := mapper.Options{MaxErrors: 5, MaxLocations: 20}
	p, err := NewSharded(makeShards(ref, 3, 256, 0), 256, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, ms := range res.Mappings {
		for _, m := range ms {
			c, err := p.CigarFor(set.Reads[i], m, opt.MaxErrors)
			if err != nil {
				t.Fatalf("read %d mapping %+v: %v", i, m, err)
			}
			if c.ReadLen() != len(set.Reads[i]) {
				t.Fatalf("read %d: cigar %s consumes %d bases want %d",
					i, c, c.ReadLen(), len(set.Reads[i]))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing mapped")
	}
	if _, err := p.CigarFor(set.Reads[0], mapper.Mapping{Pos: 1 << 30}, 3); err == nil {
		t.Error("absurd position accepted")
	}
}

// TestNewShardedValidation exercises the constructor's geometry checks.
func TestNewShardedValidation(t *testing.T) {
	ref, _ := testWorld(t, 10_000, 1, simulate.ERR012100)
	devs := []*cl.Device{cl.SystemOneCPU()}
	good := makeShards(ref, 2, 128, 0)
	if _, err := NewSharded(nil, 128, devs, Config{}); err == nil {
		t.Error("no shards accepted")
	}
	if _, err := NewSharded(good, 128, devs, Config{Split: []float64{1}}); err == nil {
		t.Error("split accepted for shard dispatch")
	}
	gap := makeShards(ref, 2, 128, 0)
	gap[1].OwnStart += 7 // ownership no longer contiguous
	if _, err := NewSharded(gap, 128, devs, Config{}); err == nil {
		t.Error("ownership gap accepted")
	}
	short := makeShards(ref, 2, 128, 0)
	short[0].SliceEnd += 3 // index length no longer matches the slice
	if _, err := NewSharded(short, 128, devs, Config{}); err == nil {
		t.Error("slice/index length mismatch accepted")
	}
}
