package core

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// TestTraceDeterminismSerialParallel is the tentpole's acceptance test:
// a recorded trace of a 2-device run — including fault recovery — must
// be byte-identical between serial and parallel host execution, and so
// must the metrics snapshot derived from it. Traces are keyed on lane
// ordinals and simulated time, never wall clocks, so the goroutine
// interleaving of the parallel scheduler must be invisible.
func TestTraceDeterminismSerialParallel(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	ref, set, mkDevs, maxLoc := faultWorld(t, 120)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	run := func(mode cl.ExecMode) (chrome, metrics []byte, rec *trace.Recorder) {
		rec = trace.NewRecorder()
		devs := mkDevs()
		devs[0].InstallFaults(&cl.FaultPlan{
			FailEnqueues: map[int]cl.Code{2: cl.OutOfResources},
			FailAllocs:   map[int]cl.Code{4: cl.MemObjectAllocationFailure},
			Throttles:    []cl.Throttle{{From: 3, To: 5, Factor: 0.5}},
		})
		devs[1].InstallFaults(&cl.FaultPlan{
			FailEnqueues: map[int]cl.Code{3: cl.DeviceNotAvailable},
		})
		p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: mode, Tracer: rec})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Map(set.Reads, opt); err != nil {
			t.Fatal(err)
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("%v trace invalid: %v", mode, err)
		}
		var cbuf, mbuf bytes.Buffer
		if err := trace.WriteChromeTrace(&cbuf, rec); err != nil {
			t.Fatal(err)
		}
		if err := rec.Metrics().WriteJSON(&mbuf); err != nil {
			t.Fatal(err)
		}
		return cbuf.Bytes(), mbuf.Bytes(), rec
	}

	serialTrace, serialMetrics, rec := run(cl.Serial)
	parallelTrace, parallelMetrics, _ := run(cl.Parallel)

	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("serial and parallel Chrome traces differ (%d vs %d bytes)",
			len(serialTrace), len(parallelTrace))
	}
	if !bytes.Equal(serialMetrics, parallelMetrics) {
		t.Errorf("serial and parallel metrics snapshots differ:\n%s\n---\n%s",
			serialMetrics, parallelMetrics)
	}

	lanes := rec.Lanes()
	wantLanes := map[string]bool{"CPU-A": false, "CPU-B": false, "host": false}
	for _, l := range lanes {
		if _, ok := wantLanes[l]; ok {
			wantLanes[l] = true
		}
	}
	for l, seen := range wantLanes {
		if !seen {
			t.Errorf("lane %q missing from trace (have %v)", l, lanes)
		}
	}

	// The scripted faults must be visible as events and derived metrics.
	seen := map[string]int{}
	for _, ev := range rec.Events() {
		seen[ev.Name]++
	}
	for _, name := range []string{"map", "round 1", "round 2", "enqueue-fault",
		"retry", "batch-halved", "device-failed", "failover", "alloc", "free", "penalty"} {
		if seen[name] == 0 {
			t.Errorf("expected %q events in faulted trace", name)
		}
	}
	m := rec.Metrics()
	if m.Counters["faults_total"] == 0 || m.Counters["retries_total"] == 0 ||
		m.Counters["failovers_total"] == 0 {
		t.Errorf("fault metrics not derived: %+v", m.Counters)
	}
	if m.Counters["candidates_total"] == 0 || m.Counters["verified_total"] == 0 {
		t.Errorf("filtration/verification tallies missing: %+v", m.Counters)
	}
	// One observation per mapped read: recovery re-runs no work item.
	if m.Histograms["item_ops"].Count != int64(len(set.Reads)) {
		t.Errorf("item_ops count = %d, want %d",
			m.Histograms["item_ops"].Count, len(set.Reads))
	}
}

// TestNoopTracerZeroCostPipeline is the pipeline-level half of the
// benchmark guard: installing trace.Noop must leave every simulated
// result bit-identical to a run with tracing off.
func TestNoopTracerZeroCostPipeline(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 20_000, 40, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: 50}

	run := func(tr trace.Tracer) *mapper.Result {
		p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(nil)
	noop := run(trace.Noop{})
	if off.SimSeconds != noop.SimSeconds || off.EnergyJ != noop.EnergyJ || off.Cost != noop.Cost {
		t.Errorf("no-op tracer changed simulated results:\noff  %+v/%v/%v\nnoop %+v/%v/%v",
			off.Cost, off.SimSeconds, off.EnergyJ, noop.Cost, noop.SimSeconds, noop.EnergyJ)
	}
	sameMappings(t, off.Mappings, noop.Mappings)
}

// TestMapPairsTraceTimeline: the two mates of a paired run share one
// recorder; mate 2's spans must extend the timeline, not overlap mate
// 1's (SetTraceOrigin), and the combined trace must validate.
func TestMapPairsTraceTimeline(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, _ := testWorld(t, 20_000, 1, simulate.ERR012100)
	ps, err := simulate.PairedReads(ref, 20, simulate.ERR012100, 300, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MapPairs(ps.Reads1, ps.Reads2, mapper.PairOptions{
		Options: mapper.Options{MaxErrors: 3, MaxLocations: 50},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	var maps []trace.Event
	for _, ev := range rec.Events() {
		if ev.Lane == "host" && ev.Name == "map" {
			maps = append(maps, ev)
		}
	}
	if len(maps) != 2 {
		t.Fatalf("host map spans = %d, want 2 (one per mate)", len(maps))
	}
	if maps[1].Start < maps[0].Start+maps[0].Dur {
		t.Errorf("mate 2 span [%g, ...] overlaps mate 1 ending %g",
			maps[1].Start, maps[0].Start+maps[0].Dur)
	}
}
