// Package core implements REPUTE, the paper's contribution: an OpenCL
// read mapper for heterogeneous systems. The host program builds the
// FM-index preprocessing, splits the read set across any number of
// simulated OpenCL devices in task-parallel fashion, allocates the static
// kernel buffers that OpenCL 1.2 demands (batching when a buffer would
// exceed the 1/4-of-RAM allocation limit), and launches a combined
// filtration + verification kernel per batch.
//
// The filtration stage is the memory-optimised dynamic-programming seed
// selection of §II-B (seed.REPUTE); the verification stage is the Myers
// bit-vector (§II-A). A different Selector — e.g. seed.CORAL — turns the
// same pipeline into the CORAL comparison mapper, mirroring how the two
// tools share their kernel flow in the paper.
package core

import (
	"fmt"
	"sync"

	"repro/internal/align"
	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/seed"
)

// locationBytes is the per-reported-location size of the fixed output
// slots (pos int32 + strand/dist packed), matching the paper's first-n
// output policy.
const locationBytes = 8

// Index aliases the FM-index type so wrappers (e.g. the CORAL package)
// need not import internal/fmindex directly.
type Index = fmindex.Index

// Config tunes a Pipeline.
type Config struct {
	// Name labels the mapper in results ("REPUTE-cpu", "REPUTE-all", ...).
	Name string
	// Selector is the filtration strategy; nil means seed.REPUTE{}.
	Selector seed.Selector
	// Split gives each device's share of the reads; nil or all-zero
	// means everything on the first device. Shares are normalised.
	Split []float64
	// SASampleRate is passed to the FM-index build (0 = full SA).
	SASampleRate int
	// Exec pins the host execution mode of the pipeline's queues;
	// cl.Auto (the zero value) uses the package default. Simulated
	// results are identical either way — cl.Serial exists for debugging
	// and for determinism regression tests.
	Exec cl.ExecMode
}

// Pipeline is a REPUTE-style mapper bound to a reference and devices.
type Pipeline struct {
	name     string
	ix       *fmindex.Index
	devices  []*cl.Device
	split    []float64
	selector seed.Selector
	exec     cl.ExecMode
}

// New builds the index from ref and returns the pipeline.
func New(ref []byte, devices []*cl.Device, cfg Config) (*Pipeline, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	ix := fmindex.Build(ref, fmindex.Options{SASampleRate: cfg.SASampleRate})
	return NewFromIndex(ix, devices, cfg)
}

// NewFromIndex wraps an existing index (e.g. loaded from disk).
func NewFromIndex(ix *fmindex.Index, devices []*cl.Device, cfg Config) (*Pipeline, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	sel := cfg.Selector
	if sel == nil {
		sel = seed.REPUTE{}
	}
	name := cfg.Name
	if name == "" {
		name = "REPUTE"
	}
	split := cfg.Split
	if split != nil && len(split) != len(devices) {
		return nil, fmt.Errorf("core: split has %d entries for %d devices",
			len(split), len(devices))
	}
	return &Pipeline{name: name, ix: ix, devices: devices, split: split, selector: sel, exec: cfg.Exec}, nil
}

// Name implements mapper.Mapper.
func (p *Pipeline) Name() string { return p.name }

// Index exposes the pipeline's FM-index (examples inspect it).
func (p *Pipeline) Index() *fmindex.Index { return p.ix }

// CigarFor recovers the CIGAR string of a reported mapping by re-aligning
// the read against the mapped reference window — the SAM-output feature
// the paper's §IV defers to future versions. Cost is paid only for
// mappings actually written out.
func (p *Pipeline) CigarFor(read []byte, m mapper.Mapping, maxErrors int) (align.Cigar, error) {
	pattern := read
	if m.Strand == mapper.Reverse {
		pattern = dna.ReverseComplement(read)
	}
	text := p.ix.Text()
	lo := int(m.Pos)
	hi := lo + len(pattern) + maxErrors
	if lo < 0 || lo >= text.Len() {
		return nil, fmt.Errorf("core: mapping position %d out of range", m.Pos)
	}
	if hi > text.Len() {
		hi = text.Len()
	}
	window := text.Slice(lo, hi)
	match, cigar, ok := align.AlignCigar(pattern, window, int(m.Dist))
	if !ok {
		return nil, fmt.Errorf("core: mapping at %d does not realign within %d edits", m.Pos, m.Dist)
	}
	if match.Start != 0 {
		// The window starts exactly at the mapping position, so the best
		// alignment should anchor there; tolerate small shifts by
		// prepending a deletion-free offset via re-slice.
		window = window[match.Start:]
		_, cigar, ok = align.AlignCigar(pattern, window, int(m.Dist))
		if !ok {
			return nil, fmt.Errorf("core: realignment drifted at %d", m.Pos)
		}
	}
	return cigar, nil
}

// DefaultMinSeedLen picks Smin for a read length and error count the way
// the paper's experiments do ("the best performances of REPUTE taking
// into consideration the k-mer lengths"): it targets an exploration
// window of ~44 prefixes — enough freedom for the DP to matter without
// blowing up filtration time — clamped to [8, 16] and to feasibility.
func DefaultMinSeedLen(readLen, errors int) int {
	parts := errors + 1
	smin := (readLen - 44) / parts
	if smin > 16 {
		smin = 16
	}
	if smin < 8 {
		smin = 8
	}
	if parts*smin > readLen {
		smin = readLen / parts
	}
	if smin < 1 {
		smin = 1
	}
	return smin
}

// shares normalises the configured split into per-device read counts.
func (p *Pipeline) shares(total int) []int {
	counts := make([]int, len(p.devices))
	if p.split == nil {
		counts[0] = total
		return counts
	}
	sum := 0.0
	for _, s := range p.split {
		if s > 0 {
			sum += s
		}
	}
	if sum == 0 {
		counts[0] = total
		return counts
	}
	assigned := 0
	largest, largestShare := 0, 0.0
	for i, s := range p.split {
		if s < 0 {
			s = 0
		}
		if s > largestShare {
			largest, largestShare = i, s
		}
		counts[i] = int(float64(total) * s / sum)
		assigned += counts[i]
	}
	// The rounding remainder goes to the device with the largest share —
	// never to a device whose configured share is zero.
	counts[largest] += total - assigned
	return counts
}

// Map implements mapper.Mapper. Each device's share runs in its own host
// goroutine over its own queue — the paper's task-parallel model — and
// the shares join at a barrier before aggregation. Aggregation happens
// in device order, so simulated seconds, energy and cost are independent
// of which device's goroutine finishes first.
func (p *Pipeline) Map(reads [][]byte, opt mapper.Options) (*mapper.Result, error) {
	opt = opt.WithDefaults()
	if err := mapper.ValidateReads(reads, opt); err != nil {
		return nil, err
	}
	res := &mapper.Result{
		Mappings:      make([][]mapper.Mapping, len(reads)),
		DeviceSeconds: map[string]float64{},
	}
	counts := p.shares(len(reads))
	ctx := cl.NewContext()
	type devShare struct {
		busy, energy float64
		cost         cl.Cost
		err          error
		ran          bool
	}
	shares := make([]devShare, len(p.devices))
	var wg sync.WaitGroup
	offset := 0
	for di, dev := range p.devices {
		n := counts[di]
		if n == 0 {
			continue
		}
		chunk := reads[offset : offset+n]
		out := res.Mappings[offset : offset+n]
		offset += n
		wg.Add(1)
		go func(di int, dev *cl.Device) {
			defer wg.Done()
			s := &shares[di]
			s.ran = true
			s.busy, s.energy, s.cost, s.err = p.mapOnDevice(ctx, dev, chunk, out, opt)
		}(di, dev)
	}
	wg.Wait()
	for di, dev := range p.devices {
		s := shares[di]
		if !s.ran {
			continue
		}
		if s.err != nil {
			return nil, fmt.Errorf("core: device %s: %w", dev.Name, s.err)
		}
		res.DeviceSeconds[dev.Name] += s.busy
		if s.busy > res.SimSeconds {
			res.SimSeconds = s.busy // task-parallel makespan
		}
		res.EnergyJ += s.energy
		res.Cost.Add(s.cost)
	}
	return res, nil
}

// mapOnDevice runs one device's share, batching reads so the static
// output buffer respects CL_DEVICE_MAX_MEM_ALLOC_SIZE.
func (p *Pipeline) mapOnDevice(ctx *cl.Context, dev *cl.Device, reads [][]byte, out [][]mapper.Mapping, opt mapper.Options) (busy, energy float64, cost cl.Cost, err error) {
	ixBuf, err := ctx.AllocBuffer(dev, p.ix.SizeBytes())
	if err != nil {
		return 0, 0, cost, fmt.Errorf("index does not fit: %w", err)
	}
	defer ixBuf.Free()

	readLen := len(reads[0])
	outPerRead := int64(opt.MaxLocations) * locationBytes
	inPerRead := int64((readLen + 3) / 4)
	batch := len(reads)
	if limit := dev.MaxAlloc / outPerRead; int64(batch) > limit {
		batch = int(limit)
	}
	if limit := dev.MaxAlloc / inPerRead; int64(batch) > limit {
		batch = int(limit)
	}
	if batch < 1 {
		return 0, 0, cost, fmt.Errorf("a single read's buffers exceed the allocation limit")
	}

	queue := cl.NewQueue(dev)
	queue.SetExecMode(p.exec)
	for start := 0; start < len(reads); start += batch {
		end := start + batch
		if end > len(reads) {
			end = len(reads)
		}
		if err := p.runBatch(ctx, queue, reads[start:end], out[start:end], opt); err != nil {
			return 0, 0, cost, err
		}
	}
	busy, cost = queue.Finish()
	return busy, queue.EnergyJ(), cost, nil
}

// runBatch allocates the batch buffers and enqueues the mapping kernel.
func (p *Pipeline) runBatch(ctx *cl.Context, queue *cl.Queue, reads [][]byte, out [][]mapper.Mapping, opt mapper.Options) error {
	dev := queue.Device()
	readLen := len(reads[0])
	inBuf, err := ctx.AllocBuffer(dev, int64(len(reads))*int64((readLen+3)/4))
	if err != nil {
		return fmt.Errorf("read buffer: %w", err)
	}
	defer inBuf.Free()
	outBuf, err := ctx.AllocBuffer(dev, int64(len(reads))*int64(opt.MaxLocations)*locationBytes)
	if err != nil {
		return fmt.Errorf("output buffer: %w", err)
	}
	defer outBuf.Free()

	kern := p.kernel(reads, out, opt, inBuf.Size()+outBuf.Size())
	if _, err := queue.EnqueueNDRange(kern, len(reads)); err != nil {
		return err
	}
	return nil
}

// kernelState is one host worker's private memory for the combined
// filtration+verification kernel: the reverse-complement buffer, the
// candidate and locate scratch slices and the verifier state. Keeping
// them here — not captured by the kernel closure — is what lets the
// work-group scheduler run work items on several workers at once.
type kernelState struct {
	vs    mapper.VerifyState
	rev   []byte
	cands []mapper.Candidate
	locs  []int32
}

// kernel builds the combined filtration+verification kernel over a batch.
// Each work item maps one read on both strands.
func (p *Pipeline) kernel(reads [][]byte, out [][]mapper.Mapping, opt mapper.Options, transferBytes int64) *cl.Kernel {
	maxErr := opt.MaxErrors
	params := seed.Params{
		Errors:      maxErr,
		MinSeedLen:  opt.MinSeedLen,
		MaxSeedFreq: opt.MaxSeedFreq,
	}
	if params.MinSeedLen <= 0 {
		params.MinSeedLen = DefaultMinSeedLen(len(reads[0]), maxErr)
	}
	// Cap on located candidates per strand: the verification slots are
	// static, so a read cannot fan out indefinitely (first-n policy).
	maxCand := 2 * opt.MaxLocations
	locSteps := p.ix.LocateSteps()
	perItemBytes := transferBytes / int64(len(reads))

	return &cl.Kernel{
		Name:                p.name + "-map",
		PrivateBytesPerItem: int64(seed.DPPeakMem(len(reads[0]), maxErr, params.MinSeedLen, p.selector)),
		NewState: func() any {
			return &kernelState{rev: make([]byte, len(reads[0]))}
		},
		Body: func(wi *cl.WorkItem, state any) {
			st := state.(*kernelState)
			read := reads[wi.Global]
			st.cands = st.cands[:0]
			var itemCost cl.Cost
			for _, strand := range []byte{mapper.Forward, mapper.Reverse} {
				pattern := read
				if strand == mapper.Reverse {
					if cap(st.rev) < len(read) {
						st.rev = make([]byte, len(read))
					}
					st.rev = st.rev[:len(read)]
					dna.ReverseComplementInto(st.rev, read)
					pattern = st.rev
				}
				sel, err := p.selector.Select(p.ix, pattern, params)
				if err != nil {
					// Static kernels cannot recover; surface as a launch
					// failure like a real kernel fault would.
					panic(err)
				}
				itemCost.FMSteps += int64(sel.FMSteps)
				itemCost.DPCells += int64(sel.DPCells)
				remaining := maxCand
				for _, s := range sel.Seeds {
					if remaining <= 0 {
						break
					}
					c := s.Count()
					if c == 0 {
						continue
					}
					if c > remaining {
						c = remaining
					}
					st.locs = p.ix.Locate(s.Lo, s.Lo+c, 0, st.locs[:0])
					itemCost.LocateSteps += int64(float64(c) * (1 + locSteps))
					for _, pos := range st.locs {
						st.cands = append(st.cands, mapper.Candidate{
							Pos:    pos - int32(s.Start),
							Strand: strand,
						})
					}
					remaining -= c
				}
			}
			dd := mapper.DedupCandidates(st.cands, int32(maxErr))
			ms, vc := st.vs.Verify(p.ix.Text(), read, dd, maxErr, opt.MaxLocations)
			itemCost.VerifyWords += vc.VerifyWords
			itemCost.Items = 1
			itemCost.Bytes = perItemBytes
			wi.Charge(itemCost)
			out[wi.Global] = mapper.Finalize(ms, opt.Best, opt.MaxLocations)
		},
	}
}
