// Package core implements REPUTE, the paper's contribution: an OpenCL
// read mapper for heterogeneous systems. The host program builds the
// FM-index preprocessing, splits the read set across any number of
// simulated OpenCL devices in task-parallel fashion, allocates the static
// kernel buffers that OpenCL 1.2 demands (batching when a buffer would
// exceed the 1/4-of-RAM allocation limit), and launches a combined
// filtration + verification kernel per batch.
//
// The filtration stage is the memory-optimised dynamic-programming seed
// selection of §II-B (seed.REPUTE); the verification stage is the Myers
// bit-vector (§II-A). A different Selector — e.g. seed.CORAL — turns the
// same pipeline into the CORAL comparison mapper, mirroring how the two
// tools share their kernel flow in the paper.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/align"
	"repro/internal/cl"
	"repro/internal/dna"
	"repro/internal/filter"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/seed"
	"repro/internal/trace"
)

// locationBytes is the per-reported-location size of the fixed output
// slots (pos int32 + strand/dist packed), matching the paper's first-n
// output policy.
const locationBytes = 8

// Index aliases the FM-index type so wrappers (e.g. the CORAL package)
// need not import internal/fmindex directly.
type Index = fmindex.Index

// Config tunes a Pipeline.
type Config struct {
	// Name labels the mapper in results ("REPUTE-cpu", "REPUTE-all", ...).
	Name string
	// Selector is the filtration strategy; nil means seed.REPUTE{}.
	Selector seed.Selector
	// Split gives each device's share of the reads; nil or all-zero
	// means everything on the first device. Shares are normalised.
	Split []float64
	// SASampleRate is passed to the FM-index build (0 = full SA).
	SASampleRate int
	// Exec pins the host execution mode of the pipeline's queues;
	// cl.Auto (the zero value) uses the package default. Simulated
	// results are identical either way — cl.Serial exists for debugging
	// and for determinism regression tests.
	Exec cl.ExecMode
	// Deadlines, when non-nil, gives each device a simulated-seconds
	// budget (one entry per device, 0 = unlimited): once a device's
	// accumulated busy time crosses its deadline, its remaining batches
	// migrate to the other devices — the recovery path for a device that
	// is alive but too slow (thermal throttling, a contended lane).
	Deadlines []float64
	// Tracer receives spans and instants for every enqueue, penalty,
	// buffer event, round, retry, failover and deadline decision, keyed
	// on simulated time (DESIGN.md §10). nil or trace.Noop disables
	// tracing with zero overhead on the hot path. Installing a
	// *trace.Recorder additionally feeds its per-item op histogram.
	Tracer trace.Tracer
}

// Shard binds one reference slice's FM-index to its global placement:
// the index covers text[SliceStart:SliceEnd] and *owns* (reports
// mappings for) positions in [OwnStart, OwnEnd). Neighbouring slices
// overlap so reads straddling an ownership boundary are still fully
// contained in some shard's slice.
type Shard struct {
	Index                *fmindex.Index
	OwnStart, OwnEnd     int64
	SliceStart, SliceEnd int64
}

// Pipeline is a REPUTE-style mapper bound to a reference and devices.
// It dispatches in one of two geometries:
//
//   - read-split (ix != nil): every device holds the whole index and the
//     read set is split across devices by the configured shares;
//   - shard (shards != nil): the reference is partitioned, each device
//     holds its own shards' FM-index buffers, every read is broadcast to
//     every shard, and per-shard candidates merge in global coordinates.
//
// Both geometries ride the same fault-tolerant round engine: work is
// tracked as (shard, read-span) units, and a failed device's units —
// including its reference shards — re-dispatch to the survivors.
type Pipeline struct {
	name      string
	ix        *fmindex.Index // read-split geometry (nil when sharded)
	shards    []Shard        // shard geometry (nil when read-split)
	overlap   int            // shard slice overlap in bases
	devices   []*cl.Device
	split     []float64
	selector  seed.Selector
	exec      cl.ExecMode
	deadlines []float64

	// tracer is the normalised Config.Tracer (nil when off); itemHist is
	// the tracer's per-item op histogram when it offers one. traceSec is
	// the simulated time already traced by earlier Map calls on this
	// pipeline, so successive runs (MapPairs' two mates) extend one
	// timeline; traceMu guards it across concurrent Map calls.
	tracer   trace.Tracer
	itemHist *trace.Histogram
	traceMu  sync.Mutex
	traceSec float64 // guarded by traceMu
}

// New builds the index from ref and returns the pipeline.
func New(ref []byte, devices []*cl.Device, cfg Config) (*Pipeline, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	ix := fmindex.Build(ref, fmindex.Options{SASampleRate: cfg.SASampleRate})
	return NewFromIndex(ix, devices, cfg)
}

// NewFromIndex wraps an existing index (e.g. loaded from disk).
func NewFromIndex(ix *fmindex.Index, devices []*cl.Device, cfg Config) (*Pipeline, error) {
	p, err := newPipeline(devices, cfg)
	if err != nil {
		return nil, err
	}
	p.ix = ix
	return p, nil
}

// NewSharded builds a shard-dispatch pipeline: each shard's FM-index
// covers one overlapping reference slice (normally loaded from a sharded
// index artifact), reads broadcast to every shard, and mappings merge in
// global coordinates. overlap is the slice overlap the shards were built
// with; Map validates it against the read length so boundary-straddling
// alignments cannot be silently lost. Config.Split does not apply —
// shard dispatch assigns whole shards to devices round-robin.
func NewSharded(shards []Shard, overlap int, devices []*cl.Device, cfg Config) (*Pipeline, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: no shards")
	}
	if cfg.Split != nil {
		return nil, fmt.Errorf("core: read-split shares do not apply to shard dispatch")
	}
	prev := int64(0)
	for i, s := range shards {
		if s.Index == nil {
			return nil, fmt.Errorf("core: shard %d has no index", i)
		}
		if s.OwnStart != prev || s.OwnEnd < s.OwnStart ||
			s.SliceStart > s.OwnStart || s.SliceEnd < s.OwnEnd {
			return nil, fmt.Errorf("core: shard %d has inconsistent geometry", i)
		}
		if int64(s.Index.Len()) != s.SliceEnd-s.SliceStart {
			return nil, fmt.Errorf("core: shard %d index covers %d bases, slice is %d",
				i, s.Index.Len(), s.SliceEnd-s.SliceStart)
		}
		prev = s.OwnEnd
	}
	p, err := newPipeline(devices, cfg)
	if err != nil {
		return nil, err
	}
	p.shards = shards
	p.overlap = overlap
	return p, nil
}

// newPipeline applies the geometry-independent configuration.
func newPipeline(devices []*cl.Device, cfg Config) (*Pipeline, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: no devices")
	}
	sel := cfg.Selector
	if sel == nil {
		sel = seed.REPUTE{}
	}
	name := cfg.Name
	if name == "" {
		name = "REPUTE"
	}
	split := cfg.Split
	if split != nil && len(split) != len(devices) {
		return nil, fmt.Errorf("core: split has %d entries for %d devices",
			len(split), len(devices))
	}
	if cfg.Deadlines != nil && len(cfg.Deadlines) != len(devices) {
		return nil, fmt.Errorf("core: deadlines has %d entries for %d devices",
			len(cfg.Deadlines), len(devices))
	}
	p := &Pipeline{name: name, devices: devices, split: split,
		selector: sel, exec: cfg.Exec, deadlines: cfg.Deadlines}
	if !trace.IsNoop(cfg.Tracer) {
		p.tracer = cfg.Tracer
		if h, ok := cfg.Tracer.(interface{ ItemOpsHistogram() *trace.Histogram }); ok {
			p.itemHist = h.ItemOpsHistogram()
		}
	}
	return p, nil
}

// Sharded reports whether the pipeline uses shard dispatch.
func (p *Pipeline) Sharded() bool { return p.shards != nil }

// Name implements mapper.Mapper.
func (p *Pipeline) Name() string { return p.name }

// Index exposes the pipeline's FM-index (examples inspect it). It is nil
// for shard-dispatch pipelines, which hold per-shard indexes instead.
func (p *Pipeline) Index() *fmindex.Index { return p.ix }

// shardOwning returns the shard whose ownership range contains the
// global position, or nil.
func (p *Pipeline) shardOwning(pos int64) *Shard {
	for i := range p.shards {
		if s := &p.shards[i]; pos >= s.OwnStart && pos < s.OwnEnd {
			return s
		}
	}
	return nil
}

// CigarFor recovers the CIGAR string of a reported mapping by re-aligning
// the read against the mapped reference window — the SAM-output feature
// the paper's §IV defers to future versions. Cost is paid only for
// mappings actually written out. In shard dispatch the window comes from
// the owning shard's slice; mappings sit at least one read length from
// the slice edge (the overlap Map validates), so the window never clips.
func (p *Pipeline) CigarFor(read []byte, m mapper.Mapping, maxErrors int) (align.Cigar, error) {
	pattern := read
	if m.Strand == mapper.Reverse {
		pattern = dna.ReverseComplement(read)
	}
	var text dna.PackedSeq
	base := 0
	if p.Sharded() {
		sh := p.shardOwning(int64(m.Pos))
		if sh == nil {
			return nil, fmt.Errorf("core: mapping position %d owned by no shard", m.Pos)
		}
		text = sh.Index.Text()
		base = int(sh.SliceStart)
	} else {
		text = p.ix.Text()
	}
	lo := int(m.Pos) - base
	hi := lo + len(pattern) + maxErrors
	if lo < 0 || lo >= text.Len() {
		return nil, fmt.Errorf("core: mapping position %d out of range", m.Pos)
	}
	if hi > text.Len() {
		hi = text.Len()
	}
	window := text.Slice(lo, hi)
	match, cigar, ok := align.AlignCigar(pattern, window, int(m.Dist))
	if !ok {
		return nil, fmt.Errorf("core: mapping at %d does not realign within %d edits", m.Pos, m.Dist)
	}
	if match.Start != 0 {
		// The window starts exactly at the mapping position, so the best
		// alignment should anchor there; tolerate small shifts by
		// prepending a deletion-free offset via re-slice.
		window = window[match.Start:]
		_, cigar, ok = align.AlignCigar(pattern, window, int(m.Dist))
		if !ok {
			return nil, fmt.Errorf("core: realignment drifted at %d", m.Pos)
		}
	}
	return cigar, nil
}

// DefaultMinSeedLen picks Smin for a read length and error count the way
// the paper's experiments do ("the best performances of REPUTE taking
// into consideration the k-mer lengths"): it targets an exploration
// window of ~44 prefixes — enough freedom for the DP to matter without
// blowing up filtration time — clamped to [8, 16] and to feasibility.
func DefaultMinSeedLen(readLen, errors int) int {
	parts := errors + 1
	smin := (readLen - 44) / parts
	if smin > 16 {
		smin = 16
	}
	if smin < 8 {
		smin = 8
	}
	if parts*smin > readLen {
		smin = readLen / parts
	}
	if smin < 1 {
		smin = 1
	}
	return smin
}

// shares normalises the configured split into per-device read counts.
func (p *Pipeline) shares(total int) []int {
	counts := make([]int, len(p.devices))
	if p.split == nil {
		counts[0] = total
		return counts
	}
	sum := 0.0
	for _, s := range p.split {
		if s > 0 {
			sum += s
		}
	}
	if sum == 0 {
		counts[0] = total
		return counts
	}
	assigned := 0
	largest, largestShare := 0, 0.0
	for i, s := range p.split {
		if s < 0 {
			s = 0
		}
		if s > largestShare {
			largest, largestShare = i, s
		}
		counts[i] = int(float64(total) * s / sum)
		assigned += counts[i]
	}
	// The rounding remainder goes to the device with the largest share —
	// never to a device whose configured share is zero.
	counts[largest] += total - assigned
	return counts
}

// pending is a half-open span [start, end) of global read indices still
// awaiting mapping. The failover machinery moves spans, not individual
// reads, so redistribution stays O(devices) per round.
type pending struct{ start, end int }

// spanReads counts the reads covered by spans.
func spanReads(spans []pending) int {
	n := 0
	for _, sp := range spans {
		n += sp.end - sp.start
	}
	return n
}

// unit is the engine's work quantum: a span of reads to map against one
// shard's index (shard == -1 means the whole read-split index). In
// read-split dispatch every unit has shard -1 and spans partition the
// read set; in shard dispatch each shard broadcasts the full read range,
// so the same read index appears in one unit per shard. Failover moves
// units, which is what re-homes a lost device's reference slice onto
// the survivors.
type unit struct {
	shard int
	span  pending
}

// unitReads counts the read-dispatches covered by units.
func unitReads(units []unit) int {
	n := 0
	for _, u := range units {
		n += u.span.end - u.span.start
	}
	return n
}

// outcome is one device's report at a round barrier: which units it did
// not finish, why it stopped, and the recovery work it performed.
type outcome struct {
	unmapped []unit
	failed   bool // permanent device failure — fail the units over
	deadline bool // simulated-seconds budget exceeded — migrate the units
	err      error
	stats    mapper.FaultStats
}

// Map implements mapper.Mapper. Each device's share runs in its own host
// goroutine over its own queue — the paper's task-parallel model — and
// the shares join at a barrier before aggregation.
//
// The barrier is also the recovery point: a device that fails permanently
// (CL_DEVICE_NOT_AVAILABLE, a deterministic kernel fault, an infeasible
// allocation) or exceeds its simulated-seconds deadline reports its
// unfinished spans, and Map redistributes them across the surviving
// devices in another round. Transient faults never reach the barrier —
// mapOnDevice retries them in place. Map fails only when no device can
// finish the workload.
//
// Recovery changes where and when work runs, never what it computes:
// mappings and Cost are identical to a fault-free run (the determinism
// suite asserts this), while SimSeconds accumulates each round's makespan
// and mapper.Result.Faults accounts the recovery actions.
//
// Aggregation happens in device order, so simulated seconds, energy and
// cost are independent of which device's goroutine finishes first.
func (p *Pipeline) Map(reads [][]byte, opt mapper.Options) (*mapper.Result, error) {
	opt = opt.WithDefaults()
	if err := mapper.ValidateReads(reads, opt); err != nil {
		return nil, err
	}
	if err := p.validateOverlap(reads, opt); err != nil {
		return nil, err
	}
	// Chaos hook: REPUTE_CL_FAULTS arms its plan on every device that has
	// no explicit one, turning any pipeline run into a fault-recovery run.
	if plan := cl.EnvFaultPlan(); plan != nil {
		for i, dev := range p.devices {
			if plan.Device > 0 && plan.Device != i+1 {
				continue // device=K targets only the Kth pipeline device
			}
			if !dev.FaultsInstalled() {
				dev.InstallFaults(plan)
			}
		}
	}
	res := &mapper.Result{
		Mappings:      make([][]mapper.Mapping, len(reads)),
		DeviceSeconds: map[string]float64{},
	}
	ctx := cl.NewContext()
	queues := make([]*cl.Queue, len(p.devices))
	// traceBase is where this run starts on the pipeline's traced
	// timeline: fresh queues count busy time from zero, so the origin
	// shifts their spans past everything already recorded (a second Map
	// call — MapPairs' mate 2 — continues the timeline, not overlaps it).
	traceBase := 0.0
	if p.tracer != nil {
		p.traceMu.Lock()
		traceBase = p.traceSec
		p.traceMu.Unlock()
		ctx.SetTracer(p.tracer)
	}
	for i, dev := range p.devices {
		queues[i] = cl.NewQueue(dev)
		queues[i].SetExecMode(p.exec)
		if p.tracer != nil {
			queues[i].SetTracer(p.tracer)
			queues[i].SetTraceOrigin(traceBase)
		}
	}
	if t := p.tracer; t != nil {
		id := t.Begin("host", "map", traceBase,
			trace.I64("reads", int64(len(reads))),
			trace.I64("devices", int64(len(p.devices))),
			trace.Str("mapper", p.name))
		defer func() {
			p.traceMu.Lock()
			p.traceSec = traceBase + res.SimSeconds
			p.traceMu.Unlock()
			t.End(id, traceBase+res.SimSeconds,
				trace.F64("sim_seconds", res.SimSeconds),
				trace.F64("energy_j", res.EnergyJ))
		}()
	}

	// Output destinations: read-split units write straight into
	// res.Mappings; shard units write per-shard partials that merge in
	// global coordinates once every round has completed.
	outFor := func(shard int) [][]mapper.Mapping { return res.Mappings }
	var partials [][][]mapper.Mapping
	if p.Sharded() {
		partials = make([][][]mapper.Mapping, len(p.shards))
		for s := range partials {
			partials[s] = make([][]mapper.Mapping, len(reads))
		}
		outFor = func(shard int) [][]mapper.Mapping { return partials[shard] }
	}

	// Initial assignment. Read-split: the configured split, as contiguous
	// spans of the whole-index unit. Shard: every read goes to every
	// shard, shards deal round-robin onto devices.
	assign := make([][]unit, len(p.devices))
	if p.Sharded() {
		for s := range p.shards {
			di := s % len(p.devices)
			assign[di] = append(assign[di], unit{shard: s, span: pending{0, len(reads)}})
		}
	} else {
		offset := 0
		for di, n := range p.shares(len(reads)) {
			if n > 0 {
				assign[di] = []unit{{shard: -1, span: pending{offset, offset + n}}}
				offset += n
			}
		}
	}

	// Health-aware eligibility: a device whose circuit breaker is open is
	// quarantined — it starts ineligible and its initial assignment
	// redistributes to the healthy devices before the first round, in
	// both geometries. Passing over an open breaker ticks its cooldown
	// (Skipped), so a long-quarantined device eventually goes half-open
	// and the next Map call admits it for a canary. Half-open devices are
	// eligible: their first batch is the canary, and a canary failure
	// reopens the breaker and fails the device over mid-run.
	eligible := make([]bool, len(p.devices))
	var quarantined []unit
	for i, dev := range p.devices {
		eligible[i] = true
		brk := dev.Breaker()
		if brk == nil || brk.State() != cl.BreakerOpen {
			continue
		}
		if st, changed := brk.Skipped(); changed && st == cl.BreakerHalfOpen {
			if t := p.tracer; t != nil {
				t.Instant(dev.Name, "breaker-half-open")
			}
			continue
		}
		eligible[i] = false
		if t := p.tracer; t != nil {
			t.Instant(dev.Name, "quarantine-skip",
				trace.I64("unmapped_reads", int64(unitReads(assign[i]))))
		}
		quarantined = append(quarantined, assign[i]...)
		assign[i] = nil
	}
	if len(quarantined) > 0 {
		moved := p.redistribute(quarantined, eligible)
		if moved == nil {
			return nil, fmt.Errorf("core: every device is quarantined by its circuit breaker")
		}
		for di, units := range moved {
			assign[di] = append(assign[di], units...)
		}
	}
	ran := make([]bool, len(p.devices))
	var devErrs []error
	for round := 1; ; round++ {
		outs := make([]outcome, len(p.devices))
		busyBefore := make([]float64, len(p.devices))
		var wg sync.WaitGroup
		for di := range p.devices {
			if len(assign[di]) == 0 {
				continue
			}
			ran[di] = true
			busyBefore[di], _ = queues[di].Finish()
			wg.Add(1)
			go func(di int) {
				defer wg.Done()
				outs[di] = p.mapOnDevice(ctx, queues[di], assign[di], reads, outFor, opt, p.deadlineFor(di))
			}(di)
		}
		wg.Wait()

		// Rounds are sequential, devices within a round concurrent: the
		// round's makespan is the max per-device busy delta.
		roundMax := 0.0
		for di := range p.devices {
			if len(assign[di]) == 0 {
				continue
			}
			busy, _ := queues[di].Finish()
			if d := busy - busyBefore[di]; d > roundMax {
				roundMax = d
			}
		}
		if t := p.tracer; t != nil {
			t.Span("host", fmt.Sprintf("round %d", round),
				traceBase+res.SimSeconds, roundMax,
				trace.F64("makespan_sec", roundMax))
		}
		res.SimSeconds += roundMax

		// Collect outcomes in device order so stats and error lists are
		// deterministic.
		var failUnits, lateUnits []unit
		for di, dev := range p.devices {
			if len(assign[di]) == 0 {
				continue
			}
			o := &outs[di]
			res.Faults.Add(o.stats)
			assign[di] = nil
			switch {
			case o.failed:
				eligible[di] = false
				res.Faults.FailedDevices = append(res.Faults.FailedDevices, dev.Name)
				devErrs = append(devErrs, fmt.Errorf("device %s: %w", dev.Name, o.err))
				failUnits = append(failUnits, o.unmapped...)
				if t := p.tracer; t != nil {
					t.Instant(dev.Name, "device-failed",
						trace.Str("error", o.err.Error()),
						trace.I64("unmapped_reads", int64(unitReads(o.unmapped))))
				}
			case o.deadline:
				eligible[di] = false
				devErrs = append(devErrs, fmt.Errorf(
					"device %s: simulated deadline %gs exceeded", dev.Name, p.deadlineFor(di)))
				lateUnits = append(lateUnits, o.unmapped...)
				if t := p.tracer; t != nil {
					t.Instant(dev.Name, "deadline-exceeded",
						trace.F64("deadline_sec", p.deadlineFor(di)),
						trace.I64("unmapped_reads", int64(unitReads(o.unmapped))))
				}
			}
		}
		if t := p.tracer; t != nil {
			if n := unitReads(failUnits); n > 0 {
				t.Instant("host", "failover", trace.I64("reads", int64(n)),
					trace.I64("round", int64(round)))
			}
			if n := unitReads(lateUnits); n > 0 {
				t.Instant("host", "deadline-migrate", trace.I64("reads", int64(n)),
					trace.I64("round", int64(round)))
			}
		}
		res.Faults.FailoverReads += unitReads(failUnits)
		res.Faults.DeadlineReads += unitReads(lateUnits)
		redo := append(failUnits, lateUnits...)
		if len(redo) == 0 {
			break
		}
		assign = p.redistribute(redo, eligible)
		if assign == nil {
			return nil, fmt.Errorf("core: no device completed the workload: %w",
				errors.Join(devErrs...))
		}
	}

	// Aggregate in device order over every queue that ran.
	for di, dev := range p.devices {
		if !ran[di] {
			continue
		}
		busy, cost := queues[di].Finish()
		res.DeviceSeconds[dev.Name] += busy
		res.EnergyJ += queues[di].EnergyJ()
		res.Cost.Add(cost)
	}

	// Shard dispatch: merge the per-shard partials per read. Shards
	// already globalized positions and filtered to their ownership
	// ranges, so the merge is a deterministic re-finalize over disjoint
	// position sets — independent of device count, scheduling and
	// failover history.
	if p.Sharded() {
		parts := make([][]mapper.Mapping, len(partials))
		for r := range reads {
			for s := range partials {
				parts[s] = partials[s][r]
			}
			res.Mappings[r] = mapper.MergeShards(parts, opt.Best, opt.MaxLocations)
		}
	}
	return res, nil
}

// validateOverlap rejects shard-dispatch runs whose reads are too long
// for the overlap the shards were built with: a read of length L mapping
// with up to δ edits needs every candidate window of length L+2δ around
// an owned position to be inside the owning shard's slice, so the slice
// margin must be at least L+2δ. Failing loudly here is what makes the
// shard-vs-whole equivalence guarantee honest.
func (p *Pipeline) validateOverlap(reads [][]byte, opt mapper.Options) error {
	if !p.Sharded() || len(p.shards) < 2 {
		return nil
	}
	maxLen := 0
	for _, r := range reads {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	if need := maxLen + 2*opt.MaxErrors; p.overlap < need {
		return fmt.Errorf("core: shard overlap %d is too small for %d-base reads with %d errors (need >= %d); rebuild the index with a larger overlap",
			p.overlap, maxLen, opt.MaxErrors, need)
	}
	return nil
}

// redistribute deals the redo units out across the eligible devices,
// shard by shard: each shard's spans split by the surviving shares, so a
// lost device's reference slice re-dispatches (with its unfinished
// reads) onto every survivor. Returns nil when no device is eligible.
func (p *Pipeline) redistribute(redo []unit, eligible []bool) [][]unit {
	sort.Slice(redo, func(i, j int) bool {
		if redo[i].shard != redo[j].shard {
			return redo[i].shard < redo[j].shard
		}
		return redo[i].span.start < redo[j].span.start
	})
	assign := make([][]unit, len(p.devices))
	for lo := 0; lo < len(redo); {
		hi := lo
		for hi < len(redo) && redo[hi].shard == redo[lo].shard {
			hi++
		}
		spans := make([]pending, 0, hi-lo)
		for _, u := range redo[lo:hi] {
			spans = append(spans, u.span)
		}
		counts := p.sharesAmong(spanReads(spans), eligible)
		if counts == nil {
			return nil
		}
		for di, sps := range partitionSpans(spans, counts) {
			for _, sp := range sps {
				assign[di] = append(assign[di], unit{shard: redo[lo].shard, span: sp})
			}
		}
		lo = hi
	}
	return assign
}

// deadlineFor returns device di's simulated-seconds budget (0 = none).
func (p *Pipeline) deadlineFor(di int) float64 {
	if p.deadlines == nil {
		return 0
	}
	return p.deadlines[di]
}

// sharesAmong splits total reads across the devices still eligible,
// reusing the configured split weights. When the survivors' configured
// shares sum to zero (nil split, or only zero-share devices survive) the
// reads spread evenly. Returns nil when no device is eligible.
func (p *Pipeline) sharesAmong(total int, eligible []bool) []int {
	weights := make([]float64, len(p.devices))
	sum, any := 0.0, false
	for i, ok := range eligible {
		if !ok {
			continue
		}
		any = true
		if p.split != nil && p.split[i] > 0 {
			weights[i] = p.split[i]
			sum += weights[i]
		}
	}
	if !any {
		return nil
	}
	if sum == 0 {
		for i, ok := range eligible {
			if ok {
				weights[i] = 1
				sum++
			}
		}
	}
	counts := make([]int, len(p.devices))
	assigned := 0
	largest, largestShare := 0, 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if w > largestShare {
			largest, largestShare = i, w
		}
		counts[i] = int(float64(total) * w / sum)
		assigned += counts[i]
	}
	counts[largest] += total - assigned
	return counts
}

// partitionSpans deals the sorted spans out by per-device read counts,
// splitting a span at a device boundary when needed.
func partitionSpans(spans []pending, counts []int) [][]pending {
	out := make([][]pending, len(counts))
	si := 0
	pos := 0
	if len(spans) > 0 {
		pos = spans[0].start
	}
	for di, want := range counts {
		for want > 0 && si < len(spans) {
			sp := spans[si]
			if pos < sp.start {
				pos = sp.start
			}
			take := sp.end - pos
			if take > want {
				take = want
			}
			out[di] = append(out[di], pending{pos, pos + take})
			pos += take
			want -= take
			if pos >= sp.end {
				si++
			}
		}
	}
	return out
}

// shardRef resolves a unit's shard id to the index it searches and the
// coordinate transform its kernel applies: read-split units (-1) search
// the whole index with no transform; shard units search the slice index,
// shift positions by the slice origin, and keep only owned positions.
type shardRef struct {
	ix               *fmindex.Index
	sliceStart       int64
	ownStart, ownEnd int64
	filter           bool
}

func (p *Pipeline) shardRef(shard int) shardRef {
	if shard < 0 {
		return shardRef{ix: p.ix}
	}
	s := p.shards[shard]
	return shardRef{ix: s.Index, sliceStart: s.SliceStart,
		ownStart: s.OwnStart, ownEnd: s.OwnEnd, filter: true}
}

// mapOnDevice runs one device's assigned units on its queue, batching
// reads so the static buffers respect CL_DEVICE_MAX_MEM_ALLOC_SIZE. The
// device holds one shard's index buffer at a time — freed when the next
// unit needs a different shard, the embedded-memory model — so a device
// serving several shards pays one allocation per shard changeover. It
// implements the in-place recovery tier: transient faults retry on the
// same device with doubling simulated backoff, allocation failures halve
// the batch, and anything permanent stops the device and reports the
// unfinished units for failover.
func (p *Pipeline) mapOnDevice(ctx *cl.Context, queue *cl.Queue, units []unit, reads [][]byte, outFor func(int) [][]mapper.Mapping, opt mapper.Options, deadlineSec float64) (o outcome) {
	dev := queue.Device()
	var ixBuf *cl.Buffer
	curShard := -2 // no buffer resident yet
	defer func() {
		if ixBuf != nil {
			ixBuf.Free()
		}
	}()

	for ui, u := range units {
		ref := p.shardRef(u.shard)
		if u.shard != curShard {
			if ixBuf != nil {
				ixBuf.Free()
				ixBuf = nil
			}
			buf, err := p.allocWithRetry(ctx, queue, ref.ix.SizeBytes(), opt, &o)
			if err != nil {
				o.failed = true
				o.err = fmt.Errorf("index does not fit: %w", err)
				o.unmapped = append([]unit{}, units[ui:]...)
				return o
			}
			ixBuf = buf
			curShard = u.shard
		}
		out := outFor(u.shard)
		sp := u.span
		readLen := len(reads[sp.start])
		outPerRead := int64(opt.MaxLocations) * locationBytes
		inPerRead := int64((readLen + 3) / 4)
		batch := sp.end - sp.start
		if limit := dev.MaxAlloc / outPerRead; int64(batch) > limit {
			batch = int(limit)
		}
		if limit := dev.MaxAlloc / inPerRead; int64(batch) > limit {
			batch = int(limit)
		}
		if batch < 1 {
			o.failed = true
			o.err = fmt.Errorf("a single read's buffers exceed the allocation limit")
			o.unmapped = append([]unit{u}, units[ui+1:]...)
			return o
		}
		start := sp.start
		attempts := 0
		backoff := opt.RetryBackoffSimSec
		for start < sp.end {
			if deadlineSec > 0 {
				if busy, _ := queue.Finish(); busy >= deadlineSec {
					o.deadline = true
					o.unmapped = append([]unit{{u.shard, pending{start, sp.end}}}, units[ui+1:]...)
					return o
				}
			}
			end := start + batch
			if end > sp.end {
				end = sp.end
			}
			err := p.runBatch(ctx, queue, ref, reads[start:end], out[start:end], opt)
			if err == nil {
				start = end
				attempts = 0
				backoff = opt.RetryBackoffSimSec
				continue
			}
			if cl.IsWatchdogTimeout(err) {
				o.stats.WatchdogFires++
			}
			switch {
			case cl.IsAllocFailure(err) && end-start > 1:
				// OpenCL's static-allocation wall: halve the batch and go
				// around degraded rather than give the device up.
				batch = (end - start + 1) / 2
				o.stats.DegradedBatches++
				if t := p.tracer; t != nil {
					t.Instant(dev.Name, "batch-halved",
						trace.I64("batch", int64(batch)), trace.Str("error", err.Error()))
				}
			// In-place retries are pointless once the device's breaker has
			// opened (a failed half-open canary, or the failure score
			// crossing the threshold): the work fails over instead.
			case cl.IsTransient(err) && attempts < opt.Retries && dev.BreakerState() != cl.BreakerOpen:
				attempts++
				queue.ChargePenalty(backoff)
				o.stats.Retries++
				o.stats.BackoffSimSec += backoff
				backoff *= 2
				if t := p.tracer; t != nil {
					t.Instant(dev.Name, "retry",
						trace.I64("attempt", int64(attempts)), trace.Str("error", err.Error()))
				}
			default:
				o.failed = true
				o.err = err
				o.unmapped = append([]unit{{u.shard, pending{start, sp.end}}}, units[ui+1:]...)
				return o
			}
		}
	}
	return o
}

// allocWithRetry allocates size bytes on the queue's device, retrying
// injected transient failures with the same bounded, charged backoff as
// kernel launches. Structural failures — the buffer genuinely does not
// fit — repeat identically and are returned at once.
func (p *Pipeline) allocWithRetry(ctx *cl.Context, queue *cl.Queue, size int64, opt mapper.Options, o *outcome) (*cl.Buffer, error) {
	backoff := opt.RetryBackoffSimSec
	for attempts := 0; ; attempts++ {
		buf, err := ctx.AllocBuffer(queue.Device(), size)
		if err == nil {
			return buf, nil
		}
		if !cl.IsTransient(err) || attempts >= opt.Retries ||
			queue.Device().BreakerState() == cl.BreakerOpen {
			return nil, err
		}
		queue.ChargePenalty(backoff)
		o.stats.Retries++
		o.stats.BackoffSimSec += backoff
		backoff *= 2
		if t := p.tracer; t != nil {
			t.Instant(queue.Device().Name, "retry",
				trace.I64("attempt", int64(attempts+1)), trace.Str("error", err.Error()))
		}
	}
}

// runBatch allocates the batch buffers and enqueues the mapping kernel.
func (p *Pipeline) runBatch(ctx *cl.Context, queue *cl.Queue, ref shardRef, reads [][]byte, out [][]mapper.Mapping, opt mapper.Options) error {
	dev := queue.Device()
	readLen := len(reads[0])
	inBuf, err := ctx.AllocBuffer(dev, int64(len(reads))*int64((readLen+3)/4))
	if err != nil {
		return fmt.Errorf("read buffer: %w", err)
	}
	defer inBuf.Free()
	outBuf, err := ctx.AllocBuffer(dev, int64(len(reads))*int64(opt.MaxLocations)*locationBytes)
	if err != nil {
		return fmt.Errorf("output buffer: %w", err)
	}
	defer outBuf.Free()

	if opt.Prefilter == mapper.PrefilterGateKeeper {
		return p.runBatchPrefilter(ctx, queue, ref, reads, out, opt, inBuf.Size(), outBuf.Size())
	}
	kern := p.kernel(ref, reads, out, opt, inBuf.Size()+outBuf.Size())
	if p.itemHist != nil {
		kern = instrumentKernel(kern, p.itemHist)
	}
	if _, err := queue.EnqueueNDRange(kern, len(reads)); err != nil {
		return err
	}
	return nil
}

// candidateBytes is the device-side size of one candidate slot in the
// intermediate buffer between the prefilter and verification kernels
// (pos int32 + strand, padded).
const candidateBytes = 8

// runBatchPrefilter is runBatch's two-kernel variant for the optional
// pre-alignment filter stage: a seed+filter kernel writes the
// candidates that survive the shifted-Hamming test into fixed per-read
// slots of a device-resident intermediate buffer, then a verification
// kernel scans only the survivors. The intermediate buffer counts
// against the device allocation limit like every other static buffer
// (an oversized batch fails allocation and is halved by mapOnDevice),
// but charges no host-transfer bytes — it never crosses the bus. A
// faulted verification launch retries the whole batch; the prefilter
// kernel is deterministic and idempotent over its slots, so the retry
// recomputes identical survivors.
func (p *Pipeline) runBatchPrefilter(ctx *cl.Context, queue *cl.Queue, ref shardRef, reads [][]byte, out [][]mapper.Mapping, opt mapper.Options, inBytes, outBytes int64) error {
	dev := queue.Device()
	// Dedup can only shrink the candidate set, so 2 strands × maxCand
	// located candidates bound the survivors per read.
	slotCap := 4 * opt.MaxLocations
	candBuf, err := ctx.AllocBuffer(dev, int64(len(reads))*int64(slotCap)*candidateBytes)
	if err != nil {
		return fmt.Errorf("candidate buffer: %w", err)
	}
	defer candBuf.Free()
	backing := make([]mapper.Candidate, len(reads)*slotCap)
	candOut := make([][]mapper.Candidate, len(reads))
	for i := range candOut {
		candOut[i] = backing[i*slotCap : i*slotCap : (i+1)*slotCap]
	}
	pre, ver := p.prefilterKernels(ref, reads, candOut, out, opt, inBytes, outBytes)
	if p.itemHist != nil {
		pre = instrumentKernel(pre, p.itemHist)
		ver = instrumentKernel(ver, p.itemHist)
	}
	if _, err := queue.EnqueueNDRange(pre, len(reads)); err != nil {
		return err
	}
	if _, err := queue.EnqueueNDRange(ver, len(reads)); err != nil {
		return err
	}
	return nil
}

// instrumentKernel wraps a kernel so each work item's total charged op
// count is observed into h after the inner body runs. The wrapper keeps
// the kernel contract: it delegates every item to the already-vetted
// inner body and adds no captured mutable state (Histogram.Observe is
// internally synchronised, and op counts are integers so the histogram
// sum is order-independent — serial and parallel runs agree exactly).
func instrumentKernel(k *cl.Kernel, h *trace.Histogram) *cl.Kernel {
	inner := k.Body
	out := *k
	out.Body = func(wi *cl.WorkItem, state any) {
		inner(wi, state)
		h.Observe(float64(wi.Cost().Ops()))
	}
	return &out
}

// kernelState is one host worker's private memory for the mapping
// kernels: the reverse-complement buffer, the candidate and locate
// scratch slices, the verifier state and the pre-alignment filter
// scratch. Keeping them here — not captured by the kernel closure — is
// what lets the work-group scheduler run work items on several workers
// at once.
type kernelState struct {
	vs    mapper.VerifyState
	rev   []byte
	cands []mapper.Candidate
	locs  []int32
	win   []byte       // prefilter window scratch
	fs    filter.State // prefilter shifted-Hamming scratch
}

// gather runs seed selection and candidate location for both strands of
// read, appending candidates into st.cands (which the caller resets)
// and charging the selection and locate work to itemCost. On return
// st.rev holds the read's reverse complement. This is the shared first
// half of the combined kernel and the standalone prefilter kernel; it
// allocates only into kernel-state scratch, per the clvet contract its
// callers are held to.
func (st *kernelState) gather(selector seed.Selector, ref shardRef, read []byte,
	params seed.Params, maxCand int, locSteps float64, itemCost *cl.Cost) {
	for _, strand := range []byte{mapper.Forward, mapper.Reverse} {
		pattern := read
		if strand == mapper.Reverse {
			if cap(st.rev) < len(read) {
				st.rev = make([]byte, len(read))
			}
			st.rev = st.rev[:len(read)]
			dna.ReverseComplementInto(st.rev, read)
			pattern = st.rev
		}
		sel, err := selector.Select(ref.ix, pattern, params)
		if err != nil {
			// Static kernels cannot recover; surface as a launch
			// failure like a real kernel fault would.
			panic(err)
		}
		itemCost.FMSteps += int64(sel.FMSteps)
		itemCost.DPCells += int64(sel.DPCells)
		remaining := maxCand
		for _, s := range sel.Seeds {
			if remaining <= 0 {
				break
			}
			c := s.Count()
			if c == 0 {
				continue
			}
			if c > remaining {
				c = remaining
			}
			st.locs = ref.ix.Locate(s.Lo, s.Lo+c, 0, st.locs[:0])
			itemCost.LocateSteps += int64(float64(c) * (1 + locSteps))
			for _, pos := range st.locs {
				st.cands = append(st.cands, mapper.Candidate{
					Pos:    pos - int32(s.Start),
					Strand: strand,
				})
			}
			remaining -= c
		}
	}
}

// kernel builds the combined filtration+verification kernel over a batch
// against one shard's (or the whole) index. Each work item maps one read
// on both strands. Shard kernels verify in slice-local coordinates, then
// shift positions by the slice origin and drop mappings outside the
// shard's ownership range in place — the merge step only ever sees
// globally-coordinated, owner-filtered mappings.
func (p *Pipeline) kernel(ref shardRef, reads [][]byte, out [][]mapper.Mapping, opt mapper.Options, transferBytes int64) *cl.Kernel {
	maxErr := opt.MaxErrors
	params := seed.Params{
		Errors:      maxErr,
		MinSeedLen:  opt.MinSeedLen,
		MaxSeedFreq: opt.MaxSeedFreq,
	}
	if params.MinSeedLen <= 0 {
		params.MinSeedLen = DefaultMinSeedLen(len(reads[0]), maxErr)
	}
	// Cap on located candidates per strand: the verification slots are
	// static, so a read cannot fan out indefinitely (first-n policy).
	maxCand := 2 * opt.MaxLocations
	locSteps := ref.ix.LocateSteps()
	perItemBytes := transferBytes / int64(len(reads))

	return &cl.Kernel{
		Name:                p.name + "-map",
		PrivateBytesPerItem: int64(seed.DPPeakMem(len(reads[0]), maxErr, params.MinSeedLen, p.selector)),
		NewState: func() any {
			return &kernelState{rev: make([]byte, len(reads[0]))}
		},
		Body: func(wi *cl.WorkItem, state any) {
			st := state.(*kernelState)
			read := reads[wi.Global]
			st.cands = st.cands[:0]
			var itemCost cl.Cost
			st.gather(p.selector, ref, read, params, maxCand, locSteps, &itemCost)
			dd := mapper.DedupCandidates(st.cands, int32(maxErr))
			ms, vc := st.vs.Verify(ref.ix.Text(), read, dd, maxErr, opt.MaxLocations)
			if ref.filter {
				// Globalize and owner-filter in place: positions shift by a
				// constant so the sorted order Verify established survives,
				// and compaction writes only into slots already held.
				w := 0
				for _, m := range ms {
					g := int64(m.Pos) + ref.sliceStart
					if g < ref.ownStart || g >= ref.ownEnd {
						continue
					}
					m.Pos = int32(g)
					ms[w] = m
					w++
				}
				ms = ms[:w]
			}
			itemCost.VerifyWords += vc.VerifyWords
			itemCost.Items = 1
			itemCost.Bytes = perItemBytes
			itemCost.Candidates = int64(len(dd))
			itemCost.Verified = int64(len(ms))
			wi.Charge(itemCost)
			out[wi.Global] = mapper.Finalize(ms, opt.Best, opt.MaxLocations)
		},
	}
}

// prefilterKernels builds the two-kernel pre-alignment pipeline over a
// batch: the prefilter kernel repeats the combined kernel's seed
// selection, location and dedup, then runs the GateKeeper-style
// shifted-Hamming filter (internal/filter) over each candidate's
// verification window and writes the survivors into the read's fixed
// candidate slot; the verification kernel Myers-scans only the
// survivors. The filter accepts a superset of the verifiable windows,
// so the final mappings are byte-identical to the single-kernel path —
// the equivalence and oracle tests pin exactly that. Host-transfer
// bytes split across the pair: reads travel with the prefilter launch,
// mapping slots travel back with verification.
func (p *Pipeline) prefilterKernels(ref shardRef, reads [][]byte, candOut [][]mapper.Candidate, out [][]mapper.Mapping, opt mapper.Options, inBytes, outBytes int64) (pre, ver *cl.Kernel) {
	maxErr := opt.MaxErrors
	params := seed.Params{
		Errors:      maxErr,
		MinSeedLen:  opt.MinSeedLen,
		MaxSeedFreq: opt.MaxSeedFreq,
	}
	if params.MinSeedLen <= 0 {
		params.MinSeedLen = DefaultMinSeedLen(len(reads[0]), maxErr)
	}
	maxCand := 2 * opt.MaxLocations
	locSteps := ref.ix.LocateSteps()
	inPerItem := inBytes / int64(len(reads))
	outPerItem := outBytes / int64(len(reads))
	text := ref.ix.Text()

	pre = &cl.Kernel{
		Name:                p.name + "-prefilter",
		PrivateBytesPerItem: int64(seed.DPPeakMem(len(reads[0]), maxErr, params.MinSeedLen, p.selector)),
		NewState: func() any {
			return &kernelState{rev: make([]byte, len(reads[0]))}
		},
		Body: func(wi *cl.WorkItem, state any) {
			st := state.(*kernelState)
			read := reads[wi.Global]
			st.cands = st.cands[:0]
			var itemCost cl.Cost
			st.gather(p.selector, ref, read, params, maxCand, locSteps, &itemCost)
			dd := mapper.DedupCandidates(st.cands, int32(maxErr))
			n := len(read)
			slot := candOut[wi.Global][:cap(candOut[wi.Global])]
			kept := 0
			prepared := byte(0xFF) // no pattern prepared yet
			for _, c := range dd {
				// The window is exactly the one verification would scan;
				// windows too short to hold any match are dropped here the
				// way Verify itself would skip them.
				lo := int(c.Pos) - maxErr
				hi := int(c.Pos) + n + maxErr
				if lo < 0 {
					lo = 0
				}
				if hi > text.Len() {
					hi = text.Len()
				}
				if hi-lo < n-maxErr {
					itemCost.Filtered++
					continue
				}
				if c.Strand != prepared {
					// Candidates arrive sorted by strand, so each strand's
					// pattern bitvectors build at most once per read.
					pattern := read
					if c.Strand == mapper.Reverse {
						pattern = st.rev
					}
					itemCost.FilterWords += st.fs.Prepare(pattern, maxErr)
					prepared = c.Strand
				}
				if cap(st.win) < hi-lo {
					st.win = make([]byte, hi-lo)
				}
				win := text.SliceInto(st.win, lo, hi)
				ok, fw := st.fs.Accept(win)
				itemCost.FilterWords += fw
				if !ok {
					itemCost.Filtered++
					continue
				}
				slot[kept] = c
				kept++
			}
			candOut[wi.Global] = slot[:kept]
			itemCost.Items = 1
			itemCost.Bytes = inPerItem
			itemCost.Candidates = int64(len(dd))
			wi.Charge(itemCost)
		},
	}

	ver = &cl.Kernel{
		Name:                p.name + "-verify",
		PrivateBytesPerItem: int64(8 * len(reads[0])),
		NewState: func() any {
			return &kernelState{}
		},
		Body: func(wi *cl.WorkItem, state any) {
			st := state.(*kernelState)
			read := reads[wi.Global]
			cands := candOut[wi.Global]
			var itemCost cl.Cost
			ms, vc := st.vs.Verify(text, read, cands, maxErr, opt.MaxLocations)
			if ref.filter {
				// Globalize and owner-filter in place, as in the combined
				// kernel: a constant shift preserves Verify's sort order.
				w := 0
				for _, m := range ms {
					g := int64(m.Pos) + ref.sliceStart
					if g < ref.ownStart || g >= ref.ownEnd {
						continue
					}
					m.Pos = int32(g)
					ms[w] = m
					w++
				}
				ms = ms[:w]
			}
			itemCost.VerifyWords += vc.VerifyWords
			itemCost.Items = 1
			itemCost.Bytes = outPerItem
			itemCost.Verified = int64(len(ms))
			// Every slot candidate passed the filter and owns a full
			// window, so the ones Myers rejects are the filter's false
			// accepts.
			itemCost.FalseAccepts = int64(len(cands)) - vc.Matched
			wi.Charge(itemCost)
			out[wi.Global] = mapper.Finalize(ms, opt.Best, opt.MaxLocations)
		},
	}
	return pre, ver
}
