package core

import (
	"math"
	"testing"

	"repro/internal/cl"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func TestAutoSplitBalancesDevices(t *testing.T) {
	ref := simulate.Reference(simulate.Chr21Like(60_000, 17))
	set, err := simulate.Reads(ref, 400, simulate.ERR012100, 18)
	if err != nil {
		t.Fatal(err)
	}
	ix := fmindex.Build(ref, fmindex.Options{})
	devices := cl.SystemOne().Devices
	// Unit-test workloads are far too small to amortise the GPUs' fixed
	// kernel-launch overhead (a real effect Fig. 3 sweeps around at 1M
	// reads); zero it so the test exercises the balancing logic itself.
	for _, d := range devices {
		d.LaunchOverheadSec = 0
	}
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}

	shares, err := AutoSplit(ix, devices, set.Reads[:100], Config{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 {
		t.Fatalf("shares = %v", shares)
	}
	sum := 0.0
	for _, s := range shares {
		if s <= 0 {
			t.Fatalf("non-positive share: %v", shares)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v: %v", sum, shares)
	}
	// The CPU out-rates a single GTX 590 half on this random-access
	// workload; the two GPUs should get symmetric smaller shares.
	if shares[0] <= shares[1] || shares[0] <= shares[2] {
		t.Errorf("CPU share not dominant: %v", shares)
	}
	if math.Abs(shares[1]-shares[2]) > 0.02 {
		t.Errorf("GPU shares asymmetric: %v", shares)
	}

	// Mapping with the calibrated split must beat CPU-only makespan.
	tuned, err := NewFromIndex(ix, devices, Config{Split: shares})
	if err != nil {
		t.Fatal(err)
	}
	resTuned, err := tuned.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	cpuOnly, err := NewFromIndex(ix, devices[:1], Config{})
	if err != nil {
		t.Fatal(err)
	}
	resCPU, err := cpuOnly.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resTuned.SimSeconds >= resCPU.SimSeconds {
		t.Errorf("tuned split (%v s) not faster than CPU-only (%v s)",
			resTuned.SimSeconds, resCPU.SimSeconds)
	}
	// And the devices should finish within a reasonable band of each
	// other (that is the entire point of tuning).
	var minBusy, maxBusy float64
	minBusy = math.MaxFloat64
	for _, busy := range resTuned.DeviceSeconds {
		if busy < minBusy {
			minBusy = busy
		}
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	if minBusy <= 0 || maxBusy/minBusy > 2.5 {
		t.Errorf("device busy times unbalanced: %v", resTuned.DeviceSeconds)
	}
}

func TestAutoSplitValidation(t *testing.T) {
	ref := simulate.Reference(simulate.Chr21Like(20_000, 1))
	ix := fmindex.Build(ref, fmindex.Options{})
	opt := mapper.Options{MaxErrors: 3}
	if _, err := AutoSplit(ix, nil, [][]byte{{0, 1, 2, 3}}, Config{}, opt); err == nil {
		t.Error("no devices accepted")
	}
	if _, err := AutoSplit(ix, []*cl.Device{cl.SystemOneCPU()}, nil, Config{}, opt); err == nil {
		t.Error("no sample accepted")
	}
}
