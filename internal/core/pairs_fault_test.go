package core

import (
	"reflect"
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func samePairs(t *testing.T, want, got [][]mapper.Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("pair counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("fragment %d pairs differ:\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

// TestMapPairsRecoversFromFaultPlan extends the PR 3 acceptance scenario
// to paired-end mapping: with transient launch failures, an injected
// allocation failure and a permanent device loss spread across a
// two-device split, MapPairs must return pairs and per-mate mappings
// bit-identical to a fault-free serial single-device run. The plans hit
// both mate batches (the second Map call continues the devices' fault
// ordinals), so recovery is exercised across the mate boundary.
func TestMapPairsRecoversFromFaultPlan(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, _, mkDevs, maxLoc := faultWorld(t, 120)
	ps, err := simulate.PairedReads(ref, 60, simulate.ERR012100, 300, 30, 77)
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.PairOptions{Options: mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.MapPairs(ps.Reads1, ps.Reads2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Faults.Any() {
		t.Fatalf("fault-free baseline reports recovery: %+v", baseline.Faults)
	}

	devs := mkDevs()
	// Device A: a transient launch failure during mate 1 and an injected
	// allocation failure whose ordinal lands on a mate 2 batch buffer.
	devs[0].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{2: cl.OutOfResources},
		FailAllocs:   map[int]cl.Code{10: cl.MemObjectAllocationFailure},
	})
	// Device B survives mate 1, then dies for good early in mate 2.
	devs[1].InstallFaults(&cl.FaultPlan{
		FailEnqueues: map[int]cl.Code{4: cl.DeviceNotAvailable},
	})
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.MapPairs(ps.Reads1, ps.Reads2, opt)
	if err != nil {
		t.Fatal(err)
	}

	samePairs(t, baseline.Pairs, res.Pairs)
	sameMappings(t, baseline.Single1, res.Single1)
	sameMappings(t, baseline.Single2, res.Single2)

	f := res.Faults
	if !f.Any() {
		t.Fatal("fault plans injected nothing — the comparison is vacuous")
	}
	if f.Retries < 1 {
		t.Errorf("transient retry not accounted: %+v", f)
	}
	if f.DegradedBatches < 1 {
		t.Errorf("batch halving not accounted: %+v", f)
	}
	if f.FailoverReads < 1 || len(f.FailedDevices) != 1 || f.FailedDevices[0] != "CPU-B" {
		t.Errorf("failover not accounted: %+v", f)
	}
}

// TestMapPairsFaultDeterminismSerialParallel: the paired-end recovery
// path must stay bit-identical between host execution modes, like the
// single-end path PR 3 covered.
func TestMapPairsFaultDeterminismSerialParallel(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, _, mkDevs, maxLoc := faultWorld(t, 120)
	ps, err := simulate.PairedReads(ref, 60, simulate.ERR012100, 300, 30, 78)
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.PairOptions{Options: mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}}

	run := func(mode cl.ExecMode) *mapper.PairResult {
		devs := mkDevs()
		devs[0].InstallFaults(&cl.FaultPlan{
			FailEnqueues: map[int]cl.Code{2: cl.OutOfResources},
			FailAllocs:   map[int]cl.Code{10: cl.MemObjectAllocationFailure},
		})
		devs[1].InstallFaults(&cl.FaultPlan{
			FailEnqueues: map[int]cl.Code{4: cl.DeviceNotAvailable},
		})
		p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.MapPairs(ps.Reads1, ps.Reads2, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(cl.Serial)
	parallel := run(cl.Parallel)
	samePairs(t, serial.Pairs, parallel.Pairs)
	if serial.SimSeconds != parallel.SimSeconds || serial.EnergyJ != parallel.EnergyJ ||
		serial.Cost != parallel.Cost {
		t.Errorf("simulated results differ:\nserial   %v/%v/%+v\nparallel %v/%v/%+v",
			serial.SimSeconds, serial.EnergyJ, serial.Cost,
			parallel.SimSeconds, parallel.EnergyJ, parallel.Cost)
	}
	if !reflect.DeepEqual(serial.Faults, parallel.Faults) {
		t.Errorf("FaultStats differ:\nserial   %+v\nparallel %+v",
			serial.Faults, parallel.Faults)
	}
	if !serial.Faults.Any() {
		t.Error("fault plans injected nothing — the comparison is vacuous")
	}
}
