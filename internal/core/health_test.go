package core

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cl"
	"repro/internal/mapper"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// tripBreaker arms a breaker on dev with cfg and trips it open, the way
// a lost device would have.
func tripBreaker(t *testing.T, dev *cl.Device, cfg cl.BreakerConfig) *cl.Breaker {
	t.Helper()
	b := dev.EnableBreaker(cfg)
	if st, changed := b.RecordFailure(&cl.Error{
		Code: cl.DeviceNotAvailable, Op: "enqueue", Device: dev.Name,
	}); st != cl.BreakerOpen || !changed {
		t.Fatalf("tripping breaker on %s: state %v changed %v", dev.Name, st, changed)
	}
	return b
}

func countInstants(rec *trace.Recorder, name string) int {
	n := 0
	for _, ev := range rec.Events() {
		if ev.Name == name {
			n++
		}
	}
	return n
}

// TestMapQuarantinesOpenBreaker: a device whose breaker is open never
// runs — its initial share redistributes to the healthy partner before
// the first round, the mappings match a fault-free baseline, and the
// quarantine is visible as an instant rather than a device failure.
func TestMapQuarantinesOpenBreaker(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 80)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	devs := mkDevs()
	// CooldownSkips 3: one Map call ticks Skipped once, so the breaker
	// stays open for the whole run and CPU-B is fully quarantined.
	tripBreaker(t, devs[1], cl.BreakerConfig{CooldownSkips: 3})
	rec := trace.NewRecorder()
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, baseline.Mappings, res.Mappings)
	if res.DeviceSeconds["CPU-B"] != 0 {
		t.Errorf("quarantined CPU-B ran anyway: %v", res.DeviceSeconds)
	}
	if len(res.Faults.FailedDevices) != 0 {
		t.Errorf("quarantine recorded as device failure: %v", res.Faults.FailedDevices)
	}
	if n := countInstants(rec, "quarantine-skip"); n != 1 {
		t.Errorf("quarantine-skip instants = %d, want 1", n)
	}
	if got := devs[1].BreakerState(); got != cl.BreakerOpen {
		t.Errorf("breaker state after one pass-over = %v, want still open", got)
	}
}

// TestMapAllQuarantinedErrors: when every device is quarantined the run
// fails up front with a typed message instead of hanging.
func TestMapAllQuarantinedErrors(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set := testWorld(t, 20_000, 20, simulate.ERR012100)
	dev := cl.SystemOneCPU()
	tripBreaker(t, dev, cl.BreakerConfig{CooldownSkips: 5})
	p, err := New(ref, []*cl.Device{dev}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Map(set.Reads, mapper.Options{MaxErrors: 3, MaxLocations: 50})
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("all-quarantined Map error = %v, want quarantine message", err)
	}
}

// TestWatchdogChaosMatchesBaseline: a throttle window deep enough to
// overrun the watchdog budget kills two enqueues mid-run; both are
// retried in place and the mappings stay bit-identical to a fault-free
// baseline, serially and in parallel, with the kills visible only in
// FaultStats.WatchdogFires. The armed breaker absorbs the two transient
// kills without tripping (score 2 < threshold 3, then decay).
func TestWatchdogChaosMatchesBaseline(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	ref, set, mkDevs, maxLoc := faultWorld(t, 80)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	run := func(mode cl.ExecMode) (*mapper.Result, *trace.Recorder, []*cl.Device) {
		devs := mkDevs()
		devs[0].SetWatchdog(4)
		devs[0].EnableBreaker(cl.BreakerConfig{})
		// Factor 0.1 slows the compute 10×, past the 4× budget: enqueue
		// ordinals 2 and 3 are watchdog-killed, their retries land on
		// clean ordinals.
		devs[0].InstallFaults(&cl.FaultPlan{
			Throttles: []cl.Throttle{{From: 2, To: 3, Factor: 0.1}},
		})
		rec := trace.NewRecorder()
		p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: mode, Tracer: rec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec, devs
	}
	serial, rec, devs := run(cl.Serial)
	parallel, _, _ := run(cl.Parallel)

	sameMappings(t, baseline.Mappings, serial.Mappings)
	sameMappings(t, baseline.Mappings, parallel.Mappings)
	if serial.Faults.WatchdogFires != 2 {
		t.Errorf("WatchdogFires = %d, want 2", serial.Faults.WatchdogFires)
	}
	if serial.Faults.Retries < 2 {
		t.Errorf("watchdog kills were not retried: %+v", serial.Faults)
	}
	if len(serial.Faults.FailedDevices) != 0 {
		t.Errorf("recovered watchdog kills failed the device: %v", serial.Faults.FailedDevices)
	}
	if !reflect.DeepEqual(serial.Faults, parallel.Faults) {
		t.Errorf("FaultStats differ:\nserial   %+v\nparallel %+v",
			serial.Faults, parallel.Faults)
	}
	if n := countInstants(rec, "watchdog-fired"); n != 2 {
		t.Errorf("watchdog-fired instants = %d, want 2", n)
	}
	if got := devs[0].BreakerState(); got != cl.BreakerClosed {
		t.Errorf("breaker after two absorbed kills = %v, want closed", got)
	}
}

// TestWatchdogTripsBreakerAndFailsOver: with a breaker threshold of 2, a
// sustained throttle turns the second watchdog kill into a breaker trip;
// the in-place retry tier stands down and the device's share fails over
// to its partner with the mappings intact.
func TestWatchdogTripsBreakerAndFailsOver(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 80)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	devs := mkDevs()
	devs[0].SetWatchdog(4)
	devs[0].EnableBreaker(cl.BreakerConfig{FailureThreshold: 2})
	// Every enqueue in the window overruns: kill → retry → kill → breaker
	// opens at score 2 → no third in-place retry, CPU-A fails over.
	devs[0].InstallFaults(&cl.FaultPlan{
		Throttles: []cl.Throttle{{From: 1, To: 8, Factor: 0.1}},
	})
	rec := trace.NewRecorder()
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, baseline.Mappings, res.Mappings)
	if res.Faults.WatchdogFires != 2 {
		t.Errorf("WatchdogFires = %d, want 2 (kill, retried kill)", res.Faults.WatchdogFires)
	}
	if len(res.Faults.FailedDevices) != 1 || res.Faults.FailedDevices[0] != "CPU-A" {
		t.Errorf("FailedDevices = %v, want [CPU-A]", res.Faults.FailedDevices)
	}
	if res.Faults.FailoverReads < 1 {
		t.Errorf("no failover accounted: %+v", res.Faults)
	}
	if got := devs[0].BreakerState(); got != cl.BreakerOpen {
		t.Errorf("breaker after threshold trip = %v, want open", got)
	}
	if n := countInstants(rec, "breaker-open"); n != 1 {
		t.Errorf("breaker-open instants = %d, want 1", n)
	}
}

// TestShardedQuarantineMatchesSingle extends quarantine to the sharded
// geometry: the open-breaker device's shard dispatch rehomes onto the
// healthy device and the merged mappings equal the single-index run.
func TestShardedQuarantineMatchesSingle(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 80)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	single, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	devs := mkDevs()
	tripBreaker(t, devs[1], cl.BreakerConfig{CooldownSkips: 3})
	p, err := NewSharded(makeShards(ref, 3, 256, 0), 256, devs, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, want.Mappings, got.Mappings)
	if got.DeviceSeconds["CPU-B"] != 0 {
		t.Errorf("quarantined CPU-B ran in sharded dispatch: %v", got.DeviceSeconds)
	}
}

// TestHalfOpenCanaryReadmission: quarantine is not forever. Each Map
// call that passes over an open breaker ticks its cooldown; once the
// breaker goes half-open the device is eligible again, its first
// operation is the canary, and a clean run re-closes the breaker.
func TestHalfOpenCanaryReadmission(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	ref, set, mkDevs, maxLoc := faultWorld(t, 80)
	opt := mapper.Options{MaxErrors: 3, MaxLocations: maxLoc}

	baselineP, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baselineP.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	devs := mkDevs()
	brk := tripBreaker(t, devs[1], cl.BreakerConfig{CooldownSkips: 2})
	rec := trace.NewRecorder()
	p, err := New(ref, devs, Config{Split: []float64{0.5, 0.5}, Exec: cl.Serial, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}

	// Map 1: pass-over #1 — still open, CPU-B quarantined.
	res1, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, baseline.Mappings, res1.Mappings)
	if got := brk.State(); got != cl.BreakerOpen {
		t.Fatalf("breaker after first pass-over = %v, want open", got)
	}

	// Map 2: pass-over #2 reaches CooldownSkips — half-open, CPU-B runs
	// its canary share and the first success re-closes the breaker.
	res2, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameMappings(t, baseline.Mappings, res2.Mappings)
	if got := brk.State(); got != cl.BreakerClosed {
		t.Errorf("breaker after clean canary = %v, want closed", got)
	}
	if got := brk.Readmits(); got != 1 {
		t.Errorf("Readmits = %d, want 1", got)
	}
	if res2.DeviceSeconds["CPU-B"] <= 0 {
		t.Errorf("readmitted CPU-B never ran: %v", res2.DeviceSeconds)
	}
	if n := countInstants(rec, "breaker-half-open"); n != 1 {
		t.Errorf("breaker-half-open instants = %d, want 1", n)
	}
	if n := countInstants(rec, "breaker-closed"); n != 1 {
		t.Errorf("breaker-closed instants = %d, want 1", n)
	}
}
