package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cl"
	"repro/internal/fastx"
	"repro/internal/mapper"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// sliceSource adapts an in-memory read set into a MapStream source.
func sliceSource(reads [][]byte, batch int) func() (StreamBatch, error) {
	i, idx := 0, 0
	return func() (StreamBatch, error) {
		b := StreamBatch{Index: idx, Start: i}
		for len(b.Reads) < batch && i < len(reads) {
			b.Names = append(b.Names, fmt.Sprintf("r%d", i))
			b.Reads = append(b.Reads, reads[i])
			i++
		}
		idx++
		return b, nil
	}
}

// TestMapStreamMatchesInMemory is the streaming-equivalence contract:
// MapStream over batched reads produces the same mappings as one
// in-memory Map over the whole set, and the same aggregate accounting,
// trace and metrics as an in-memory run batched identically — serial and
// parallel (CI runs this under -race).
func TestMapStreamMatchesInMemory(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	ref, set := testWorld(t, 40_000, 60, simulate.ERR012100)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	const batch = 13

	for _, mode := range []cl.ExecMode{cl.Serial, cl.Parallel} {
		t.Run(mode.String(), func(t *testing.T) {
			// Whole-set baseline: mappings are per-read, so batch size
			// must not affect them.
			pw, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: mode})
			if err != nil {
				t.Fatal(err)
			}
			whole, err := pw.Map(set.Reads, opt)
			if err != nil {
				t.Fatal(err)
			}

			// Batched in-memory baseline: same batch boundaries as the
			// stream, so launch-overhead accounting and traces line up.
			recMem := trace.NewRecorder()
			pm, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: mode, Tracer: recMem})
			if err != nil {
				t.Fatal(err)
			}
			var memMaps [][]mapper.Mapping
			memAgg := &mapper.Result{DeviceSeconds: map[string]float64{}}
			for start := 0; start < len(set.Reads); start += batch {
				end := start + batch
				if end > len(set.Reads) {
					end = len(set.Reads)
				}
				res, err := pm.Map(set.Reads[start:end], opt)
				if err != nil {
					t.Fatal(err)
				}
				memMaps = append(memMaps, res.Mappings...)
				memAgg.SimSeconds += res.SimSeconds
				memAgg.EnergyJ += res.EnergyJ
				for dev, sec := range res.DeviceSeconds {
					memAgg.DeviceSeconds[dev] += sec
				}
				memAgg.Cost.Add(res.Cost)
			}

			recStream := trace.NewRecorder()
			ps, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Exec: mode, Tracer: recStream})
			if err != nil {
				t.Fatal(err)
			}
			var streamMaps [][]mapper.Mapping
			sr, err := ps.MapStream(context.Background(), sliceSource(set.Reads, batch), opt,
				func(b StreamBatch, res *mapper.Result) error {
					streamMaps = append(streamMaps, res.Mappings...)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}

			if sr.Reads != len(set.Reads) {
				t.Errorf("streamed %d reads, want %d", sr.Reads, len(set.Reads))
			}
			if want := (len(set.Reads) + batch - 1) / batch; sr.Batches != want {
				t.Errorf("streamed %d batches, want %d", sr.Batches, want)
			}
			if !reflect.DeepEqual(streamMaps, whole.Mappings) {
				t.Error("streamed mappings differ from whole-set in-memory Map")
			}
			if !reflect.DeepEqual(streamMaps, memMaps) {
				t.Error("streamed mappings differ from batched in-memory Map")
			}
			if sr.SimSeconds != memAgg.SimSeconds || sr.EnergyJ != memAgg.EnergyJ {
				t.Errorf("aggregate accounting differs: stream %v s / %v J, memory %v s / %v J",
					sr.SimSeconds, sr.EnergyJ, memAgg.SimSeconds, memAgg.EnergyJ)
			}
			if sr.Cost != memAgg.Cost {
				t.Errorf("cost differs:\nstream %+v\nmemory %+v", sr.Cost, memAgg.Cost)
			}
			if !reflect.DeepEqual(sr.DeviceSeconds, memAgg.DeviceSeconds) {
				t.Errorf("device seconds differ:\nstream %v\nmemory %v",
					sr.DeviceSeconds, memAgg.DeviceSeconds)
			}
			if sr.Mapped != whole.MappedReads() || sr.Locations != whole.TotalLocations() {
				t.Errorf("tallies differ: stream %d/%d, whole %d/%d",
					sr.Mapped, sr.Locations, whole.MappedReads(), whole.TotalLocations())
			}

			// Metrics snapshots must match byte-for-byte. The stream's
			// extra "stream-batch" host instants are deliberately not
			// derived into any metric, so the registries coincide.
			var memJSON, streamJSON bytes.Buffer
			if err := recMem.Metrics().WriteJSON(&memJSON); err != nil {
				t.Fatal(err)
			}
			if err := recStream.Metrics().WriteJSON(&streamJSON); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(memJSON.Bytes(), streamJSON.Bytes()) {
				t.Errorf("metrics snapshots differ:\nmemory %s\nstream %s",
					memJSON.String(), streamJSON.String())
			}
		})
	}
}

// TestMapStreamStop checks the graceful-stop contract: emit returning
// Stop ends the run at a batch boundary with the partial aggregate and
// the sentinel itself.
func TestMapStreamStop(t *testing.T) {
	ref, set := testWorld(t, 20_000, 30, simulate.ERR012100)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 50}
	batches := 0
	sr, err := p.MapStream(context.Background(), sliceSource(set.Reads, 10), opt,
		func(b StreamBatch, res *mapper.Result) error {
			batches++
			if batches == 2 {
				return Stop
			}
			return nil
		})
	if err != Stop {
		t.Fatalf("err = %v, want Stop", err)
	}
	if sr.Batches != 2 || sr.Reads != 20 {
		t.Errorf("partial aggregate: %d batches / %d reads, want 2 / 20", sr.Batches, sr.Reads)
	}
}

// TestMapStreamScanSourceLenient runs a dirty FASTQ through the full
// scanner → codec → MapStream path and checks that skipped records (both
// malformed and unmappably short) land in the stream result's FaultStats
// and in the metrics registry.
func TestMapStreamScanSourceLenient(t *testing.T) {
	ref, set := testWorld(t, 20_000, 24, simulate.ERR012100)
	var fq strings.Builder
	for i, r := range set.Reads {
		seq := make([]byte, len(r))
		for j, c := range r {
			seq[j] = "ACGT"[c]
		}
		fmt.Fprintf(&fq, "@r%d\n%s\n+\n%s\n", i, seq, strings.Repeat("I", len(seq)))
		switch i {
		case 5: // malformed: quality shorter than sequence
			fmt.Fprintf(&fq, "@bad%d\nACGTACGT\n+\nIII\n", i)
		case 11: // unmappably short read (length <= MaxErrors)
			fmt.Fprintf(&fq, "@tiny%d\nACG\n+\nIII\n", i)
		case 17: // junk line between records
			fq.WriteString("not a record\n")
		}
	}

	rec := trace.NewRecorder()
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 50}
	sc := fastx.NewScanner(strings.NewReader(fq.String()),
		fastx.ScanOptions{Format: fastx.FormatFASTQ, Lenient: true, Name: "dirty.fq", Tracer: rec})
	src := NewScanSource(sc, fastx.NewCodec(0), 7, true, opt.MaxErrors, 0)

	sr, err := p.MapStream(context.Background(), src, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Reads != len(set.Reads) {
		t.Errorf("mapped %d reads, want %d", sr.Reads, len(set.Reads))
	}
	if sr.Faults.SkippedRecords != 3 {
		t.Errorf("SkippedRecords = %d, want 3 (%v)", sr.Faults.SkippedRecords, sr.Faults.SkipReasons)
	}
	want := map[string]int{
		fastx.ReasonLengthMismatch: 1,
		fastx.ReasonShortRead:      1,
		fastx.ReasonMissingHeader:  1,
	}
	if !reflect.DeepEqual(sr.Faults.SkipReasons, want) {
		t.Errorf("SkipReasons = %v, want %v", sr.Faults.SkipReasons, want)
	}
	if !sr.Faults.Any() {
		t.Error("FaultStats.Any() must report skipped records")
	}
	snap := rec.Metrics()
	if got := snap.Counters["records_skipped_total"]; got != 3 {
		t.Errorf("records_skipped_total = %d, want 3", got)
	}
	if got := snap.Counters["records_skipped_total/"+fastx.ReasonShortRead]; got != 1 {
		t.Errorf("records_skipped_total/short-read = %d, want 1", got)
	}
}

// TestMapStreamSourceError propagates a scanner parse failure (strict
// mode) out of MapStream.
func TestMapStreamSourceError(t *testing.T) {
	ref, _ := testWorld(t, 10_000, 1, simulate.ERR012100)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := fastx.NewScanner(strings.NewReader("@r\nACGT\n+\nIII\n"),
		fastx.ScanOptions{Format: fastx.FormatFASTQ})
	src := NewScanSource(sc, fastx.NewCodec(0), 4, false, 1, 0)
	_, err = p.MapStream(context.Background(), src, mapper.Options{MaxErrors: 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "length-mismatch") {
		t.Errorf("want length-mismatch parse error, got %v", err)
	}
}

// countStreamGoroutines waits (tolerating scheduler lag) for every
// MapStream producer goroutine to exit, and returns how many remain.
// Counting producers by stack frame rather than comparing raw
// runtime.NumGoroutine keeps the assertion immune to unrelated runtime
// or test-harness goroutines starting lazily mid-test.
func countStreamGoroutines() int {
	producers := func() int {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		return strings.Count(stacks, ").MapStream.func")
	}
	deadline := time.Now().Add(5 * time.Second)
	n := producers()
	for n > 0 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = producers()
	}
	return n
}

// TestMapStreamProducerExits is the producer-goroutine lifecycle
// regression test: on every early exit path — an emit callback failing
// mid-run, a context cancelled while batches are still queued — the
// producer goroutine must terminate rather than stay blocked on the
// capacity-1 batch channel. CI runs this under -race.
func TestMapStreamProducerExits(t *testing.T) {
	ref, set := testWorld(t, 20_000, 40, simulate.ERR012100)
	p, err := New(ref, []*cl.Device{cl.SystemOneCPU()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 50}

	t.Run("emit error", func(t *testing.T) {
		boom := errors.New("emit failed")
		for i := 0; i < 10; i++ {
			_, err := p.MapStream(context.Background(), sliceSource(set.Reads, 5), opt,
				func(b StreamBatch, res *mapper.Result) error { return boom })
			if err != boom {
				t.Fatalf("err = %v, want emit error", err)
			}
		}
		if n := countStreamGoroutines(); n > 0 {
			t.Errorf("%d producer goroutine(s) alive after emit-error exits", n)
		}
	})

	t.Run("context cancelled", func(t *testing.T) {
		for i := 0; i < 10; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			_, err := p.MapStream(ctx, sliceSource(set.Reads, 5), opt,
				func(b StreamBatch, res *mapper.Result) error {
					cancel()
					return nil
				})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		}
		if n := countStreamGoroutines(); n > 0 {
			t.Errorf("%d producer goroutine(s) alive after cancelled runs", n)
		}
	})

	t.Run("pre-cancelled context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		sr, err := p.MapStream(ctx, sliceSource(set.Reads, 5), opt, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if sr.Batches != 0 {
			t.Errorf("pre-cancelled run mapped %d batches, want 0", sr.Batches)
		}
		if n := countStreamGoroutines(); n > 0 {
			t.Errorf("%d producer goroutine(s) alive after pre-cancelled run", n)
		}
	})
}
