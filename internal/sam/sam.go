// Package sam reads and writes SAM-format alignments. The paper notes
// REPUTE reports position/strand/edit-distance without SAM or CIGAR
// output and leaves both to future versions — this package is that
// future version's format layer: single- and multi-contig headers,
// primary/secondary records with NM tags and optional CIGARs, MAPQ
// fields, properly-paired mate records, and a parser plus per-read
// grouping for the accuracy tooling.
package sam

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mapper"
)

// Flag bits used here.
const (
	FlagPaired       = 0x1
	FlagProperPair   = 0x2
	FlagUnmapped     = 0x4
	FlagMateUnmapped = 0x8
	FlagReverse      = 0x10
	FlagMateReverse  = 0x20
	FlagFirstInPair  = 0x40
	FlagSecondInPair = 0x80
	FlagSecondary    = 0x100
)

// Writer emits SAM to an underlying writer.
type Writer struct {
	bw      *bufio.Writer
	refName string
}

// RefSeq names one reference sequence for the header.
type RefSeq struct {
	Name   string
	Length int
}

// NewWriter writes the header for a single-reference file and returns the
// writer.
func NewWriter(w io.Writer, refName string, refLen int) (*Writer, error) {
	return NewMultiWriter(w, []RefSeq{{Name: refName, Length: refLen}})
}

// NewMultiWriter writes a header with one @SQ line per reference sequence
// (multi-contig genomes). The first contig becomes the default RNAME for
// WriteRead; use WriteAlignments for per-record contigs.
func NewMultiWriter(w io.Writer, refs []RefSeq) (*Writer, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("sam: no reference sequences")
	}
	sw := &Writer{bw: bufio.NewWriter(w), refName: refs[0].Name}
	if _, err := fmt.Fprintf(sw.bw, "@HD\tVN:1.6\tSO:unknown\n"); err != nil {
		return nil, err
	}
	for _, r := range refs {
		if _, err := fmt.Fprintf(sw.bw, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length); err != nil {
			return nil, err
		}
	}
	if _, err := fmt.Fprintf(sw.bw, "@PG\tID:repute\tPN:repute\n"); err != nil {
		return nil, err
	}
	return sw, nil
}

// NewAppendWriter returns a Writer that emits alignment records without
// a header — for appending to a SAM file whose header (and a prefix of
// records) an earlier, interrupted run already wrote. defaultRef becomes
// the default RNAME for WriteRead, matching the original writer's first
// contig.
func NewAppendWriter(w io.Writer, defaultRef string) *Writer {
	return &Writer{bw: bufio.NewWriter(w), refName: defaultRef}
}

// Alignment is one fully-specified output line for WriteAlignments.
type Alignment struct {
	RName  string
	Pos    int32 // 0-based contig coordinate
	Strand byte
	Dist   uint8
	Cigar  string // empty means "*"
	// MAPQ is the mapping quality (mapper.EstimateMAPQ); writers emit it
	// verbatim, so leave 255 for "unavailable" if unknown.
	MAPQ uint8
}

// WriteAlignments emits the read's alignment lines with explicit contig
// names (the first is primary), or an unmapped record when alns is empty.
func (w *Writer) WriteAlignments(name string, seq []byte, alns []Alignment) error {
	seqField := "*"
	if len(seq) > 0 {
		seqField = string(seq)
	}
	if len(alns) == 0 {
		_, err := fmt.Fprintf(w.bw, "%s\t%d\t*\t0\t0\t*\t*\t0\t0\t%s\t*\n",
			name, FlagUnmapped, seqField)
		return err
	}
	for i, a := range alns {
		flag := 0
		if a.Strand == mapper.Reverse {
			flag |= FlagReverse
		}
		if i > 0 {
			flag |= FlagSecondary
		}
		sf := seqField
		if i > 0 {
			sf = "*"
		}
		cig := a.Cigar
		if cig == "" {
			cig = "*"
		}
		_, err := fmt.Fprintf(w.bw, "%s\t%d\t%s\t%d\t%d\t%s\t*\t0\t0\t%s\t*\tNM:i:%d\n",
			name, flag, a.RName, a.Pos+1, a.MAPQ, cig, sf, a.Dist)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteRead emits all mappings of one read (first as primary, rest as
// secondary), or an unmapped record when ms is empty. seq is the ASCII
// sequence (may be empty to write '*').
func (w *Writer) WriteRead(name string, seq []byte, ms []mapper.Mapping) error {
	return w.WriteReadCigars(name, seq, ms, nil)
}

// WriteReadCigars is WriteRead with per-mapping CIGAR strings (use
// align.Cigar.String() or any SAM-valid value). cigars may be nil or
// shorter than ms; missing entries are written as "*".
func (w *Writer) WriteReadCigars(name string, seq []byte, ms []mapper.Mapping, cigars []string) error {
	seqField := "*"
	if len(seq) > 0 {
		seqField = string(seq)
	}
	if len(ms) == 0 {
		_, err := fmt.Fprintf(w.bw, "%s\t%d\t*\t0\t0\t*\t*\t0\t0\t%s\t*\n",
			name, FlagUnmapped, seqField)
		return err
	}
	for i, m := range ms {
		flag := 0
		if m.Strand == mapper.Reverse {
			flag |= FlagReverse
		}
		if i > 0 {
			flag |= FlagSecondary
		}
		sf := seqField
		if i > 0 {
			sf = "*" // secondary records omit the sequence
		}
		cig := "*"
		if i < len(cigars) && cigars[i] != "" {
			cig = cigars[i]
		}
		_, err := fmt.Fprintf(w.bw, "%s\t%d\t%s\t%d\t255\t%s\t*\t0\t0\t%s\t*\tNM:i:%d\n",
			name, flag, w.refName, m.Pos+1, cig, sf, m.Dist)
		if err != nil {
			return err
		}
	}
	return nil
}

// WritePair emits one concordant pair as two properly-paired records with
// mate fields (RNEXT "=", PNEXT, signed TLEN). seq1/seq2 may be nil.
func (w *Writer) WritePair(name string, seq1, seq2 []byte, p mapper.Pair, rname string) error {
	if rname == "" {
		rname = w.refName
	}
	write := func(self, mate mapper.Mapping, selfFirst bool, seq []byte, tlen int32) error {
		flag := FlagPaired | FlagProperPair
		if self.Strand == mapper.Reverse {
			flag |= FlagReverse
		}
		if mate.Strand == mapper.Reverse {
			flag |= FlagMateReverse
		}
		if selfFirst {
			flag |= FlagFirstInPair
		} else {
			flag |= FlagSecondInPair
		}
		sf := "*"
		if len(seq) > 0 {
			sf = string(seq)
		}
		_, err := fmt.Fprintf(w.bw, "%s\t%d\t%s\t%d\t255\t*\t=\t%d\t%d\t%s\t*\tNM:i:%d\n",
			name, flag, rname, self.Pos+1, mate.Pos+1, tlen, sf, self.Dist)
		return err
	}
	// TLEN sign convention: positive for the leftmost mate.
	t1, t2 := p.Insert, -p.Insert
	if p.First.Pos > p.Second.Pos {
		t1, t2 = -p.Insert, p.Insert
	}
	if err := write(p.First, p.Second, true, seq1, t1); err != nil {
		return err
	}
	return write(p.Second, p.First, false, seq2, t2)
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Record is a parsed alignment line (header lines are skipped).
type Record struct {
	Name   string
	Flag   int
	RefPos int32 // 0-based; -1 for unmapped
	Dist   int   // NM tag, -1 if absent
}

// Strand derives the strand byte from the flags.
func (r Record) Strand() byte {
	if r.Flag&FlagReverse != 0 {
		return mapper.Reverse
	}
	return mapper.Forward
}

// Unmapped reports the unmapped flag.
func (r Record) Unmapped() bool { return r.Flag&FlagUnmapped != 0 }

// GroupByRead converts parsed records into per-read mapping lists keyed
// by read name, in the form internal/eval consumes. Unmapped records
// yield an empty (but present) entry; mapping lists come out sorted the
// way mapper.Finalize emits them.
func GroupByRead(recs []Record) map[string][]mapper.Mapping {
	out := make(map[string][]mapper.Mapping)
	for _, r := range recs {
		if _, ok := out[r.Name]; !ok {
			out[r.Name] = nil
		}
		if r.Unmapped() {
			continue
		}
		dist := r.Dist
		if dist < 0 {
			dist = 0
		}
		out[r.Name] = append(out[r.Name], mapper.Mapping{
			Pos:    r.RefPos,
			Strand: r.Strand(),
			Dist:   uint8(dist),
		})
	}
	for name, ms := range out {
		out[name] = mapper.Finalize(ms, false, 0)
	}
	return out
}

// Parse reads alignment records from SAM text, skipping headers.
func Parse(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var recs []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "@") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 11 {
			return nil, fmt.Errorf("sam: line %d: %d fields, want >= 11", lineNo, len(fields))
		}
		flag, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sam: line %d: bad flag %q", lineNo, fields[1])
		}
		pos, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("sam: line %d: bad pos %q", lineNo, fields[3])
		}
		rec := Record{Name: fields[0], Flag: flag, RefPos: int32(pos) - 1, Dist: -1}
		if flag&FlagUnmapped != 0 {
			rec.RefPos = -1
		}
		for _, tag := range fields[11:] {
			if strings.HasPrefix(tag, "NM:i:") {
				if v, err := strconv.Atoi(tag[5:]); err == nil {
					rec.Dist = v
				}
			}
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
