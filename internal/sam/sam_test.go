package sam

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/mapper"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "chr21", 46_709_983)
	if err != nil {
		t.Fatal(err)
	}
	ms := []mapper.Mapping{
		{Pos: 99, Strand: mapper.Forward, Dist: 2},
		{Pos: 500, Strand: mapper.Reverse, Dist: 3},
	}
	if err := w.WriteRead("r1", []byte("ACGT"), ms); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRead("r2", []byte("GGGG"), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "@SQ\tSN:chr21\tLN:46709983") {
		t.Errorf("missing @SQ header in:\n%s", out)
	}

	recs, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records want 3", len(recs))
	}
	r := recs[0]
	if r.Name != "r1" || r.RefPos != 99 || r.Strand() != mapper.Forward || r.Dist != 2 {
		t.Errorf("primary = %+v", r)
	}
	if recs[1].Flag&FlagSecondary == 0 {
		t.Error("second location not flagged secondary")
	}
	if recs[1].Strand() != mapper.Reverse || recs[1].RefPos != 500 {
		t.Errorf("secondary = %+v", recs[1])
	}
	if !recs[2].Unmapped() || recs[2].RefPos != -1 {
		t.Errorf("unmapped = %+v", recs[2])
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	if _, err := Parse(strings.NewReader("r1\tnotanumber\t*\t0\t0\t*\t*\t0\t0\t*\t*\n")); err == nil {
		t.Error("bad flag accepted")
	}
	if _, err := Parse(strings.NewReader("too\tfew\tfields\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := Parse(strings.NewReader("r1\t0\tchr\tnope\t0\t*\t*\t0\t0\t*\t*\n")); err == nil {
		t.Error("bad pos accepted")
	}
}

func TestParseSkipsHeadersAndBlank(t *testing.T) {
	in := "@HD\tVN:1.6\n\n@SQ\tSN:x\tLN:10\nr\t0\tx\t1\t255\t*\t*\t0\t0\tAC\t*\n"
	recs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RefPos != 0 {
		t.Errorf("recs = %+v", recs)
	}
	if recs[0].Dist != -1 {
		t.Errorf("absent NM parsed as %d want -1", recs[0].Dist)
	}
}

func TestGroupByRead(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "c", 1000)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRead("a", nil, []mapper.Mapping{
		{Pos: 30, Strand: mapper.Forward, Dist: 1},
		{Pos: 10, Strand: mapper.Reverse, Dist: 2},
	})
	w.WriteRead("b", nil, nil) // unmapped
	w.Flush()
	recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupByRead(recs)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	a := groups["a"]
	if len(a) != 2 || a[0].Pos != 10 || a[1].Pos != 30 {
		t.Errorf("group a = %+v (want sorted by pos)", a)
	}
	if a[0].Strand != mapper.Reverse || a[0].Dist != 2 {
		t.Errorf("group a[0] = %+v", a[0])
	}
	if ms, ok := groups["b"]; !ok || len(ms) != 0 {
		t.Errorf("unmapped read b = %v present=%v", ms, ok)
	}
}

func TestWriteReadCigars(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "c", 1000)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteReadCigars("r", []byte("ACGT"), []mapper.Mapping{
		{Pos: 5, Strand: mapper.Forward, Dist: 1},
		{Pos: 50, Strand: mapper.Forward, Dist: 2},
	}, []string{"2M1I1M"})
	w.Flush()
	out := buf.String()
	if !strings.Contains(out, "\t2M1I1M\t") {
		t.Errorf("cigar missing:\n%s", out)
	}
	// Second mapping had no cigar supplied: must fall back to *.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "\t*\t*\t0\t0\t") {
		t.Errorf("secondary record cigar not *: %s", last)
	}
}

func TestWritePair(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "c", 100000)
	if err != nil {
		t.Fatal(err)
	}
	p := mapper.Pair{
		First:      mapper.Mapping{Pos: 1000, Strand: mapper.Forward, Dist: 1},
		Second:     mapper.Mapping{Pos: 1300, Strand: mapper.Reverse, Dist: 0},
		Insert:     400,
		Concordant: true,
	}
	if err := w.WritePair("frag1", []byte("ACGT"), []byte("TTTT"), p, ""); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	recs, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d want 2", len(recs))
	}
	r1, r2 := recs[0], recs[1]
	if r1.Flag&FlagPaired == 0 || r1.Flag&FlagProperPair == 0 || r1.Flag&FlagFirstInPair == 0 {
		t.Errorf("r1 flags %#x", r1.Flag)
	}
	if r2.Flag&FlagSecondInPair == 0 || r2.Flag&FlagReverse == 0 {
		t.Errorf("r2 flags %#x", r2.Flag)
	}
	if r1.Flag&FlagMateReverse == 0 {
		t.Errorf("r1 lacks mate-reverse: %#x", r1.Flag)
	}
	if r1.RefPos != 1000 || r2.RefPos != 1300 {
		t.Errorf("positions %d/%d", r1.RefPos, r2.RefPos)
	}
	// TLEN: +insert on the leftmost record, -insert on the rightmost.
	if !strings.Contains(buf.String(), "\t400\t") || !strings.Contains(buf.String(), "\t-400\t") {
		t.Errorf("TLEN signs missing:\n%s", buf.String())
	}
}

func TestPositionsAreOneBasedOnDisk(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "c", 100)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRead("r", nil, []mapper.Mapping{{Pos: 0, Strand: mapper.Forward}})
	w.Flush()
	if !strings.Contains(buf.String(), "\tc\t1\t") {
		t.Errorf("position 0 not written as 1:\n%s", buf.String())
	}
}

// TestAppendWriterContinuesFile is the streaming-resume contract: a file
// written as header + prefix records, then reopened and continued with
// NewAppendWriter, is byte-identical to writing everything in one pass.
func TestAppendWriterContinuesFile(t *testing.T) {
	alns := []Alignment{
		{RName: "chr1", Pos: 10, Strand: '+', Dist: 1, MAPQ: 40},
		{RName: "chr1", Pos: 99, Strand: '-', Dist: 0},
	}

	var whole bytes.Buffer
	w, err := NewWriter(&whole, "chr1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.WriteAlignments(fmt.Sprintf("r%d", i), []byte("ACGT"), alns); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var split bytes.Buffer
	w1, err := NewWriter(&split, "chr1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w1.WriteAlignments(fmt.Sprintf("r%d", i), []byte("ACGT"), alns); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	w2 := NewAppendWriter(&split, "chr1")
	for i := 2; i < 4; i++ {
		if err := w2.WriteAlignments(fmt.Sprintf("r%d", i), []byte("ACGT"), alns); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(whole.Bytes(), split.Bytes()) {
		t.Errorf("append-continued file differs from single-pass file:\nwhole:\n%s\nsplit:\n%s",
			whole.String(), split.String())
	}
}
