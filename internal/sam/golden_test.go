package sam_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/mapper"
	"repro/internal/sam"
	"repro/internal/simulate"
)

var update = flag.Bool("update", false, "rewrite the SAM golden file from the current pipeline output")

const goldenPath = "testdata/golden.sam"

// goldenSAM maps a fixed simulated read set on a serial single-CPU
// pipeline and renders it to SAM, CIGARs included — the full host output
// path end to end. Every knob is pinned (generator seeds, device, exec
// mode, mapper options), so the bytes are reproducible anywhere.
func goldenSAM(t *testing.T) []byte {
	t.Helper()
	ref := simulate.Reference(simulate.Chr21Like(30_000, 11))
	set, err := simulate.Reads(ref, 24, simulate.ERR012100, 12)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(ref, []*cl.Device{cl.SystemOneCPU()},
		core.Config{Name: "REPUTE-golden", Exec: cl.Serial})
	if err != nil {
		t.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 3, MaxLocations: 16}
	res, err := p.Map(set.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sw, err := sam.NewWriter(&buf, "sim21", len(ref))
	if err != nil {
		t.Fatal(err)
	}
	for i, ms := range res.Mappings {
		cigars := make([]string, len(ms))
		for j, m := range ms {
			cg, err := p.CigarFor(set.Reads[i], m, opt.MaxErrors)
			if err != nil {
				t.Fatalf("read %d mapping %d: %v", i, j, err)
			}
			cigars[j] = cg.String()
		}
		name := fmt.Sprintf("sim_read_%03d", i)
		if err := sw.WriteReadCigars(name, []byte(dna.Decode(set.Reads[i])), ms, cigars); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSAMGolden byte-diffs the pipeline's SAM output against the
// checked-in golden file. Regenerate after an intentional output change
// with: go test ./internal/sam -run TestSAMGolden -update
func TestSAMGolden(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "") // ambient chaos must not leak into golden bytes
	got := goldenSAM(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the first differing line, not a wall of bytes.
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("SAM output diverges from golden at line %d:\ngot  %q\nwant %q\n(-update regenerates)",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("SAM output length differs: got %d lines, golden has %d (-update regenerates)",
		len(gotLines), len(wantLines))
}

// TestSAMGoldenParses keeps the golden file itself honest: it must stay
// parseable by this package's reader and carry one primary record per
// simulated read.
func TestSAMGoldenParses(t *testing.T) {
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	defer f.Close()
	recs, err := sam.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	byRead := map[string]int{}
	for _, r := range recs {
		if r.Flag&sam.FlagSecondary == 0 {
			byRead[r.Name]++
		}
	}
	if len(byRead) != 24 {
		t.Errorf("golden covers %d reads, want 24", len(byRead))
	}
	for name, n := range byRead {
		if n != 1 {
			t.Errorf("read %s has %d primary records, want 1", name, n)
		}
	}
}
