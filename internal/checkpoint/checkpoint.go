// Package checkpoint makes streaming mapping runs crash-safe: at every
// batch boundary the host records how far it got — input byte offset,
// ambiguity-draw count, SAM output size, cumulative stats, and the
// fault-injection ordinals of every device — in a small deterministic
// JSON file, written atomically (temp file + rename) so a kill at any
// instant leaves either the previous checkpoint or the new one, never a
// torn file.
//
// A checkpoint is only valid against the exact reference index and
// mapping options that produced it: both are folded into a fingerprint,
// and resuming with a mismatched fingerprint fails with a typed
// *MismatchError instead of silently mixing incompatible outputs.
// Restoring the fault ordinals makes an injected REPUTE_CL_FAULTS
// schedule continue where the interrupted run stopped, so a killed and
// resumed chaos run is bit-identical to an uninterrupted one
// (DESIGN.md §11).
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cl"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

// Version is the checkpoint file format version.
const Version = 1

// State is everything a resumed run needs to continue a streaming map
// exactly where the interrupted run stopped.
type State struct {
	// Version is the file format version (reject anything newer).
	Version int `json:"version"`
	// Fingerprint binds the checkpoint to one reference index + options
	// combination (see Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// BatchSize is the streaming batch size of the interrupted run.
	BatchSize int `json:"batch_size"`
	// Batches and Reads count completed batches and reads.
	Batches int `json:"batches"`
	Reads   int `json:"reads"`
	// Offset is the input byte offset of the first unconsumed record;
	// Line the 1-based input line number at that point.
	Offset int64 `json:"offset"`
	Line   int   `json:"line,omitempty"`
	// RNGDraws counts the ambiguity substitutions drawn so far, so the
	// resumed codec replays the same pseudo-random bases (fastx.Codec).
	RNGDraws uint64 `json:"rng_draws,omitempty"`
	// SAMBytes is the size of the valid SAM prefix; resume truncates the
	// output here before appending (a kill between the SAM flush and the
	// checkpoint rename leaves a longer file, never a shorter one).
	SAMBytes int64 `json:"sam_bytes"`
	// Mapped, Locations and Dropped carry the cumulative summary tallies.
	Mapped    int `json:"mapped"`
	Locations int `json:"locations"`
	Dropped   int `json:"dropped,omitempty"`
	// SimSeconds, EnergyJ, DeviceSeconds and Cost accumulate the
	// simulated accounting across every completed batch.
	SimSeconds    float64            `json:"sim_seconds"`
	EnergyJ       float64            `json:"energy_j"`
	DeviceSeconds map[string]float64 `json:"device_seconds,omitempty"`
	Cost          cl.Cost            `json:"cost"`
	// Faults is the cumulative fault-recovery and skipped-record account.
	Faults mapper.FaultStats `json:"faults"`
	// FaultOrdinals snapshots each device's injection counters so an
	// armed fault plan continues its schedule instead of replaying it.
	FaultOrdinals map[string]cl.FaultOrdinals `json:"fault_ordinals,omitempty"`
}

// MismatchError reports a checkpoint whose fingerprint does not match
// the current run's reference index and mapping options.
type MismatchError struct {
	Got  string // fingerprint recorded in the checkpoint
	Want string // fingerprint of the current run
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: fingerprint mismatch: checkpoint %s vs current run %s (reference index or mapping options changed)",
		e.Got, e.Want)
}

// Verify checks the checkpoint against the current run's fingerprint.
func (st *State) Verify(fingerprint string) error {
	if st.Fingerprint != fingerprint {
		return &MismatchError{Got: st.Fingerprint, Want: fingerprint}
	}
	return nil
}

// Fingerprint hashes the reference index, the mapping options, and any
// extra run parameters that determine batch boundaries (selector, batch
// size, lenient flag, ...). Equal inputs hash to equal strings; the JSON
// struct-field order makes the encoding — and therefore the checkpoint
// file bytes — deterministic.
func Fingerprint(ix *fmindex.Index, opt mapper.Options, extra ...string) (string, error) {
	h := sha256.New()
	if _, err := ix.WriteTo(h); err != nil {
		return "", fmt.Errorf("checkpoint: fingerprint: %w", err)
	}
	o := opt.WithDefaults()
	fmt.Fprintf(h, "|e=%d|loc=%d|best=%t|smin=%d|freq=%d|retries=%d|backoff=%g|prefilter=%s",
		o.MaxErrors, o.MaxLocations, o.Best, o.MinSeedLen, o.MaxSeedFreq,
		o.Retries, o.RetryBackoffSimSec, o.Prefilter)
	for _, e := range extra {
		fmt.Fprintf(h, "|%s", e)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// FingerprintDigest is Fingerprint for runs mapping against a persistent
// index artifact: instead of re-serializing the in-memory index (linear
// in the reference on every resume), it hashes the artifact's container
// digest — already computed from the section checksums during load — with
// the same option and extra-parameter encoding. The artifact digest
// pins the exact index bytes, so the resume-safety guarantee is
// unchanged; only the fingerprint cost drops to O(1).
func FingerprintDigest(digest [32]byte, opt mapper.Options, extra ...string) string {
	h := sha256.New()
	h.Write(digest[:])
	o := opt.WithDefaults()
	fmt.Fprintf(h, "|e=%d|loc=%d|best=%t|smin=%d|freq=%d|retries=%d|backoff=%g|prefilter=%s",
		o.MaxErrors, o.MaxLocations, o.Best, o.MinSeedLen, o.MaxSeedFreq,
		o.Retries, o.RetryBackoffSimSec, o.Prefilter)
	for _, e := range extra {
		fmt.Fprintf(h, "|%s", e)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// DirError reports a checkpoint directory that cannot hold checkpoints —
// missing, not a directory, or not writable. CheckDir returns it at
// startup so a run fails before mapping work begins, not on the first
// batch-boundary Save.
type DirError struct {
	Dir string // the offending directory
	Err error  // the underlying cause
}

func (e *DirError) Error() string {
	return fmt.Sprintf("checkpoint: directory %s unusable: %v", e.Dir, e.Err)
}

func (e *DirError) Unwrap() error { return e.Err }

// CheckDir probes that dir exists, is a directory, and is writable by
// creating and removing a temp file — the same operations Save will
// perform. A failure comes back as a typed *DirError.
func CheckDir(dir string) error {
	fi, err := os.Stat(dir)
	if err != nil {
		return &DirError{Dir: dir, Err: err}
	}
	if !fi.IsDir() {
		return &DirError{Dir: dir, Err: fmt.Errorf("not a directory")}
	}
	f, err := os.CreateTemp(dir, ".ckpt-probe-*")
	if err != nil {
		return &DirError{Dir: dir, Err: err}
	}
	name := f.Name()
	f.Close()
	if err := os.Remove(name); err != nil {
		return &DirError{Dir: dir, Err: err}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss; filesystems that reject directory fsync (some network mounts)
// are tolerated, matching the usual write-ahead-log practice.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (os.IsPermission(err) || os.IsNotExist(err)) {
		return err
	}
	// EINVAL/ENOTSUP from Sync on exotic filesystems: the rename itself
	// still happened; treat as best-effort.
	return nil
}

// Save writes the checkpoint atomically and durably: marshal, write to
// a temp file in the same directory, fsync, rename over path, then
// fsync the parent directory so the new directory entry itself is on
// disk — without that last step a power cut after the rename can roll
// the directory back to the old entry (or none). Equal states produce
// byte-identical files.
func Save(path string, st *State) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads a checkpoint written by Save.
func Load(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st := &State{}
	if err := json.Unmarshal(b, st); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if st.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s: format version %d, this build reads %d",
			path, st.Version, Version)
	}
	return st, nil
}
