package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cl"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

func testIndex(t *testing.T, text []byte) *fmindex.Index {
	t.Helper()
	return fmindex.Build(text, fmindex.Options{})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := &State{
		Version:       Version,
		Fingerprint:   "abc123",
		BatchSize:     64,
		Batches:       3,
		Reads:         192,
		Offset:        40961,
		Line:          768,
		RNGDraws:      17,
		SAMBytes:      99182,
		Mapped:        180,
		Locations:     411,
		Dropped:       2,
		SimSeconds:    1.25,
		EnergyJ:       3.5,
		DeviceSeconds: map[string]float64{"cpu": 1.25},
		Faults: mapper.FaultStats{
			Retries:        2,
			SkippedRecords: 1,
			SkipReasons:    map[string]int{"length-mismatch": 1},
		},
		FaultOrdinals: map[string]cl.FaultOrdinals{"cpu": {Enqueues: 7, Allocs: 21}},
	}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	if err := Save(path, got); err != nil {
		t.Fatal(err)
	}
	b2, _ := os.ReadFile(path)
	if !bytes.Equal(b1, b2) {
		t.Error("save is not deterministic: re-saving a loaded state changed the bytes")
	}
	if got.Offset != st.Offset || got.RNGDraws != st.RNGDraws || got.SAMBytes != st.SAMBytes {
		t.Errorf("round-trip lost position state: %+v", got)
	}
	if got.FaultOrdinals["cpu"] != st.FaultOrdinals["cpu"] {
		t.Errorf("round-trip lost fault ordinals: %+v", got.FaultOrdinals)
	}
	if got.Faults.SkipReasons["length-mismatch"] != 1 {
		t.Errorf("round-trip lost skip reasons: %+v", got.Faults)
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, &State{Version: Version + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("newer format version must be rejected")
	}
}

func TestVerifyMismatchIsTyped(t *testing.T) {
	st := &State{Fingerprint: "old"}
	err := st.Verify("new")
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("want *MismatchError, got %v", err)
	}
	if me.Got != "old" || me.Want != "new" {
		t.Errorf("mismatch fields: %+v", me)
	}
	if err := st.Verify("old"); err != nil {
		t.Errorf("matching fingerprint must verify: %v", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	text := bytes.Repeat([]byte{0, 1, 2, 3, 2, 1}, 400)
	ix := testIndex(t, text)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}

	base, err := Fingerprint(ix, opt, "selector=dp")
	if err != nil {
		t.Fatal(err)
	}
	same, err := Fingerprint(ix, opt, "selector=dp")
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Error("fingerprint is not deterministic")
	}
	// Defaulted and explicit-default options must hash identically: a
	// resume that spells out the defaults is not a different run.
	expl, err := Fingerprint(ix, opt.WithDefaults(), "selector=dp")
	if err != nil {
		t.Fatal(err)
	}
	if expl != base {
		t.Error("explicit default options changed the fingerprint")
	}

	for name, fp := range map[string]func() (string, error){
		"options": func() (string, error) {
			o := opt
			o.MaxErrors = 5
			return Fingerprint(ix, o, "selector=dp")
		},
		"extras": func() (string, error) {
			return Fingerprint(ix, opt, "selector=coral")
		},
		"index": func() (string, error) {
			text2 := append(append([]byte(nil), text...), 0, 1, 2)
			return Fingerprint(testIndex(t, text2), opt, "selector=dp")
		},
	} {
		got, err := fp()
		if err != nil {
			t.Fatal(err)
		}
		if got == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestSaveIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, &State{Version: Version, Fingerprint: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, &State{Version: Version, Fingerprint: "b", Batches: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != "b" {
		t.Errorf("overwrite lost the newer state: %+v", st)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after rename")
	}
}
