package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cl"
	"repro/internal/fmindex"
	"repro/internal/mapper"
)

func testIndex(t *testing.T, text []byte) *fmindex.Index {
	t.Helper()
	return fmindex.Build(text, fmindex.Options{})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := &State{
		Version:       Version,
		Fingerprint:   "abc123",
		BatchSize:     64,
		Batches:       3,
		Reads:         192,
		Offset:        40961,
		Line:          768,
		RNGDraws:      17,
		SAMBytes:      99182,
		Mapped:        180,
		Locations:     411,
		Dropped:       2,
		SimSeconds:    1.25,
		EnergyJ:       3.5,
		DeviceSeconds: map[string]float64{"cpu": 1.25},
		Faults: mapper.FaultStats{
			Retries:        2,
			SkippedRecords: 1,
			SkipReasons:    map[string]int{"length-mismatch": 1},
		},
		FaultOrdinals: map[string]cl.FaultOrdinals{"cpu": {Enqueues: 7, Allocs: 21}},
	}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	if err := Save(path, got); err != nil {
		t.Fatal(err)
	}
	b2, _ := os.ReadFile(path)
	if !bytes.Equal(b1, b2) {
		t.Error("save is not deterministic: re-saving a loaded state changed the bytes")
	}
	if got.Offset != st.Offset || got.RNGDraws != st.RNGDraws || got.SAMBytes != st.SAMBytes {
		t.Errorf("round-trip lost position state: %+v", got)
	}
	if got.FaultOrdinals["cpu"] != st.FaultOrdinals["cpu"] {
		t.Errorf("round-trip lost fault ordinals: %+v", got.FaultOrdinals)
	}
	if got.Faults.SkipReasons["length-mismatch"] != 1 {
		t.Errorf("round-trip lost skip reasons: %+v", got.Faults)
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, &State{Version: Version + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("newer format version must be rejected")
	}
}

func TestVerifyMismatchIsTyped(t *testing.T) {
	st := &State{Fingerprint: "old"}
	err := st.Verify("new")
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("want *MismatchError, got %v", err)
	}
	if me.Got != "old" || me.Want != "new" {
		t.Errorf("mismatch fields: %+v", me)
	}
	if err := st.Verify("old"); err != nil {
		t.Errorf("matching fingerprint must verify: %v", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	text := bytes.Repeat([]byte{0, 1, 2, 3, 2, 1}, 400)
	ix := testIndex(t, text)
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}

	base, err := Fingerprint(ix, opt, "selector=dp")
	if err != nil {
		t.Fatal(err)
	}
	same, err := Fingerprint(ix, opt, "selector=dp")
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Error("fingerprint is not deterministic")
	}
	// Defaulted and explicit-default options must hash identically: a
	// resume that spells out the defaults is not a different run.
	expl, err := Fingerprint(ix, opt.WithDefaults(), "selector=dp")
	if err != nil {
		t.Fatal(err)
	}
	if expl != base {
		t.Error("explicit default options changed the fingerprint")
	}

	for name, fp := range map[string]func() (string, error){
		"options": func() (string, error) {
			o := opt
			o.MaxErrors = 5
			return Fingerprint(ix, o, "selector=dp")
		},
		"extras": func() (string, error) {
			return Fingerprint(ix, opt, "selector=coral")
		},
		"index": func() (string, error) {
			text2 := append(append([]byte(nil), text...), 0, 1, 2)
			return Fingerprint(testIndex(t, text2), opt, "selector=dp")
		},
	} {
		got, err := fp()
		if err != nil {
			t.Fatal(err)
		}
		if got == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestSaveIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, &State{Version: Version, Fingerprint: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, &State{Version: Version, Fingerprint: "b", Batches: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != "b" {
		t.Errorf("overwrite lost the newer state: %+v", st)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after rename")
	}
}

func TestCheckDir(t *testing.T) {
	t.Run("good", func(t *testing.T) {
		if err := CheckDir(t.TempDir()); err != nil {
			t.Fatalf("CheckDir on a writable temp dir: %v", err)
		}
	})

	t.Run("missing", func(t *testing.T) {
		err := CheckDir(filepath.Join(t.TempDir(), "nope"))
		var de *DirError
		if !errors.As(err, &de) {
			t.Fatalf("err = %v, want *DirError", err)
		}
		if !os.IsNotExist(de.Err) {
			t.Errorf("cause = %v, want not-exist", de.Err)
		}
	})

	t.Run("not a directory", func(t *testing.T) {
		file := filepath.Join(t.TempDir(), "plain")
		if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := CheckDir(file)
		var de *DirError
		if !errors.As(err, &de) {
			t.Fatalf("err = %v, want *DirError", err)
		}
		if de.Dir != file {
			t.Errorf("DirError.Dir = %q, want %q", de.Dir, file)
		}
	})

	t.Run("probe leaves no residue", func(t *testing.T) {
		dir := t.TempDir()
		if err := CheckDir(dir); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Errorf("probe left %d entries behind", len(ents))
		}
	})
}

// TestSaveSyncsDirectory can't force a power cut, but it can at least
// pin that Save still works when the parent directory requires an
// explicit open to sync — and that a Save into a directory removed
// out from under it fails rather than silently dropping durability.
func TestSaveSyncsDirectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, &State{Version: Version, Fingerprint: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}

	gone := filepath.Join(dir, "sub")
	if err := os.Mkdir(gone, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(gone); err != nil {
		t.Fatal(err)
	}
	if err := Save(filepath.Join(gone, "run.ckpt"), &State{Version: Version}); err == nil {
		t.Error("Save into a removed directory succeeded")
	}
}
