package cl

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// forceWorkers raises GOMAXPROCS so the work-group scheduler spins up a
// real worker pool even on single-core CI machines; the race detector
// tracks happens-before regardless of physical parallelism.
func forceWorkers(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// skewKernel charges a pseudo-random, index-dependent cost so schedule
// differences would surface in any non-commutative accounting.
func skewKernel(out []int64) *Kernel {
	return &Kernel{Name: "skew", Body: func(wi *WorkItem, _ any) {
		h := int64(wi.Global)*2654435761 + 12345
		c := Cost{
			FMSteps:     h % 97,
			DPCells:     h % 31,
			VerifyWords: h % 13,
			Items:       1,
		}
		wi.Charge(c)
		if out != nil {
			out[wi.Global] = h % 97
		}
	}}
}

func TestParallelMatchesSerialBitIdentical(t *testing.T) {
	forceWorkers(t, 8)
	const n = 10_000
	dev := testDevice()

	qs := NewQueue(dev)
	qs.SetExecMode(Serial)
	outS := make([]int64, n)
	evS, err := qs.EnqueueNDRange(skewKernel(outS), n)
	if err != nil {
		t.Fatal(err)
	}

	qp := NewQueue(dev)
	qp.SetExecMode(Parallel)
	outP := make([]int64, n)
	evP, err := qp.EnqueueNDRange(skewKernel(outP), n)
	if err != nil {
		t.Fatal(err)
	}

	if evS.Cost != evP.Cost {
		t.Errorf("cost differs: serial %+v parallel %+v", evS.Cost, evP.Cost)
	}
	if evS.SimSeconds != evP.SimSeconds {
		t.Errorf("sim seconds differ: %v vs %v", evS.SimSeconds, evP.SimSeconds)
	}
	if qs.EnergyJ() != qp.EnergyJ() {
		t.Errorf("energy differs: %v vs %v", qs.EnergyJ(), qp.EnergyJ())
	}
	for i := range outS {
		if outS[i] != outP[i] {
			t.Fatalf("output slot %d differs: %d vs %d", i, outS[i], outP[i])
		}
	}
}

func TestNewStatePerWorkerIsolation(t *testing.T) {
	// Each worker must receive its own state instance; items on the same
	// worker share it. A shared accumulator inside the state would race
	// (caught by -race) and double-count (caught here).
	forceWorkers(t, 8)
	var instances atomic.Int64
	type scratch struct{ items int64 }
	k := &Kernel{
		Name:     "stateful",
		NewState: func() any { instances.Add(1); return &scratch{} },
		Body: func(wi *WorkItem, state any) {
			st := state.(*scratch)
			st.items++
			wi.Charge(Cost{Items: 1})
		},
	}
	q := NewQueue(testDevice())
	q.SetExecMode(Parallel)
	const n = 5000
	ev, err := q.EnqueueNDRange(k, n)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cost.Items != n {
		t.Errorf("items = %d want %d", ev.Cost.Items, n)
	}
	got := instances.Load()
	groups := (n + workGroupSize - 1) / workGroupSize
	maxWorkers := int64(runtime.GOMAXPROCS(0))
	if int64(groups) < maxWorkers {
		maxWorkers = int64(groups)
	}
	if got < 1 || got > maxWorkers {
		t.Errorf("NewState called %d times, want 1..%d", got, maxWorkers)
	}
}

func TestSerialModeCreatesOneState(t *testing.T) {
	var instances atomic.Int64
	k := &Kernel{
		Name:     "stateful",
		NewState: func() any { instances.Add(1); return new(int) },
		Body:     func(wi *WorkItem, state any) { *state.(*int)++ },
	}
	q := NewQueue(testDevice())
	q.SetExecMode(Serial)
	if _, err := q.EnqueueNDRange(k, 1000); err != nil {
		t.Fatal(err)
	}
	if got := instances.Load(); got != 1 {
		t.Errorf("serial NewState called %d times want 1", got)
	}
}

func TestParallelPanicSurfacesAsSingleError(t *testing.T) {
	forceWorkers(t, 8)
	for _, mode := range []ExecMode{Serial, Parallel} {
		q := NewQueue(testDevice())
		q.SetExecMode(mode)
		k := &Kernel{Name: "boom", Body: func(wi *WorkItem, _ any) {
			if wi.Global%1000 == 999 {
				panic("kernel fault")
			}
		}}
		_, err := q.EnqueueNDRange(k, 10_000)
		if err == nil {
			t.Fatalf("%v: panicking kernel returned no error", mode)
		}
		if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kernel fault") {
			t.Errorf("%v: unhelpful launch error: %v", mode, err)
		}
		// The queue must stay usable and record no event for the failed launch.
		if busy, _ := q.Finish(); busy != 0 {
			t.Errorf("%v: failed launch recorded busy time %v", mode, busy)
		}
		ok := &Kernel{Name: "ok", Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{Items: 1}) }}
		if _, err := q.EnqueueNDRange(ok, 10); err != nil {
			t.Errorf("%v: queue unusable after failed launch: %v", mode, err)
		}
	}
}

func TestDefaultExecModeToggle(t *testing.T) {
	prev := SetDefaultExecMode(Serial)
	defer SetDefaultExecMode(prev)
	if got := (Auto).resolve(); got != Serial {
		t.Errorf("Auto resolves to %v after SetDefaultExecMode(Serial)", got)
	}
	SetDefaultExecMode(Auto)
	if got := (Auto).resolve(); got != Parallel {
		t.Errorf("Auto resolves to %v want Parallel", got)
	}
	// A queue pinned explicitly ignores the default.
	SetDefaultExecMode(Serial)
	if got := Parallel.resolve(); got != Parallel {
		t.Errorf("pinned Parallel resolves to %v", got)
	}
}

func TestEnvExecMode(t *testing.T) {
	// Only the documented value "serial" forces the serial path; empty,
	// unrecognised or miscased values all defer to Auto, which resolves
	// to the parallel default.
	cases := []struct {
		val  string
		want ExecMode
	}{
		{"serial", Serial},
		{"", Auto},
		{"parallel", Auto},
		{"SERIAL", Auto},
		{"1", Auto},
	}
	for _, c := range cases {
		t.Setenv("REPUTE_CL_EXEC", c.val)
		if got := envExecMode(); got != c.want {
			t.Errorf("REPUTE_CL_EXEC=%q: envExecMode() = %v want %v", c.val, got, c.want)
		}
	}
}

func TestEnvDefaultAndOverridePrecedence(t *testing.T) {
	// Full precedence chain: queue mode > SetDefaultExecMode >
	// REPUTE_CL_EXEC > built-in Parallel. The env variable is read once
	// at process start (init), which storing envExecMode() reproduces.
	t.Setenv("REPUTE_CL_EXEC", "serial")
	prev := SetDefaultExecMode(envExecMode())
	defer SetDefaultExecMode(prev)

	if got := Auto.resolve(); got != Serial {
		t.Errorf("env serial: Auto resolves to %v want Serial", got)
	}
	// An explicit queue mode beats the env default.
	if got := Parallel.resolve(); got != Parallel {
		t.Errorf("env serial: explicit Parallel resolves to %v", got)
	}
	// An explicit host override beats the env default, and the swap
	// returns what it replaced.
	if old := SetDefaultExecMode(Parallel); old != Serial {
		t.Errorf("SetDefaultExecMode returned %v want Serial", old)
	}
	if got := Auto.resolve(); got != Parallel {
		t.Errorf("override: Auto resolves to %v want Parallel", got)
	}
	// Auto clears the override back to the built-in parallel default —
	// the env variable is not re-read.
	SetDefaultExecMode(Auto)
	if got := Auto.resolve(); got != Parallel {
		t.Errorf("cleared: Auto resolves to %v want Parallel", got)
	}
}

func TestFinishTotalsTrackAppendsAndReset(t *testing.T) {
	// Finish/EnergyJ are O(1) running totals now; they must stay exact
	// across many enqueues and clear on Reset.
	dev := testDevice()
	q := NewQueue(dev)
	k := &Kernel{Name: "w", Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{FMSteps: 3, Items: 1}) }}
	var wantBusy float64
	var wantCost Cost
	for i := 0; i < 50; i++ {
		ev, err := q.EnqueueNDRange(k, 17)
		if err != nil {
			t.Fatal(err)
		}
		wantBusy += ev.SimSeconds
		wantCost.Add(ev.Cost)
		busy, total := q.Finish()
		if busy != wantBusy || total != wantCost {
			t.Fatalf("after %d enqueues Finish = (%v, %+v) want (%v, %+v)",
				i+1, busy, total, wantBusy, wantCost)
		}
		if e := q.EnergyJ(); e != wantBusy*dev.PowerW {
			t.Fatalf("EnergyJ = %v want %v", e, wantBusy*dev.PowerW)
		}
	}
	q.Reset()
	if busy, total := q.Finish(); busy != 0 || total != (Cost{}) {
		t.Errorf("after Reset Finish = (%v, %+v)", busy, total)
	}
	if q.EnergyJ() != 0 {
		t.Errorf("after Reset EnergyJ = %v", q.EnergyJ())
	}
	if len(q.Events()) != 0 {
		t.Errorf("after Reset %d events", len(q.Events()))
	}
}

func TestExecModeString(t *testing.T) {
	if Auto.String() != "auto" || Serial.String() != "serial" || Parallel.String() != "parallel" {
		t.Error("ExecMode strings wrong")
	}
}
