// Package cl is a simulated OpenCL 1.2 host runtime: platforms, devices,
// contexts, buffers, kernels and ND-range queues with the same shape as
// the real API. It stands in for the OpenCL stacks of the paper's two
// systems (Intel i7-2600 + 2× GTX 590, and the HiKey970 big.LITTLE SoC),
// which this reproduction has no access to.
//
// Kernels are ordinary Go functions that do the real algorithmic work;
// while running they charge abstract operation counts (FM-index steps, DP
// cells, Myers word-updates, ...) to their work item. A per-device
// performance model converts the counts into simulated seconds and an
// energy model into joules, so cross-device comparisons reproduce the
// paper's shape: the work is real, only the clock is modelled.
//
// The two OpenCL 1.2 restrictions the paper designs around are enforced:
//
//   - no dynamic allocation inside kernels — outputs go to fixed-size
//     buffers allocated up front (the "first-n locations" policy);
//   - a single buffer may not exceed 1/4 of device memory
//     (CL_DEVICE_MAX_MEM_ALLOC_SIZE), which forces batching on the GPUs.
package cl

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// DeviceType mirrors CL_DEVICE_TYPE_*.
type DeviceType int

// Device types.
const (
	CPU DeviceType = iota
	GPU
	Accelerator
)

func (t DeviceType) String() string {
	switch t {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return "ACCEL"
	}
}

// Cost counts the abstract operations a work item performed. Fields are
// the units the mapper kernels execute; each device weighs them into
// cycles via its Weights.
type Cost struct {
	FMSteps     int64 // FM-index backward-search extensions (random access)
	DPCells     int64 // seed-selection DP cell updates
	VerifyWords int64 // Myers bit-vector 64-bit word-column updates
	FilterWords int64 // pre-alignment shifted-Hamming 64-bit word-lane steps
	HashProbes  int64 // q-gram index bucket probes
	LocateSteps int64 // suffix-array locate resolutions
	Bytes       int64 // bulk data movement (host<->device when discrete)
	Items       int64 // per-work-item fixed overhead units

	// Candidates, Verified, Filtered and FalseAccepts are
	// observability-only tallies: candidate locations that survived
	// seed-level filtration, candidates accepted by verification,
	// candidates rejected by the pre-alignment filter, and
	// filter-accepted candidates the verifier then rejected. They carry
	// no Weights entry, so they never influence simulated time or
	// energy — they exist so traces and metrics can report the paper's
	// filtration/verification breakdown per event.
	Candidates   int64
	Verified     int64
	Filtered     int64
	FalseAccepts int64
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.FMSteps += o.FMSteps
	c.DPCells += o.DPCells
	c.VerifyWords += o.VerifyWords
	c.FilterWords += o.FilterWords
	c.HashProbes += o.HashProbes
	c.LocateSteps += o.LocateSteps
	c.Bytes += o.Bytes
	c.Items += o.Items
	c.Candidates += o.Candidates
	c.Verified += o.Verified
	c.Filtered += o.Filtered
	c.FalseAccepts += o.FalseAccepts
}

// Ops returns the total algorithmic operation count — every weighted
// unit except data movement (Bytes) and the observability tallies. It is
// the scalar the per-item work histogram observes.
func (c Cost) Ops() int64 {
	return c.FMSteps + c.DPCells + c.VerifyWords + c.FilterWords + c.HashProbes + c.LocateSteps + c.Items
}

// Weights are the per-operation cycle costs of a device lane.
type Weights struct {
	FMStep     float64
	DPCell     float64
	VerifyWord float64
	FilterWord float64
	HashProbe  float64
	LocateStep float64
	Byte       float64
	Item       float64
}

// Cycles converts a cost into device-lane cycles.
func (w Weights) Cycles(c Cost) float64 {
	return float64(c.FMSteps)*w.FMStep +
		float64(c.DPCells)*w.DPCell +
		float64(c.VerifyWords)*w.VerifyWord +
		float64(c.FilterWords)*w.FilterWord +
		float64(c.HashProbes)*w.HashProbe +
		float64(c.LocateSteps)*w.LocateStep +
		float64(c.Bytes)*w.Byte +
		float64(c.Items)*w.Item
}

// Device models one OpenCL device.
type Device struct {
	Name         string
	Type         DeviceType
	ComputeUnits int
	// LanesPerCU is how many work items a compute unit co-executes at
	// full occupancy (SIMT width on GPUs, 1 on scalar cores).
	LanesPerCU int
	// LaneHz is the effective issue rate of one lane in cycles/second.
	LaneHz float64
	// PrivateMemPerCU bounds the summed private memory of the work
	// items resident on one CU; kernels that need more per item reduce
	// occupancy — the effect behind the paper's Smin/footprint trade-off.
	PrivateMemPerCU int64
	GlobalMem       int64
	// MaxAlloc is CL_DEVICE_MAX_MEM_ALLOC_SIZE; OpenCL guarantees only
	// GlobalMem/4 and the paper leans on exactly that limit.
	MaxAlloc int64
	// PowerW is the marginal (above idle) power drawn while busy.
	PowerW  float64
	Weights Weights
	// LaunchOverheadSec is charged once per ND-range enqueue.
	LaunchOverheadSec float64
	// TransferBytesPerSec models the host link for discrete devices;
	// 0 means host-shared memory (no transfer cost).
	TransferBytesPerSec float64

	// mu guards the mutable tail of the device; the exported
	// capability fields above are set once at construction and read
	// freely.
	mu sync.Mutex
	// faults is the armed fault-injection plan plus its ordinal
	// counters; nil (the default) injects nothing. See InstallFaults.
	faults *faultState // guarded by mu
	// breaker is the device's circuit breaker; nil (the default) means
	// health tracking is off. See EnableBreaker. The Breaker carries its
	// own lock — mu only guards the pointer.
	breaker *Breaker // guarded by mu
	// watchdogK is the hang-watchdog multiple: an enqueue whose simulated
	// duration exceeds watchdogK × the unthrottled cost-model expectation
	// fails with CommandTerminated. 0 (the default) disarms. See
	// SetWatchdog.
	watchdogK float64 // guarded by mu
}

// Occupancy returns how many work items one CU co-executes for a kernel
// needing privateBytes of private memory per item.
func (d *Device) Occupancy(privateBytes int64) int {
	lanes := d.LanesPerCU
	if lanes < 1 {
		lanes = 1
	}
	if privateBytes > 0 && d.PrivateMemPerCU > 0 {
		fit := int(d.PrivateMemPerCU / privateBytes)
		if fit < 1 {
			fit = 1
		}
		if fit < lanes {
			lanes = fit
		}
	}
	return lanes
}

// Platform groups devices, mirroring clGetPlatformIDs.
type Platform struct {
	Name    string
	Devices []*Device
}

// Context owns buffers for a set of devices.
type Context struct {
	mu        sync.Mutex
	allocated map[*Device]int64 // guarded by mu
	// tracer receives alloc/free instants; nil when tracing is off. Set
	// it before sharing the context across goroutines (SetTracer is not
	// synchronised against in-flight allocations).
	tracer trace.Tracer
}

// SetTracer installs a tracer on the context; buffer allocations, frees
// and allocation failures emit instant events on the owning device's
// lane. A nil or trace.Noop tracer disables tracing at zero cost.
func (c *Context) SetTracer(t trace.Tracer) {
	if trace.IsNoop(t) {
		t = nil
	}
	c.tracer = t
}

// NewContext returns an empty context.
func NewContext() *Context {
	return &Context{allocated: make(map[*Device]int64)}
}

// Buffer is a device allocation. Only its size is modelled; kernel data
// lives in ordinary Go memory.
type Buffer struct {
	ctx  *Context
	dev  *Device
	size int64
	free bool // guarded by ctx.mu
}

// AllocError describes a failed buffer allocation.
type AllocError struct {
	Device    string
	Requested int64
	Limit     int64
	Reason    string
}

func (e *AllocError) Error() string {
	return fmt.Sprintf("cl: alloc %d B on %s: %s (limit %d B)",
		e.Requested, e.Device, e.Reason, e.Limit)
}

// Is folds AllocError into the status-code taxonomy (errors.go): it
// matches the MemObjectAllocationFailure sentinel under errors.Is, like
// the *Error an injected allocation fault produces.
func (e *AllocError) Is(target error) bool {
	c, ok := target.(Code)
	return ok && c == MemObjectAllocationFailure
}

// AllocBuffer reserves size bytes on dev, enforcing the MaxAlloc and
// total-memory limits.
func (c *Context) AllocBuffer(dev *Device, size int64) (*Buffer, error) {
	b, err := c.allocBuffer(dev, size)
	if t := c.tracer; t != nil {
		if err != nil {
			t.Instant(dev.Name, "alloc-fault",
				trace.I64("bytes", size), trace.Str("error", err.Error()))
		} else {
			t.Instant(dev.Name, "alloc",
				trace.I64("bytes", size), trace.I64("allocated_bytes", c.Allocated(dev)))
		}
	}
	// Only failures feed the breaker here: a successful allocation is
	// cheap bookkeeping, and letting it decay the failure score would
	// mask a device whose kernels keep dying between buffer setups.
	if err != nil {
		feedBreaker(dev, err, c.tracer)
	}
	return b, err
}

func (c *Context) allocBuffer(dev *Device, size int64) (*Buffer, error) {
	if size <= 0 {
		return nil, &AllocError{Device: dev.Name, Requested: size, Reason: "non-positive size"}
	}
	if fs := dev.faultState(); fs != nil {
		if err := fs.admitAlloc(dev.Name, size); err != nil {
			return nil, err
		}
	}
	if size > dev.MaxAlloc {
		return nil, &AllocError{
			Device: dev.Name, Requested: size, Limit: dev.MaxAlloc,
			Reason: "exceeds CL_DEVICE_MAX_MEM_ALLOC_SIZE (1/4 of device RAM)",
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allocated[dev]+size > dev.GlobalMem {
		return nil, &AllocError{
			Device: dev.Name, Requested: size, Limit: dev.GlobalMem - c.allocated[dev],
			Reason: "device memory exhausted",
		}
	}
	c.allocated[dev] += size
	return &Buffer{ctx: c, dev: dev, size: size}, nil
}

// Allocated reports the bytes currently reserved on dev.
func (c *Context) Allocated(dev *Device) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocated[dev]
}

// Size returns the buffer size in bytes, or 0 for a nil buffer (the
// same nil-receiver contract as Free and Valid). Using a buffer after
// Free is a host-program bug — the real API would return
// CL_INVALID_MEM_OBJECT — so it panics with a clear message instead of
// silently succeeding.
func (b *Buffer) Size() int64 {
	if b == nil {
		return 0
	}
	b.ctx.mu.Lock()
	defer b.ctx.mu.Unlock()
	if b.free {
		panic(fmt.Sprintf("cl: use of freed %d-byte buffer on %s (CL_INVALID_MEM_OBJECT)",
			b.size, b.dev.Name))
	}
	return b.size
}

// Valid reports whether the buffer is still allocated.
func (b *Buffer) Valid() bool {
	if b == nil {
		return false
	}
	b.ctx.mu.Lock()
	defer b.ctx.mu.Unlock()
	return !b.free
}

// Free releases the buffer; double frees are no-ops. The freed flag is
// checked and set under the context lock so that two goroutines racing
// on the same buffer cannot both observe it live and double-decrement
// the device's allocation accounting.
func (b *Buffer) Free() {
	if b == nil {
		return
	}
	b.ctx.mu.Lock()
	defer b.ctx.mu.Unlock()
	if b.free {
		return
	}
	b.free = true
	b.ctx.allocated[b.dev] -= b.size
	if t := b.ctx.tracer; t != nil {
		t.Instant(b.dev.Name, "free",
			trace.I64("bytes", b.size), trace.I64("allocated_bytes", b.ctx.allocated[b.dev]))
	}
}

// WorkItem is passed to a kernel body for each global index.
type WorkItem struct {
	Global int
	cost   Cost
}

// Charge records operations performed by this work item.
func (wi *WorkItem) Charge(c Cost) { wi.cost.Add(c) }

// Cost returns the operations charged to this work item so far. Kernel
// instrumentation (core.instrumentKernel) reads it after the inner body
// returns to feed the per-item work histogram.
func (wi *WorkItem) Cost() Cost { return wi.cost }

// Kernel is a compiled kernel: a Go function plus the private-memory
// declaration the occupancy model needs. Bodies must not allocate output
// space dynamically — OpenCL 1.2 kernels cannot, so outputs go through
// fixed slots prepared by the host.
//
// A kernel body may run on several host workers at once (see ExecMode),
// so it must not capture mutable scratch from its enclosing scope. All
// per-item working memory — reusable buffers, candidate lists, verifier
// state — belongs in the value returned by NewState, which mirrors
// OpenCL private/local memory: each host worker gets its own instance
// and passes it to every Body invocation it executes. Bodies may still
// write to disjoint per-item output slots (out[wi.Global]) and read
// shared immutable inputs, exactly like a real __global buffer.
type Kernel struct {
	Name string
	// PrivateBytesPerItem declares the kernel's private working set; it
	// throttles GPU occupancy and is validated against nothing else.
	PrivateBytesPerItem int64
	// NewState builds one worker's private state. It is called once per
	// host worker per enqueue (once total under Serial execution) and
	// the result is threaded through every Body call on that worker.
	// nil means the kernel is stateless and Body receives nil.
	NewState func() any
	Body     func(wi *WorkItem, state any)
}

// Event records one completed ND-range execution.
type Event struct {
	Kernel     string
	GlobalSize int
	Cost       Cost
	SimSeconds float64
}

// Queue issues work to one device. Enqueued ranges execute immediately
// (in-order queue); Finish aggregates their simulated timing. A queue is
// owned by one host goroutine — the work-group scheduler parallelises
// *inside* an enqueue, and multi-device hosts use one queue per device.
type Queue struct {
	dev    *Device
	events []Event
	mode   ExecMode
	// Running totals over events, maintained on append so Finish and
	// EnergyJ are O(1) however often the host polls them per batch.
	busyTotal float64
	costTotal Cost
	// tracer receives enqueue/penalty spans on the device's lane; nil
	// (the normalised form of trace.Noop) means tracing is off and the
	// hot path pays one nil check. traceOrigin offsets the lane's
	// timestamps so successive runs on fresh queues (MapPairs' two
	// mates) extend one timeline instead of overlapping at zero.
	tracer      trace.Tracer
	traceOrigin float64
}

// NewQueue creates an in-order queue on dev using the package default
// execution mode.
func NewQueue(dev *Device) *Queue { return &Queue{dev: dev} }

// Device returns the queue's device.
func (q *Queue) Device() *Device { return q.dev }

// SetExecMode pins this queue to a host execution mode; Auto (the zero
// value) defers to the package default.
func (q *Queue) SetExecMode(m ExecMode) { q.mode = m }

// SetTracer installs a tracer on the queue; enqueues and penalty charges
// emit spans on the device's lane over simulated time. A nil or
// trace.Noop tracer disables tracing at zero cost (asserted by
// TestNoopTracerZeroCost and the enqueue benchmarks).
func (q *Queue) SetTracer(t trace.Tracer) {
	if trace.IsNoop(t) {
		t = nil
	}
	q.tracer = t
}

// SetTraceOrigin sets the simulated-time offset added to every span this
// queue emits. The queue's own busy clock always starts at zero; the
// origin places it on a longer timeline (e.g. mate 2 of a paired run
// starting where mate 1 ended).
func (q *Queue) SetTraceOrigin(sec float64) { q.traceOrigin = sec }

// EnqueueNDRange runs kernel over globalSize work items and records the
// event. Work items are dispatched to host workers in work-groups (see
// ExecMode); simulated cost, seconds and energy are identical to serial
// execution by construction. A panic in any kernel body — on any worker —
// is converted into a single error, matching a CL_OUT_OF_RESOURCES-style
// launch failure rather than a host crash.
//
// When a fault plan is armed on the device (InstallFaults), the enqueue
// first passes through the injector: a scheduled fault fails the launch
// with a typed *Error — no work items run, no event is recorded, no cost
// is charged — and a scheduled throttle slows the event's compute time.
//
//repute:hotpath
func (q *Queue) EnqueueNDRange(k *Kernel, globalSize int) (Event, error) {
	if globalSize < 0 {
		return Event{}, &Error{
			Code: InvalidGlobalWorkSize, Op: "enqueue", Device: q.dev.Name, Kernel: k.Name,
			Detail: fmt.Sprintf("negative global size %d", globalSize),
		}
	}
	throttle := 1.0
	if fs := q.dev.faultState(); fs != nil {
		factor, ferr := fs.admitEnqueue(q.dev.Name, k.Name)
		if ferr != nil {
			if t := q.tracer; t != nil {
				t.Instant(q.dev.Name, "enqueue-fault",
					trace.Str("kernel", k.Name), trace.Str("error", ferr.Error()))
			}
			feedBreaker(q.dev, ferr, q.tracer)
			return Event{}, ferr
		}
		throttle = factor
	}
	total, err := q.mode.run(k, globalSize)
	if err != nil {
		if t := q.tracer; t != nil {
			t.Instant(q.dev.Name, "enqueue-fault",
				trace.Str("kernel", k.Name), trace.Str("error", err.Error()))
		}
		feedBreaker(q.dev, err, q.tracer)
		return Event{}, err
	}
	ev := Event{
		Kernel:     k.Name,
		GlobalSize: globalSize,
		Cost:       total,
		SimSeconds: q.dev.simSeconds(k, total, throttle),
	}
	// Hang watchdog: compare the (possibly throttled) duration against
	// the cost model's unthrottled expectation for the same work. An
	// overrun means the runtime would have killed the command at the
	// budget: the device is charged exactly the budget, no event or cost
	// is recorded (the retry re-executes the idempotent kernel), and the
	// caller gets the typed transient timeout.
	if wk := q.dev.WatchdogFactor(); wk > 0 {
		if budget := wk * q.dev.simSeconds(k, total, 1); ev.SimSeconds > budget {
			q.ChargePenalty(budget)
			werr := &Error{
				Code: CommandTerminated, Op: "enqueue", Device: q.dev.Name, Kernel: k.Name,
				Detail: fmt.Sprintf("watchdog: %.3gs exceeds %g× expected %.3gs",
					ev.SimSeconds, wk, budget/wk),
			}
			if t := q.tracer; t != nil {
				//pipevet:allow hotalloc -- tracing-enabled path only, one instant per watchdog kill
				t.Instant(q.dev.Name, "watchdog-fired",
					trace.Str("kernel", k.Name),
					trace.F64("budget_sec", budget),
					trace.F64("overrun_sec", ev.SimSeconds))
			}
			feedBreaker(q.dev, werr, q.tracer)
			return Event{}, werr
		}
	}
	feedBreaker(q.dev, nil, q.tracer)
	busyStart := q.busyTotal
	q.events = append(q.events, ev)
	q.busyTotal += ev.SimSeconds
	q.costTotal.Add(ev.Cost)
	if t := q.tracer; t != nil {
		//pipevet:allow hotalloc -- tracing-enabled path only; the zero-cost contract is tracer-off
		attrs := []trace.Attr{
			trace.I64("global_size", int64(globalSize)),
			trace.F64("energy_j", ev.SimSeconds*q.dev.PowerW),
			trace.I64("fm_steps", total.FMSteps),
			trace.I64("dp_cells", total.DPCells),
			trace.I64("verify_words", total.VerifyWords),
			trace.I64("locate_steps", total.LocateSteps),
			trace.I64("bytes", total.Bytes),
			trace.I64("candidates", total.Candidates),
			trace.I64("verified", total.Verified),
		}
		if throttle != 1 {
			//pipevet:allow hotalloc -- tracing-enabled path only, one append per throttled enqueue
			attrs = append(attrs, trace.F64("throttle", throttle))
		}
		if total.FilterWords > 0 || total.Filtered > 0 || total.FalseAccepts > 0 {
			//pipevet:allow hotalloc -- tracing-enabled path only, appended only by prefilter-stage kernels
			attrs = append(attrs, trace.I64("filter_words", total.FilterWords),
				trace.I64("filtered", total.Filtered),
				trace.I64("false_accepts", total.FalseAccepts))
		}
		t.Span(q.dev.Name, "enqueue:"+k.Name,
			q.traceOrigin+busyStart, ev.SimSeconds, attrs...)
	}
	return ev, nil
}

// simSeconds converts a kernel's aggregate cost into simulated seconds on
// the device. throttle scales the effective lane rate (1 = full speed);
// launch overhead and host transfer are rate-independent.
func (d *Device) simSeconds(k *Kernel, c Cost, throttle float64) float64 {
	cycles := d.Weights.Cycles(c)
	parallel := float64(d.ComputeUnits * d.Occupancy(k.PrivateBytesPerItem))
	if parallel < 1 {
		parallel = 1
	}
	hz := d.LaneHz
	if throttle > 0 {
		hz *= throttle
	}
	t := cycles / (parallel * hz)
	t += d.LaunchOverheadSec
	if d.TransferBytesPerSec > 0 && c.Bytes > 0 {
		t += float64(c.Bytes) / d.TransferBytesPerSec
	}
	return t
}

// Events returns a copy of the recorded events. Callers may sort, filter
// or append to the result without corrupting the queue's log.
func (q *Queue) Events() []Event {
	out := make([]Event, len(q.events))
	copy(out, q.events)
	return out
}

// ChargePenalty adds sec simulated seconds of non-kernel device time to
// the queue — retry backoff, recovery pauses — so Finish and EnergyJ
// account recovery the way they account kernel work. Non-positive
// charges are ignored.
func (q *Queue) ChargePenalty(sec float64) {
	if sec <= 0 {
		return
	}
	if t := q.tracer; t != nil {
		t.Span(q.dev.Name, "penalty", q.traceOrigin+q.busyTotal, sec,
			trace.F64("energy_j", sec*q.dev.PowerW))
	}
	q.busyTotal += sec
}

// Finish returns the queue's total simulated busy time and the summed
// cost, mirroring clFinish plus profiling-event collection. The totals
// are maintained incrementally as events append, so polling per batch
// stays O(1) instead of re-summing the event log.
func (q *Queue) Finish() (busySeconds float64, total Cost) {
	return q.busyTotal, q.costTotal
}

// EnergyJ returns the marginal energy the queue's device spent on its
// recorded events: busy time × device active power.
func (q *Queue) EnergyJ() float64 {
	return q.busyTotal * q.dev.PowerW
}

// Reset clears recorded events and the running totals so a queue can be
// reused between runs.
func (q *Queue) Reset() {
	q.events = q.events[:0]
	q.busyTotal = 0
	q.costTotal = Cost{}
}
