package cl

// Deterministic fault injection for the simulated runtime. Real OpenCL
// deployments on the paper's hardware mix (discrete GPUs on a desktop
// bus, a passively cooled big.LITTLE SoC) fail in well-known ways:
// transient CL_OUT_OF_RESOURCES launch failures, allocation failures
// under memory pressure, thermal throttling, and outright device loss.
// A FaultPlan scripts those failures against a device so the host
// pipeline's recovery paths can be exercised and tested.
//
// Plans are schedule-based, never clock- or rand-based: a fault fires on
// the Nth enqueue or Nth allocation of its device, and a throttle covers
// a window of enqueue ordinals. Serial and parallel host execution issue
// the same per-device enqueue/alloc sequence, so both observe identical
// faults and simulated results stay bit-identical — the same determinism
// contract clvet enforces inside kernels (DESIGN.md §8).
//
// DESIGN.md §9 documents the full fault model and the recovery policies
// internal/core builds on top of this injector.

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// ErrBadFaultPlan is the sentinel behind every ParseFaultPlan failure.
// Parse errors are configuration errors, not runtime faults, so they
// carry no status Code — but they still wrap a package sentinel so
// callers classify them with errors.Is instead of string matching.
var ErrBadFaultPlan = errors.New("cl: bad fault plan")

// Throttle slows a device's effective lane rate within a window of
// enqueues — the simulated analogue of thermal throttling. Factor
// multiplies LaneHz for enqueue ordinals in [From, To] (1-based,
// inclusive): Factor 0.5 halves the rate, doubling the compute portion
// of each covered enqueue's simulated time (launch overhead and host
// transfer are unaffected).
type Throttle struct {
	From, To int
	Factor   float64
}

// FaultPlan schedules deterministic faults for one device. Ordinals are
// 1-based and count attempts, including failed ones — a retry of a
// failed enqueue consumes the next ordinal, so a plan that fails k
// consecutive ordinals defeats k-1 in-place retries. A
// DeviceNotAvailable fault is permanent: every later enqueue and
// allocation on the device fails with the same code.
type FaultPlan struct {
	// FailEnqueues maps an enqueue ordinal to the injected status code
	// (typically OutOfResources or DeviceNotAvailable). The failed
	// enqueue runs no work items and records no event.
	FailEnqueues map[int]Code
	// FailAllocs maps an allocation ordinal to the injected status code
	// (typically MemObjectAllocationFailure). The failed allocation
	// reserves nothing.
	FailAllocs map[int]Code
	// Throttles slow enqueue windows; overlapping windows compound.
	Throttles []Throttle
	// Device restricts which member of a device group the plan targets:
	// 0 (the default) means every device the caller arms; K >= 1 means
	// only the Kth device (1-based) of the group. The injector itself
	// ignores the field — it is addressing metadata for the installer
	// (serve arms a job's plan only on the selected member of the job's
	// partition; core's env chaos hook arms only the Kth pipeline
	// device), which is what lets a multi-device chaos run lose one
	// device while its partition partners stay healthy.
	Device int
}

// faultState is a FaultPlan armed on one device: the plan plus the
// device's ordinal counters, guarded so concurrent queues on one device
// count consistently. The plan's maps are only read — one plan value may
// arm many devices.
type faultState struct {
	mu    sync.Mutex
	plan  FaultPlan
	enq   int
	alloc int
	dead  bool
}

// InstallFaults arms plan on d; nil disarms. Ordinal counters start
// fresh on every call. Installation is synchronised with the enqueue
// and allocation paths, so arming mid-run is safe — though a plan's
// ordinals only make sense counted from before the first enqueue.
func (d *Device) InstallFaults(plan *FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if plan == nil {
		d.faults = nil
		return
	}
	d.faults = &faultState{plan: *plan}
}

// faultState returns the armed fault state, or nil.
func (d *Device) faultState() *faultState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// FaultsInstalled reports whether a fault plan is armed on d.
func (d *Device) FaultsInstalled() bool { return d.faultState() != nil }

// FaultOrdinals is a snapshot of a device's fault-injection counters.
// Checkpoints record it so a resumed run can restore the injection
// schedule exactly where the interrupted run stopped: without the
// restore, a resume would replay the plan from ordinal 1 and inject a
// different fault sequence than the uninterrupted run saw.
type FaultOrdinals struct {
	Enqueues int  `json:"enqueues"`
	Allocs   int  `json:"allocs"`
	Dead     bool `json:"dead,omitempty"`
}

// FaultOrdinals snapshots the device's injection counters; ok is false
// when no plan is armed.
func (d *Device) FaultOrdinals() (o FaultOrdinals, ok bool) {
	s := d.faultState()
	if s == nil {
		return FaultOrdinals{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return FaultOrdinals{Enqueues: s.enq, Allocs: s.alloc, Dead: s.dead}, true
}

// RestoreFaultOrdinals seats the device's injection counters at a
// snapshot taken by FaultOrdinals. Call it after InstallFaults and
// before any enqueue; it reports false when no plan is armed.
func (d *Device) RestoreFaultOrdinals(o FaultOrdinals) bool {
	s := d.faultState()
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enq, s.alloc, s.dead = o.Enqueues, o.Allocs, o.Dead
	return true
}

// admitEnqueue advances the device's enqueue ordinal and returns either
// the throttle factor for this enqueue or the injected failure.
func (s *faultState) admitEnqueue(dev, kernel string) (factor float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enq++
	if s.dead {
		return 1, &Error{Code: DeviceNotAvailable, Op: "enqueue", Device: dev, Kernel: kernel,
			Detail: "device lost"}
	}
	if code, ok := s.plan.FailEnqueues[s.enq]; ok {
		if code == DeviceNotAvailable {
			s.dead = true
		}
		return 1, &Error{Code: code, Op: "enqueue", Device: dev, Kernel: kernel,
			Detail: fmt.Sprintf("injected at enqueue %d", s.enq)}
	}
	factor = 1
	for _, t := range s.plan.Throttles {
		if t.Factor > 0 && s.enq >= t.From && s.enq <= t.To {
			factor *= t.Factor
		}
	}
	return factor, nil
}

// admitAlloc advances the device's allocation ordinal and returns the
// injected failure, if any.
func (s *faultState) admitAlloc(dev string, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alloc++
	if s.dead {
		return &Error{Code: DeviceNotAvailable, Op: "alloc", Device: dev, Detail: "device lost"}
	}
	if code, ok := s.plan.FailAllocs[s.alloc]; ok {
		if code == DeviceNotAvailable {
			s.dead = true
		}
		return &Error{Code: code, Op: "alloc", Device: dev,
			Detail: fmt.Sprintf("injected at allocation %d (%d B)", s.alloc, size)}
	}
	return nil
}

// ParseFaultPlan parses the compact plan syntax used by the
// REPUTE_CL_FAULTS environment variable: comma-separated directives
//
//	enqN=CODE       fail the Nth enqueue
//	allocN=CODE     fail the Nth allocation
//	throttleA-B=F   multiply LaneHz by F for enqueues A..B
//	device=K        target only the Kth device (1-based) of the group
//	                the installer would arm (see FaultPlan.Device)
//
// with CODE one of "oor" (CL_OUT_OF_RESOURCES), "alloc"
// (CL_MEM_OBJECT_ALLOCATION_FAILURE) or "lost"
// (CL_DEVICE_NOT_AVAILABLE). Example: "enq2=oor,alloc3=alloc,throttle4-6=0.5".
func ParseFaultPlan(s string) (*FaultPlan, error) {
	p := &FaultPlan{FailEnqueues: map[int]Code{}, FailAllocs: map[int]Code{}}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("%w: directive %q: missing '='", ErrBadFaultPlan, tok)
		}
		switch {
		case key == "device":
			n, err := parseOrdinal(val)
			if err != nil {
				return nil, fmt.Errorf("fault directive %q: %w", tok, err)
			}
			p.Device = n
		case strings.HasPrefix(key, "enq"):
			n, err := parseOrdinal(key[len("enq"):])
			if err != nil {
				return nil, fmt.Errorf("fault directive %q: %w", tok, err)
			}
			code, err := parseFaultCode(val)
			if err != nil {
				return nil, fmt.Errorf("fault directive %q: %w", tok, err)
			}
			p.FailEnqueues[n] = code
		case strings.HasPrefix(key, "alloc"):
			n, err := parseOrdinal(key[len("alloc"):])
			if err != nil {
				return nil, fmt.Errorf("fault directive %q: %w", tok, err)
			}
			code, err := parseFaultCode(val)
			if err != nil {
				return nil, fmt.Errorf("fault directive %q: %w", tok, err)
			}
			p.FailAllocs[n] = code
		case strings.HasPrefix(key, "throttle"):
			froms, tos, ok := strings.Cut(key[len("throttle"):], "-")
			if !ok {
				return nil, fmt.Errorf("%w: directive %q: want throttleA-B=F", ErrBadFaultPlan, tok)
			}
			from, err := parseOrdinal(froms)
			if err != nil {
				return nil, fmt.Errorf("fault directive %q: %w", tok, err)
			}
			to, err := parseOrdinal(tos)
			if err != nil || to < from {
				return nil, fmt.Errorf("%w: directive %q: bad window", ErrBadFaultPlan, tok)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return nil, fmt.Errorf("%w: directive %q: factor must be in (0, 1]", ErrBadFaultPlan, tok)
			}
			p.Throttles = append(p.Throttles, Throttle{From: from, To: to, Factor: f})
		default:
			return nil, fmt.Errorf("%w: unknown directive %q", ErrBadFaultPlan, tok)
		}
	}
	return p, nil
}

func parseOrdinal(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("%w: bad ordinal %q (want integer >= 1)", ErrBadFaultPlan, s)
	}
	return n, nil
}

func parseFaultCode(s string) (Code, error) {
	switch s {
	case "oor":
		return OutOfResources, nil
	case "alloc":
		return MemObjectAllocationFailure, nil
	case "lost":
		return DeviceNotAvailable, nil
	}
	return Success, fmt.Errorf("%w: unknown fault code %q (oor, alloc, lost)", ErrBadFaultPlan, s)
}

// EnvFaultPlan returns the fault plan named by the REPUTE_CL_FAULTS
// environment variable, or nil when it is unset. core.Pipeline.Map arms
// the plan on every device without an explicit one, so setting the
// variable turns any pipeline run into a chaos run — CI uses it to drive
// the whole core test suite through the recovery paths under -race. A
// malformed value panics: a chaos run that silently injects nothing
// would be worse than no chaos run.
func EnvFaultPlan() *FaultPlan {
	s := os.Getenv("REPUTE_CL_FAULTS")
	if s == "" {
		return nil
	}
	p, err := ParseFaultPlan(s)
	if err != nil {
		panic("cl: REPUTE_CL_FAULTS: " + err.Error())
	}
	return p
}
