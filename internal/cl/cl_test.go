package cl

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func testDevice() *Device {
	return &Device{
		Name:            "test",
		Type:            CPU,
		ComputeUnits:    4,
		LanesPerCU:      1,
		LaneHz:          1e9,
		PrivateMemPerCU: 1024,
		GlobalMem:       1 << 20,
		MaxAlloc:        1 << 18,
		PowerW:          10,
		Weights:         Weights{FMStep: 10, DPCell: 1, VerifyWord: 1, Item: 5},
	}
}

func TestAllocWithinLimits(t *testing.T) {
	ctx := NewContext()
	dev := testDevice()
	b, err := ctx.AllocBuffer(dev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 1000 || ctx.Allocated(dev) != 1000 {
		t.Errorf("size/allocated = %d/%d want 1000/1000", b.Size(), ctx.Allocated(dev))
	}
	b.Free()
	if ctx.Allocated(dev) != 0 {
		t.Errorf("after free allocated = %d want 0", ctx.Allocated(dev))
	}
	b.Free() // double free must be a no-op
	if ctx.Allocated(dev) != 0 {
		t.Errorf("double free changed accounting: %d", ctx.Allocated(dev))
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	ctx := NewContext()
	dev := testDevice()
	b, err := ctx.AllocBuffer(dev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Valid() {
		t.Error("fresh buffer reports invalid")
	}
	b.Free()
	if b.Valid() {
		t.Error("freed buffer reports valid")
	}
	// A use after free is a host bug the real API would surface as
	// CL_INVALID_MEM_OBJECT; the simulation panics with a clear message
	// rather than silently handing out stale metadata.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Size on freed buffer did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "use of freed") {
			t.Fatalf("panic = %v, want use-of-freed message", r)
		}
	}()
	_ = b.Size()
}

func TestNilBufferHandling(t *testing.T) {
	var b *Buffer
	b.Free() // must be a no-op, matching the old contract
	if b.Valid() {
		t.Error("nil buffer reports valid")
	}
}

func TestAllocRejectsOversize(t *testing.T) {
	ctx := NewContext()
	dev := testDevice()
	_, err := ctx.AllocBuffer(dev, dev.MaxAlloc+1)
	var ae *AllocError
	if !errors.As(err, &ae) {
		t.Fatalf("want AllocError, got %v", err)
	}
	if _, err := ctx.AllocBuffer(dev, 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
}

func TestAllocExhaustsGlobalMem(t *testing.T) {
	ctx := NewContext()
	dev := testDevice()
	// MaxAlloc is 256 KiB, global 1 MiB: four max buffers fit, a fifth not.
	var bufs []*Buffer
	for i := 0; i < 4; i++ {
		b, err := ctx.AllocBuffer(dev, dev.MaxAlloc)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		bufs = append(bufs, b)
	}
	if _, err := ctx.AllocBuffer(dev, dev.MaxAlloc); err == nil {
		t.Error("allocation past global memory accepted")
	}
	bufs[0].Free()
	if _, err := ctx.AllocBuffer(dev, dev.MaxAlloc); err != nil {
		t.Errorf("alloc after free failed: %v", err)
	}
}

func TestEnqueueRunsAllItems(t *testing.T) {
	q := NewQueue(testDevice())
	// One slot per global index: work items may run on any host worker,
	// but each index must execute exactly once.
	seen := make([]int32, 10)
	k := &Kernel{Name: "collect", Body: func(wi *WorkItem, _ any) {
		seen[wi.Global]++
		wi.Charge(Cost{Items: 1})
	}}
	ev, err := q.EnqueueNDRange(k, 10)
	if err != nil {
		t.Fatal(err)
	}
	for g, n := range seen {
		if n != 1 {
			t.Errorf("work item %d ran %d times", g, n)
		}
	}
	if ev.Cost.Items != 10 {
		t.Errorf("cost items = %d want 10", ev.Cost.Items)
	}
	if ev.SimSeconds <= 0 {
		t.Errorf("sim time = %v want > 0", ev.SimSeconds)
	}
}

func TestSimTimeScalesWithWork(t *testing.T) {
	dev := testDevice()
	q := NewQueue(dev)
	mk := func(steps int64) *Kernel {
		return &Kernel{Name: "work", Body: func(wi *WorkItem, _ any) {
			wi.Charge(Cost{FMSteps: steps})
		}}
	}
	ev1, _ := q.EnqueueNDRange(mk(100), 1000)
	ev2, _ := q.EnqueueNDRange(mk(200), 1000)
	if ratio := ev2.SimSeconds / ev1.SimSeconds; math.Abs(ratio-2) > 1e-9 {
		t.Errorf("2x work gave %vx time", ratio)
	}
}

func TestSimTimeScalesWithParallelism(t *testing.T) {
	k := &Kernel{Name: "w", Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{DPCells: 1000}) }}
	d1 := testDevice()
	d2 := testDevice()
	d2.ComputeUnits = 8
	q1, q2 := NewQueue(d1), NewQueue(d2)
	e1, _ := q1.EnqueueNDRange(k, 100)
	e2, _ := q2.EnqueueNDRange(k, 100)
	if ratio := e1.SimSeconds / e2.SimSeconds; math.Abs(ratio-2) > 1e-9 {
		t.Errorf("doubling CUs gave %vx speedup", ratio)
	}
}

func TestOccupancyThrottling(t *testing.T) {
	dev := testDevice()
	dev.LanesPerCU = 8
	// 1024 B private per CU: a 512 B/item kernel fits 2 lanes, not 8.
	if got := dev.Occupancy(512); got != 2 {
		t.Errorf("Occupancy(512) = %d want 2", got)
	}
	if got := dev.Occupancy(0); got != 8 {
		t.Errorf("Occupancy(0) = %d want 8", got)
	}
	if got := dev.Occupancy(4096); got != 1 {
		t.Errorf("Occupancy(huge) = %d want 1", got)
	}
	fat := &Kernel{Name: "fat", PrivateBytesPerItem: 512,
		Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{DPCells: 100}) }}
	thin := &Kernel{Name: "thin", PrivateBytesPerItem: 64,
		Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{DPCells: 100}) }}
	q := NewQueue(dev)
	evFat, _ := q.EnqueueNDRange(fat, 1000)
	evThin, _ := q.EnqueueNDRange(thin, 1000)
	if evFat.SimSeconds <= evThin.SimSeconds {
		t.Errorf("fat kernel (%v s) not slower than thin (%v s)",
			evFat.SimSeconds, evThin.SimSeconds)
	}
}

func TestKernelPanicBecomesError(t *testing.T) {
	q := NewQueue(testDevice())
	k := &Kernel{Name: "boom", Body: func(wi *WorkItem, _ any) {
		if wi.Global == 3 {
			panic("kernel fault")
		}
	}}
	if _, err := q.EnqueueNDRange(k, 10); err == nil {
		t.Error("panicking kernel returned no error")
	}
	if _, err := q.EnqueueNDRange(k, -1); err == nil {
		t.Error("negative global size accepted")
	}
}

func TestFinishAggregatesAndEnergy(t *testing.T) {
	dev := testDevice()
	q := NewQueue(dev)
	k := &Kernel{Name: "w", Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{FMSteps: 10}) }}
	q.EnqueueNDRange(k, 100)
	q.EnqueueNDRange(k, 100)
	busy, total := q.Finish()
	if total.FMSteps != 2000 {
		t.Errorf("total FM steps = %d want 2000", total.FMSteps)
	}
	wantBusy := 2 * (2000.0 / 2 * 10) / (4 * 1e9) // per-enqueue: 1000 steps × 10 cyc / (4 CU × 1 GHz)
	if math.Abs(busy-wantBusy) > 1e-12 {
		t.Errorf("busy = %v want %v", busy, wantBusy)
	}
	if e := q.EnergyJ(); math.Abs(e-busy*10) > 1e-12 {
		t.Errorf("energy = %v want %v", e, busy*10)
	}
	q.Reset()
	if busy, _ := q.Finish(); busy != 0 {
		t.Errorf("after reset busy = %v", busy)
	}
}

func TestTransferAndLaunchOverhead(t *testing.T) {
	dev := testDevice()
	dev.LaunchOverheadSec = 0.5
	dev.TransferBytesPerSec = 1000
	q := NewQueue(dev)
	k := &Kernel{Name: "xfer", Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{Bytes: 500}) }}
	ev, err := q.EnqueueNDRange(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Byte weight is 0 in testDevice, so time = launch + transfer.
	if math.Abs(ev.SimSeconds-(0.5+0.5)) > 1e-9 {
		t.Errorf("sim time %v want 1.0", ev.SimSeconds)
	}
}

func TestCatalogSanity(t *testing.T) {
	sys1 := SystemOne()
	if len(sys1.Devices) != 3 {
		t.Fatalf("System 1 has %d devices want 3", len(sys1.Devices))
	}
	gpu := GTX590(0)
	if gpu.MaxAlloc*4 != gpu.GlobalMem {
		t.Errorf("GPU MaxAlloc %d is not 1/4 of %d", gpu.MaxAlloc, gpu.GlobalMem)
	}
	hikey := HiKey970()
	if len(hikey.Devices) != 2 {
		t.Fatalf("HiKey has %d devices want 2", len(hikey.Devices))
	}
	// Embedded power must be orders of magnitude below the workstation.
	var hikeyPower, sys1Power float64
	for _, d := range hikey.Devices {
		hikeyPower += d.PowerW
	}
	for _, d := range sys1.Devices {
		sys1Power += d.PowerW
	}
	if hikeyPower*10 > sys1Power {
		t.Errorf("embedded power %v not well below workstation %v", hikeyPower, sys1Power)
	}
	// The CPU must beat one GPU on random-access throughput (FM steps/s)
	// — that asymmetry drives the paper's split-tuning figure.
	cpu := SystemOneCPU()
	cpuRate := float64(cpu.ComputeUnits) * cpu.LaneHz / cpu.Weights.FMStep
	gpuRate := float64(gpu.ComputeUnits*gpu.LanesPerCU) * gpu.LaneHz / gpu.Weights.FMStep
	if gpuRate >= cpuRate {
		t.Errorf("one GPU FM rate %v >= CPU %v; Table II shape would invert", gpuRate, cpuRate)
	}
	if gpuRate < cpuRate/5 {
		t.Errorf("GPU FM rate %v too far below CPU %v; GPUs would be useless", gpuRate, cpuRate)
	}
}

func TestDeviceTypeString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || Accelerator.String() != "ACCEL" {
		t.Error("DeviceType strings wrong")
	}
}
