package cl

import "fmt"

// Device catalog: performance/power models of the paper's two systems.
//
// Calibration note (DESIGN.md §2): absolute constants were chosen so the
// simulated REPUTE-cpu mapping rate lands near the paper's Table I order
// of magnitude; all comparisons in the experiments depend on ratios —
// relative device throughput on random access (FM steps) vs data-parallel
// arithmetic (DP cells, Myers words) — which is what these weights encode.
//
//   - The i7-2600 is fast at everything and has effectively unlimited
//     per-item private memory.
//   - The GTX 590 halves (two devices, 1.5 GB each) have enormous lane
//     counts but each lane is slow on divergent, uncoalesced random
//     access, so one GPU delivers roughly half the CPU's filtration rate
//     — matching the paper's "up to ≈2× with CPU + 2 GPUs".
//   - The HiKey970 clusters are scalar and memory-bound, but sip power:
//     the board's marginal draw is ~4.5 W against the workstation's
//     hundreds, which is the entire embedded-genomics argument.

// Marginal power constants used by the catalog (watts above idle) and the
// idle draws the paper's Table IV subtracts.
const (
	SystemOneIdleW = 160.0
	SystemTwoIdleW = 3.5

	cpuOpenCLPowerW = 195.0 // i7 saturated by vectorized OpenCL kernels
	cpuHostPowerW   = 88.0  // i7 running plain threaded mappers
	gpuPowerW       = 50.0  // one GTX 590 half at mapper load
	a73PowerW       = 3.0
	a53PowerW       = 1.5
	hikeyHostPowerW = 4.5 // all eight ARM cores under a threaded mapper
)

// The FMStep weight is the calibration pivot: it sets where DP filtration
// (FM-step heavy, candidate light) crosses over against heuristics
// (FM-step light, candidate heavy). 8 cycles per ExtendLeft on a cached
// index puts the REPUTE/CORAL crossover where Table I has it — CORAL
// slightly ahead at n=100, δ=3, REPUTE ahead for longer reads and higher
// error budgets.
func cpuWeights() Weights {
	return Weights{
		FMStep: 8, DPCell: 4, VerifyWord: 2, FilterWord: 3,
		HashProbe: 28, LocateStep: 26, Byte: 0.05, Item: 60,
	}
}

func gpuWeights() Weights {
	// Per-lane costs: bit-parallel arithmetic is near-CPU, random
	// global-memory access is ~50x worse and uncoalesced (FM backward
	// search, locate, hash probing).
	return Weights{
		FMStep: 400, DPCell: 6, VerifyWord: 4, FilterWord: 6,
		HashProbe: 1200, LocateStep: 460, Byte: 0, Item: 200,
	}
}

func armWeights(scale float64) Weights {
	return Weights{
		FMStep: 11 * scale, DPCell: 5 * scale, VerifyWord: 3 * scale, FilterWord: 4 * scale,
		HashProbe: 36 * scale, LocateStep: 34 * scale, Byte: 0.08, Item: 80,
	}
}

// SystemOneCPU is the i7-2600 exposed as an OpenCL CPU device.
func SystemOneCPU() *Device {
	return &Device{
		Name:         "Intel Core i7-2600 (OpenCL)",
		Type:         CPU,
		ComputeUnits: 8,
		LanesPerCU:   1,
		LaneHz:       3.4e9,
		GlobalMem:    16 << 30,
		MaxAlloc:     4 << 30,
		PowerW:       cpuOpenCLPowerW,
		Weights:      cpuWeights(),
	}
}

// SystemOneHost is the same silicon running plain threaded mappers
// (RazerS3, Hobbes3, ...): identical speed model, lower electrical load.
func SystemOneHost() *Device {
	d := SystemOneCPU()
	d.Name = "Intel Core i7-2600 (host threads)"
	d.PowerW = cpuHostPowerW
	return d
}

// GTX590 returns one half of a GeForce GTX 590 board (the card exposes
// two devices with 1.5 GB each, as in the paper's System 1).
func GTX590(index int) *Device {
	return &Device{
		Name:                fmt.Sprintf("GeForce GTX 590 #%d", index),
		Type:                GPU,
		ComputeUnits:        16,
		LanesPerCU:          32,
		LaneHz:              1.21e9,
		PrivateMemPerCU:     32 << 10,
		GlobalMem:           1536 << 20,
		MaxAlloc:            384 << 20, // 1/4 of device RAM per OpenCL 1.2
		PowerW:              gpuPowerW,
		Weights:             gpuWeights(),
		LaunchOverheadSec:   2e-3,
		TransferBytesPerSec: 5e9,
	}
}

// SystemOne is the workstation platform: i7-2600 + 2× GTX 590 devices.
func SystemOne() Platform {
	return Platform{
		Name:    "System 1: i7-2600 + 2x GTX 590",
		Devices: []*Device{SystemOneCPU(), GTX590(0), GTX590(1)},
	}
}

// HiKeyA73 is the big cluster of the HiKey970 as an OpenCL device.
func HiKeyA73() *Device {
	return &Device{
		Name:         "ARM Cortex-A73 MP4",
		Type:         Accelerator,
		ComputeUnits: 4,
		LanesPerCU:   1,
		LaneHz:       2.36e9,
		GlobalMem:    6 << 30,
		MaxAlloc:     (6 << 30) / 4,
		PowerW:       a73PowerW,
		Weights:      armWeights(1.0),
	}
}

// HiKeyA53 is the LITTLE cluster.
func HiKeyA53() *Device {
	return &Device{
		Name:         "ARM Cortex-A53 MP4",
		Type:         Accelerator,
		ComputeUnits: 4,
		LanesPerCU:   1,
		LaneHz:       1.8e9,
		GlobalMem:    6 << 30,
		MaxAlloc:     (6 << 30) / 4,
		PowerW:       a53PowerW,
		Weights:      armWeights(1.25),
	}
}

// HiKeyHost is all eight ARM cores running a plain threaded mapper.
func HiKeyHost() *Device {
	return &Device{
		Name:         "HiKey970 (host threads, A73+A53)",
		Type:         CPU,
		ComputeUnits: 8,
		LanesPerCU:   1,
		LaneHz:       2.08e9, // blended big.LITTLE rate
		GlobalMem:    6 << 30,
		MaxAlloc:     (6 << 30) / 4,
		PowerW:       hikeyHostPowerW,
		Weights:      armWeights(1.1),
	}
}

// HiKey970 is the embedded platform: both clusters as OpenCL devices.
func HiKey970() Platform {
	return Platform{
		Name:    "System 2: HiKey970 (A73 MP4 + A53 MP4)",
		Devices: []*Device{HiKeyA73(), HiKeyA53()},
	}
}
