package cl

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// Host execution of an ND-range. A real OpenCL runtime executes work
// items concurrently on the device; this simulated runtime executes them
// on the host, and for years did so serially — wall-clock time was
// single-core no matter how many devices the simulation modelled. The
// work-group scheduler below partitions the global range into groups of
// consecutive indices and drains them with min(GOMAXPROCS, groups) host
// workers. Each worker owns a private kernel state (Kernel.NewState) and
// a private Cost accumulator; the accumulators merge at the barrier.
//
// Simulated results are independent of the host schedule by design:
// work items write disjoint output slots, Cost fields are integers whose
// sum is order-independent, and simulated seconds are derived from the
// merged total in one place. The determinism tests in internal/core
// assert this end to end.

// ExecMode selects how an ND-range's work items run on the host.
type ExecMode int

const (
	// Auto defers to the package default: Parallel, unless the
	// REPUTE_CL_EXEC environment variable is set to "serial".
	Auto ExecMode = iota
	// Serial runs every work item on the enqueuing goroutine in global
	// order — the debugging escape hatch and the reference the parallel
	// scheduler must match bit for bit.
	Serial
	// Parallel runs work groups on a pool of host workers.
	Parallel
)

func (m ExecMode) String() string {
	switch m {
	case Serial:
		return "serial"
	case Parallel:
		return "parallel"
	default:
		return "auto"
	}
}

// workGroupSize is the scheduler's dispatch granularity: consecutive
// global indices handed to a worker as one unit, like an OpenCL local
// work size. Large enough to amortise the atomic fetch per group, small
// enough to balance skewed per-item costs (repetitive reads cost orders
// of magnitude more than unique ones).
const workGroupSize = 64

// defaultMode holds the package-wide ExecMode used by queues left on
// Auto; stored atomically so tests may toggle it around parallel runs.
var defaultMode atomic.Int32

func init() {
	defaultMode.Store(int32(envExecMode()))
}

// envExecMode maps the REPUTE_CL_EXEC environment variable onto an
// ExecMode: "serial" forces the serial path, anything else (including
// unset) defers to Auto, which resolves to Parallel. Read once at
// process start; SetDefaultExecMode overrides it afterwards.
func envExecMode() ExecMode {
	if os.Getenv("REPUTE_CL_EXEC") == "serial" {
		return Serial
	}
	return Auto
}

// SetDefaultExecMode replaces the package default execution mode used by
// queues in Auto mode and returns the previous default. Auto restores
// the built-in behaviour (parallel unless REPUTE_CL_EXEC=serial).
func SetDefaultExecMode(m ExecMode) ExecMode {
	return ExecMode(defaultMode.Swap(int32(m)))
}

// resolve maps Auto to the effective package default.
func (m ExecMode) resolve() ExecMode {
	if m != Auto {
		return m
	}
	if d := ExecMode(defaultMode.Load()); d != Auto {
		return d
	}
	return Parallel
}

// run executes k over globalSize work items under mode m and returns the
// merged cost.
func (m ExecMode) run(k *Kernel, globalSize int) (Cost, error) {
	workers := runtime.GOMAXPROCS(0)
	groups := (globalSize + workGroupSize - 1) / workGroupSize
	if workers > groups {
		workers = groups
	}
	if m.resolve() == Serial || workers <= 1 {
		return runSerial(k, globalSize)
	}
	return runParallel(k, globalSize, workers, groups)
}

// runSerial is the original single-goroutine path.
func runSerial(k *Kernel, globalSize int) (total Cost, err error) {
	defer func() {
		if r := recover(); r != nil {
			total = Cost{}
			err = launchError(k, r)
		}
	}()
	var state any
	if k.NewState != nil {
		state = k.NewState()
	}
	// wi is hoisted out of the loop: &wi escapes through the indirect
	// Body call, so a loop-scoped wi would heap-allocate one WorkItem
	// per work item. Hoisted, the whole run costs one allocation.
	var wi WorkItem
	for g := 0; g < globalSize; g++ {
		wi = WorkItem{Global: g}
		k.Body(&wi, state)
		total.Add(wi.cost)
	}
	return total, nil
}

// runParallel drains the work groups with a worker pool. Workers pull
// group indices from a shared counter (dynamic scheduling), so a run of
// expensive items does not serialise behind a static partition.
func runParallel(k *Kernel, globalSize, workers, groups int) (Cost, error) {
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		fault atomic.Pointer[error]
	)
	//pipevet:allow hotalloc -- per-enqueue pool setup, amortised over the whole ND-range
	costs := make([]Cost, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//pipevet:allow hotalloc -- one worker closure per pool slot, not per work item
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err := launchError(k, r)
					fault.CompareAndSwap(nil, &err)
				}
			}()
			var state any
			if k.NewState != nil {
				state = k.NewState()
			}
			var local Cost
			// Hoisted for the same reason as in runSerial: one WorkItem
			// per worker instead of one per item.
			var wi WorkItem
			for {
				g := int(next.Add(1) - 1)
				if g >= groups {
					break
				}
				lo := g * workGroupSize
				hi := lo + workGroupSize
				if hi > globalSize {
					hi = globalSize
				}
				for i := lo; i < hi; i++ {
					wi = WorkItem{Global: i}
					k.Body(&wi, state)
					local.Add(wi.cost)
				}
			}
			costs[w] = local
		}(w)
	}
	wg.Wait()
	if errp := fault.Load(); errp != nil {
		return Cost{}, *errp
	}
	// Merge in worker order: integer sums are schedule-independent, so
	// the total — and the simulated seconds derived from it — is
	// bit-identical to the serial path.
	var total Cost
	for _, c := range costs {
		total.Add(c)
	}
	return total, nil
}

// launchError converts a kernel-body panic into the typed launch
// failure a real runtime would report. Op "launch" marks it permanent
// for retry classification (IsTransient): the panic is deterministic, so
// re-running the same range can only panic again.
func launchError(k *Kernel, r any) error {
	return &Error{Code: OutOfResources, Op: "launch", Kernel: k.Name,
		Detail: fmt.Sprintf("kernel aborted: %v", r)}
}
