package cl

import (
	"testing"

	"repro/internal/trace"
)

// traceKernel is a small charging kernel for the tracer tests.
func traceKernel() *Kernel {
	return &Kernel{
		Name: "trace-test",
		Body: func(wi *WorkItem, _ any) {
			wi.Charge(Cost{DPCells: int64(wi.Global + 1), Items: 1})
		},
	}
}

// TestNoopTracerZeroCost is the tier-1 benchmark guard at the queue
// level: with the no-op tracer installed the simulated results — cost,
// busy seconds, energy — must be bit-identical to a run with tracing
// off. IsNoop normalisation means both configurations execute the same
// instructions on the hot path.
func TestNoopTracerZeroCost(t *testing.T) {
	run := func(tr trace.Tracer) (float64, Cost, float64) {
		ctx := NewContext()
		dev := testDevice()
		q := NewQueue(dev)
		q.SetTracer(tr)
		ctx.SetTracer(tr)
		b, err := ctx.AllocBuffer(dev, 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Free()
		for i := 0; i < 5; i++ {
			if _, err := q.EnqueueNDRange(traceKernel(), 100); err != nil {
				t.Fatal(err)
			}
		}
		q.ChargePenalty(0.25)
		busy, cost := q.Finish()
		return busy, cost, q.EnergyJ()
	}
	offBusy, offCost, offEnergy := run(nil)
	noopBusy, noopCost, noopEnergy := run(trace.Noop{})
	if offBusy != noopBusy || offCost != noopCost || offEnergy != noopEnergy {
		t.Errorf("no-op tracer changed results: busy %v/%v cost %+v/%+v energy %v/%v",
			offBusy, noopBusy, offCost, noopCost, offEnergy, noopEnergy)
	}
}

func TestQueueTraceSpans(t *testing.T) {
	rec := trace.NewRecorder()
	ctx := NewContext()
	dev := testDevice()
	dev.InstallFaults(&FaultPlan{
		FailEnqueues: map[int]Code{2: OutOfResources},
		FailAllocs:   map[int]Code{2: MemObjectAllocationFailure},
		Throttles:    []Throttle{{From: 3, To: 3, Factor: 0.5}},
	})
	defer dev.InstallFaults(nil)
	q := NewQueue(dev)
	q.SetTracer(rec)
	ctx.SetTracer(rec)

	b, err := ctx.AllocBuffer(dev, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.AllocBuffer(dev, 1024); err == nil {
		t.Fatal("injected alloc fault did not fire")
	}
	if _, err := q.EnqueueNDRange(traceKernel(), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(traceKernel(), 10); err == nil {
		t.Fatal("injected enqueue fault did not fire")
	}
	if _, err := q.EnqueueNDRange(traceKernel(), 10); err != nil {
		t.Fatal(err)
	}
	q.ChargePenalty(0.5)
	b.Free()

	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	throttled := false
	for _, ev := range rec.Events() {
		if ev.Lane != dev.Name {
			t.Errorf("event %s on lane %q, want %q", ev.Name, ev.Lane, dev.Name)
		}
		seen[ev.Name]++
		for _, a := range ev.Attrs {
			if a.Key == "throttle" {
				throttled = true
			}
		}
	}
	for name, want := range map[string]int{
		"alloc": 1, "alloc-fault": 1, "free": 1,
		"enqueue:trace-test": 2, "enqueue-fault": 1, "penalty": 1,
	} {
		if seen[name] != want {
			t.Errorf("%s events = %d, want %d (all: %v)", name, seen[name], want, seen)
		}
	}
	if !throttled {
		t.Error("throttled enqueue span missing throttle attribute")
	}

	m := rec.Metrics()
	if m.Counters["faults_total"] != 2 {
		t.Errorf("faults_total = %d, want 2", m.Counters["faults_total"])
	}
	if m.Counters["enqueues_total/"+dev.Name] != 2 {
		t.Errorf("enqueues_total = %d, want 2", m.Counters["enqueues_total/"+dev.Name])
	}
	busy, _ := q.Finish()
	if got := m.Gauges["device_busy_seconds/"+dev.Name]; got != busy {
		t.Errorf("device_busy_seconds = %g, want %g", got, busy)
	}
}

// TestQueueTraceOrigin checks the origin offset that lets two fresh
// queues on one device extend one timeline (MapPairs' two mates).
func TestQueueTraceOrigin(t *testing.T) {
	rec := trace.NewRecorder()
	dev := testDevice()
	q := NewQueue(dev)
	q.SetTracer(rec)
	q.SetTraceOrigin(100)
	if _, err := q.EnqueueNDRange(traceKernel(), 4); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Start != 100 {
		t.Fatalf("span start = %+v, want start 100", evs)
	}
}

func benchEnqueue(b *testing.B, tr trace.Tracer) {
	dev := testDevice()
	q := NewQueue(dev)
	q.SetTracer(tr)
	q.SetExecMode(Serial)
	k := traceKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.EnqueueNDRange(k, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnqueueNoTracer vs BenchmarkEnqueueNoopTracer: the two must
// be indistinguishable — SetTracer normalises Noop to nil.
func BenchmarkEnqueueNoTracer(b *testing.B)   { benchEnqueue(b, nil) }
func BenchmarkEnqueueNoopTracer(b *testing.B) { benchEnqueue(b, trace.Noop{}) }
func BenchmarkEnqueueRecorder(b *testing.B)   { benchEnqueue(b, trace.NewRecorder()) }
