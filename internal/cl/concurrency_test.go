package cl

import (
	"sync"
	"testing"
)

func TestConcurrentAllocationsAccountCorrectly(t *testing.T) {
	// The context is shared by host threads managing different devices;
	// allocation accounting must be race-free and exact.
	ctx := NewContext()
	dev := testDevice()
	dev.GlobalMem = 1 << 30
	dev.MaxAlloc = 1 << 28
	const (
		workers = 8
		rounds  = 200
		size    = 1 << 10
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b, err := ctx.AllocBuffer(dev, size)
				if err != nil {
					t.Error(err)
					return
				}
				b.Free()
			}
		}()
	}
	wg.Wait()
	if got := ctx.Allocated(dev); got != 0 {
		t.Errorf("allocated after all frees = %d want 0", got)
	}
}

func TestConcurrentFreeDecrementsOnce(t *testing.T) {
	// Regression: Free used to read and set b.free outside the context
	// lock, so two goroutines racing on the same buffer could both see
	// it live and double-decrement the device accounting. Under -race
	// this test also fails on the unsynchronised flag access itself.
	ctx := NewContext()
	dev := testDevice()
	const rounds = 200
	for r := 0; r < rounds; r++ {
		b, err := ctx.AllocBuffer(dev, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.Free()
			}()
		}
		wg.Wait()
		if got := ctx.Allocated(dev); got != 0 {
			t.Fatalf("round %d: allocated = %d want 0 (double decrement)", r, got)
		}
	}
}

func TestQueuesOnSeparateDevicesIndependent(t *testing.T) {
	d1 := testDevice()
	d2 := testDevice()
	d2.ComputeUnits = 1
	q1, q2 := NewQueue(d1), NewQueue(d2)
	k := &Kernel{Name: "w", Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{DPCells: 100}) }}
	if _, err := q1.EnqueueNDRange(k, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.EnqueueNDRange(k, 50); err != nil {
		t.Fatal(err)
	}
	b1, _ := q1.Finish()
	b2, _ := q2.Finish()
	if b2 <= b1 {
		t.Errorf("1-CU device (%v s) not slower than 4-CU device (%v s)", b2, b1)
	}
}
